#include "src/dist/conditioning.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/dist/discrete.h"
#include "src/dist/empirical.h"
#include "src/dist/gaussian.h"
#include "src/dist/histogram.h"
#include "src/dist/mixture.h"
#include "src/engine/executor.h"
#include "src/engine/filter.h"
#include "src/engine/scan.h"
#include "src/stats/descriptive.h"

namespace ausdb {
namespace dist {
namespace {

TEST(ConditioningTest, TruncatedGaussianMoments) {
  GaussianDist g(0.0, 1.0);
  // Standard normal conditioned on X > 0: mean = sqrt(2/pi),
  // variance = 1 - 2/pi.
  auto cond = ConditionGreater(g, 0.0);
  ASSERT_TRUE(cond.ok()) << cond.status().ToString();
  EXPECT_NEAR((*cond)->Mean(), std::sqrt(2.0 / M_PI), 1e-9);
  EXPECT_NEAR((*cond)->Variance(), 1.0 - 2.0 / M_PI, 1e-9);
  EXPECT_DOUBLE_EQ((*cond)->Cdf(0.0), 0.0);
  EXPECT_NEAR((*cond)->Cdf(1e9), 1.0, 1e-12);
}

TEST(ConditioningTest, TruncatedGaussianSamplesInRange) {
  GaussianDist g(10.0, 4.0);
  auto cond = ConditionBetween(g, 9.0, 12.0);
  ASSERT_TRUE(cond.ok());
  Rng rng(1);
  stats::MomentAccumulator acc;
  for (int i = 0; i < 50000; ++i) {
    const double x = (*cond)->Sample(rng);
    ASSERT_GT(x, 9.0 - 1e-9);
    ASSERT_LE(x, 12.0 + 1e-9);
    acc.Add(x);
  }
  EXPECT_NEAR(acc.mean(), (*cond)->Mean(), 0.02);
  EXPECT_NEAR(acc.SampleVariance(), (*cond)->Variance(), 0.02);
}

TEST(ConditioningTest, HistogramClipsAndRenormalizes) {
  auto h = HistogramDist::Make({0.0, 1.0, 2.0, 3.0}, {0.2, 0.3, 0.5});
  ASSERT_TRUE(h.ok());
  // Condition on X > 1.5: keeps half of bin 2 (0.15) and bin 3 (0.5).
  auto cond = ConditionGreater(*h, 1.5);
  ASSERT_TRUE(cond.ok()) << cond.status().ToString();
  const auto& ch = static_cast<const HistogramDist&>(**cond);
  ASSERT_EQ(ch.bin_count(), 2u);
  EXPECT_DOUBLE_EQ(ch.edges().front(), 1.5);
  EXPECT_NEAR(ch.BinProb(0), 0.15 / 0.65, 1e-12);
  EXPECT_NEAR(ch.BinProb(1), 0.5 / 0.65, 1e-12);
  EXPECT_DOUBLE_EQ(ch.Cdf(1.5), 0.0);
}

TEST(ConditioningTest, EmpiricalAndDiscreteFilterSupport) {
  auto e = EmpiricalDist::Make({1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(e.ok());
  auto cond = ConditionBetween(*e, 1.5, 3.5);
  ASSERT_TRUE(cond.ok());
  EXPECT_DOUBLE_EQ((*cond)->Mean(), 2.5);

  auto d = DiscreteDist::Make({1.0, 2.0, 3.0}, {0.2, 0.3, 0.5});
  ASSERT_TRUE(d.ok());
  auto cond_d = ConditionGreater(*d, 1.0);
  ASSERT_TRUE(cond_d.ok());
  EXPECT_NEAR((*cond_d)->Mean(), (2.0 * 0.3 + 3.0 * 0.5) / 0.8, 1e-12);
}

TEST(ConditioningTest, MixtureReweightsComponents) {
  auto mix = MixtureDist::Make(
      {std::make_shared<GaussianDist>(-10.0, 1.0),
       std::make_shared<GaussianDist>(10.0, 1.0)},
      {0.5, 0.5});
  ASSERT_TRUE(mix.ok());
  // Conditioning on X > 0 effectively removes the left component.
  auto cond = ConditionGreater(*mix, 0.0);
  ASSERT_TRUE(cond.ok()) << cond.status().ToString();
  EXPECT_NEAR((*cond)->Mean(), 10.0, 0.01);
}

TEST(ConditioningTest, PointAndDegenerate) {
  PointDist p(5.0);
  auto ok = ConditionGreater(p, 4.0);
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ((*ok)->Mean(), 5.0);
  // Impossible event.
  EXPECT_TRUE(ConditionGreater(p, 6.0).status().IsInvalidArgument());
  GaussianDist g(0.0, 1.0);
  EXPECT_TRUE(ConditionGreater(g, 50.0).status().IsInvalidArgument());
  EXPECT_TRUE(ConditionBetween(g, 2.0, 1.0).status().IsInvalidArgument());
}

TEST(ConditioningTest, CdfIsProperlyNormalized) {
  GaussianDist g(3.0, 4.0);
  auto cond = ConditionBetween(g, 2.0, 6.0);
  ASSERT_TRUE(cond.ok());
  EXPECT_NEAR((*cond)->Cdf(6.0), 1.0, 1e-12);
  EXPECT_NEAR((*cond)->Cdf(2.0), 0.0, 1e-12);
  // Median-ish midpoint lies strictly inside (0, 1).
  const double mid = (*cond)->Cdf(4.0);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
}

}  // namespace
}  // namespace dist

namespace engine {
namespace {

TEST(FilterConditioningTest, ConditionsSurvivingDistributions) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"delay", FieldType::kUncertain}).ok());
  std::vector<Tuple> tuples = {Tuple({expr::Value(dist::RandomVar(
      std::make_shared<dist::GaussianDist>(50.0, 100.0), 20))})};
  auto scan = std::make_unique<VectorScan>(schema, tuples);
  FilterOptions opts;
  opts.condition_distributions = true;
  Filter filter(std::move(scan),
                expr::Gt(expr::Col("delay"), expr::Lit(50.0)), opts);
  auto out = Collect(filter);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  const auto rv = *(*out)[0].value(0).random_var();
  // Conditioned on delay > 50 the mean moves up and mass below 50 is 0.
  EXPECT_GT(rv.Mean(), 50.0);
  EXPECT_NEAR(rv.Cdf(50.0), 0.0, 1e-12);
  EXPECT_EQ(rv.sample_size(), 20u);  // provenance unchanged
  // Membership probability still reflects the original event.
  EXPECT_NEAR((*out)[0].membership_prob(), 0.5, 1e-9);
}

TEST(FilterConditioningTest, OffByDefault) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"delay", FieldType::kUncertain}).ok());
  std::vector<Tuple> tuples = {Tuple({expr::Value(dist::RandomVar(
      std::make_shared<dist::GaussianDist>(50.0, 100.0), 20))})};
  auto scan = std::make_unique<VectorScan>(schema, tuples);
  Filter filter(std::move(scan),
                expr::Gt(expr::Col("delay"), expr::Lit(50.0)));
  auto out = Collect(filter);
  ASSERT_TRUE(out.ok());
  const auto rv = *(*out)[0].value(0).random_var();
  EXPECT_DOUBLE_EQ(rv.Mean(), 50.0);  // untouched
}

TEST(FilterConditioningTest, NonRangePredicatesLeftAlone) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"a", FieldType::kUncertain}).ok());
  ASSERT_TRUE(schema.AddField({"b", FieldType::kUncertain}).ok());
  std::vector<Tuple> tuples = {Tuple(
      {expr::Value(dist::RandomVar(
           std::make_shared<dist::GaussianDist>(5.0, 1.0), 10)),
       expr::Value(dist::RandomVar(
           std::make_shared<dist::GaussianDist>(4.0, 1.0), 10))})};
  auto scan = std::make_unique<VectorScan>(schema, tuples);
  FilterOptions opts;
  opts.condition_distributions = true;
  // column vs column: no conditioning possible, but must not error.
  Filter filter(std::move(scan), expr::Gt(expr::Col("a"), expr::Col("b")),
                opts);
  auto out = Collect(filter);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_DOUBLE_EQ((*out)[0].value(0).random_var()->Mean(), 5.0);
}

}  // namespace
}  // namespace engine
}  // namespace ausdb
