// Fault-tolerance layer: retry classification and backoff, deterministic
// fault injection, SupervisedScan recovery/quarantine/degradation, and
// operator checkpoint round trips.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fault_injector.h"
#include "src/common/retry.h"
#include "src/dist/gaussian.h"
#include "src/engine/executor.h"
#include "src/engine/partitioned_window.h"
#include "src/engine/scan.h"
#include "src/engine/window_aggregate.h"
#include "src/serde/checkpoint.h"
#include "src/stream/sources.h"
#include "src/stream/supervised_source.h"

namespace ausdb {
namespace stream {
namespace {

using dist::RandomVar;
using engine::FieldType;
using engine::Operator;
using engine::OperatorPtr;
using engine::Schema;
using engine::StreamScan;
using engine::Tuple;
using engine::VectorScan;

Schema XSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  return s;
}

Tuple XTuple(double mean, double variance = 1.0, size_t n = 10) {
  return Tuple({expr::Value(RandomVar(
      std::make_shared<dist::GaussianDist>(mean, variance), n))});
}

// ---------------------------------------------------------------------
// RetryPolicy / classification

TEST(RetryPolicyTest, ClassifiesTransientVsFatal) {
  EXPECT_EQ(ClassifyStatus(Status::Unavailable("link down")),
            FailureClass::kTransient);
  EXPECT_EQ(ClassifyStatus(Status::Internal("sensor link dropped")),
            FailureClass::kTransient);
  EXPECT_EQ(ClassifyStatus(Status::InvalidArgument("bad plan")),
            FailureClass::kFatal);
  EXPECT_EQ(ClassifyStatus(Status::TypeError("string + 1")),
            FailureClass::kFatal);
  EXPECT_EQ(ClassifyStatus(Status::ParseError("ragged")),
            FailureClass::kFatal);
  EXPECT_EQ(ClassifyStatus(Status::NotImplemented("no")),
            FailureClass::kFatal);
  // Backpressure clears when the consumer drains; cancellation is a
  // deliberate shutdown and must never be retried.
  EXPECT_EQ(ClassifyStatus(Status::Backpressure("ring full")),
            FailureClass::kTransient);
  EXPECT_EQ(ClassifyStatus(Status::Cancelled("shutdown")),
            FailureClass::kFatal);
}

TEST(RetryPolicyTest, BackoffGrowsAndCaps) {
  RetryPolicy p;
  p.initial_backoff_seconds = 0.010;
  p.backoff_multiplier = 2.0;
  p.max_backoff_seconds = 0.050;
  p.jitter_fraction = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(p.BackoffFor(0, rng), 0.010);
  EXPECT_DOUBLE_EQ(p.BackoffFor(1, rng), 0.020);
  EXPECT_DOUBLE_EQ(p.BackoffFor(2, rng), 0.040);
  EXPECT_DOUBLE_EQ(p.BackoffFor(3, rng), 0.050);  // capped
  EXPECT_DOUBLE_EQ(p.BackoffFor(30, rng), 0.050);
}

TEST(RetryPolicyTest, JitterIsDeterministicAndBounded) {
  RetryPolicy p;
  p.initial_backoff_seconds = 0.100;
  p.jitter_fraction = 0.25;
  Rng a(77), b(77);
  for (size_t retry = 0; retry < 5; ++retry) {
    const double da = p.BackoffFor(retry, a);
    const double db = p.BackoffFor(retry, b);
    EXPECT_DOUBLE_EQ(da, db);  // same seed, same schedule
  }
  Rng c(5);
  const double d = p.BackoffFor(0, c);
  EXPECT_GE(d, 0.100 * 0.75);
  EXPECT_LE(d, 0.100 * 1.25);
}

TEST(RetryPolicyTest, ShouldRetryHonorsBudgetAndClass) {
  RetryPolicy p;
  p.max_attempts = 3;
  EXPECT_TRUE(p.ShouldRetry(Status::Unavailable("x"), 1));
  EXPECT_TRUE(p.ShouldRetry(Status::Unavailable("x"), 2));
  EXPECT_FALSE(p.ShouldRetry(Status::Unavailable("x"), 3));
  EXPECT_FALSE(p.ShouldRetry(Status::InvalidArgument("x"), 1));
  EXPECT_FALSE(p.ShouldRetry(Status::OK(), 1));
}

TEST(RetryPolicyTest, DeadlineBoundsTotalElapsedTime) {
  RetryPolicy p;
  p.max_attempts = 100;  // attempts alone would allow many more retries
  p.max_elapsed_seconds = 1.0;
  EXPECT_TRUE(p.ShouldRetry(Status::Unavailable("x"), 1, 0.0));
  EXPECT_TRUE(p.ShouldRetry(Status::Unavailable("x"), 1, 0.999));
  EXPECT_FALSE(p.ShouldRetry(Status::Unavailable("x"), 1, 1.0));
  EXPECT_FALSE(p.ShouldRetry(Status::Unavailable("x"), 1, 5.0));
  EXPECT_FALSE(p.DeadlineExhausted(0.999));
  EXPECT_TRUE(p.DeadlineExhausted(1.0));

  // 0 disables the deadline (the default): only attempts bound retry.
  p.max_elapsed_seconds = 0.0;
  EXPECT_TRUE(p.ShouldRetry(Status::Unavailable("x"), 1, 1e9));
  EXPECT_FALSE(p.DeadlineExhausted(1e9));
}

TEST(SupervisedScanTest, DeadlineExhaustionSurfacesWithLastError) {
  // A permanently down source: every pull fails transiently. The attempt
  // budget is generous, so the elapsed-time deadline is what gives up.
  auto source = std::make_unique<StreamScan>(
      XSchema(), []() -> Result<std::optional<Tuple>> {
        return Status::Unavailable("feed is down");
      });
  SupervisedScanOptions opts;
  opts.retry.max_attempts = 1000;
  opts.retry.initial_backoff_seconds = 0.010;
  opts.retry.backoff_multiplier = 2.0;
  opts.retry.max_backoff_seconds = 0.080;
  opts.retry.jitter_fraction = 0.0;
  opts.retry.max_elapsed_seconds = 0.200;  // exhausted after a few retries
  SupervisedScan scan(std::move(source), opts);

  auto out = engine::Collect(scan);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsDeadlineExceeded())
      << out.status().ToString();
  // The deadline error carries the last underlying failure.
  EXPECT_NE(out.status().message().find("feed is down"),
            std::string::npos)
      << out.status().ToString();
  EXPECT_EQ(scan.counters().gave_up, 1u);
  EXPECT_GE(scan.counters().backoff_seconds,
            opts.retry.max_elapsed_seconds);
}

TEST(SupervisedScanTest, AttemptCapStillReportsUnderlyingError) {
  // With the attempt cap binding (deadline disabled), the original
  // Status must propagate unchanged — no DeadlineExceeded rewrite.
  auto source = std::make_unique<StreamScan>(
      XSchema(), []() -> Result<std::optional<Tuple>> {
        return Status::Unavailable("feed is down");
      });
  SupervisedScanOptions opts;
  opts.retry.max_attempts = 3;
  SupervisedScan scan(std::move(source), opts);
  auto out = engine::Collect(scan);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsUnavailable()) << out.status().ToString();
  EXPECT_EQ(scan.counters().gave_up, 1u);
}

TEST(RetryClassificationTest, NewCodesAreFatal) {
  // Corruption and deadline exhaustion must not be retried: retrying
  // cannot repair damaged bytes, and a deadline already includes all the
  // retrying it was willing to do.
  EXPECT_EQ(ClassifyStatus(Status::Corruption("bad checksum")),
            FailureClass::kFatal);
  EXPECT_EQ(ClassifyStatus(Status::DeadlineExceeded("budget spent")),
            FailureClass::kFatal);
}

TEST(RetryClassificationTest, OverloadCodesSplitByRecoverability) {
  // Governor admission rejections are transient: pressure relaxes, and
  // the refused pull will be admitted at a later epoch. A blown memory
  // budget is fatal to the pull: the budget does not free itself, so
  // the supervisor must surface it, not spin on it.
  EXPECT_EQ(ClassifyStatus(Status::Overloaded("admission control")),
            FailureClass::kTransient);
  EXPECT_EQ(ClassifyStatus(Status::Backpressure("ring full")),
            FailureClass::kTransient);
  EXPECT_EQ(ClassifyStatus(Status::ResourceExhausted("budget spent")),
            FailureClass::kFatal);
}

TEST(RetryPolicyTest, DeadlineExhaustedBoundariesAreExact) {
  RetryPolicy p;
  p.max_attempts = 1000;
  p.max_elapsed_seconds = 0.5;
  // The decision flips exactly at the deadline — elapsed time is
  // accumulated scheduled backoff, so the boundary is deterministic,
  // not a wall-clock race.
  EXPECT_FALSE(p.DeadlineExhausted(0.0));
  EXPECT_FALSE(p.DeadlineExhausted(std::nextafter(0.5, 0.0)));
  EXPECT_TRUE(p.DeadlineExhausted(0.5));
  EXPECT_TRUE(p.DeadlineExhausted(std::nextafter(0.5, 1.0)));
  // ShouldRetry and DeadlineExhausted agree at the boundary: whenever
  // the deadline forbids a retry of a transient error, it also claims
  // responsibility for the give-up.
  EXPECT_TRUE(p.ShouldRetry(Status::Overloaded("x"), 1,
                            std::nextafter(0.5, 0.0)));
  EXPECT_FALSE(p.ShouldRetry(Status::Overloaded("x"), 1, 0.5));
}

TEST(SupervisedScanTest, RidesOutTransientOverload) {
  // A source refusing admission a few times before each tuple: the
  // supervisor retries kOverloaded like any transient fault, and the
  // full stream arrives.
  size_t pulls = 0;
  size_t emitted = 0;
  auto source = std::make_unique<StreamScan>(
      XSchema(), [&]() -> Result<std::optional<Tuple>> {
        if (++pulls % 3 != 0) {
          return Status::Overloaded("governor admission control");
        }
        if (emitted >= 5) return std::optional<Tuple>(std::nullopt);
        return std::optional<Tuple>(XTuple(static_cast<double>(emitted++)));
      });
  SupervisedScanOptions opts;
  opts.retry.max_attempts = 10;
  opts.retry.initial_backoff_seconds = 0.0;
  opts.retry.jitter_fraction = 0.0;
  SupervisedScan scan(std::move(source), opts);
  auto out = engine::Collect(scan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 5u) << "admission control delays, never drops";
  EXPECT_GE(scan.counters().retries, 10u);
  EXPECT_EQ(scan.counters().gave_up, 0u);
}

// ---------------------------------------------------------------------
// FaultInjector

TEST(FaultInjectorTest, EveryKth) {
  FaultInjector fi({.mode = FaultMode::kEveryKth, .every_k = 3});
  std::vector<bool> failed;
  for (int i = 0; i < 9; ++i) failed.push_back(!fi.Tick().ok());
  EXPECT_EQ(failed, (std::vector<bool>{false, false, true, false, false,
                                       true, false, false, true}));
  EXPECT_EQ(fi.calls(), 9u);
  EXPECT_EQ(fi.injected(), 3u);
}

TEST(FaultInjectorTest, AfterNWithBoundedFailures) {
  FaultSpec spec;
  spec.mode = FaultMode::kAfterN;
  spec.after_n = 2;
  spec.max_failures = 2;
  FaultInjector fi(spec);
  EXPECT_TRUE(fi.Tick().ok());
  EXPECT_TRUE(fi.Tick().ok());
  EXPECT_TRUE(fi.Tick().IsUnavailable());
  EXPECT_TRUE(fi.Tick().IsUnavailable());
  EXPECT_TRUE(fi.Tick().ok());  // glitch over: max_failures reached
}

TEST(FaultInjectorTest, ProbabilityIsSeededDeterministic) {
  FaultSpec spec;
  spec.mode = FaultMode::kProbability;
  spec.probability = 0.3;
  FaultInjector a(spec, 9), b(spec, 9);
  size_t failures = 0;
  for (int i = 0; i < 1000; ++i) {
    const bool fa = !a.Tick().ok();
    const bool fb = !b.Tick().ok();
    EXPECT_EQ(fa, fb);
    failures += fa;
  }
  EXPECT_GT(failures, 200u);
  EXPECT_LT(failures, 400u);
  a.Reset();
  EXPECT_EQ(a.calls(), 0u);
}

TEST(FaultInjectorTest, CustomStatusCode) {
  FaultSpec spec;
  spec.mode = FaultMode::kAfterN;
  spec.after_n = 0;
  spec.code = StatusCode::kInvalidArgument;
  spec.message = "poison pill";
  FaultInjector fi(spec);
  const Status s = fi.Tick();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("poison pill"), std::string::npos);
}

// ---------------------------------------------------------------------
// SupervisedScan

/// A source that produces `total` tuples but raises a transient failure
/// on every `glitch_every`-th pull (the tuple is not consumed: a retry
/// gets it).
OperatorPtr GlitchySource(size_t total, size_t glitch_every,
                          std::shared_ptr<FaultInjector>* out_fi = nullptr) {
  FaultSpec spec;
  spec.mode = FaultMode::kEveryKth;
  spec.every_k = glitch_every;
  spec.max_failures = 0;
  auto fi = std::make_shared<FaultInjector>(spec);
  if (out_fi != nullptr) *out_fi = fi;
  auto produced = std::make_shared<size_t>(0);
  return std::make_unique<StreamScan>(
      XSchema(),
      [fi, produced, total]() -> Result<std::optional<Tuple>> {
        if (*produced >= total) return std::optional<Tuple>(std::nullopt);
        AUSDB_RETURN_NOT_OK(fi->Tick());
        ++*produced;
        return std::optional<Tuple>(XTuple(5.0));
      });
}

TEST(SupervisedScanTest, RecoversFromTransientFailures) {
  std::shared_ptr<FaultInjector> fi;
  SupervisedScan scan(GlitchySource(100, 7, &fi), {});
  auto out = engine::Collect(scan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 100u);
  EXPECT_GT(scan.counters().retries, 0u);
  EXPECT_EQ(scan.counters().retries, fi->injected());
  EXPECT_EQ(scan.counters().emitted, 100u);
  EXPECT_EQ(scan.counters().gave_up, 0u);
  EXPECT_GT(scan.counters().backoff_seconds, 0.0);
}

TEST(SupervisedScanTest, FatalErrorFailsFastWithOriginalStatus) {
  auto produced = std::make_shared<size_t>(0);
  auto source = std::make_unique<StreamScan>(
      XSchema(), [produced]() -> Result<std::optional<Tuple>> {
        if (*produced >= 3) {
          return Status::InvalidArgument("schema drift detected");
        }
        ++*produced;
        return std::optional<Tuple>(XTuple(1.0));
      });
  SupervisedScan scan(std::move(source), {});
  auto out = engine::Collect(scan);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsInvalidArgument());
  EXPECT_NE(out.status().message().find("schema drift"),
            std::string::npos);
  EXPECT_EQ(scan.counters().retries, 0u);
  EXPECT_EQ(scan.counters().gave_up, 0u);
}

TEST(SupervisedScanTest, GivesUpAfterRetryBudget) {
  // Permanent outage: every pull fails transiently.
  FaultSpec spec;
  spec.mode = FaultMode::kAfterN;
  spec.after_n = 5;
  auto fi = std::make_shared<FaultInjector>(spec);
  auto source = std::make_unique<StreamScan>(
      XSchema(), [fi]() -> Result<std::optional<Tuple>> {
        AUSDB_RETURN_NOT_OK(fi->Tick());
        return std::optional<Tuple>(XTuple(1.0));
      });
  SupervisedScanOptions opts;
  opts.retry.max_attempts = 4;
  SupervisedScan scan(std::move(source), std::move(opts));
  auto out = engine::Collect(scan);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsUnavailable());
  EXPECT_EQ(scan.counters().gave_up, 1u);
  EXPECT_EQ(scan.counters().retries, 3u);  // 4 attempts = 3 retries
  EXPECT_EQ(scan.counters().emitted, 5u);
}

TEST(SupervisedScanTest, RestartCallbackInvokedOncePerSequence) {
  FaultSpec spec;
  spec.mode = FaultMode::kAfterN;
  spec.after_n = 3;
  spec.max_failures = 3;
  auto fi = std::make_shared<FaultInjector>(spec);
  auto source = std::make_unique<StreamScan>(
      XSchema(), [fi]() -> Result<std::optional<Tuple>> {
        AUSDB_RETURN_NOT_OK(fi->Tick());
        return std::optional<Tuple>(XTuple(2.0));
      });
  size_t restarted = 0;
  SupervisedScanOptions opts;
  opts.retry.max_attempts = 8;
  opts.restart = [&restarted]() {
    ++restarted;
    return Status::OK();
  };
  opts.restart_after_attempts = 2;
  SupervisedScan scan(std::move(source), std::move(opts));
  auto out = engine::CollectLimit(scan, 6);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 6u);
  EXPECT_EQ(restarted, 1u);
  EXPECT_EQ(scan.counters().restarts, 1u);
}

TEST(SupervisedScanTest, InvalidTuplesAreQuarantinedWithStatus) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<Tuple> tuples = {XTuple(1.0), XTuple(nan), XTuple(2.0),
                               XTuple(3.0, 1.0, /*n=*/0), XTuple(4.0)};
  auto scan = std::make_unique<VectorScan>(XSchema(), std::move(tuples));
  SupervisedScan supervised(std::move(scan), {});
  auto out = engine::Collect(supervised);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 3u);
  EXPECT_EQ(supervised.counters().emitted, 3u);
  EXPECT_EQ(supervised.counters().quarantined, 2u);
  ASSERT_EQ(supervised.quarantine().size(), 2u);
  EXPECT_TRUE(
      supervised.quarantine()[0].status.IsInvalidArgument());  // NaN mean
  EXPECT_NE(supervised.quarantine()[0].status.message().find("x"),
            std::string::npos);
  EXPECT_TRUE(
      supervised.quarantine()[1].status.IsInsufficientData());  // n == 0
}

TEST(SupervisedScanTest, QuarantineIsBounded) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<Tuple> tuples;
  for (int i = 0; i < 10; ++i) tuples.push_back(XTuple(nan));
  auto scan = std::make_unique<VectorScan>(XSchema(), std::move(tuples));
  SupervisedScanOptions opts;
  opts.quarantine_capacity = 4;
  SupervisedScan supervised(std::move(scan), std::move(opts));
  auto out = engine::Collect(supervised);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  EXPECT_EQ(supervised.counters().quarantined, 10u);  // all accounted
  EXPECT_EQ(supervised.quarantine().size(), 4u);      // buffer bounded
  // Oldest evicted: the survivors are the last four (sequences 6..9).
  EXPECT_EQ(supervised.quarantine().front().tuple.sequence(), 6u);
}

TEST(SupervisedScanTest, DegradationSubstitutesWidePrior) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<Tuple> tuples = {XTuple(1.0), XTuple(nan), XTuple(2.0)};
  auto scan = std::make_unique<VectorScan>(XSchema(), std::move(tuples));
  SupervisedScanOptions opts;
  opts.degradation = MakeWideGaussianDegradation(0.0, 100.0, /*n=*/2);
  SupervisedScan supervised(std::move(scan), std::move(opts));
  auto out = engine::Collect(supervised);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 3u);  // degraded, not dropped
  EXPECT_EQ(supervised.counters().emitted, 2u);
  EXPECT_EQ(supervised.counters().degraded, 1u);
  EXPECT_EQ(supervised.counters().quarantined, 0u);
  const auto rv = *(*out)[1].value(0).random_var();
  EXPECT_DOUBLE_EQ(rv.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(rv.Variance(), 100.0);
  EXPECT_EQ(rv.sample_size(), 2u);
  EXPECT_EQ((*out)[1].sequence(), 1u);  // provenance preserved
}

TEST(SupervisedScanTest, ResetClearsCountersAndQuarantine) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<Tuple> tuples = {XTuple(1.0), XTuple(nan)};
  auto scan = std::make_unique<VectorScan>(XSchema(), std::move(tuples));
  SupervisedScan supervised(std::move(scan), {});
  ASSERT_TRUE(engine::Collect(supervised).ok());
  EXPECT_EQ(supervised.counters().quarantined, 1u);
  ASSERT_TRUE(supervised.Reset().ok());
  EXPECT_EQ(supervised.counters().quarantined, 0u);
  EXPECT_TRUE(supervised.quarantine().empty());
  auto again = engine::Collect(supervised);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 1u);
}

TEST(SupervisedScanTest, PipelineWithInjectedFaultsMatchesCleanRun) {
  // Acceptance: a windowed pipeline over a glitchy source produces
  // exactly the same results as one over a clean source.
  auto clean =
      engine::WindowAggregate::Make(GlitchySource(200, 0x7fffffff), "x",
                                    "avg", {.window_size = 16});
  ASSERT_TRUE(clean.ok());
  auto clean_out = engine::Collect(**clean);
  ASSERT_TRUE(clean_out.ok());

  std::shared_ptr<FaultInjector> fi;
  auto supervised = std::make_unique<SupervisedScan>(
      GlitchySource(200, 5, &fi), SupervisedScanOptions{});
  auto* sup = supervised.get();
  auto agg = engine::WindowAggregate::Make(std::move(supervised), "x",
                                           "avg", {.window_size = 16});
  ASSERT_TRUE(agg.ok());
  auto out = engine::Collect(**agg);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), clean_out->size());
  EXPECT_GT(sup->counters().retries, 0u);
  for (size_t i = 0; i < out->size(); ++i) {
    const auto a = *(*out)[i].value(0).random_var();
    const auto b = *(*clean_out)[i].value(0).random_var();
    EXPECT_EQ(a.Mean(), b.Mean());
    EXPECT_EQ(a.Variance(), b.Variance());
  }
}

// ---------------------------------------------------------------------
// Checkpoint serde

TEST(CheckpointSerdeTest, RoundTripsTokensAndBitExactDoubles) {
  serde::CheckpointWriter w;
  w.Token("tag.v1");
  w.Uint(12345678901234ULL);
  w.Double(0.1);  // not exactly representable: decimal would drift
  w.Double(-0.0);
  w.Double(std::numeric_limits<double>::infinity());
  w.Bytes("key with spaces\nand:colons");
  w.Bytes("");
  const std::string blob = std::move(w).Finish();

  serde::CheckpointReader r(blob);
  ASSERT_TRUE(r.ExpectToken("tag.v1").ok());
  EXPECT_EQ(*r.NextUint(), 12345678901234ULL);
  double d = *r.NextDouble();
  EXPECT_EQ(d, 0.1);
  d = *r.NextDouble();
  EXPECT_EQ(d, 0.0);
  EXPECT_TRUE(std::signbit(d));
  EXPECT_TRUE(std::isinf(*r.NextDouble()));
  EXPECT_EQ(*r.NextBytes(), "key with spaces\nand:colons");
  EXPECT_EQ(*r.NextBytes(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(CheckpointSerdeTest, RejectsMalformedInput) {
  serde::CheckpointReader truncated("tag");
  ASSERT_TRUE(truncated.ExpectToken("tag").ok());
  EXPECT_TRUE(truncated.NextUint().status().IsCorruption());

  serde::CheckpointReader wrong_tag("other");
  EXPECT_TRUE(wrong_tag.ExpectToken("tag").IsCorruption());

  serde::CheckpointReader bad_int("12x4");
  EXPECT_TRUE(bad_int.NextUint().status().IsCorruption());

  serde::CheckpointReader bad_double("zz");
  EXPECT_TRUE(bad_double.NextDouble().status().IsCorruption());

  serde::CheckpointReader short_bytes("10:abc");
  EXPECT_TRUE(short_bytes.NextBytes().status().IsCorruption());
}

// ---------------------------------------------------------------------
// Operator checkpoint/restore

std::vector<Tuple> GaussianTuples(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(XTuple(rng.NextDouble(0.0, 20.0),
                         rng.NextDouble(0.5, 2.0), 10 + i % 5));
  }
  return out;
}

TEST(CheckpointTest, DefaultOperatorDoesNotSupportCheckpoints) {
  VectorScan scan(XSchema(), {});
  EXPECT_TRUE(scan.SaveCheckpoint().status().IsNotImplemented());
  EXPECT_TRUE(scan.RestoreCheckpoint("").IsNotImplemented());
}

TEST(CheckpointTest, WindowAggregateResumesMidWindowBitForBit) {
  constexpr size_t kTuples = 100;
  constexpr size_t kWindow = 16;
  constexpr size_t kKill = 37;  // mid-window: 37 outputs consumed
  const std::vector<Tuple> tuples = GaussianTuples(kTuples, 31);

  // Uninterrupted run.
  auto full = engine::WindowAggregate::Make(
      std::make_unique<VectorScan>(XSchema(), tuples), "x", "avg",
      {.window_size = kWindow});
  ASSERT_TRUE(full.ok());
  auto full_out = engine::Collect(**full);
  ASSERT_TRUE(full_out.ok());
  ASSERT_EQ(full_out->size(), kTuples - kWindow + 1);

  // Interrupted run: consume kKill outputs, checkpoint, "crash".
  auto first = engine::WindowAggregate::Make(
      std::make_unique<VectorScan>(XSchema(), tuples), "x", "avg",
      {.window_size = kWindow});
  ASSERT_TRUE(first.ok());
  auto head = engine::CollectLimit(**first, kKill);
  ASSERT_TRUE(head.ok());
  ASSERT_EQ(head->size(), kKill);
  auto blob = (*first)->SaveCheckpoint();
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  first->reset();  // the crash

  // Restored run: a fresh operator over the *remaining* input.
  const size_t inputs_consumed = kWindow + kKill - 1;
  std::vector<Tuple> rest(tuples.begin() + inputs_consumed, tuples.end());
  auto resumed = engine::WindowAggregate::Make(
      std::make_unique<VectorScan>(XSchema(), std::move(rest)), "x",
      "avg", {.window_size = kWindow});
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE((*resumed)->RestoreCheckpoint(*blob).ok());
  auto tail = engine::Collect(**resumed);
  ASSERT_TRUE(tail.ok());

  ASSERT_EQ(head->size() + tail->size(), full_out->size());
  for (size_t i = 0; i < full_out->size(); ++i) {
    const Tuple& got =
        i < head->size() ? (*head)[i] : (*tail)[i - head->size()];
    const auto a = *got.value(0).random_var();
    const auto b = *(*full_out)[i].value(0).random_var();
    // Bit-for-bit: the checkpoint preserves the accumulators' exact
    // floating-point history, not a recomputed approximation.
    EXPECT_EQ(a.Mean(), b.Mean()) << "output " << i;
    EXPECT_EQ(a.Variance(), b.Variance()) << "output " << i;
    EXPECT_EQ(a.sample_size(), b.sample_size()) << "output " << i;
  }
}

TEST(CheckpointTest, WindowAggregateRejectsMismatchedShape) {
  auto a = engine::WindowAggregate::Make(
      std::make_unique<VectorScan>(XSchema(), GaussianTuples(20, 1)), "x",
      "avg", {.window_size = 8});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(engine::CollectLimit(**a, 5).ok());
  auto blob = (*a)->SaveCheckpoint();
  ASSERT_TRUE(blob.ok());

  auto b = engine::WindowAggregate::Make(
      std::make_unique<VectorScan>(XSchema(), std::vector<Tuple>{}), "x",
      "avg", {.window_size = 16});  // different window size
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE((*b)->RestoreCheckpoint(*blob).IsInvalidArgument());
  EXPECT_TRUE((*b)->RestoreCheckpoint("garbage").IsCorruption());
}

TEST(CheckpointTest, PartitionedWindowRoundTripsAllPartitions) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"key", FieldType::kString}).ok());
  ASSERT_TRUE(schema.AddField({"x", FieldType::kUncertain}).ok());
  std::vector<Tuple> tuples;
  Rng rng(4);
  for (size_t r = 0; r < 30; ++r) {
    for (size_t k = 0; k < 5; ++k) {
      tuples.emplace_back(std::vector<expr::Value>{
          expr::Value("k" + std::to_string(k)),
          expr::Value(RandomVar(
              std::make_shared<dist::GaussianDist>(
                  rng.NextDouble(0.0, 10.0), 1.0),
              10))});
    }
  }

  auto full = engine::PartitionedWindowAggregate::Make(
      std::make_unique<VectorScan>(schema, tuples), "key", "x", "avg",
      {.window_size = 8});
  ASSERT_TRUE(full.ok());
  auto full_out = engine::Collect(**full);
  ASSERT_TRUE(full_out.ok());

  constexpr size_t kKill = 40;
  auto first = engine::PartitionedWindowAggregate::Make(
      std::make_unique<VectorScan>(schema, tuples), "key", "x", "avg",
      {.window_size = 8});
  ASSERT_TRUE(first.ok());
  auto head = engine::CollectLimit(**first, kKill);
  ASSERT_TRUE(head.ok());
  auto blob = (*first)->SaveCheckpoint();
  ASSERT_TRUE(blob.ok());

  // Inputs consumed = outputs + per-key warmup (7 per key, all 5 keys
  // warmed before the 40th output).
  const size_t inputs_consumed = kKill + 5 * 7;
  std::vector<Tuple> rest(tuples.begin() + inputs_consumed, tuples.end());
  auto resumed = engine::PartitionedWindowAggregate::Make(
      std::make_unique<VectorScan>(schema, std::move(rest)), "key", "x",
      "avg", {.window_size = 8});
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE((*resumed)->RestoreCheckpoint(*blob).ok());
  EXPECT_EQ((*resumed)->partition_count(), 5u);
  auto tail = engine::Collect(**resumed);
  ASSERT_TRUE(tail.ok());

  ASSERT_EQ(head->size() + tail->size(), full_out->size());
  for (size_t i = 0; i < full_out->size(); ++i) {
    const Tuple& got =
        i < head->size() ? (*head)[i] : (*tail)[i - head->size()];
    EXPECT_EQ(*got.value(0).string_value(),
              *(*full_out)[i].value(0).string_value());
    const auto a = *got.value(1).random_var();
    const auto b = *(*full_out)[i].value(1).random_var();
    EXPECT_EQ(a.Mean(), b.Mean()) << "output " << i;
    EXPECT_EQ(a.Variance(), b.Variance()) << "output " << i;
  }
}

TEST(CheckpointTest, ExecutorWritesPeriodicCheckpoints) {
  auto agg = engine::WindowAggregate::Make(
      std::make_unique<VectorScan>(XSchema(), GaussianTuples(50, 2)), "x",
      "avg", {.window_size = 4});
  ASSERT_TRUE(agg.ok());
  engine::InMemoryCheckpointSink sink;
  auto out = engine::CollectWithCheckpoints(**agg, /*every_n=*/10, sink);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 47u);
  EXPECT_EQ(sink.writes(), 4u);  // after outputs 10, 20, 30, 40
  EXPECT_TRUE(sink.has_checkpoint());
  EXPECT_EQ(sink.last_tuples_emitted(), 40u);
  EXPECT_FALSE(sink.last_blob().empty());
  // The recorded blob restores cleanly into a fresh operator.
  auto fresh = engine::WindowAggregate::Make(
      std::make_unique<VectorScan>(XSchema(), std::vector<Tuple>{}), "x",
      "avg", {.window_size = 4});
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE((*fresh)->RestoreCheckpoint(sink.last_blob()).ok());
}

TEST(CheckpointTest, ExecutorRejectsUncheckpointableRoot) {
  VectorScan scan(XSchema(), GaussianTuples(5, 3));
  engine::InMemoryCheckpointSink sink;
  auto out = engine::CollectWithCheckpoints(scan, 2, sink);
  EXPECT_TRUE(out.status().IsNotImplemented());
}

}  // namespace
}  // namespace stream
}  // namespace ausdb
