// End-to-end crash recovery: the durable checkpoint file format and
// generation store, RecoveryManager whole-pipeline snapshots with source
// replay, and the exhaustive crash-point sweep — for EVERY place the
// process can die, the resumed pipeline's output must be bit-identical
// to an uninterrupted run.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/crc32c.h"
#include "src/common/fault_injector.h"
#include "src/common/logging.h"
#include "src/engine/filter.h"
#include "src/engine/project.h"
#include "src/engine/recovery_manager.h"
#include "src/engine/sharded_partitioned_window.h"
#include "src/obs/exposition.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serde/checkpoint.h"
#include "src/serde/checkpoint_file.h"
#include "src/stream/async_prefetch_source.h"
#include "src/stream/replayable_source.h"

namespace ausdb {
namespace engine {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per test case (removed on destruction).
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("ausdb_recovery_" + tag + "_" +
              std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------
// CRC32C kernel

TEST(Crc32cTest, MatchesRfc3720CheckValue) {
  // The standard CRC32C check value (RFC 3720 appendix B.4).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, ExtendComposes) {
  const std::string data = "accuracy-aware uncertain stream databases";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(kCrc32cInit, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data(73, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 37 + 11);
  }
  const uint32_t clean = Crc32c(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(flipped), clean)
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

// ---------------------------------------------------------------------
// Checkpoint file envelope

TEST(CheckpointFileTest, RoundTrips) {
  const std::string payload = "wagg.v3 0 0 8 12 tokens \x01\x02\xff";
  auto decoded = serde::DecodeCheckpointFile(
      serde::EncodeCheckpointFile(payload));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, payload);
}

TEST(CheckpointFileTest, RoundTripsEmptyPayload) {
  auto decoded = serde::DecodeCheckpointFile(serde::EncodeCheckpointFile(""));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, "");
}

TEST(CheckpointFileTest, RejectsBadMagicVersionLengthAndTrailing) {
  const std::string file = serde::EncodeCheckpointFile("payload bytes");

  std::string bad_magic = file;
  bad_magic[0] = 'X';
  EXPECT_TRUE(serde::DecodeCheckpointFile(bad_magic).status().IsCorruption());

  std::string bad_version = file;
  bad_version[8] = static_cast<char>(99);
  EXPECT_TRUE(
      serde::DecodeCheckpointFile(bad_version).status().IsCorruption());

  // A length field pointing far past the file must be rejected before
  // anything is allocated from it.
  std::string huge_length = file;
  huge_length[18] = static_cast<char>(0x7f);
  EXPECT_TRUE(
      serde::DecodeCheckpointFile(huge_length).status().IsCorruption());

  EXPECT_TRUE(
      serde::DecodeCheckpointFile(file + "x").status().IsCorruption());
  EXPECT_TRUE(serde::DecodeCheckpointFile("").status().IsCorruption());
}

TEST(CheckpointFileTest, DetectsEveryTruncationAndEveryBitFlip) {
  const std::string file = serde::EncodeCheckpointFile(
      "spwagg.v1 1 0 5 17 3 2:k0 some window state tokens");
  // Every proper prefix must fail to decode...
  for (size_t len = 0; len < file.size(); ++len) {
    auto r = serde::DecodeCheckpointFile(file.substr(0, len));
    EXPECT_TRUE(r.status().IsCorruption()) << "truncated to " << len;
  }
  // ...and every single-bit flip must be caught (by field validation or
  // by the CRC, which covers header and payload alike).
  for (size_t byte = 0; byte < file.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = file;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      auto r = serde::DecodeCheckpointFile(flipped);
      EXPECT_FALSE(r.ok()) << "flip at byte " << byte << " bit " << bit;
    }
  }
}

// ---------------------------------------------------------------------
// Atomic write + generation store

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(AtomicWriteFileTest, WritesAndOverwrites) {
  ScratchDir dir("atomic");
  const std::string path = dir.path() + "/file.bin";
  ASSERT_TRUE(serde::AtomicWriteFile(path, "first").ok());
  EXPECT_EQ(Slurp(path), "first");
  ASSERT_TRUE(serde::AtomicWriteFile(path, "second, longer").ok());
  EXPECT_EQ(Slurp(path), "second, longer");
}

TEST(AtomicWriteFileTest, CrashSitesLeaveTargetUntouched) {
  ScratchDir dir("atomic_crash");
  const std::string path = dir.path() + "/file.bin";
  ASSERT_TRUE(serde::AtomicWriteFile(path, "intact").ok());

  // Crash sites 1..3 (before-write, mid-write, pre-rename) must leave
  // the published file untouched; site 4 (post-rename) has completed.
  for (size_t crash_at = 1; crash_at <= 4; ++crash_at) {
    CrashPointInjector inj(crash_at);
    const Status st =
        serde::AtomicWriteFile(path, "replacement bytes", &inj);
    ASSERT_TRUE(inj.fired()) << "crash_at " << crash_at;
    EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
    if (crash_at < 4) {
      EXPECT_EQ(Slurp(path), "intact") << "crash_at " << crash_at;
    } else {
      EXPECT_EQ(Slurp(path), "replacement bytes");
    }
  }
  CrashPointInjector never(CrashPointInjector::kNever);
  ASSERT_TRUE(serde::AtomicWriteFile(path, "final", &never).ok());
  EXPECT_EQ(never.sites_visited(), 4u);
}

TEST(CheckpointStorageTest, RotatesAndReadsNewest) {
  ScratchDir dir("rotate");
  serde::CheckpointStorageOptions opts;
  opts.keep_generations = 3;
  serde::CheckpointStorage store(dir.path(), "test", opts);

  EXPECT_TRUE(store.ReadNewestIntact().status().IsNotFound());
  for (int g = 1; g <= 5; ++g) {
    auto wrote = store.Write("payload " + std::to_string(g));
    ASSERT_TRUE(wrote.ok()) << wrote.status().ToString();
    EXPECT_EQ(*wrote, static_cast<uint64_t>(g));
  }
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{3, 4, 5}));
  auto newest = store.ReadNewestIntact();
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(newest->generation, 5u);
  EXPECT_EQ(newest->payload, "payload 5");
}

TEST(CheckpointStorageTest, FallsBackGenerationByGeneration) {
  ScratchDir dir("fallback");
  serde::CheckpointStorage store(dir.path(), "test");
  ASSERT_TRUE(store.Write("gen one").ok());
  ASSERT_TRUE(store.Write("gen two").ok());
  ASSERT_TRUE(store.Write("gen three").ok());

  // Corrupt the newest (bit flip) and truncate the middle one: recovery
  // must land on generation 1.
  {
    std::string bytes = Slurp(store.GenerationPath(3));
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
    std::ofstream(store.GenerationPath(3), std::ios::binary) << bytes;
    std::string mid = Slurp(store.GenerationPath(2));
    std::ofstream(store.GenerationPath(2), std::ios::binary)
        << mid.substr(0, mid.size() / 3);
  }
  auto newest = store.ReadNewestIntact();
  ASSERT_TRUE(newest.ok()) << newest.status().ToString();
  EXPECT_EQ(newest->generation, 1u);
  EXPECT_EQ(newest->payload, "gen one");

  // With every generation damaged, recovery reports NotFound (fresh
  // start) rather than resuming from corrupt state.
  std::ofstream(store.GenerationPath(1), std::ios::binary) << "garbage";
  EXPECT_TRUE(store.ReadNewestIntact().status().IsNotFound());
}

// ---------------------------------------------------------------------
// Replayable sources

TEST(ReplayableSourceTest, SeekReproducesExactStream) {
  stream::KeyedGaussianSourceOptions opts;
  opts.count = 40;
  opts.points_per_item = 3;
  auto make = stream::ReplayableKeyedGaussianSource::Make(opts);
  ASSERT_TRUE(make.ok());
  auto& source = **make;

  // Golden pass.
  std::vector<engine::Tuple> golden;
  for (;;) {
    auto t = source.Next();
    ASSERT_TRUE(t.ok());
    if (!t->has_value()) break;
    golden.push_back(std::move(**t));
  }
  ASSERT_EQ(golden.size(), 40u);
  EXPECT_EQ(source.position(), 40u);

  // Seeking to any position replays the identical suffix, bit for bit.
  for (uint64_t pos : {0u, 1u, 7u, 39u, 40u}) {
    ASSERT_TRUE(source.SeekTo(pos).ok());
    EXPECT_EQ(source.position(), pos);
    for (uint64_t i = pos; i < golden.size(); ++i) {
      auto t = source.Next();
      ASSERT_TRUE(t.ok() && t->has_value());
      EXPECT_EQ((*t)->sequence(), golden[i].sequence());
      EXPECT_EQ(*(*t)->value(0).string_value(),
                *golden[i].value(0).string_value());
      auto a = (*t)->value(1).random_var();
      auto b = golden[i].value(1).random_var();
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(a->Mean(), b->Mean()) << "position " << i;
      EXPECT_EQ(a->Variance(), b->Variance()) << "position " << i;
      EXPECT_EQ(a->sample_size(), b->sample_size());
    }
  }
  EXPECT_TRUE(source.SeekTo(41).IsInvalidArgument());
}

TEST(ReplayableSourceTest, CsvSourceSeeksByRow) {
  ScratchDir dir("csv");
  const std::string path = dir.path() + "/data.csv";
  std::ofstream(path) << "key,reading\nk0,1.5\nk1,2.5\nk0,3.5\n";

  engine::Schema schema;
  ASSERT_TRUE(schema.AddField({"key", FieldType::kString}).ok());
  ASSERT_TRUE(schema.AddField({"reading", FieldType::kDouble}).ok());
  auto make = stream::CsvReplayableSource::Make(path, schema);
  ASSERT_TRUE(make.ok()) << make.status().ToString();
  auto& source = **make;
  EXPECT_EQ(source.row_count(), 3u);

  ASSERT_TRUE(source.SeekTo(2).ok());
  auto t = source.Next();
  ASSERT_TRUE(t.ok() && t->has_value());
  EXPECT_EQ(*(*t)->value(0).string_value(), "k0");
  EXPECT_EQ(*(*t)->value(1).double_value(), 3.5);
  EXPECT_EQ((*t)->sequence(), 2u);
  auto end = source.Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
  EXPECT_TRUE(source.SeekTo(4).IsInvalidArgument());
}

// ---------------------------------------------------------------------
// The crash-point sweep
//
// Pipeline under test: replayable keyed Gaussian source
//   -> ShardedPartitionedWindowAggregate (stateful, mid-batch queue)
//   -> Filter key != "k1"                (stateless)
//   -> Project (key, avg)                (stateless)
// The consumer (this test) survives crashes — like a downstream system
// would — and keeps its `delivered` log; on resume it discards the
// re-emitted overlap after asserting it is bit-identical.

struct SweepConfig {
  size_t count = 120;
  size_t window = 5;
  size_t shards = 3;
  size_t batch = 16;
  size_t checkpoint_every = 16;  // delivered outputs between checkpoints

  /// Wrap the source in AsyncPrefetchReplayableSource: the crash sweep
  /// then kills the pipeline with tuples resident in the prefetch ring,
  /// and recovery must replay the discarded residue bit-identically.
  bool prefetch = false;
  size_t queue_depth = 8;

  /// Instrumentation under test: when set, the RecoveryManager records
  /// checkpoint/restore metrics and spans, and the consumer accounts
  /// every discarded re-emitted output via NoteReplayedOutput(). The
  /// delivered log must be byte-identical either way.
  obs::MetricRegistry* metrics = nullptr;
  obs::TraceBuffer* trace = nullptr;
  /// When non-null, accumulates the overlap the consumer discarded — the
  /// test-side ground truth the replayed-outputs counter must equal.
  size_t* replayed_acc = nullptr;
};

// Bit-exact fingerprint of an output tuple (hex doubles, not decimal).
std::string Fingerprint(const Tuple& t) {
  serde::CheckpointWriter w;
  w.Bytes(*t.value(0).string_value());
  auto rv = t.value(1).random_var();
  AUSDB_CHECK(rv.ok());
  w.Double(rv->Mean());
  w.Double(rv->Variance());
  w.Uint(rv->sample_size());
  w.Uint(t.sequence());
  w.Double(t.membership_prob());
  w.Uint(t.membership_df_n());
  return std::move(w).Finish();
}

// One simulated process lifetime: build the pipeline, recover from the
// newest intact checkpoint, and run until end-of-stream or the injected
// crash. Returns OK when the stream completed. With cfg.prefetch the
// replayable source is wrapped in a prefetching source and the WRAPPER
// is registered for recovery; `backlog_at_exit` (when non-null)
// receives how many tuples the producer had read ahead of the consumer
// when the lifetime ended — the ring residue a crash abandons.
Status RunLifetime(const SweepConfig& cfg, const std::string& dir,
                   CrashPointInjector* inj,
                   std::vector<std::string>* delivered,
                   size_t* backlog_at_exit = nullptr) {
  stream::KeyedGaussianSourceOptions sopts;
  sopts.count = cfg.count;
  sopts.points_per_item = 3;
  AUSDB_ASSIGN_OR_RETURN(auto raw_source,
                         stream::ReplayableKeyedGaussianSource::Make(sopts));
  std::unique_ptr<ReplayableSource> source_owned = std::move(raw_source);
  stream::AsyncPrefetchReplayableSource* prefetcher = nullptr;
  if (cfg.prefetch) {
    stream::AsyncPrefetchOptions popts;
    popts.queue_depth = cfg.queue_depth;
    auto wrapped = std::make_unique<stream::AsyncPrefetchReplayableSource>(
        std::move(source_owned), popts);
    prefetcher = wrapped.get();
    source_owned = std::move(wrapped);
  }
  ReplayableSource* source = source_owned.get();

  ShardedWindowOptions wopts;
  wopts.window.window_size = cfg.window;
  wopts.num_shards = cfg.shards;
  wopts.batch_size = cfg.batch;
  AUSDB_ASSIGN_OR_RETURN(
      auto spwagg_owned,
      ShardedPartitionedWindowAggregate::Make(
          std::move(source_owned), "key", "value", "avg", wopts));
  ShardedPartitionedWindowAggregate* spwagg = spwagg_owned.get();

  auto filter = std::make_unique<Filter>(
      std::move(spwagg_owned),
      expr::Cmp(expr::CmpOp::kNe, expr::Col("key"),
                expr::Lit(std::string("k1"))));
  std::vector<ProjectionItem> items;
  items.push_back({"key", expr::Col("key")});
  items.push_back({"avg", expr::Col("avg")});
  AUSDB_ASSIGN_OR_RETURN(auto root,
                         Project::Make(std::move(filter), std::move(items)));

  RecoveryManagerOptions ropts;
  ropts.keep_generations = 3;
  ropts.crash_points = inj;
  ropts.metrics = cfg.metrics;
  ropts.trace = cfg.trace;
  RecoveryManager manager(dir, ropts);
  AUSDB_RETURN_NOT_OK(manager.RegisterSource("source", source));
  AUSDB_RETURN_NOT_OK(manager.RegisterOperator("spwagg", spwagg));

  // The pull loop runs in a lambda so the prefetcher's ring backlog can
  // be observed after a simulated crash, before the pipeline (and its
  // producer thread) is torn down.
  auto run = [&]() -> Status {
    AUSDB_ASSIGN_OR_RETURN(auto recovered, manager.Restore());
    const uint64_t checkpointed =
        recovered.has_value() ? recovered->outputs_delivered : 0;
    // The consumer can only be AHEAD of the checkpoint, never behind it
    // (checkpoints are taken after delivery).
    EXPECT_LE(checkpointed, delivered->size());
    size_t overlap = delivered->size() - checkpointed;
    uint64_t emitted = checkpointed;

    for (;;) {
      AUSDB_RETURN_NOT_OK(inj->CrashIf("pre-pull"));
      AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, root->Next());
      if (!t.has_value()) break;
      const std::string fp = Fingerprint(*t);
      if (overlap > 0) {
        // Re-emitted output: must be bit-identical to what was already
        // delivered before the crash (exactly-once via dedupe-by-count).
        EXPECT_EQ(fp, (*delivered)[delivered->size() - overlap]);
        --overlap;
        ++emitted;
        manager.NoteReplayedOutput();
        if (cfg.replayed_acc != nullptr) ++*cfg.replayed_acc;
        continue;
      }
      AUSDB_RETURN_NOT_OK(inj->CrashIf("pre-deliver"));
      delivered->push_back(fp);
      ++emitted;
      AUSDB_RETURN_NOT_OK(inj->CrashIf("post-deliver"));
      if (emitted % cfg.checkpoint_every == 0) {
        AUSDB_RETURN_NOT_OK(
            manager.Checkpoint(delivered->size()).status());
      }
    }
    return Status::OK();
  };
  const Status st = run();
  if (backlog_at_exit != nullptr) {
    *backlog_at_exit = 0;
    if (prefetcher != nullptr) {
      const stream::PrefetchStats stats = prefetcher->stats();
      *backlog_at_exit = stats.produced - stats.delivered;
    }
  }
  return st;
}

// Runs the stream to completion through as many crash/restart cycles as
// the injector causes. Returns the delivered log.
std::vector<std::string> RunToCompletion(const SweepConfig& cfg,
                                         const std::string& dir,
                                         CrashPointInjector* inj,
                                         bool* crashed_with_backlog =
                                             nullptr) {
  std::vector<std::string> delivered;
  for (size_t lifetime = 0;; ++lifetime) {
    // One injected crash can interrupt at most one lifetime; the rerun
    // after it must complete.
    EXPECT_LT(lifetime, 3u) << "pipeline failed to complete after crash";
    if (lifetime >= 3) break;
    size_t backlog = 0;
    const Status st = RunLifetime(cfg, dir, inj, &delivered, &backlog);
    if (st.ok()) break;
    if (crashed_with_backlog != nullptr && backlog > 0) {
      *crashed_with_backlog = true;
    }
    // The only acceptable failure is the injected crash.
    EXPECT_TRUE(inj->fired()) << st.ToString();
    EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  }
  return delivered;
}

TEST(CrashPointSweepTest, EveryCrashPointRecoversBitIdentically) {
  SweepConfig cfg;

  // Golden uninterrupted run; also counts the crash sites.
  ScratchDir golden_dir("sweep_golden");
  CrashPointInjector counter(CrashPointInjector::kNever);
  const std::vector<std::string> golden =
      RunToCompletion(cfg, golden_dir.path(), &counter);
  ASSERT_FALSE(golden.empty());
  const size_t total_sites = counter.sites_visited();
  ASSERT_GT(total_sites, golden.size() * 2)
      << "sweep must cover pulls, deliveries and checkpoint writes";

  // Expected output arithmetic: 4 keys x count/4 inputs each, window w
  // emits from the w-th tuple per key; filter drops key k1.
  const size_t per_key = cfg.count / 4;
  const size_t expected = 3 * (per_key - cfg.window + 1);
  ASSERT_EQ(golden.size(), expected);

  // The sweep: crash at every site, recover, and require exact-tuple
  // accounting — the delivered log equals the golden run bit for bit,
  // every tuple exactly once.
  for (size_t crash_at = 1; crash_at <= total_sites; ++crash_at) {
    ScratchDir dir("sweep_" + std::to_string(crash_at));
    CrashPointInjector inj(crash_at);
    const std::vector<std::string> delivered =
        RunToCompletion(cfg, dir.path(), &inj);
    ASSERT_TRUE(inj.fired()) << "crash point " << crash_at
                             << " was never reached";
    ASSERT_EQ(delivered.size(), golden.size())
        << "crash at site " << crash_at << " ('" << inj.fired_site()
        << "')";
    for (size_t i = 0; i < golden.size(); ++i) {
      ASSERT_EQ(delivered[i], golden[i])
          << "output " << i << " diverged after crash at site "
          << crash_at << " ('" << inj.fired_site() << "')";
    }
  }
}

// The same exhaustive sweep with async prefetching enabled: the process
// dies with tuples resident in the prefetch ring, recovery re-seeks the
// wrapper to the consumer-visible position, and the resumed pipeline's
// delivered log must STILL equal the synchronous golden run bit for
// bit — prefetching must be invisible to the recovery contract.
TEST(CrashPointSweepTest, PrefetchedPipelineRecoversBitIdentically) {
  SweepConfig sync_cfg;
  SweepConfig cfg;
  cfg.prefetch = true;
  cfg.queue_depth = 8;

  // Golden run: SYNCHRONOUS and uninterrupted — the prefetched sweep is
  // held to the synchronous pipeline's exact output, not merely to its
  // own uninterrupted run.
  ScratchDir golden_dir("pfsweep_golden");
  CrashPointInjector golden_counter(CrashPointInjector::kNever);
  const std::vector<std::string> golden =
      RunToCompletion(sync_cfg, golden_dir.path(), &golden_counter);
  ASSERT_FALSE(golden.empty());

  // Uninterrupted prefetched run: bit-identical to sync, same number of
  // crash sites (sites are consumer-side, so prefetching adds none).
  ScratchDir pf_dir("pfsweep_uncrashed");
  CrashPointInjector counter(CrashPointInjector::kNever);
  const std::vector<std::string> uncrashed =
      RunToCompletion(cfg, pf_dir.path(), &counter);
  ASSERT_EQ(uncrashed, golden);
  const size_t total_sites = counter.sites_visited();
  ASSERT_EQ(total_sites, golden_counter.sites_visited());

  bool crashed_with_backlog = false;
  for (size_t crash_at = 1; crash_at <= total_sites; ++crash_at) {
    ScratchDir dir("pfsweep_" + std::to_string(crash_at));
    CrashPointInjector inj(crash_at);
    const std::vector<std::string> delivered =
        RunToCompletion(cfg, dir.path(), &inj, &crashed_with_backlog);
    ASSERT_TRUE(inj.fired()) << "crash point " << crash_at
                             << " was never reached";
    ASSERT_EQ(delivered.size(), golden.size())
        << "crash at site " << crash_at << " ('" << inj.fired_site()
        << "')";
    for (size_t i = 0; i < golden.size(); ++i) {
      ASSERT_EQ(delivered[i], golden[i])
          << "output " << i << " diverged after crash at site "
          << crash_at << " ('" << inj.fired_site() << "')";
    }
  }
  // The point of the sweep: at least some crashes must have caught the
  // ring partially full, i.e. killed tuples the producer had read ahead.
  EXPECT_TRUE(crashed_with_backlog)
      << "no crash ever saw a non-empty prefetch ring; the sweep did "
         "not exercise crash-during-prefetch";
}

// Restore() must fall back to an older intact generation when the
// newest checkpoint file is damaged after the fact (e.g. disk
// corruption, not just a torn write).
TEST(RecoveryManagerTest, FallsBackWhenNewestCheckpointCorrupted) {
  SweepConfig cfg;
  ScratchDir dir("mgr_fallback");

  // Run to completion with periodic checkpoints (no crashes).
  CrashPointInjector never(CrashPointInjector::kNever);
  std::vector<std::string> full;
  ASSERT_TRUE(RunLifetime(cfg, dir.path(), &never, &full).ok());
  ASSERT_FALSE(full.empty());

  serde::CheckpointStorage store(dir.path(), "pipeline");
  std::vector<uint64_t> gens = store.ListGenerations();
  ASSERT_GE(gens.size(), 2u);

  // Flip one byte in the newest generation file.
  const std::string newest = store.GenerationPath(gens.back());
  std::string bytes = Slurp(newest);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  std::ofstream(newest, std::ios::binary) << bytes;

  // A fresh lifetime must recover from the previous generation and
  // still deliver the exact remaining outputs.
  std::vector<std::string> resumed(full);
  // Pretend the consumer saw everything up to the OLDER checkpoint: keep
  // only that prefix, and let the rerun redeliver the rest.
  auto older = store.ReadGeneration(gens[gens.size() - 2]);
  ASSERT_TRUE(older.ok()) << older.status().ToString();
  serde::CheckpointReader r(*older);
  ASSERT_TRUE(r.ExpectToken("manifest.v1").ok());
  auto delivered_at_older = r.NextUint();
  ASSERT_TRUE(delivered_at_older.ok());
  resumed.resize(*delivered_at_older);

  ASSERT_TRUE(RunLifetime(cfg, dir.path(), &never, &resumed).ok());
  ASSERT_EQ(resumed.size(), full.size());
  for (size_t i = 0; i < full.size(); ++i) {
    ASSERT_EQ(resumed[i], full[i]) << "output " << i;
  }
}

// ---------------------------------------------------------------------
// Recovery observability: the same crash/recover cycle with metrics and
// tracing enabled must (a) deliver byte-identical output and (b) report
// a snapshot whose counters exactly match what the test itself observed
// — non-zero checkpoint bytes and durations, generation counts, and a
// replayed-outputs total equal to the overlap the consumer discarded.

TEST(RecoveryMetricsTest, SnapshotMatchesObservedRecovery) {
  SweepConfig golden_cfg;
  ScratchDir golden_dir("metrics_golden");
  CrashPointInjector golden_inj(CrashPointInjector::kNever);
  const std::vector<std::string> golden =
      RunToCompletion(golden_cfg, golden_dir.path(), &golden_inj);
  ASSERT_FALSE(golden.empty());
  const size_t total_sites = golden_inj.sites_visited();

  // Crash late in the run (deep into the site list) so there are
  // checkpoints on disk and a real overlap to replay.
  obs::MetricRegistry registry;
  obs::TraceBuffer trace;
  size_t replayed = 0;
  SweepConfig cfg;
  cfg.metrics = &registry;
  cfg.trace = &trace;
  cfg.replayed_acc = &replayed;

  ScratchDir dir("metrics_crash");
  CrashPointInjector inj(total_sites * 3 / 4);
  const std::vector<std::string> delivered =
      RunToCompletion(cfg, dir.path(), &inj);
  ASSERT_TRUE(inj.fired());
  ASSERT_EQ(delivered, golden) << "instrumentation changed the output";
  ASSERT_GT(replayed, 0u) << "crash site produced no overlap; the "
                             "metrics assertions below would be vacuous";

  const obs::MetricsSnapshot snap = registry.Snapshot();
  uint64_t ckpt_bytes = 0, ckpt_gens = 0, restores = 0,
           replayed_metric = 0;
  for (const auto& c : snap.counters) {
    if (c.key.name == "ausdb_checkpoint_written_bytes_total") {
      ckpt_bytes = c.value;
    }
    if (c.key.name == "ausdb_checkpoint_generations_total") {
      ckpt_gens = c.value;
    }
    if (c.key.name == "ausdb_recovery_restores_total") restores = c.value;
    if (c.key.name == "ausdb_recovery_replayed_outputs_total") {
      replayed_metric = c.value;
    }
  }
  EXPECT_GT(ckpt_bytes, 0u);
  EXPECT_GT(ckpt_gens, 0u);
  EXPECT_GE(restores, 1u);
  EXPECT_EQ(replayed_metric, replayed)
      << "replayed-output counter diverged from the consumer's own "
         "dedupe accounting";

  uint64_t write_count = 0, ckpt_count = 0;
  double write_sum = 0.0;
  for (const auto& h : snap.histograms) {
    if (h.key.name == "ausdb_checkpoint_write_seconds") {
      write_count = h.count;
      write_sum = h.sum;
    }
    if (h.key.name == "ausdb_recovery_checkpoint_seconds") {
      ckpt_count = h.count;
    }
  }
  EXPECT_EQ(write_count, ckpt_gens)
      << "every durable write must record one duration";
  EXPECT_GT(write_sum, 0.0) << "fsync+rename cannot take zero time";
  EXPECT_EQ(ckpt_count, ckpt_gens);

  // The gauge reflects the delivery count of the LAST checkpoint or
  // restore; both are bounded by the full delivered log.
  bool saw_gauge = false;
  for (const auto& g : snap.gauges) {
    if (g.key.name == "ausdb_recovery_outputs_delivered") {
      saw_gauge = true;
      EXPECT_GT(g.value, 0);
      EXPECT_LE(g.value, static_cast<int64_t>(delivered.size()));
    }
  }
  EXPECT_TRUE(saw_gauge);

  // Spans: one per Checkpoint()/Restore() call, named and non-negative.
  const std::vector<obs::SpanRecord> spans = trace.Spans();
  ASSERT_FALSE(spans.empty());
  size_t checkpoint_spans = 0, restore_spans = 0;
  for (const auto& s : spans) {
    if (s.name == "recovery/checkpoint") ++checkpoint_spans;
    if (s.name == "recovery/restore") ++restore_spans;
    EXPECT_GE(s.end_nanos, s.start_nanos);
  }
  EXPECT_GT(checkpoint_spans, 0u);
  EXPECT_GT(restore_spans, 0u);

  // The snapshot must expose cleanly in both formats (smoke; the golden
  // strings live in obs_exposition_test).
  EXPECT_NE(obs::ToPrometheusText(snap).find(
                "ausdb_recovery_replayed_outputs_total"),
            std::string::npos);
  EXPECT_NE(obs::ToJson(snap).find("ausdb_checkpoint_write_seconds"),
            std::string::npos);
}

// A thinned instrumented crash sweep: every 7th site (plus the last)
// runs with metrics on, and the delivered log must stay bit-identical to
// the golden run — the determinism contract with observability enabled.
TEST(RecoveryMetricsTest, InstrumentedSweepStaysBitIdentical) {
  SweepConfig golden_cfg;
  ScratchDir golden_dir("isweep_golden");
  CrashPointInjector counter(CrashPointInjector::kNever);
  const std::vector<std::string> golden =
      RunToCompletion(golden_cfg, golden_dir.path(), &counter);
  ASSERT_FALSE(golden.empty());
  const size_t total_sites = counter.sites_visited();

  for (size_t crash_at = 1; crash_at <= total_sites;
       crash_at = crash_at + 7 > total_sites && crash_at < total_sites
                      ? total_sites
                      : crash_at + 7) {
    obs::MetricRegistry registry;
    SweepConfig cfg;
    cfg.metrics = &registry;

    ScratchDir dir("isweep_" + std::to_string(crash_at));
    CrashPointInjector inj(crash_at);
    const std::vector<std::string> delivered =
        RunToCompletion(cfg, dir.path(), &inj);
    ASSERT_TRUE(inj.fired()) << "site " << crash_at;
    ASSERT_EQ(delivered.size(), golden.size())
        << "crash at site " << crash_at << " ('" << inj.fired_site()
        << "') with metrics on";
    for (size_t i = 0; i < golden.size(); ++i) {
      ASSERT_EQ(delivered[i], golden[i])
          << "output " << i << " diverged at site " << crash_at;
    }
  }
}

}  // namespace
}  // namespace engine
}  // namespace ausdb
