#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/dist/gaussian.h"
#include "src/dist/learner.h"
#include "src/engine/accuracy_annotator.h"
#include "src/engine/executor.h"
#include "src/engine/filter.h"
#include "src/engine/project.h"
#include "src/engine/scan.h"
#include "src/engine/window_aggregate.h"
#include "src/stats/random_variates.h"
#include "src/stream/sources.h"

namespace ausdb {
namespace engine {
namespace {

using dist::RandomVar;

Schema RoadSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"road_id", FieldType::kString}).ok());
  EXPECT_TRUE(s.AddField({"delay", FieldType::kUncertain}).ok());
  return s;
}

Tuple RoadTuple(const std::string& id, double mean, double var, size_t n) {
  return Tuple({expr::Value(id),
                expr::Value(RandomVar(
                    std::make_shared<dist::GaussianDist>(mean, var), n))});
}

TEST(SchemaTest, Basics) {
  Schema s = RoadSchema();
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_TRUE(s.Contains("delay"));
  EXPECT_FALSE(s.Contains("speed"));
  EXPECT_EQ(*s.IndexOf("delay"), 1u);
  EXPECT_TRUE(s.IndexOf("nope").status().IsNotFound());
  EXPECT_TRUE(s.AddField({"delay", FieldType::kDouble})
                  .IsAlreadyExists());
  EXPECT_EQ(s.ToString(), "(road_id:string, delay:uncertain)");
}

TEST(TupleTest, MembershipDefaults) {
  Tuple t = RoadTuple("r1", 50.0, 10.0, 20);
  EXPECT_DOUBLE_EQ(t.membership_prob(), 1.0);
  EXPECT_EQ(t.membership_df_n(), RandomVar::kCertainSampleSize);
  EXPECT_FALSE(t.membership_ci().has_value());
}

TEST(VectorScanTest, ScanAndReset) {
  std::vector<Tuple> tuples = {RoadTuple("a", 1, 1, 5),
                               RoadTuple("b", 2, 1, 5)};
  VectorScan scan(RoadSchema(), tuples);
  auto all = Collect(scan);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].sequence(), 0u);
  EXPECT_EQ((*all)[1].sequence(), 1u);
  ASSERT_TRUE(scan.Reset().ok());
  EXPECT_EQ(Collect(scan)->size(), 2u);
}

TEST(FilterTest, PossibleWorldSemantics) {
  // Two roads; predicate "delay > 50 with some probability".
  std::vector<Tuple> tuples = {
      RoadTuple("fast", 40.0, 25.0, 50),  // Pr[delay>50] = Phi(-2) = .0228
      RoadTuple("slow", 60.0, 25.0, 30),  // Pr[delay>50] = Phi(2) = .977
  };
  auto scan = std::make_unique<VectorScan>(RoadSchema(), tuples);
  Filter filter(std::move(scan),
                expr::Gt(expr::Col("delay"), expr::Lit(50.0)));
  auto out = Collect(filter);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 2u);  // both have positive probability
  EXPECT_NEAR((*out)[0].membership_prob(), 0.0228, 1e-3);
  EXPECT_EQ((*out)[0].membership_df_n(), 50u);
  EXPECT_NEAR((*out)[1].membership_prob(), 0.977, 1e-3);
  EXPECT_EQ((*out)[1].membership_df_n(), 30u);
}

TEST(FilterTest, MinProbabilityDropsNegligibleTuples) {
  std::vector<Tuple> tuples = {RoadTuple("fast", 40.0, 25.0, 50),
                               RoadTuple("slow", 60.0, 25.0, 30)};
  auto scan = std::make_unique<VectorScan>(RoadSchema(), tuples);
  FilterOptions opts;
  opts.min_probability = 0.5;
  Filter filter(std::move(scan),
                expr::Gt(expr::Col("delay"), expr::Lit(50.0)), opts);
  auto out = Collect(filter);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(*(*out)[0].value(0).string_value(), "slow");
}

TEST(FilterTest, ProbThresholdIsBoolean) {
  std::vector<Tuple> tuples = {RoadTuple("fast", 40.0, 25.0, 50),
                               RoadTuple("slow", 60.0, 25.0, 30)};
  auto scan = std::make_unique<VectorScan>(RoadSchema(), tuples);
  Filter filter(std::move(scan),
                expr::ProbThreshold(
                    expr::Gt(expr::Col("delay"), expr::Lit(50.0)), 2.0 / 3));
  auto out = Collect(filter);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  // Threshold decision is boolean: membership probability unchanged.
  EXPECT_DOUBLE_EQ((*out)[0].membership_prob(), 1.0);
  // But d.f. provenance is retained for Theorem 1.
  EXPECT_EQ((*out)[0].membership_df_n(), 30u);
}

TEST(FilterTest, SignificanceFilterOutcomes) {
  std::vector<Tuple> tuples = {
      RoadTuple("clearly_above", 70.0, 4.0, 40),
      RoadTuple("clearly_below", 30.0, 4.0, 40),
      RoadTuple("borderline", 50.2, 100.0, 10),
  };
  auto scan = std::make_unique<VectorScan>(RoadSchema(), tuples);
  FilterOptions opts;
  opts.keep_unsure = true;
  Filter filter(std::move(scan),
                expr::MTest(expr::Col("delay"),
                            hypothesis::TestOp::kGreater, 50.0, 0.05, 0.05),
                opts);
  auto out = Collect(filter);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 2u);  // TRUE + kept UNSURE
  EXPECT_EQ(*(*out)[0].significance(), hypothesis::TestOutcome::kTrue);
  EXPECT_EQ(*(*out)[1].significance(), hypothesis::TestOutcome::kUnsure);
  EXPECT_EQ(filter.unsure_count(), 1u);
}

TEST(FilterTest, DropUnsureByDefault) {
  std::vector<Tuple> tuples = {RoadTuple("borderline", 50.2, 100.0, 10)};
  auto scan = std::make_unique<VectorScan>(RoadSchema(), tuples);
  Filter filter(std::move(scan),
                expr::MTest(expr::Col("delay"),
                            hypothesis::TestOp::kGreater, 50.0, 0.05,
                            0.05));
  auto out = Collect(filter);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  EXPECT_EQ(filter.unsure_count(), 1u);
}

TEST(ProjectTest, TypeInferenceAndEvaluation) {
  std::vector<Tuple> tuples = {RoadTuple("a", 10.0, 4.0, 20)};
  auto scan = std::make_unique<VectorScan>(RoadSchema(), tuples);
  std::vector<ProjectionItem> items;
  items.push_back({"id", expr::Col("road_id")});
  items.push_back({"double_delay",
                   expr::Mul(expr::Col("delay"), expr::Lit(2.0))});
  items.push_back(
      {"p", expr::ProbOf(expr::Gt(expr::Col("delay"), expr::Lit(10.0)))});
  auto project = Project::Make(std::move(scan), std::move(items));
  ASSERT_TRUE(project.ok()) << project.status().ToString();
  EXPECT_EQ((*project)->schema().field(0).type, FieldType::kString);
  EXPECT_EQ((*project)->schema().field(1).type, FieldType::kUncertain);
  EXPECT_EQ((*project)->schema().field(2).type, FieldType::kDouble);

  auto out = Collect(**project);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  const Tuple& t = (*out)[0];
  EXPECT_EQ(*t.value(0).string_value(), "a");
  const RandomVar rv = *t.value(1).random_var();
  EXPECT_DOUBLE_EQ(rv.Mean(), 20.0);
  EXPECT_DOUBLE_EQ(rv.Variance(), 16.0);
  EXPECT_NEAR(*t.value(2).double_value(), 0.5, 1e-12);
}

TEST(ProjectTest, RejectsEmptyAndBadItems) {
  auto scan = std::make_unique<VectorScan>(RoadSchema(),
                                           std::vector<Tuple>{});
  EXPECT_TRUE(Project::Make(std::move(scan), {})
                  .status()
                  .IsInvalidArgument());
  auto scan2 = std::make_unique<VectorScan>(RoadSchema(),
                                            std::vector<Tuple>{});
  std::vector<ProjectionItem> items;
  items.push_back({"bad", expr::Col("not_a_column")});
  EXPECT_TRUE(
      Project::Make(std::move(scan2), std::move(items)).status().IsNotFound());
}

TEST(WindowAggregateTest, ClosedFormAvg) {
  // Three Gaussians, window 2: AVG over the last two.
  std::vector<Tuple> tuples = {RoadTuple("a", 10.0, 4.0, 20),
                               RoadTuple("b", 20.0, 8.0, 30),
                               RoadTuple("c", 30.0, 12.0, 10)};
  auto scan = std::make_unique<VectorScan>(RoadSchema(), tuples);
  auto agg = WindowAggregate::Make(std::move(scan), "delay", "avg_delay",
                                   {.window_size = 2});
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);  // first output when window fills

  const RandomVar first = *(*out)[0].value(0).random_var();
  EXPECT_DOUBLE_EQ(first.Mean(), 15.0);
  EXPECT_DOUBLE_EQ(first.Variance(), 3.0);  // (4+8)/4
  EXPECT_EQ(first.sample_size(), 20u);      // min(20, 30)

  const RandomVar second = *(*out)[1].value(0).random_var();
  EXPECT_DOUBLE_EQ(second.Mean(), 25.0);
  EXPECT_DOUBLE_EQ(second.Variance(), 5.0);  // (8+12)/4
  EXPECT_EQ(second.sample_size(), 10u);      // min(30, 10)
}

TEST(WindowAggregateTest, SumAndPartialEmission) {
  std::vector<Tuple> tuples = {RoadTuple("a", 1.0, 1.0, 5),
                               RoadTuple("b", 2.0, 1.0, 5)};
  auto scan = std::make_unique<VectorScan>(RoadSchema(), tuples);
  WindowAggregateOptions opts;
  opts.window_size = 10;
  opts.fn = WindowAggFn::kSum;
  opts.emit_partial = true;
  auto agg = WindowAggregate::Make(std::move(scan), "delay", "sum", opts);
  ASSERT_TRUE(agg.ok());
  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_DOUBLE_EQ((*out)[1].value(0).random_var()->Mean(), 3.0);
  EXPECT_DOUBLE_EQ((*out)[1].value(0).random_var()->Variance(), 2.0);
}

TEST(WindowAggregateTest, MinSampleSizeTracking) {
  // Sliding min over the window must recover after the small-n tuple
  // leaves the window.
  std::vector<Tuple> tuples = {
      RoadTuple("a", 1.0, 1.0, 100), RoadTuple("b", 1.0, 1.0, 3),
      RoadTuple("c", 1.0, 1.0, 50), RoadTuple("d", 1.0, 1.0, 60)};
  auto scan = std::make_unique<VectorScan>(RoadSchema(), tuples);
  auto agg = WindowAggregate::Make(std::move(scan), "delay", "avg",
                                   {.window_size = 2});
  ASSERT_TRUE(agg.ok());
  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ((*out)[0].value(0).random_var()->sample_size(), 3u);   // a,b
  EXPECT_EQ((*out)[1].value(0).random_var()->sample_size(), 3u);   // b,c
  EXPECT_EQ((*out)[2].value(0).random_var()->sample_size(), 50u);  // c,d
}

TEST(WindowAggregateTest, RejectsNonGaussianUncertain) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"x", FieldType::kUncertain}).ok());
  auto learned = dist::LearnHistogram(std::vector<double>{1, 2, 3, 4, 5},
                                      {});
  ASSERT_TRUE(learned.ok());
  std::vector<Tuple> tuples = {
      Tuple({expr::Value(RandomVar(*learned))})};
  auto scan = std::make_unique<VectorScan>(schema, tuples);
  auto agg = WindowAggregate::Make(std::move(scan), "x", "avg",
                                   {.window_size = 1});
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE((*agg)->Next().status().IsNotImplemented());
}

TEST(AccuracyAnnotatorTest, AnalyticalAnnotations) {
  std::vector<Tuple> tuples = {RoadTuple("a", 10.0, 4.0, 20)};
  auto scan = std::make_unique<VectorScan>(RoadSchema(), tuples);
  auto filter = std::make_unique<Filter>(
      std::move(scan), expr::Gt(expr::Col("delay"), expr::Lit(9.0)));
  AccuracyAnnotatorOptions annotate_opts;
  annotate_opts.confidence = 0.9;
  AccuracyAnnotator annotator(std::move(filter), annotate_opts);
  auto out = Collect(annotator);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  const Tuple& t = (*out)[0];
  ASSERT_GE(t.accuracy().size(), 2u);
  ASSERT_TRUE(t.accuracy()[1].has_value());
  EXPECT_TRUE(t.accuracy()[1]->mean_ci->Contains(10.0));
  // Tuple probability interval (Theorem 1): Pr[delay>9] = Phi(.5) = .69,
  // n = 20.
  ASSERT_TRUE(t.membership_ci().has_value());
  EXPECT_TRUE(t.membership_ci()->Contains(t.membership_prob()));
  EXPECT_GT(t.membership_ci()->Length(), 0.0);
}

TEST(AccuracyAnnotatorTest, BootstrapAnnotations) {
  std::vector<Tuple> tuples = {RoadTuple("a", 10.0, 4.0, 20)};
  auto scan = std::make_unique<VectorScan>(RoadSchema(), tuples);
  AccuracyAnnotatorOptions opts;
  opts.method = accuracy::AccuracyMethod::kBootstrap;
  opts.confidence = 0.9;
  opts.bootstrap_resamples = 30;
  AccuracyAnnotator annotator(std::move(scan), opts);
  auto out = Collect(annotator);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const Tuple& t = (*out)[0];
  ASSERT_TRUE(t.accuracy()[1].has_value());
  EXPECT_EQ(t.accuracy()[1]->method, accuracy::AccuracyMethod::kBootstrap);
  EXPECT_TRUE(t.accuracy()[1]->mean_ci.has_value());
}

TEST(StreamSourceTest, LearnedGaussianSource) {
  auto source =
      stream::MakeLearnedGaussianSource("x", 50, 20, 5.0, 2.0, 42);
  auto out = Collect(*source);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 50u);
  for (const Tuple& t : *out) {
    const RandomVar rv = *t.value(0).random_var();
    EXPECT_EQ(rv.sample_size(), 20u);
    EXPECT_NEAR(rv.Mean(), 5.0, 3.0);
  }
}

TEST(ExecutorTest, DrainAndCollectLimit) {
  auto source =
      stream::MakeLearnedGaussianSource("x", 30, 10, 0.0, 1.0, 7);
  auto limited = CollectLimit(*source, 10);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->size(), 10u);
  auto remaining = Drain(*source);
  ASSERT_TRUE(remaining.ok());
  EXPECT_EQ(*remaining, 20u);
}

}  // namespace
}  // namespace engine
}  // namespace ausdb
