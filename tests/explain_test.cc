// The EXPLAIN surface: statement parsing ([EXPLAIN [ANALYZE]] query,
// loud parse errors for malformed inner queries), byte-deterministic
// golden renderings of ExplainPlan, the accuracy-target annotator line
// showing the cost model's plan-time choice and predictions, and
// EXPLAIN ANALYZE's profiled execution (delivered rows identical to the
// unprofiled run; counters and report deterministic).

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/dist/gaussian.h"
#include "src/engine/executor.h"
#include "src/engine/scan.h"
#include "src/govern/cost_model.h"
#include "src/obs/exposition.h"
#include "src/query/explain.h"
#include "src/query/parser.h"
#include "src/query/planner.h"
#include "src/serde/json_writer.h"
#include "src/stream/sources.h"

namespace ausdb {
namespace query {
namespace {

// ---------------------------------------------------------------------
// Statement parsing: [EXPLAIN [ANALYZE]] query

TEST(ParseStatementTest, PlainQueryKeepsKindQuery) {
  auto stmt = ParseStatement("SELECT x FROM s");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, StatementKind::kQuery);
  EXPECT_EQ(stmt->query.from, "s");
}

TEST(ParseStatementTest, ExplainPrefixSetsKind) {
  auto stmt = ParseStatement("EXPLAIN SELECT x FROM s WHERE x > 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, StatementKind::kExplain);
  ASSERT_NE(stmt->query.where, nullptr);
  EXPECT_EQ(stmt->query.where->ToString(), "(x > 1)");
}

TEST(ParseStatementTest, ExplainAnalyzePrefixSetsKind) {
  auto stmt = ParseStatement("explain analyze SELECT * FROM s");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, StatementKind::kExplainAnalyze);
}

TEST(ParseStatementTest, MalformedInnerQueryFailsLoudly) {
  // EXPLAIN wraps a valid query or fails with the inner query's own
  // parse error — never a silent acceptance of a malformed statement.
  EXPECT_TRUE(ParseStatement("EXPLAIN").status().IsParseError());
  EXPECT_TRUE(ParseStatement("EXPLAIN ANALYZE").status().IsParseError());
  EXPECT_TRUE(
      ParseStatement("EXPLAIN SELECT FROM s").status().IsParseError());
  EXPECT_TRUE(ParseStatement("EXPLAIN ANALYZE SELECT x FROM")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseStatement("EXPLAIN SELECT x FROM s garbage")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseStatement("EXPLAIN EXPLAIN SELECT x FROM s")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseStatement("EXPLAIN SELECT x FROM s WITH ACCURACY 0")
                  .status()
                  .IsParseError());
}

TEST(ParseStatementTest, ToStringRoundTrips) {
  const std::vector<std::string> inputs = {
      "SELECT road_id FROM roads WHERE delay > 50 PROB 0.66",
      "EXPLAIN SELECT road_id FROM roads WHERE delay > 50",
      "EXPLAIN ANALYZE SELECT AVG(x) OVER (ROWS 100) AS a FROM s "
      "WITH ACCURACY ANALYTICAL",
  };
  for (const std::string& sql : inputs) {
    auto stmt = ParseStatement(sql);
    ASSERT_TRUE(stmt.ok()) << sql << ": " << stmt.status().ToString();
    auto again = ParseStatement(stmt->ToString());
    ASSERT_TRUE(again.ok()) << stmt->ToString() << ": "
                            << again.status().ToString();
    EXPECT_EQ(again->kind, stmt->kind) << sql;
    EXPECT_EQ(again->ToString(), stmt->ToString()) << sql;
  }
}

// ---------------------------------------------------------------------
// ExplainPlan golden renderings

Result<ParsedQuery> MustParse(const std::string& sql) { return Parse(sql); }

TEST(ExplainPlanTest, SimpleSelectGolden) {
  auto q = MustParse("SELECT road_id FROM roads WHERE delay > 50");
  ASSERT_TRUE(q.ok());
  auto text = ExplainPlan(*q);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(*text,
            "project: road_id\n"
            "  filter: (delay > 50)\n"
            "    source: roads\n");
}

TEST(ExplainPlanTest, PinnedMethodSortLimitGolden) {
  auto q = MustParse(
      "SELECT x FROM s ORDER BY x DESC LIMIT 5 "
      "WITH ACCURACY ANALYTICAL CONFIDENCE 0.95");
  ASSERT_TRUE(q.ok());
  auto text = ExplainPlan(*q);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(*text,
            "annotator: confidence=0.95 method=analytical\n"
            "  limit: 5\n"
            "    sort: x desc\n"
            "      project: x\n"
            "        source: s\n");
}

TEST(ExplainPlanTest, EventTimeWindowGolden) {
  auto q = MustParse(
      "SELECT AVG(x) OVER (RANGE 10 ON ts WITHIN 5 LATENESS 20) AS a "
      "FROM s");
  ASSERT_TRUE(q.ok());
  auto text = ExplainPlan(*q);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(*text,
            "window: avg(x) range=10 on ts lateness=20 as a\n"
            "  reorder: within=5 on ts\n"
            "    source: s\n");
}

TEST(ExplainPlanTest, GovernedPlanGolden) {
  auto q = MustParse("SELECT * FROM s");
  ASSERT_TRUE(q.ok());
  PlannerOptions options;
  options.govern.enabled = true;
  // EXPLAIN renders the wiring without instantiating a signal source.
  options.govern.signals = []() -> std::unique_ptr<govern::SignalSource> {
    return nullptr;
  };
  auto text = ExplainPlan(*q, options);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(*text,
            "governor_gate: rungs=5 floor=0.2 epoch_interval=256 "
            "breaker_trip=8 cooldown=16\n"
            "  source: s\n");
}

TEST(ExplainPlanTest, AccuracyTargetShowsChosenSpecAndPredictions) {
  auto q = MustParse("SELECT x FROM s WITH ACCURACY 0.25 CONFIDENCE 0.9");
  ASSERT_TRUE(q.ok());
  auto text = ExplainPlan(*q);
  ASSERT_TRUE(text.ok()) << text.status().ToString();

  // The annotator line must show exactly the spec the pure decision
  // function chooses from the default prior, with its predictions
  // rendered through the same byte-stable formatter.
  const govern::ChooserOptions copts;
  govern::AccuracyTarget target;
  target.epsilon = 0.25;
  target.confidence = 0.9;
  const govern::MethodSpec spec =
      govern::MethodChooser::Choose(target, copts.prior, copts);
  const std::string expected =
      "annotator: confidence=0.9 target_eps=0.25 chosen=" +
      spec.ToString() + " predicted_cost=" +
      obs::FormatMetricValue(
          govern::PredictCost(spec, copts.prior, copts.table)) +
      " predicted_halfwidth=" +
      obs::FormatMetricValue(
          govern::PredictHalfWidth(spec, copts.prior, target.confidence)) +
      "\n  project: x\n    source: s\n";
  EXPECT_EQ(*text, expected);
}

TEST(ExplainPlanTest, ExplainDoesNotMutateASharedChooser) {
  auto q = MustParse("SELECT x FROM s WITH ACCURACY 0.05 CONFIDENCE 0.9");
  ASSERT_TRUE(q.ok());
  PlannerOptions options;
  options.cost_model.instance =
      std::make_shared<govern::MethodChooser>(govern::ChooserOptions{});
  const size_t decisions_before =
      options.cost_model.instance->decisions().size();
  const govern::AccuracyTarget target_before =
      options.cost_model.instance->target();
  auto text = ExplainPlan(*q, options);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(options.cost_model.instance->decisions().size(),
            decisions_before);
  EXPECT_EQ(options.cost_model.instance->target().epsilon,
            target_before.epsilon);
}

TEST(ExplainPlanTest, MirrorsPlannerRejections) {
  // EXPLAIN must never render a plan the planner would refuse to build.
  auto mixed =
      MustParse("SELECT road_id, AVG(delay) OVER (ROWS 2) FROM roads");
  ASSERT_TRUE(mixed.ok());
  EXPECT_TRUE(ExplainPlan(*mixed).status().IsNotImplemented());

  auto governed = MustParse("SELECT x FROM s");
  ASSERT_TRUE(governed.ok());
  PlannerOptions options;
  options.govern.enabled = true;  // no signal factory
  EXPECT_TRUE(ExplainPlan(*governed, options).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------
// EXPLAIN ANALYZE

TEST(ExplainAnalyzeTest, DeliversUnprofiledOutputWithProfile) {
  const auto make_source = [] {
    return stream::MakeLearnedGaussianSource("x", 200, 20, 10.0, 2.0, 99);
  };
  const std::string sql =
      "SELECT AVG(x) OVER (ROWS 100) AS a FROM s "
      "WITH ACCURACY ANALYTICAL";
  auto q = Parse(sql);
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  // Reference: the unprofiled plan over an identically-seeded source.
  auto plain = BuildPlan(*q, make_source());
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  auto expected = engine::Collect(**plain);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  auto analyzed = ExplainAnalyze(*q, make_source());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();

  // Profiling is a write-only wrapper: delivered output byte-identical.
  const engine::Schema& schema = (*plain)->schema();
  ASSERT_EQ(analyzed->rows.size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ(serde::ToJson(analyzed->rows[i], schema),
              serde::ToJson((*expected)[i], schema));
  }

  // The report joins the plan rendering with the profile block.
  EXPECT_EQ(analyzed->report.find("annotator: confidence=0.9"), 0u)
      << analyzed->report;
  EXPECT_NE(analyzed->report.find("-- profile --"), std::string::npos);
  EXPECT_NE(analyzed->report.find("window"), std::string::npos);
  // No clock injected: the non-deterministic annex stays empty.
  EXPECT_TRUE(analyzed->latency_annex.empty());

  // The counters are exact functions of the delivered tuple stream:
  // 200 source tuples become 101 windows become 101 annotated rows.
  EXPECT_EQ(analyzed->counters_json,
            "{\"operators\":["
            "{\"name\":\"source\",\"next_calls\":201,\"batch_calls\":0,"
            "\"tuples\":200,\"errors\":0},"
            "{\"name\":\"window\",\"next_calls\":102,\"batch_calls\":0,"
            "\"tuples\":101,\"errors\":0},"
            "{\"name\":\"annotator\",\"next_calls\":102,\"batch_calls\":0,"
            "\"tuples\":101,\"errors\":0}"
            "]}");
}

TEST(ExplainAnalyzeTest, ReportIsIdenticalAcrossRepetitions) {
  const std::string sql =
      "SELECT road_id FROM roads WHERE MTEST(delay, '>', 50, 0.05)";
  auto q = Parse(sql);
  ASSERT_TRUE(q.ok());
  const auto road_source = [] {
    engine::Schema schema;
    EXPECT_TRUE(
        schema.AddField({"road_id", engine::FieldType::kString}).ok());
    EXPECT_TRUE(
        schema.AddField({"delay", engine::FieldType::kUncertain}).ok());
    std::vector<engine::Tuple> tuples;
    auto add = [&](const std::string& id, double mean, double var,
                   size_t n) {
      tuples.emplace_back(std::vector<expr::Value>{
          expr::Value(id),
          expr::Value(dist::RandomVar(
              std::make_shared<dist::GaussianDist>(mean, var), n))});
    };
    add("r_fast", 30.0, 16.0, 50);
    add("r_slow", 70.0, 16.0, 40);
    return std::make_unique<engine::VectorScan>(std::move(schema),
                                                std::move(tuples));
  };

  auto first = ExplainAnalyze(*q, road_source());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = ExplainAnalyze(*q, road_source());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->report, second->report);
  EXPECT_EQ(first->counters_json, second->counters_json);
}

}  // namespace
}  // namespace query
}  // namespace ausdb
