// Regression tests for the evict-subtract drift bug: sliding-window
// running sums kept as plain doubles drift on long streams whose values
// mix magnitudes (a value absorbed into a large running sum at push time
// is subtracted at a different accumulator magnitude at evict time, so
// the rounding no longer cancels). The fix keeps the sums
// Neumaier-compensated; these tests drive >1e6 evictions of adversarial
// alternating ~1e12 / ~1e-3 blocks through the real operators and
// compare the final emission against a fresh recompute of the window.

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/math_util.h"
#include "src/dist/learner.h"
#include "src/engine/executor.h"
#include "src/engine/partitioned_window.h"
#include "src/engine/scan.h"
#include "src/engine/window_aggregate.h"
#include "src/serde/checkpoint.h"

namespace ausdb {
namespace engine {
namespace {

constexpr size_t kWindow = 8;

// Blocks of kWindow values alternate between ~1e12 and ~1e-3 scale, with
// a hash-modulated mantissa so no two values are equal. While a mixed
// window holds ~8e12, pushed 1e-3-scale values are rounded away; by the
// time they are evicted the large block has left and the accumulator
// magnitude differs, so the subtraction reintroduces the rounding error
// instead of cancelling it. The worst naive relative error on this
// sequence is ~9 (measured); the compensated sums stay below 1e-12.
double AdversarialValue(size_t i) {
  uint64_t h = i * 2654435761ULL;
  h ^= h >> 16;
  const double u = static_cast<double>(h % 1024) / 1024.0;
  return ((i / kWindow) % 2 == 0) ? (1.0 + u) * 1e12 : (1.0 + u) * 1e-3;
}

// Fresh Neumaier recompute of sum(values[begin..end)) — the ground truth
// an unbounded-drift accumulator is compared against.
double FreshSum(size_t begin, size_t end,
                const std::function<double(size_t)>& value) {
  KahanSum s;
  for (size_t i = begin; i < end; ++i) s.Add(value(i));
  return s.Get();
}

Schema DoubleSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"x", FieldType::kDouble}).ok());
  return s;
}

// The sequence length is chosen so the final window lies entirely in a
// small-magnitude block (where any retained large-block residue is
// catastrophic relative to the true sum).
constexpr size_t kStreamLength = 1000016;

TEST(WindowDriftTest, SlidingSumMatchesFreshRecomputeAfterMillionEvictions) {
  size_t produced = 0;
  StreamScan scan(DoubleSchema(), [&]() -> Result<std::optional<Tuple>> {
    if (produced >= kStreamLength) return std::optional<Tuple>();
    return std::optional<Tuple>(
        Tuple({expr::Value(AdversarialValue(produced++))}));
  });

  WindowAggregateOptions opts;
  opts.window_size = kWindow;
  opts.fn = WindowAggFn::kSum;
  auto agg = WindowAggregate::Make(
      std::make_unique<StreamScan>(std::move(scan)), "x", "sum", opts);
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();

  std::optional<Tuple> last;
  size_t emissions = 0;
  while (true) {
    auto next = (*agg)->Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    if (!next->has_value()) break;
    last = std::move(**next);
    ++emissions;
  }
  ASSERT_EQ(emissions, kStreamLength - kWindow + 1);
  ASSERT_GE(emissions - 1, size_t{1000000}) << "need >= 1e6 evictions";

  const double expected =
      FreshSum(kStreamLength - kWindow, kStreamLength, AdversarialValue);
  const double got = (*last->value(0).random_var()).Mean();
  EXPECT_LT(std::abs(got - expected) / expected, 1e-9)
      << "got " << got << " expected " << expected;
}

TEST(WindowDriftTest, PartitionedSumMatchesFreshRecomputePerKey) {
  // Two interleaved keys, each fed the full adversarial sequence; >1e6
  // evictions in total across the partitions.
  constexpr size_t kPerKey = 500016;
  Schema schema;
  ASSERT_TRUE(schema.AddField({"k", FieldType::kString}).ok());
  ASSERT_TRUE(schema.AddField({"x", FieldType::kDouble}).ok());

  size_t produced = 0;
  StreamScan scan(schema, [&]() -> Result<std::optional<Tuple>> {
    if (produced >= 2 * kPerKey) return std::optional<Tuple>();
    const std::string key = (produced % 2 == 0) ? "even" : "odd";
    const double v = AdversarialValue(produced / 2);
    ++produced;
    return std::optional<Tuple>(Tuple({expr::Value(key), expr::Value(v)}));
  });

  WindowAggregateOptions opts;
  opts.window_size = kWindow;
  opts.fn = WindowAggFn::kSum;
  auto agg = PartitionedWindowAggregate::Make(
      std::make_unique<StreamScan>(std::move(scan)), "k", "x", "sum", opts);
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();

  double last_even = 0.0, last_odd = 0.0;
  size_t emissions = 0;
  while (true) {
    auto next = (*agg)->Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    if (!next->has_value()) break;
    const Tuple& t = **next;
    const double mean = (*t.value(1).random_var()).Mean();
    if (*t.value(0).string_value() == "even") last_even = mean;
    else last_odd = mean;
    ++emissions;
  }
  ASSERT_GE(emissions, 2 * (kPerKey - kWindow + 1));

  // Both keys saw the identical per-key sequence.
  const double expected = FreshSum(kPerKey - kWindow, kPerKey,
                                   AdversarialValue);
  EXPECT_LT(std::abs(last_even - expected) / expected, 1e-9);
  EXPECT_LT(std::abs(last_odd - expected) / expected, 1e-9);
}

TEST(WindowDriftTest, NaiveEvictSubtractFailsOnThisSequence) {
  // Documents that the sequence above discriminates: the pre-fix plain
  // double evict-subtract accumulator ends orders of magnitude off while
  // the compensated sum tracks the fresh recompute. If this stops
  // failing for the naive sum, the regression tests above have lost
  // their teeth and the sequence needs re-calibration.
  double naive = 0.0;
  KahanSum kahan;
  std::vector<double> window;
  double worst_naive = 0.0, worst_kahan = 0.0;
  for (size_t i = 0; i < kStreamLength; ++i) {
    const double v = AdversarialValue(i);
    window.push_back(v);
    naive += v;
    kahan.Add(v);
    if (window.size() > kWindow) {
      naive -= window.front();
      kahan.Subtract(window.front());
      window.erase(window.begin());
    }
    // Compare on all-small windows, where drift is relatively largest.
    if (window.size() == kWindow && (i / kWindow) % 2 == 1 &&
        i % kWindow == kWindow - 1) {
      const double exact = FreshSum(i + 1 - kWindow, i + 1,
                                    AdversarialValue);
      worst_naive =
          std::max(worst_naive, std::abs(naive - exact) / exact);
      worst_kahan =
          std::max(worst_kahan, std::abs(kahan.Get() - exact) / exact);
    }
  }
  EXPECT_GT(worst_naive, 1e-2);   // measured ~9 — unambiguous failure
  EXPECT_LT(worst_kahan, 1e-9);   // measured ~3e-13
}

TEST(WindowDriftTest, RestoresLegacyV1Checkpoint) {
  // v1 blobs carried plain sums and no compensation terms; they must
  // still restore (with zero compensation) under the v2 code.
  serde::CheckpointWriter w;
  w.Token("wagg.v1");
  w.Uint(static_cast<uint64_t>(WindowKind::kSliding));
  w.Uint(static_cast<uint64_t>(WindowAggFn::kSum));
  w.Uint(2);           // window_size
  w.Double(3.0);       // sum_mean (1 + 2)
  w.Double(0.0);       // sum_variance
  w.Uint(2);           // entries
  const uint64_t n = dist::RandomVar::kCertainSampleSize;
  w.Double(1.0); w.Double(0.0); w.Uint(n); w.Uint(0);
  w.Double(2.0); w.Double(0.0); w.Uint(n); w.Uint(1);
  const std::string blob = std::move(w).Finish();

  std::vector<Tuple> tuples = {Tuple({expr::Value(4.0)})};
  auto scan = std::make_unique<VectorScan>(DoubleSchema(), tuples);
  WindowAggregateOptions opts;
  opts.window_size = 2;
  opts.fn = WindowAggFn::kSum;
  auto agg = WindowAggregate::Make(std::move(scan), "x", "sum", opts);
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE((*agg)->RestoreCheckpoint(blob).ok());

  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  // Window slides: push 4, evict 1 -> 3 + 4 - 1 = 6.
  EXPECT_DOUBLE_EQ((*out)[0].value(0).random_var()->Mean(), 6.0);
}

TEST(WindowDriftTest, RestoresLegacyPartitionedV1Checkpoint) {
  serde::CheckpointWriter w;
  w.Token("pwagg.v1");
  w.Uint(static_cast<uint64_t>(WindowKind::kSliding));
  w.Uint(static_cast<uint64_t>(WindowAggFn::kSum));
  w.Uint(2);           // window_size
  w.Uint(1);           // one partition
  w.Bytes("k");
  w.Double(3.0);       // sum_mean
  w.Double(0.0);       // sum_variance
  w.Uint(2);           // entries
  const uint64_t n = dist::RandomVar::kCertainSampleSize;
  w.Double(1.0); w.Double(0.0); w.Uint(n);
  w.Double(2.0); w.Double(0.0); w.Uint(n);
  const std::string blob = std::move(w).Finish();

  Schema schema;
  ASSERT_TRUE(schema.AddField({"k", FieldType::kString}).ok());
  ASSERT_TRUE(schema.AddField({"x", FieldType::kDouble}).ok());
  std::vector<Tuple> tuples = {
      Tuple({expr::Value(std::string("k")), expr::Value(4.0)})};
  auto scan = std::make_unique<VectorScan>(schema, tuples);
  WindowAggregateOptions opts;
  opts.window_size = 2;
  opts.fn = WindowAggFn::kSum;
  auto agg = PartitionedWindowAggregate::Make(std::move(scan), "k", "x",
                                              "sum", opts);
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE((*agg)->RestoreCheckpoint(blob).ok());

  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_DOUBLE_EQ((*out)[0].value(1).random_var()->Mean(), 6.0);
}

TEST(WindowDriftTest, RejectsUnknownCheckpointVersion) {
  serde::CheckpointWriter w;
  w.Token("wagg.v99");
  const std::string blob = std::move(w).Finish();
  std::vector<Tuple> tuples;
  auto scan = std::make_unique<VectorScan>(DoubleSchema(), tuples);
  auto agg = WindowAggregate::Make(std::move(scan), "x", "sum", {});
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE((*agg)->RestoreCheckpoint(blob).IsCorruption());
}

}  // namespace
}  // namespace engine
}  // namespace ausdb
