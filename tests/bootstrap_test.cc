#include "src/bootstrap/bootstrap_accuracy.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/bootstrap/resampler.h"
#include "src/dist/gaussian.h"
#include "src/stats/descriptive.h"
#include "src/stats/random_variates.h"

namespace ausdb {
namespace bootstrap {
namespace {

TEST(ResamplerTest, SizeAndMembership) {
  const std::vector<double> sample = {1.0, 2.0, 3.0};
  Rng rng(1);
  const auto re = Resample(sample, rng);
  EXPECT_EQ(re.size(), 3u);
  for (double v : re) {
    EXPECT_TRUE(std::find(sample.begin(), sample.end(), v) != sample.end());
  }
  const auto big = Resample(sample, 100, rng);
  EXPECT_EQ(big.size(), 100u);
}

TEST(ResamplerTest, WithReplacementProducesDuplicates) {
  std::vector<double> sample(50);
  std::iota(sample.begin(), sample.end(), 0.0);
  Rng rng(2);
  const auto re = Resample(sample, rng);
  std::vector<double> sorted = re;
  std::sort(sorted.begin(), sorted.end());
  const auto uniq = std::unique(sorted.begin(), sorted.end());
  // With replacement, ~63% unique in expectation; all-unique is
  // astronomically unlikely.
  EXPECT_LT(static_cast<size_t>(uniq - sorted.begin()), sample.size());
}

TEST(BootstrapAccuracyTest, PaperExample7Grouping) {
  // Example 7: n = 15, m = 300 -> r = 20 resamples. We verify the
  // algorithm accepts this shape and produces intervals.
  Rng rng(3);
  std::vector<double> values = stats::SampleMany(
      300, [&] { return stats::SampleNormal(rng, 10.0, 2.0); });
  auto info = BootstrapAccuracyInfo(values, 15, 0.9);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->sample_size, 15u);
  EXPECT_EQ(info->method, accuracy::AccuracyMethod::kBootstrap);
  ASSERT_TRUE(info->mean_ci.has_value());
  ASSERT_TRUE(info->variance_ci.has_value());
  EXPECT_TRUE(info->mean_ci->Contains(10.0));
  // Variance of the population is 4; the bootstrap interval should be in
  // a plausible neighborhood.
  EXPECT_GT(info->variance_ci->hi, 1.0);
  EXPECT_LT(info->variance_ci->lo, 10.0);
}

TEST(BootstrapAccuracyTest, BinHeightIntervalsWhenEdgesGiven) {
  Rng rng(4);
  std::vector<double> values = stats::SampleMany(
      400, [&] { return stats::SampleUniform(rng, 0.0, 1.0); });
  const std::vector<double> edges = {0.0, 0.25, 0.5, 0.75, 1.0};
  auto info = BootstrapAccuracyInfo(values, 20, 0.9, edges);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->bin_cis.size(), 4u);
  for (const auto& ci : info->bin_cis) {
    // True bin height is 0.25 for uniform(0,1).
    EXPECT_LT(ci.lo, 0.25 + 0.35);
    EXPECT_GT(ci.hi, 0.25 - 0.35);
    EXPECT_LE(ci.lo, ci.hi);
  }
}

TEST(BootstrapAccuracyTest, RequiresTwoCompleteResamples) {
  std::vector<double> values(25, 1.0);
  EXPECT_TRUE(BootstrapAccuracyInfo(values, 20, 0.9)
                  .status()
                  .IsInsufficientData());
  EXPECT_TRUE(BootstrapAccuracyInfo(values, 0, 0.9)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(BootstrapAccuracyInfo(values, 5, 1.5)
                  .status()
                  .IsInvalidArgument());
}

TEST(BootstrapAccuracyTest, LeftoverValuesIgnored) {
  // m = 47, n = 10 -> r = 4 complete resamples; the last 7 values are
  // never touched. Poison them to prove it.
  Rng rng(5);
  std::vector<double> values = stats::SampleMany(
      40, [&] { return stats::SampleNormal(rng, 0.0, 1.0); });
  std::vector<double> poisoned = values;
  for (int i = 0; i < 7; ++i) poisoned.push_back(1e18);
  auto a = BootstrapAccuracyInfo(values, 10, 0.9);
  auto b = BootstrapAccuracyInfo(poisoned, 10, 0.9);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->mean_ci->lo, b->mean_ci->lo);
  EXPECT_DOUBLE_EQ(a->mean_ci->hi, b->mean_ci->hi);
}

TEST(BootstrapAccuracyTest, FromDistributionMatchesDirectSampling) {
  dist::GaussianDist g(3.0, 1.0);
  Rng rng(6);
  auto info = BootstrapAccuracyFromDistribution(g, 20, 50, 0.9, rng);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->mean_ci->Contains(3.0));
}

TEST(BootstrapAccuracyTest, IntervalNarrowsWithLargerN) {
  Rng rng(7);
  std::vector<double> values = stats::SampleMany(
      8000, [&] { return stats::SampleNormal(rng, 0.0, 1.0); });
  auto narrow = BootstrapAccuracyInfo(values, 100, 0.9);
  auto wide = BootstrapAccuracyInfo(
      std::span<const double>(values.data(), 800), 10, 0.9);
  ASSERT_TRUE(narrow.ok() && wide.ok());
  EXPECT_LT(narrow->mean_ci->Length(), wide->mean_ci->Length());
}

TEST(ClassicBootstrapTest, MeanIntervalCoversTruth) {
  Rng rng(8);
  constexpr int kTrials = 300;
  int hits = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> sample = stats::SampleMany(
        30, [&] { return stats::SampleExponential(rng, 1.0); });
    auto ci = ClassicPercentileBootstrap(
        sample, 400, 0.9,
        [](std::span<const double> s) { return stats::Mean(s); }, rng);
    ASSERT_TRUE(ci.ok());
    if (ci->Contains(1.0)) ++hits;
  }
  const double coverage = static_cast<double>(hits) / kTrials;
  // Percentile bootstrap is approximate; accept a generous band.
  EXPECT_GT(coverage, 0.80);
  EXPECT_LT(coverage, 0.97);
}

TEST(ClassicBootstrapTest, InvalidInputs) {
  Rng rng(9);
  auto stat = [](std::span<const double> s) { return stats::Mean(s); };
  EXPECT_TRUE(ClassicPercentileBootstrap({}, 10, 0.9, stat, rng)
                  .status()
                  .IsInsufficientData());
  const std::vector<double> s = {1.0, 2.0};
  EXPECT_TRUE(ClassicPercentileBootstrap(s, 1, 0.9, stat, rng)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ClassicPercentileBootstrap(s, 10, 0.0, stat, rng)
                  .status()
                  .IsInvalidArgument());
}

// Property: bootstrap mean intervals achieve near-nominal coverage even
// for a skewed population, the regime where Lemma 2's normality
// assumption degrades (paper Section III's motivation).
TEST(BootstrapCoverageProperty, SkewedPopulationCoverage) {
  Rng rng(10);
  constexpr int kTrials = 400;
  int hits = 0;
  constexpr double kTrueMean = 4.0;  // Gamma(2, 2)
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> values = stats::SampleMany(
        600, [&] { return stats::SampleGamma(rng, 2.0, 2.0); });
    auto info = BootstrapAccuracyInfo(values, 20, 0.9);
    ASSERT_TRUE(info.ok());
    if (info->mean_ci->Contains(kTrueMean)) ++hits;
  }
  const double coverage = static_cast<double>(hits) / kTrials;
  EXPECT_GT(coverage, 0.80);
}

}  // namespace
}  // namespace bootstrap
}  // namespace ausdb
