#include "src/common/thread_pool.h"

#include <array>
#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/math_util.h"

namespace ausdb {
namespace {

TEST(ThreadPoolTest, SpawnsRequestedWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  // Zero is clamped up: a pool that cannot run anything is never wanted.
  ThreadPool minimum(0);
  EXPECT_EQ(minimum.thread_count(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, 7, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunkBoundariesDependOnlyOnProblemSize) {
  // The determinism contract: (n, num_chunks) fully determines the chunk
  // decomposition — the thread count and the pool-vs-serial choice must
  // not appear in it.
  auto decompose = [](ThreadPool* pool, size_t n, size_t chunks) {
    std::vector<std::array<size_t, 3>> out(chunks, {0, 0, 0});
    RunChunked(pool, n, chunks, [&](size_t c, size_t b, size_t e) {
      out[c] = {c, b, e};
    });
    return out;
  };
  ThreadPool two(2);
  ThreadPool eight(8);
  const auto serial = decompose(nullptr, 103, 5);
  EXPECT_EQ(decompose(&two, 103, 5), serial);
  EXPECT_EQ(decompose(&eight, 103, 5), serial);
  // Chunks tile [0, n) contiguously.
  size_t prev = 0;
  for (const auto& [c, b, e] : serial) {
    EXPECT_EQ(b, prev);
    EXPECT_LE(b, e);
    prev = e;
  }
  EXPECT_EQ(prev, 103u);
}

TEST(ThreadPoolTest, ClampsChunkCountToProblemSize) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, 16, [&](size_t, size_t begin, size_t end) {
    calls.fetch_add(1);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 3);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 8, [&](size_t, size_t, size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ChunkedReductionIsBitIdenticalAcrossThreadCounts) {
  // Per-chunk private accumulators merged in chunk-index order: the FP
  // operation tree is invariant, so sums agree to the bit.
  const size_t n = 10000;
  auto value = [](size_t i) {
    return (i % 2 == 0 ? 1e12 : 1e-3) * (1.0 + static_cast<double>(i % 97));
  };
  auto reduce = [&](ThreadPool* pool) {
    const size_t chunks = DeterministicChunkCount(n);
    std::vector<KahanSum> partials(chunks);
    RunChunked(pool, n, chunks, [&](size_t c, size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) partials[c].Add(value(i));
    });
    KahanSum total;
    for (const KahanSum& p : partials) total.Add(p.Get());
    return total.Get();
  };
  ThreadPool one(1);
  ThreadPool two(2);
  ThreadPool eight(8);
  const double serial = reduce(nullptr);
  EXPECT_EQ(serial, reduce(&one));
  EXPECT_EQ(serial, reduce(&two));
  EXPECT_EQ(serial, reduce(&eight));
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyLoops) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(64, 8, [&](size_t, size_t b, size_t e) {
      total.fetch_add(e - b);
    });
  }
  EXPECT_EQ(total.load(), 200u * 64u);
}

TEST(ThreadPoolTest, DeterministicChunkCountIsBoundedAndMonotonicEnough) {
  EXPECT_EQ(DeterministicChunkCount(0), 1u);
  EXPECT_EQ(DeterministicChunkCount(1), 1u);
  EXPECT_GE(DeterministicChunkCount(1024), 1u);
  for (size_t n : {0u, 1u, 100u, 1000u, 100000u, 10000000u}) {
    const size_t c = DeterministicChunkCount(n);
    EXPECT_GE(c, 1u);
    EXPECT_LE(c, 64u);
    // Pure function of n.
    EXPECT_EQ(c, DeterministicChunkCount(n));
  }
}

}  // namespace
}  // namespace ausdb
