#include "src/dist/convolution.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/dist/learner.h"
#include "src/stats/descriptive.h"
#include "src/stats/random_variates.h"

namespace ausdb {
namespace dist {
namespace {

TEST(ConvolutionTest, UniformPlusUniformIsTriangular) {
  auto u = HistogramDist::Make({0.0, 1.0}, {1.0});
  ASSERT_TRUE(u.ok());
  ConvolveOptions opts;
  opts.output_bins = 40;
  opts.subdivisions = 32;
  auto sum = ConvolveHistograms(*u, *u, opts);
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  // Triangular on [0, 2]: mean 1, variance 1/6, Cdf(1) = 0.5,
  // Cdf(0.5) = 0.125.
  EXPECT_NEAR(sum->Mean(), 1.0, 1e-9);
  EXPECT_NEAR(sum->Variance(), 1.0 / 6.0, 2e-3);
  EXPECT_NEAR(sum->Cdf(1.0), 0.5, 5e-3);
  EXPECT_NEAR(sum->Cdf(0.5), 0.125, 5e-3);
  EXPECT_NEAR(sum->Cdf(1.5), 0.875, 5e-3);
}

TEST(ConvolutionTest, MeanIsExactVarianceNearExact) {
  // Learned histograms of two different shapes.
  Rng rng(1);
  auto a_sample = stats::SampleMany(
      5000, [&] { return stats::SampleGamma(rng, 2.0, 2.0); });
  auto b_sample = stats::SampleMany(
      5000, [&] { return stats::SampleNormal(rng, 10.0, 2.0); });
  dist::HistogramLearnOptions hopts;
  hopts.bin_count = 24;
  auto a = LearnHistogram(a_sample, hopts);
  auto b = LearnHistogram(b_sample, hopts);
  ASSERT_TRUE(a.ok() && b.ok());
  const auto& ha = static_cast<const HistogramDist&>(*a->distribution);
  const auto& hb = static_cast<const HistogramDist&>(*b->distribution);

  auto sum = ConvolveHistograms(ha, hb);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(sum->Mean(), ha.Mean() + hb.Mean(), 1e-6);
  EXPECT_NEAR(sum->Variance(), ha.Variance() + hb.Variance(),
              0.05 * (ha.Variance() + hb.Variance()));
}

TEST(ConvolutionTest, MatchesMonteCarloCdf) {
  Rng rng(2);
  auto a = HistogramDist::Make({0.0, 1.0, 3.0}, {0.7, 0.3});
  auto b = HistogramDist::Make({-1.0, 0.0, 2.0}, {0.5, 0.5});
  ASSERT_TRUE(a.ok() && b.ok());
  ConvolveOptions opts;
  opts.output_bins = 60;
  opts.subdivisions = 16;
  auto sum = ConvolveHistograms(*a, *b, opts);
  ASSERT_TRUE(sum.ok());

  constexpr int kDraws = 200000;
  std::vector<double> mc;
  mc.reserve(kDraws);
  for (int i = 0; i < kDraws; ++i) {
    mc.push_back(a->Sample(rng) + b->Sample(rng));
  }
  std::sort(mc.begin(), mc.end());
  for (double q : {-0.5, 0.5, 1.5, 2.5, 3.5, 4.5}) {
    const double mc_cdf =
        static_cast<double>(std::upper_bound(mc.begin(), mc.end(), q) -
                            mc.begin()) /
        kDraws;
    EXPECT_NEAR(sum->Cdf(q), mc_cdf, 0.02) << "q=" << q;
  }
}

TEST(ConvolutionTest, Options) {
  auto u = HistogramDist::Make({0.0, 1.0}, {1.0});
  ASSERT_TRUE(u.ok());
  ConvolveOptions bad;
  bad.subdivisions = 0;
  EXPECT_TRUE(
      ConvolveHistograms(*u, *u, bad).status().IsInvalidArgument());
  ConvolveOptions fixed;
  fixed.output_bins = 7;
  auto sum = ConvolveHistograms(*u, *u, fixed);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->bin_count(), 7u);
}

TEST(ConvolutionTest, MeanExactEvenWithMassAtSupportEdges) {
  // Regression for the boundary clamp: out-of-hull deposits used to be
  // dumped whole into the edge bins, shifting the mean inward. Mass
  // concentrated in narrow edge bins maximizes the old error; on the
  // midpoint-spanning grid the mean stays exact to rounding.
  auto a = HistogramDist::Make({0.0, 0.01, 9.99, 10.0}, {0.5, 0.0, 0.5});
  auto b = HistogramDist::Make({-5.0, -4.99, 4.99, 5.0}, {0.4, 0.2, 0.4});
  ASSERT_TRUE(a.ok() && b.ok());
  ConvolveOptions opts;
  opts.output_bins = 32;
  opts.subdivisions = 8;
  auto sum = ConvolveHistograms(*a, *b, opts);
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_NEAR(sum->Mean(), a->Mean() + b->Mean(), 1e-9);
  // All mass accounted for (nothing clamped away).
  double total = 0.0;
  for (double p : sum->probs()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ConvolutionTest, RejectsNonFiniteSupportEdges) {
  const double inf = std::numeric_limits<double>::infinity();
  auto finite = HistogramDist::Make({0.0, 1.0}, {1.0});
  auto open = HistogramDist::Make({0.0, 1.0, inf}, {0.5, 0.5});
  ASSERT_TRUE(finite.ok() && open.ok());
  EXPECT_TRUE(ConvolveHistograms(*open, *finite)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ConvolveHistograms(*finite, *open)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace dist
}  // namespace ausdb
