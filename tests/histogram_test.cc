#include "src/dist/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/dist/learner.h"
#include "src/stats/descriptive.h"
#include "src/stats/random_variates.h"

namespace ausdb {
namespace dist {
namespace {

Result<HistogramDist> UnitHistogram() {
  // Four bins over [0, 4) with probabilities 0.1, 0.2, 0.3, 0.4.
  return HistogramDist::Make({0.0, 1.0, 2.0, 3.0, 4.0},
                             {0.1, 0.2, 0.3, 0.4});
}

TEST(HistogramDistTest, Validation) {
  EXPECT_FALSE(HistogramDist::Make({0.0, 1.0}, {}).ok());
  EXPECT_FALSE(HistogramDist::Make({0.0}, {1.0}).ok());
  EXPECT_FALSE(HistogramDist::Make({1.0, 0.0}, {1.0}).ok());
  EXPECT_FALSE(HistogramDist::Make({0.0, 1.0, 1.0}, {0.5, 0.5}).ok());
  EXPECT_FALSE(HistogramDist::Make({0.0, 1.0, 2.0}, {0.7, 0.7}).ok());
  EXPECT_FALSE(HistogramDist::Make({0.0, 1.0, 2.0}, {-0.2, 1.2}).ok());
  EXPECT_TRUE(HistogramDist::Make({0.0, 1.0}, {1.0}).ok());
}

TEST(HistogramDistTest, MeanUsesMidpoints) {
  auto h = UnitHistogram();
  ASSERT_TRUE(h.ok());
  // 0.1*0.5 + 0.2*1.5 + 0.3*2.5 + 0.4*3.5 = 2.5
  EXPECT_DOUBLE_EQ(h->Mean(), 2.5);
}

TEST(HistogramDistTest, VarianceIncludesWithinBinTerm) {
  // Single bin [0,1): uniform(0,1), variance 1/12.
  auto h = HistogramDist::Make({0.0, 1.0}, {1.0});
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->Variance(), 1.0 / 12.0, 1e-12);
}

TEST(HistogramDistTest, CdfPiecewiseLinear) {
  auto h = UnitHistogram();
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->Cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h->Cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h->Cdf(0.5), 0.05);
  EXPECT_DOUBLE_EQ(h->Cdf(1.0), 0.1);
  EXPECT_NEAR(h->Cdf(2.5), 0.45, 1e-12);
  EXPECT_DOUBLE_EQ(h->Cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(h->Cdf(9.0), 1.0);
}

TEST(HistogramDistTest, BinIndexClampsOutOfRange) {
  auto h = UnitHistogram();
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->BinIndex(-5.0), 0u);
  EXPECT_EQ(h->BinIndex(0.5), 0u);
  EXPECT_EQ(h->BinIndex(1.0), 1u);
  EXPECT_EQ(h->BinIndex(3.999), 3u);
  EXPECT_EQ(h->BinIndex(100.0), 3u);
}

TEST(HistogramDistTest, SampleFrequenciesMatchBinProbs) {
  auto h = UnitHistogram();
  ASSERT_TRUE(h.ok());
  Rng rng(31);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[h->BinIndex(h->Sample(rng))];
  }
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(counts[i] / double{kDraws}, h->BinProb(i), 0.01);
  }
}

TEST(HistogramDistTest, WithProbsKeepsEdges) {
  auto h = UnitHistogram();
  ASSERT_TRUE(h.ok());
  auto h2 = h->WithProbs({0.25, 0.25, 0.25, 0.25});
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h2->edges(), h->edges());
  EXPECT_DOUBLE_EQ(h2->Mean(), 2.0);
}

TEST(HistogramLearnerTest, RecoversBinFrequencies) {
  // 20 observations: 3, 4, 8, 5 per bin — the paper's Example 2 setup.
  std::vector<double> obs;
  auto put = [&obs](double lo, int count) {
    for (int i = 0; i < count; ++i) {
      obs.push_back(lo + 0.1 + 0.05 * static_cast<double>(i));
    }
  };
  put(0.0, 3);
  put(1.0, 4);
  put(2.0, 8);
  put(3.0, 5);
  HistogramLearnOptions opts;
  opts.policy = BinningPolicy::kExplicitEdges;
  opts.edges = {0.0, 1.0, 2.0, 3.0, 4.0};
  auto learned = LearnHistogram(obs, opts);
  ASSERT_TRUE(learned.ok()) << learned.status().ToString();
  EXPECT_EQ(learned->sample_size, 20u);
  const auto& h =
      static_cast<const HistogramDist&>(*learned->distribution);
  ASSERT_EQ(h.bin_count(), 4u);
  EXPECT_DOUBLE_EQ(h.BinProb(0), 0.15);
  EXPECT_DOUBLE_EQ(h.BinProb(1), 0.20);
  EXPECT_DOUBLE_EQ(h.BinProb(2), 0.40);
  EXPECT_DOUBLE_EQ(h.BinProb(3), 0.25);
  ASSERT_NE(learned->raw_sample, nullptr);
  EXPECT_EQ(learned->raw_sample->size(), 20u);
}

TEST(HistogramLearnerTest, EqualWidthCoversRange) {
  Rng rng(5);
  std::vector<double> obs =
      stats::SampleMany(500, [&] { return stats::SampleNormal(rng, 0, 1); });
  HistogramLearnOptions opts;
  opts.bin_count = 8;
  auto learned = LearnHistogram(obs, opts);
  ASSERT_TRUE(learned.ok());
  const auto& h =
      static_cast<const HistogramDist&>(*learned->distribution);
  EXPECT_EQ(h.bin_count(), 8u);
  const auto [mn, mx] = std::minmax_element(obs.begin(), obs.end());
  EXPECT_LE(h.edges().front(), *mn);
  EXPECT_GE(h.edges().back(), *mx);
  double total = 0.0;
  for (double p : h.probs()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HistogramLearnerTest, SturgesBinCount) {
  std::vector<double> obs(64);
  for (size_t i = 0; i < obs.size(); ++i) {
    obs[i] = static_cast<double>(i);
  }
  HistogramLearnOptions opts;
  opts.policy = BinningPolicy::kSturges;
  auto learned = LearnHistogram(obs, opts);
  ASSERT_TRUE(learned.ok());
  const auto& h =
      static_cast<const HistogramDist&>(*learned->distribution);
  EXPECT_EQ(h.bin_count(), 7u);  // ceil(log2 64) + 1
}

TEST(HistogramLearnerTest, FreedmanDiaconisProducesReasonableBins) {
  Rng rng(17);
  std::vector<double> obs = stats::SampleMany(
      1000, [&] { return stats::SampleUniform(rng, 0, 10); });
  HistogramLearnOptions opts;
  opts.policy = BinningPolicy::kFreedmanDiaconis;
  auto learned = LearnHistogram(obs, opts);
  ASSERT_TRUE(learned.ok());
  const auto& h =
      static_cast<const HistogramDist&>(*learned->distribution);
  EXPECT_GT(h.bin_count(), 3u);
  EXPECT_LT(h.bin_count(), 50u);
}

TEST(HistogramLearnerTest, DegenerateConstantSample) {
  std::vector<double> obs(10, 5.0);
  auto learned = LearnHistogram(obs, {});
  ASSERT_TRUE(learned.ok());
  // All mass lands in one of the ten 0.1-wide bins spanning [4.5, 5.5];
  // the histogram mean is that bin's midpoint, within a bin width of 5.
  EXPECT_NEAR(learned->distribution->Mean(), 5.0, 0.1);
}

TEST(HistogramLearnerTest, EmptySampleFails) {
  EXPECT_TRUE(
      LearnHistogram({}, {}).status().IsInsufficientData());
}

TEST(GaussianLearnerTest, MleMatchesSampleStats) {
  const std::vector<double> obs = {1.0, 2.0, 3.0, 4.0, 5.0};
  auto learned = LearnGaussian(obs);
  ASSERT_TRUE(learned.ok());
  EXPECT_DOUBLE_EQ(learned->distribution->Mean(), 3.0);
  EXPECT_DOUBLE_EQ(learned->distribution->Variance(), 2.5);
  EXPECT_EQ(learned->sample_size, 5u);
}

TEST(GaussianLearnerTest, NeedsTwoObservations) {
  EXPECT_TRUE(LearnGaussian(std::vector<double>{1.0})
                  .status()
                  .IsInsufficientData());
}

TEST(EmpiricalLearnerTest, KeepsAllObservations) {
  const std::vector<double> obs = {5.0, 1.0, 3.0};
  auto learned = LearnEmpirical(obs);
  ASSERT_TRUE(learned.ok());
  EXPECT_EQ(learned->sample_size, 3u);
  EXPECT_DOUBLE_EQ(learned->distribution->Mean(), 3.0);
}

TEST(CountBinsTest, ClampsAndCounts) {
  const std::vector<double> edges = {0.0, 1.0, 2.0};
  const std::vector<double> obs = {-1.0, 0.5, 1.5, 2.5, 1.0};
  const auto counts = CountBins(obs, edges);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);  // -1 clamped in, 0.5
  EXPECT_EQ(counts[1], 3u);  // 1.5, 2.5 clamped in, 1.0
}

}  // namespace
}  // namespace dist
}  // namespace ausdb
