// Property-style parameterized suites: invariants that must hold across
// sweeps of confidence levels, random expressions and random seeds.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/accuracy/mean_variance_ci.h"
#include "src/accuracy/proportion_ci.h"
#include "src/dist/learner.h"
#include "src/expr/analyzer.h"
#include "src/expr/evaluator.h"
#include "src/hypothesis/coupled_tests.h"
#include "src/query/parser.h"
#include "src/stats/random_variates.h"
#include "src/workload/random_query.h"

namespace ausdb {
namespace {

// ---------------------------------------------------------------------
// Coverage properties across confidence levels.

class ConfidenceSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ConfidenceSweepTest, MeanIntervalCoverageTracksConfidence) {
  const double confidence = GetParam();
  Rng rng(1000 + static_cast<int>(confidence * 100));
  constexpr int kTrials = 3000;
  int hits = 0;
  for (int t = 0; t < kTrials; ++t) {
    const auto obs = stats::SampleMany(
        25, [&] { return stats::SampleNormal(rng, 3.0, 2.0); });
    auto ci = accuracy::MeanIntervalFromSample(obs, confidence);
    ASSERT_TRUE(ci.ok());
    if (ci->Contains(3.0)) ++hits;
  }
  const double coverage = static_cast<double>(hits) / kTrials;
  // Nominal within 3 standard errors of the binomial.
  const double se =
      std::sqrt(confidence * (1.0 - confidence) / kTrials);
  EXPECT_NEAR(coverage, confidence, 3.5 * se + 0.005);
}

TEST_P(ConfidenceSweepTest, IntervalsNestByConfidence) {
  const double confidence = GetParam();
  // A higher-confidence interval must contain a lower-confidence one for
  // the same sample.
  const std::vector<double> obs = {4.2, 5.1, 3.8, 6.0, 4.9,
                                   5.5, 4.4, 5.8, 4.0, 5.2};
  auto lo_ci = accuracy::MeanIntervalFromSample(obs, confidence);
  auto hi_ci = accuracy::MeanIntervalFromSample(
      obs, std::min(0.995, confidence + 0.04));
  ASSERT_TRUE(lo_ci.ok() && hi_ci.ok());
  EXPECT_LE(hi_ci->lo, lo_ci->lo + 1e-12);
  EXPECT_GE(hi_ci->hi, lo_ci->hi - 1e-12);

  auto lo_var = accuracy::VarianceIntervalFromSample(obs, confidence);
  auto hi_var = accuracy::VarianceIntervalFromSample(
      obs, std::min(0.995, confidence + 0.04));
  ASSERT_TRUE(lo_var.ok() && hi_var.ok());
  EXPECT_LE(hi_var->lo, lo_var->lo + 1e-12);
  EXPECT_GE(hi_var->hi, lo_var->hi - 1e-12);

  auto lo_p = accuracy::ProportionInterval(0.3, 40, confidence);
  auto hi_p = accuracy::ProportionInterval(
      0.3, 40, std::min(0.995, confidence + 0.04));
  ASSERT_TRUE(lo_p.ok() && hi_p.ok());
  EXPECT_LE(hi_p->lo, lo_p->lo + 1e-12);
  EXPECT_GE(hi_p->hi, lo_p->hi - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Levels, ConfidenceSweepTest,
                         ::testing::Values(0.8, 0.9, 0.95, 0.99),
                         [](const auto& info) {
                           return "c" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

// ---------------------------------------------------------------------
// Lemma 3 propagation invariant over random expressions.

class RandomExpressionTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomExpressionTest, DfSampleSizeIsMinOverInputs) {
  Rng rng(7000 + GetParam());
  workload::RandomQueryOptions opts;
  opts.num_columns = 3;
  opts.num_operators = 5;
  const auto q = GenerateRandomQuery(rng, opts);

  // Assign distinct sample sizes so the minimum is unambiguous.
  const std::vector<size_t> sizes = {17, 11, 23};
  std::vector<expr::Value> row;
  for (size_t i = 0; i < q.families.size(); ++i) {
    auto sample = workload::SampleFamilyMany(rng, q.families[i], sizes[i]);
    auto learned = dist::LearnEmpirical(sample);
    ASSERT_TRUE(learned.ok());
    row.emplace_back(dist::RandomVar(*learned));
  }
  expr::EvalOptions eopts;
  eopts.mc_samples = 200;
  eopts.seed = 42 + GetParam();
  expr::Evaluator eval(eopts);
  auto v = eval.Evaluate(*q.expression,
                         expr::Row{&q.column_names, &row});
  ASSERT_TRUE(v.ok()) << q.expression->ToString() << ": "
                      << v.status().ToString();
  ASSERT_TRUE(v->is_random_var());

  // Lemma 3: n_out = min over referenced columns' sizes.
  const auto used = expr::CollectColumns(*q.expression);
  size_t expected = dist::RandomVar::kCertainSampleSize;
  for (const auto& name : used) {
    for (size_t i = 0; i < q.column_names.size(); ++i) {
      if (q.column_names[i] == name) {
        expected = std::min(expected, sizes[i]);
      }
    }
  }
  EXPECT_EQ(v->random_var()->sample_size(), expected)
      << q.expression->ToString();
}

TEST_P(RandomExpressionTest, ExpressionToStringReparses) {
  Rng rng(8000 + GetParam());
  workload::RandomQueryOptions opts;
  opts.num_columns = 2;
  opts.num_operators = 4;
  const auto q = GenerateRandomQuery(rng, opts);
  const std::string rendered = q.expression->ToString();
  auto reparsed = query::ParseExpression(rendered);
  ASSERT_TRUE(reparsed.ok())
      << rendered << ": " << reparsed.status().ToString();
  // Rendering must reach a fixpoint after one round trip.
  EXPECT_EQ((*reparsed)->ToString(), rendered);
}

TEST_P(RandomExpressionTest, EvaluationIsDeterministicPerSeed) {
  Rng rng(9000 + GetParam());
  workload::RandomQueryOptions opts;
  opts.num_columns = 2;
  opts.num_operators = 3;
  const auto q = GenerateRandomQuery(rng, opts);
  std::vector<expr::Value> row;
  for (workload::Family f : q.families) {
    auto sample = workload::SampleFamilyMany(rng, f, 15);
    auto learned = dist::LearnEmpirical(sample);
    row.emplace_back(dist::RandomVar(*learned));
  }
  expr::EvalOptions eopts;
  eopts.mc_samples = 300;
  eopts.seed = 5;
  expr::Evaluator a(eopts), b(eopts);
  auto va = a.Evaluate(*q.expression, expr::Row{&q.column_names, &row});
  auto vb = b.Evaluate(*q.expression, expr::Row{&q.column_names, &row});
  ASSERT_TRUE(va.ok() && vb.ok());
  if (va->is_random_var()) {
    EXPECT_DOUBLE_EQ(va->random_var()->Mean(), vb->random_var()->Mean());
    EXPECT_DOUBLE_EQ(va->random_var()->Variance(),
                     vb->random_var()->Variance());
  } else {
    EXPECT_DOUBLE_EQ(*va->AsDouble(), *vb->AsDouble());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExpressionTest,
                         ::testing::Range(0, 25));

// ---------------------------------------------------------------------
// Coupled-tests consistency with the underlying single tests.

class CoupledConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(CoupledConsistencyTest, AgreesWithSingleTests) {
  Rng rng(11000 + GetParam());
  const auto obs = stats::SampleMany(
      20, [&] { return stats::SampleNormal(rng, 5.0, 2.0); });
  auto learned = dist::LearnGaussian(obs);
  dist::RandomVar x(*learned);
  const double c = rng.NextDouble(3.0, 7.0);

  auto coupled = hypothesis::CoupledMTest(
      x, hypothesis::TestOp::kGreater, c, 0.05, 0.05);
  auto forward = hypothesis::MTest(x, hypothesis::TestOp::kGreater, c,
                                   0.05);
  auto inverse =
      hypothesis::MTest(x, hypothesis::TestOp::kLess, c, 0.05);
  ASSERT_TRUE(coupled.ok() && forward.ok() && inverse.ok());

  switch (*coupled) {
    case hypothesis::TestOutcome::kTrue:
      EXPECT_TRUE(*forward);
      break;
    case hypothesis::TestOutcome::kFalse:
      EXPECT_FALSE(*forward);
      EXPECT_TRUE(*inverse);
      break;
    case hypothesis::TestOutcome::kUnsure:
      EXPECT_FALSE(*forward);
      EXPECT_FALSE(*inverse);
      break;
  }
}

TEST_P(CoupledConsistencyTest, TighterAlphaNeverFlipsDecision) {
  // Shrinking alpha can only move decisions toward UNSURE, never flip
  // TRUE <-> FALSE.
  Rng rng(12000 + GetParam());
  const auto obs = stats::SampleMany(
      20, [&] { return stats::SampleNormal(rng, 5.0, 2.0); });
  auto learned = dist::LearnGaussian(obs);
  dist::RandomVar x(*learned);
  const double c = rng.NextDouble(3.0, 7.0);

  auto loose = hypothesis::CoupledMTest(
      x, hypothesis::TestOp::kGreater, c, 0.1, 0.1);
  auto tight = hypothesis::CoupledMTest(
      x, hypothesis::TestOp::kGreater, c, 0.01, 0.01);
  ASSERT_TRUE(loose.ok() && tight.ok());
  if (*tight == hypothesis::TestOutcome::kTrue) {
    EXPECT_EQ(*loose, hypothesis::TestOutcome::kTrue);
  }
  if (*tight == hypothesis::TestOutcome::kFalse) {
    EXPECT_EQ(*loose, hypothesis::TestOutcome::kFalse);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoupledConsistencyTest,
                         ::testing::Range(0, 30));

// ---------------------------------------------------------------------
// Wald/Wilson interval structural properties.

class ProportionSweepTest
    : public ::testing::TestWithParam<std::pair<double, int>> {};

TEST_P(ProportionSweepTest, IntervalContainsPointEstimate) {
  const auto [p, n] = GetParam();
  auto ci = accuracy::ProportionInterval(p, static_cast<size_t>(n), 0.9);
  ASSERT_TRUE(ci.ok());
  // Wilson re-centers, but the observed p stays inside the interval.
  EXPECT_LE(ci->lo, p + 1e-12);
  EXPECT_GE(ci->hi, p - 1e-12);
  EXPECT_GE(ci->lo, 0.0);
  EXPECT_LE(ci->hi, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProportionSweepTest,
    ::testing::Values(std::pair{0.0, 10}, std::pair{0.05, 10},
                      std::pair{0.3, 10}, std::pair{1.0, 10},
                      std::pair{0.01, 100}, std::pair{0.5, 100},
                      std::pair{0.99, 100}, std::pair{0.5, 10000}));

}  // namespace
}  // namespace ausdb
