// The parallel execution layer's determinism contract: for any thread
// count (including the serial no-pool engine), parallel plans produce
// bit-identical output. These tests compare byte-for-byte — doubles via
// their IEEE-754 bit patterns, never via tolerances.

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "src/bootstrap/bootstrap_accuracy.h"
#include "src/bootstrap/resampler.h"
#include "src/common/thread_pool.h"
#include "src/dist/convolution.h"
#include "src/dist/gaussian.h"
#include "src/dist/learner.h"
#include "src/engine/executor.h"
#include "src/engine/partitioned_window.h"
#include "src/engine/scan.h"
#include "src/engine/sharded_partitioned_window.h"

namespace ausdb {
namespace engine {
namespace {

using dist::RandomVar;

uint64_t Bits(double d) { return std::bit_cast<uint64_t>(d); }

Schema KeyedSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"k", FieldType::kString}).ok());
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  return s;
}

// Mixed-magnitude Gaussian inputs over a couple dozen keys: any
// reordering of the floating-point reductions would show up in the bits.
std::vector<Tuple> KeyedInput(size_t n) {
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const std::string key = "key" + std::to_string((i * 7) % 23);
    const double mean =
        (i % 2 == 0 ? 1e6 : 1e-2) * (1.0 + static_cast<double>(i % 13));
    const double var = 1.0 + static_cast<double>(i % 5);
    const size_t df = 10 + i % 50;
    tuples.push_back(Tuple(
        {expr::Value(key),
         expr::Value(RandomVar(
             std::make_shared<dist::GaussianDist>(mean, var), df))}));
  }
  return tuples;
}

void ExpectBitIdentical(const std::vector<Tuple>& a,
                        const std::vector<Tuple>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(*a[i].value(0).string_value(), *b[i].value(0).string_value());
    const RandomVar ra = *a[i].value(1).random_var();
    const RandomVar rb = *b[i].value(1).random_var();
    EXPECT_EQ(Bits(ra.Mean()), Bits(rb.Mean())) << "tuple " << i;
    EXPECT_EQ(Bits(ra.Variance()), Bits(rb.Variance())) << "tuple " << i;
    EXPECT_EQ(ra.sample_size(), rb.sample_size());
    EXPECT_EQ(a[i].sequence(), b[i].sequence());
    EXPECT_EQ(Bits(a[i].membership_prob()), Bits(b[i].membership_prob()));
    EXPECT_EQ(a[i].membership_df_n(), b[i].membership_df_n());
  }
}

ShardedWindowOptions ShardedOpts(size_t num_shards) {
  ShardedWindowOptions opts;
  opts.window.window_size = 8;
  opts.window.fn = WindowAggFn::kAvg;
  opts.num_shards = num_shards;
  opts.batch_size = 64;
  return opts;
}

Result<std::vector<Tuple>> RunSharded(const std::vector<Tuple>& input,
                                      size_t num_shards,
                                      ThreadPool* pool) {
  auto scan = std::make_unique<VectorScan>(KeyedSchema(), input);
  AUSDB_ASSIGN_OR_RETURN(
      auto agg, ShardedPartitionedWindowAggregate::Make(
                    std::move(scan), "k", "x", "agg",
                    ShardedOpts(num_shards)));
  if (pool == nullptr) return Collect(*agg);
  return ParallelCollect(*agg, *pool);
}

TEST(ParallelDeterminismTest, ShardedWindowMatchesSerialOperatorBitwise) {
  const std::vector<Tuple> input = KeyedInput(2000);

  // The serial reference operator.
  auto scan = std::make_unique<VectorScan>(KeyedSchema(), input);
  WindowAggregateOptions wopts;
  wopts.window_size = 8;
  wopts.fn = WindowAggFn::kAvg;
  auto serial_op = PartitionedWindowAggregate::Make(std::move(scan), "k",
                                                    "x", "agg", wopts);
  ASSERT_TRUE(serial_op.ok()) << serial_op.status().ToString();
  auto reference = Collect(**serial_op);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->empty());

  // Sharded, at thread counts {1, 2, 8} plus the no-pool fallback, and
  // at several shard counts: all byte-identical to the reference.
  auto no_pool = RunSharded(input, 4, nullptr);
  ASSERT_TRUE(no_pool.ok()) << no_pool.status().ToString();
  ExpectBitIdentical(*no_pool, *reference);
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    for (size_t shards : {1u, 3u, 8u}) {
      auto out = RunSharded(input, shards, &pool);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      ExpectBitIdentical(*out, *reference);
    }
  }
}

TEST(ParallelDeterminismTest, BootstrapCiIdenticalAcrossThreadCounts) {
  std::vector<double> sample(300);
  for (size_t i = 0; i < sample.size(); ++i) {
    sample[i] = (i % 3 == 0 ? 1e9 : 1.0) * (1.0 + static_cast<double>(i));
  }
  const auto stat = [](std::span<const double> s) {
    double m = 0.0;
    for (double v : s) m += v;
    return m / static_cast<double>(s.size());
  };
  auto run = [&](ThreadPool* pool) {
    Rng rng(777);
    auto ci = bootstrap::ParallelPercentileBootstrap(sample, 400, 0.95,
                                                     stat, rng, pool);
    EXPECT_TRUE(ci.ok()) << ci.status().ToString();
    return *ci;
  };
  const auto reference = run(nullptr);
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const auto ci = run(&pool);
    EXPECT_EQ(Bits(ci.lo), Bits(reference.lo));
    EXPECT_EQ(Bits(ci.hi), Bits(reference.hi));
    EXPECT_EQ(ci.confidence, reference.confidence);
  }
}

TEST(ParallelDeterminismTest, ResampleManyIdenticalAcrossThreadCounts) {
  std::vector<double> sample(64);
  for (size_t i = 0; i < sample.size(); ++i) {
    sample[i] = static_cast<double>(i) * 1.25;
  }
  auto run = [&](ThreadPool* pool) {
    Rng parent(99);
    return bootstrap::ResampleMany(sample, 40, parent, pool);
  };
  const auto reference = run(nullptr);
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const auto out = run(&pool);
    ASSERT_EQ(out.size(), reference.size());
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i].size(), reference[i].size());
      for (size_t j = 0; j < out[i].size(); ++j) {
        EXPECT_EQ(Bits(out[i][j]), Bits(reference[i][j]));
      }
    }
  }
}

TEST(ParallelDeterminismTest, ConvolutionIdenticalAcrossThreadCounts) {
  auto a = dist::HistogramDist::Make({0.0, 1.0, 3.0}, {0.7, 0.3});
  auto b = dist::HistogramDist::Make({-1.0, 0.0, 2.0}, {0.5, 0.5});
  ASSERT_TRUE(a.ok() && b.ok());
  auto run = [&](ThreadPool* pool) {
    dist::ConvolveOptions opts;
    opts.output_bins = 512;
    opts.subdivisions = 4;
    opts.pool = pool;
    auto sum = dist::ConvolveHistograms(*a, *b, opts);
    EXPECT_TRUE(sum.ok()) << sum.status().ToString();
    return *sum;
  };
  const auto reference = run(nullptr);
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const auto out = run(&pool);
    ASSERT_EQ(out.probs().size(), reference.probs().size());
    for (size_t i = 0; i < out.probs().size(); ++i) {
      EXPECT_EQ(Bits(out.probs()[i]), Bits(reference.probs()[i]));
      EXPECT_EQ(Bits(out.edges()[i]), Bits(reference.edges()[i]));
    }
  }
}

// A scan that serves a shared input vector starting at an offset with
// globally consistent sequence numbers — the "re-seeked source" of the
// checkpoint/restore protocol.
class SuffixScan final : public Operator {
 public:
  SuffixScan(Schema schema, std::vector<Tuple> tuples, size_t offset)
      : schema_(std::move(schema)),
        tuples_(std::move(tuples)),
        pos_(offset) {
    for (size_t i = 0; i < tuples_.size(); ++i) {
      tuples_[i].set_sequence(i);
    }
  }

  const Schema& schema() const override { return schema_; }
  Result<std::optional<Tuple>> Next() override {
    if (pos_ >= tuples_.size()) return std::optional<Tuple>(std::nullopt);
    return std::optional<Tuple>(tuples_[pos_++]);
  }

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
  size_t pos_;
};

TEST(ParallelDeterminismTest, ShardedCheckpointRestoreResumesMidStream) {
  const std::vector<Tuple> input = KeyedInput(1500);

  // Reference: one uninterrupted serial run.
  auto reference = RunSharded(input, 4, nullptr);
  ASSERT_TRUE(reference.ok());
  ASSERT_GT(reference->size(), 400u);

  // Interrupted run: pull 150 emissions, checkpoint (mid-batch — with
  // batch_size 64 the out-queue holds computed-but-unpulled emissions).
  auto scan = std::make_unique<VectorScan>(KeyedSchema(), input);
  auto agg = ShardedPartitionedWindowAggregate::Make(
      std::move(scan), "k", "x", "agg", ShardedOpts(4));
  ASSERT_TRUE(agg.ok());
  std::vector<Tuple> before;
  for (size_t i = 0; i < 150; ++i) {
    auto next = (*agg)->Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
    before.push_back(std::move(**next));
  }
  auto blob = (*agg)->SaveCheckpoint();
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  const uint64_t consumed = (*agg)->input_consumed();
  ASSERT_GT(consumed, 150u);
  ASSERT_LT(consumed, input.size());

  // Restore into a fresh operator over a re-seeked source, resume with a
  // pool of 8 (restore must be thread-count-independent too).
  auto restored = ShardedPartitionedWindowAggregate::Make(
      std::make_unique<SuffixScan>(KeyedSchema(), input, consumed), "k",
      "x", "agg", ShardedOpts(4));
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE((*restored)->RestoreCheckpoint(*blob).ok());
  ThreadPool pool(8);
  auto after = ParallelCollect(**restored, pool);
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  std::vector<Tuple> stitched = std::move(before);
  stitched.insert(stitched.end(), after->begin(), after->end());
  ExpectBitIdentical(stitched, *reference);
}

}  // namespace
}  // namespace engine
}  // namespace ausdb
