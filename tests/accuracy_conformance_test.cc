// Statistical conformance harness for the accuracy-target cost model:
// for EVERY configuration the chooser can put in force
// (MethodChooser::SelectableSpecs), the empirical coverage of the
// intervals the real AccuracyAnnotator produces must meet the stated
// confidence within a pre-registered tolerance. This is what makes the
// cost model's accuracy predictions trustworthy rather than plausible:
// a new candidate cannot enter the lattice without passing this gate.
//
// Pre-registered experiment design (fixed before results were read):
//   * kTrials independent trials per configuration, each an
//     independently learned distribution from a fresh seeded sample;
//   * coverage must satisfy  coverage >= confidence - kTolerance,
//     with kTolerance = 0.04 ~ two binomial standard errors at
//     kTrials = 400 (SE ~ 0.015) plus model slack;
//   * seeds are fixed constants — the harness is fully deterministic.

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/accuracy/accuracy_info.h"
#include "src/common/rng.h"
#include "src/dist/histogram.h"
#include "src/dist/learner.h"
#include "src/engine/accuracy_annotator.h"
#include "src/engine/executor.h"
#include "src/engine/scan.h"
#include "src/govern/cost_model.h"
#include "src/govern/precision.h"
#include "src/query/planner.h"
#include "src/stream/sources.h"

namespace ausdb {
namespace govern {
namespace {

using engine::Collect;
using engine::FieldType;
using engine::Schema;
using engine::Tuple;
using engine::VectorScan;

constexpr size_t kTrials = 400;
constexpr double kTolerance = 0.04;
constexpr double kConfidence = 0.9;
// Small-sample regime (n < 30): the Student-t / bootstrap-quantile
// corrections are actually load-bearing, not vestigial.
constexpr size_t kPointsPerItem = 24;
constexpr double kMu = 5.0;
constexpr double kSigma = 2.0;

Schema UncertainSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  return s;
}

/// Runs kTrials independently learned Gaussian fields through the real
/// AccuracyAnnotator configured as `spec` prescribes, and returns the
/// fraction of trials whose mean interval covers the true mean.
double MeanCoverage(const MethodSpec& spec, uint64_t seed) {
  engine::AccuracyAnnotatorOptions options;
  options.confidence = kConfidence;
  options.method = spec.method;
  if (spec.is_bootstrap()) {
    options.bootstrap_resamples = spec.bootstrap_resamples;
  }
  options.seed = seed ^ 0xC0FFEEull;
  engine::AccuracyAnnotator annotator(
      stream::MakeLearnedGaussianSource("x", kTrials, kPointsPerItem, kMu,
                                        kSigma, seed),
      options);
  auto out = Collect(annotator);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  size_t covered = 0, total = 0;
  for (const Tuple& t : *out) {
    const auto& info = t.accuracy()[0];
    EXPECT_TRUE(info.has_value());
    if (!info.has_value() || !info->mean_ci.has_value()) continue;
    ++total;
    if (info->mean_ci->Contains(kMu)) ++covered;
  }
  EXPECT_EQ(total, kTrials);
  return total == 0 ? 0.0 : static_cast<double>(covered) /
                                static_cast<double>(total);
}

TEST(AccuracyConformanceTest, EverySelectableSpecMeetsMeanCoverage) {
  AccuracyTarget target;
  target.epsilon = 0.5;
  target.confidence = kConfidence;
  const std::vector<MethodSpec> selectable =
      MethodChooser::SelectableSpecs(target, ChooserOptions{});
  ASSERT_FALSE(selectable.empty());

  // The histogram_merge knob cannot affect a Gaussian field's mean
  // interval, so coverage is memoized per (method, resamples) — every
  // selectable spec is still asserted against its own result.
  std::vector<std::pair<std::pair<int, size_t>, double>> memo;
  for (const MethodSpec& spec : selectable) {
    const std::pair<int, size_t> key = {spec.is_bootstrap() ? 1 : 0,
                                        spec.bootstrap_resamples};
    double coverage = -1.0;
    for (const auto& [k, v] : memo) {
      if (k == key) coverage = v;
    }
    if (coverage < 0.0) {
      coverage = MeanCoverage(spec, /*seed=*/0x5EEDull + key.second);
      memo.push_back({key, coverage});
    }
    EXPECT_GE(coverage, kConfidence - kTolerance)
        << spec.ToString() << " undercovers: empirical " << coverage
        << " vs stated " << kConfidence;
  }
}

TEST(AccuracyConformanceTest, NonConformingResamplesStayExcluded) {
  // The complement of the harness above: the interior-quantile rule is
  // what keeps small-r bootstrap (whose percentile interval cannot hold
  // the stated confidence) out of the selectable set. If someone lowers
  // the rule, this pin fails before the coverage sweep ever would.
  AccuracyTarget target;
  target.epsilon = 0.5;
  target.confidence = 0.99;
  for (const MethodSpec& spec :
       MethodChooser::SelectableSpecs(target, ChooserOptions{})) {
    if (spec.is_bootstrap()) {
      EXPECT_GE(spec.bootstrap_resamples, MinConformingResamples(0.99))
          << spec.ToString();
    }
  }
}

// ---------------------------------------------------------------------
// Histogram workloads: per-bin (Lemma 1) coverage under coarsening

/// Draws `n` categorical samples from `true_probs` and returns the
/// empirical histogram over `edges`.
dist::HistogramDist SampleHistogram(const std::vector<double>& edges,
                                    const std::vector<double>& true_probs,
                                    size_t n, Rng& rng) {
  std::vector<double> counts(true_probs.size(), 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double u = rng.NextDouble();
    double acc = 0.0;
    size_t bin = true_probs.size() - 1;
    for (size_t b = 0; b < true_probs.size(); ++b) {
      acc += true_probs[b];
      if (u < acc) {
        bin = b;
        break;
      }
    }
    counts[bin] += 1.0;
  }
  for (double& c : counts) c /= static_cast<double>(n);
  auto h = dist::HistogramDist::Make(edges, counts);
  EXPECT_TRUE(h.ok());
  return *h;
}

TEST(AccuracyConformanceTest, MergedHistogramBinCoverageConforms) {
  const std::vector<double> edges = {0, 1, 2, 3, 4, 5, 6};
  const std::vector<double> true_probs = {0.15, 0.2, 0.25, 0.2, 0.1, 0.1};
  const size_t n = 80;
  Rng rng(0xB1A5ull);

  for (size_t merge : ChooserOptions{}.merge_candidates) {
    // True masses of the coarsened bins: sums of the merged parts —
    // coarsening must stay unbiased, so coverage is checked against
    // these, not against the fine-grained masses.
    std::vector<double> true_merged;
    for (size_t i = 0; i < true_probs.size(); i += merge) {
      double mass = 0.0;
      for (size_t j = i; j < std::min(i + merge, true_probs.size()); ++j) {
        mass += true_probs[j];
      }
      true_merged.push_back(mass);
    }

    size_t covered = 0, total = 0;
    for (size_t trial = 0; trial < kTrials; ++trial) {
      const dist::HistogramDist sampled =
          SampleHistogram(edges, true_probs, n, rng);
      auto coarse = CoarsenHistogram(sampled, merge);
      ASSERT_TRUE(coarse.ok());
      auto info = accuracy::AnalyticalAccuracy(*coarse, n, kConfidence);
      ASSERT_TRUE(info.ok()) << info.status().ToString();
      ASSERT_EQ(info->bin_cis.size(), true_merged.size());
      for (size_t b = 0; b < true_merged.size(); ++b) {
        ++total;
        if (info->bin_cis[b].Contains(true_merged[b])) ++covered;
      }
    }
    const double coverage =
        static_cast<double>(covered) / static_cast<double>(total);
    EXPECT_GE(coverage, kConfidence - kTolerance)
        << "merge=" << merge << " per-bin coverage " << coverage;
  }
}

// ---------------------------------------------------------------------
// End to end: the configuration the chooser actually selects conforms

TEST(AccuracyConformanceTest, PlannedAccuracyTargetQueryHoldsCoverage) {
  // The tentpole's promise in one assertion: plan a WITH ACCURACY query,
  // let the cost model pick the configuration and recalibrate on real
  // epochs, and check the delivered intervals' empirical coverage.
  ChooserOptions copts;
  copts.epoch_interval = 64;
  auto chooser = std::make_shared<MethodChooser>(std::move(copts));
  query::PlannerOptions popts;
  popts.cost_model.instance = chooser;
  auto plan = query::PlanQuery(
      "SELECT * FROM s WITH ACCURACY 0.8 CONFIDENCE 0.9",
      stream::MakeLearnedGaussianSource("x", kTrials, kPointsPerItem, kMu,
                                        kSigma, 0xFEEDull),
      popts);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto out = Collect(**plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), kTrials);

  size_t covered = 0;
  for (const Tuple& t : *out) {
    const auto& info = t.accuracy()[0];
    ASSERT_TRUE(info.has_value() && info->mean_ci.has_value());
    if (info->mean_ci->Contains(kMu)) ++covered;
  }
  const double coverage =
      static_cast<double>(covered) / static_cast<double>(kTrials);
  EXPECT_GE(coverage, kConfidence - kTolerance)
      << "chooser-selected configuration " << chooser->current().ToString()
      << " undercovers: " << coverage;
  // The chooser really ran: observations arrived and epochs ticked.
  EXPECT_EQ(chooser->observed_tuples(), kTrials);
  EXPECT_GE(chooser->epochs(), kTrials / 64);
}

}  // namespace
}  // namespace govern
}  // namespace ausdb
