#include "src/stats/ks_test.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/stats/quantiles.h"
#include "src/stats/random_variates.h"

namespace ausdb {
namespace stats {
namespace {

TEST(KolmogorovSurvivalTest, KnownValues) {
  // Classic critical values: Q(1.36) ~ 0.049, Q(1.63) ~ 0.010.
  EXPECT_NEAR(KolmogorovSurvival(1.36), 0.049, 2e-3);
  EXPECT_NEAR(KolmogorovSurvival(1.63), 0.010, 1e-3);
  EXPECT_DOUBLE_EQ(KolmogorovSurvival(0.0), 1.0);
  EXPECT_NEAR(KolmogorovSurvival(0.3), 1.0, 1e-4);  // tiny statistic
  EXPECT_LT(KolmogorovSurvival(3.0), 1e-7);
}

TEST(KolmogorovSurvivalTest, SmallAndLargeBranchesAgree) {
  // Reference values across the branch crossover at x = 0.5 (the two
  // series forms must agree): Q(0.45), Q(0.5), Q(0.55).
  EXPECT_NEAR(KolmogorovSurvival(0.45), 0.9874, 5e-4);
  EXPECT_NEAR(KolmogorovSurvival(0.50), 0.9639, 5e-4);
  EXPECT_NEAR(KolmogorovSurvival(0.55), 0.9228, 5e-4);
}

TEST(KsTestTest, CorrectModelYieldsUniformPValues) {
  Rng rng(1);
  int rejections = 0;
  constexpr int kTrials = 500;
  for (int t = 0; t < kTrials; ++t) {
    const auto sample = SampleMany(
        50, [&] { return SampleNormal(rng, 2.0, 3.0); });
    auto r = KsTestAgainstCdf(sample, [](double x) {
      return NormalCdf((x - 2.0) / 3.0);
    });
    ASSERT_TRUE(r.ok());
    if (r->p_value < 0.05) ++rejections;
  }
  // ~5% nominal rejection rate.
  EXPECT_NEAR(static_cast<double>(rejections) / kTrials, 0.05, 0.03);
}

TEST(KsTestTest, WrongModelIsRejected) {
  Rng rng(2);
  const auto sample = SampleMany(
      200, [&] { return SampleExponential(rng, 1.0); });
  // Test against a normal with matching moments: clearly wrong shape.
  auto r = KsTestAgainstCdf(sample, [](double x) {
    return NormalCdf(x - 1.0);
  });
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->p_value, 0.01);
}

TEST(KsTestTest, TwoSampleSameAndDifferent) {
  Rng rng(3);
  const auto a = SampleMany(
      1500, [&] { return SampleGamma(rng, 2.0, 2.0); });
  const auto b = SampleMany(
      1500, [&] { return SampleGamma(rng, 2.0, 2.0); });
  auto same = KsTestTwoSample(a, b);
  ASSERT_TRUE(same.ok());
  EXPECT_GT(same->p_value, 0.01);

  // Moment-matched normal: same mean/variance, different shape — only
  // detectable with enough data.
  const auto c = SampleMany(
      1500, [&] { return SampleNormal(rng, 4.0, std::sqrt(8.0)); });
  auto diff = KsTestTwoSample(a, c);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff->p_value, 0.01);
}

TEST(KsTestTest, StalenessDetectionScenario) {
  // The stream use case: distribution learned yesterday, fresh data has
  // drifted; the KS check flags the stale model.
  Rng rng(4);
  const auto fresh = SampleMany(
      100, [&] { return SampleNormal(rng, 11.0, 2.0); });  // drifted
  auto r = KsTestAgainstCdf(fresh, [](double x) {
    return NormalCdf((x - 10.0) / 2.0);  // yesterday's model
  });
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->p_value, 0.05);
}

TEST(KsTestTest, InvalidInputs) {
  EXPECT_TRUE(KsTestAgainstCdf({}, [](double) { return 0.5; })
                  .status()
                  .IsInsufficientData());
  const std::vector<double> one = {1.0};
  EXPECT_TRUE(KsTestTwoSample(one, {}).status().IsInsufficientData());
}

}  // namespace
}  // namespace stats
}  // namespace ausdb
