// Failure-injection tests: errors raised mid-stream must propagate
// cleanly (as Status, never crashes or silent truncation) through every
// operator layer.

#include <vector>

#include <gtest/gtest.h>

#include "src/dist/gaussian.h"
#include "src/engine/accuracy_annotator.h"
#include "src/engine/executor.h"
#include "src/engine/filter.h"
#include "src/engine/limit.h"
#include "src/engine/partitioned_window.h"
#include "src/engine/project.h"
#include "src/engine/scan.h"
#include "src/engine/sort.h"
#include "src/engine/time_window_aggregate.h"
#include "src/engine/union_all.h"
#include "src/engine/window_aggregate.h"

namespace ausdb {
namespace engine {
namespace {

using dist::RandomVar;

Schema XSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  return s;
}

Tuple XTuple(double mean) {
  return Tuple({expr::Value(RandomVar(
      std::make_shared<dist::GaussianDist>(mean, 1.0), 10))});
}

// A source that produces `good` tuples and then fails.
OperatorPtr FailingSource(size_t good) {
  auto produced = std::make_shared<size_t>(0);
  return std::make_unique<StreamScan>(
      XSchema(),
      [produced, good]() -> Result<std::optional<Tuple>> {
        if (*produced >= good) {
          return Status::Internal("sensor link dropped");
        }
        ++*produced;
        return std::optional<Tuple>(XTuple(5.0));
      });
}

TEST(FailureInjectionTest, ScanFailurePropagatesThroughFilter) {
  Filter filter(FailingSource(3),
                expr::Gt(expr::Col("x"), expr::Lit(0.0)));
  auto out = Collect(filter);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsInternal());
  EXPECT_NE(out.status().message().find("sensor link dropped"),
            std::string::npos);
}

TEST(FailureInjectionTest, ScanFailurePropagatesThroughProject) {
  std::vector<ProjectionItem> items;
  items.push_back({"y", expr::Mul(expr::Col("x"), expr::Lit(2.0))});
  auto project = Project::Make(FailingSource(2), std::move(items));
  ASSERT_TRUE(project.ok());
  EXPECT_TRUE(Collect(**project).status().IsInternal());
}

TEST(FailureInjectionTest, ScanFailurePropagatesThroughWindowAndSort) {
  auto agg = WindowAggregate::Make(FailingSource(5), "x", "avg",
                                   {.window_size = 2});
  ASSERT_TRUE(agg.ok());
  auto sort = Sort::Make(std::move(*agg), "avg");
  ASSERT_TRUE(sort.ok());
  EXPECT_TRUE(Collect(**sort).status().IsInternal());
}

TEST(FailureInjectionTest, LimitShortCircuitsBeforeFailure) {
  // The failure lies beyond the limit: Limit must stop pulling first.
  Limit limit(FailingSource(3), 3);
  auto out = Collect(limit);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 3u);
}

TEST(FailureInjectionTest, EvaluationErrorSurfacesFromProject) {
  // Division by a zero literal is an evaluation-time error.
  Schema s;
  ASSERT_TRUE(s.AddField({"d", FieldType::kDouble}).ok());
  std::vector<Tuple> tuples = {Tuple({expr::Value(1.0)})};
  auto scan = std::make_unique<VectorScan>(s, tuples);
  std::vector<ProjectionItem> items;
  items.push_back({"bad", expr::Div(expr::Col("d"), expr::Lit(0.0))});
  auto project = Project::Make(std::move(scan), std::move(items));
  ASSERT_TRUE(project.ok());
  EXPECT_TRUE(Collect(**project).status().IsInvalidArgument());
}

TEST(FailureInjectionTest, TypeErrorSurfacesFromFilter) {
  Schema s;
  ASSERT_TRUE(s.AddField({"name", FieldType::kString}).ok());
  std::vector<Tuple> tuples = {
      Tuple({expr::Value(std::string("a"))})};
  auto scan = std::make_unique<VectorScan>(s, tuples);
  // Arithmetic over a string column.
  Filter filter(std::move(scan),
                expr::Gt(expr::Add(expr::Col("name"), expr::Lit(1.0)),
                         expr::Lit(0.0)));
  EXPECT_FALSE(Collect(filter).ok());
}

TEST(FailureInjectionTest, MissingColumnSurfacesFromFilter) {
  std::vector<Tuple> tuples = {XTuple(1.0)};
  auto scan = std::make_unique<VectorScan>(XSchema(), tuples);
  Filter filter(std::move(scan),
                expr::Gt(expr::Col("missing"), expr::Lit(0.0)));
  EXPECT_TRUE(Collect(filter).status().IsNotFound());
}

TEST(FailureInjectionTest, AnnotatorRejectsTinySamples) {
  // A random variable with n = 1 cannot get analytical accuracy.
  Schema s = XSchema();
  std::vector<Tuple> tuples = {Tuple({expr::Value(RandomVar(
      std::make_shared<dist::GaussianDist>(1.0, 1.0), 1))})};
  auto scan = std::make_unique<VectorScan>(s, tuples);
  AccuracyAnnotator annotator(std::move(scan));
  EXPECT_TRUE(Collect(annotator).status().IsInsufficientData());
}

// A (key, x) source producing `good` tuples round-robin over `keys`
// keys, then failing.
OperatorPtr FailingKeyedSource(size_t good, size_t keys) {
  Schema s;
  EXPECT_TRUE(s.AddField({"key", FieldType::kString}).ok());
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  auto produced = std::make_shared<size_t>(0);
  return std::make_unique<StreamScan>(
      s, [produced, good, keys]() -> Result<std::optional<Tuple>> {
        if (*produced >= good) {
          return Status::Internal("gateway feed dropped");
        }
        const size_t i = (*produced)++;
        return std::optional<Tuple>(Tuple({
            expr::Value("k" + std::to_string(i % keys)),
            expr::Value(RandomVar(
                std::make_shared<dist::GaussianDist>(1.0, 1.0), 10)),
        }));
      });
}

TEST(FailureInjectionTest, ScanFailurePropagatesThroughPartitionedWindow) {
  auto agg = PartitionedWindowAggregate::Make(FailingKeyedSource(10, 2),
                                              "key", "x", "avg",
                                              {.window_size = 3});
  ASSERT_TRUE(agg.ok());
  auto out = Collect(**agg);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsInternal());
  EXPECT_NE(out.status().message().find("gateway feed dropped"),
            std::string::npos);
}

TEST(FailureInjectionTest, UnionAllPropagatesFromAnyBranch) {
  // The failing branch is second: the first drains cleanly, then the
  // union must surface the second branch's Status unchanged.
  std::vector<Tuple> clean = {XTuple(1.0), XTuple(2.0)};
  std::vector<OperatorPtr> children;
  children.push_back(
      std::make_unique<VectorScan>(XSchema(), std::move(clean)));
  children.push_back(FailingSource(1));
  auto u = UnionAll::Make(std::move(children));
  ASSERT_TRUE(u.ok());
  auto out = Collect(**u);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsInternal());
  EXPECT_NE(out.status().message().find("sensor link dropped"),
            std::string::npos);
}

TEST(FailureInjectionTest, ScanFailurePropagatesThroughTimeWindow) {
  Schema s;
  ASSERT_TRUE(s.AddField({"ts", FieldType::kDouble}).ok());
  ASSERT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  auto produced = std::make_shared<size_t>(0);
  auto source = std::make_unique<StreamScan>(
      s, [produced]() -> Result<std::optional<Tuple>> {
        if (*produced >= 4) {
          return Status::Internal("clock source lost");
        }
        const double ts = static_cast<double>((*produced)++);
        return std::optional<Tuple>(Tuple({
            expr::Value(ts),
            expr::Value(RandomVar(
                std::make_shared<dist::GaussianDist>(2.0, 1.0), 10)),
        }));
      });
  auto agg = TimeWindowAggregate::Make(std::move(source), "ts", "x",
                                       "avg", {.duration = 2.0});
  ASSERT_TRUE(agg.ok());
  auto out = Collect(**agg);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsInternal());
  EXPECT_NE(out.status().message().find("clock source lost"),
            std::string::npos);
}

TEST(FailureInjectionTest, ClosedWindowsEmitThenFailureStopsCleanly) {
  // Tumbling windows of 2 over 5 good tuples: two windows close (and
  // must be retrievable), but the third is open when the source dies —
  // the failure must surface rather than the partial window being
  // silently emitted as complete.
  auto agg = WindowAggregate::Make(
      FailingSource(5), "x", "avg",
      {.window_size = 2, .kind = WindowKind::kTumbling});
  ASSERT_TRUE(agg.ok());

  auto first = (*agg)->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  auto second = (*agg)->Next();
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->has_value());

  // The fifth tuple opens a third window; the source then fails before
  // it can close. No tuple may be emitted for it.
  auto third = (*agg)->Next();
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsInternal());

  // Collecting from scratch over the same shape sees exactly the two
  // closed windows before the error.
  auto whole = WindowAggregate::Make(
      FailingSource(5), "x", "avg",
      {.window_size = 2, .kind = WindowKind::kTumbling});
  ASSERT_TRUE(whole.ok());
  auto limited = CollectLimit(**whole, 2);
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  EXPECT_EQ(limited->size(), 2u);
  EXPECT_FALSE(Collect(**whole).ok());
}

TEST(FailureInjectionTest, ResetRestoresAfterPartialConsumption) {
  std::vector<Tuple> tuples = {XTuple(1.0), XTuple(2.0), XTuple(3.0)};
  auto scan = std::make_unique<VectorScan>(XSchema(), tuples);
  Filter filter(std::move(scan),
                expr::Gt(expr::Col("x"), expr::Lit(-100.0)));
  auto first = filter.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  ASSERT_TRUE(filter.Reset().ok());
  auto all = Collect(filter);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

}  // namespace
}  // namespace engine
}  // namespace ausdb
