// Failure-injection tests: errors raised mid-stream must propagate
// cleanly (as Status, never crashes or silent truncation) through every
// operator layer.

#include <vector>

#include <gtest/gtest.h>

#include "src/dist/gaussian.h"
#include "src/engine/accuracy_annotator.h"
#include "src/engine/executor.h"
#include "src/engine/filter.h"
#include "src/engine/limit.h"
#include "src/engine/project.h"
#include "src/engine/scan.h"
#include "src/engine/sort.h"
#include "src/engine/window_aggregate.h"

namespace ausdb {
namespace engine {
namespace {

using dist::RandomVar;

Schema XSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  return s;
}

Tuple XTuple(double mean) {
  return Tuple({expr::Value(RandomVar(
      std::make_shared<dist::GaussianDist>(mean, 1.0), 10))});
}

// A source that produces `good` tuples and then fails.
OperatorPtr FailingSource(size_t good) {
  auto produced = std::make_shared<size_t>(0);
  return std::make_unique<StreamScan>(
      XSchema(),
      [produced, good]() -> Result<std::optional<Tuple>> {
        if (*produced >= good) {
          return Status::Internal("sensor link dropped");
        }
        ++*produced;
        return std::optional<Tuple>(XTuple(5.0));
      });
}

TEST(FailureInjectionTest, ScanFailurePropagatesThroughFilter) {
  Filter filter(FailingSource(3),
                expr::Gt(expr::Col("x"), expr::Lit(0.0)));
  auto out = Collect(filter);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsInternal());
  EXPECT_NE(out.status().message().find("sensor link dropped"),
            std::string::npos);
}

TEST(FailureInjectionTest, ScanFailurePropagatesThroughProject) {
  std::vector<ProjectionItem> items;
  items.push_back({"y", expr::Mul(expr::Col("x"), expr::Lit(2.0))});
  auto project = Project::Make(FailingSource(2), std::move(items));
  ASSERT_TRUE(project.ok());
  EXPECT_TRUE(Collect(**project).status().IsInternal());
}

TEST(FailureInjectionTest, ScanFailurePropagatesThroughWindowAndSort) {
  auto agg = WindowAggregate::Make(FailingSource(5), "x", "avg",
                                   {.window_size = 2});
  ASSERT_TRUE(agg.ok());
  auto sort = Sort::Make(std::move(*agg), "avg");
  ASSERT_TRUE(sort.ok());
  EXPECT_TRUE(Collect(**sort).status().IsInternal());
}

TEST(FailureInjectionTest, LimitShortCircuitsBeforeFailure) {
  // The failure lies beyond the limit: Limit must stop pulling first.
  Limit limit(FailingSource(3), 3);
  auto out = Collect(limit);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 3u);
}

TEST(FailureInjectionTest, EvaluationErrorSurfacesFromProject) {
  // Division by a zero literal is an evaluation-time error.
  Schema s;
  ASSERT_TRUE(s.AddField({"d", FieldType::kDouble}).ok());
  std::vector<Tuple> tuples = {Tuple({expr::Value(1.0)})};
  auto scan = std::make_unique<VectorScan>(s, tuples);
  std::vector<ProjectionItem> items;
  items.push_back({"bad", expr::Div(expr::Col("d"), expr::Lit(0.0))});
  auto project = Project::Make(std::move(scan), std::move(items));
  ASSERT_TRUE(project.ok());
  EXPECT_TRUE(Collect(**project).status().IsInvalidArgument());
}

TEST(FailureInjectionTest, TypeErrorSurfacesFromFilter) {
  Schema s;
  ASSERT_TRUE(s.AddField({"name", FieldType::kString}).ok());
  std::vector<Tuple> tuples = {
      Tuple({expr::Value(std::string("a"))})};
  auto scan = std::make_unique<VectorScan>(s, tuples);
  // Arithmetic over a string column.
  Filter filter(std::move(scan),
                expr::Gt(expr::Add(expr::Col("name"), expr::Lit(1.0)),
                         expr::Lit(0.0)));
  EXPECT_FALSE(Collect(filter).ok());
}

TEST(FailureInjectionTest, MissingColumnSurfacesFromFilter) {
  std::vector<Tuple> tuples = {XTuple(1.0)};
  auto scan = std::make_unique<VectorScan>(XSchema(), tuples);
  Filter filter(std::move(scan),
                expr::Gt(expr::Col("missing"), expr::Lit(0.0)));
  EXPECT_TRUE(Collect(filter).status().IsNotFound());
}

TEST(FailureInjectionTest, AnnotatorRejectsTinySamples) {
  // A random variable with n = 1 cannot get analytical accuracy.
  Schema s = XSchema();
  std::vector<Tuple> tuples = {Tuple({expr::Value(RandomVar(
      std::make_shared<dist::GaussianDist>(1.0, 1.0), 1))})};
  auto scan = std::make_unique<VectorScan>(s, tuples);
  AccuracyAnnotator annotator(std::move(scan));
  EXPECT_TRUE(Collect(annotator).status().IsInsufficientData());
}

TEST(FailureInjectionTest, ResetRestoresAfterPartialConsumption) {
  std::vector<Tuple> tuples = {XTuple(1.0), XTuple(2.0), XTuple(3.0)};
  auto scan = std::make_unique<VectorScan>(XSchema(), tuples);
  Filter filter(std::move(scan),
                expr::Gt(expr::Col("x"), expr::Lit(-100.0)));
  auto first = filter.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  ASSERT_TRUE(filter.Reset().ok());
  auto all = Collect(filter);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

}  // namespace
}  // namespace engine
}  // namespace ausdb
