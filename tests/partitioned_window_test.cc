#include "src/engine/partitioned_window.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/dist/gaussian.h"
#include "src/dist/learner.h"
#include "src/engine/executor.h"
#include "src/engine/scan.h"
#include "src/query/parser.h"
#include "src/query/planner.h"

namespace ausdb {
namespace engine {
namespace {

using dist::RandomVar;

Schema KeyedSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"road", FieldType::kString}).ok());
  EXPECT_TRUE(s.AddField({"delay", FieldType::kUncertain}).ok());
  return s;
}

Tuple KeyedTuple(const std::string& key, double mean, double var,
                 size_t n) {
  return Tuple({expr::Value(key),
                expr::Value(RandomVar(
                    std::make_shared<dist::GaussianDist>(mean, var), n))});
}

TEST(PartitionedWindowTest, PerKeyWindows) {
  // Interleaved keys; window size 2 per key.
  std::vector<Tuple> tuples = {
      KeyedTuple("a", 10, 1, 20), KeyedTuple("b", 100, 4, 30),
      KeyedTuple("a", 20, 1, 10), KeyedTuple("b", 200, 4, 40),
      KeyedTuple("a", 30, 1, 50),
  };
  auto scan = std::make_unique<VectorScan>(KeyedSchema(), tuples);
  auto agg = PartitionedWindowAggregate::Make(std::move(scan), "road",
                                              "delay", "avg_delay",
                                              {.window_size = 2});
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok());
  // Emissions: a@20 (10,20), b@200 (100,200), a@30 (20,30).
  ASSERT_EQ(out->size(), 3u);

  EXPECT_EQ(*(*out)[0].value(0).string_value(), "a");
  EXPECT_DOUBLE_EQ((*out)[0].value(1).random_var()->Mean(), 15.0);
  EXPECT_EQ((*out)[0].value(1).random_var()->sample_size(), 10u);

  EXPECT_EQ(*(*out)[1].value(0).string_value(), "b");
  EXPECT_DOUBLE_EQ((*out)[1].value(1).random_var()->Mean(), 150.0);
  EXPECT_EQ((*out)[1].value(1).random_var()->sample_size(), 30u);

  EXPECT_EQ(*(*out)[2].value(0).string_value(), "a");
  EXPECT_DOUBLE_EQ((*out)[2].value(1).random_var()->Mean(), 25.0);
  EXPECT_EQ((*out)[2].value(1).random_var()->sample_size(), 10u);

  EXPECT_EQ((*agg)->partition_count(), 2u);
}

TEST(PartitionedWindowTest, TumblingResetsPerKey) {
  std::vector<Tuple> tuples = {
      KeyedTuple("a", 10, 0, 5), KeyedTuple("a", 20, 0, 5),
      KeyedTuple("a", 30, 0, 5), KeyedTuple("a", 40, 0, 5),
  };
  auto scan = std::make_unique<VectorScan>(KeyedSchema(), tuples);
  WindowAggregateOptions opts;
  opts.window_size = 2;
  opts.kind = WindowKind::kTumbling;
  auto agg = PartitionedWindowAggregate::Make(std::move(scan), "road",
                                              "delay", "avg", opts);
  ASSERT_TRUE(agg.ok());
  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);  // (10,20) and (30,40)
  EXPECT_DOUBLE_EQ((*out)[0].value(1).random_var()->Mean(), 15.0);
  EXPECT_DOUBLE_EQ((*out)[1].value(1).random_var()->Mean(), 35.0);
}

TEST(PartitionedWindowTest, RejectsBadColumns) {
  auto scan = std::make_unique<VectorScan>(KeyedSchema(),
                                           std::vector<Tuple>{});
  EXPECT_TRUE(PartitionedWindowAggregate::Make(std::move(scan), "delay",
                                               "delay", "o", {})
                  .status()
                  .IsTypeError());  // uncertain key
  auto scan2 = std::make_unique<VectorScan>(KeyedSchema(),
                                            std::vector<Tuple>{});
  EXPECT_TRUE(PartitionedWindowAggregate::Make(std::move(scan2), "road",
                                               "road", "o", {})
                  .status()
                  .IsTypeError());  // string aggregate
}

TEST(WindowKindTest, TumblingUnpartitioned) {
  Schema s;
  ASSERT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  std::vector<Tuple> tuples;
  for (int i = 1; i <= 6; ++i) {
    tuples.emplace_back(std::vector<expr::Value>{expr::Value(RandomVar(
        std::make_shared<dist::GaussianDist>(i * 10.0, 0.0), 5))});
  }
  auto scan = std::make_unique<VectorScan>(s, tuples);
  WindowAggregateOptions opts;
  opts.window_size = 3;
  opts.kind = WindowKind::kTumbling;
  auto agg = WindowAggregate::Make(std::move(scan), "x", "avg", opts);
  ASSERT_TRUE(agg.ok());
  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_DOUBLE_EQ((*out)[0].value(0).random_var()->Mean(), 20.0);
  EXPECT_DOUBLE_EQ((*out)[1].value(0).random_var()->Mean(), 50.0);
}

TEST(WindowCltTest, HistogramInputsViaClt) {
  Schema s;
  ASSERT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  auto learned = dist::LearnHistogram(
      std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8}, {});
  ASSERT_TRUE(learned.ok());
  std::vector<Tuple> tuples(
      4, Tuple({expr::Value(RandomVar(*learned))}));
  auto scan = std::make_unique<VectorScan>(s, tuples);
  WindowAggregateOptions opts;
  opts.window_size = 4;
  opts.allow_clt_approximation = true;
  auto agg = WindowAggregate::Make(std::move(scan), "x", "avg", opts);
  ASSERT_TRUE(agg.ok());
  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  const RandomVar rv = *(*out)[0].value(0).random_var();
  EXPECT_EQ(rv.distribution()->kind(), dist::DistributionKind::kGaussian);
  EXPECT_NEAR(rv.Mean(), learned->distribution->Mean(), 1e-9);
  EXPECT_NEAR(rv.Variance(), learned->distribution->Variance() / 4.0,
              1e-9);
}

TEST(GroupByQueryTest, EndToEndSql) {
  std::vector<Tuple> tuples = {
      KeyedTuple("r19", 50, 4, 3),  KeyedTuple("r20", 60, 4, 50),
      KeyedTuple("r19", 54, 4, 5),  KeyedTuple("r20", 62, 4, 50),
      KeyedTuple("r19", 58, 4, 4),  KeyedTuple("r20", 64, 4, 50),
  };
  auto scan = std::make_unique<VectorScan>(KeyedSchema(), tuples);
  auto plan = query::PlanQuery(
      "SELECT AVG(delay) OVER (ROWS 2) FROM roads GROUP BY road "
      "WITH ACCURACY ANALYTICAL CONFIDENCE 0.9",
      std::move(scan));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto out = engine::Collect(**plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 4u);  // two emissions per key
  // First emission for r19 averages (50, 54) with df = min(3,5) = 3.
  EXPECT_EQ(*(*out)[0].value(0).string_value(), "r19");
  EXPECT_DOUBLE_EQ((*out)[0].value(1).random_var()->Mean(), 52.0);
  EXPECT_EQ((*out)[0].value(1).random_var()->sample_size(), 3u);
  // Accuracy annotation covers the uncertain column.
  ASSERT_TRUE((*out)[0].accuracy()[1].has_value());
}

TEST(GroupByQueryTest, ParserRendersGroupByAndTumble) {
  auto q = query::Parse(
      "SELECT SUM(delay) OVER (ROWS 10 TUMBLE) FROM s GROUP BY road");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->group_by, "road");
  EXPECT_EQ(q->window_agg->kind, engine::WindowKind::kTumbling);
  auto q2 = query::Parse(q->ToString());
  ASSERT_TRUE(q2.ok()) << "rendered: " << q->ToString();
  EXPECT_EQ(q->ToString(), q2->ToString());
}

TEST(GroupByQueryTest, GroupByWithoutWindowRejected) {
  auto scan = std::make_unique<VectorScan>(KeyedSchema(),
                                           std::vector<Tuple>{});
  auto plan = query::PlanQuery("SELECT road FROM s GROUP BY road",
                               std::move(scan));
  EXPECT_TRUE(plan.status().IsNotImplemented());
}

}  // namespace
}  // namespace engine
}  // namespace ausdb
