// Async prefetching source layer: the bounded ring buffer, producer
// thread lifecycle (shutdown, Close, destructor — all watchdogged so a
// deadlock fails fast instead of hanging the suite), prefetch
// statistics, and the fault-injection equivalence contract: a
// SupervisedScan in front of a prefetching source must retry,
// quarantine and account EXACTLY like the synchronous path.

#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/bounded_queue.h"
#include "src/common/fault_injector.h"
#include "src/obs/metrics.h"
#include "src/dist/gaussian.h"
#include "src/engine/executor.h"
#include "src/engine/scan.h"
#include "src/serde/checkpoint.h"
#include "src/stream/async_prefetch_source.h"
#include "src/stream/replayable_source.h"
#include "src/stream/supervised_source.h"

namespace ausdb {
namespace stream {
namespace {

using engine::FieldType;
using engine::Operator;
using engine::OperatorPtr;
using engine::Schema;
using engine::StreamScan;
using engine::Tuple;
using engine::VectorScan;

// Runs `fn` on a helper thread and fails the test if it has not
// finished within 5 seconds — a deadlocked shutdown path becomes a
// clean failure instead of a ctest timeout. (On failure the stuck
// thread is abandoned; the suite is failing anyway.)
template <typename Fn>
void RunWithWatchdog(const char* what, Fn fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> done = task.get_future();
  std::thread runner(std::move(task));
  if (done.wait_for(std::chrono::seconds(5)) ==
      std::future_status::ready) {
    runner.join();
    done.get();
    return;
  }
  runner.detach();
  FAIL() << what << ": watchdog fired after 5s (deadlock)";
}

// ---------------------------------------------------------------------
// BoundedQueue

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.Push(i).ok());
  EXPECT_EQ(q.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    int v = -1;
    ASSERT_TRUE(q.Pop(&v).ok());
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, TryPushReportsBackpressure) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.TryPush(1).ok());
  ASSERT_TRUE(q.TryPush(2).ok());
  const Status full = q.TryPush(3);
  EXPECT_TRUE(full.IsBackpressure()) << full.ToString();
  int v = 0;
  ASSERT_TRUE(q.Pop(&v).ok());
  EXPECT_TRUE(q.TryPush(3).ok());
}

TEST(BoundedQueueTest, CloseDrainsThenReportsCancelled) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(7).ok());
  ASSERT_TRUE(q.Push(8).ok());
  q.Close();
  EXPECT_TRUE(q.Push(9).IsInvalidArgument());
  int v = 0;
  ASSERT_TRUE(q.Pop(&v).ok());
  EXPECT_EQ(v, 7);
  ASSERT_TRUE(q.Pop(&v).ok());
  EXPECT_EQ(v, 8);
  EXPECT_TRUE(q.Pop(&v).IsCancelled());
}

TEST(BoundedQueueTest, CancelUnblocksBlockedProducer) {
  RunWithWatchdog("cancel unblocks producer", [] {
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.Push(1).ok());
    std::thread producer([&q] {
      const Status st = q.Push(2);  // blocks: queue is full
      EXPECT_TRUE(st.IsCancelled()) << st.ToString();
    });
    // Give the producer time to block, then cancel from the consumer.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Cancel();
    producer.join();
    EXPECT_GE(q.push_waits(), 1u);
  });
}

TEST(BoundedQueueTest, CancelUnblocksBlockedConsumer) {
  RunWithWatchdog("cancel unblocks consumer", [] {
    BoundedQueue<int> q(1);
    std::thread consumer([&q] {
      int v = 0;
      const Status st = q.Pop(&v);  // blocks: queue is empty
      EXPECT_TRUE(st.IsCancelled()) << st.ToString();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Cancel();
    consumer.join();
    EXPECT_GE(q.pop_waits(), 1u);
  });
}

TEST(BoundedQueueTest, TryPushOnClosedAndCancelledRings) {
  // A closed ring refuses TryPush the same way it refuses Push — the
  // stream has ended, backpressure is not the reason.
  BoundedQueue<int> closed(2);
  closed.Close();
  EXPECT_TRUE(closed.TryPush(1).IsInvalidArgument());
  EXPECT_EQ(closed.try_push_rejections(), 0u)
      << "a closed ring is not a backpressure event";

  // A cancelled ring fails fast with kCancelled, even when full.
  BoundedQueue<int> cancelled(1);
  ASSERT_TRUE(cancelled.TryPush(1).ok());
  cancelled.Cancel();
  EXPECT_TRUE(cancelled.TryPush(2).IsCancelled());
  EXPECT_EQ(cancelled.try_push_rejections(), 0u);
}

TEST(BoundedQueueTest, TryPushRejectionCountAndMetricsMirror) {
  obs::MetricRegistry registry;
  obs::Gauge* depth = registry.GetGauge("q_depth");
  obs::Counter* rejections = registry.GetCounter("q_try_rejections");
  BoundedQueue<int> q(2);
  q.BindMetrics(depth, nullptr, nullptr, rejections);
  ASSERT_TRUE(q.TryPush(1).ok());
  ASSERT_TRUE(q.TryPush(2).ok());
  EXPECT_TRUE(q.TryPush(3).IsBackpressure());
  EXPECT_TRUE(q.TryPush(4).IsBackpressure());
  EXPECT_EQ(q.try_push_rejections(), 2u);
  EXPECT_EQ(rejections->Value(), 2u)
      << "the shed signal must be visible to the governor's obs reader";
  EXPECT_EQ(depth->Value(), 2);
  int v = 0;
  ASSERT_TRUE(q.Pop(&v).ok());
  EXPECT_EQ(depth->Value(), 1);
  // Refusals are non-destructive: the ring still carries exactly what
  // was accepted, in order.
  EXPECT_TRUE(q.TryPush(5).ok());
  ASSERT_TRUE(q.Pop(&v).ok());
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(q.Pop(&v).ok());
  EXPECT_EQ(v, 5);
}

TEST(BoundedQueueTest, TryPushInterleavedWithBlockingPush) {
  RunWithWatchdog("trypush vs blocked push", [] {
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.Push(1).ok());  // ring now full
    std::thread producer([&q] {
      EXPECT_TRUE(q.Push(2).ok());  // blocks until the consumer drains
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // The non-blocking producer is refused while the blocking one
    // waits — TryPush must not jump the queue or wedge the waiter.
    EXPECT_TRUE(q.TryPush(99).IsBackpressure());
    EXPECT_GE(q.try_push_rejections(), 1u);
    int v = 0;
    ASSERT_TRUE(q.Pop(&v).ok());
    EXPECT_EQ(v, 1);
    producer.join();  // the blocked Push completed after the drain
    ASSERT_TRUE(q.Pop(&v).ok());
    EXPECT_EQ(v, 2) << "the blocked producer's item, not the refused one";
    EXPECT_EQ(q.size(), 0u);
  });
}

// ---------------------------------------------------------------------
// Test sources

Schema KeyValueSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"key", FieldType::kString}).ok());
  EXPECT_TRUE(s.AddField({"value", FieldType::kUncertain}).ok());
  return s;
}

Tuple DeterministicTuple(size_t i) {
  const double mean = static_cast<double>(i);
  const double variance = 1.0 + static_cast<double>(i % 3);
  return Tuple({expr::Value("k" + std::to_string(i % 4)),
                expr::Value(dist::RandomVar(
                    std::make_shared<dist::GaussianDist>(mean, variance),
                    10))});
}

// Bounded source of `count` deterministic tuples; an optional per-tuple
// stall models source I/O latency (timing only — the tuples are a pure
// function of the index).
OperatorPtr MakeCountingSource(size_t count,
                               std::chrono::microseconds stall =
                                   std::chrono::microseconds(0)) {
  auto produced = std::make_shared<size_t>(0);
  return std::make_unique<StreamScan>(
      KeyValueSchema(),
      [produced, count, stall]() -> Result<std::optional<Tuple>> {
        if (*produced >= count) return std::optional<Tuple>(std::nullopt);
        if (stall.count() > 0) std::this_thread::sleep_for(stall);
        return std::optional<Tuple>(DeterministicTuple((*produced)++));
      });
}

// Unbounded variant for lifecycle tests.
OperatorPtr MakeInfiniteSource(std::chrono::microseconds stall =
                                   std::chrono::microseconds(0)) {
  auto produced = std::make_shared<size_t>(0);
  return std::make_unique<StreamScan>(
      KeyValueSchema(), [produced, stall]() -> Result<std::optional<Tuple>> {
        if (stall.count() > 0) std::this_thread::sleep_for(stall);
        return std::optional<Tuple>(DeterministicTuple((*produced)++));
      });
}

// Bit-exact fingerprint of a key/uncertain tuple.
std::string Fingerprint(const Tuple& t) {
  serde::CheckpointWriter w;
  w.Bytes(*t.value(0).string_value());
  auto rv = t.value(1).random_var();
  EXPECT_TRUE(rv.ok());
  w.Double(rv->Mean());
  w.Double(rv->Variance());
  w.Uint(rv->sample_size());
  w.Uint(t.sequence());
  return std::move(w).Finish();
}

// ---------------------------------------------------------------------
// Prefetch semantics

TEST(AsyncPrefetchSourceTest, DeliversIdenticalStreamAtEveryDepth) {
  std::vector<std::string> golden;
  {
    auto sync = MakeCountingSource(100);
    auto rows = engine::Collect(*sync);
    ASSERT_TRUE(rows.ok());
    for (const auto& t : *rows) golden.push_back(Fingerprint(t));
  }
  ASSERT_EQ(golden.size(), 100u);

  for (size_t depth : {1u, 2u, 7u, 64u, 1024u}) {
    AsyncPrefetchOptions opts;
    opts.queue_depth = depth;
    AsyncPrefetchSource source(MakeCountingSource(100), opts);
    auto rows = engine::Collect(source);
    ASSERT_TRUE(rows.ok()) << "depth " << depth;
    ASSERT_EQ(rows->size(), golden.size()) << "depth " << depth;
    for (size_t i = 0; i < golden.size(); ++i) {
      ASSERT_EQ(Fingerprint((*rows)[i]), golden[i])
          << "depth " << depth << " tuple " << i;
    }
    const PrefetchStats stats = source.stats();
    EXPECT_EQ(stats.produced, 100u);
    EXPECT_EQ(stats.delivered, 100u);
  }
}

TEST(AsyncPrefetchSourceTest, EndOfStreamIsSticky) {
  AsyncPrefetchSource source(MakeCountingSource(3));
  auto rows = engine::Collect(source);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
  for (int i = 0; i < 3; ++i) {
    auto t = source.Next();
    ASSERT_TRUE(t.ok());
    EXPECT_FALSE(t->has_value());
  }
}

TEST(AsyncPrefetchSourceTest, ResetReplaysIdentically) {
  // A VectorScan supports Reset; the wrapper must stop the producer,
  // reset the child and replay the identical stream.
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < 40; ++i) tuples.push_back(DeterministicTuple(i));
  AsyncPrefetchOptions opts;
  opts.queue_depth = 8;
  AsyncPrefetchSource source(
      std::make_unique<VectorScan>(KeyValueSchema(), tuples), opts);

  auto first = engine::Collect(source);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 40u);
  ASSERT_TRUE(source.Reset().ok());
  auto second = engine::Collect(source);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), 40u);
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(Fingerprint((*second)[i]), Fingerprint((*first)[i]));
  }
  EXPECT_EQ(source.stats().starts, 2u);
}

TEST(AsyncPrefetchSourceTest, MidStreamResetDiscardsRingAndReplays) {
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < 40; ++i) tuples.push_back(DeterministicTuple(i));
  // Synchronous golden run (VectorScan stamps delivery sequence
  // numbers, so compare against a delivered stream, not raw tuples).
  VectorScan sync(KeyValueSchema(), tuples);
  auto golden = engine::Collect(sync);
  ASSERT_TRUE(golden.ok());
  ASSERT_EQ(golden->size(), 40u);

  AsyncPrefetchSource source(
      std::make_unique<VectorScan>(KeyValueSchema(), tuples),
      AsyncPrefetchOptions{.queue_depth = 8});
  // Pull a prefix, then Reset with the ring (partially) full.
  for (int i = 0; i < 5; ++i) {
    auto t = source.Next();
    ASSERT_TRUE(t.ok() && t->has_value());
  }
  ASSERT_TRUE(source.Reset().ok());
  auto rows = engine::Collect(source);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 40u);
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(Fingerprint((*rows)[i]), Fingerprint((*golden)[i]));
  }
}

// ---------------------------------------------------------------------
// Lifecycle / shutdown

TEST(AsyncPrefetchLifecycleTest, DestructorWithoutAnyPull) {
  RunWithWatchdog("destruct unstarted", [] {
    AsyncPrefetchSource source(MakeInfiniteSource());
    EXPECT_EQ(source.stats().starts, 0u);
  });
}

TEST(AsyncPrefetchLifecycleTest, DestructorJoinsActiveProducer) {
  RunWithWatchdog("destruct active", [] {
    AsyncPrefetchSource source(
        MakeInfiniteSource(std::chrono::microseconds(200)));
    for (int i = 0; i < 3; ++i) {
      auto t = source.Next();
      ASSERT_TRUE(t.ok() && t->has_value());
    }
    // Destructor runs with the producer mid-pull.
  });
}

TEST(AsyncPrefetchLifecycleTest, DestructorJoinsProducerBlockedOnFullRing) {
  RunWithWatchdog("destruct blocked producer", [] {
    AsyncPrefetchOptions opts;
    opts.queue_depth = 2;
    AsyncPrefetchSource source(MakeInfiniteSource(), opts);
    auto t = source.Next();
    ASSERT_TRUE(t.ok() && t->has_value());
    // Let the fast producer fill the tiny ring and block on it.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // Destructor must unblock and join it.
  });
}

TEST(AsyncPrefetchLifecycleTest, CloseIsIdempotentAndTerminal) {
  RunWithWatchdog("close", [] {
    AsyncPrefetchSource source(MakeInfiniteSource(), {});
    auto t = source.Next();
    ASSERT_TRUE(t.ok() && t->has_value());
    EXPECT_TRUE(source.Close().ok());
    EXPECT_TRUE(source.Close().ok());  // idempotent
    EXPECT_TRUE(source.Next().status().IsCancelled());
    EXPECT_TRUE(source.Reset().IsCancelled());
  });
}

TEST(AsyncPrefetchLifecycleTest, CloseDuringActivePrefetchJoins) {
  RunWithWatchdog("close active", [] {
    AsyncPrefetchOptions opts;
    opts.queue_depth = 4;
    AsyncPrefetchSource source(
        MakeInfiniteSource(std::chrono::microseconds(100)), opts);
    for (int i = 0; i < 2; ++i) {
      auto t = source.Next();
      ASSERT_TRUE(t.ok() && t->has_value());
    }
    EXPECT_TRUE(source.Close().ok());
  });
}

TEST(AsyncPrefetchLifecycleTest, CloseOnReplayableWrapper) {
  RunWithWatchdog("close replayable", [] {
    KeyedGaussianSourceOptions kopts;
    kopts.count = 100000;  // big enough to still be mid-stream
    auto child = ReplayableKeyedGaussianSource::Make(kopts);
    ASSERT_TRUE(child.ok());
    AsyncPrefetchReplayableSource source(std::move(*child), {});
    for (int i = 0; i < 10; ++i) {
      auto t = source.Next();
      ASSERT_TRUE(t.ok() && t->has_value());
    }
    EXPECT_EQ(source.position(), 10u);
    EXPECT_TRUE(source.Close().ok());
    EXPECT_TRUE(source.Next().status().IsCancelled());
    EXPECT_TRUE(source.SeekTo(0).IsCancelled());
  });
}

// ---------------------------------------------------------------------
// Prefetch statistics

TEST(AsyncPrefetchStatsTest, SourceBoundPipelineWaitsOnPop) {
  // Slow producer, eager consumer: the consumer must have waited for
  // the ring at least once.
  AsyncPrefetchSource source(
      MakeCountingSource(10, std::chrono::microseconds(2000)));
  auto rows = engine::Collect(source);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
  EXPECT_GE(source.stats().pop_waits, 1u);
}

TEST(AsyncPrefetchStatsTest, ConsumerBoundPipelineWaitsOnPush) {
  // Fast producer, tiny ring, slow consumer: the producer must have hit
  // backpressure.
  AsyncPrefetchOptions opts;
  opts.queue_depth = 1;
  AsyncPrefetchSource source(MakeCountingSource(20), opts);
  for (int i = 0; i < 20; ++i) {
    auto t = source.Next();
    ASSERT_TRUE(t.ok() && t->has_value());
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  EXPECT_GE(source.stats().push_waits, 1u);
}

// ---------------------------------------------------------------------
// Fault-injection equivalence: SupervisedScan over a prefetching source
// must behave EXACTLY like SupervisedScan over the raw source.

struct FaultyRunResult {
  std::vector<std::string> outputs;
  Status final_status;
  SupervisionCounters counters;
  double backoff_seconds = 0.0;
};

// Source whose generator injects transient faults from a seeded
// schedule, emits an invalid (NaN-mean) tuple every 7th index and a
// zero-sample tuple every 11th, and stalls briefly every 13th — the
// full menu a supervised pipeline has to survive, deterministic by call
// count.
OperatorPtr MakeFaultySource(size_t count, FaultSpec spec) {
  auto injector = std::make_shared<FaultInjector>(spec, /*seed=*/99);
  auto produced = std::make_shared<size_t>(0);
  return std::make_unique<StreamScan>(
      KeyValueSchema(),
      [injector, produced, count]() -> Result<std::optional<Tuple>> {
        AUSDB_RETURN_NOT_OK(injector->Tick());
        if (*produced >= count) return std::optional<Tuple>(std::nullopt);
        const size_t i = (*produced)++;
        if (i % 13 == 12) {
          std::this_thread::sleep_for(std::chrono::microseconds(300));
        }
        if (i % 7 == 3) {
          return std::optional<Tuple>(
              Tuple({expr::Value("k" + std::to_string(i % 4)),
                     expr::Value(dist::RandomVar(
                         std::make_shared<dist::GaussianDist>(
                             std::numeric_limits<double>::quiet_NaN(), 1.0),
                         10))}));
        }
        if (i % 11 == 5) {
          return std::optional<Tuple>(
              Tuple({expr::Value("k" + std::to_string(i % 4)),
                     expr::Value(dist::RandomVar(
                         std::make_shared<dist::GaussianDist>(1.0, 1.0),
                         0))}));
        }
        return std::optional<Tuple>(DeterministicTuple(i));
      });
}

FaultyRunResult RunSupervised(OperatorPtr source, bool degrade) {
  SupervisedScanOptions sopts;
  sopts.retry.max_attempts = 4;
  sopts.retry.initial_backoff_seconds = 0.001;
  sopts.retry.jitter_fraction = 0.25;
  sopts.jitter_seed = 0xfeedULL;  // same seed => same backoff schedule
  if (degrade) {
    sopts.degradation = MakeWideGaussianDegradation(0.0, 100.0, 4);
  }
  SupervisedScan scan(std::move(source), sopts);

  FaultyRunResult result;
  for (;;) {
    auto t = scan.Next();
    if (!t.ok()) {
      result.final_status = t.status();
      break;
    }
    if (!t->has_value()) break;
    result.outputs.push_back(Fingerprint(**t));
  }
  result.counters = scan.counters();
  result.backoff_seconds = scan.counters().backoff_seconds;
  return result;
}

void ExpectIdenticalRuns(const FaultyRunResult& sync,
                         const FaultyRunResult& async, size_t depth) {
  EXPECT_EQ(async.final_status.code(), sync.final_status.code())
      << "depth " << depth << ": " << async.final_status.ToString()
      << " vs " << sync.final_status.ToString();
  ASSERT_EQ(async.outputs.size(), sync.outputs.size()) << "depth " << depth;
  for (size_t i = 0; i < sync.outputs.size(); ++i) {
    ASSERT_EQ(async.outputs[i], sync.outputs[i])
        << "depth " << depth << " output " << i;
  }
  EXPECT_EQ(async.counters.emitted, sync.counters.emitted)
      << "depth " << depth;
  EXPECT_EQ(async.counters.degraded, sync.counters.degraded)
      << "depth " << depth;
  EXPECT_EQ(async.counters.quarantined, sync.counters.quarantined)
      << "depth " << depth;
  EXPECT_EQ(async.counters.retries, sync.counters.retries)
      << "depth " << depth;
  EXPECT_EQ(async.counters.gave_up, sync.counters.gave_up)
      << "depth " << depth;
  EXPECT_DOUBLE_EQ(async.backoff_seconds, sync.backoff_seconds)
      << "depth " << depth;
}

TEST(AsyncFaultInjectionTest, TransientFaultsAccountIdentically) {
  FaultSpec spec;
  spec.mode = FaultMode::kEveryKth;
  spec.every_k = 9;  // recoverable: each retry schedule has < 4 failures
  for (bool degrade : {false, true}) {
    const FaultyRunResult sync =
        RunSupervised(MakeFaultySource(150, spec), degrade);
    ASSERT_TRUE(sync.final_status.ok()) << sync.final_status.ToString();
    ASSERT_GT(sync.counters.retries, 0u);
    // With degradation every invalid tuple is repaired instead of
    // quarantined; without it, they all land in quarantine.
    if (degrade) {
      ASSERT_GT(sync.counters.degraded, 0u);
      ASSERT_EQ(sync.counters.quarantined, 0u);
    } else {
      ASSERT_GT(sync.counters.quarantined, 0u);
    }
    for (size_t depth : {1u, 2u, 64u}) {
      AsyncPrefetchOptions opts;
      opts.queue_depth = depth;
      const FaultyRunResult async = RunSupervised(
          std::make_unique<AsyncPrefetchSource>(
              MakeFaultySource(150, spec), opts),
          degrade);
      ExpectIdenticalRuns(sync, async, depth);
    }
  }
}

TEST(AsyncFaultInjectionTest, ProbabilisticFaultsAccountIdentically) {
  FaultSpec spec;
  spec.mode = FaultMode::kProbability;
  spec.probability = 0.08;  // seeded => identical schedule on both paths
  const FaultyRunResult sync =
      RunSupervised(MakeFaultySource(120, spec), /*degrade=*/false);
  for (size_t depth : {1u, 2u, 64u}) {
    AsyncPrefetchOptions opts;
    opts.queue_depth = depth;
    const FaultyRunResult async = RunSupervised(
        std::make_unique<AsyncPrefetchSource>(MakeFaultySource(120, spec),
                                              opts),
        /*degrade=*/false);
    ExpectIdenticalRuns(sync, async, depth);
  }
}

TEST(AsyncFaultInjectionTest, PermanentOutageGivesUpIdentically) {
  // After 40 good pulls the source goes down for good: the supervisor
  // must exhaust its retry budget and surface the same failure at the
  // same output position on both paths.
  FaultSpec spec;
  spec.mode = FaultMode::kAfterN;
  spec.after_n = 40;
  const FaultyRunResult sync =
      RunSupervised(MakeFaultySource(150, spec), /*degrade=*/false);
  ASSERT_FALSE(sync.final_status.ok());
  ASSERT_EQ(sync.counters.gave_up, 1u);
  for (size_t depth : {1u, 2u, 64u}) {
    AsyncPrefetchOptions opts;
    opts.queue_depth = depth;
    const FaultyRunResult async = RunSupervised(
        std::make_unique<AsyncPrefetchSource>(MakeFaultySource(150, spec),
                                              opts),
        /*degrade=*/false);
    ExpectIdenticalRuns(sync, async, depth);
  }
}

TEST(AsyncFaultInjectionTest, FatalFaultPropagatesIdentically) {
  FaultSpec spec;
  spec.mode = FaultMode::kEveryKth;
  spec.every_k = 30;
  spec.code = StatusCode::kParseError;  // fatal: no retry
  const FaultyRunResult sync =
      RunSupervised(MakeFaultySource(100, spec), /*degrade=*/false);
  ASSERT_TRUE(sync.final_status.IsParseError());
  for (size_t depth : {1u, 2u, 64u}) {
    AsyncPrefetchOptions opts;
    opts.queue_depth = depth;
    const FaultyRunResult async = RunSupervised(
        std::make_unique<AsyncPrefetchSource>(MakeFaultySource(100, spec),
                                              opts),
        /*degrade=*/false);
    ExpectIdenticalRuns(sync, async, depth);
    EXPECT_TRUE(async.final_status.IsParseError());
  }
}

}  // namespace
}  // namespace stream
}  // namespace ausdb
