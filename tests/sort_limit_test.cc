#include <vector>

#include <gtest/gtest.h>

#include "src/dist/gaussian.h"
#include "src/engine/executor.h"
#include "src/engine/limit.h"
#include "src/engine/scan.h"
#include "src/engine/sort.h"
#include "src/query/parser.h"
#include "src/query/planner.h"

namespace ausdb {
namespace engine {
namespace {

using dist::RandomVar;

Schema MakeSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"name", FieldType::kString}).ok());
  EXPECT_TRUE(s.AddField({"score", FieldType::kDouble}).ok());
  EXPECT_TRUE(s.AddField({"delay", FieldType::kUncertain}).ok());
  return s;
}

std::vector<Tuple> MakeTuples() {
  auto make = [](const std::string& name, double score, double mean) {
    return Tuple({expr::Value(name), expr::Value(score),
                  expr::Value(RandomVar(
                      std::make_shared<dist::GaussianDist>(mean, 1.0),
                      10))});
  };
  return {make("charlie", 3.0, 30.0), make("alice", 1.0, 50.0),
          make("bob", 2.0, 10.0)};
}

TEST(LimitTest, CapsOutput) {
  auto scan = std::make_unique<VectorScan>(MakeSchema(), MakeTuples());
  Limit limit(std::move(scan), 2);
  auto out = Collect(limit);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  ASSERT_TRUE(limit.Reset().ok());
  EXPECT_EQ(Collect(limit)->size(), 2u);
}

TEST(LimitTest, ZeroAndOversized) {
  auto scan = std::make_unique<VectorScan>(MakeSchema(), MakeTuples());
  Limit zero(std::move(scan), 0);
  EXPECT_TRUE(Collect(zero)->empty());
  auto scan2 = std::make_unique<VectorScan>(MakeSchema(), MakeTuples());
  Limit big(std::move(scan2), 100);
  EXPECT_EQ(Collect(big)->size(), 3u);
}

TEST(SortTest, NumericAscending) {
  auto scan = std::make_unique<VectorScan>(MakeSchema(), MakeTuples());
  auto sort = Sort::Make(std::move(scan), "score");
  ASSERT_TRUE(sort.ok());
  auto out = Collect(**sort);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ(*(*out)[0].value(0).string_value(), "alice");
  EXPECT_EQ(*(*out)[1].value(0).string_value(), "bob");
  EXPECT_EQ(*(*out)[2].value(0).string_value(), "charlie");
}

TEST(SortTest, StringDescending) {
  auto scan = std::make_unique<VectorScan>(MakeSchema(), MakeTuples());
  auto sort =
      Sort::Make(std::move(scan), "name", SortOrder::kDescending);
  ASSERT_TRUE(sort.ok());
  auto out = Collect(**sort);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*(*out)[0].value(0).string_value(), "charlie");
  EXPECT_EQ(*(*out)[2].value(0).string_value(), "alice");
}

TEST(SortTest, UncertainColumnSortsByExpectation) {
  auto scan = std::make_unique<VectorScan>(MakeSchema(), MakeTuples());
  auto sort = Sort::Make(std::move(scan), "delay");
  ASSERT_TRUE(sort.ok());
  auto out = Collect(**sort);
  ASSERT_TRUE(out.ok());
  // Means: bob 10, charlie 30, alice 50.
  EXPECT_EQ(*(*out)[0].value(0).string_value(), "bob");
  EXPECT_EQ(*(*out)[1].value(0).string_value(), "charlie");
  EXPECT_EQ(*(*out)[2].value(0).string_value(), "alice");
}

TEST(SortTest, MissingColumnFails) {
  auto scan = std::make_unique<VectorScan>(MakeSchema(), MakeTuples());
  EXPECT_TRUE(
      Sort::Make(std::move(scan), "nope").status().IsNotFound());
}

TEST(OrderLimitQueryTest, EndToEnd) {
  auto scan = std::make_unique<VectorScan>(MakeSchema(), MakeTuples());
  auto plan = query::PlanQuery(
      "SELECT name, delay FROM t ORDER BY delay DESC LIMIT 2",
      std::move(scan));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto out = Collect(**plan);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(*(*out)[0].value(0).string_value(), "alice");   // mean 50
  EXPECT_EQ(*(*out)[1].value(0).string_value(), "charlie"); // mean 30
}

TEST(OrderLimitQueryTest, ParserRendersRoundTrip) {
  const char* sql =
      "SELECT name FROM t WHERE delay > 50 PROB 0.66 ORDER BY name "
      "LIMIT 5";
  auto q = query::Parse(sql);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->order_by.has_value());
  EXPECT_EQ(q->order_by->column, "name");
  ASSERT_TRUE(q->limit.has_value());
  EXPECT_EQ(*q->limit, 5u);
  auto q2 = query::Parse(q->ToString());
  ASSERT_TRUE(q2.ok()) << "rendered: " << q->ToString();
  EXPECT_EQ(q->ToString(), q2->ToString());
}

TEST(OrderLimitQueryTest, BadLimitRejected) {
  EXPECT_TRUE(
      query::Parse("SELECT a FROM t LIMIT 1.5").status().IsParseError());
  EXPECT_TRUE(
      query::Parse("SELECT a FROM t LIMIT -1").status().IsParseError());
}

}  // namespace
}  // namespace engine
}  // namespace ausdb
