#include <vector>

#include <gtest/gtest.h>

#include "src/dist/gaussian.h"
#include "src/engine/executor.h"
#include "src/engine/limit.h"
#include "src/engine/scan.h"
#include "src/engine/sort.h"
#include "src/query/parser.h"
#include "src/query/planner.h"
#include "src/stream/async_prefetch_source.h"

namespace ausdb {
namespace engine {
namespace {

using dist::RandomVar;

Schema MakeSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"name", FieldType::kString}).ok());
  EXPECT_TRUE(s.AddField({"score", FieldType::kDouble}).ok());
  EXPECT_TRUE(s.AddField({"delay", FieldType::kUncertain}).ok());
  return s;
}

std::vector<Tuple> MakeTuples() {
  auto make = [](const std::string& name, double score, double mean) {
    return Tuple({expr::Value(name), expr::Value(score),
                  expr::Value(RandomVar(
                      std::make_shared<dist::GaussianDist>(mean, 1.0),
                      10))});
  };
  return {make("charlie", 3.0, 30.0), make("alice", 1.0, 50.0),
          make("bob", 2.0, 10.0)};
}

TEST(LimitTest, CapsOutput) {
  auto scan = std::make_unique<VectorScan>(MakeSchema(), MakeTuples());
  Limit limit(std::move(scan), 2);
  auto out = Collect(limit);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  ASSERT_TRUE(limit.Reset().ok());
  EXPECT_EQ(Collect(limit)->size(), 2u);
}

TEST(LimitTest, ZeroAndOversized) {
  auto scan = std::make_unique<VectorScan>(MakeSchema(), MakeTuples());
  Limit zero(std::move(scan), 0);
  EXPECT_TRUE(Collect(zero)->empty());
  auto scan2 = std::make_unique<VectorScan>(MakeSchema(), MakeTuples());
  Limit big(std::move(scan2), 100);
  EXPECT_EQ(Collect(big)->size(), 3u);
}

// Pass-through wrapper that records lifecycle calls — the probe sits
// under the prefetch source so a Close() propagating down the whole
// chain is observable.
class CloseProbe final : public Operator {
 public:
  explicit CloseProbe(OperatorPtr child, size_t* closes, size_t* resets)
      : child_(std::move(child)), closes_(closes), resets_(resets) {}

  const Schema& schema() const override { return child_->schema(); }
  Result<std::optional<Tuple>> Next() override { return child_->Next(); }
  Status Reset() override {
    ++*resets_;
    return child_->Reset();
  }
  Status Close() override {
    ++*closes_;
    return child_->Close();
  }

 private:
  OperatorPtr child_;
  size_t* closes_;
  size_t* resets_;
};

// The close-at-cap contract: once the cap is hit the child is Close()d
// immediately — a prefetching source must stop its producer thread while
// the query is still running, not at plan teardown — exactly once.
TEST(LimitTest, ClosesPrefetchingChildAtCap) {
  size_t closes = 0;
  size_t resets = 0;
  auto probe = std::make_unique<CloseProbe>(
      std::make_unique<VectorScan>(MakeSchema(), MakeTuples()), &closes,
      &resets);
  stream::AsyncPrefetchOptions popts;
  popts.queue_depth = 2;
  auto source = stream::MakeAsyncPrefetch(std::move(probe), popts);
  auto* source_raw =
      static_cast<stream::AsyncPrefetchSource*>(source.get());

  Limit limit(std::move(source), 2);
  auto out = Collect(limit);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  // The cap closed the chain during the run: the probe under the
  // prefetch source saw exactly one Close, and the producer is down.
  EXPECT_EQ(closes, 1u);
  EXPECT_GE(source_raw->stats().starts, 1u);

  // Draining past end of stream is idempotent: no second Close.
  auto extra = limit.Next();
  ASSERT_TRUE(extra.ok());
  EXPECT_FALSE(extra->has_value());
  EXPECT_EQ(closes, 1u);

  // Close is terminal for a prefetch source; Reset after the cap must
  // fail loudly (surfacing the child's error), never restart silently.
  EXPECT_FALSE(limit.Reset().ok());
  EXPECT_EQ(resets, 0u);  // the source refused before reaching the probe
}

// Against a resettable child the close-at-cap is rearmed by Reset: the
// capped result is reproducible and each run closes exactly once.
TEST(LimitTest, ResetAfterCapRearmsResettableChild) {
  size_t closes = 0;
  size_t resets = 0;
  auto probe = std::make_unique<CloseProbe>(
      std::make_unique<VectorScan>(MakeSchema(), MakeTuples()), &closes,
      &resets);
  Limit limit(std::move(probe), 2);
  auto out = Collect(limit);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  EXPECT_EQ(closes, 1u);

  ASSERT_TRUE(limit.Reset().ok());
  EXPECT_EQ(resets, 1u);
  auto again = Collect(limit);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 2u);
  EXPECT_EQ(closes, 2u);
}

// Batched pulls hit the same close-at-cap path.
TEST(LimitTest, BatchPullClosesChildAtCap) {
  size_t closes = 0;
  size_t resets = 0;
  auto probe = std::make_unique<CloseProbe>(
      std::make_unique<VectorScan>(MakeSchema(), MakeTuples()), &closes,
      &resets);
  Limit limit(std::move(probe), 2);
  TupleBatch batch;
  ASSERT_TRUE(limit.NextBatch(16, batch).ok());
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(closes, 1u);
  ASSERT_TRUE(limit.NextBatch(16, batch).ok());
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(closes, 1u);
}

TEST(SortTest, NumericAscending) {
  auto scan = std::make_unique<VectorScan>(MakeSchema(), MakeTuples());
  auto sort = Sort::Make(std::move(scan), "score");
  ASSERT_TRUE(sort.ok());
  auto out = Collect(**sort);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ(*(*out)[0].value(0).string_value(), "alice");
  EXPECT_EQ(*(*out)[1].value(0).string_value(), "bob");
  EXPECT_EQ(*(*out)[2].value(0).string_value(), "charlie");
}

TEST(SortTest, StringDescending) {
  auto scan = std::make_unique<VectorScan>(MakeSchema(), MakeTuples());
  auto sort =
      Sort::Make(std::move(scan), "name", SortOrder::kDescending);
  ASSERT_TRUE(sort.ok());
  auto out = Collect(**sort);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*(*out)[0].value(0).string_value(), "charlie");
  EXPECT_EQ(*(*out)[2].value(0).string_value(), "alice");
}

TEST(SortTest, UncertainColumnSortsByExpectation) {
  auto scan = std::make_unique<VectorScan>(MakeSchema(), MakeTuples());
  auto sort = Sort::Make(std::move(scan), "delay");
  ASSERT_TRUE(sort.ok());
  auto out = Collect(**sort);
  ASSERT_TRUE(out.ok());
  // Means: bob 10, charlie 30, alice 50.
  EXPECT_EQ(*(*out)[0].value(0).string_value(), "bob");
  EXPECT_EQ(*(*out)[1].value(0).string_value(), "charlie");
  EXPECT_EQ(*(*out)[2].value(0).string_value(), "alice");
}

TEST(SortTest, MissingColumnFails) {
  auto scan = std::make_unique<VectorScan>(MakeSchema(), MakeTuples());
  EXPECT_TRUE(
      Sort::Make(std::move(scan), "nope").status().IsNotFound());
}

TEST(OrderLimitQueryTest, EndToEnd) {
  auto scan = std::make_unique<VectorScan>(MakeSchema(), MakeTuples());
  auto plan = query::PlanQuery(
      "SELECT name, delay FROM t ORDER BY delay DESC LIMIT 2",
      std::move(scan));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto out = Collect(**plan);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(*(*out)[0].value(0).string_value(), "alice");   // mean 50
  EXPECT_EQ(*(*out)[1].value(0).string_value(), "charlie"); // mean 30
}

TEST(OrderLimitQueryTest, ParserRendersRoundTrip) {
  const char* sql =
      "SELECT name FROM t WHERE delay > 50 PROB 0.66 ORDER BY name "
      "LIMIT 5";
  auto q = query::Parse(sql);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->order_by.has_value());
  EXPECT_EQ(q->order_by->column, "name");
  ASSERT_TRUE(q->limit.has_value());
  EXPECT_EQ(*q->limit, 5u);
  auto q2 = query::Parse(q->ToString());
  ASSERT_TRUE(q2.ok()) << "rendered: " << q->ToString();
  EXPECT_EQ(q->ToString(), q2->ToString());
}

TEST(OrderLimitQueryTest, BadLimitRejected) {
  EXPECT_TRUE(
      query::Parse("SELECT a FROM t LIMIT 1.5").status().IsParseError());
  EXPECT_TRUE(
      query::Parse("SELECT a FROM t LIMIT -1").status().IsParseError());
}

}  // namespace
}  // namespace engine
}  // namespace ausdb
