#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/accuracy/mean_variance_ci.h"
#include "src/accuracy/proportion_ci.h"
#include "src/accuracy/weighted_accuracy.h"
#include "src/common/rng.h"
#include "src/dist/weighted_learner.h"
#include "src/stats/random_variates.h"
#include "src/stats/weighted.h"

namespace ausdb {
namespace stats {
namespace {

TEST(EffectiveSampleSizeTest, EqualWeightsGiveN) {
  const std::vector<double> w(10, 0.7);
  auto n_eff = EffectiveSampleSize(w);
  ASSERT_TRUE(n_eff.ok());
  EXPECT_NEAR(*n_eff, 10.0, 1e-12);
}

TEST(EffectiveSampleSizeTest, OneDominantWeightGivesNearOne) {
  std::vector<double> w(10, 1e-9);
  w[0] = 1.0;
  auto n_eff = EffectiveSampleSize(w);
  ASSERT_TRUE(n_eff.ok());
  EXPECT_NEAR(*n_eff, 1.0, 1e-6);
}

TEST(EffectiveSampleSizeTest, InvalidWeights) {
  EXPECT_TRUE(EffectiveSampleSize({}).status().IsInvalidArgument());
  const std::vector<double> neg = {1.0, -0.5};
  EXPECT_TRUE(EffectiveSampleSize(neg).status().IsInvalidArgument());
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_TRUE(EffectiveSampleSize(zero).status().IsInvalidArgument());
}

TEST(SummarizeWeightedTest, EqualWeightsMatchUnweighted) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> w(5, 2.0);
  auto s = SummarizeWeighted(x, w);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->mean, 3.0);
  EXPECT_NEAR(s->sample_variance, 2.5, 1e-12);  // matches n-1 variance
  EXPECT_NEAR(s->effective_sample_size, 5.0, 1e-12);
}

TEST(SummarizeWeightedTest, WeightsShiftTheMean) {
  const std::vector<double> x = {0.0, 10.0};
  const std::vector<double> w = {1.0, 3.0};
  auto s = SummarizeWeighted(x, w);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->mean, 7.5);
  // n_eff = (4)^2 / (1+9) = 1.6.
  EXPECT_NEAR(s->effective_sample_size, 1.6, 1e-12);
}

TEST(SummarizeWeightedTest, SizeMismatchFails) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> w = {1.0};
  EXPECT_TRUE(SummarizeWeighted(x, w).status().IsInvalidArgument());
}

TEST(ExponentialDecayWeightsTest, ShapeAndEdgeCases) {
  auto w = ExponentialDecayWeights(4, 0.5);
  ASSERT_TRUE(w.ok());
  const std::vector<double> expected = {1.0, 0.5, 0.25, 0.125};
  EXPECT_EQ(*w, expected);
  auto flat = ExponentialDecayWeights(3, 1.0);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(*flat, (std::vector<double>{1.0, 1.0, 1.0}));
  EXPECT_TRUE(ExponentialDecayWeights(0, 0.5).status().IsInvalidArgument());
  EXPECT_TRUE(
      ExponentialDecayWeights(3, 1.5).status().IsInvalidArgument());
}

}  // namespace
}  // namespace stats

namespace accuracy {
namespace {

TEST(WeightedIntervalTest, EqualWeightsReduceToLemma2) {
  const std::vector<double> delays = {71, 56, 82, 74, 69, 77, 65, 78, 59,
                                      80};
  const std::vector<double> w(10, 1.0);
  auto weighted = WeightedMeanInterval(delays, w, 0.9);
  auto unweighted = MeanIntervalFromSample(delays, 0.9);
  ASSERT_TRUE(weighted.ok() && unweighted.ok());
  EXPECT_NEAR(weighted->lo, unweighted->lo, 1e-9);
  EXPECT_NEAR(weighted->hi, unweighted->hi, 1e-9);

  auto wvar = WeightedVarianceInterval(delays, w, 0.9);
  auto uvar = VarianceIntervalFromSample(delays, 0.9);
  ASSERT_TRUE(wvar.ok() && uvar.ok());
  EXPECT_NEAR(wvar->lo, uvar->lo, 1e-9);
  EXPECT_NEAR(wvar->hi, uvar->hi, 1e-9);
}

TEST(WeightedIntervalTest, SkewedWeightsWidenTheInterval) {
  Rng rng(9);
  std::vector<double> x =
      stats::SampleMany(40, [&] { return stats::SampleNormal(rng, 5, 2); });
  const std::vector<double> flat(40, 1.0);
  auto decayed = stats::ExponentialDecayWeights(40, 0.85);
  ASSERT_TRUE(decayed.ok());
  auto flat_ci = WeightedMeanInterval(x, flat, 0.9);
  auto decay_ci = WeightedMeanInterval(x, *decayed, 0.9);
  ASSERT_TRUE(flat_ci.ok() && decay_ci.ok());
  // Decay reduces n_eff, so the interval must be wider.
  EXPECT_GT(decay_ci->Length(), flat_ci->Length());
}

TEST(WeightedIntervalTest, WeightedProportionReducesToLemma1) {
  auto weighted = WeightedProportionInterval(0.2, 20.0, 0.9);
  auto unweighted = ProportionInterval(0.2, 20, 0.9);
  ASSERT_TRUE(weighted.ok() && unweighted.ok());
  EXPECT_NEAR(weighted->lo, unweighted->lo, 1e-12);
  EXPECT_NEAR(weighted->hi, unweighted->hi, 1e-12);
  // Wilson branch too (n_eff * p < 4).
  auto ww = WeightedProportionInterval(0.15, 20.0, 0.9);
  auto uw = ProportionInterval(0.15, 20, 0.9);
  ASSERT_TRUE(ww.ok() && uw.ok());
  EXPECT_NEAR(ww->lo, uw->lo, 1e-12);
  EXPECT_NEAR(ww->hi, uw->hi, 1e-12);
}

TEST(WeightedIntervalTest, InvalidInputs) {
  const std::vector<double> x = {1.0};
  const std::vector<double> w = {1.0};
  EXPECT_TRUE(WeightedMeanInterval(x, w, 0.9)
                  .status()
                  .IsInsufficientData());
  EXPECT_TRUE(WeightedProportionInterval(0.5, -1.0, 0.9)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(WeightedProportionInterval(1.5, 10.0, 0.9)
                  .status()
                  .IsInvalidArgument());
}

// Property: under a drifting mean, recency weighting keeps the mean
// interval centered on the *current* value far better than flat weights.
TEST(WeightedDriftProperty, DecayTracksDrift) {
  Rng rng(10);
  constexpr int kTrials = 400;
  constexpr size_t kWindow = 60;
  int flat_hits = 0, decay_hits = 0;
  for (int t = 0; t < kTrials; ++t) {
    // Mean drifts linearly from 0 to 6 across the window; the current
    // (most recent) true mean is 6.
    std::vector<double> x(kWindow);
    for (size_t i = 0; i < kWindow; ++i) {
      const double age = static_cast<double>(kWindow - 1 - i);
      const double mean = 6.0 - 6.0 * age / (kWindow - 1);
      x[i] = stats::SampleNormal(rng, mean, 1.0);
    }
    // Most recent observation last: reverse into recency order (index 0
    // = newest) for the decay weights.
    std::vector<double> newest_first(x.rbegin(), x.rend());
    const std::vector<double> flat(kWindow, 1.0);
    auto decayed = stats::ExponentialDecayWeights(kWindow, 0.8);
    auto flat_ci = WeightedMeanInterval(newest_first, flat, 0.9);
    auto decay_ci = WeightedMeanInterval(newest_first, *decayed, 0.9);
    ASSERT_TRUE(flat_ci.ok() && decay_ci.ok());
    if (flat_ci->Contains(6.0)) ++flat_hits;
    if (decay_ci->Contains(6.0)) ++decay_hits;
  }
  EXPECT_GT(decay_hits, flat_hits * 2);
  EXPECT_GT(static_cast<double>(decay_hits) / kTrials, 0.5);
  // Flat weights essentially never cover the current mean under drift.
  EXPECT_LT(static_cast<double>(flat_hits) / kTrials, 0.2);
}

}  // namespace
}  // namespace accuracy

namespace dist {
namespace {

TEST(WeightedLearnerTest, GaussianEqualWeightsMatchUnweighted) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> w(5, 3.0);
  auto learned = LearnWeightedGaussian(x, w);
  ASSERT_TRUE(learned.ok());
  EXPECT_DOUBLE_EQ(learned->distribution->Mean(), 3.0);
  EXPECT_NEAR(learned->distribution->Variance(), 2.5, 1e-12);
  EXPECT_NEAR(learned->effective_sample_size, 5.0, 1e-12);
  EXPECT_EQ(learned->raw_count, 5u);
  const RandomVar rv = learned->ToRandomVar();
  EXPECT_EQ(rv.sample_size(), 5u);
}

TEST(WeightedLearnerTest, HistogramWeightedFrequencies) {
  const std::vector<double> x = {0.5, 1.5, 1.6};
  const std::vector<double> w = {2.0, 1.0, 1.0};
  HistogramLearnOptions opts;
  opts.policy = BinningPolicy::kExplicitEdges;
  opts.edges = {0.0, 1.0, 2.0};
  auto learned = LearnWeightedHistogram(x, w, opts);
  ASSERT_TRUE(learned.ok()) << learned.status().ToString();
  const auto& h =
      static_cast<const HistogramDist&>(*learned->distribution);
  EXPECT_DOUBLE_EQ(h.BinProb(0), 0.5);
  EXPECT_DOUBLE_EQ(h.BinProb(1), 0.5);
  // n_eff = 16/6 = 2.667.
  EXPECT_NEAR(learned->effective_sample_size, 16.0 / 6.0, 1e-12);
}

TEST(WeightedLearnerTest, ToRandomVarFloorsConservatively) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> w = {1.0, 0.5, 0.25};
  auto learned = LearnWeightedGaussian(x, w);
  ASSERT_TRUE(learned.ok());
  // n_eff = (1.75)^2 / 1.3125 = 2.333; floor = 2.
  EXPECT_NEAR(learned->effective_sample_size, 2.3333, 1e-3);
  EXPECT_EQ(learned->ToRandomVar().sample_size(), 2u);
}

TEST(WeightedLearnerTest, InvalidInputs) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> bad_w = {1.0};
  EXPECT_FALSE(LearnWeightedGaussian(x, bad_w).ok());
  EXPECT_FALSE(LearnWeightedHistogram(x, bad_w).ok());
  // n_eff == 1 exactly (single dominant weight).
  const std::vector<double> dom = {1.0, 0.0};
  EXPECT_TRUE(
      LearnWeightedGaussian(x, dom).status().IsInsufficientData());
}

}  // namespace
}  // namespace dist
}  // namespace ausdb
