#include "src/stats/random_variates.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/stats/descriptive.h"
#include "src/stats/percentile.h"

namespace ausdb {
namespace stats {
namespace {

struct FamilyCase {
  std::string name;
  std::function<double(Rng&)> draw;
  double expected_mean;
  double expected_variance;
  // Exact CDF, for the Kolmogorov-Smirnov check.
  std::function<double(double)> cdf;
};

// The paper's five synthetic families with its exact parameters
// (Section V-A): exponential(lambda=1), Gamma(k=2, theta=2), normal(1,1),
// uniform(0,1), Weibull(lambda=1, k=1).
std::vector<FamilyCase> PaperFamilies() {
  return {
      {"exponential",
       [](Rng& r) { return SampleExponential(r, 1.0); },
       1.0,
       1.0,
       [](double x) { return x <= 0 ? 0.0 : 1.0 - std::exp(-x); }},
      {"gamma",
       [](Rng& r) { return SampleGamma(r, 2.0, 2.0); },
       4.0,
       8.0,
       [](double x) {
         // Gamma(2, 2) CDF = 1 - e^{-x/2}(1 + x/2).
         return x <= 0 ? 0.0
                       : 1.0 - std::exp(-x / 2.0) * (1.0 + x / 2.0);
       }},
      {"normal",
       [](Rng& r) { return SampleNormal(r, 1.0, 1.0); },
       1.0,
       1.0,
       [](double x) { return 0.5 * std::erfc(-(x - 1.0) / std::sqrt(2.0)); }},
      {"uniform",
       [](Rng& r) { return SampleUniform(r, 0.0, 1.0); },
       0.5,
       1.0 / 12.0,
       [](double x) { return x < 0 ? 0.0 : (x > 1 ? 1.0 : x); }},
      {"weibull",
       [](Rng& r) { return SampleWeibull(r, 1.0, 1.0); },
       1.0,
       1.0,
       [](double x) { return x <= 0 ? 0.0 : 1.0 - std::exp(-x); }},
  };
}

class VariateFamilyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(VariateFamilyTest, MomentsMatchTheory) {
  const FamilyCase fam = PaperFamilies()[GetParam()];
  Rng rng(1000 + GetParam());
  constexpr int kDraws = 200000;
  MomentAccumulator acc;
  for (int i = 0; i < kDraws; ++i) acc.Add(fam.draw(rng));
  const double mean_se =
      std::sqrt(fam.expected_variance / static_cast<double>(kDraws));
  EXPECT_NEAR(acc.mean(), fam.expected_mean, 6.0 * mean_se) << fam.name;
  EXPECT_NEAR(acc.SampleVariance(), fam.expected_variance,
              0.05 * std::max(1.0, fam.expected_variance))
      << fam.name;
}

TEST_P(VariateFamilyTest, KolmogorovSmirnovAgainstExactCdf) {
  const FamilyCase fam = PaperFamilies()[GetParam()];
  Rng rng(2000 + GetParam());
  constexpr size_t kDraws = 20000;
  std::vector<double> xs;
  xs.reserve(kDraws);
  for (size_t i = 0; i < kDraws; ++i) xs.push_back(fam.draw(rng));
  std::sort(xs.begin(), xs.end());
  double d = 0.0;
  for (size_t i = 0; i < kDraws; ++i) {
    const double f = fam.cdf(xs[i]);
    const double lo = static_cast<double>(i) / kDraws;
    const double hi = static_cast<double>(i + 1) / kDraws;
    d = std::max({d, std::abs(f - lo), std::abs(f - hi)});
  }
  // K-S critical value at alpha = 0.001 is ~1.95/sqrt(n).
  EXPECT_LT(d, 1.95 / std::sqrt(static_cast<double>(kDraws))) << fam.name;
}

INSTANTIATE_TEST_SUITE_P(PaperFamilies, VariateFamilyTest,
                         ::testing::Range<size_t>(0, 5),
                         [](const auto& info) {
                           return PaperFamilies()[info.param].name;
                         });

TEST(VariateTest, GammaShapeBelowOne) {
  Rng rng(3);
  MomentAccumulator acc;
  for (int i = 0; i < 200000; ++i) acc.Add(SampleGamma(rng, 0.5, 1.0));
  EXPECT_NEAR(acc.mean(), 0.5, 0.02);
  EXPECT_NEAR(acc.SampleVariance(), 0.5, 0.05);
}

TEST(VariateTest, LognormalMoments) {
  Rng rng(4);
  MomentAccumulator acc;
  for (int i = 0; i < 200000; ++i) acc.Add(SampleLognormal(rng, 0.0, 0.5));
  // E = exp(mu + sigma^2/2); Var = (exp(sigma^2)-1) exp(2mu+sigma^2).
  EXPECT_NEAR(acc.mean(), std::exp(0.125), 0.02);
  EXPECT_NEAR(acc.SampleVariance(),
              (std::exp(0.25) - 1.0) * std::exp(0.25), 0.05);
}

TEST(VariateTest, BinomialSmallN) {
  Rng rng(5);
  double total = 0.0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    total += static_cast<double>(SampleBinomial(rng, 10, 0.3));
  }
  EXPECT_NEAR(total / kTrials, 3.0, 0.05);
}

TEST(VariateTest, BinomialLargeNUsesApproximation) {
  Rng rng(6);
  double total = 0.0;
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    total += static_cast<double>(SampleBinomial(rng, 100000, 0.5));
  }
  EXPECT_NEAR(total / kTrials / 100000.0, 0.5, 0.001);
}

TEST(VariateTest, BinomialEdgeCases) {
  Rng rng(7);
  EXPECT_EQ(SampleBinomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(SampleBinomial(rng, 10, 0.0), 0u);
  EXPECT_EQ(SampleBinomial(rng, 10, 1.0), 10u);
}

TEST(VariateTest, SampleManyProducesRequestedCount) {
  Rng rng(8);
  const auto v =
      SampleMany(100, [&] { return SampleExponential(rng, 2.0); });
  EXPECT_EQ(v.size(), 100u);
  for (double x : v) EXPECT_GE(x, 0.0);
}

}  // namespace
}  // namespace stats
}  // namespace ausdb
