// Edge-semantics regression tests for HistogramDist: bins are half-open
// [e_i, e_{i+1}), Make() enforces the 1e-9 normalization tolerance
// exactly, inverse-CDF sampling never selects a zero-probability bin,
// and the batched CdfMany kernel is byte-identical to scalar Cdf over
// adversarial inputs.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/dist/histogram.h"
#include "src/dist/kernels.h"

namespace ausdb {
namespace dist {
namespace {

Result<HistogramDist> UnitHistogram() {
  // Four bins over [0, 4) with probabilities 0.1, 0.2, 0.3, 0.4.
  return HistogramDist::Make({0.0, 1.0, 2.0, 3.0, 4.0},
                             {0.1, 0.2, 0.3, 0.4});
}

TEST(HistogramEdgeTest, CdfAtExactBinEdges) {
  auto h = UnitHistogram();
  ASSERT_TRUE(h.ok());
  // Bins are half-open [e_i, e_{i+1}): the CDF at an interior edge is the
  // cumulative mass strictly below it, with zero fraction of the bin the
  // edge opens.
  EXPECT_EQ(h->Cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h->Cdf(1.0), 0.1);
  EXPECT_DOUBLE_EQ(h->Cdf(2.0), 0.1 + 0.2);
  EXPECT_DOUBLE_EQ(h->Cdf(3.0), 0.1 + 0.2 + 0.3);
  // The top edge is outside the support (right-open): CDF saturates.
  EXPECT_EQ(h->Cdf(4.0), 1.0);
  // Just below an edge the value still belongs to the lower bin.
  const double below2 = std::nextafter(2.0, 0.0);
  EXPECT_LT(h->Cdf(below2), h->Cdf(2.0));
  // Just above an edge the interpolation starts from the edge's bin.
  const double above2 = std::nextafter(2.0, 4.0);
  EXPECT_GT(h->Cdf(above2), h->Cdf(2.0));
}

TEST(HistogramEdgeTest, BinIndexAtExactBinEdges) {
  auto h = UnitHistogram();
  ASSERT_TRUE(h.ok());
  // An interior edge belongs to the bin it opens (half-open intervals).
  EXPECT_EQ(h->BinIndex(0.0), 0u);
  EXPECT_EQ(h->BinIndex(1.0), 1u);
  EXPECT_EQ(h->BinIndex(2.0), 2u);
  EXPECT_EQ(h->BinIndex(3.0), 3u);
  EXPECT_EQ(h->BinIndex(std::nextafter(1.0, 0.0)), 0u);
  // Out-of-range clamps, including the right-open top edge.
  EXPECT_EQ(h->BinIndex(-5.0), 0u);
  EXPECT_EQ(h->BinIndex(4.0), 3u);
  EXPECT_EQ(h->BinIndex(100.0), 3u);
}

TEST(HistogramEdgeTest, MakeAtNormalizationToleranceBoundary) {
  // Exactly representable deviations around the 1e-9 tolerance: a total
  // of 1 ± 2^-31 (~4.66e-10) is inside and accepted (then renormalized
  // exactly); 1 ± 2^-29 (~1.86e-9) is outside and rejected.
  const double inside = std::ldexp(1.0, -31);
  const double outside = std::ldexp(1.0, -29);
  EXPECT_TRUE(
      HistogramDist::Make({0.0, 1.0, 2.0}, {0.5, 0.5 + inside}).ok());
  EXPECT_TRUE(
      HistogramDist::Make({0.0, 1.0, 2.0}, {0.5, 0.5 - inside}).ok());
  EXPECT_FALSE(
      HistogramDist::Make({0.0, 1.0, 2.0}, {0.5, 0.5 + outside}).ok());
  EXPECT_FALSE(
      HistogramDist::Make({0.0, 1.0, 2.0}, {0.5, 0.5 - outside}).ok());

  // Accepted masses are renormalized exactly: the CDF saturates at 1.
  auto h = HistogramDist::Make({0.0, 1.0, 2.0}, {0.5, 0.5 + inside});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->Cdf(2.0), 1.0);
}

TEST(HistogramEdgeTest, SampleBinSkipsZeroProbabilityHeadBin) {
  // Zero-probability head bin: cum = {0, 0.5, 1}. A draw of exactly
  // u == 0.0 used to select bin 0 (lower_bound stopping at cum == u) and
  // return a value from a bin the distribution assigns mass zero.
  auto h = HistogramDist::Make({0.0, 1.0, 2.0, 3.0}, {0.0, 0.5, 0.5});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->SampleBin(0.0), 1u);
  EXPECT_EQ(h->SampleBin(0.25), 1u);
  EXPECT_EQ(h->SampleBin(0.5), 2u);
  EXPECT_EQ(h->SampleBin(std::nextafter(1.0, 0.0)), 2u);

  // A whole head run of zero bins is skipped at once.
  auto run = HistogramDist::Make({0.0, 1.0, 2.0, 3.0}, {0.0, 0.0, 1.0});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->SampleBin(0.0), 2u);
}

TEST(HistogramEdgeTest, SampleBinSkipsZeroProbabilityInteriorBin) {
  // Interior zero bin: cum = {0.5, 0.5, 1}. A boundary draw u == 0.5
  // must land in bin 2, never in the zero-mass bin 1.
  auto h = HistogramDist::Make({0.0, 1.0, 2.0, 3.0}, {0.5, 0.0, 0.5});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->SampleBin(0.5), 2u);
  EXPECT_EQ(h->SampleBin(std::nextafter(0.5, 0.0)), 0u);
  for (size_t bin : {h->SampleBin(0.0), h->SampleBin(0.25),
                     h->SampleBin(0.75), h->SampleBin(0.999)}) {
    EXPECT_NE(bin, 1u);
  }
}

TEST(HistogramEdgeTest, SamplesNeverLandInZeroMassBins) {
  auto h = HistogramDist::Make({0.0, 1.0, 2.0, 3.0, 4.0},
                               {0.0, 0.5, 0.0, 0.5});
  ASSERT_TRUE(h.ok());
  Rng rng(20260808);
  for (int i = 0; i < 20000; ++i) {
    const double v = h->Sample(rng);
    const bool in_mass_bin =
        (v >= 1.0 && v < 2.0) || (v >= 3.0 && v < 4.0);
    ASSERT_TRUE(in_mass_bin) << "sample " << v << " in a zero-mass bin";
  }
}

// CdfMany must agree with scalar Cdf to the last bit over adversarial
// inputs: exact edges, values straddling edges by one ulp, denormals,
// out-of-range values, and uneven bin widths.
TEST(HistogramEdgeTest, CdfManyByteIdenticalToScalarCdf) {
  auto h = HistogramDist::Make(
      {-3.0, -1.0, -1e-300, 4.5e-320, 0.5, 2.0, 7.0},
      {0.05, 0.2, 0.05, 0.3, 0.15, 0.25});
  ASSERT_TRUE(h.ok());

  std::vector<double> xs;
  for (double e : h->edges()) {
    xs.push_back(e);
    xs.push_back(std::nextafter(e, -1e30));
    xs.push_back(std::nextafter(e, 1e30));
  }
  // Denormals and signed zeros around the denormal-scale bin edge.
  xs.push_back(0.0);
  xs.push_back(-0.0);
  xs.push_back(std::numeric_limits<double>::denorm_min());
  xs.push_back(-std::numeric_limits<double>::denorm_min());
  xs.push_back(4.9e-324);
  xs.push_back(1e-320);
  // Out of range on both sides.
  xs.push_back(-1e30);
  xs.push_back(1e30);
  // A dense sweep across the support.
  Rng rng(99);
  for (int i = 0; i < 4096; ++i) {
    xs.push_back(rng.NextDouble(-3.5, 7.5));
  }

  std::vector<double> batched(xs.size());
  h->CdfMany(xs, batched);
  for (size_t i = 0; i < xs.size(); ++i) {
    const double scalar = h->Cdf(xs[i]);
    // Bitwise comparison: 0.0 == -0.0 under operator== but the contract
    // is byte identity.
    EXPECT_EQ(std::signbit(batched[i]), std::signbit(scalar))
        << "x=" << xs[i];
    EXPECT_EQ(batched[i], scalar) << "x=" << xs[i];
  }
}

// The raw kernel entry point, driven directly with the histogram's own
// arrays (what the batched operators do), matches too.
TEST(HistogramEdgeTest, RawKernelMatchesMemberCdf) {
  auto h = UnitHistogram();
  ASSERT_TRUE(h.ok());
  std::vector<double> cum(h->bin_count());
  double acc = 0.0;
  for (size_t i = 0; i < h->bin_count(); ++i) {
    acc += h->probs()[i];
    cum[i] = acc;
  }
  cum.back() = 1.0;
  std::vector<double> xs = {-1.0, 0.0, 0.25, 1.0, 1.75, 3.999, 4.0, 9.0};
  std::vector<double> out(xs.size());
  HistogramCdfMany(h->edges(), h->probs(), cum, xs, out);
  for (size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(out[i], h->Cdf(xs[i])) << "x=" << xs[i];
  }
}

}  // namespace
}  // namespace dist
}  // namespace ausdb
