#include "src/stats/quantiles.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ausdb {
namespace stats {
namespace {

TEST(NormalCdfTest, StandardValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-12);
}

TEST(NormalQuantileTest, TableValues) {
  // Classic z-table entries.
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.95), 1.6448536269514722, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959963984540054, 1e-9);
}

TEST(NormalQuantileTest, RoundTrips) {
  for (double p : {1e-8, 1e-4, 0.01, 0.2, 0.5, 0.8, 0.99, 1.0 - 1e-6}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalUpperPercentileTest, MatchesPaperUsage) {
  // The paper's z_{(1-c)/2} for c=0.9 is z_{0.05} = 1.645.
  EXPECT_NEAR(NormalUpperPercentile(0.05), 1.645, 5e-4);
  // And for c=0.95: z_{0.025} = 1.96.
  EXPECT_NEAR(NormalUpperPercentile(0.025), 1.96, 5e-4);
}

TEST(StudentTCdfTest, SymmetryAndCenter) {
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-12);
  for (double t : {0.5, 1.0, 2.5}) {
    for (double dof : {1.0, 4.0, 30.0}) {
      EXPECT_NEAR(StudentTCdf(t, dof) + StudentTCdf(-t, dof), 1.0, 1e-12);
    }
  }
}

TEST(StudentTCdfTest, CauchySpecialCase) {
  // t with 1 dof is Cauchy: CDF(1) = 3/4.
  EXPECT_NEAR(StudentTCdf(1.0, 1.0), 0.75, 1e-10);
}

TEST(StudentTQuantileTest, TableValues) {
  // t_{0.05} with 9 dof = 1.833 (used in the paper's Example 3).
  EXPECT_NEAR(StudentTUpperPercentile(0.05, 9.0), 1.833, 5e-4);
  // t_{0.025} with 10 dof = 2.228.
  EXPECT_NEAR(StudentTUpperPercentile(0.025, 10.0), 2.228, 5e-4);
  // t_{0.05} with 19 dof = 1.729.
  EXPECT_NEAR(StudentTUpperPercentile(0.05, 19.0), 1.729, 5e-4);
}

TEST(StudentTQuantileTest, RoundTrips) {
  for (double dof : {1.0, 3.0, 9.0, 29.0, 100.0}) {
    for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
      EXPECT_NEAR(StudentTCdf(StudentTQuantile(p, dof), dof), p, 1e-9)
          << "dof=" << dof << " p=" << p;
    }
  }
}

TEST(StudentTQuantileTest, ConvergesToNormalForLargeDof) {
  EXPECT_NEAR(StudentTQuantile(0.975, 1e6), NormalQuantile(0.975), 1e-4);
}

TEST(ChiSquareCdfTest, KnownValues) {
  // Median of chi-square(2) is 2 ln 2.
  EXPECT_NEAR(ChiSquareCdf(2.0 * std::log(2.0), 2.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(ChiSquareCdf(0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquareCdf(-1.0, 3.0), 0.0);
}

TEST(ChiSquareQuantileTest, TableValues) {
  // Values used in the paper's Example 3: chi2 upper percentiles, 9 dof.
  EXPECT_NEAR(ChiSquareUpperPercentile(0.05, 9.0), 16.919, 1e-3);
  EXPECT_NEAR(ChiSquareUpperPercentile(0.95, 9.0), 3.325, 1e-3);
  // Common table entries at 10 dof.
  EXPECT_NEAR(ChiSquareUpperPercentile(0.025, 10.0), 20.483, 1e-3);
  EXPECT_NEAR(ChiSquareUpperPercentile(0.975, 10.0), 3.247, 1e-3);
}

TEST(ChiSquareQuantileTest, RoundTrips) {
  for (double dof : {1.0, 2.0, 9.0, 19.0, 99.0}) {
    for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
      EXPECT_NEAR(ChiSquareCdf(ChiSquareQuantile(p, dof), dof), p, 1e-9)
          << "dof=" << dof << " p=" << p;
    }
  }
}

TEST(FDistributionTest, QuantileRoundTrips) {
  for (double d1 : {1.0, 5.0, 10.0}) {
    for (double d2 : {2.0, 8.0, 20.0}) {
      for (double p : {0.05, 0.5, 0.95}) {
        EXPECT_NEAR(FCdf(FQuantile(p, d1, d2), d1, d2), p, 1e-9);
      }
    }
  }
}

TEST(FDistributionTest, TableValue) {
  // F_{0.95}(5, 10) = 3.3258.
  EXPECT_NEAR(FQuantile(0.95, 5.0, 10.0), 3.3258, 1e-3);
}

}  // namespace
}  // namespace stats
}  // namespace ausdb
