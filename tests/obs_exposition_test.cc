#include <gtest/gtest.h>

#include <string>

#include "src/obs/exposition.h"
#include "src/obs/metrics.h"

namespace ausdb {
namespace obs {
namespace {

/// Builds the fixed registry both golden tests render. Everything here
/// is deterministic — values, ordering, formatting — so the goldens are
/// exact strings, not regexes.
MetricsSnapshot GoldenSnapshot() {
  MetricRegistry reg;
  reg.GetCounter("ausdb_engine_tuples_total", {{"operator", "scan"}},
                 "Tuples emitted by the operator.")
      ->Increment(42);
  reg.GetCounter("ausdb_engine_tuples_total", {{"operator", "window"}})
      ->Increment(7);
  reg.GetGauge("ausdb_stream_prefetch_queue_depth", {{"queue", "src"}},
               "Outcomes resident in the prefetch ring.")
      ->Set(3);
  Histogram* h = reg.GetHistogram("ausdb_engine_next_latency_seconds",
                                  {{"operator", "scan"}}, {0.001, 0.01, 0.1},
                                  "Next() latency.");
  // Dyadic values (powers of two) sum exactly in binary floating point,
  // so the rendered `_sum` is a stable golden string.
  h->Record(0.0009765625);  // 2^-10: bucket le=0.001
  h->Record(0.0078125);     // 2^-7:  bucket le=0.01
  h->Record(0.5);           // 2^-1:  overflow
  return reg.Snapshot();
}

TEST(ObsExpositionTest, PrometheusTextGolden) {
  const std::string expected =
      "# HELP ausdb_engine_tuples_total Tuples emitted by the operator.\n"
      "# TYPE ausdb_engine_tuples_total counter\n"
      "ausdb_engine_tuples_total{operator=\"scan\"} 42\n"
      "ausdb_engine_tuples_total{operator=\"window\"} 7\n"
      "# HELP ausdb_stream_prefetch_queue_depth Outcomes resident in the "
      "prefetch ring.\n"
      "# TYPE ausdb_stream_prefetch_queue_depth gauge\n"
      "ausdb_stream_prefetch_queue_depth{queue=\"src\"} 3\n"
      "# HELP ausdb_engine_next_latency_seconds Next() latency.\n"
      "# TYPE ausdb_engine_next_latency_seconds histogram\n"
      "ausdb_engine_next_latency_seconds_bucket{operator=\"scan\","
      "le=\"0.001\"} 1\n"
      "ausdb_engine_next_latency_seconds_bucket{operator=\"scan\","
      "le=\"0.01\"} 2\n"
      "ausdb_engine_next_latency_seconds_bucket{operator=\"scan\","
      "le=\"0.1\"} 2\n"
      "ausdb_engine_next_latency_seconds_bucket{operator=\"scan\","
      "le=\"+Inf\"} 3\n"
      "ausdb_engine_next_latency_seconds_sum{operator=\"scan\"} "
      "0.5087890625\n"
      "ausdb_engine_next_latency_seconds_count{operator=\"scan\"} 3\n";
  EXPECT_EQ(ToPrometheusText(GoldenSnapshot()), expected);
}

TEST(ObsExpositionTest, JsonGolden) {
  const std::string expected =
      "{\"counters\":["
      "{\"name\":\"ausdb_engine_tuples_total\","
      "\"labels\":{\"operator\":\"scan\"},\"value\":42},"
      "{\"name\":\"ausdb_engine_tuples_total\","
      "\"labels\":{\"operator\":\"window\"},\"value\":7}"
      "],\"gauges\":["
      "{\"name\":\"ausdb_stream_prefetch_queue_depth\","
      "\"labels\":{\"queue\":\"src\"},\"value\":3}"
      "],\"histograms\":["
      "{\"name\":\"ausdb_engine_next_latency_seconds\","
      "\"labels\":{\"operator\":\"scan\"},"
      "\"le\":[\"0.001\",\"0.01\",\"0.1\",\"+Inf\"],"
      "\"buckets\":[1,1,0,1],\"sum\":0.5087890625,\"count\":3}"
      "]}";
  EXPECT_EQ(ToJson(GoldenSnapshot()), expected);
}

TEST(ObsExpositionTest, OrderingIsDeterministicAcrossRegistrationOrder) {
  // Registering in the opposite order yields byte-identical exposition:
  // the snapshot sorts by (name, labels).
  MetricRegistry forward;
  forward.GetCounter("ausdb_b_total", {{"x", "2"}})->Increment(2);
  forward.GetCounter("ausdb_b_total", {{"x", "1"}})->Increment(1);
  forward.GetCounter("ausdb_a_total")->Increment(3);

  MetricRegistry reverse;
  reverse.GetCounter("ausdb_a_total")->Increment(3);
  reverse.GetCounter("ausdb_b_total", {{"x", "1"}})->Increment(1);
  reverse.GetCounter("ausdb_b_total", {{"x", "2"}})->Increment(2);

  EXPECT_EQ(ToPrometheusText(forward.Snapshot()),
            ToPrometheusText(reverse.Snapshot()));
  EXPECT_EQ(ToJson(forward.Snapshot()), ToJson(reverse.Snapshot()));
}

TEST(ObsExpositionTest, LabelValuesAreEscaped) {
  MetricRegistry reg;
  reg.GetCounter("ausdb_esc_total",
                 {{"path", "a\\b"}, {"quote", "say \"hi\"\n"}})
      ->Increment(1);
  const std::string text = ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("path=\"a\\\\b\""), std::string::npos) << text;
  EXPECT_NE(text.find("quote=\"say \\\"hi\\\"\\n\""), std::string::npos)
      << text;

  const std::string json = ToJson(reg.Snapshot());
  EXPECT_NE(json.find("\"path\":\"a\\\\b\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"quote\":\"say \\\"hi\\\"\\n\""), std::string::npos)
      << json;
}

TEST(ObsExpositionTest, MetricValueFormattingIsShortestRoundTrip) {
  EXPECT_EQ(FormatMetricValue(0.001), "0.001");
  EXPECT_EQ(FormatMetricValue(1.0), "1");
  EXPECT_EQ(FormatMetricValue(10.0), "10");
  EXPECT_EQ(FormatMetricValue(1e-06), "1e-06");
  EXPECT_EQ(FormatMetricValue(0.1), "0.1");
}

TEST(ObsExpositionTest, EmptySnapshotRendersEmptyStructures) {
  MetricsSnapshot empty;
  EXPECT_EQ(ToPrometheusText(empty), "");
  EXPECT_EQ(ToJson(empty),
            "{\"counters\":[],\"gauges\":[],\"histograms\":[]}");
}

// ---------------------------------------------------------------------
// Escaping kernels

TEST(ObsEscapeTest, EscapeLabelValueEdgeCases) {
  // The Prometheus text format escapes exactly backslash, double quote
  // and newline inside label values — nothing else.
  EXPECT_EQ(EscapeLabelValue(""), "");
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeLabelValue("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(EscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
  // UTF-8 bytes pass through untouched (both formats are byte-oriented).
  EXPECT_EQ(EscapeLabelValue("caf\xc3\xa9"), "caf\xc3\xa9");
  // Tabs and other controls are not special in the text format.
  EXPECT_EQ(EscapeLabelValue("a\tb"), "a\tb");
}

TEST(ObsEscapeTest, JsonEscapeEdgeCases) {
  // JsonEscape returns a complete quoted JSON string.
  EXPECT_EQ(JsonEscape(""), "\"\"");
  EXPECT_EQ(JsonEscape("plain"), "\"plain\"");
  EXPECT_EQ(JsonEscape("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonEscape("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(JsonEscape("line1\nline2"), "\"line1\\nline2\"");
  // Control bytes below 0x20 render as \u escapes.
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\"\\u0001\"");
  EXPECT_EQ(JsonEscape(std::string("a\x1f" "b")), "\"a\\u001fb\"");
  EXPECT_EQ(JsonEscape("a\tb"), "\"a\\u0009b\"");
  EXPECT_EQ(JsonEscape("a\rb"), "\"a\\u000db\"");
  // UTF-8 multibyte sequences pass through byte for byte.
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "\"caf\xc3\xa9\"");
  EXPECT_EQ(JsonEscape("\xe6\xbc\xa2"), "\"\xe6\xbc\xa2\"");
}

TEST(ObsEscapeTest, EdgeCaseLabelsRoundTripBothGoldens) {
  // One metric whose labels hold every awkward byte class; both
  // renderings are pinned as exact strings so an escaping change
  // cannot ship silently.
  MetricRegistry reg;
  reg.GetCounter("ausdb_esc_total", {{"empty", ""},
                                     {"nl", "a\nb"},
                                     {"q", "\"x\""},
                                     {"slash", "c:\\tmp"},
                                     {"utf8", "caf\xc3\xa9"}})
      ->Increment(1);
  EXPECT_EQ(ToPrometheusText(reg.Snapshot()),
            "# TYPE ausdb_esc_total counter\n"
            "ausdb_esc_total{empty=\"\",nl=\"a\\nb\",q=\"\\\"x\\\"\","
            "slash=\"c:\\\\tmp\",utf8=\"caf\xc3\xa9\"} 1\n");
  EXPECT_EQ(ToJson(reg.Snapshot()),
            "{\"counters\":["
            "{\"name\":\"ausdb_esc_total\","
            "\"labels\":{\"empty\":\"\",\"nl\":\"a\\nb\","
            "\"q\":\"\\\"x\\\"\",\"slash\":\"c:\\\\tmp\","
            "\"utf8\":\"caf\xc3\xa9\"},\"value\":1}"
            "],\"gauges\":[],\"histograms\":[]}");
}

}  // namespace
}  // namespace obs
}  // namespace ausdb
