#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/dist/empirical.h"
#include "src/dist/gaussian.h"
#include "src/dist/learner.h"
#include "src/expr/analyzer.h"
#include "src/expr/evaluator.h"
#include "src/expr/expr.h"

namespace ausdb {
namespace expr {
namespace {

using dist::RandomVar;

class ExprEvalTest : public ::testing::Test {
 protected:
  ExprEvalTest() {
    names_ = {"a", "b", "g1", "g2", "s"};
    values_.emplace_back(2.0);                     // a: certain double
    values_.emplace_back(3.0);                     // b: certain double
    values_.push_back(GaussianVar(10.0, 4.0, 20)); // g1
    values_.push_back(GaussianVar(5.0, 9.0, 15));  // g2
    values_.emplace_back(std::string("road19"));   // s: string
  }

  static Value GaussianVar(double mean, double var, size_t n) {
    return Value(RandomVar(
        std::make_shared<dist::GaussianDist>(mean, var), n));
  }

  Row row() const { return Row{&names_, &values_}; }

  std::vector<std::string> names_;
  std::vector<Value> values_;
  Evaluator eval_;
};

TEST_F(ExprEvalTest, ValueAccessors) {
  Value v(3.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(*v.AsDouble(), 3.5);
  EXPECT_TRUE(v.AsRandomVar().ok());
  EXPECT_TRUE(v.AsRandomVar()->is_certain());
  Value s(std::string("x"));
  EXPECT_TRUE(s.AsDouble().status().IsTypeError());
  Value null = Value::Null();
  EXPECT_TRUE(null.is_null());
  EXPECT_EQ(null.ToString(), "NULL");
}

TEST_F(ExprEvalTest, RowLookup) {
  auto r = row();
  ASSERT_TRUE(r.Get("a").ok());
  EXPECT_TRUE(r.Get("missing").status().IsNotFound());
}

TEST_F(ExprEvalTest, DeterministicArithmetic) {
  // (a + b) * 2 - 1 = 9
  auto e = Sub(Mul(Add(Col("a"), Col("b")), Lit(2.0)), Lit(1.0));
  auto v = eval_.Evaluate(*e, row());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(*v->AsDouble(), 9.0);
}

TEST_F(ExprEvalTest, DeterministicUnaries) {
  auto e = SqrtAbs(Lit(-16.0));
  EXPECT_DOUBLE_EQ(*eval_.Evaluate(*e, row())->AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(*eval_.Evaluate(*Square(Lit(3.0)), row())->AsDouble(),
                   9.0);
  EXPECT_DOUBLE_EQ(*eval_.Evaluate(*Neg(Col("a")), row())->AsDouble(),
                   -2.0);
  EXPECT_DOUBLE_EQ(*eval_.Evaluate(*Abs(Lit(-7.0)), row())->AsDouble(),
                   7.0);
}

TEST_F(ExprEvalTest, DivisionByZeroDeterministicFails) {
  auto e = Div(Col("a"), Lit(0.0));
  EXPECT_TRUE(eval_.Evaluate(*e, row()).status().IsInvalidArgument());
}

TEST_F(ExprEvalTest, ClosedFormGaussianSum) {
  // (g1 + g2) / 2: Gaussian((10+5)/2, (4+9)/4), df = min(20,15) = 15.
  auto e = Div(Add(Col("g1"), Col("g2")), Lit(2.0));
  auto v = eval_.Evaluate(*e, row());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_random_var());
  const RandomVar rv = *v->random_var();
  EXPECT_EQ(rv.distribution()->kind(), dist::DistributionKind::kGaussian);
  EXPECT_DOUBLE_EQ(rv.Mean(), 7.5);
  EXPECT_DOUBLE_EQ(rv.Variance(), 13.0 / 4.0);
  EXPECT_EQ(rv.sample_size(), 15u);  // Lemma 3
}

TEST_F(ExprEvalTest, ClosedFormHandlesRepeatedColumn) {
  // g1 - g1 = 0 exactly (coefficients cancel) -> deterministic 0.
  auto e = Sub(Col("g1"), Col("g1"));
  auto v = eval_.Evaluate(*e, row());
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_double());
  EXPECT_DOUBLE_EQ(*v->AsDouble(), 0.0);
}

TEST_F(ExprEvalTest, ClosedFormMixedCertain) {
  // g1 + a: Gaussian(12, 4), df = 20.
  auto e = Add(Col("g1"), Col("a"));
  auto v = eval_.Evaluate(*e, row());
  ASSERT_TRUE(v.ok());
  const RandomVar rv = *v->random_var();
  EXPECT_DOUBLE_EQ(rv.Mean(), 12.0);
  EXPECT_DOUBLE_EQ(rv.Variance(), 4.0);
  EXPECT_EQ(rv.sample_size(), 20u);
}

TEST_F(ExprEvalTest, MonteCarloNonlinear) {
  // SQUARE(g1): E = mu^2 + sigma^2 = 104.
  EvalOptions opts;
  opts.mc_samples = 40000;
  Evaluator eval(opts);
  auto e = Square(Col("g1"));
  auto v = eval.Evaluate(*e, row());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const RandomVar rv = *v->random_var();
  EXPECT_EQ(rv.distribution()->kind(), dist::DistributionKind::kEmpirical);
  EXPECT_NEAR(rv.Mean(), 104.0, 2.0);
  EXPECT_EQ(rv.sample_size(), 20u);
  // The Monte Carlo value sequence is retained for the bootstrap.
  ASSERT_NE(rv.raw_sample(), nullptr);
  EXPECT_EQ(rv.raw_sample()->size(), 40000u);
}

TEST_F(ExprEvalTest, MonteCarloSharedColumnCorrelation) {
  // g1 * g1 must equal g1^2, not the product of two independent copies:
  // E[g1^2] = 104, while independent copies would also give 104 mean but
  // different variance: Var[X*Y] (indep) = (mu^2+s^2)^2 - mu^4 vs
  // Var[X^2] = E X^4 - (E X^2)^2 = (3s^4 + 6 mu^2 s^2 + mu^4) - ... .
  // For mu=10, s^2=4: Var[X^2] = 3*16 + 6*100*4 + 10^4 - 104^2 = 1632.
  // Independent: Var = (104)^2... compute: E[X^2 Y^2] = 104^2 so var=
  // 104^2 - 100^2 = 816. Shared-column evaluation must give ~1632.
  EvalOptions opts;
  opts.mc_samples = 60000;
  Evaluator eval(opts);
  auto e = Mul(Col("g1"), Col("g1"));
  auto v = eval.Evaluate(*e, row());
  ASSERT_TRUE(v.ok());
  const RandomVar rv = *v->random_var();
  EXPECT_NEAR(rv.Variance(), 1632.0, 120.0);
}

TEST_F(ExprEvalTest, ForcedMonteCarloMatchesClosedForm) {
  EvalOptions opts;
  opts.prefer_closed_form = false;
  opts.mc_samples = 60000;
  Evaluator mc(opts);
  auto e = Add(Col("g1"), Col("g2"));
  auto v = mc.Evaluate(*e, row());
  ASSERT_TRUE(v.ok());
  const RandomVar rv = *v->random_var();
  EXPECT_EQ(rv.distribution()->kind(), dist::DistributionKind::kEmpirical);
  EXPECT_NEAR(rv.Mean(), 15.0, 0.1);
  EXPECT_NEAR(rv.Variance(), 13.0, 0.5);
  EXPECT_EQ(rv.sample_size(), 15u);
}

TEST_F(ExprEvalTest, StringsRejectedInArithmetic) {
  auto e = Add(Col("s"), Lit(1.0));
  EXPECT_FALSE(eval_.Evaluate(*e, row()).ok());
}

TEST_F(ExprEvalTest, PredicateColumnVsConstantExact) {
  // Pr[g1 > 10] = 0.5 exactly via the CDF fast path.
  auto p = Gt(Col("g1"), Lit(10.0));
  auto out = eval_.EvaluatePredicate(*p, row());
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->probability, 0.5, 1e-12);
  EXPECT_EQ(out->df_sample_size, 20u);
  EXPECT_FALSE(out->deterministic);
}

TEST_F(ExprEvalTest, PredicateConstantVsColumnFlipped) {
  // 10 < g1 is the same event as g1 > 10.
  auto p = Lt(Lit(10.0), Col("g1"));
  auto out = eval_.EvaluatePredicate(*p, row());
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->probability, 0.5, 1e-12);
}

TEST_F(ExprEvalTest, PredicateTwoGaussiansClosedForm) {
  // Pr[g1 > g2]: difference is Gaussian(5, 13); Pr[diff > 0] =
  // Phi(5/sqrt(13)) = 0.9172...
  auto p = Gt(Col("g1"), Col("g2"));
  auto out = eval_.EvaluatePredicate(*p, row());
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->probability, 0.9172, 1e-3);
  EXPECT_EQ(out->df_sample_size, 15u);
}

TEST_F(ExprEvalTest, PredicateDeterministic) {
  auto p = Gt(Col("a"), Lit(1.0));
  auto out = eval_.EvaluatePredicate(*p, row());
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->probability, 1.0);
  EXPECT_TRUE(out->deterministic);
  EXPECT_EQ(out->df_sample_size, RandomVar::kCertainSampleSize);
}

TEST_F(ExprEvalTest, PredicateStringEquality) {
  auto p = Cmp(CmpOp::kEq, Col("s"), Lit(std::string("road19")));
  auto out = eval_.EvaluatePredicate(*p, row());
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->probability, 1.0);
  auto p2 = Cmp(CmpOp::kLt, Col("s"), Lit(std::string("zzz")));
  EXPECT_TRUE(eval_.EvaluatePredicate(*p2, row()).status().IsTypeError());
}

TEST_F(ExprEvalTest, LogicalConnectivesIndependence) {
  auto p = And(Gt(Col("g1"), Lit(10.0)), Gt(Col("g2"), Lit(5.0)));
  auto out = eval_.EvaluatePredicate(*p, row());
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->probability, 0.25, 1e-12);
  EXPECT_EQ(out->df_sample_size, 15u);

  auto q = Or(Gt(Col("g1"), Lit(10.0)), Gt(Col("g2"), Lit(5.0)));
  auto out2 = eval_.EvaluatePredicate(*q, row());
  ASSERT_TRUE(out2.ok());
  EXPECT_NEAR(out2->probability, 0.75, 1e-12);
}

TEST_F(ExprEvalTest, NotPredicate) {
  auto p = Not(Gt(Col("g1"), Lit(10.0)));
  auto out = eval_.EvaluatePredicate(*p, row());
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->probability, 0.5, 1e-12);
}

TEST_F(ExprEvalTest, ProbOfEvaluatesToDouble) {
  auto e = ProbOf(Gt(Col("g1"), Lit(10.0)));
  auto v = eval_.Evaluate(*e, row());
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v->AsDouble(), 0.5, 1e-12);
}

TEST_F(ExprEvalTest, ProbThresholdPredicate) {
  // The paper's "Delay > 50 PROB 2/3" form.
  auto yes = ProbThreshold(Gt(Col("g1"), Lit(8.0)), 0.66);
  auto out = eval_.EvaluatePredicate(*yes, row());
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->probability, 1.0);  // Pr[g1>8] = 0.841 >= 0.66
  EXPECT_TRUE(out->deterministic);
  EXPECT_EQ(out->df_sample_size, 20u);

  auto no = ProbThreshold(Gt(Col("g1"), Lit(12.0)), 0.66);
  auto out2 = eval_.EvaluatePredicate(*no, row());
  ASSERT_TRUE(out2.ok());
  EXPECT_DOUBLE_EQ(out2->probability, 0.0);
}

TEST_F(ExprEvalTest, MTestPredicate) {
  // g1 has mean 10, sd 2, n 20: E > 8 is significant at 0.05.
  auto t = MTest(Col("g1"), hypothesis::TestOp::kGreater, 8.0, 0.05);
  auto out = eval_.EvaluatePredicate(*t, row());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out->significance, hypothesis::TestOutcome::kTrue);
  // E > 10.5 is not.
  auto t2 = MTest(Col("g1"), hypothesis::TestOp::kGreater, 10.5, 0.05);
  auto out2 = eval_.EvaluatePredicate(*t2, row());
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(*out2->significance, hypothesis::TestOutcome::kFalse);
}

TEST_F(ExprEvalTest, CoupledMTestProducesUnsure) {
  // Borderline: c very close to the mean with a small sample.
  auto t = MTest(Col("g1"), hypothesis::TestOp::kGreater, 9.9, 0.05, 0.05);
  auto out = eval_.EvaluatePredicate(*t, row());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out->significance, hypothesis::TestOutcome::kUnsure);
}

TEST_F(ExprEvalTest, MdTestPredicate) {
  auto t = MdTest(Col("g1"), Col("g2"), hypothesis::TestOp::kGreater, 0.0,
                  0.05);
  auto out = eval_.EvaluatePredicate(*t, row());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out->significance, hypothesis::TestOutcome::kTrue);
  EXPECT_EQ(out->df_sample_size, 15u);
}

TEST_F(ExprEvalTest, PTestPredicate) {
  // Pr[g1 > 9] = Phi(0.5) = 0.69; tau = 0.5, n = 20 -> z = 1.72,
  // p ~0.043 < 0.05: significant.
  auto t = PTest(Gt(Col("g1"), Lit(9.0)), 0.5, 0.05);
  auto out = eval_.EvaluatePredicate(*t, row());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out->significance, hypothesis::TestOutcome::kTrue);
  // tau = 0.65: p_hat 0.69 is too close for n=20.
  auto t2 = PTest(Gt(Col("g1"), Lit(9.0)), 0.65, 0.05);
  auto out2 = eval_.EvaluatePredicate(*t2, row());
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(*out2->significance, hypothesis::TestOutcome::kFalse);
}

TEST_F(ExprEvalTest, PTestOverDeterministicDataFails) {
  auto t = PTest(Gt(Col("a"), Lit(1.0)), 0.5, 0.05);
  EXPECT_TRUE(
      eval_.EvaluatePredicate(*t, row()).status().IsInsufficientData());
}

TEST_F(ExprEvalTest, AccuracyProjection) {
  auto e = MeanCi(Col("g1"), 0.9);
  auto v = eval_.Evaluate(*e, row());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_string());
  // Interval should be roughly 10 +/- 1.73*2/sqrt(20) = 10 +/- 0.77.
  EXPECT_NE(v->string_value()->find("@90%"), std::string::npos);
}

TEST_F(ExprEvalTest, UncertainComparisonAsValueFails) {
  auto e = Gt(Col("g1"), Lit(10.0));
  EXPECT_TRUE(eval_.Evaluate(*e, row()).status().IsTypeError());
}

TEST(AnalyzerTest, CollectColumnsDedupes) {
  auto e = Add(Mul(Col("x"), Col("y")), Col("x"));
  const auto cols = CollectColumns(*e);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], "x");
  EXPECT_EQ(cols[1], "y");
}

TEST(AnalyzerTest, ExtractLinearBasics) {
  // 2*x - y/4 + 3
  auto e = Add(Sub(Mul(Lit(2.0), Col("x")), Div(Col("y"), Lit(4.0))),
               Lit(3.0));
  auto lin = ExtractLinear(*e);
  ASSERT_TRUE(lin.has_value());
  EXPECT_DOUBLE_EQ(lin->coefficients.at("x"), 2.0);
  EXPECT_DOUBLE_EQ(lin->coefficients.at("y"), -0.25);
  EXPECT_DOUBLE_EQ(lin->constant, 3.0);
}

TEST(AnalyzerTest, ExtractLinearRejectsNonlinear) {
  EXPECT_FALSE(ExtractLinear(*Mul(Col("x"), Col("y"))).has_value());
  EXPECT_FALSE(ExtractLinear(*Div(Lit(1.0), Col("x"))).has_value());
  EXPECT_FALSE(ExtractLinear(*Square(Col("x"))).has_value());
  EXPECT_FALSE(ExtractLinear(*SqrtAbs(Col("x"))).has_value());
}

TEST(AnalyzerTest, ExtractLinearConstantFolding) {
  // (2 + 3) * x is linear with coefficient 5.
  auto e = Mul(Add(Lit(2.0), Lit(3.0)), Col("x"));
  auto lin = ExtractLinear(*e);
  ASSERT_TRUE(lin.has_value());
  EXPECT_DOUBLE_EQ(lin->coefficients.at("x"), 5.0);
}

TEST(AnalyzerTest, IsConstant) {
  EXPECT_TRUE(IsConstant(*Add(Lit(1.0), Lit(2.0))));
  EXPECT_FALSE(IsConstant(*Add(Lit(1.0), Col("x"))));
}

TEST(ExprToStringTest, RendersReadably) {
  auto e = ProbThreshold(Gt(Col("Delay"), Lit(50.0)), 0.66);
  EXPECT_EQ(e->ToString(), "(Delay > 50) PROB >= 0.66");
  auto t = MTest(Col("temp"), hypothesis::TestOp::kGreater, 97.0, 0.05);
  EXPECT_EQ(t->ToString(), "MTEST(temp, '>', 97, 0.05)");
}

}  // namespace
}  // namespace expr
}  // namespace ausdb
