// End-to-end integration tests: the complete paper scenario from raw
// observation records through learning, query processing, accuracy
// annotation and result export.

#include <sstream>

#include <gtest/gtest.h>

#include "src/engine/executor.h"
#include "src/engine/scan.h"
#include "src/io/observation_loader.h"
#include "src/query/planner.h"
#include "src/serde/json_writer.h"
#include "src/serde/table_printer.h"
#include "src/stats/random_variates.h"
#include "src/workload/cartel.h"

namespace ausdb {
namespace {

// Builds the paper's Figure 1 situation as CSV: few observations for
// road 19, many for road 20, with both roads' true delay distributions
// straddling the 50-second threshold similarly.
std::string Figure1Csv() {
  std::ostringstream csv;
  csv << "road_id,delay\n";
  Rng rng(819);
  for (int i = 0; i < 3; ++i) {
    csv << "19," << 40.0 + 40.0 * rng.NextDouble() << "\n";
  }
  for (int i = 0; i < 50; ++i) {
    csv << "20," << 40.0 + 40.0 * rng.NextDouble() << "\n";
  }
  return csv.str();
}

class PaperScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = io::ParseCsv(Figure1Csv());
    ASSERT_TRUE(table.ok());
    io::ObservationLoadOptions opts;
    opts.key_column = "road_id";
    opts.value_column = "delay";
    opts.learn_as = io::LearnAs::kEmpirical;
    auto loaded = io::LoadObservations(*table, opts);
    ASSERT_TRUE(loaded.ok());
    data_ = std::move(*loaded);
  }

  engine::OperatorPtr Scan() const {
    return std::make_unique<engine::VectorScan>(data_.schema,
                                                data_.tuples);
  }

  io::LoadedObservations data_;
};

TEST_F(PaperScenarioTest, ThresholdQueryIsAccuracyOblivious) {
  // The paper's Section I query: both roads pass the threshold
  // predicate even though road 19's distribution rests on 3 samples.
  auto plan = query::PlanQuery(
      "SELECT road_id FROM t WHERE delay > 50 PROB 0.5", Scan());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto rows = engine::Collect(**plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(PaperScenarioTest, SignificancePredicateScreensTheNoisyRoad) {
  // The accuracy-aware version: pTest keeps only the road whose
  // distribution carries enough evidence.
  auto plan = query::PlanQuery(
      "SELECT road_id FROM t WHERE PTEST(delay > 50, 0.5, 0.05)", Scan());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto rows = engine::Collect(**plan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(*(*rows)[0].value(0).string_value(), "20");
  EXPECT_EQ(*(*rows)[0].significance(), hypothesis::TestOutcome::kTrue);
}

TEST_F(PaperScenarioTest, AnnotatedResultsExportAsJson) {
  auto plan = query::PlanQuery(
      "SELECT * FROM t WHERE delay > 50 "
      "WITH ACCURACY BOOTSTRAP CONFIDENCE 0.9",
      Scan());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto rows = engine::Collect(**plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  for (const auto& t : *rows) {
    const std::string json = serde::ToJson(t, (*plan)->schema());
    EXPECT_NE(json.find("\"road_id\":"), std::string::npos);
    EXPECT_NE(json.find("\"delay_accuracy\":"), std::string::npos);
    EXPECT_NE(json.find("\"method\":\"bootstrap\""), std::string::npos);
    EXPECT_NE(json.find("\"_prob\":"), std::string::npos);
    EXPECT_NE(json.find("\"_prob_ci\":"), std::string::npos);
  }
  // Road 19's tuple-probability interval must be wider than road 20's:
  // that is the whole point of accuracy awareness.
  const double len19 = (*rows)[0].membership_ci()->Length();
  const double len20 = (*rows)[1].membership_ci()->Length();
  EXPECT_GT(len19, len20);
}

TEST_F(PaperScenarioTest, TableExportRendersAll) {
  auto plan = query::PlanQuery(
      "SELECT road_id, PROB(delay > 50) AS p FROM t ORDER BY p DESC",
      Scan());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto rows = engine::Collect(**plan);
  ASSERT_TRUE(rows.ok());
  std::ostringstream os;
  serde::PrintTable(os, (*plan)->schema(), *rows);
  EXPECT_NE(os.str().find("2 row(s)"), std::string::npos);
}

TEST(CartelIntegrationTest, RouteComparisonPipeline) {
  // Simulator -> route d.f. observations -> learned stream -> AQL mdTest.
  workload::CartelOptions copts;
  copts.num_segments = 60;
  copts.observations_per_segment = 650;
  copts.route_length = 10;
  workload::CartelSimulator sim(copts);
  Rng rng(7);
  const auto pair = sim.MakeRoutePairWithRankGap(rng, 50);

  engine::Schema schema;
  ASSERT_TRUE(
      schema.AddField({"which", engine::FieldType::kString}).ok());
  ASSERT_TRUE(
      schema.AddField({"total", engine::FieldType::kUncertain}).ok());
  std::vector<engine::Tuple> tuples;
  for (const auto& [name, route] :
       {std::pair{"greater", &pair.greater}, {"lesser", &pair.lesser}}) {
    auto obs = sim.RouteDelayObservations(*route, 200, rng);
    ASSERT_TRUE(obs.ok());
    auto learned = dist::LearnGaussian(*obs);
    ASSERT_TRUE(learned.ok());
    tuples.emplace_back(std::vector<expr::Value>{
        expr::Value(std::string(name)),
        expr::Value(dist::RandomVar(*learned))});
  }

  // Keep routes whose mean total delay significantly exceeds the lesser
  // route's true mean plus half the gap — only "greater" should pass.
  const double threshold =
      sim.TrueRouteMean(pair.lesser) + pair.mean_gap / 2.0;
  std::ostringstream sql;
  sql << "SELECT which FROM r WHERE MTEST(total, '>', " << threshold
      << ", 0.05)";
  auto plan = query::PlanQuery(
      sql.str(),
      std::make_unique<engine::VectorScan>(schema, tuples));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto rows = engine::Collect(**plan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(*(*rows)[0].value(0).string_value(), "greater");
}

}  // namespace
}  // namespace ausdb
