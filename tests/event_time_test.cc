// Event-time robustness: the WatermarkPolicy, the bounded-lateness
// ReorderBuffer, late-tuple revision in the time- and count-based window
// aggregates (with checkpoint v4 round trips), watermark plumbing
// through the stream sources, distribution-drift quarantine, and the
// AQL WITHIN/LATENESS surface.

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/memory_budget.h"
#include "src/common/thread_pool.h"
#include "src/dist/gaussian.h"
#include "src/govern/ladder.h"
#include "src/engine/executor.h"
#include "src/engine/partitioned_window.h"
#include "src/engine/reorder_buffer.h"
#include "src/engine/scan.h"
#include "src/engine/sharded_partitioned_window.h"
#include "src/engine/time_window_aggregate.h"
#include "src/engine/window_aggregate.h"
#include "src/obs/metrics.h"
#include "src/query/parser.h"
#include "src/query/planner.h"
#include "src/serde/checkpoint.h"
#include "src/serde/json_writer.h"
#include "src/stream/async_prefetch_source.h"
#include "src/stream/drift_detector.h"
#include "src/stream/replayable_source.h"
#include "src/stream/supervised_source.h"
#include "src/stream/watermark.h"

namespace ausdb {
namespace {

using engine::Collect;
using engine::FieldType;
using engine::OperatorPtr;
using engine::ParallelCollect;
using engine::ReorderBuffer;
using engine::ReorderBufferOptions;
using engine::ReorderOverflowPolicy;
using engine::Schema;
using engine::TimeWindowAggregate;
using engine::TimeWindowOptions;
using engine::Tuple;
using engine::VectorScan;
using engine::WindowAggregate;
using engine::WindowAggregateOptions;
using engine::WindowKind;

constexpr double kInf = std::numeric_limits<double>::infinity();

Schema TsSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"ts", FieldType::kDouble}).ok());
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  return s;
}

// Timestamped tuple whose sequence is its event-order index.
Tuple TsTuple(double ts, double mean, uint64_t seq, size_t n = 10) {
  Tuple t({expr::Value(ts),
           expr::Value(dist::RandomVar(
               std::make_shared<dist::GaussianDist>(mean, 1.0), n))});
  t.set_sequence(seq);
  return t;
}

// Event-ordered stream ts = 0, 1, ..., count-1 with value mean 10*ts.
std::vector<Tuple> OrderedStream(size_t count) {
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < count; ++i) {
    tuples.push_back(TsTuple(static_cast<double>(i), 10.0 * i, i));
  }
  return tuples;
}

// Deterministic bounded disorder: blocks of `block` tuples are rotated
// left by one, so displacement is at most block-1 positions.
std::vector<Tuple> RotateBlocks(std::vector<Tuple> tuples, size_t block) {
  for (size_t start = 0; start + block <= tuples.size(); start += block) {
    std::rotate(tuples.begin() + start, tuples.begin() + start + 1,
                tuples.begin() + start + block);
  }
  return tuples;
}

std::unique_ptr<VectorScan> Scan(std::vector<Tuple> tuples) {
  return std::make_unique<VectorScan>(TsSchema(), std::move(tuples));
}

// VectorScan stamps delivery-order sequences over its tuples; this scan
// preserves the sequences already set, which is the identity the
// sequence-disorder tests manipulate.
class PreservingScan final : public engine::Operator {
 public:
  PreservingScan(Schema schema, std::vector<Tuple> tuples)
      : schema_(std::move(schema)), tuples_(std::move(tuples)) {}
  const Schema& schema() const override { return schema_; }
  Result<std::optional<Tuple>> Next() override {
    if (pos_ >= tuples_.size()) return std::optional<Tuple>(std::nullopt);
    return std::optional<Tuple>(tuples_[pos_++]);
  }
  Status Reset() override {
    pos_ = 0;
    return Status::OK();
  }

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

double TsOf(const Tuple& t) { return *t.value(0).double_value(); }

// ---------------------------------------------------------------------
// WatermarkPolicy

TEST(WatermarkPolicyTest, PureFunctionOfObservedTimestamps) {
  stream::WatermarkPolicy wm(stream::WatermarkPolicyOptions{5.0});
  EXPECT_EQ(wm.watermark(), -kInf);
  EXPECT_FALSE(wm.has_observation());
  EXPECT_FALSE(wm.IsLate(-1e300));  // nothing is late before data

  EXPECT_TRUE(wm.Observe(10.0));
  EXPECT_DOUBLE_EQ(wm.watermark(), 5.0);
  EXPECT_DOUBLE_EQ(wm.max_timestamp(), 10.0);
  EXPECT_TRUE(wm.IsLate(5.0));    // at the watermark = late
  EXPECT_FALSE(wm.IsLate(5.5));   // strictly above = in bound

  // Non-advancing and non-finite observations change nothing.
  EXPECT_FALSE(wm.Observe(8.0));
  EXPECT_FALSE(wm.Observe(std::nan("")));
  EXPECT_FALSE(wm.Observe(kInf));
  EXPECT_DOUBLE_EQ(wm.watermark(), 5.0);

  wm.RestoreFromMaxTimestamp(20.0);
  EXPECT_DOUBLE_EQ(wm.watermark(), 15.0);
  wm.Reset();
  EXPECT_EQ(wm.watermark(), -kInf);
}

// ---------------------------------------------------------------------
// ReorderBuffer

TEST(ReorderBufferTest, RestoresEventTimeOrderWithinBound) {
  // Displacement <= 2 positions (step 1): bound 3 covers it strictly.
  auto disordered = RotateBlocks(OrderedStream(9), 3);
  ReorderBufferOptions opts;
  opts.lateness_bound = 3.0;
  auto rb = ReorderBuffer::Make(Scan(disordered), "ts", opts);
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  auto out = Collect(**rb);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 9u);
  for (size_t i = 0; i < out->size(); ++i) {
    EXPECT_DOUBLE_EQ(TsOf((*out)[i]), static_cast<double>(i));
  }
  EXPECT_EQ((*rb)->stats().admitted, 9u);
  EXPECT_EQ((*rb)->stats().late, 0u);
  EXPECT_EQ((*rb)->stats().shed, 0u);
}

TEST(ReorderBufferTest, ZeroBoundDegeneratesToPassThrough) {
  auto disordered = RotateBlocks(OrderedStream(6), 3);
  auto rb = ReorderBuffer::Make(Scan(disordered), "ts", {});
  ASSERT_TRUE(rb.ok());
  auto out = Collect(**rb);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 6u);
  // Arrival order preserved; the out-of-order tuples are counted late.
  for (size_t i = 0; i < out->size(); ++i) {
    EXPECT_DOUBLE_EQ(TsOf((*out)[i]), TsOf(disordered[i]));
  }
  EXPECT_GT((*rb)->stats().late, 0u);
}

TEST(ReorderBufferTest, BeyondBoundStragglerPassesThroughCountedLate) {
  std::vector<Tuple> tuples = {TsTuple(0, 0, 0), TsTuple(10, 100, 1),
                               TsTuple(2, 20, 2)};
  ReorderBufferOptions opts;
  opts.lateness_bound = 1.0;
  auto rb = ReorderBuffer::Make(Scan(tuples), "ts", opts);
  ASSERT_TRUE(rb.ok());
  auto out = Collect(**rb);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  // ts=2 arrives below the watermark (9): it cannot be reordered and is
  // handed through for the downstream lateness horizon to deal with.
  EXPECT_DOUBLE_EQ(TsOf((*out)[0]), 0.0);
  EXPECT_DOUBLE_EQ(TsOf((*out)[1]), 2.0);
  EXPECT_DOUBLE_EQ(TsOf((*out)[2]), 10.0);
  EXPECT_EQ((*rb)->stats().late, 1u);
}

TEST(ReorderBufferTest, DedupeBySequenceDropsRedeliveries) {
  std::vector<Tuple> tuples = {TsTuple(0, 0, 0), TsTuple(1, 10, 1),
                               TsTuple(1, 10, 1), TsTuple(2, 20, 2)};
  ReorderBufferOptions opts;
  opts.lateness_bound = 1.0;
  opts.dedupe_by_sequence = true;
  auto rb = ReorderBuffer::Make(
      std::make_unique<PreservingScan>(TsSchema(), tuples), "ts", opts);
  ASSERT_TRUE(rb.ok());
  auto out = Collect(**rb);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
  EXPECT_EQ((*rb)->stats().duplicates, 1u);
}

TEST(ReorderBufferTest, ShedOldestBoundsMemoryLoudly) {
  // Bound so large nothing is released before end of stream.
  ReorderBufferOptions opts;
  opts.lateness_bound = 100.0;
  opts.capacity = 2;
  opts.overflow = ReorderOverflowPolicy::kShedOldest;
  auto rb = ReorderBuffer::Make(Scan(OrderedStream(5)), "ts", opts);
  ASSERT_TRUE(rb.ok());
  auto out = Collect(**rb);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_DOUBLE_EQ(TsOf((*out)[0]), 3.0);
  EXPECT_DOUBLE_EQ(TsOf((*out)[1]), 4.0);
  EXPECT_EQ((*rb)->stats().shed, 3u);
}

TEST(ReorderBufferTest, BlockOverflowForcesEarlyReleaseNeverDrops) {
  ReorderBufferOptions opts;
  opts.lateness_bound = 100.0;
  opts.capacity = 2;
  opts.overflow = ReorderOverflowPolicy::kBlock;
  auto rb = ReorderBuffer::Make(Scan(OrderedStream(5)), "ts", opts);
  ASSERT_TRUE(rb.ok());
  auto out = Collect(**rb);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 5u);
  for (size_t i = 0; i < out->size(); ++i) {
    EXPECT_DOUBLE_EQ(TsOf((*out)[i]), static_cast<double>(i));
  }
  EXPECT_EQ((*rb)->stats().forced_releases, 3u);
  EXPECT_EQ((*rb)->stats().shed, 0u);
}

// Pulls the buffer dry one tuple at a time, asserting the conservation
// law at every step: every admitted tuple is delivered, still buffered,
// awaiting delivery, or (kShedOldest only) loudly counted shed.
void DrainCheckingAccounting(ReorderBuffer& rb, size_t expect_delivered,
                             size_t expect_shed) {
  size_t delivered = 0;
  for (;;) {
    auto t = rb.Next();
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    if (!t->has_value()) break;
    ++delivered;
    const engine::ReorderStats& s = rb.stats();
    ASSERT_EQ(s.admitted, delivered + rb.buffered_count() +
                              rb.pending_release_count() + s.shed)
        << "accounting broke after tuple " << delivered << " (late=" << s.late
        << " forced=" << s.forced_releases << ")";
  }
  EXPECT_EQ(delivered, expect_delivered);
  EXPECT_EQ(rb.stats().shed, expect_shed);
}

TEST(ReorderBufferTest, AccountingClosesUnderSustainedShedOverflow) {
  // A lateness bound so wide nothing releases naturally, a tiny
  // capacity, and thirty tuples: the buffer sheds continuously, and the
  // invariant must hold at every single delivery checkpoint.
  ReorderBufferOptions opts;
  opts.lateness_bound = 1000.0;
  opts.capacity = 3;
  opts.overflow = ReorderOverflowPolicy::kShedOldest;
  auto rb = ReorderBuffer::Make(Scan(OrderedStream(30)), "ts", opts);
  ASSERT_TRUE(rb.ok());
  DrainCheckingAccounting(**rb, /*expect_delivered=*/3,
                          /*expect_shed=*/27);
  EXPECT_EQ((*rb)->stats().admitted, 30u);
}

TEST(ReorderBufferTest, AccountingClosesUnderSustainedBlockOverflow) {
  ReorderBufferOptions opts;
  opts.lateness_bound = 1000.0;
  opts.capacity = 3;
  opts.overflow = ReorderOverflowPolicy::kBlock;
  auto rb = ReorderBuffer::Make(Scan(OrderedStream(30)), "ts", opts);
  ASSERT_TRUE(rb.ok());
  DrainCheckingAccounting(**rb, /*expect_delivered=*/30,
                          /*expect_shed=*/0);
  EXPECT_EQ((*rb)->stats().admitted, 30u);
  EXPECT_EQ((*rb)->stats().forced_releases, 27u);
}

TEST(ReorderBufferTest, GovernedRungShortensHoldHorizon) {
  // Rung-stamped tuples shrink the hold horizon (deepest default rung:
  // half the bound). Releases happen before the true watermark —
  // counted early — but every tuple still arrives.
  auto ladder = std::make_shared<const govern::LadderPolicy>(
      govern::LadderPolicy::Default());
  std::vector<Tuple> tuples = RotateBlocks(OrderedStream(12), 3);
  for (Tuple& t : tuples) {
    t.set_precision_rung(
        static_cast<uint32_t>(ladder->rungs.size() - 1));
  }
  ReorderBufferOptions opts;
  opts.lateness_bound = 4.0;
  opts.ladder = ladder;
  auto rb = ReorderBuffer::Make(
      std::make_unique<PreservingScan>(TsSchema(), tuples), "ts", opts);
  ASSERT_TRUE(rb.ok());
  auto out = Collect(**rb);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 12u) << "a shortened horizon drops nothing";
  EXPECT_GT((*rb)->stats().early_releases, 0u);
  EXPECT_EQ((*rb)->stats().shed, 0u);
}

TEST(ReorderBufferTest, UngovernedTrafficIgnoresTheLadder) {
  // Rung-0 tuples through a ladder-bound buffer must behave exactly as
  // if no ladder were configured — byte for byte.
  const auto disordered = RotateBlocks(OrderedStream(12), 3);
  ReorderBufferOptions plain;
  plain.lateness_bound = 3.0;
  auto rb1 = ReorderBuffer::Make(Scan(disordered), "ts", plain);
  ASSERT_TRUE(rb1.ok());
  auto out1 = Collect(**rb1);
  ASSERT_TRUE(out1.ok());

  ReorderBufferOptions governed = plain;
  governed.ladder = std::make_shared<const govern::LadderPolicy>(
      govern::LadderPolicy::Default());
  auto rb2 = ReorderBuffer::Make(Scan(disordered), "ts", governed);
  ASSERT_TRUE(rb2.ok());
  auto out2 = Collect(**rb2);
  ASSERT_TRUE(out2.ok());

  ASSERT_EQ(out1->size(), out2->size());
  const Schema& schema = (*rb1)->schema();
  for (size_t i = 0; i < out1->size(); ++i) {
    EXPECT_EQ(serde::ToJson((*out1)[i], schema),
              serde::ToJson((*out2)[i], schema));
  }
  EXPECT_EQ((*rb2)->stats().early_releases, 0u);
}

TEST(ReorderBufferTest, ChargesHeldTuplesAgainstMemoryBudget) {
  // An ample budget: every held tuple is charged while buffered and
  // every charge is handed back by end of stream.
  MemoryBudget budget(1 << 20);
  ReorderBufferOptions opts;
  opts.lateness_bound = 3.0;
  opts.memory_budget = &budget;
  auto rb = ReorderBuffer::Make(Scan(RotateBlocks(OrderedStream(9), 3)),
                                "ts", opts);
  ASSERT_TRUE(rb.ok());
  auto first = (*rb)->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_GT(budget.used(), 0u) << "held tuples must be charged";
  auto rest = Collect(**rb);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->size(), 8u);
  EXPECT_EQ(budget.used(), 0u)
      << "every buffer exit must release its charge";
  EXPECT_EQ(budget.rejections(), 0u);
}

TEST(ReorderBufferTest, BudgetExhaustionIsLoudNotSilent) {
  // A budget too small for even one held tuple: the buffer refuses with
  // kResourceExhausted instead of growing past its allowance.
  MemoryBudget budget(8);
  ReorderBufferOptions opts;
  opts.lateness_bound = 100.0;  // everything would be held
  opts.memory_budget = &budget;
  auto rb = ReorderBuffer::Make(Scan(OrderedStream(5)), "ts", opts);
  ASSERT_TRUE(rb.ok());
  auto t = (*rb)->Next();
  ASSERT_FALSE(t.ok());
  EXPECT_TRUE(t.status().IsResourceExhausted()) << t.status().ToString();
  EXPECT_GE(budget.rejections(), 1u);
  EXPECT_EQ(budget.used(), 0u) << "a refused reservation charges nothing";
}

TEST(ReorderBufferTest, OutputIdenticalWithMetricsOn) {
  auto disordered = RotateBlocks(OrderedStream(12), 3);
  ReorderBufferOptions plain;
  plain.lateness_bound = 3.0;
  auto rb1 = ReorderBuffer::Make(Scan(disordered), "ts", plain);
  ASSERT_TRUE(rb1.ok());
  auto out1 = Collect(**rb1);
  ASSERT_TRUE(out1.ok());

  obs::MetricRegistry registry;
  ReorderBufferOptions instrumented = plain;
  instrumented.metrics = &registry;
  auto rb2 = ReorderBuffer::Make(Scan(disordered), "ts", instrumented);
  ASSERT_TRUE(rb2.ok());
  auto out2 = Collect(**rb2);
  ASSERT_TRUE(out2.ok());

  ASSERT_EQ(out1->size(), out2->size());
  const Schema& schema = (*rb1)->schema();
  for (size_t i = 0; i < out1->size(); ++i) {
    EXPECT_EQ(serde::ToJson((*out1)[i], schema),
              serde::ToJson((*out2)[i], schema));
  }
}

TEST(ReorderBufferTest, CheckpointRoundTripMidDisorder) {
  const auto disordered = RotateBlocks(OrderedStream(9), 3);
  ReorderBufferOptions opts;
  opts.lateness_bound = 3.0;

  // Golden uninterrupted run.
  auto golden_rb = ReorderBuffer::Make(Scan(disordered), "ts", opts);
  ASSERT_TRUE(golden_rb.ok());
  auto golden = Collect(**golden_rb);
  ASSERT_TRUE(golden.ok());
  ASSERT_EQ(golden->size(), 9u);

  // Pull two tuples, snapshot mid-disorder with a non-empty buffer.
  auto rb1 = ReorderBuffer::Make(Scan(disordered), "ts", opts);
  ASSERT_TRUE(rb1.ok());
  std::vector<Tuple> head;
  for (int i = 0; i < 2; ++i) {
    auto t = (*rb1)->Next();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t->has_value());
    head.push_back(**t);
  }
  ASSERT_GT((*rb1)->buffered_count(), 0u);
  auto blob = (*rb1)->SaveCheckpoint();
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();

  // Resume: a fresh buffer over the unconsumed input suffix.
  const size_t consumed = (*rb1)->stats().admitted;
  std::vector<Tuple> rest(disordered.begin() + consumed,
                          disordered.end());
  auto rb2 = ReorderBuffer::Make(Scan(std::move(rest)), "ts", opts);
  ASSERT_TRUE(rb2.ok());
  ASSERT_TRUE((*rb2)->RestoreCheckpoint(*blob).ok());
  auto tail = Collect(**rb2);
  ASSERT_TRUE(tail.ok());

  std::vector<Tuple> resumed = head;
  resumed.insert(resumed.end(), tail->begin(), tail->end());
  ASSERT_EQ(resumed.size(), golden->size());
  const Schema& schema = (*golden_rb)->schema();
  for (size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(serde::ToJson(resumed[i], schema),
              serde::ToJson((*golden)[i], schema))
        << "tuple " << i;
  }
}

TEST(ReorderBufferTest, RejectsBadConfig) {
  EXPECT_FALSE(ReorderBuffer::Make(Scan({}), "no_such_column", {}).ok());
  ReorderBufferOptions negative;
  negative.lateness_bound = -1.0;
  EXPECT_FALSE(ReorderBuffer::Make(Scan({}), "ts", negative).ok());
}

// ---------------------------------------------------------------------
// TimeWindowAggregate: non-finite timestamps (S1) and the existing
// out-of-order eviction path (S2)

TEST(TimeWindowGuardTest, RejectsNonFiniteTimestampOrdered) {
  for (double bad : {std::nan(""), kInf, -kInf}) {
    std::vector<Tuple> tuples = {TsTuple(0, 1, 0), TsTuple(bad, 2, 1)};
    auto agg = TimeWindowAggregate::Make(Scan(tuples), "ts", "x", "a", {});
    ASSERT_TRUE(agg.ok());
    EXPECT_TRUE(Collect(**agg).status().IsInvalidArgument())
        << "timestamp " << bad;
  }
}

TEST(TimeWindowGuardTest, RejectsNonFiniteTimestampUnordered) {
  TimeWindowOptions lax;
  lax.require_ordered = false;
  for (double bad : {std::nan(""), kInf, -kInf}) {
    std::vector<Tuple> tuples = {TsTuple(5, 1, 0), TsTuple(bad, 2, 1)};
    auto agg =
        TimeWindowAggregate::Make(Scan(tuples), "ts", "x", "a", lax);
    ASSERT_TRUE(agg.ok());
    EXPECT_TRUE(Collect(**agg).status().IsInvalidArgument())
        << "timestamp " << bad;
  }
}

TEST(TimeWindowGuardTest, RejectsNonFiniteTimestampRevising) {
  TimeWindowOptions rev;
  rev.require_ordered = false;
  rev.emit_revisions = true;
  rev.allowed_lateness = 10.0;
  std::vector<Tuple> tuples = {TsTuple(5, 1, 0), TsTuple(std::nan(""), 2, 1)};
  auto agg = TimeWindowAggregate::Make(Scan(tuples), "ts", "x", "a", rev);
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE(Collect(**agg).status().IsInvalidArgument());
}

TEST(TimeWindowBoundaryTest, OutOfOrderEvictionByValue) {
  // require_ordered=false: the straggler joins the window it belongs
  // to; later watermark advance evicts by value, not arrival order.
  TimeWindowOptions lax;
  lax.require_ordered = false;
  lax.duration = 4.0;
  std::vector<Tuple> tuples = {TsTuple(5, 10, 0), TsTuple(3, 20, 1),
                               TsTuple(12, 30, 2)};
  auto agg = TimeWindowAggregate::Make(Scan(tuples), "ts", "x", "a", lax);
  ASSERT_TRUE(agg.ok());
  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  // ts=5: {10}; ts=3 joins (1,5]: {10,20}; ts=12 evicts both: {30}.
  EXPECT_DOUBLE_EQ((*out)[0].value(0).random_var()->Mean(), 10.0);
  EXPECT_DOUBLE_EQ((*out)[1].value(0).random_var()->Mean(), 15.0);
  EXPECT_DOUBLE_EQ((*out)[2].value(0).random_var()->Mean(), 30.0);
}

TEST(TimeWindowBoundaryTest, HalfOpenIntervalAtExactDuplicates) {
  // Window is (t - duration, t]: the tuple exactly at t - duration is
  // excluded, and exact-duplicate timestamps all belong to the window.
  TimeWindowOptions opts;
  opts.duration = 10.0;
  std::vector<Tuple> tuples = {TsTuple(0, 100, 0), TsTuple(5, 10, 1),
                               TsTuple(5, 20, 2), TsTuple(10, 30, 3)};
  auto agg = TimeWindowAggregate::Make(Scan(tuples), "ts", "x", "a", opts);
  ASSERT_TRUE(agg.ok());
  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 4u);
  // At the duplicate ts=5 both entries and ts=0 are in (-5, 5].
  EXPECT_DOUBLE_EQ((*out)[2].value(0).random_var()->Mean(), 130.0 / 3.0);
  // At ts=10 the boundary tuple ts=0 is excluded from (0, 10].
  EXPECT_DOUBLE_EQ((*out)[3].value(0).random_var()->Mean(), 20.0);
}

// ---------------------------------------------------------------------
// TimeWindowAggregate revision mode

// Folds a revision-mode output stream by window end, keeping the last
// value JSON per end — the downstream consumer contract.
std::map<double, std::string> FoldByWindowEnd(
    const std::vector<Tuple>& outputs) {
  std::map<double, std::string> fold;
  for (const Tuple& t : outputs) {
    fold[*t.value(1).double_value()] = serde::ToJson(t.value(0));
  }
  return fold;
}

TEST(TimeWindowRevisionTest, RevisionFoldMatchesInOrderDelivery) {
  const auto ordered = OrderedStream(20);
  const auto disordered = RotateBlocks(ordered, 3);

  TimeWindowOptions rev;
  rev.duration = 5.0;
  rev.require_ordered = false;
  rev.emit_revisions = true;
  rev.allowed_lateness = 5.0;

  auto agg_a = TimeWindowAggregate::Make(Scan(ordered), "ts", "x", "a", rev);
  ASSERT_TRUE(agg_a.ok()) << agg_a.status().ToString();
  auto out_a = Collect(**agg_a);
  ASSERT_TRUE(out_a.ok());
  for (const Tuple& t : *out_a) {
    EXPECT_FALSE(*t.value(2).bool_value()) << "in-order run revised";
  }

  auto agg_b =
      TimeWindowAggregate::Make(Scan(disordered), "ts", "x", "a", rev);
  ASSERT_TRUE(agg_b.ok());
  auto out_b = Collect(**agg_b);
  ASSERT_TRUE(out_b.ok());
  EXPECT_EQ((*agg_b)->shed_late(), 0u);
  bool any_revision = false;
  for (const Tuple& t : *out_b) {
    any_revision = any_revision || *t.value(2).bool_value();
  }
  EXPECT_TRUE(any_revision) << "disorder produced no revisions";

  const auto fold_a = FoldByWindowEnd(*out_a);
  const auto fold_b = FoldByWindowEnd(*out_b);
  ASSERT_EQ(fold_a.size(), fold_b.size());
  for (const auto& [end, json] : fold_a) {
    auto it = fold_b.find(end);
    ASSERT_NE(it, fold_b.end()) << "window end " << end << " missing";
    EXPECT_EQ(it->second, json) << "window end " << end;
  }
}

TEST(TimeWindowRevisionTest, BeyondHorizonStragglerIsShed) {
  TimeWindowOptions rev;
  rev.duration = 2.0;
  rev.require_ordered = false;
  rev.emit_revisions = true;
  rev.allowed_lateness = 3.0;
  // ts=1 arrives 9 behind the max timestamp: beyond the horizon.
  std::vector<Tuple> tuples = {TsTuple(0, 0, 0), TsTuple(10, 100, 1),
                               TsTuple(1, 10, 2)};
  auto agg = TimeWindowAggregate::Make(Scan(tuples), "ts", "x", "a", rev);
  ASSERT_TRUE(agg.ok());
  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);  // no revision for the shed straggler
  EXPECT_EQ((*agg)->shed_late(), 1u);
}

TEST(TimeWindowRevisionTest, RequiresSlidingSemanticsConfig) {
  TimeWindowOptions rev;
  rev.emit_revisions = true;
  rev.require_ordered = true;  // contradiction: revisions imply disorder
  EXPECT_FALSE(
      TimeWindowAggregate::Make(Scan({}), "ts", "x", "a", rev).ok());
  TimeWindowOptions bad_lateness;
  bad_lateness.require_ordered = false;
  bad_lateness.emit_revisions = true;
  bad_lateness.allowed_lateness = -1.0;
  EXPECT_FALSE(
      TimeWindowAggregate::Make(Scan({}), "ts", "x", "a", bad_lateness)
          .ok());
}

TEST(TimeWindowRevisionTest, CheckpointResumesMidRevision) {
  const auto disordered = RotateBlocks(OrderedStream(18), 3);
  TimeWindowOptions rev;
  rev.duration = 5.0;
  rev.require_ordered = false;
  rev.emit_revisions = true;
  rev.allowed_lateness = 5.0;

  auto golden_agg =
      TimeWindowAggregate::Make(Scan(disordered), "ts", "x", "a", rev);
  ASSERT_TRUE(golden_agg.ok());
  auto golden = Collect(**golden_agg);
  ASSERT_TRUE(golden.ok());

  auto agg1 =
      TimeWindowAggregate::Make(Scan(disordered), "ts", "x", "a", rev);
  ASSERT_TRUE(agg1.ok());
  std::vector<Tuple> head;
  for (int i = 0; i < 7; ++i) {
    auto t = (*agg1)->Next();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t->has_value());
    head.push_back(**t);
  }
  auto blob = (*agg1)->SaveCheckpoint();
  ASSERT_TRUE(blob.ok());

  const size_t consumed = (*agg1)->input_consumed();
  std::vector<Tuple> rest(disordered.begin() + consumed,
                          disordered.end());
  auto agg2 =
      TimeWindowAggregate::Make(Scan(std::move(rest)), "ts", "x", "a", rev);
  ASSERT_TRUE(agg2.ok());
  ASSERT_TRUE((*agg2)->RestoreCheckpoint(*blob).ok());
  auto tail = Collect(**agg2);
  ASSERT_TRUE(tail.ok());

  std::vector<Tuple> resumed = head;
  resumed.insert(resumed.end(), tail->begin(), tail->end());
  ASSERT_EQ(resumed.size(), golden->size());
  const Schema& schema = (*golden_agg)->schema();
  for (size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(serde::ToJson(resumed[i], schema),
              serde::ToJson((*golden)[i], schema))
        << "output " << i;
  }

  // A checkpoint from a differently configured aggregate is rejected.
  TimeWindowOptions other = rev;
  other.allowed_lateness = 7.0;
  auto agg3 = TimeWindowAggregate::Make(Scan({}), "ts", "x", "a", other);
  ASSERT_TRUE(agg3.ok());
  EXPECT_TRUE((*agg3)->RestoreCheckpoint(*blob).IsInvalidArgument());
}

// ---------------------------------------------------------------------
// Count-based windows: revision mode and checkpoint v4

Schema KeyedSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"key", FieldType::kString}).ok());
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  return s;
}

Tuple KeyedTuple(const std::string& key, double mean, uint64_t seq) {
  Tuple t({expr::Value(key),
           expr::Value(dist::RandomVar(
               std::make_shared<dist::GaussianDist>(mean, 1.0), 10))});
  t.set_sequence(seq);
  return t;
}

Schema ValueSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  return s;
}

Tuple ValueTuple(double mean, uint64_t seq) {
  Tuple t({expr::Value(dist::RandomVar(
      std::make_shared<dist::GaussianDist>(mean, 1.0), 10))});
  t.set_sequence(seq);
  return t;
}

TEST(CountWindowRevisionTest, LateArrivalRevisesCurrentWindow) {
  // Sequences 0,1,3 then late 2: the straggler lands inside the
  // retained window [1,3] and displaces 1, so {2,3} is re-emitted.
  std::vector<Tuple> tuples = {ValueTuple(10, 0), ValueTuple(20, 1),
                               ValueTuple(40, 3), ValueTuple(30, 2)};
  WindowAggregateOptions opts;
  opts.window_size = 2;
  opts.emit_revisions = true;
  auto agg = WindowAggregate::Make(
      std::make_unique<PreservingScan>(ValueSchema(), tuples), "x", "a", opts);
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 3u);
  EXPECT_DOUBLE_EQ((*out)[0].value(0).random_var()->Mean(), 15.0);
  EXPECT_FALSE(*(*out)[0].value(1).bool_value());
  EXPECT_DOUBLE_EQ((*out)[1].value(0).random_var()->Mean(), 30.0);
  EXPECT_FALSE(*(*out)[1].value(1).bool_value());
  EXPECT_DOUBLE_EQ((*out)[2].value(0).random_var()->Mean(), 35.0);
  EXPECT_TRUE(*(*out)[2].value(1).bool_value());
  EXPECT_EQ((*agg)->shed_late(), 0u);
}

TEST(CountWindowRevisionTest, StragglerBelowEvictionHorizonIsShed) {
  // After 0,1,2,3 with window 2 the horizon is 1; a redelivered 0 has
  // slid past and is shed, not revised.
  std::vector<Tuple> tuples = {ValueTuple(10, 0), ValueTuple(20, 1),
                               ValueTuple(30, 2), ValueTuple(40, 3),
                               ValueTuple(10, 0)};
  WindowAggregateOptions opts;
  opts.window_size = 2;
  opts.emit_revisions = true;
  auto agg = WindowAggregate::Make(
      std::make_unique<PreservingScan>(ValueSchema(), tuples), "x", "a", opts);
  ASSERT_TRUE(agg.ok());
  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ((*agg)->shed_late(), 1u);
}

TEST(CountWindowRevisionTest, RevisionModeRejectsTumblingWindows) {
  WindowAggregateOptions opts;
  opts.window_size = 2;
  opts.kind = WindowKind::kTumbling;
  opts.emit_revisions = true;
  EXPECT_FALSE(WindowAggregate::Make(
                   std::make_unique<PreservingScan>(ValueSchema(),
                                                std::vector<Tuple>{}),
                   "x", "a", opts)
                   .ok());
}

// The same disordered keyed stream through the serial and the sharded
// partitioned operators, at several shard/thread counts: revision
// outputs must be bit-identical everywhere.
TEST(CountWindowRevisionTest, ShardedMatchesSerialUnderDisorder) {
  std::vector<Tuple> tuples;
  const std::vector<std::string> keys = {"k0", "k1", "k2"};
  for (uint64_t i = 0; i < 30; ++i) {
    tuples.push_back(
        KeyedTuple(keys[i % keys.size()], 10.0 * i, i));
  }
  // Swap within blocks so per-key sequences arrive out of order.
  tuples = RotateBlocks(std::move(tuples), 5);

  WindowAggregateOptions wo;
  wo.window_size = 3;
  wo.emit_revisions = true;

  auto serial = engine::PartitionedWindowAggregate::Make(
      std::make_unique<PreservingScan>(KeyedSchema(), tuples), "key", "x",
      "a", wo);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto golden = Collect(**serial);
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  ASSERT_FALSE(golden->empty());
  bool any_revision = false;
  for (const Tuple& t : *golden) {
    any_revision = any_revision || *t.value(2).bool_value();
  }
  EXPECT_TRUE(any_revision);

  const Schema& schema = (*serial)->schema();
  for (size_t shards : {1u, 4u}) {
    for (size_t threads : {1u, 4u}) {
      engine::ShardedWindowOptions so;
      so.window = wo;
      so.num_shards = shards;
      so.batch_size = 7;
      auto sharded = engine::ShardedPartitionedWindowAggregate::Make(
          std::make_unique<PreservingScan>(KeyedSchema(), tuples), "key",
          "x", "a", so);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      ThreadPool pool(threads);
      auto out = ParallelCollect(**sharded, pool);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      ASSERT_EQ(out->size(), golden->size())
          << shards << " shards, " << threads << " threads";
      for (size_t i = 0; i < out->size(); ++i) {
        ASSERT_EQ(serde::ToJson((*out)[i], schema),
                  serde::ToJson((*golden)[i], schema))
            << "output " << i << " at " << shards << " shards, "
            << threads << " threads";
      }
      EXPECT_EQ((*sharded)->shed_late(), 0u);
    }
  }
}

TEST(CountWindowRevisionTest, CheckpointV4RoundTrip) {
  std::vector<Tuple> tuples = {ValueTuple(10, 0), ValueTuple(20, 1),
                               ValueTuple(40, 3), ValueTuple(30, 2),
                               ValueTuple(50, 4), ValueTuple(60, 5)};
  WindowAggregateOptions opts;
  opts.window_size = 2;
  opts.emit_revisions = true;

  auto golden_agg = WindowAggregate::Make(
      std::make_unique<PreservingScan>(ValueSchema(), tuples), "x", "a", opts);
  ASSERT_TRUE(golden_agg.ok());
  auto golden = Collect(**golden_agg);
  ASSERT_TRUE(golden.ok());

  auto agg1 = WindowAggregate::Make(
      std::make_unique<PreservingScan>(ValueSchema(), tuples), "x", "a", opts);
  ASSERT_TRUE(agg1.ok());
  std::vector<Tuple> head;
  for (int i = 0; i < 2; ++i) {
    auto t = (*agg1)->Next();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t->has_value());
    head.push_back(**t);
  }
  auto blob = (*agg1)->SaveCheckpoint();
  ASSERT_TRUE(blob.ok());

  const size_t consumed = (*agg1)->input_consumed();
  std::vector<Tuple> rest(tuples.begin() + consumed, tuples.end());
  auto agg2 = WindowAggregate::Make(
      std::make_unique<PreservingScan>(ValueSchema(), std::move(rest)), "x",
      "a", opts);
  ASSERT_TRUE(agg2.ok());
  ASSERT_TRUE((*agg2)->RestoreCheckpoint(*blob).ok());
  auto tail = Collect(**agg2);
  ASSERT_TRUE(tail.ok());

  std::vector<Tuple> resumed = head;
  resumed.insert(resumed.end(), tail->begin(), tail->end());
  ASSERT_EQ(resumed.size(), golden->size());
  const Schema& schema = (*golden_agg)->schema();
  for (size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(serde::ToJson(resumed[i], schema),
              serde::ToJson((*golden)[i], schema));
  }
}

TEST(CountWindowRevisionTest, RevisionFlagMismatchRejected) {
  // A non-revision checkpoint cannot restore into a revision-mode
  // operator (and vice versa) — the window bookkeeping differs.
  WindowAggregateOptions plain;
  plain.window_size = 2;
  auto agg_plain = WindowAggregate::Make(
      std::make_unique<PreservingScan>(ValueSchema(),
                                   std::vector<Tuple>{ValueTuple(1, 0)}),
      "x", "a", plain);
  ASSERT_TRUE(agg_plain.ok());
  ASSERT_TRUE(Collect(**agg_plain).ok());
  auto blob = (*agg_plain)->SaveCheckpoint();
  ASSERT_TRUE(blob.ok());

  WindowAggregateOptions rev = plain;
  rev.emit_revisions = true;
  auto agg_rev = WindowAggregate::Make(
      std::make_unique<PreservingScan>(ValueSchema(), std::vector<Tuple>{}),
      "x", "a", rev);
  ASSERT_TRUE(agg_rev.ok());
  EXPECT_TRUE((*agg_rev)->RestoreCheckpoint(*blob).IsInvalidArgument());
}

TEST(CountWindowRevisionTest, PreRevisionBlobRejectedIntoRevisionMode) {
  // A hand-crafted wagg.v3 blob (no revision block) restores fine into
  // a legacy operator but is refused by a revision-mode one.
  serde::CheckpointWriter w;
  w.Token("wagg.v3");
  w.Uint(static_cast<uint64_t>(WindowKind::kSliding));
  w.Uint(static_cast<uint64_t>(engine::WindowAggFn::kAvg));
  w.Uint(2);  // window_size
  w.Uint(0);  // input_consumed
  w.Double(0.0);
  w.Double(0.0);
  w.Double(0.0);
  w.Double(0.0);
  w.Uint(0);  // entries
  const std::string blob = std::move(w).Finish();

  WindowAggregateOptions plain;
  plain.window_size = 2;
  auto agg_plain = WindowAggregate::Make(
      std::make_unique<PreservingScan>(ValueSchema(), std::vector<Tuple>{}),
      "x", "a", plain);
  ASSERT_TRUE(agg_plain.ok());
  EXPECT_TRUE((*agg_plain)->RestoreCheckpoint(blob).ok());

  WindowAggregateOptions rev = plain;
  rev.emit_revisions = true;
  auto agg_rev = WindowAggregate::Make(
      std::make_unique<PreservingScan>(ValueSchema(), std::vector<Tuple>{}),
      "x", "a", rev);
  ASSERT_TRUE(agg_rev.ok());
  EXPECT_TRUE((*agg_rev)->RestoreCheckpoint(blob).IsInvalidArgument());
}

// ---------------------------------------------------------------------
// Watermark plumbing through the stream sources

TEST(SourceWatermarkTest, SupervisedScanTracksConfiguredColumn) {
  stream::SupervisedScanOptions opts;
  opts.watermark_column = "ts";
  opts.watermark_bound = 2.0;
  stream::SupervisedScan scan(Scan(OrderedStream(10)), opts);
  EXPECT_EQ(scan.CurrentWatermark(), -kInf);
  ASSERT_TRUE(Collect(scan).ok());
  EXPECT_DOUBLE_EQ(scan.CurrentWatermark(), 7.0);
}

TEST(SourceWatermarkTest, SupervisedScanRejectsUnknownColumn) {
  stream::SupervisedScanOptions opts;
  opts.watermark_column = "no_such_column";
  stream::SupervisedScan scan(Scan(OrderedStream(3)), opts);
  EXPECT_FALSE(Collect(scan).ok());
}

TEST(SourceWatermarkTest, PrefetchWatermarkIsConsumerSide) {
  for (size_t depth : {1u, 2u, 64u}) {
    stream::AsyncPrefetchOptions opts;
    opts.queue_depth = depth;
    opts.watermark_column = "ts";
    opts.watermark_bound = 3.0;
    stream::AsyncPrefetchSource source(Scan(OrderedStream(20)), opts);
    EXPECT_EQ(source.CurrentWatermark(), -kInf) << "depth " << depth;
    // After exactly 5 deliveries the watermark is a pure function of
    // the delivered prefix, regardless of producer read-ahead.
    for (int i = 0; i < 5; ++i) {
      auto t = source.Next();
      ASSERT_TRUE(t.ok());
      ASSERT_TRUE(t->has_value());
    }
    EXPECT_DOUBLE_EQ(source.CurrentWatermark(), 1.0) << "depth " << depth;
    ASSERT_TRUE(Collect(source).ok());
    EXPECT_DOUBLE_EQ(source.CurrentWatermark(), 16.0)
        << "depth " << depth;
  }
}

TEST(SourceWatermarkTest, EventTimeSourceHasBoundedDisorder) {
  stream::EventTimeSourceOptions opts;
  opts.count = 64;
  opts.max_displacement = 3;
  auto source = stream::ReplayableEventTimeSource::Make(opts);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  auto out = Collect(**source);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 64u);
  bool any_disorder = false;
  for (size_t i = 0; i < out->size(); ++i) {
    const Tuple& t = (*out)[i];
    // Timestamp is monotone in sequence and displacement is bounded.
    EXPECT_DOUBLE_EQ(TsOf(t), static_cast<double>(t.sequence()));
    const double displacement =
        std::abs(static_cast<double>(i) -
                 static_cast<double>(t.sequence()));
    EXPECT_LE(displacement, 3.0) << "delivery position " << i;
    any_disorder = any_disorder || t.sequence() != i;
  }
  EXPECT_TRUE(any_disorder);

  // Replay from the start is bit-identical (same baked ordering).
  ASSERT_TRUE((*source)->SeekTo(0).ok());
  auto replay = Collect(**source);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->size(), out->size());
  const Schema& schema = (*source)->schema();
  for (size_t i = 0; i < out->size(); ++i) {
    EXPECT_EQ(serde::ToJson((*replay)[i], schema),
              serde::ToJson((*out)[i], schema));
    EXPECT_EQ((*replay)[i].sequence(), (*out)[i].sequence());
  }
}

// ---------------------------------------------------------------------
// Drift detection and quarantine

TEST(DriftDetectorTest, LatchesAfterPatienceAndRelearns) {
  stream::DriftDetectorOptions opts;
  opts.reference_size = 128;
  opts.window_size = 64;
  opts.check_every = 16;
  opts.patience = 2;
  stream::DriftDetector detector(opts);

  // Reference regime: a deterministic ramp over [50, 82).
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(detector.Observe(50.0 + (i % 32)).ok());
  }
  EXPECT_FALSE(detector.drifted());

  // Same regime continues: no drift however long it runs.
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(detector.Observe(50.0 + (i % 32)).ok());
  }
  EXPECT_FALSE(detector.drifted());
  EXPECT_GT(detector.checks_run(), 0u);

  // Regime shift far outside the reference support.
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(detector.Observe(200.0 + (i % 32)).ok());
  }
  EXPECT_TRUE(detector.drifted());
  EXPECT_GE(detector.drift_events(), 1u);
  ASSERT_TRUE(detector.last_p_value().has_value());
  EXPECT_LT(*detector.last_p_value(), opts.significance);

  // Relearning from the trailing window adopts the new regime.
  ASSERT_TRUE(detector.Relearn().ok());
  EXPECT_FALSE(detector.drifted());
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(detector.Observe(200.0 + (i % 32)).ok());
  }
  EXPECT_FALSE(detector.drifted());
}

TEST(DriftDetectorTest, QuarantinesThroughSupervisedScan) {
  auto detector = std::make_shared<stream::DriftDetector>([] {
    stream::DriftDetectorOptions o;
    o.reference_size = 64;
    o.window_size = 32;
    o.check_every = 8;
    o.patience = 1;
    return o;
  }());

  // 128 reference-regime tuples, then 64 shifted ones.
  std::vector<Tuple> tuples;
  uint64_t seq = 0;
  for (int i = 0; i < 128; ++i) {
    tuples.push_back(TsTuple(seq, 50.0 + (i % 32), seq));
    ++seq;
  }
  for (int i = 0; i < 64; ++i) {
    tuples.push_back(TsTuple(seq, 200.0 + (i % 32), seq));
    ++seq;
  }

  stream::SupervisedScanOptions opts;
  opts.validator = stream::MakeDriftQuarantineValidator(detector, "x");
  stream::SupervisedScan scan(Scan(tuples), opts);
  auto out = Collect(scan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  EXPECT_TRUE(detector->drifted());
  EXPECT_GT(scan.counters().quarantined, 0u);
  EXPECT_EQ(scan.counters().emitted + scan.counters().quarantined,
            tuples.size());
  EXPECT_EQ(out->size(), scan.counters().emitted);
  for (const auto& q : scan.quarantine()) {
    EXPECT_TRUE(q.status.IsInsufficientData());
  }
}

// ---------------------------------------------------------------------
// AQL surface: WITHIN ... LATENESS ...

TEST(QueryEventTimeTest, ParsesWithinAndLateness) {
  auto q = query::Parse(
      "SELECT AVG(x) OVER (RANGE 10 ON ts WITHIN 5 LATENESS 20) AS a "
      "FROM s");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->window_agg.has_value());
  EXPECT_DOUBLE_EQ(q->window_agg->range_duration, 10.0);
  EXPECT_EQ(q->window_agg->range_column, "ts");
  EXPECT_DOUBLE_EQ(q->window_agg->within_bound, 5.0);
  EXPECT_DOUBLE_EQ(q->window_agg->lateness, 20.0);

  const std::string rendered = q->ToString();
  EXPECT_NE(rendered.find("WITHIN 5"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("LATENESS 20"), std::string::npos) << rendered;
  // The rendering reparses to the same spec.
  auto q2 = query::Parse(rendered);
  ASSERT_TRUE(q2.ok()) << rendered;
  EXPECT_DOUBLE_EQ(q2->window_agg->within_bound, 5.0);
  EXPECT_DOUBLE_EQ(q2->window_agg->lateness, 20.0);

  // Each clause is independently optional.
  auto only_within =
      query::Parse("SELECT AVG(x) OVER (RANGE 10 ON ts WITHIN 5) AS a "
                   "FROM s");
  ASSERT_TRUE(only_within.ok());
  EXPECT_DOUBLE_EQ(only_within->window_agg->lateness, 0.0);

  EXPECT_FALSE(query::Parse(
                   "SELECT AVG(x) OVER (RANGE 10 ON ts WITHIN 0) AS a "
                   "FROM s")
                   .ok());
  EXPECT_FALSE(query::Parse(
                   "SELECT AVG(x) OVER (RANGE 10 ON ts LATENESS 0) AS a "
                   "FROM s")
                   .ok());
}

TEST(QueryEventTimeTest, WithinClauseAbsorbsInBoundDisorder) {
  const auto ordered = OrderedStream(16);
  const auto disordered = RotateBlocks(ordered, 3);

  auto golden_plan = query::PlanQuery(
      "SELECT AVG(x) OVER (RANGE 4 ON ts) AS a FROM s", Scan(ordered));
  ASSERT_TRUE(golden_plan.ok()) << golden_plan.status().ToString();
  auto golden = Collect(**golden_plan);
  ASSERT_TRUE(golden.ok());

  auto plan = query::PlanQuery(
      "SELECT AVG(x) OVER (RANGE 4 ON ts WITHIN 3) AS a FROM s",
      Scan(disordered));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto out = Collect(**plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  ASSERT_EQ(out->size(), golden->size());
  const Schema& schema = (*golden_plan)->schema();
  for (size_t i = 0; i < out->size(); ++i) {
    EXPECT_EQ(serde::ToJson((*out)[i], schema),
              serde::ToJson((*golden)[i], schema))
        << "output " << i;
  }
}

TEST(QueryEventTimeTest, LatenessClauseRevisesStragglers) {
  const auto ordered = OrderedStream(16);
  const auto disordered = RotateBlocks(ordered, 3);
  const std::string sql =
      "SELECT AVG(x) OVER (RANGE 4 ON ts WITHIN 1 LATENESS 6) AS a "
      "FROM s";

  auto golden_plan = query::PlanQuery(sql, Scan(ordered));
  ASSERT_TRUE(golden_plan.ok()) << golden_plan.status().ToString();
  auto golden = Collect(**golden_plan);
  ASSERT_TRUE(golden.ok());

  auto plan = query::PlanQuery(sql, Scan(disordered));
  ASSERT_TRUE(plan.ok());
  auto out = Collect(**plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  // WITHIN 1 cannot absorb displacement 2, so stragglers reach the
  // window late and the LATENESS horizon revises them: the folds agree.
  bool any_revision = false;
  for (const Tuple& t : *out) {
    any_revision = any_revision || *t.value(2).bool_value();
  }
  EXPECT_TRUE(any_revision);
  const auto fold_golden = FoldByWindowEnd(*golden);
  const auto fold_out = FoldByWindowEnd(*out);
  ASSERT_EQ(fold_golden.size(), fold_out.size());
  for (const auto& [end, json] : fold_golden) {
    auto it = fold_out.find(end);
    ASSERT_NE(it, fold_out.end()) << "window end " << end;
    EXPECT_EQ(it->second, json) << "window end " << end;
  }
}

}  // namespace
}  // namespace ausdb
