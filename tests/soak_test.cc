// Soak tests: larger volumes through full pipelines, checking invariants
// rather than point values — guards against state corruption in window
// bookkeeping, partition maps and the annotator over long runs.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/common/fault_injector.h"
#include "src/engine/accuracy_annotator.h"
#include "src/engine/executor.h"
#include "src/engine/partitioned_window.h"
#include "src/engine/window_aggregate.h"
#include "src/serde/json_writer.h"
#include "src/stream/sources.h"
#include "src/stream/supervised_source.h"

namespace ausdb {
namespace engine {
namespace {

TEST(SoakTest, LongWindowedStreamKeepsInvariants) {
  constexpr size_t kTuples = 30000;
  constexpr size_t kWindow = 500;
  auto source = stream::MakeLearnedGaussianSource("x", kTuples, 20, 10.0,
                                                  2.0, 99);
  auto agg = WindowAggregate::Make(std::move(source), "x", "avg",
                                   {.window_size = kWindow});
  ASSERT_TRUE(agg.ok());
  AccuracyAnnotatorOptions aopts;
  aopts.confidence = 0.9;
  AccuracyAnnotator annotator(std::move(*agg), aopts);

  size_t count = 0;
  for (;;) {
    auto t = annotator.Next();
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    if (!t->has_value()) break;
    ++count;
    const auto rv = *(*t)->value(0).random_var();
    // The window average of N(10, 4)-learned items stays near 10 with
    // tiny variance; any drift indicates broken eviction bookkeeping.
    ASSERT_NEAR(rv.Mean(), 10.0, 1.0);
    ASSERT_GT(rv.Variance(), 0.0);
    ASSERT_LT(rv.Variance(), 4.0);
    ASSERT_EQ(rv.sample_size(), 20u);
    const auto& acc = (*t)->accuracy()[0];
    ASSERT_TRUE(acc.has_value());
    ASSERT_LE(acc->mean_ci->lo, rv.Mean());
    ASSERT_GE(acc->mean_ci->hi, rv.Mean());
  }
  EXPECT_EQ(count, kTuples - kWindow + 1);
}

TEST(SoakTest, ManyPartitionsStayIndependent) {
  // 200 keys interleaved; each key's window must only see its own data.
  constexpr size_t kKeys = 200;
  constexpr size_t kRounds = 50;
  Schema schema;
  ASSERT_TRUE(schema.AddField({"key", FieldType::kString}).ok());
  ASSERT_TRUE(schema.AddField({"x", FieldType::kUncertain}).ok());

  std::vector<Tuple> tuples;
  tuples.reserve(kKeys * kRounds);
  for (size_t r = 0; r < kRounds; ++r) {
    for (size_t k = 0; k < kKeys; ++k) {
      // Key k's values are exactly k (zero variance): any cross-key
      // contamination shifts a mean detectably.
      tuples.emplace_back(std::vector<expr::Value>{
          expr::Value("k" + std::to_string(k)),
          expr::Value(dist::RandomVar(
              std::make_shared<dist::GaussianDist>(
                  static_cast<double>(k), 0.0),
              10))});
    }
  }
  auto scan = std::make_unique<VectorScan>(schema, std::move(tuples));
  auto agg = PartitionedWindowAggregate::Make(std::move(scan), "key", "x",
                                              "avg", {.window_size = 8});
  ASSERT_TRUE(agg.ok());
  size_t count = 0;
  for (;;) {
    auto t = (*agg)->Next();
    ASSERT_TRUE(t.ok());
    if (!t->has_value()) break;
    ++count;
    const std::string key = *(*t)->value(0).string_value();
    const double expected = std::stod(key.substr(1));
    ASSERT_DOUBLE_EQ((*t)->value(1).random_var()->Mean(), expected);
  }
  EXPECT_EQ(count, kKeys * (kRounds - 8 + 1));
  EXPECT_EQ((*agg)->partition_count(), kKeys);
}

TEST(SoakTest, SupervisedPipelineAccountsForEveryTuple) {
  // A long run through SupervisedScan with ~1% transient pull failures
  // and a sprinkling of invalid (NaN-mean / zero-sample) tuples. The
  // invariant is exact accounting: every tuple the source fed either
  // came out, was degraded, or sits in the quarantine counters —
  // emitted + degraded + quarantined == fed, with zero silent loss.
  constexpr size_t kTuples = 50000;

  FaultSpec spec;
  spec.mode = FaultMode::kProbability;
  spec.probability = 0.01;
  auto transient = std::make_shared<FaultInjector>(spec, /*seed=*/21);

  auto rng = std::make_shared<Rng>(77);
  auto fed = std::make_shared<size_t>(0);
  Schema schema;
  ASSERT_TRUE(schema.AddField({"x", FieldType::kUncertain}).ok());
  engine::TupleGenerator gen =
      [transient, rng, fed]() -> Result<std::optional<Tuple>> {
    if (*fed >= kTuples) return std::optional<Tuple>(std::nullopt);
    // Transient link glitch before the tuple is produced: a retry pull
    // gets the tuple, so nothing is lost.
    AUSDB_RETURN_NOT_OK(transient->Tick());
    ++*fed;
    const double roll = rng->NextDouble();
    double mean = rng->NextDouble(0.0, 20.0);
    size_t n = 10;
    if (roll < 0.005) {
      mean = std::numeric_limits<double>::quiet_NaN();  // garbage reading
    } else if (roll < 0.01) {
      n = 0;  // zero-sample distribution
    }
    return std::optional<Tuple>(Tuple({expr::Value(dist::RandomVar(
        std::make_shared<dist::GaussianDist>(mean, 1.0), n))}));
  };

  stream::SupervisedScanOptions opts;
  opts.retry.max_attempts = 10;
  auto source = std::make_unique<engine::StreamScan>(schema, std::move(gen));
  stream::SupervisedScan scan(std::move(source), std::move(opts));

  auto out = Collect(scan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const auto& c = scan.counters();
  EXPECT_EQ(*fed, kTuples);
  EXPECT_GT(c.retries, 200u);  // ~1% of 50k pulls glitched
  EXPECT_GT(c.quarantined, 100u);
  EXPECT_EQ(c.degraded, 0u);  // no degradation policy configured
  EXPECT_EQ(c.gave_up, 0u);
  // Exact accounting, the headline invariant.
  EXPECT_EQ(c.emitted + c.degraded + c.quarantined, *fed);
  EXPECT_EQ(out->size(), c.emitted);
}

TEST(SoakTest, SupervisedDegradationKeepsAvailability) {
  // Same dirty stream, but with a degradation policy: nothing is
  // quarantined, every fed tuple reaches the query — at degraded
  // accuracy for the dirty ones.
  constexpr size_t kTuples = 20000;
  auto rng = std::make_shared<Rng>(78);
  auto fed = std::make_shared<size_t>(0);
  Schema schema;
  ASSERT_TRUE(schema.AddField({"x", FieldType::kUncertain}).ok());
  engine::TupleGenerator gen =
      [rng, fed]() -> Result<std::optional<Tuple>> {
    if (*fed >= kTuples) return std::optional<Tuple>(std::nullopt);
    ++*fed;
    const bool dirty = rng->NextDouble() < 0.01;
    const double mean =
        dirty ? std::numeric_limits<double>::quiet_NaN()
              : rng->NextDouble(0.0, 20.0);
    return std::optional<Tuple>(Tuple({expr::Value(dist::RandomVar(
        std::make_shared<dist::GaussianDist>(mean, 1.0), 10))}));
  };

  stream::SupervisedScanOptions opts;
  opts.degradation =
      stream::MakeWideGaussianDegradation(10.0, 400.0, /*n=*/2);
  stream::SupervisedScan scan(
      std::make_unique<engine::StreamScan>(schema, std::move(gen)),
      std::move(opts));
  auto out = Collect(scan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const auto& c = scan.counters();
  EXPECT_EQ(out->size(), kTuples);  // full availability
  EXPECT_GT(c.degraded, 100u);
  EXPECT_EQ(c.quarantined, 0u);
  EXPECT_EQ(c.emitted + c.degraded, *fed);
}

TEST(SoakTest, JsonExportSurvivesVolume) {
  auto source = stream::MakeLearnedGaussianSource("x", 2000, 10, 0.0, 1.0,
                                                  5);
  size_t total_bytes = 0;
  for (;;) {
    auto t = source->Next();
    ASSERT_TRUE(t.ok());
    if (!t->has_value()) break;
    const std::string json = serde::ToJson(**t, source->schema());
    ASSERT_EQ(json.front(), '{');
    ASSERT_EQ(json.back(), '}');
    total_bytes += json.size();
  }
  EXPECT_GT(total_bytes, 2000u * 40u);
}

}  // namespace
}  // namespace engine
}  // namespace ausdb
