#include "src/dist/distribution.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/dist/discrete.h"
#include "src/dist/empirical.h"
#include "src/dist/gaussian.h"
#include "src/dist/mixture.h"
#include "src/stats/descriptive.h"

namespace ausdb {
namespace dist {
namespace {

TEST(PointDistTest, Basics) {
  PointDist d(5.0);
  EXPECT_EQ(d.kind(), DistributionKind::kPoint);
  EXPECT_DOUBLE_EQ(d.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(d.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(4.9), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(5.0), 1.0);
  EXPECT_DOUBLE_EQ(d.ProbLess(5.0), 0.0);
  EXPECT_DOUBLE_EQ(d.ProbGreater(5.0), 0.0);
  EXPECT_DOUBLE_EQ(d.ProbGreater(4.0), 1.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(d.Sample(rng), 5.0);
  EXPECT_EQ(d.ToString(), "Point(5)");
}

TEST(GaussianDistTest, MomentsAndCdf) {
  GaussianDist g(10.0, 4.0);
  EXPECT_DOUBLE_EQ(g.Mean(), 10.0);
  EXPECT_DOUBLE_EQ(g.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(g.StdDev(), 2.0);
  EXPECT_NEAR(g.Cdf(10.0), 0.5, 1e-12);
  EXPECT_NEAR(g.Cdf(12.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(g.ProbGreater(10.0), 0.5, 1e-12);
  EXPECT_NEAR(g.ProbBetween(8.0, 12.0), 0.6826894921370859, 1e-10);
}

TEST(GaussianDistTest, QuantileInvertsCdf) {
  GaussianDist g(-3.0, 2.5);
  for (double p : {0.01, 0.2, 0.5, 0.8, 0.99}) {
    EXPECT_NEAR(g.Cdf(g.Quantile(p)), p, 1e-10);
  }
}

TEST(GaussianDistTest, PdfIntegratesToCdfDerivative) {
  GaussianDist g(0.0, 1.0);
  const double h = 1e-5;
  for (double x : {-2.0, -0.5, 0.0, 1.0, 2.5}) {
    const double numeric = (g.Cdf(x + h) - g.Cdf(x - h)) / (2.0 * h);
    EXPECT_NEAR(g.Pdf(x), numeric, 1e-6);
  }
}

TEST(GaussianDistTest, ZeroVarianceBehavesAsPoint) {
  GaussianDist g(3.0, 0.0);
  EXPECT_DOUBLE_EQ(g.Cdf(2.9), 0.0);
  EXPECT_DOUBLE_EQ(g.Cdf(3.0), 1.0);
}

TEST(GaussianDistTest, SampleMomentsMatch) {
  GaussianDist g(7.0, 9.0);
  Rng rng(99);
  stats::MomentAccumulator acc;
  for (int i = 0; i < 100000; ++i) acc.Add(g.Sample(rng));
  EXPECT_NEAR(acc.mean(), 7.0, 0.05);
  EXPECT_NEAR(acc.SampleVariance(), 9.0, 0.2);
}

TEST(GaussianDistTest, ClosedFormArithmetic) {
  GaussianDist a(1.0, 2.0), b(3.0, 4.0);
  const GaussianDist sum = AddIndependent(a, b);
  EXPECT_DOUBLE_EQ(sum.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(sum.Variance(), 6.0);
  const GaussianDist diff = SubtractIndependent(a, b);
  EXPECT_DOUBLE_EQ(diff.Mean(), -2.0);
  EXPECT_DOUBLE_EQ(diff.Variance(), 6.0);
  const GaussianDist aff = Affine(a, 2.0, 10.0);
  EXPECT_DOUBLE_EQ(aff.Mean(), 12.0);
  EXPECT_DOUBLE_EQ(aff.Variance(), 8.0);
}

TEST(DiscreteDistTest, BasicsAndMergedDuplicates) {
  auto r = DiscreteDist::Make({2.0, 1.0, 2.0}, {0.25, 0.5, 0.25});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const DiscreteDist& d = *r;
  ASSERT_EQ(d.values().size(), 2u);  // duplicates merged
  EXPECT_DOUBLE_EQ(d.values()[0], 1.0);
  EXPECT_DOUBLE_EQ(d.ProbEquals(2.0), 0.5);
  EXPECT_DOUBLE_EQ(d.Mean(), 1.5);
  EXPECT_DOUBLE_EQ(d.Variance(), 0.25);
  EXPECT_DOUBLE_EQ(d.Cdf(1.0), 0.5);
  EXPECT_DOUBLE_EQ(d.Cdf(1.5), 0.5);
  EXPECT_DOUBLE_EQ(d.ProbLess(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.ProbLess(2.0), 0.5);
}

TEST(DiscreteDistTest, RejectsBadInput) {
  EXPECT_FALSE(DiscreteDist::Make({}, {}).ok());
  EXPECT_FALSE(DiscreteDist::Make({1.0}, {0.5, 0.5}).ok());
  EXPECT_FALSE(DiscreteDist::Make({1.0, 2.0}, {0.6, 0.6}).ok());
  EXPECT_FALSE(DiscreteDist::Make({1.0, 2.0}, {-0.1, 1.1}).ok());
}

TEST(DiscreteDistTest, BernoulliFactory) {
  auto r = MakeBernoulli(0.3);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Mean(), 0.3);
  EXPECT_NEAR(r->Variance(), 0.21, 1e-12);
  EXPECT_FALSE(MakeBernoulli(1.5).ok());
}

TEST(DiscreteDistTest, SampleFrequenciesMatch) {
  auto d = DiscreteDist::Make({1.0, 2.0, 3.0}, {0.2, 0.3, 0.5});
  ASSERT_TRUE(d.ok());
  Rng rng(12);
  int counts[3] = {0, 0, 0};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<int>(d->Sample(rng)) - 1];
  }
  EXPECT_NEAR(counts[0] / double{kDraws}, 0.2, 0.01);
  EXPECT_NEAR(counts[1] / double{kDraws}, 0.3, 0.01);
  EXPECT_NEAR(counts[2] / double{kDraws}, 0.5, 0.01);
}

TEST(MixtureDistTest, MomentsFollowTotalLaws) {
  auto m = MixtureDist::Make(
      {std::make_shared<GaussianDist>(0.0, 1.0),
       std::make_shared<GaussianDist>(10.0, 4.0)},
      {0.5, 0.5});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->Mean(), 5.0);
  // E[Var] + Var[E] = 2.5 + 25 = 27.5.
  EXPECT_DOUBLE_EQ(m->Variance(), 27.5);
  // 0.5*Phi(5) + 0.5*Phi(-2.5) = 0.5031...
  EXPECT_NEAR(m->Cdf(5.0), 0.5031, 1e-4);
}

TEST(MixtureDistTest, UniformWeights) {
  auto m = MixtureDist::MakeUniform({MakePoint(1.0), MakePoint(3.0)});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->Mean(), 2.0);
  EXPECT_DOUBLE_EQ(m->Variance(), 1.0);
}

TEST(MixtureDistTest, RejectsBadInput) {
  EXPECT_FALSE(MixtureDist::Make({}, {}).ok());
  EXPECT_FALSE(MixtureDist::Make({MakePoint(0.0)}, {0.5}).ok());
  EXPECT_FALSE(
      MixtureDist::Make({MakePoint(0.0), nullptr}, {0.5, 0.5}).ok());
}

TEST(EmpiricalDistTest, MomentsAreSampleMoments) {
  auto e = EmpiricalDist::Make({3.0, 1.0, 2.0, 2.0});
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(e->Mean(), 2.0);
  EXPECT_DOUBLE_EQ(e->Variance(), 0.5);  // population variance
  EXPECT_EQ(e->size(), 4u);
  EXPECT_DOUBLE_EQ(e->Cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(e->ProbLess(2.0), 0.25);
  EXPECT_DOUBLE_EQ(e->Quantile(0.5), 2.0);
}

TEST(EmpiricalDistTest, SamplesComeFromSupport) {
  auto e = EmpiricalDist::Make({1.0, 5.0, 9.0});
  ASSERT_TRUE(e.ok());
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double x = e->Sample(rng);
    EXPECT_TRUE(x == 1.0 || x == 5.0 || x == 9.0);
  }
}

TEST(EmpiricalDistTest, RejectsEmpty) {
  EXPECT_TRUE(EmpiricalDist::Make({}).status().IsInvalidArgument());
}

TEST(DistributionTest, CloneIsDeep) {
  auto m = MixtureDist::MakeUniform(
      {std::make_shared<GaussianDist>(0.0, 1.0), MakePoint(2.0)});
  ASSERT_TRUE(m.ok());
  auto clone = m->Clone();
  EXPECT_EQ(clone->kind(), DistributionKind::kMixture);
  EXPECT_DOUBLE_EQ(clone->Mean(), m->Mean());
}

TEST(DistributionTest, KindNames) {
  EXPECT_EQ(DistributionKindToString(DistributionKind::kGaussian),
            "gaussian");
  EXPECT_EQ(DistributionKindToString(DistributionKind::kEmpirical),
            "empirical");
}

}  // namespace
}  // namespace dist
}  // namespace ausdb
