#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/dist/gaussian.h"
#include "src/dist/learner.h"
#include "src/hypothesis/coupled_tests.h"
#include "src/hypothesis/mean_tests.h"
#include "src/hypothesis/power.h"
#include "src/hypothesis/proportion_test.h"
#include "src/hypothesis/significance_predicates.h"
#include "src/stats/descriptive.h"
#include "src/stats/random_variates.h"

namespace ausdb {
namespace hypothesis {
namespace {

dist::RandomVar LearnedVar(const std::vector<double>& obs) {
  auto learned = dist::LearnGaussian(obs);
  EXPECT_TRUE(learned.ok());
  return dist::RandomVar(*learned);
}

TEST(TestTypesTest, InverseOps) {
  EXPECT_EQ(InverseOp(TestOp::kLess), TestOp::kGreater);
  EXPECT_EQ(InverseOp(TestOp::kGreater), TestOp::kLess);
  EXPECT_EQ(InverseOp(TestOp::kNotEqual), TestOp::kNotEqual);
  EXPECT_EQ(TestOpToString(TestOp::kNotEqual), "<>");
  EXPECT_EQ(TestOutcomeToString(TestOutcome::kUnsure), "UNSURE");
}

TEST(MeanTestTest, ClearlyGreaterIsAccepted) {
  // Mean 10, sd 1, n 25: testing E > 5 is overwhelming evidence.
  SampleStatistics s{10.0, 1.0, 25};
  auto r = MeanTest(s, TestOp::kGreater, 5.0, 0.05);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  // And E < 5 must not be accepted.
  auto r2 = MeanTest(s, TestOp::kLess, 5.0, 0.05);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
}

TEST(MeanTestTest, BorderlineNotSignificantWithSmallSample) {
  // Paper Example 8/9 flavor: X learned from 5 observations with mean
  // slightly above the constant should NOT be significant.
  const std::vector<double> x_obs = {82, 86, 105, 110, 119};
  const auto stats_x = stats::Summarize(x_obs);
  SampleStatistics s{stats_x.mean, stats_x.SampleStdDev(), 5};
  auto r = MeanTest(s, TestOp::kGreater, 97.0, 0.05);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);  // mean 100.4 but only n=5, huge spread
}

TEST(MeanTestTest, LargeSampleSameMeanIsSignificant) {
  // Y with the same mean but n=100 and modest spread is significant.
  SampleStatistics s{100.4, 14.7, 100};
  auto r = MeanTest(s, TestOp::kGreater, 97.0, 0.05);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(MeanTestTest, TwoSidedDetectsEitherDirection) {
  SampleStatistics low{-5.0, 1.0, 50};
  SampleStatistics high{5.0, 1.0, 50};
  EXPECT_TRUE(*MeanTest(low, TestOp::kNotEqual, 0.0, 0.05));
  EXPECT_TRUE(*MeanTest(high, TestOp::kNotEqual, 0.0, 0.05));
  SampleStatistics at{0.01, 1.0, 50};
  EXPECT_FALSE(*MeanTest(at, TestOp::kNotEqual, 0.0, 0.05));
}

TEST(MeanTestTest, PValueMonotoneInEvidence) {
  SampleStatistics weak{5.5, 3.0, 10};
  SampleStatistics strong{8.0, 3.0, 10};
  auto p_weak = MeanTestPValue(weak, TestOp::kGreater, 5.0);
  auto p_strong = MeanTestPValue(strong, TestOp::kGreater, 5.0);
  ASSERT_TRUE(p_weak.ok() && p_strong.ok());
  EXPECT_GT(*p_weak, *p_strong);
}

TEST(MeanTestTest, DegenerateZeroSpread) {
  SampleStatistics s{5.0, 0.0, 10};
  EXPECT_TRUE(*MeanTest(s, TestOp::kGreater, 4.0, 0.05));
  EXPECT_FALSE(*MeanTest(s, TestOp::kGreater, 6.0, 0.05));
}

TEST(MeanTestTest, InvalidInputs) {
  SampleStatistics s{0.0, 1.0, 1};
  EXPECT_TRUE(MeanTest(s, TestOp::kGreater, 0.0, 0.05)
                  .status()
                  .IsInsufficientData());
  SampleStatistics ok_stats{0.0, 1.0, 10};
  EXPECT_TRUE(MeanTest(ok_stats, TestOp::kGreater, 0.0, 0.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(MeanDifferenceTestTest, DetectsSeparatedMeans) {
  SampleStatistics x{10.0, 2.0, 40};
  SampleStatistics y{7.0, 2.0, 40};
  EXPECT_TRUE(*MeanDifferenceTest(x, y, TestOp::kGreater, 0.0, 0.05));
  EXPECT_FALSE(*MeanDifferenceTest(y, x, TestOp::kGreater, 0.0, 0.05));
}

TEST(MeanDifferenceTestTest, RespectsOffsetC) {
  SampleStatistics x{10.0, 1.0, 50};
  SampleStatistics y{7.0, 1.0, 50};
  // X - Y ~ 3; test difference > 5 should fail, > 1 should pass.
  EXPECT_FALSE(*MeanDifferenceTest(x, y, TestOp::kGreater, 5.0, 0.05));
  EXPECT_TRUE(*MeanDifferenceTest(x, y, TestOp::kGreater, 1.0, 0.05));
}

TEST(MeanDifferenceTestTest, WelchHandlesUnequalVariances) {
  SampleStatistics x{1.0, 10.0, 8};
  SampleStatistics y{0.0, 0.5, 200};
  // Huge variance on x with tiny n: should not be significant.
  EXPECT_FALSE(*MeanDifferenceTest(x, y, TestOp::kGreater, 0.0, 0.05));
}

TEST(ProportionTestTest, DetectsHighProportion) {
  // Observed 0.6 from n=100 against tau=0.5: z = 2.0, one-sided p ~0.023.
  EXPECT_TRUE(*ProportionTest(0.6, 100, TestOp::kGreater, 0.5, 0.05));
  EXPECT_FALSE(*ProportionTest(0.6, 100, TestOp::kGreater, 0.5, 0.01));
}

TEST(ProportionTestTest, SmallSampleNotSignificant) {
  // Same observed 0.6 but from n=5: nowhere near significant (Example 9).
  EXPECT_FALSE(*ProportionTest(0.6, 5, TestOp::kGreater, 0.5, 0.05));
}

TEST(ProportionTestTest, DegenerateTau) {
  EXPECT_TRUE(*ProportionTest(0.5, 10, TestOp::kGreater, 0.0, 0.05));
  EXPECT_FALSE(*ProportionTest(0.5, 10, TestOp::kGreater, 1.0, 0.05));
  EXPECT_TRUE(*ProportionTest(0.5, 10, TestOp::kLess, 1.0, 0.05));
}

TEST(ProportionTestTest, InvalidInputs) {
  EXPECT_TRUE(ProportionTest(1.2, 10, TestOp::kGreater, 0.5, 0.05)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ProportionTest(0.5, 0, TestOp::kGreater, 0.5, 0.05)
                  .status()
                  .IsInsufficientData());
}

TEST(SignificancePredicateTest, PredicateProbability) {
  dist::GaussianDist g(0.0, 1.0);
  EXPECT_NEAR(PredicateProbability(g, {CompareOp::kGt, 0.0}), 0.5, 1e-12);
  EXPECT_NEAR(PredicateProbability(g, {CompareOp::kLt, 0.0}), 0.5, 1e-12);
  EXPECT_NEAR(PredicateProbability(g, {CompareOp::kGe, 1.0}),
              1.0 - 0.8413447460685429, 1e-10);
  EXPECT_NEAR(PredicateProbability(g, {CompareOp::kLe, 1.0}),
              0.8413447460685429, 1e-10);
}

TEST(SignificancePredicateTest, PaperExample9MTest) {
  // X from 5 observations (mean 100.4); Y same mean from n=100 with 40%
  // of mass below 100. mTest(temp, '>', 97, 0.05): only Y satisfies.
  const std::vector<double> x_obs = {82, 86, 105, 110, 119};
  const auto x = LearnedVar(x_obs);
  auto rx = MTest(x, TestOp::kGreater, 97.0, 0.05);
  ASSERT_TRUE(rx.ok());
  EXPECT_FALSE(*rx);

  // Y: simulate 100 observations with mean ~100.4 and sd ~14.7.
  Rng rng(44);
  std::vector<double> y_obs = stats::SampleMany(
      100, [&] { return stats::SampleNormal(rng, 100.4, 10.0); });
  const auto y = LearnedVar(y_obs);
  auto ry = MTest(y, TestOp::kGreater, 97.0, 0.05);
  ASSERT_TRUE(ry.ok());
  EXPECT_TRUE(*ry);
}

TEST(SignificancePredicateTest, PaperExample9PTest) {
  // pTest("temperature > 100", 0.5, 0.05): X (n=5, ~0.6 above 100)
  // fails; Y (n=100, 0.6 above) passes.
  const std::vector<double> x_obs = {82, 86, 105, 110, 119};
  auto x_learned = dist::LearnEmpirical(x_obs);
  ASSERT_TRUE(x_learned.ok());
  dist::RandomVar x(*x_learned);
  auto rx = PTest(x, {CompareOp::kGt, 100.0}, 0.5, 0.05);
  ASSERT_TRUE(rx.ok());
  EXPECT_FALSE(*rx);

  // Y: 40 observations below 100, 60 above.
  std::vector<double> y_obs;
  for (int i = 0; i < 40; ++i) y_obs.push_back(90.0 + 0.1 * i);
  for (int i = 0; i < 60; ++i) y_obs.push_back(101.0 + 0.1 * i);
  auto y_learned = dist::LearnEmpirical(y_obs);
  ASSERT_TRUE(y_learned.ok());
  dist::RandomVar y(*y_learned);
  auto ry = PTest(y, {CompareOp::kGt, 100.0}, 0.5, 0.05);
  ASSERT_TRUE(ry.ok());
  EXPECT_TRUE(*ry);
}

TEST(SignificancePredicateTest, CertainVariableRejected) {
  const auto v = dist::RandomVar::Certain(5.0);
  EXPECT_TRUE(MTest(v, TestOp::kGreater, 0.0, 0.05)
                  .status()
                  .IsInsufficientData());
  EXPECT_TRUE(PTest(v, {CompareOp::kGt, 0.0}, 0.5, 0.05)
                  .status()
                  .IsInsufficientData());
}

TEST(CoupledTestsTest, StrongEvidenceYieldsTrue) {
  SampleStatistics s{10.0, 1.0, 30};
  auto runner = [&s](TestOp op, double alpha) {
    return MeanTest(s, op, 5.0, alpha);
  };
  auto r = CoupledTests(runner, TestOp::kGreater, 0.05, 0.05);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, TestOutcome::kTrue);
}

TEST(CoupledTestsTest, StrongCounterEvidenceYieldsFalse) {
  SampleStatistics s{1.0, 1.0, 30};
  auto runner = [&s](TestOp op, double alpha) {
    return MeanTest(s, op, 5.0, alpha);
  };
  auto r = CoupledTests(runner, TestOp::kGreater, 0.05, 0.05);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, TestOutcome::kFalse);
}

TEST(CoupledTestsTest, AmbiguousEvidenceYieldsUnsure) {
  SampleStatistics s{5.1, 3.0, 10};
  auto runner = [&s](TestOp op, double alpha) {
    return MeanTest(s, op, 5.0, alpha);
  };
  auto r = CoupledTests(runner, TestOp::kGreater, 0.05, 0.05);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, TestOutcome::kUnsure);
}

TEST(CoupledTestsTest, TwoSidedNeverReturnsFalse) {
  for (double mean : {-10.0, -0.01, 0.0, 0.01, 10.0}) {
    SampleStatistics s{mean, 2.0, 15};
    auto runner = [&s](TestOp op, double alpha) {
      return MeanTest(s, op, 0.0, alpha);
    };
    auto r = CoupledTests(runner, TestOp::kNotEqual, 0.05, 0.05);
    ASSERT_TRUE(r.ok());
    EXPECT_NE(*r, TestOutcome::kFalse) << "mean=" << mean;
  }
}

TEST(CoupledTestsTest, InvalidAlphaRejected) {
  auto runner = [](TestOp, double) -> Result<bool> { return true; };
  EXPECT_TRUE(CoupledTests(runner, TestOp::kGreater, 0.0, 0.05)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(CoupledTests(runner, TestOp::kGreater, 0.05, 1.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(CoupledMTestTest, EndToEnd) {
  Rng rng(77);
  std::vector<double> obs = stats::SampleMany(
      25, [&] { return stats::SampleNormal(rng, 10.0, 1.0); });
  const auto x = LearnedVar(obs);
  auto hi = CoupledMTest(x, TestOp::kGreater, 5.0, 0.05, 0.05);
  ASSERT_TRUE(hi.ok());
  EXPECT_EQ(*hi, TestOutcome::kTrue);
  auto lo = CoupledMTest(x, TestOp::kGreater, 15.0, 0.05, 0.05);
  ASSERT_TRUE(lo.ok());
  EXPECT_EQ(*lo, TestOutcome::kFalse);
}

TEST(CoupledMdTestTest, EndToEnd) {
  Rng rng(78);
  std::vector<double> a_obs = stats::SampleMany(
      40, [&] { return stats::SampleNormal(rng, 10.0, 1.0); });
  std::vector<double> b_obs = stats::SampleMany(
      40, [&] { return stats::SampleNormal(rng, 5.0, 1.0); });
  const auto a = LearnedVar(a_obs);
  const auto b = LearnedVar(b_obs);
  auto r = CoupledMdTest(a, b, TestOp::kGreater, 0.0, 0.05, 0.05);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, TestOutcome::kTrue);
  auto r2 = CoupledMdTest(b, a, TestOp::kGreater, 0.0, 0.05, 0.05);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, TestOutcome::kFalse);
}

TEST(CoupledPTestTest, EndToEnd) {
  std::vector<double> obs;
  for (int i = 0; i < 90; ++i) obs.push_back(10.0 + i);  // 90 above 5
  for (int i = 0; i < 10; ++i) obs.push_back(-10.0 - i);
  auto learned = dist::LearnEmpirical(obs);
  ASSERT_TRUE(learned.ok());
  dist::RandomVar x(*learned);
  auto r = CoupledPTest(x, {CompareOp::kGt, 5.0}, 0.5, 0.05, 0.05);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, TestOutcome::kTrue);
  auto r2 = CoupledPTest(x, {CompareOp::kGt, 5.0}, 0.99, 0.05, 0.05);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, TestOutcome::kFalse);
}

// Theorem 3 property, empirically: with H0 true (E(X) <= c), the rate of
// TRUE returns stays below alpha1; with H1 true, FALSE returns stay
// below alpha2.
TEST(Theorem3Property, FalsePositiveRateBounded) {
  Rng rng(99);
  constexpr int kTrials = 2000;
  int false_positives = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> obs = stats::SampleMany(
        20, [&] { return stats::SampleNormal(rng, 5.0, 2.0); });
    const auto x = LearnedVar(obs);
    auto r = CoupledMTest(x, TestOp::kGreater, 5.0, 0.05, 0.05);
    ASSERT_TRUE(r.ok());
    if (*r == TestOutcome::kTrue) ++false_positives;
  }
  EXPECT_LT(static_cast<double>(false_positives) / kTrials, 0.07);
}

TEST(Theorem3Property, FalseNegativeRateBounded) {
  Rng rng(100);
  constexpr int kTrials = 2000;
  int false_negatives = 0;
  for (int t = 0; t < kTrials; ++t) {
    // H1 clearly true: E(X) = 6 > c = 5.
    std::vector<double> obs = stats::SampleMany(
        20, [&] { return stats::SampleNormal(rng, 6.0, 2.0); });
    const auto x = LearnedVar(obs);
    auto r = CoupledMTest(x, TestOp::kGreater, 5.0, 0.05, 0.05);
    ASSERT_TRUE(r.ok());
    if (*r == TestOutcome::kFalse) ++false_negatives;
  }
  EXPECT_LT(static_cast<double>(false_negatives) / kTrials, 0.07);
}

TEST(PowerEstimateTest, TalliesOutcomes) {
  int i = 0;
  auto runner = [&i]() {
    const TestOutcome outcomes[] = {TestOutcome::kTrue, TestOutcome::kTrue,
                                    TestOutcome::kFalse,
                                    TestOutcome::kUnsure};
    return outcomes[i++ % 4];
  };
  const auto est = EstimatePower(400, runner);
  EXPECT_EQ(est.trials, 400u);
  EXPECT_DOUBLE_EQ(est.Power(), 0.5);
  EXPECT_DOUBLE_EQ(est.FalseRate(), 0.25);
  EXPECT_DOUBLE_EQ(est.UnsureRate(), 0.25);
}

TEST(PowerProperty, PowerIncreasesWithEffectSize) {
  // The Figure 5(g) shape: power of coupled mTest grows with delta.
  Rng rng(101);
  auto power_at = [&rng](double delta) {
    const double mu = 1.0;
    auto run_once = [&]() {
      std::vector<double> obs = stats::SampleMany(
          20, [&] { return stats::SampleNormal(rng, mu, 1.0); });
      auto learned = dist::LearnGaussian(obs);
      dist::RandomVar x(*learned);
      // H1 true direction: E(X) = mu > c = (1 - delta) * mu.
      auto r =
          CoupledMTest(x, TestOp::kGreater, (1.0 - delta) * mu, 0.05, 0.05);
      return r.ok() ? *r : TestOutcome::kUnsure;
    };
    return EstimatePower(600, run_once).Power();
  };
  const double p_small = power_at(0.2);
  const double p_big = power_at(1.0);
  EXPECT_GT(p_big, p_small);
  EXPECT_GT(p_big, 0.9);
}

}  // namespace
}  // namespace hypothesis
}  // namespace ausdb
