// Scripted-load equivalence harness: the governor's determinism
// contract, end to end. A governed plan driven by a scripted overload
// regime must produce identical rung-transition sequences and
// bit-identical delivered output across independent runs, across thread
// counts, and with metrics on or off — degradation decisions are pure
// functions of tuple counts and scripted signals, never wall clock.

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/memory_budget.h"
#include "src/common/thread_pool.h"
#include "src/dist/gaussian.h"
#include "src/engine/accuracy_annotator.h"
#include "src/engine/executor.h"
#include "src/engine/reorder_buffer.h"
#include "src/engine/scan.h"
#include "src/govern/governor.h"
#include "src/govern/governor_gate.h"
#include "src/govern/ladder.h"
#include "src/govern/overload_injector.h"
#include "src/govern/signals.h"
#include "src/obs/clock.h"
#include "src/obs/metrics.h"
#include "src/serde/json_writer.h"

namespace ausdb {
namespace govern {
namespace {

using engine::Collect;
using engine::FieldType;
using engine::Schema;
using engine::Tuple;
using engine::VectorScan;

Schema TsSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"ts", FieldType::kDouble}).ok());
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  return s;
}

Tuple TsTuple(double ts, double mean, size_t n = 10) {
  return Tuple({expr::Value(ts),
                expr::Value(dist::RandomVar(
                    std::make_shared<dist::GaussianDist>(mean, 1.0), n))});
}

// Event-ordered stream with deterministic bounded disorder: blocks of
// `block` tuples rotated left by one, so the reorder buffer has real
// work to do under the governed horizon.
std::vector<Tuple> DisorderedStream(size_t count, size_t block) {
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < count; ++i) {
    tuples.push_back(TsTuple(static_cast<double>(i), 10.0 * i));
  }
  for (size_t start = 0; start + block <= tuples.size(); start += block) {
    std::rotate(tuples.begin() + start, tuples.begin() + start + 1,
                tuples.begin() + start + block);
  }
  return tuples;
}

struct GovernedRun {
  std::vector<std::string> output;  ///< serde::ToJson per delivered tuple
  std::vector<RungTransition> transitions;
  engine::ReorderStats reorder;
};

/// Builds and drains the full governed plan:
///   VectorScan -> GovernorGate(scripted injector) ->
///   ReorderBuffer(governed horizon) -> AccuracyAnnotator(governed).
/// The ladder is shared across all three governed stages, as the
/// planner wires it.
GovernedRun RunGovernedPlan(size_t tuple_count, size_t threads,
                            obs::MetricRegistry* metrics) {
  auto ladder =
      std::make_shared<const LadderPolicy>(LadderPolicy::Default());

  GovernorOptions gopts;
  gopts.ladder = *ladder;
  gopts.ladder.dwell_epochs = 1;
  gopts.epoch_interval = 8;
  gopts.metrics = metrics;
  auto gate = GovernorGate::Make(
      std::make_unique<VectorScan>(TsSchema(),
                                   DisorderedStream(tuple_count, 3)),
      std::make_unique<OverloadInjector>(
          OverloadInjector::SpikeScript(2, 4, 10.0)),
      gopts);
  EXPECT_TRUE(gate.ok()) << gate.status().ToString();
  const GovernorGate* gate_view = gate->get();

  engine::ReorderBufferOptions ropts;
  ropts.lateness_bound = 4.0;
  ropts.ladder = ladder;
  ropts.metrics = metrics;
  auto rb = engine::ReorderBuffer::Make(std::move(*gate), "ts", ropts);
  EXPECT_TRUE(rb.ok()) << rb.status().ToString();
  const engine::ReorderBuffer* rb_view = rb->get();

  engine::AccuracyAnnotatorOptions aopts;
  aopts.method = accuracy::AccuracyMethod::kBootstrap;
  aopts.ladder = ladder;
  engine::AccuracyAnnotator annotator(std::move(*rb), aopts);

  GovernedRun run;
  if (threads > 1) {
    ThreadPool pool(threads);
    auto out = engine::ParallelCollect(annotator, pool);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    for (const Tuple& t : *out) {
      run.output.push_back(serde::ToJson(t, annotator.schema()));
    }
  } else {
    auto out = Collect(annotator);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    for (const Tuple& t : *out) {
      run.output.push_back(serde::ToJson(t, annotator.schema()));
    }
  }
  run.transitions = gate_view->governor().transitions();
  run.reorder = rb_view->stats();
  return run;
}

TEST(OverloadDeterminismTest, IdenticalRunsAreBitIdentical) {
  const GovernedRun a = RunGovernedPlan(64, 1, nullptr);
  const GovernedRun b = RunGovernedPlan(64, 1, nullptr);
  ASSERT_EQ(a.output.size(), 64u) << "no tuple may be dropped";
  ASSERT_FALSE(a.transitions.empty())
      << "the 10x spike must move the rung or the harness tests nothing";
  EXPECT_EQ(a.transitions, b.transitions);
  ASSERT_EQ(a.output.size(), b.output.size());
  for (size_t i = 0; i < a.output.size(); ++i) {
    ASSERT_EQ(a.output[i], b.output[i]) << "output " << i << " diverged";
  }
}

TEST(OverloadDeterminismTest, ThreadCountDoesNotChangeOutput) {
  const GovernedRun golden = RunGovernedPlan(64, 1, nullptr);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    const GovernedRun run = RunGovernedPlan(64, threads, nullptr);
    EXPECT_EQ(run.transitions, golden.transitions)
        << threads << " threads changed the rung schedule";
    ASSERT_EQ(run.output.size(), golden.output.size()) << threads;
    for (size_t i = 0; i < run.output.size(); ++i) {
      ASSERT_EQ(run.output[i], golden.output[i])
          << "output " << i << " at " << threads << " threads";
    }
  }
}

TEST(OverloadDeterminismTest, MetricsOnOrOffDoesNotChangeOutput) {
  const GovernedRun bare = RunGovernedPlan(64, 1, nullptr);
  obs::MetricRegistry registry;
  const GovernedRun observed = RunGovernedPlan(64, 1, &registry);
  EXPECT_EQ(observed.transitions, bare.transitions);
  ASSERT_EQ(observed.output.size(), bare.output.size());
  for (size_t i = 0; i < bare.output.size(); ++i) {
    ASSERT_EQ(observed.output[i], bare.output[i]) << "output " << i;
  }
  // And the metrics actually observed the run: the governor mirrored
  // rung moves, the buffer mirrored governed early releases.
  EXPECT_GE(registry
                .GetCounter("ausdb_govern_escalations_total",
                            {{"plan", "plan"}})
                ->Value(),
            1u);
}

TEST(OverloadDeterminismTest, GovernedHorizonShedsPrecisionNotData) {
  // Under the spike the deepest default rung halves the reorder
  // horizon: some releases happen before the true watermark (counted
  // early), and any straggler past the shortened horizon surfaces as a
  // late tuple — but every admitted tuple is delivered.
  const GovernedRun run = RunGovernedPlan(96, 1, nullptr);
  EXPECT_EQ(run.output.size(), 96u);
  EXPECT_EQ(run.reorder.admitted, 96u);
  EXPECT_EQ(run.reorder.shed, 0u) << "precision shedding never drops data";
  EXPECT_GT(run.reorder.early_releases, 0u)
      << "the deepest rung must actually shorten the horizon";
}

// ---------------------------------------------------------------------
// LiveSignalSource under a scripted FakeClock

TEST(OverloadDeterminismTest, LiveLatencySignalIsExactUnderFakeClock) {
  obs::FakeClock clock;
  LiveSignalSource::Bindings bindings;
  bindings.latency_slo_seconds = 0.001;
  bindings.tuples_per_epoch = 10;
  LiveSignalSource source(bindings, &clock);

  // Epoch 0 has no predecessor to diff against: latency reads 0.
  SignalSnapshot s0 = source.Snapshot(0);
  EXPECT_DOUBLE_EQ(s0.sampled_latency_seconds, 0.0);

  // 20 ms over 10 tuples = 2 ms per tuple = 2x the SLO.
  clock.AdvanceSeconds(0.020);
  SignalSnapshot s1 = source.Snapshot(1);
  EXPECT_DOUBLE_EQ(s1.sampled_latency_seconds, 0.002);
  EXPECT_DOUBLE_EQ(LatencyPressure(s1), 2.0);

  // 5 ms over 10 tuples = 0.5 ms per tuple = half the SLO.
  clock.AdvanceSeconds(0.005);
  SignalSnapshot s2 = source.Snapshot(2);
  EXPECT_DOUBLE_EQ(s2.sampled_latency_seconds, 0.0005);
  EXPECT_DOUBLE_EQ(LatencyPressure(s2), 0.5);
}

TEST(OverloadDeterminismTest, LiveQueueAndBudgetSignalsReadBindings) {
  obs::MetricRegistry registry;
  obs::Gauge* depth = registry.GetGauge("test_queue_depth");
  depth->Set(750);
  MemoryBudget budget(1000);
  ASSERT_TRUE(budget.TryReserve(400, "test").ok());

  obs::FakeClock clock;
  LiveSignalSource::Bindings bindings;
  bindings.queue_depth = depth;
  bindings.queue_capacity = 1000;
  bindings.budget = &budget;
  LiveSignalSource source(bindings, &clock);

  const SignalSnapshot snap = source.Snapshot(0);
  EXPECT_EQ(snap.queue_depth, 750u);
  EXPECT_EQ(snap.queue_capacity, 1000u);
  EXPECT_EQ(snap.memory_used_bytes, 400u);
  EXPECT_EQ(snap.memory_limit_bytes, 1000u);
  EXPECT_DOUBLE_EQ(Pressure(snap), 0.75);

  // Identically scripted gauges yield identical snapshots: the live
  // source adds no hidden state beyond the clock diff.
  obs::FakeClock clock2;
  LiveSignalSource source2(bindings, &clock2);
  const SignalSnapshot again = source2.Snapshot(0);
  EXPECT_EQ(again.queue_depth, snap.queue_depth);
  EXPECT_EQ(again.memory_used_bytes, snap.memory_used_bytes);
}

}  // namespace
}  // namespace govern
}  // namespace ausdb
