#include "src/stats/special_functions.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ausdb {
namespace stats {
namespace {

TEST(LogGammaTest, MatchesFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(3.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(LogGamma(11.0), std::log(3628800.0), 1e-10);
}

TEST(LogGammaTest, HalfIntegerValues) {
  // Gamma(1/2) = sqrt(pi); Gamma(3/2) = sqrt(pi)/2.
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-12);
  EXPECT_NEAR(LogGamma(1.5), std::log(std::sqrt(M_PI) / 2.0), 1e-12);
}

TEST(LogGammaTest, AgreesWithStdLgammaOverWideRange) {
  for (double x : {0.1, 0.3, 0.9, 1.1, 2.5, 7.7, 42.0, 123.456, 1000.0}) {
    EXPECT_NEAR(LogGamma(x), std::lgamma(x),
                1e-10 * std::max(1.0, std::abs(std::lgamma(x))))
        << "x=" << x;
  }
}

TEST(RegularizedGammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 700.0), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12)
        << "x=" << x;
  }
}

TEST(RegularizedGammaTest, PAndQSumToOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0, 50.0}) {
    for (double x : {0.1, 1.0, 3.0, 10.0, 60.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGammaTest, KnownChiSquareValue) {
  // Chi-square CDF with 9 dof at 16.919 is 0.95 (classic table value).
  EXPECT_NEAR(RegularizedGammaP(4.5, 16.919 / 2.0), 0.95, 1e-4);
}

TEST(InverseRegularizedGammaTest, RoundTrips) {
  for (double a : {0.3, 0.7, 1.0, 2.0, 4.5, 15.0, 100.0}) {
    for (double p : {0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999}) {
      const double x = InverseRegularizedGammaP(a, p);
      EXPECT_NEAR(RegularizedGammaP(a, x), p, 1e-8)
          << "a=" << a << " p=" << p;
    }
  }
}

TEST(InverseRegularizedGammaTest, ZeroAtPZero) {
  EXPECT_DOUBLE_EQ(InverseRegularizedGammaP(3.0, 0.0), 0.0);
}

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncompleteBetaTest, SymmetryIdentity) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double a : {0.5, 2.0, 7.0}) {
    for (double b : {0.5, 3.0, 11.0}) {
      for (double x : {0.2, 0.5, 0.8}) {
        EXPECT_NEAR(RegularizedIncompleteBeta(a, b, x),
                    1.0 - RegularizedIncompleteBeta(b, a, 1.0 - x), 1e-12)
            << "a=" << a << " b=" << b << " x=" << x;
      }
    }
  }
}

TEST(IncompleteBetaTest, KnownBinomialValue) {
  // P(Bin(10, 0.5) >= 6) = I_{0.5}(6, 5) = 0.376953125 exactly.
  EXPECT_NEAR(RegularizedIncompleteBeta(6.0, 5.0, 0.5), 0.376953125,
              1e-10);
}

TEST(InverseIncompleteBetaTest, RoundTrips) {
  for (double a : {0.5, 1.0, 2.0, 5.0, 20.0}) {
    for (double b : {0.5, 1.0, 3.0, 8.0, 30.0}) {
      for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
        const double x = InverseRegularizedIncompleteBeta(a, b, p);
        EXPECT_NEAR(RegularizedIncompleteBeta(a, b, x), p, 1e-8)
            << "a=" << a << " b=" << b << " p=" << p;
      }
    }
  }
}

TEST(ErfTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Erf(0.0), 0.0);
  EXPECT_NEAR(Erf(1.0), 0.8427007929497149, 1e-12);
  EXPECT_NEAR(Erfc(1.0), 1.0 - 0.8427007929497149, 1e-12);
}

TEST(ErfInvTest, RoundTrips) {
  for (double x : {-0.999, -0.9, -0.5, -0.1, 0.0, 0.1, 0.5, 0.9, 0.999,
                   0.9999999}) {
    EXPECT_NEAR(Erf(ErfInv(x)), x, 1e-12) << "x=" << x;
  }
}

TEST(ErfInvTest, KnownValue) {
  // erfinv(0.5) = 0.47693627620446987...
  EXPECT_NEAR(ErfInv(0.5), 0.47693627620446987, 1e-12);
}

}  // namespace
}  // namespace stats
}  // namespace ausdb
