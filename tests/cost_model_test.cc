// Steady-state accuracy-target cost model: unit pins on the accuracy
// and cost predictions, property tests of the chooser (monotonicity
// under target tightening, budget-only objective), and end-to-end
// determinism of the planner-wired chooser — byte-identical decision
// logs and delivered output across thread counts and metrics on/off,
// extending the overload_determinism_test harness pattern.

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/accuracy/mean_variance_ci.h"
#include "src/common/thread_pool.h"
#include "src/dist/gaussian.h"
#include "src/engine/executor.h"
#include "src/engine/scan.h"
#include "src/govern/cost_model.h"
#include "src/obs/metrics.h"
#include "src/query/planner.h"
#include "src/serde/json_writer.h"
#include "src/stats/quantiles.h"

namespace ausdb {
namespace govern {
namespace {

using engine::Collect;
using engine::FieldType;
using engine::Schema;
using engine::Tuple;
using engine::VectorScan;

// A small-provenance workload (n = 5 < kSmallSampleThreshold): the
// regime where the analytical t-interval is wide enough that large-r
// bootstrap percentile intervals genuinely beat it, so the method
// choice is a real tradeoff rather than a foregone conclusion.
WindowObservation SmallSampleObs() {
  WindowObservation obs;
  obs.cardinality = 5;
  obs.dispersion = 1.0;
  obs.histogram_bins = 0;
  return obs;
}

// ---------------------------------------------------------------------
// Prediction pins

TEST(CostModelTest, AnalyticalHalfWidthMatchesLemma2) {
  MethodSpec spec;  // analytical/merge1
  WindowObservation obs;
  obs.cardinality = 50;
  obs.dispersion = 2.0;
  // n >= 30: z critical value.
  const double z = stats::NormalUpperPercentile(0.05);
  EXPECT_NEAR(PredictHalfWidth(spec, obs, 0.9),
              z * 2.0 / std::sqrt(50.0), 1e-12);
  // n < 30: Student's t, strictly wider than z.
  obs.cardinality = 5;
  const double t = stats::StudentTUpperPercentile(0.05, 4.0);
  EXPECT_NEAR(PredictHalfWidth(spec, obs, 0.9),
              t * 2.0 / std::sqrt(5.0), 1e-12);
  EXPECT_GT(t, z);
}

TEST(CostModelTest, BootstrapHalfWidthShrinksWithResamplesTowardZLimit) {
  WindowObservation obs = SmallSampleObs();
  MethodSpec spec;
  spec.method = accuracy::AccuracyMethod::kBootstrap;
  const double z_limit = stats::NormalUpperPercentile(0.05) *
                         obs.dispersion / std::sqrt(5.0);
  double previous = std::numeric_limits<double>::max();
  for (size_t r : {20, 50, 100, 200, 1000}) {
    spec.bootstrap_resamples = r;
    const double half = PredictHalfWidth(spec, obs, 0.9);
    EXPECT_LT(half, previous) << "r=" << r;
    EXPECT_GT(half, z_limit) << "finite r keeps quantile noise";
    previous = half;
  }
}

TEST(CostModelTest, MergeSlackAppliesOnlyToHistogramWorkloads) {
  MethodSpec fine, coarse;
  coarse.histogram_merge = 4;
  WindowObservation gaussian;
  gaussian.cardinality = 40;
  gaussian.dispersion = 1.0;
  gaussian.histogram_bins = 0;
  EXPECT_DOUBLE_EQ(PredictHalfWidth(fine, gaussian, 0.9),
                   PredictHalfWidth(coarse, gaussian, 0.9));
  WindowObservation hist = gaussian;
  hist.histogram_bins = 12;
  EXPECT_NEAR(PredictHalfWidth(coarse, hist, 0.9) -
                  PredictHalfWidth(fine, hist, 0.9),
              1.0 * 3.0 / 12.0, 1e-12);
}

TEST(CostModelTest, CostOrderingAnalyticalCheapestAndMonotoneInEffort) {
  const CostTable table = CostTable::Default();
  WindowObservation obs = SmallSampleObs();
  obs.histogram_bins = 12;
  MethodSpec analytical;
  const double base = PredictCost(analytical, obs, table);
  MethodSpec boot;
  boot.method = accuracy::AccuracyMethod::kBootstrap;
  double previous = base;
  for (size_t r : {20, 50, 100, 200}) {
    boot.bootstrap_resamples = r;
    const double cost = PredictCost(boot, obs, table);
    EXPECT_GT(cost, previous) << "r=" << r;
    previous = cost;
  }
  // Coarsening reduces the per-bin term only.
  MethodSpec coarse = analytical;
  coarse.histogram_merge = 4;
  EXPECT_NEAR(base - PredictCost(coarse, obs, table),
              table.per_bin * (12.0 - 3.0), 1e-12);
}

TEST(CostModelTest, MinConformingResamplesKeepsTenPerTail) {
  EXPECT_EQ(MinConformingResamples(0.9), 200u);
  EXPECT_EQ(MinConformingResamples(0.95), 400u);
  EXPECT_EQ(MinConformingResamples(0.99), 2000u);
}

TEST(CostModelTest, TargetValidation) {
  AccuracyTarget t;
  t.epsilon = 0.5;
  EXPECT_TRUE(t.Validate().ok());
  t.epsilon = 0.0;
  t.cost_budget = 3.0;
  EXPECT_TRUE(t.Validate().ok());
  t.cost_budget = 0.0;
  EXPECT_FALSE(t.Validate().ok()) << "needs an epsilon or a budget";
  t.epsilon = -0.1;
  EXPECT_FALSE(t.Validate().ok());
  t.epsilon = 0.5;
  t.confidence = 1.0;
  EXPECT_FALSE(t.Validate().ok());
  t.confidence = 0.0;
  EXPECT_FALSE(t.Validate().ok());
}

// ---------------------------------------------------------------------
// Chooser decisions

TEST(CostModelTest, LooseTargetPicksAnalyticalAtFullResolution) {
  AccuracyTarget target;
  target.epsilon = 2.0;
  const MethodSpec spec =
      MethodChooser::Choose(target, SmallSampleObs(), ChooserOptions{});
  EXPECT_EQ(spec.method, accuracy::AccuracyMethod::kAnalytical);
  EXPECT_EQ(spec.histogram_merge, 1u);
  EXPECT_DOUBLE_EQ(spec.sample_scale, 1.0);
}

TEST(CostModelTest, TighteningTargetWalksUpTheBootstrapLadder) {
  const ChooserOptions options;
  const WindowObservation obs = SmallSampleObs();
  AccuracyTarget target;
  // At n=5, c=0.9: analytical ~0.953; the conforming bootstrap rungs
  // are r=200 ~0.840 and r=400 ~0.809 (sub-conforming r never enters).
  target.epsilon = 0.95;
  EXPECT_EQ(MethodChooser::Choose(target, obs, options).bootstrap_resamples,
            200u);
  target.epsilon = 0.85;
  EXPECT_EQ(MethodChooser::Choose(target, obs, options).bootstrap_resamples,
            200u);
  target.epsilon = 0.82;
  EXPECT_EQ(MethodChooser::Choose(target, obs, options).bootstrap_resamples,
            400u);
}

TEST(CostModelTest, InfeasibleTargetFallsBackToTightestCandidate) {
  AccuracyTarget target;
  target.epsilon = 0.1;  // nothing in the lattice reaches this at n=5
  const ChooserOptions options;
  const MethodSpec spec =
      MethodChooser::Choose(target, SmallSampleObs(), options);
  EXPECT_TRUE(spec.is_bootstrap());
  EXPECT_EQ(spec.bootstrap_resamples, 400u);
  EXPECT_EQ(spec.histogram_merge, 1u);
}

TEST(CostModelTest, BudgetOnlyTargetMaximizesAccuracyWithinBudget) {
  AccuracyTarget target;
  target.cost_budget = 30.0;  // affords r=200 (cost 24) but not r=400 (44)
  const ChooserOptions options;
  const WindowObservation obs = SmallSampleObs();
  const MethodSpec spec = MethodChooser::Choose(target, obs, options);
  EXPECT_EQ(spec.bootstrap_resamples, 200u);
  EXPECT_LE(PredictCost(spec, obs, options.table), 30.0);
  // An unaffordable budget overshoots by the minimum: the cheapest
  // candidate, not the tightest.
  target.cost_budget = 0.5;
  const MethodSpec cheap = MethodChooser::Choose(target, obs, options);
  EXPECT_EQ(cheap.method, accuracy::AccuracyMethod::kAnalytical);
}

// Property: tightening epsilon never selects a cheaper configuration or
// a smaller bootstrap sample budget, and never flips bootstrap back to
// analytical — the feasible set only shrinks.
TEST(CostModelTest, ChooserIsMonotoneUnderTargetTightening) {
  const ChooserOptions options;
  const WindowObservation obs = SmallSampleObs();
  double previous_cost = -1.0;
  size_t previous_budget = 0;
  bool seen_bootstrap = false;
  for (double eps = 2.0; eps >= 0.05; eps -= 0.005) {
    AccuracyTarget target;
    target.epsilon = eps;
    const MethodSpec spec = MethodChooser::Choose(target, obs, options);
    const double cost = PredictCost(spec, obs, options.table);
    const size_t budget =
        spec.is_bootstrap() ? spec.bootstrap_resamples : 0;
    EXPECT_GE(cost, previous_cost) << "eps=" << eps;
    EXPECT_GE(budget, previous_budget) << "eps=" << eps;
    if (seen_bootstrap) {
      EXPECT_TRUE(spec.is_bootstrap())
          << "eps=" << eps << ": tightening flipped back to analytical";
    }
    seen_bootstrap = seen_bootstrap || spec.is_bootstrap();
    previous_cost = cost;
    previous_budget = budget;
  }
  EXPECT_TRUE(seen_bootstrap) << "the sweep must cross the method boundary";
}

TEST(CostModelTest, ChoiceAlwaysComesFromTheSelectableSet) {
  const ChooserOptions options;
  for (double eps : {2.0, 0.95, 0.9, 0.85, 0.5, 0.1}) {
    for (double c : {0.8, 0.9, 0.95, 0.99}) {
      AccuracyTarget target;
      target.epsilon = eps;
      target.confidence = c;
      const std::vector<MethodSpec> selectable =
          MethodChooser::SelectableSpecs(target, options);
      const MethodSpec spec =
          MethodChooser::Choose(target, SmallSampleObs(), options);
      bool found = false;
      for (const MethodSpec& s : selectable) found = found || s == spec;
      EXPECT_TRUE(found) << "eps=" << eps << " c=" << c << " chose "
                         << spec.ToString();
    }
  }
}

TEST(CostModelTest, NonConformingResamplesAreNeverSelectable) {
  ChooserOptions options;
  AccuracyTarget target;
  target.epsilon = 0.5;
  target.confidence = 0.99;  // needs r >= 2000: beyond the lattice
  for (const MethodSpec& spec :
       MethodChooser::SelectableSpecs(target, options)) {
    EXPECT_FALSE(spec.is_bootstrap())
        << spec.ToString()
        << ": no lattice candidate conforms at 0.99 confidence";
  }
  // And the chooser's fallback honors the same exclusion — it serves
  // analytical rather than a wide-quantile bootstrap that would
  // undercover the stated confidence.
  const MethodSpec spec =
      MethodChooser::Choose(target, SmallSampleObs(), options);
  EXPECT_EQ(spec.method, accuracy::AccuracyMethod::kAnalytical);
}

// ---------------------------------------------------------------------
// Epoch recalibration

TEST(CostModelTest, RecalibrationTicksOnObserveCountsAndReChooses) {
  ChooserOptions options;
  options.epoch_interval = 4;
  options.prior.cardinality = 50;  // loose prior: analytical feasible
  options.prior.dispersion = 1.0;
  MethodChooser chooser(std::move(options));
  AccuracyTarget target;
  target.epsilon = 0.9;
  ASSERT_TRUE(chooser.SetTarget(target).ok());
  EXPECT_EQ(chooser.current().method, accuracy::AccuracyMethod::kAnalytical);

  // Stream n=5 observations: at the 4th Observe the estimate becomes
  // {5, 1.0, 0} and the target forces bootstrap r=200.
  WindowObservation obs = SmallSampleObs();
  for (int i = 0; i < 3; ++i) {
    chooser.Observe(obs);
    EXPECT_EQ(chooser.epochs(), 0u);
    EXPECT_EQ(chooser.current().method,
              accuracy::AccuracyMethod::kAnalytical)
        << "no re-choice before the epoch boundary";
  }
  chooser.Observe(obs);
  EXPECT_EQ(chooser.epochs(), 1u);
  EXPECT_EQ(chooser.estimate().cardinality, 5u);
  EXPECT_TRUE(chooser.current().is_bootstrap());
  EXPECT_EQ(chooser.current().bootstrap_resamples, 200u);

  // Steady workload: further epochs re-choose the same spec and the
  // decision log does not grow.
  const size_t log_size = chooser.decisions().size();
  for (int i = 0; i < 8; ++i) chooser.Observe(obs);
  EXPECT_EQ(chooser.epochs(), 3u);
  EXPECT_EQ(chooser.decisions().size(), log_size)
      << "unchanged decisions must not be re-logged";
}

TEST(CostModelTest, ChooserMirrorsDecisionsIntoMetrics) {
  obs::MetricRegistry registry;
  ChooserOptions options;
  options.epoch_interval = 2;
  options.metrics = &registry;
  options.metrics_label = "q1";
  MethodChooser chooser(std::move(options));
  AccuracyTarget target;
  target.epsilon = 0.9;
  ASSERT_TRUE(chooser.SetTarget(target).ok());
  WindowObservation obs = SmallSampleObs();
  chooser.Observe(obs);
  chooser.Observe(obs);  // epoch boundary: flips to bootstrap
  const obs::Labels labels = {{"plan", "q1"}};
  EXPECT_GE(
      registry.GetCounter("ausdb_cost_decisions_total", labels)->Value(),
      3u);
  EXPECT_EQ(
      registry.GetCounter("ausdb_cost_recalibrations_total", labels)->Value(),
      1u);
  EXPECT_EQ(
      registry.GetCounter("ausdb_cost_method_flips_total", labels)->Value(),
      1u);
  EXPECT_EQ(registry.GetGauge("ausdb_cost_selected_method", labels)->Value(),
            1);
  EXPECT_EQ(
      registry.GetGauge("ausdb_cost_selected_resamples", labels)->Value(),
      200);
}

// ---------------------------------------------------------------------
// End-to-end determinism through the planner (the PR 8 harness pattern)

Schema UncertainSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  return s;
}

std::vector<Tuple> SmallSampleStream(size_t count) {
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < count; ++i) {
    tuples.push_back(Tuple({expr::Value(dist::RandomVar(
        std::make_shared<dist::GaussianDist>(10.0 * i, 1.0), 5))}));
  }
  return tuples;
}

struct TargetedRun {
  std::vector<std::string> output;
  std::string decision_log;
};

/// Plans `SELECT * ... WITH ACCURACY 0.9 CONFIDENCE 0.9` over a stream
/// whose observed cardinality (n=5) disagrees with the chooser's prior
/// (n=50), so the first recalibration epoch genuinely flips the method
/// from analytical to bootstrap mid-stream.
TargetedRun RunTargetedPlan(size_t tuple_count, size_t threads,
                            obs::MetricRegistry* metrics) {
  ChooserOptions copts;
  copts.epoch_interval = 8;
  copts.metrics = metrics;
  auto chooser = std::make_shared<MethodChooser>(std::move(copts));

  query::PlannerOptions popts;
  popts.cost_model.instance = chooser;
  auto plan = query::PlanQuery(
      "SELECT * FROM s WITH ACCURACY 0.9 CONFIDENCE 0.9",
      std::make_unique<VectorScan>(UncertainSchema(),
                                   SmallSampleStream(tuple_count)),
      popts);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();

  TargetedRun run;
  if (threads > 1) {
    ThreadPool pool(threads);
    auto out = engine::ParallelCollect(**plan, pool);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    for (const Tuple& t : *out) {
      run.output.push_back(serde::ToJson(t, (*plan)->schema()));
    }
  } else {
    auto out = Collect(**plan);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    for (const Tuple& t : *out) {
      run.output.push_back(serde::ToJson(t, (*plan)->schema()));
    }
  }
  run.decision_log = chooser->DecisionLogString();
  return run;
}

TEST(CostModelDeterminismTest, RecalibrationFlipsMethodMidStream) {
  const TargetedRun run = RunTargetedPlan(64, 1, nullptr);
  ASSERT_EQ(run.output.size(), 64u);
  EXPECT_EQ(run.decision_log,
            "epoch 0: analytical/merge1\n"
            "epoch 1: bootstrap(r=200)/merge1\n")
      << "the harness must witness a real recalibration flip";
}

TEST(CostModelDeterminismTest, DecisionsAreByteIdenticalAcrossRuns) {
  const TargetedRun a = RunTargetedPlan(64, 1, nullptr);
  const TargetedRun b = RunTargetedPlan(64, 1, nullptr);
  EXPECT_EQ(a.decision_log, b.decision_log);
  ASSERT_EQ(a.output.size(), b.output.size());
  for (size_t i = 0; i < a.output.size(); ++i) {
    ASSERT_EQ(a.output[i], b.output[i]) << "output " << i;
  }
}

TEST(CostModelDeterminismTest, ThreadCountDoesNotChangeDecisions) {
  const TargetedRun golden = RunTargetedPlan(64, 1, nullptr);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    const TargetedRun run = RunTargetedPlan(64, threads, nullptr);
    EXPECT_EQ(run.decision_log, golden.decision_log)
        << threads << " threads changed the decision schedule";
    ASSERT_EQ(run.output.size(), golden.output.size());
    for (size_t i = 0; i < run.output.size(); ++i) {
      ASSERT_EQ(run.output[i], golden.output[i])
          << "output " << i << " at " << threads << " threads";
    }
  }
}

TEST(CostModelDeterminismTest, MetricsOnOrOffDoesNotChangeDecisions) {
  const TargetedRun bare = RunTargetedPlan(64, 1, nullptr);
  obs::MetricRegistry registry;
  const TargetedRun observed = RunTargetedPlan(64, 1, &registry);
  EXPECT_EQ(observed.decision_log, bare.decision_log);
  ASSERT_EQ(observed.output.size(), bare.output.size());
  for (size_t i = 0; i < bare.output.size(); ++i) {
    ASSERT_EQ(observed.output[i], bare.output[i]) << "output " << i;
  }
  EXPECT_GE(registry
                .GetCounter("ausdb_cost_recalibrations_total",
                            {{"plan", "plan"}})
                ->Value(),
            1u);
}

}  // namespace
}  // namespace govern
}  // namespace ausdb
