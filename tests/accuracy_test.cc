#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/accuracy/accuracy_info.h"
#include "src/accuracy/confidence_interval.h"
#include "src/accuracy/defacto.h"
#include "src/accuracy/mean_variance_ci.h"
#include "src/accuracy/proportion_ci.h"
#include "src/common/rng.h"
#include "src/dist/gaussian.h"
#include "src/dist/learner.h"
#include "src/stats/random_variates.h"

namespace ausdb {
namespace accuracy {
namespace {

TEST(ConfidenceIntervalTest, Basics) {
  ConfidenceInterval ci{1.0, 3.0, 0.9};
  EXPECT_DOUBLE_EQ(ci.Length(), 2.0);
  EXPECT_DOUBLE_EQ(ci.Midpoint(), 2.0);
  EXPECT_TRUE(ci.Contains(1.0));
  EXPECT_TRUE(ci.Contains(2.5));
  EXPECT_FALSE(ci.Contains(3.0001));
}

TEST(ConfidenceIntervalTest, Intersect) {
  ConfidenceInterval a{0.0, 2.0, 0.95};
  ConfidenceInterval b{1.0, 3.0, 0.90};
  const auto both = Intersect(a, b);
  EXPECT_DOUBLE_EQ(both.lo, 1.0);
  EXPECT_DOUBLE_EQ(both.hi, 2.0);
  EXPECT_DOUBLE_EQ(both.confidence, 0.90);
  // Disjoint intervals collapse to zero length.
  ConfidenceInterval c{5.0, 6.0, 0.9};
  const auto none = Intersect(a, c);
  EXPECT_DOUBLE_EQ(none.Length(), 0.0);
}

TEST(ProportionCiTest, WaldConditionDispatch) {
  EXPECT_TRUE(WaldConditionHolds(0.2, 20));    // np = 4
  EXPECT_FALSE(WaldConditionHolds(0.15, 20));  // np = 3
  EXPECT_FALSE(WaldConditionHolds(0.9, 20));   // n(1-p) = 2
}

TEST(ProportionCiTest, PaperExample2Bucket2Wald) {
  // Example 2: n=20, p2=0.2, c=0.9 -> 0.2 +/- 0.147 ~ (0.05, 0.35).
  auto ci = ProportionInterval(0.2, 20, 0.9);
  ASSERT_TRUE(ci.ok());
  EXPECT_NEAR(ci->lo, 0.053, 1e-3);
  EXPECT_NEAR(ci->hi, 0.347, 1e-3);
}

TEST(ProportionCiTest, PaperExample2Bucket1Wilson) {
  // Example 2: n=20, p1=0.15 (np=3 < 4) -> Wilson -> (0.062, 0.322).
  auto ci = ProportionInterval(0.15, 20, 0.9);
  ASSERT_TRUE(ci.ok());
  EXPECT_NEAR(ci->lo, 0.062, 1e-3);
  EXPECT_NEAR(ci->hi, 0.322, 1e-3);
}

TEST(ProportionCiTest, PaperExample2Buckets3And4) {
  auto ci3 = ProportionInterval(0.4, 20, 0.9);
  ASSERT_TRUE(ci3.ok());
  EXPECT_NEAR(ci3->lo, 0.22, 5e-3);
  EXPECT_NEAR(ci3->hi, 0.58, 5e-3);
  auto ci4 = ProportionInterval(0.25, 20, 0.9);
  ASSERT_TRUE(ci4.ok());
  EXPECT_NEAR(ci4->lo, 0.09, 5e-3);
  EXPECT_NEAR(ci4->hi, 0.41, 5e-3);
}

TEST(ProportionCiTest, ClampedToUnitInterval) {
  auto ci = WaldProportionInterval(0.99, 10, 0.99);
  ASSERT_TRUE(ci.ok());
  EXPECT_LE(ci->hi, 1.0);
  auto ci2 = WaldProportionInterval(0.01, 10, 0.99);
  ASSERT_TRUE(ci2.ok());
  EXPECT_GE(ci2->lo, 0.0);
}

TEST(ProportionCiTest, WilsonNeverDegenerateAtExtremes) {
  // At p=0 the Wald interval collapses to a point; Wilson does not.
  auto wald = WaldProportionInterval(0.0, 10, 0.9);
  auto wilson = WilsonProportionInterval(0.0, 10, 0.9);
  ASSERT_TRUE(wald.ok());
  ASSERT_TRUE(wilson.ok());
  EXPECT_DOUBLE_EQ(wald->Length(), 0.0);
  EXPECT_GT(wilson->Length(), 0.0);
}

TEST(ProportionCiTest, InvalidInputs) {
  EXPECT_TRUE(ProportionInterval(1.5, 10, 0.9).status().IsInvalidArgument());
  EXPECT_TRUE(ProportionInterval(0.5, 0, 0.9).status().IsInsufficientData());
  EXPECT_TRUE(ProportionInterval(0.5, 10, 1.0).status().IsInvalidArgument());
}

TEST(ProportionCiTest, LengthShrinksAsSqrtN) {
  auto small = ProportionInterval(0.5, 25, 0.9);
  auto large = ProportionInterval(0.5, 100, 0.9);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_NEAR(small->Length() / large->Length(), 2.0, 0.01);
}

TEST(MeanCiTest, PaperExample3Mean) {
  // Example 3: ybar=71.1, s=8.85, n=10, c=0.9 -> [65.97, 76.23].
  const std::vector<double> delays = {71, 56, 82, 74, 69, 77, 65, 78, 59,
                                      80};
  auto ci = MeanIntervalFromSample(delays, 0.9);
  ASSERT_TRUE(ci.ok());
  EXPECT_NEAR(ci->lo, 65.97, 0.02);
  EXPECT_NEAR(ci->hi, 76.23, 0.02);
}

TEST(MeanCiTest, PaperExample3Variance) {
  // Example 3: sigma1^2 = 41.66, sigma2^2 = 211.99.
  const std::vector<double> delays = {71, 56, 82, 74, 69, 77, 65, 78, 59,
                                      80};
  auto ci = VarianceIntervalFromSample(delays, 0.9);
  ASSERT_TRUE(ci.ok());
  EXPECT_NEAR(ci->lo, 41.66, 0.1);
  EXPECT_NEAR(ci->hi, 211.99, 0.5);
}

TEST(MeanCiTest, LargeSampleUsesZ) {
  // For n >= 30 the multiplier is z, not t: the interval is slightly
  // narrower than the t-based small-sample rule would give.
  auto z_ci = MeanInterval(0.0, 1.0, 30, 0.9);
  ASSERT_TRUE(z_ci.ok());
  const double z_mult = z_ci->Length() / 2.0 * std::sqrt(30.0);
  EXPECT_NEAR(z_mult, 1.6449, 1e-3);
}

TEST(MeanCiTest, SmallSampleUsesT) {
  auto t_ci = MeanInterval(0.0, 1.0, 10, 0.9);
  ASSERT_TRUE(t_ci.ok());
  const double t_mult = t_ci->Length() / 2.0 * std::sqrt(10.0);
  EXPECT_NEAR(t_mult, 1.833, 1e-3);  // t_{0.05, 9}
}

TEST(MeanCiTest, InvalidInputs) {
  EXPECT_TRUE(MeanInterval(0, 1, 1, 0.9).status().IsInsufficientData());
  EXPECT_TRUE(MeanInterval(0, -1, 10, 0.9).status().IsInvalidArgument());
  EXPECT_TRUE(MeanInterval(0, 1, 10, 0.0).status().IsInvalidArgument());
}

TEST(DeFactoTest, Lemma3MinRule) {
  // Example 4: sample sizes 15, 10, 20 -> (A+B)/2 has n = 10.
  const std::vector<size_t> sizes = {15, 10, 20};
  auto n = DeFactoSampleSize(sizes);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 10u);
}

TEST(DeFactoTest, CertainInputsIgnored) {
  const std::vector<size_t> sizes = {dist::RandomVar::kCertainSampleSize,
                                     12};
  auto n = DeFactoSampleSize(sizes);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 12u);
  const std::vector<size_t> all_certain = {
      dist::RandomVar::kCertainSampleSize};
  auto nc = DeFactoSampleSize(all_certain);
  ASSERT_TRUE(nc.ok());
  EXPECT_EQ(*nc, dist::RandomVar::kCertainSampleSize);
}

TEST(DeFactoTest, EmptyFails) {
  EXPECT_TRUE(DeFactoSampleSize({}).status().IsInvalidArgument());
}

TEST(DeFactoTest, Lemma4SampleCount) {
  // Two inputs with n1 = 2, n2 = 3: c = 3!/(3-2)! = 6.
  const std::vector<size_t> sizes = {2, 3};
  auto log_c = LogDeFactoSampleCount(sizes);
  ASSERT_TRUE(log_c.ok());
  EXPECT_NEAR(*log_c, std::log(6.0), 1e-10);
  // Single input: product over i >= 2 is empty -> c = 1.
  const std::vector<size_t> single = {7};
  EXPECT_NEAR(*LogDeFactoSampleCount(single), 0.0, 1e-12);
}

TEST(AccuracyInfoTest, PaperExample5TupleProbability) {
  // Example 5: Pr[C > 80] = 0.6 learned from n=20 -> 90% CI [0.42, 0.78].
  auto ci = TupleProbabilityInterval(0.6, 20, 0.9);
  ASSERT_TRUE(ci.ok());
  EXPECT_NEAR(ci->lo, 0.42, 5e-3);
  EXPECT_NEAR(ci->hi, 0.78, 5e-3);
}

TEST(AccuracyInfoTest, HistogramGetsPerBinIntervals) {
  Rng rng(6);
  std::vector<double> obs = stats::SampleMany(
      50, [&] { return stats::SampleNormal(rng, 0, 1); });
  auto learned = dist::LearnHistogram(obs, {});
  ASSERT_TRUE(learned.ok());
  auto info = AnalyticalAccuracy(*learned->distribution,
                                 learned->sample_size, 0.9);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->sample_size, 50u);
  EXPECT_EQ(info->method, AccuracyMethod::kAnalytical);
  EXPECT_EQ(info->bin_cis.size(), 10u);
  ASSERT_TRUE(info->mean_ci.has_value());
  ASSERT_TRUE(info->variance_ci.has_value());
  for (const auto& ci : info->bin_cis) {
    EXPECT_GE(ci.lo, 0.0);
    EXPECT_LE(ci.hi, 1.0);
    EXPECT_LE(ci.lo, ci.hi);
  }
}

TEST(AccuracyInfoTest, GaussianGetsMeanVarianceOnly) {
  dist::GaussianDist g(5.0, 4.0);
  auto info = AnalyticalAccuracy(g, 25, 0.95);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->bin_cis.empty());
  ASSERT_TRUE(info->mean_ci.has_value());
  EXPECT_TRUE(info->mean_ci->Contains(5.0));
  ASSERT_TRUE(info->variance_ci.has_value());
  EXPECT_TRUE(info->variance_ci->Contains(4.0));
}

TEST(AccuracyInfoTest, CertainVariableGetsDegenerateIntervals) {
  const auto rv = dist::RandomVar::Certain(3.0);
  auto info = AnalyticalAccuracy(rv, 0.9);
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(info->mean_ci.has_value());
  EXPECT_DOUBLE_EQ(info->mean_ci->lo, 3.0);
  EXPECT_DOUBLE_EQ(info->mean_ci->hi, 3.0);
  EXPECT_DOUBLE_EQ(info->variance_ci->Length(), 0.0);
}

TEST(AccuracyInfoTest, TooSmallSampleFails) {
  dist::GaussianDist g(0.0, 1.0);
  EXPECT_TRUE(AnalyticalAccuracy(g, 1, 0.9).status().IsInsufficientData());
}

TEST(AccuracyInfoTest, ToStringMentionsMethod) {
  dist::GaussianDist g(0.0, 1.0);
  auto info = AnalyticalAccuracy(g, 10, 0.9);
  ASSERT_TRUE(info.ok());
  EXPECT_NE(info->ToString().find("analytical"), std::string::npos);
}

// Coverage property: across many repetitions, the 90% mean interval from
// a small sample should contain the true mean roughly 90% of the time.
TEST(CoverageProperty, MeanIntervalCoversTrueMean) {
  Rng rng(123);
  constexpr int kTrials = 2000;
  int hits = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> obs = stats::SampleMany(
        20, [&] { return stats::SampleNormal(rng, 5.0, 2.0); });
    auto ci = MeanIntervalFromSample(obs, 0.9);
    ASSERT_TRUE(ci.ok());
    if (ci->Contains(5.0)) ++hits;
  }
  const double coverage = static_cast<double>(hits) / kTrials;
  EXPECT_GT(coverage, 0.87);
  EXPECT_LT(coverage, 0.93);
}

TEST(CoverageProperty, VarianceIntervalCoversTrueVariance) {
  Rng rng(321);
  constexpr int kTrials = 2000;
  int hits = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> obs = stats::SampleMany(
        20, [&] { return stats::SampleNormal(rng, 0.0, 3.0); });
    auto ci = VarianceIntervalFromSample(obs, 0.9);
    ASSERT_TRUE(ci.ok());
    if (ci->Contains(9.0)) ++hits;
  }
  const double coverage = static_cast<double>(hits) / kTrials;
  EXPECT_GT(coverage, 0.86);
  EXPECT_LT(coverage, 0.94);
}

TEST(CoverageProperty, ProportionIntervalCoversTrueProportion) {
  Rng rng(555);
  constexpr int kTrials = 3000;
  constexpr double kTrueP = 0.3;
  int hits = 0;
  for (int t = 0; t < kTrials; ++t) {
    const size_t successes = stats::SampleBinomial(rng, 40, kTrueP);
    const double p_hat = static_cast<double>(successes) / 40.0;
    auto ci = ProportionInterval(p_hat, 40, 0.9);
    ASSERT_TRUE(ci.ok());
    if (ci->Contains(kTrueP)) ++hits;
  }
  const double coverage = static_cast<double>(hits) / kTrials;
  EXPECT_GT(coverage, 0.85);
  EXPECT_LT(coverage, 0.96);
}

}  // namespace
}  // namespace accuracy
}  // namespace ausdb

// Appended: RandomVar sample-size combination helper (Lemma 3 rule).
namespace ausdb {
namespace dist {
namespace {

TEST(RandomVarTest, CombineSampleSizesIsMin) {
  EXPECT_EQ(RandomVar::CombineSampleSizes(10, 20), 10u);
  EXPECT_EQ(RandomVar::CombineSampleSizes(
                RandomVar::kCertainSampleSize, 7),
            7u);
  EXPECT_EQ(RandomVar::CombineSampleSizes(RandomVar::kCertainSampleSize,
                                          RandomVar::kCertainSampleSize),
            RandomVar::kCertainSampleSize);
}

TEST(RandomVarTest, CertainValueAccessors) {
  const auto v = RandomVar::Certain(4.5);
  EXPECT_TRUE(v.is_certain());
  EXPECT_DOUBLE_EQ(*v.certain_value(), 4.5);
  EXPECT_EQ(v.sample_size(), RandomVar::kCertainSampleSize);
  RandomVar g(std::make_shared<GaussianDist>(0.0, 1.0), 5);
  EXPECT_FALSE(g.is_certain());
  EXPECT_TRUE(g.certain_value().status().IsTypeError());
  EXPECT_NE(g.ToString().find("n=5"), std::string::npos);
}

}  // namespace
}  // namespace dist
}  // namespace ausdb
