#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "src/io/csv.h"
#include "src/io/observation_loader.h"

namespace ausdb {
namespace io {
namespace {

TEST(CsvTest, BasicParsing) {
  auto t = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(t->rows.size(), 2u);
  EXPECT_EQ(t->rows[1][2], "6");
  EXPECT_EQ(*t->ColumnIndex("b"), 1u);
  EXPECT_TRUE(t->ColumnIndex("z").status().IsNotFound());
}

TEST(CsvTest, QuotedFields) {
  auto t = ParseCsv(
      "name,note\n\"Doe, John\",\"said \"\"hi\"\"\"\nplain,\"multi\nline\"\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->rows.size(), 2u);
  EXPECT_EQ(t->rows[0][0], "Doe, John");
  EXPECT_EQ(t->rows[0][1], "said \"hi\"");
  EXPECT_EQ(t->rows[1][1], "multi\nline");
}

TEST(CsvTest, CrlfAndMissingTrailingNewline) {
  auto t = ParseCsv("a,b\r\n1,2\r\n3,4");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->rows.size(), 2u);
  EXPECT_EQ(t->rows[1][1], "4");
}

TEST(CsvTest, Errors) {
  EXPECT_TRUE(ParseCsv("a,b\n1\n").status().IsParseError());   // ragged
  EXPECT_TRUE(ParseCsv("a,b\n\"open,2\n").status().IsParseError());
  EXPECT_TRUE(ParseCsv("").status().IsParseError());           // no header
  EXPECT_TRUE(ReadCsvFile("/no/such/file.csv").status().IsNotFound());
}

TEST(CsvTest, EmptyCellsAndBlankLines) {
  auto t = ParseCsv("a,b\n,2\n\n3,\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->rows.size(), 2u);
  EXPECT_EQ(t->rows[0][0], "");
  EXPECT_EQ(t->rows[1][1], "");
}

class ObservationLoaderTest : public ::testing::Test {
 protected:
  // The paper's Figure 1 snippet: 3 observations for road 19, several
  // for road 20.
  static constexpr const char* kCsv =
      "road_id,delay\n"
      "19,56\n19,38\n19,97\n"
      "20,72\n20,59\n20,66\n20,81\n20,63\n";
};

TEST_F(ObservationLoaderTest, GroupsAndLearns) {
  auto table = ParseCsv(kCsv);
  ASSERT_TRUE(table.ok());
  ObservationLoadOptions opts;
  opts.key_column = "road_id";
  opts.value_column = "delay";
  opts.learn_as = LearnAs::kEmpirical;
  auto loaded = LoadObservations(*table, opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->tuples.size(), 2u);
  EXPECT_EQ(loaded->schema.ToString(),
            "(road_id:string, delay:uncertain)");

  const auto& road19 = loaded->tuples[0];
  EXPECT_EQ(*road19.value(0).string_value(), "19");
  const auto rv19 = *road19.value(1).random_var();
  EXPECT_EQ(rv19.sample_size(), 3u);
  EXPECT_NEAR(rv19.Mean(), (56 + 38 + 97) / 3.0, 1e-9);

  const auto rv20 = *loaded->tuples[1].value(1).random_var();
  EXPECT_EQ(rv20.sample_size(), 5u);
}

TEST_F(ObservationLoaderTest, GaussianRequiresTwoObservations) {
  auto table = ParseCsv("k,v\nonly,1\npair,1\npair,2\n");
  ASSERT_TRUE(table.ok());
  ObservationLoadOptions opts;
  opts.key_column = "k";
  opts.value_column = "v";
  opts.learn_as = LearnAs::kGaussian;
  auto loaded = LoadObservations(*table, opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->tuples.size(), 1u);
  EXPECT_EQ(*loaded->tuples[0].value(0).string_value(), "pair");
  ASSERT_EQ(loaded->skipped_keys.size(), 1u);
  EXPECT_EQ(loaded->skipped_keys[0], "only");
}

TEST_F(ObservationLoaderTest, MinObservationsFilter) {
  auto table = ParseCsv(kCsv);
  ASSERT_TRUE(table.ok());
  ObservationLoadOptions opts;
  opts.key_column = "road_id";
  opts.value_column = "delay";
  opts.learn_as = LearnAs::kEmpirical;
  opts.min_observations = 5;
  auto loaded = LoadObservations(*table, opts);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->tuples.size(), 1u);  // road 19 has only 3
  EXPECT_EQ(loaded->skipped_keys, (std::vector<std::string>{"19"}));
}

TEST_F(ObservationLoaderTest, NonNumericValueNamesRow) {
  auto table = ParseCsv("k,v\na,12\nb,oops\n");
  ASSERT_TRUE(table.ok());
  ObservationLoadOptions opts;
  opts.key_column = "k";
  opts.value_column = "v";
  auto loaded = LoadObservations(*table, opts);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsParseError());
  EXPECT_NE(loaded.status().message().find("row 3"), std::string::npos);
}

TEST_F(ObservationLoaderTest, MissingColumnsFail) {
  auto table = ParseCsv(kCsv);
  ASSERT_TRUE(table.ok());
  ObservationLoadOptions opts;
  opts.key_column = "nope";
  opts.value_column = "delay";
  EXPECT_TRUE(LoadObservations(*table, opts).status().IsNotFound());
}

TEST(CsvTest, LenientModeQuarantinesRaggedRows) {
  CsvParseOptions lenient{.strict = false};
  auto t = ParseCsv("a,b\n1,2\nbad\n3,4\n5,6,7\n8,9\n", lenient);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->rows.size(), 3u);  // good rows survive
  EXPECT_EQ(t->rows[2][1], "9");
  ASSERT_EQ(t->errors.size(), 2u);
  EXPECT_EQ(t->errors[0].record, 3u);  // "bad" (header is record 1)
  EXPECT_NE(t->errors[0].reason.find("ragged"), std::string::npos);
  EXPECT_EQ(t->errors[1].record, 5u);  // "5,6,7"
}

TEST(CsvTest, LenientModeStillFailsOnStructuralDefects) {
  CsvParseOptions lenient{.strict = false};
  // Unterminated quote: record boundaries are unknowable.
  EXPECT_TRUE(ParseCsv("a,b\n\"open,2\n", lenient).status().IsParseError());
  EXPECT_TRUE(ParseCsv("", lenient).status().IsParseError());
}

TEST(CsvTest, StrictModeUnchangedByDefault) {
  EXPECT_TRUE(ParseCsv("a,b\n1\n").status().IsParseError());
  EXPECT_TRUE(ParseCsv("a,b\n1\n", CsvParseOptions{.strict = true})
                  .status()
                  .IsParseError());
}

TEST_F(ObservationLoaderTest, LenientModeQuarantinesMalformedRows) {
  auto table = ParseCsv("k,v\na,12\nb,oops\na,13\nc,nan\na,14\n");
  ASSERT_TRUE(table.ok());
  ObservationLoadOptions opts;
  opts.key_column = "k";
  opts.value_column = "v";
  opts.learn_as = LearnAs::kEmpirical;
  opts.strict = false;
  auto loaded = LoadObservations(*table, opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // 'a' keeps its three good rows; 'b' and 'c' never materialize.
  ASSERT_EQ(loaded->tuples.size(), 1u);
  EXPECT_EQ(*loaded->tuples[0].value(0).string_value(), "a");
  EXPECT_EQ(loaded->tuples[0].value(1).random_var()->sample_size(), 3u);
  ASSERT_EQ(loaded->quarantined.size(), 2u);
  EXPECT_EQ(loaded->quarantined[0].row, 3u);
  EXPECT_EQ(loaded->quarantined[0].raw_value, "oops");
  EXPECT_TRUE(loaded->quarantined[0].status.IsParseError());
  EXPECT_EQ(loaded->quarantined[1].row, 5u);
  EXPECT_NE(loaded->quarantined[1].status.message().find("not finite"),
            std::string::npos);
}

TEST_F(ObservationLoaderTest, StrictModeStillAbortsOnMalformedRows) {
  auto table = ParseCsv("k,v\na,12\nb,oops\n");
  ASSERT_TRUE(table.ok());
  ObservationLoadOptions opts;
  opts.key_column = "k";
  opts.value_column = "v";
  ASSERT_TRUE(opts.strict);  // the default preserves seed behavior
  EXPECT_TRUE(LoadObservations(*table, opts).status().IsParseError());
}

TEST_F(ObservationLoaderTest, LenientFileLoadAccountsForEveryRow) {
  const std::string path =
      ::testing::TempDir() + "/ausdb_io_lenient_test.csv";
  {
    std::ofstream out(path);
    out << "k,v\na,1\na,2\nragged_row\na,3\nb,garbage\n";
  }
  ObservationLoadOptions opts;
  opts.key_column = "k";
  opts.value_column = "v";
  opts.learn_as = LearnAs::kEmpirical;
  opts.strict = false;
  auto loaded = LoadObservationsFromFile(path, opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->tuples.size(), 1u);
  EXPECT_EQ(loaded->tuples[0].value(1).random_var()->sample_size(), 3u);
  // Both the unparseable value and the structurally ragged record are
  // accounted for — nothing silently dropped.
  ASSERT_EQ(loaded->quarantined.size(), 2u);
  std::remove(path.c_str());
}

TEST_F(ObservationLoaderTest, RoundTripThroughFile) {
  const std::string path = ::testing::TempDir() + "/ausdb_io_test.csv";
  {
    std::ofstream out(path);
    out << kCsv;
  }
  ObservationLoadOptions opts;
  opts.key_column = "road_id";
  opts.value_column = "delay";
  opts.learn_as = LearnAs::kHistogram;
  auto loaded = LoadObservationsFromFile(path, opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->tuples.size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace io
}  // namespace ausdb
