// Disorder-equivalence harness: a seeded DisorderInjector replays the
// exact same disorder against pipeline variants (prefetch depths, thread
// counts), and the post-revision output must fold to the in-order run
// byte for byte. Plus the reorder-aware crash-point sweep: for every
// crash instant — including ones with tuples resident in the
// ReorderBuffer — the recovered pipeline's output is bit-identical.

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fault_injector.h"
#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/dist/gaussian.h"
#include "src/engine/executor.h"
#include "src/engine/partitioned_window.h"
#include "src/engine/recovery_manager.h"
#include "src/engine/reorder_buffer.h"
#include "src/engine/scan.h"
#include "src/engine/sharded_partitioned_window.h"
#include "src/engine/time_window_aggregate.h"
#include "src/serde/checkpoint.h"
#include "src/serde/json_writer.h"
#include "src/stream/async_prefetch_source.h"
#include "src/stream/disorder_injector.h"
#include "src/stream/replayable_source.h"

namespace ausdb {
namespace {

namespace fs = std::filesystem;

using engine::Collect;
using engine::FieldType;
using engine::OperatorPtr;
using engine::ReorderBuffer;
using engine::ReorderBufferOptions;
using engine::Schema;
using engine::TimeWindowAggregate;
using engine::TimeWindowOptions;
using engine::Tuple;
using engine::VectorScan;

// Fresh scratch directory per test case (removed on destruction).
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("ausdb_disorder_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// VectorScan stamps delivery-order sequences over its tuples; this scan
// preserves the sequences already set, which is the identity a
// sequence-disordered stream carries.
class PreservingScan final : public engine::Operator {
 public:
  PreservingScan(Schema schema, std::vector<Tuple> tuples)
      : schema_(std::move(schema)), tuples_(std::move(tuples)) {}
  const Schema& schema() const override { return schema_; }
  Result<std::optional<Tuple>> Next() override {
    if (pos_ >= tuples_.size()) return std::optional<Tuple>(std::nullopt);
    return std::optional<Tuple>(tuples_[pos_++]);
  }
  Status Reset() override {
    pos_ = 0;
    return Status::OK();
  }

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

Schema TsSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"ts", FieldType::kDouble}).ok());
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  return s;
}

// Event-ordered stream ts = 0..count-1 with distinct per-tuple values.
std::vector<Tuple> OrderedStream(size_t count) {
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < count; ++i) {
    Tuple t({expr::Value(static_cast<double>(i)),
             expr::Value(dist::RandomVar(
                 std::make_shared<dist::GaussianDist>(3.0 * i + 1.0, 1.0),
                 10))});
    t.set_sequence(i);
    tuples.push_back(std::move(t));
  }
  return tuples;
}

// Folds a revision-mode output stream by window end, keeping the last
// value JSON per end — the downstream consumer contract.
std::map<double, std::string> FoldByWindowEnd(
    const std::vector<Tuple>& outputs) {
  std::map<double, std::string> fold;
  for (const Tuple& t : outputs) {
    fold[*t.value(1).double_value()] = serde::ToJson(t.value(0));
  }
  return fold;
}

TimeWindowOptions RevisionOptions() {
  TimeWindowOptions two;
  two.duration = 6.0;
  two.require_ordered = false;
  two.emit_revisions = true;
  two.allowed_lateness = 20.0;
  return two;
}

// The full event-time pipeline under test: seeded disorder -> optional
// async prefetch -> bounded-lateness reorder -> revising time window.
Result<std::vector<Tuple>> RunDisordered(size_t count,
                                         const stream::DisorderSpec& spec,
                                         size_t queue_depth,
                                         uint64_t* shed_late = nullptr) {
  OperatorPtr plan = std::make_unique<VectorScan>(TsSchema(),
                                                  OrderedStream(count));
  plan = std::make_unique<stream::DisorderInjector>(std::move(plan), spec);
  if (queue_depth > 0) {
    stream::AsyncPrefetchOptions popts;
    popts.queue_depth = queue_depth;
    plan = std::make_unique<stream::AsyncPrefetchSource>(std::move(plan),
                                                         popts);
  }
  ReorderBufferOptions ro;
  // Strictly above the event-time displacement the shuffle pool can
  // cause (max_displacement positions at step 1).
  ro.lateness_bound = static_cast<double>(spec.max_displacement + 1);
  ro.dedupe_by_sequence = spec.duplicate_probability > 0.0;
  AUSDB_ASSIGN_OR_RETURN(
      std::unique_ptr<ReorderBuffer> reorder,
      ReorderBuffer::Make(std::move(plan), "ts", ro));
  plan = std::move(reorder);
  AUSDB_ASSIGN_OR_RETURN(
      std::unique_ptr<TimeWindowAggregate> agg,
      TimeWindowAggregate::Make(std::move(plan), "ts", "x", "a",
                                RevisionOptions()));
  TimeWindowAggregate* agg_raw = agg.get();
  AUSDB_ASSIGN_OR_RETURN(std::vector<Tuple> out, Collect(*agg));
  if (shed_late != nullptr) *shed_late = agg_raw->shed_late();
  return out;
}

// In-bound shuffle plus beyond-bound late injections plus duplicates,
// across prefetch queue depths {1, 2, 64}: every variant's fold equals
// the in-order run's fold byte for byte.
TEST(DisorderEquivalenceTest, FoldMatchesInOrderAcrossQueueDepths) {
  constexpr size_t kCount = 96;

  auto golden_agg = TimeWindowAggregate::Make(
      std::make_unique<VectorScan>(TsSchema(), OrderedStream(kCount)),
      "ts", "x", "a", RevisionOptions());
  ASSERT_TRUE(golden_agg.ok()) << golden_agg.status().ToString();
  auto golden = Collect(**golden_agg);
  ASSERT_TRUE(golden.ok());
  const auto golden_fold = FoldByWindowEnd(*golden);
  ASSERT_EQ(golden_fold.size(), kCount);

  stream::DisorderSpec spec;
  spec.max_displacement = 4;
  spec.shuffle_probability = 0.8;
  spec.duplicate_probability = 0.1;
  spec.late_every_k = 11;   // held beyond the reorder horizon...
  spec.late_delay = 13;     // ...but inside the 20-step lateness horizon
  spec.seed = 0xd15c0;

  for (size_t depth : {size_t{0}, size_t{1}, size_t{2}, size_t{64}}) {
    uint64_t shed = 0;
    auto out = RunDisordered(kCount, spec, depth, &shed);
    ASSERT_TRUE(out.ok()) << "depth " << depth << ": "
                          << out.status().ToString();
    EXPECT_EQ(shed, 0u) << "depth " << depth;
    const auto fold = FoldByWindowEnd(*out);
    ASSERT_EQ(fold.size(), golden_fold.size()) << "depth " << depth;
    for (const auto& [end, json] : golden_fold) {
      auto it = fold.find(end);
      ASSERT_NE(it, fold.end())
          << "depth " << depth << ": window end " << end << " missing";
      ASSERT_EQ(it->second, json)
          << "depth " << depth << ": window end " << end << " diverged";
    }
  }
}

// The same seeded disorder delivered twice produces byte-identical raw
// output streams (not just folds): the harness itself is deterministic.
TEST(DisorderEquivalenceTest, SeededDisorderIsReplayable) {
  stream::DisorderSpec spec;
  spec.max_displacement = 3;
  spec.duplicate_probability = 0.2;
  spec.seed = 7;
  auto a = RunDisordered(48, spec, /*queue_depth=*/0);
  auto b = RunDisordered(48, spec, /*queue_depth=*/2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  const Schema out_schema = [] {
    Schema s;
    EXPECT_TRUE(s.AddField({"a", FieldType::kUncertain}).ok());
    EXPECT_TRUE(s.AddField({"window_end", FieldType::kDouble}).ok());
    EXPECT_TRUE(s.AddField({"revision", FieldType::kBool}).ok());
    return s;
  }();
  for (size_t i = 0; i < a->size(); ++i) {
    ASSERT_EQ(serde::ToJson((*a)[i], out_schema),
              serde::ToJson((*b)[i], out_schema))
        << "output " << i;
  }
}

// Sharded revision mode under seeded sequence disorder, across thread
// counts {1, 4}: output is byte-identical to the serial partitioned
// operator on the same disordered stream.
TEST(DisorderEquivalenceTest, ShardedRevisionsMatchSerialAcrossThreads) {
  Schema keyed;
  ASSERT_TRUE(keyed.AddField({"key", FieldType::kString}).ok());
  ASSERT_TRUE(keyed.AddField({"x", FieldType::kUncertain}).ok());
  std::vector<Tuple> tuples;
  const std::vector<std::string> keys = {"k0", "k1", "k2", "k3"};
  for (uint64_t i = 0; i < 80; ++i) {
    Tuple t({expr::Value(keys[i % keys.size()]),
             expr::Value(dist::RandomVar(
                 std::make_shared<dist::GaussianDist>(2.0 * i, 1.0), 10))});
    t.set_sequence(i);
    tuples.push_back(std::move(t));
  }

  stream::DisorderSpec spec;
  spec.max_displacement = 6;
  spec.seed = 0xfeed;
  // Materialize the disordered delivery once so serial and sharded see
  // the identical stream.
  stream::DisorderInjector injector(
      std::make_unique<VectorScan>(keyed, tuples), spec);
  auto disordered = Collect(injector);
  ASSERT_TRUE(disordered.ok());
  ASSERT_EQ(disordered->size(), tuples.size());

  engine::WindowAggregateOptions wo;
  wo.window_size = 4;
  wo.emit_revisions = true;

  auto serial = engine::PartitionedWindowAggregate::Make(
      std::make_unique<PreservingScan>(keyed, *disordered), "key", "x",
      "a", wo);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto golden = Collect(**serial);
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  ASSERT_FALSE(golden->empty());

  const Schema& schema = (*serial)->schema();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    engine::ShardedWindowOptions so;
    so.window = wo;
    so.num_shards = 4;
    so.batch_size = 9;
    auto sharded = engine::ShardedPartitionedWindowAggregate::Make(
        std::make_unique<PreservingScan>(keyed, *disordered), "key", "x",
        "a", so);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ThreadPool pool(threads);
    auto out = engine::ParallelCollect(**sharded, pool);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ASSERT_EQ(out->size(), golden->size()) << threads << " threads";
    for (size_t i = 0; i < out->size(); ++i) {
      ASSERT_EQ(serde::ToJson((*out)[i], schema),
                serde::ToJson((*golden)[i], schema))
          << "output " << i << " at " << threads << " threads";
    }
    EXPECT_EQ((*sharded)->shed_late(), (*serial)->shed_late())
        << threads << " threads";
  }
}

// ---------------------------------------------------------------------
// Crash-point sweep over the reorder pipeline

struct SweepConfig {
  size_t count = 48;
  size_t checkpoint_every = 5;
};

// Bit-exact fingerprint of a revision-mode output tuple.
std::string Fingerprint(const Tuple& t) {
  serde::CheckpointWriter w;
  auto rv = t.value(0).random_var();
  AUSDB_CHECK(rv.ok());
  w.Double(rv->Mean());
  w.Double(rv->Variance());
  w.Uint(rv->sample_size());
  w.Double(*t.value(1).double_value());
  w.Uint(*t.value(2).bool_value() ? 1 : 0);
  w.Uint(t.sequence());
  return std::move(w).Finish();
}

// One simulated process lifetime over the event-time pipeline
//   ReplayableEventTimeSource (baked disorder) -> ReorderBuffer ->
//   TimeWindowAggregate (revision mode),
// with BOTH event-time operators registered for recovery. When the
// lifetime ends (crash or completion), `buffered_at_exit` receives the
// reorder buffer's population at that instant.
Status RunLifetime(const SweepConfig& cfg, const std::string& dir,
                   CrashPointInjector* inj,
                   std::vector<std::string>* delivered,
                   size_t* buffered_at_exit = nullptr) {
  stream::EventTimeSourceOptions sopts;
  sopts.count = cfg.count;
  sopts.max_displacement = 3;
  AUSDB_ASSIGN_OR_RETURN(auto raw_source,
                         stream::ReplayableEventTimeSource::Make(sopts));
  engine::ReplayableSource* source = raw_source.get();

  ReorderBufferOptions ro;
  ro.lateness_bound = 4.0;  // strictly covers displacement 3 at step 1
  AUSDB_ASSIGN_OR_RETURN(
      auto reorder_owned,
      ReorderBuffer::Make(std::move(raw_source), "ts", ro));
  ReorderBuffer* reorder = reorder_owned.get();

  TimeWindowOptions two;
  two.duration = 6.0;
  two.require_ordered = false;
  two.emit_revisions = true;
  two.allowed_lateness = 8.0;
  AUSDB_ASSIGN_OR_RETURN(
      auto agg,
      TimeWindowAggregate::Make(std::move(reorder_owned), "ts", "value",
                                "a", two));
  TimeWindowAggregate* root = agg.get();

  engine::RecoveryManagerOptions ropts;
  ropts.crash_points = inj;
  engine::RecoveryManager manager(dir, ropts);
  AUSDB_RETURN_NOT_OK(manager.RegisterSource("source", source));
  AUSDB_RETURN_NOT_OK(manager.RegisterOperator("reorder", reorder));
  AUSDB_RETURN_NOT_OK(manager.RegisterOperator("twagg", root));

  auto run = [&]() -> Status {
    AUSDB_ASSIGN_OR_RETURN(auto recovered, manager.Restore());
    const uint64_t checkpointed =
        recovered.has_value() ? recovered->outputs_delivered : 0;
    EXPECT_LE(checkpointed, delivered->size());
    size_t overlap = delivered->size() - checkpointed;
    uint64_t emitted = checkpointed;

    for (;;) {
      AUSDB_RETURN_NOT_OK(inj->CrashIf("pre-pull"));
      AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, root->Next());
      if (!t.has_value()) break;
      const std::string fp = Fingerprint(*t);
      if (overlap > 0) {
        EXPECT_EQ(fp, (*delivered)[delivered->size() - overlap]);
        --overlap;
        ++emitted;
        continue;
      }
      AUSDB_RETURN_NOT_OK(inj->CrashIf("pre-deliver"));
      delivered->push_back(fp);
      ++emitted;
      AUSDB_RETURN_NOT_OK(inj->CrashIf("post-deliver"));
      if (emitted % cfg.checkpoint_every == 0) {
        AUSDB_RETURN_NOT_OK(manager.Checkpoint(delivered->size()).status());
      }
    }
    return Status::OK();
  };
  const Status st = run();
  if (buffered_at_exit != nullptr) {
    *buffered_at_exit = reorder->buffered_count();
  }
  return st;
}

std::vector<std::string> RunToCompletion(const SweepConfig& cfg,
                                         const std::string& dir,
                                         CrashPointInjector* inj,
                                         bool* crashed_with_buffered =
                                             nullptr) {
  std::vector<std::string> delivered;
  for (size_t lifetime = 0;; ++lifetime) {
    EXPECT_LT(lifetime, 3u) << "pipeline failed to complete after crash";
    if (lifetime >= 3) break;
    size_t buffered = 0;
    const Status st = RunLifetime(cfg, dir, inj, &delivered, &buffered);
    if (st.ok()) break;
    if (crashed_with_buffered != nullptr && buffered > 0) {
      *crashed_with_buffered = true;
    }
    EXPECT_TRUE(inj->fired()) << st.ToString();
    EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  }
  return delivered;
}

TEST(ReorderCrashSweepTest, EveryCrashPointRecoversBitIdentically) {
  SweepConfig cfg;

  ScratchDir golden_dir("golden");
  CrashPointInjector counter(CrashPointInjector::kNever);
  const std::vector<std::string> golden =
      RunToCompletion(cfg, golden_dir.path(), &counter);
  ASSERT_FALSE(golden.empty());
  const size_t total_sites = counter.sites_visited();
  ASSERT_GT(total_sites, golden.size() * 2)
      << "sweep must cover pulls, deliveries and checkpoint writes";

  // The event-time guarantee of the golden run itself: ends are emitted
  // watermark-monotonically, so the fold has one entry per input.
  bool crashed_with_buffered = false;
  for (size_t crash_at = 1; crash_at <= total_sites; ++crash_at) {
    ScratchDir dir("at_" + std::to_string(crash_at));
    CrashPointInjector inj(crash_at);
    const std::vector<std::string> delivered =
        RunToCompletion(cfg, dir.path(), &inj, &crashed_with_buffered);
    ASSERT_TRUE(inj.fired())
        << "crash point " << crash_at << " was never reached";
    ASSERT_EQ(delivered.size(), golden.size())
        << "crash at site " << crash_at << " ('" << inj.fired_site()
        << "')";
    for (size_t i = 0; i < golden.size(); ++i) {
      ASSERT_EQ(delivered[i], golden[i])
          << "output " << i << " diverged after crash at site "
          << crash_at << " ('" << inj.fired_site() << "')";
    }
  }
  // The sweep is only meaningful if some crash interrupted the pipeline
  // while the reorder buffer actually held tuples.
  EXPECT_TRUE(crashed_with_buffered)
      << "no crash point hit a non-empty reorder buffer; the sweep "
         "never exercised checkpoint v4's new surface";
}

}  // namespace
}  // namespace ausdb
