#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/common/logging.h"
#include "src/obs/clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ausdb {
namespace obs {
namespace {

// ---------------------------------------------------------------------
// Counter / Gauge

TEST(ObsCounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(ObsCounterTest, ConcurrentIncrementsLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ObsGaugeTest, SetAddSub) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(10);
  g.Add(5);
  g.Sub(7);
  EXPECT_EQ(g.Value(), 8);
  g.Sub(20);
  EXPECT_EQ(g.Value(), -12);  // signed: dips below zero representable
}

// ---------------------------------------------------------------------
// Histogram

TEST(ObsHistogramTest, UnderflowBoundaryAndOverflowBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  h.Record(0.5);    // <= 1.0 -> bucket 0 (underflow)
  h.Record(1.0);    // == boundary: le semantics -> bucket 0
  h.Record(5.0);    // (1, 10]   -> bucket 1
  h.Record(10.0);   // boundary  -> bucket 1
  h.Record(99.0);   // (10, 100] -> bucket 2
  h.Record(100.5);  // > 100     -> overflow bucket
  h.Record(1e9);    // far overflow

  const std::vector<uint64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 boundaries + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 2u);
  EXPECT_EQ(h.Count(), 7u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 5.0 + 10.0 + 99.0 + 100.5 + 1e9);
}

TEST(ObsHistogramTest, NegativeAndZeroValuesLandInUnderflow) {
  Histogram h({1.0});
  h.Record(0.0);
  h.Record(-5.0);
  const std::vector<uint64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 0u);
}

TEST(ObsHistogramTest, ConcurrentRecordLosesNoIncrements) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Histogram h(DefaultLatencySecondsBoundaries());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Spread across buckets so contention hits several atomics.
        h.Record(1e-7 * (1 + ((t + i) % 5)) * 100.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_sum = 0;
  for (uint64_t b : h.BucketCounts()) bucket_sum += b;
  EXPECT_EQ(bucket_sum, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ObsHistogramTest, SnapshotCountEqualsBucketSumUnderConcurrency) {
  // Count() must be derived from the same bucket array the snapshot
  // reports, so `sum of buckets == count` holds even while writers run.
  Histogram h({1.0, 2.0});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      h.Record(static_cast<double>(i++ % 4));
    }
  });
  for (int round = 0; round < 200; ++round) {
    const std::vector<uint64_t> buckets = h.BucketCounts();
    uint64_t sum = 0;
    for (uint64_t b : buckets) sum += b;
    // A Count() read after the bucket snapshot can only be >=; the
    // invariant under test is internal consistency of one snapshot,
    // which the registry snapshot path (below) relies on.
    EXPECT_LE(sum, h.Count());
  }
  stop.store(true);
  writer.join();
}

// ---------------------------------------------------------------------
// Registry

TEST(ObsRegistryTest, SameNameAndLabelsResolveToSameMetric) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("ausdb_test_total", {{"k", "v"}});
  Counter* b = reg.GetCounter("ausdb_test_total", {{"k", "v"}});
  EXPECT_EQ(a, b);
  Counter* other = reg.GetCounter("ausdb_test_total", {{"k", "w"}});
  EXPECT_NE(a, other);
}

TEST(ObsRegistryTest, LabelOrderDoesNotSplitMetrics) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("ausdb_test_total",
                              {{"a", "1"}, {"b", "2"}});
  Counter* b = reg.GetCounter("ausdb_test_total",
                              {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(ObsRegistryTest, SnapshotIsSortedAndConsistent) {
  MetricRegistry reg;
  reg.GetCounter("ausdb_z_total", {}, "z help")->Increment(3);
  reg.GetCounter("ausdb_a_total", {{"s", "x"}})->Increment(1);
  reg.GetGauge("ausdb_depth", {})->Set(7);
  Histogram* h =
      reg.GetHistogram("ausdb_lat_seconds", {}, {0.1, 1.0}, "lat");
  h->Record(0.05);
  h->Record(0.5);
  h->Record(2.0);

  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].key.name, "ausdb_a_total");
  EXPECT_EQ(snap.counters[1].key.name, "ausdb_z_total");
  EXPECT_EQ(snap.counters[1].value, 3u);
  EXPECT_EQ(snap.counters[1].help, "z help");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 7);
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSample& hs = snap.histograms[0];
  ASSERT_EQ(hs.buckets.size(), 3u);
  EXPECT_EQ(hs.buckets[0], 1u);
  EXPECT_EQ(hs.buckets[1], 1u);
  EXPECT_EQ(hs.buckets[2], 1u);
  EXPECT_EQ(hs.count, 3u);
  uint64_t bucket_sum = 0;
  for (uint64_t b : hs.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, hs.count);
  EXPECT_DOUBLE_EQ(hs.sum, 0.05 + 0.5 + 2.0);
}

TEST(ObsRegistryTest, HelpComesFromFirstRegistrationOfFamily) {
  MetricRegistry reg;
  reg.GetCounter("ausdb_family_total", {{"i", "1"}}, "the help");
  reg.GetCounter("ausdb_family_total", {{"i", "2"}}, "ignored");
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].help, "the help");
  EXPECT_EQ(snap.counters[1].help, "the help");
}

TEST(ObsRegistryTest, ConcurrentRegistrationAndWrites) {
  MetricRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) {
        reg.GetCounter("ausdb_shared_total")->Increment();
        reg.GetGauge("ausdb_shared_depth")->Set(i);
        reg.GetHistogram("ausdb_shared_seconds")->Record(1e-4);
      }
    });
  }
  for (auto& th : threads) th.join();
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 8000u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 8000u);
}

// ---------------------------------------------------------------------
// Clock

TEST(ObsClockTest, FakeClockAdvances) {
  FakeClock clock;
  EXPECT_EQ(clock.NowNanos(), 0u);
  clock.AdvanceNanos(123);
  EXPECT_EQ(clock.NowNanos(), 123u);
  clock.AdvanceSeconds(2.0);
  EXPECT_EQ(clock.NowNanos(), 123u + 2000000000u);
  clock.SetNanos(5);
  EXPECT_EQ(clock.NowNanos(), 5u);
}

TEST(ObsClockTest, SteadyClockIsMonotonic) {
  const Clock* clock = SteadyClock::Instance();
  const uint64_t a = clock->NowNanos();
  const uint64_t b = clock->NowNanos();
  EXPECT_LE(a, b);
}

// ---------------------------------------------------------------------
// Trace

TEST(ObsTraceTest, ScopedSpanRecordsFakeClockDuration) {
  FakeClock clock;
  TraceBuffer buffer;
  {
    ScopedSpan span(&buffer, &clock, "work");
    clock.AdvanceSeconds(0.25);
  }
  const std::vector<SpanRecord> spans = buffer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_DOUBLE_EQ(spans[0].DurationSeconds(), 0.25);
}

TEST(ObsTraceTest, NullBufferDisablesSpan) {
  FakeClock clock;
  ScopedSpan span(nullptr, &clock, "ignored");  // must not crash
  clock.AdvanceNanos(10);
}

TEST(ObsTraceTest, RingKeepsNewestSpansOldestFirst) {
  FakeClock clock;
  TraceBuffer buffer(3);
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span(&buffer, &clock, "span" + std::to_string(i));
    clock.AdvanceNanos(1);
  }
  EXPECT_EQ(buffer.recorded(), 5u);
  const std::vector<SpanRecord> spans = buffer.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "span2");
  EXPECT_EQ(spans[1].name, "span3");
  EXPECT_EQ(spans[2].name, "span4");
}

TEST(ObsTraceTest, SnapshotExposesDroppedSpansAcrossWraparound) {
  FakeClock clock;
  TraceBuffer buffer(3);
  // Before overflow: dropped stays zero at every fill level.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(buffer.dropped(), 0u);
    ScopedSpan span(&buffer, &clock, "warm" + std::to_string(i));
    clock.AdvanceNanos(1);
  }
  EXPECT_EQ(buffer.dropped(), 0u);
  // Two more spans overwrite the two oldest: overflow is loud.
  for (int i = 0; i < 2; ++i) {
    ScopedSpan span(&buffer, &clock, "wrap" + std::to_string(i));
    clock.AdvanceNanos(1);
  }
  EXPECT_EQ(buffer.dropped(), 2u);

  // Snapshot(): counters and spans are one coherent read — the span
  // list, oldest first, accounts for exactly recorded - dropped spans.
  const TraceSnapshot snap = buffer.Snapshot();
  EXPECT_EQ(snap.recorded, 5u);
  EXPECT_EQ(snap.dropped, 2u);
  EXPECT_EQ(snap.capacity, 3u);
  ASSERT_EQ(snap.spans.size(), 3u);
  EXPECT_EQ(snap.recorded - snap.dropped, snap.spans.size());
  EXPECT_EQ(snap.spans[0].name, "warm2");
  EXPECT_EQ(snap.spans[1].name, "wrap0");
  EXPECT_EQ(snap.spans[2].name, "wrap1");
  // Oldest-first also by time: start stamps are non-decreasing.
  EXPECT_LE(snap.spans[0].start_nanos, snap.spans[1].start_nanos);
  EXPECT_LE(snap.spans[1].start_nanos, snap.spans[2].start_nanos);
}

// ---------------------------------------------------------------------
// Logging

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    logging::SetSink([this](logging::Level level, const char*, int,
                            const std::string& message) {
      captured_.push_back(std::string(logging::LevelName(level)) + ": " +
                          message);
    });
  }
  void TearDown() override {
    logging::SetSink(nullptr);
    logging::SetMinLevel(logging::Level::kWarn);
  }
  std::vector<std::string> captured_;
};

TEST_F(LoggingTest, LevelsGateEmission) {
  logging::SetMinLevel(logging::Level::kWarn);
  AUSDB_LOG(INFO) << "hidden";
  AUSDB_LOG(WARN) << "warned";
  AUSDB_LOG(ERROR) << "errored";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0], "WARN: warned");
  EXPECT_EQ(captured_[1], "ERROR: errored");

  logging::SetMinLevel(logging::Level::kInfo);
  AUSDB_LOG(INFO) << "now visible";
  ASSERT_EQ(captured_.size(), 3u);
  EXPECT_EQ(captured_[2], "INFO: now visible");

  logging::SetMinLevel(logging::Level::kOff);
  AUSDB_LOG(ERROR) << "suppressed";
  EXPECT_EQ(captured_.size(), 3u);
}

TEST_F(LoggingTest, DisabledLevelDoesNotEvaluateArguments) {
  logging::SetMinLevel(logging::Level::kWarn);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("costly");
  };
  AUSDB_LOG(INFO) << expensive();
  EXPECT_EQ(evaluations, 0);
  AUSDB_LOG(WARN) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, MacroIsSafeInUnbracedIf) {
  logging::SetMinLevel(logging::Level::kInfo);
  const bool flag = true;
  if (flag)
    AUSDB_LOG(INFO) << "then-branch";
  else
    AUSDB_LOG(INFO) << "else-branch";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0], "INFO: then-branch");
}

}  // namespace
}  // namespace obs
}  // namespace ausdb
