// Overload governor layer: the degradation ladder and its validation,
// pressure signals, the epoch-driven governor state machine (hysteresis,
// accuracy floor, admission control, circuit breaker), the scripted
// overload injector, precision shedding (effective sample sizes,
// histogram coarsening, honest re-annotation), per-plan memory budgets,
// and the GovernorGate operator.

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/memory_budget.h"
#include "src/common/retry.h"
#include "src/dist/gaussian.h"
#include "src/dist/histogram.h"
#include "src/engine/accuracy_annotator.h"
#include "src/engine/executor.h"
#include "src/engine/scan.h"
#include "src/govern/governor.h"
#include "src/govern/governor_gate.h"
#include "src/govern/ladder.h"
#include "src/govern/overload_injector.h"
#include "src/govern/precision.h"
#include "src/govern/signals.h"
#include "src/obs/metrics.h"
#include "src/query/planner.h"
#include "src/serde/checkpoint.h"
#include "src/serde/tuple_codec.h"
#include "src/stream/supervised_source.h"

namespace ausdb {
namespace govern {
namespace {

using engine::Collect;
using engine::FieldType;
using engine::Schema;
using engine::Tuple;
using engine::VectorScan;

Schema XSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  return s;
}

Tuple XTuple(double mean, size_t n = 100) {
  return Tuple({expr::Value(dist::RandomVar(
      std::make_shared<dist::GaussianDist>(mean, 1.0), n))});
}

std::vector<Tuple> XStream(size_t count) {
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < count; ++i) {
    tuples.push_back(XTuple(static_cast<double>(i)));
  }
  return tuples;
}

SignalSnapshot QueueSnapshot(double fill, uint64_t epoch = 0) {
  SignalSnapshot snap;
  snap.epoch = epoch;
  snap.queue_capacity = 1000;
  snap.queue_depth = static_cast<size_t>(fill * 1000);
  return snap;
}

// ---------------------------------------------------------------------
// LadderPolicy

TEST(LadderPolicyTest, DefaultValidatesAndIsMonotone) {
  const LadderPolicy policy = LadderPolicy::Default();
  EXPECT_TRUE(policy.Validate().ok());
  ASSERT_GE(policy.rungs.size(), 2u);
  EXPECT_TRUE(policy.rungs.front().IsNeutral());
  for (size_t i = 1; i < policy.rungs.size(); ++i) {
    EXPECT_LE(policy.rungs[i].sample_scale,
              policy.rungs[i - 1].sample_scale);
    EXPECT_GE(policy.rungs[i].histogram_merge,
              policy.rungs[i - 1].histogram_merge);
  }
}

TEST(LadderPolicyTest, RejectsNonNeutralRungZero) {
  LadderPolicy policy = LadderPolicy::Default();
  policy.rungs[0].sample_scale = 0.5;
  const Status st = policy.Validate();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(LadderPolicyTest, RejectsNonMonotoneShedding) {
  LadderPolicy policy = LadderPolicy::Default();
  // Rung 2 sheds less sampling effort than rung 1: not a ladder.
  policy.rungs[1].sample_scale = 0.25;
  policy.rungs[2].sample_scale = 0.75;
  EXPECT_TRUE(policy.Validate().IsInvalidArgument());
}

TEST(LadderPolicyTest, RejectsInvertedHysteresisBand) {
  LadderPolicy policy = LadderPolicy::Default();
  policy.escalate_at = 0.4;
  policy.relax_at = 0.6;
  EXPECT_TRUE(policy.Validate().IsInvalidArgument());
}

TEST(LadderPolicyTest, AccuracyFloorBoundsUsableRungs) {
  LadderPolicy policy = LadderPolicy::Default();
  // Floor at 0.5: the 0.25-scale rungs are out of bounds.
  policy.accuracy_floor = 0.5;
  ASSERT_TRUE(policy.Validate().ok());
  EXPECT_EQ(policy.MaxUsableRung(), 2u);
  policy.accuracy_floor = 0.2;
  EXPECT_EQ(policy.MaxUsableRung(), 4u);
  policy.accuracy_floor = 1.0;
  EXPECT_EQ(policy.MaxUsableRung(), 0u);
}

TEST(LadderPolicyTest, ClassifyPressureUsesHysteresisBand) {
  const LadderPolicy policy = LadderPolicy::Default();  // 0.85 / 0.45
  EXPECT_EQ(ClassifyPressure(policy, 0.9), LadderMove::kEscalate);
  EXPECT_EQ(ClassifyPressure(policy, 0.85), LadderMove::kEscalate);
  EXPECT_EQ(ClassifyPressure(policy, 0.6), LadderMove::kHold);
  EXPECT_EQ(ClassifyPressure(policy, 0.45), LadderMove::kRelax);
  EXPECT_EQ(ClassifyPressure(policy, 0.0), LadderMove::kRelax);
}

// ---------------------------------------------------------------------
// Pressure signals

TEST(PressureTest, UnboundComponentsReadZero) {
  const SignalSnapshot empty;
  EXPECT_DOUBLE_EQ(QueuePressure(empty), 0.0);
  EXPECT_DOUBLE_EQ(MemoryPressure(empty), 0.0);
  EXPECT_DOUBLE_EQ(LatencyPressure(empty), 0.0);
  EXPECT_DOUBLE_EQ(Pressure(empty), 0.0);
}

TEST(PressureTest, OverallPressureIsTheWorstComponent) {
  SignalSnapshot snap;
  snap.queue_capacity = 100;
  snap.queue_depth = 30;
  snap.memory_limit_bytes = 1000;
  snap.memory_used_bytes = 900;
  snap.latency_slo_seconds = 0.010;
  snap.sampled_latency_seconds = 0.005;
  EXPECT_DOUBLE_EQ(QueuePressure(snap), 0.3);
  EXPECT_DOUBLE_EQ(MemoryPressure(snap), 0.9);
  EXPECT_DOUBLE_EQ(LatencyPressure(snap), 0.5);
  EXPECT_DOUBLE_EQ(Pressure(snap), 0.9);
}

TEST(PressureTest, LatencyPressureClampsAtTwiceSlo) {
  SignalSnapshot snap;
  snap.latency_slo_seconds = 0.001;
  snap.sampled_latency_seconds = 1.0;  // 1000x the SLO
  EXPECT_DOUBLE_EQ(LatencyPressure(snap), 2.0);
}

// ---------------------------------------------------------------------
// MemoryBudget

TEST(MemoryBudgetTest, ReserveReleaseAccounting) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.TryReserve(400, "reorder").ok());
  EXPECT_TRUE(budget.TryReserve(600, "window").ok());
  EXPECT_EQ(budget.used(), 1000u);
  EXPECT_DOUBLE_EQ(budget.FillFraction(), 1.0);
  budget.Release(600);
  EXPECT_EQ(budget.used(), 400u);
  budget.Release(1000000);  // over-release clamps, never wraps
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryBudgetTest, RefusesPastLimitLoudly) {
  MemoryBudget budget(1000);
  ASSERT_TRUE(budget.TryReserve(900, "reorder").ok());
  const Status st = budget.TryReserve(200, "reorder");
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_NE(st.message().find("reorder"), std::string::npos)
      << "refusal must name the component: " << st.message();
  // A refused reservation reserves nothing.
  EXPECT_EQ(budget.used(), 900u);
  EXPECT_EQ(budget.rejections(), 1u);
  // The failure is fatal for the retry layer: a budget does not free
  // itself, so retrying cannot help.
  EXPECT_EQ(ClassifyStatus(st), FailureClass::kFatal);
}

TEST(MemoryBudgetTest, ZeroLimitMeansUnlimitedAccounting) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.TryReserve(1ull << 40, "anything").ok());
  EXPECT_DOUBLE_EQ(budget.FillFraction(), 0.0);
}

TEST(MemoryBudgetTest, MirrorsIntoRegistryMetrics) {
  obs::MetricRegistry registry;
  MemoryBudget budget(500);
  budget.RegisterMetrics(registry, "plan7");
  ASSERT_TRUE(budget.TryReserve(200, "reorder").ok());
  EXPECT_FALSE(budget.TryReserve(400, "reorder").ok());
  const obs::Labels labels = {{"plan", "plan7"}};
  EXPECT_EQ(registry
                .GetGauge("ausdb_common_memory_budget_used_bytes", labels)
                ->Value(),
            200);
  EXPECT_EQ(registry
                .GetGauge("ausdb_common_memory_budget_limit_bytes", labels)
                ->Value(),
            500);
  EXPECT_EQ(
      registry
          .GetCounter("ausdb_common_memory_budget_rejections_total", labels)
          ->Value(),
      1u);
}

// ---------------------------------------------------------------------
// OverloadInjector

TEST(OverloadInjectorTest, SnapshotIsAPureFunctionOfEpoch) {
  OverloadInjector injector(OverloadInjector::SpikeScript(4, 4));
  for (uint64_t epoch : {0ull, 3ull, 5ull, 11ull, 100ull}) {
    const SignalSnapshot a = injector.Snapshot(epoch);
    const SignalSnapshot b = injector.Snapshot(epoch);
    EXPECT_EQ(a.queue_depth, b.queue_depth);
    EXPECT_EQ(a.backpressure_events, b.backpressure_events);
    EXPECT_EQ(a.shed_tuples, b.shed_tuples);
    EXPECT_DOUBLE_EQ(a.sampled_latency_seconds, b.sampled_latency_seconds);
  }
}

TEST(OverloadInjectorTest, PhasesAdvanceAndLastPhaseHolds) {
  OverloadInjector injector(OverloadInjector::SpikeScript(4, 4, 10.0));
  EXPECT_EQ(injector.scripted_epochs(), 12u);
  const double calm = Pressure(injector.Snapshot(0));
  const double spike = Pressure(injector.Snapshot(5));
  const double after = Pressure(injector.Snapshot(9));
  const double held = Pressure(injector.Snapshot(1000));
  EXPECT_LT(calm, 0.45);
  EXPECT_GE(spike, 0.85) << "a 10x spike must demand escalation";
  EXPECT_DOUBLE_EQ(after, calm);
  EXPECT_DOUBLE_EQ(held, calm) << "epochs past the script hold the last "
                                  "phase";
}

TEST(OverloadInjectorTest, CumulativeCountersAccrueMonotonically) {
  OverloadInjector injector(OverloadInjector::SaturationScript(8));
  uint64_t last = 0;
  for (uint64_t epoch = 0; epoch < 20; ++epoch) {
    const SignalSnapshot snap = injector.Snapshot(epoch);
    EXPECT_GT(snap.backpressure_events, last);
    last = snap.backpressure_events;
  }
}

// ---------------------------------------------------------------------
// OverloadGovernor

GovernorOptions FastOptions() {
  GovernorOptions options;
  options.ladder.dwell_epochs = 2;
  options.breaker_trip_epochs = 3;
  options.breaker_cooldown_epochs = 4;
  return options;
}

TEST(GovernorTest, HoldsRungZeroUnderCalm) {
  OverloadGovernor governor(FastOptions());
  for (uint64_t e = 0; e < 50; ++e) {
    const GovernorDecision d = governor.Observe(QueueSnapshot(0.1, e));
    EXPECT_EQ(d.rung, 0u);
    EXPECT_TRUE(d.admit);
  }
  EXPECT_TRUE(governor.transitions().empty());
}

TEST(GovernorTest, EscalatesOnlyAfterDwellEpochs) {
  OverloadGovernor governor(FastOptions());
  EXPECT_EQ(governor.Observe(QueueSnapshot(0.95, 0)).rung, 0u)
      << "one hot epoch must not move the rung (dwell = 2)";
  EXPECT_EQ(governor.Observe(QueueSnapshot(0.95, 1)).rung, 1u);
  EXPECT_EQ(governor.stats().escalations, 1u);
}

TEST(GovernorTest, HysteresisBandHoldsTheRung) {
  OverloadGovernor governor(FastOptions());
  governor.Observe(QueueSnapshot(0.95, 0));
  governor.Observe(QueueSnapshot(0.95, 1));
  ASSERT_EQ(governor.decision().rung, 1u);
  // Pressure falls into the band between relax_at and escalate_at: the
  // rung must hold — no flapping.
  for (uint64_t e = 2; e < 20; ++e) {
    EXPECT_EQ(governor.Observe(QueueSnapshot(0.6, e)).rung, 1u);
  }
  EXPECT_EQ(governor.stats().relaxations, 0u);
}

TEST(GovernorTest, RelaxesStepwiseAfterDwell) {
  OverloadGovernor governor(FastOptions());
  uint64_t epoch = 0;
  for (; epoch < 6; ++epoch) governor.Observe(QueueSnapshot(0.95, epoch));
  const size_t peak = governor.decision().rung;
  ASSERT_GE(peak, 2u);
  governor.Observe(QueueSnapshot(0.1, epoch++));
  EXPECT_EQ(governor.decision().rung, peak) << "relax also dwells";
  governor.Observe(QueueSnapshot(0.1, epoch++));
  EXPECT_EQ(governor.decision().rung, peak - 1);
  while (governor.decision().rung > 0) {
    governor.Observe(QueueSnapshot(0.1, epoch++));
    ASSERT_LT(epoch, 100u) << "relaxation must reach rung 0";
  }
  EXPECT_EQ(governor.stats().relaxations, peak);
}

TEST(GovernorTest, RefusesAdmissionAtTheFloorThenTripsBreaker) {
  GovernorOptions options = FastOptions();
  options.ladder.accuracy_floor = 0.5;  // only rungs 0-2 usable
  OverloadGovernor governor(options);
  uint64_t epoch = 0;
  // Saturation: climb to the deepest usable rung.
  while (governor.decision().rung < 2) {
    governor.Observe(QueueSnapshot(1.0, epoch++));
    ASSERT_LT(epoch, 100u);
  }
  // Pressure stays pinned: the governor must refuse admission rather
  // than degrade past the floor...
  while (governor.decision().admit) {
    governor.Observe(QueueSnapshot(1.0, epoch++));
    ASSERT_LT(epoch, 100u);
  }
  EXPECT_EQ(governor.decision().rung, 2u)
      << "the floor is never crossed, even refusing";
  EXPECT_GT(governor.stats().refusal_epochs, 0u);
  // ...and after breaker_trip_epochs of refusal, quarantine.
  while (!governor.decision().breaker_open) {
    governor.Observe(QueueSnapshot(1.0, epoch++));
    ASSERT_LT(epoch, 100u);
  }
  EXPECT_EQ(governor.stats().breaker_trips, 1u);
}

TEST(GovernorTest, BreakerCooldownElapsesAndReadmits) {
  GovernorOptions options = FastOptions();
  options.ladder.accuracy_floor = 1.0;  // rung 0 only: trips quickly
  OverloadGovernor governor(options);
  uint64_t epoch = 0;
  while (!governor.decision().breaker_open) {
    governor.Observe(QueueSnapshot(1.0, epoch++));
    ASSERT_LT(epoch, 100u);
  }
  // While open, even calm snapshots are ignored (cooldown counts down).
  for (size_t i = 0; i + 1 < options.breaker_cooldown_epochs; ++i) {
    const GovernorDecision d = governor.Observe(QueueSnapshot(0.0, epoch++));
    EXPECT_TRUE(d.breaker_open);
    EXPECT_FALSE(d.admit);
  }
  // Cooldown elapses: half-open re-admission.
  const GovernorDecision d = governor.Observe(QueueSnapshot(0.0, epoch++));
  EXPECT_FALSE(d.breaker_open);
  EXPECT_TRUE(d.admit);
}

TEST(GovernorTest, DecisionSequenceIsDeterministic) {
  // Two governors fed the same snapshot script must log identical
  // transition sequences — the harness's core witness.
  OverloadInjector script_a(OverloadInjector::SpikeScript(3, 6, 10.0));
  OverloadInjector script_b(OverloadInjector::SpikeScript(3, 6, 10.0));
  OverloadGovernor a(FastOptions());
  OverloadGovernor b(FastOptions());
  for (uint64_t e = 0; e < 40; ++e) {
    a.Observe(script_a.Snapshot(e));
    b.Observe(script_b.Snapshot(e));
  }
  ASSERT_FALSE(a.transitions().empty()) << "the spike must move the rung";
  EXPECT_EQ(a.transitions(), b.transitions());
  EXPECT_EQ(a.decision().rung, b.decision().rung);
}

// ---------------------------------------------------------------------
// Precision shedding

TEST(PrecisionTest, EffectiveSampleSizeScalesAndClamps) {
  EXPECT_EQ(EffectiveSampleSize(100, 1.0), 100u);
  EXPECT_EQ(EffectiveSampleSize(100, 0.5), 50u);
  EXPECT_EQ(EffectiveSampleSize(100, 0.25), 25u);
  EXPECT_EQ(EffectiveSampleSize(3, 0.25), 2u) << "Lemma 2 needs n >= 2";
  EXPECT_EQ(EffectiveSampleSize(dist::RandomVar::kCertainSampleSize, 0.25),
            dist::RandomVar::kCertainSampleSize)
      << "certainty cannot be shed";
  EXPECT_EQ(EffectiveResamples(20, 0.25), 5u);
  EXPECT_EQ(EffectiveResamples(4, 0.1), 2u);
}

TEST(PrecisionTest, CoarsenHistogramPreservesMassAndRange) {
  auto h = dist::HistogramDist::Make({0, 1, 2, 3, 4, 5, 6},
                                     {0.1, 0.2, 0.1, 0.3, 0.2, 0.1});
  ASSERT_TRUE(h.ok());
  auto coarse = CoarsenHistogram(*h, 2);
  ASSERT_TRUE(coarse.ok()) << coarse.status().ToString();
  ASSERT_EQ(coarse->bin_count(), 3u);
  EXPECT_DOUBLE_EQ(coarse->edges().front(), 0.0);
  EXPECT_DOUBLE_EQ(coarse->edges().back(), 6.0);
  EXPECT_NEAR(coarse->BinProb(0), 0.3, 1e-12);
  EXPECT_NEAR(coarse->BinProb(1), 0.4, 1e-12);
  EXPECT_NEAR(coarse->BinProb(2), 0.3, 1e-12);
}

TEST(PrecisionTest, CoarsenHandlesRaggedTailAndNeutralMerge) {
  auto h = dist::HistogramDist::Make({0, 1, 2, 3, 4, 5},
                                     {0.2, 0.2, 0.2, 0.2, 0.2});
  ASSERT_TRUE(h.ok());
  auto coarse = CoarsenHistogram(*h, 3);
  ASSERT_TRUE(coarse.ok());
  ASSERT_EQ(coarse->bin_count(), 2u);  // 3 + 2 (ragged tail)
  EXPECT_NEAR(coarse->BinProb(0), 0.6, 1e-12);
  EXPECT_NEAR(coarse->BinProb(1), 0.4, 1e-12);
  auto same = CoarsenHistogram(*h, 1);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same->bin_count(), 5u);
}

TEST(PrecisionTest, EffectiveCountsNeverExceedTheInput) {
  // Degradation must not fabricate provenance: the scaled count is
  // clamped into [2, n], and inputs already at or below the floor pass
  // through untouched (a field with n=1 never claims n=2).
  EXPECT_EQ(EffectiveSampleSize(1, 0.5), 1u);
  EXPECT_EQ(EffectiveSampleSize(2, 0.1), 2u);
  EXPECT_EQ(EffectiveSampleSize(3, 1.0), 3u);
  EXPECT_EQ(EffectiveSampleSize(100, 2.0), 100u)
      << "a scale above 1 must not raise the sample size";
  EXPECT_EQ(EffectiveResamples(1, 0.5), 1u);
  EXPECT_EQ(EffectiveResamples(2, 0.01), 2u);
  EXPECT_EQ(EffectiveResamples(20, 2.0), 20u);
  for (size_t n : {1u, 2u, 3u, 5u, 31u, 1000u}) {
    for (double scale : {0.01, 0.25, 0.5, 0.99, 1.0}) {
      EXPECT_LE(EffectiveSampleSize(n, scale), n) << n << "*" << scale;
      EXPECT_LE(EffectiveResamples(n, scale), n) << n << "*" << scale;
    }
  }
}

TEST(PrecisionTest, CoarsenSingleBinIsIdentity) {
  auto h = dist::HistogramDist::Make({2.0, 7.0}, {1.0});
  ASSERT_TRUE(h.ok());
  for (size_t merge : {1u, 2u, 7u}) {
    auto coarse = CoarsenHistogram(*h, merge);
    ASSERT_TRUE(coarse.ok()) << "merge=" << merge;
    ASSERT_EQ(coarse->bin_count(), 1u);
    EXPECT_DOUBLE_EQ(coarse->edges().front(), 2.0);
    EXPECT_DOUBLE_EQ(coarse->edges().back(), 7.0);
    EXPECT_DOUBLE_EQ(coarse->BinProb(0), 1.0);
  }
}

TEST(PrecisionTest, CoarsenOddBinCountKeepsTotalMassAndRange) {
  auto h = dist::HistogramDist::Make({0, 1, 2, 3, 4, 5, 6, 7},
                                     {0.05, 0.1, 0.15, 0.2, 0.2, 0.2, 0.1});
  ASSERT_TRUE(h.ok());
  for (size_t merge : {2u, 3u, 4u, 7u, 9u}) {
    auto coarse = CoarsenHistogram(*h, merge);
    ASSERT_TRUE(coarse.ok()) << "merge=" << merge;
    EXPECT_EQ(coarse->bin_count(), (7u + merge - 1) / merge);
    EXPECT_DOUBLE_EQ(coarse->edges().front(), 0.0);
    EXPECT_DOUBLE_EQ(coarse->edges().back(), 7.0);
    double mass = 0.0;
    for (size_t i = 0; i < coarse->bin_count(); ++i) {
      mass += coarse->BinProb(i);
    }
    EXPECT_NEAR(mass, 1.0, 1e-12) << "merge=" << merge;
  }
}

TEST(PrecisionTest, CoarsenPreservesZeroMassBins) {
  // Empty bins must merge without perturbing their neighbors' mass —
  // a zero-probability region stays exactly zero, not epsilon.
  auto h = dist::HistogramDist::Make({0, 1, 2, 3, 4, 5, 6},
                                     {0.5, 0.0, 0.0, 0.0, 0.0, 0.5});
  ASSERT_TRUE(h.ok());
  auto coarse = CoarsenHistogram(*h, 2);
  ASSERT_TRUE(coarse.ok());
  ASSERT_EQ(coarse->bin_count(), 3u);
  EXPECT_DOUBLE_EQ(coarse->BinProb(0), 0.5);
  EXPECT_DOUBLE_EQ(coarse->BinProb(1), 0.0);
  EXPECT_DOUBLE_EQ(coarse->BinProb(2), 0.5);
  auto all = CoarsenHistogram(*h, 6);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->bin_count(), 1u);
  EXPECT_DOUBLE_EQ(all->BinProb(0), 1.0);
}

TEST(PrecisionTest, DegradedAnnotationIsHonestlyWider) {
  // The tentpole's honesty requirement, in one assertion: a degraded
  // tuple's confidence interval must be wider than the full-precision
  // one — reduced effort may never masquerade as full accuracy.
  dist::RandomVar rv(std::make_shared<dist::GaussianDist>(5.0, 2.0), 400);
  RungSpec deep = LadderPolicy::Default().rungs.back();
  auto degraded = DegradeRandomVar(rv, deep);
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded->sample_size(), 100u);

  auto full = accuracy::AnalyticalAccuracy(rv, 0.95);
  auto shed = accuracy::AnalyticalAccuracy(*degraded, 0.95);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(shed.ok());
  ASSERT_TRUE(full->mean_ci.has_value());
  ASSERT_TRUE(shed->mean_ci.has_value());
  EXPECT_GT(shed->mean_ci->Length(), full->mean_ci->Length());
  ASSERT_TRUE(full->variance_ci.has_value());
  ASSERT_TRUE(shed->variance_ci.has_value());
  EXPECT_GT(shed->variance_ci->Length(), full->variance_ci->Length());
}

TEST(PrecisionTest, DegradeCoarsensHistogramVariables) {
  auto h = dist::HistogramDist::Make({0, 1, 2, 3, 4},
                                     {0.25, 0.25, 0.25, 0.25});
  ASSERT_TRUE(h.ok());
  dist::RandomVar rv(std::make_shared<dist::HistogramDist>(*std::move(h)),
                     80);
  RungSpec spec;
  spec.sample_scale = 0.5;
  spec.histogram_merge = 2;
  auto degraded = DegradeRandomVar(rv, spec);
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded->sample_size(), 40u);
  const auto& coarse =
      static_cast<const dist::HistogramDist&>(*degraded->distribution());
  EXPECT_EQ(coarse.bin_count(), 2u);
}

// ---------------------------------------------------------------------
// Tuple precision-rung stamp serde

TEST(PrecisionRungSerdeTest, RungRoundTripsAndLegacyStaysByteIdentical) {
  Tuple plain = XTuple(1.0);
  serde::CheckpointWriter w0;
  ASSERT_TRUE(serde::WriteTupleCheckpoint(w0, plain).ok());
  const std::string legacy = std::move(w0).Finish();
  // Rung 0 writes the legacy "tup" record byte for byte: pre-governor
  // checkpoints stay restorable and vice versa.
  EXPECT_NE(legacy.find("tup"), std::string::npos);
  EXPECT_EQ(legacy.find("tu2"), std::string::npos);

  Tuple stamped = XTuple(1.0);
  stamped.set_precision_rung(3);
  serde::CheckpointWriter w1;
  ASSERT_TRUE(serde::WriteTupleCheckpoint(w1, stamped).ok());
  const std::string governed = std::move(w1).Finish();
  EXPECT_NE(governed.find("tu2"), std::string::npos);

  serde::CheckpointReader r(governed);
  auto restored = serde::ReadTupleCheckpoint(r);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->precision_rung(), 3u);
}

// ---------------------------------------------------------------------
// GovernorGate

TEST(GovernorGateTest, RejectsMalformedLadder) {
  GovernorOptions options;
  options.ladder.rungs.clear();
  auto gate = GovernorGate::Make(
      std::make_unique<VectorScan>(XSchema(), XStream(4)),
      std::make_unique<OverloadInjector>(OverloadInjector::CalmScript(4)),
      options);
  EXPECT_FALSE(gate.ok());
  EXPECT_TRUE(gate.status().IsInvalidArgument());
}

TEST(GovernorGateTest, StampsTheEpochRungOnAdmittedTuples) {
  GovernorOptions options = FastOptions();
  options.epoch_interval = 4;
  auto gate = GovernorGate::Make(
      std::make_unique<VectorScan>(XSchema(), XStream(32)),
      std::make_unique<OverloadInjector>(
          OverloadInjector::SaturationScript(64)),
      options);
  ASSERT_TRUE(gate.ok());
  std::vector<uint32_t> rungs;
  for (;;) {
    auto t = (*gate)->Next();
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    if (!t->has_value()) break;
    rungs.push_back((*t)->precision_rung());
  }
  ASSERT_EQ(rungs.size(), 32u);
  EXPECT_EQ(rungs.front(), 0u);
  EXPECT_GT(rungs.back(), 0u) << "sustained saturation must escalate";
  // The rung changes only at epoch boundaries: within an epoch of 4
  // pulls the stamp is constant.
  for (size_t i = 0; i < rungs.size(); i += 4) {
    for (size_t j = i + 1; j < i + 4; ++j) {
      EXPECT_EQ(rungs[j], rungs[i]) << "mid-epoch rung change at " << j;
    }
  }
  EXPECT_EQ((*gate)->admitted(), 32u);
}

TEST(GovernorGateTest, RefusalSurfacesAsTransientOverloaded) {
  GovernorOptions options = FastOptions();
  options.epoch_interval = 2;
  options.ladder.accuracy_floor = 1.0;  // rung 0 only: refuse fast
  options.breaker_trip_epochs = 1000;   // keep the breaker out of this
  auto gate = GovernorGate::Make(
      std::make_unique<VectorScan>(XSchema(), XStream(64)),
      std::make_unique<OverloadInjector>(
          OverloadInjector::SaturationScript(64)),
      options);
  ASSERT_TRUE(gate.ok());
  Status refusal = Status::OK();
  for (size_t i = 0; i < 64 && refusal.ok(); ++i) {
    auto t = (*gate)->Next();
    if (!t.ok()) refusal = t.status();
  }
  ASSERT_TRUE(refusal.IsOverloaded()) << refusal.ToString();
  // Admission rejections are transient for the retry layer: pressure
  // relaxes, unlike a bad plan.
  EXPECT_EQ(ClassifyStatus(refusal), FailureClass::kTransient);
  EXPECT_GT((*gate)->rejected_overloaded(), 0u);
}

TEST(GovernorGateTest, BreakerSurfacesAsUnavailableForSupervision) {
  GovernorOptions options = FastOptions();
  options.epoch_interval = 1;
  options.ladder.accuracy_floor = 1.0;
  options.breaker_trip_epochs = 2;
  options.breaker_cooldown_epochs = 1000;
  auto gate = GovernorGate::Make(
      std::make_unique<VectorScan>(XSchema(), XStream(64)),
      std::make_unique<OverloadInjector>(
          OverloadInjector::SaturationScript(64)),
      options);
  ASSERT_TRUE(gate.ok());
  Status failure = Status::OK();
  for (size_t i = 0; i < 64 && failure.ok(); ++i) {
    auto t = (*gate)->Next();
    if (!t.ok()) failure = t.status();
    if (failure.IsOverloaded()) failure = Status::OK();  // pre-trip phase
  }
  ASSERT_TRUE(failure.IsUnavailable()) << failure.ToString();
  EXPECT_GT((*gate)->rejected_unavailable(), 0u);
  EXPECT_EQ((*gate)->governor().stats().breaker_trips, 1u);
}

TEST(GovernorGateTest, SupervisedScanRetriesThroughAdmissionControl) {
  // The full admission-control loop: a SupervisedScan above the gate
  // retries kOverloaded pulls (they are transient), and once the spike
  // script relaxes, every tuple is delivered — load shedding at the
  // source without data loss above it.
  GovernorOptions options = FastOptions();
  options.epoch_interval = 2;
  options.ladder.accuracy_floor = 1.0;
  options.breaker_trip_epochs = 1000;
  auto gate = GovernorGate::Make(
      std::make_unique<VectorScan>(XSchema(), XStream(16)),
      std::make_unique<OverloadInjector>(
          OverloadInjector::SpikeScript(2, 6, 10.0)),
      options);
  ASSERT_TRUE(gate.ok());

  stream::SupervisedScanOptions sopts;
  sopts.retry.max_attempts = 200;
  sopts.retry.jitter_fraction = 0.0;
  sopts.retry.initial_backoff_seconds = 0.0;
  stream::SupervisedScan supervised(std::move(*gate), sopts);
  auto out = Collect(supervised);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 16u) << "admission control delays, never drops";
  EXPECT_GT(supervised.counters().retries, 0u)
      << "the spike must actually have refused some pulls";
}

TEST(GovernorGateTest, ResetReplaysDecisionsFromEpochZero) {
  GovernorOptions options = FastOptions();
  options.epoch_interval = 4;
  auto gate = GovernorGate::Make(
      std::make_unique<VectorScan>(XSchema(), XStream(32)),
      std::make_unique<OverloadInjector>(
          OverloadInjector::SpikeScript(2, 4, 10.0)),
      options);
  ASSERT_TRUE(gate.ok());
  auto first = Collect(**gate);
  ASSERT_TRUE(first.ok());
  const auto transitions = (*gate)->governor().transitions();
  ASSERT_TRUE((*gate)->Reset().ok());
  auto second = Collect(**gate);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), second->size());
  EXPECT_EQ((*gate)->governor().transitions(), transitions)
      << "a reset run must replay the same decision sequence";
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].precision_rung(), (*second)[i].precision_rung());
  }
}

// ---------------------------------------------------------------------
// Governed annotation through the operator

TEST(GovernedAnnotatorTest, StampedTuplesGetWiderIntervalsThanRungZero) {
  auto ladder =
      std::make_shared<const LadderPolicy>(LadderPolicy::Default());

  auto annotate_at = [&](uint32_t rung) -> accuracy::ConfidenceInterval {
    std::vector<Tuple> tuples = {XTuple(5.0, 400)};
    tuples[0].set_precision_rung(rung);
    engine::AccuracyAnnotatorOptions aopts;
    aopts.ladder = ladder;
    // PreservingScan semantics: VectorScan stamps sequences but keeps
    // the rung, which travels inside the tuple.
    engine::AccuracyAnnotator annotator(
        std::make_unique<VectorScan>(XSchema(), std::move(tuples)), aopts);
    auto out = Collect(annotator);
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out->size(), 1u);
    const auto& info = (*out)[0].accuracy()[0];
    EXPECT_TRUE(info.has_value());
    EXPECT_TRUE(info->mean_ci.has_value());
    return *info->mean_ci;
  };

  const auto full = annotate_at(0);
  const auto shed = annotate_at(4);
  EXPECT_GT(shed.Length(), full.Length())
      << "degraded tuples must carry honestly wider intervals";
}

// ---------------------------------------------------------------------
// Planner wiring

Schema TsSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"ts", FieldType::kDouble}).ok());
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  return s;
}

std::vector<Tuple> TsStream(size_t count) {
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < count; ++i) {
    tuples.push_back(
        Tuple({expr::Value(static_cast<double>(i)),
               expr::Value(dist::RandomVar(
                   std::make_shared<dist::GaussianDist>(10.0 * i, 1.0),
                   100))}));
  }
  return tuples;
}

TEST(GovernedPlannerTest, RequiresASignalFactoryWhenEnabled) {
  query::PlannerOptions popts;
  popts.govern.enabled = true;  // no signals factory
  auto plan = query::PlanQuery(
      "SELECT x FROM s", std::make_unique<VectorScan>(XSchema(), XStream(4)),
      popts);
  ASSERT_FALSE(plan.ok());
  EXPECT_TRUE(plan.status().IsInvalidArgument());
}

TEST(GovernedPlannerTest, SharesTheLadderAcrossGateReorderAndAnnotator) {
  // A full governed AQL plan under sustained saturation: the gate
  // escalates, tuples pick up rung stamps at the source, the WITHIN
  // reorder stage releases on the shortened horizon, and the annotated
  // aggregate is still produced — the query keeps answering at 10x
  // load, with honest (wider) intervals instead of dropped data.
  MemoryBudget budget(1 << 20);
  query::PlannerOptions popts;
  popts.govern.enabled = true;
  popts.govern.governor.epoch_interval = 4;
  popts.govern.governor.ladder.dwell_epochs = 1;
  popts.govern.signals = [] {
    return std::make_unique<OverloadInjector>(
        OverloadInjector::SpikeScript(2, 4, 10.0));
  };
  popts.govern.memory_budget = &budget;
  auto plan = query::PlanQuery(
      "SELECT AVG(x) OVER (RANGE 4 ON ts WITHIN 3 LATENESS 6) AS a "
      "FROM s WITH ACCURACY ANALYTICAL CONFIDENCE 0.95",
      std::make_unique<VectorScan>(TsSchema(), TsStream(48)), popts);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto out = Collect(**plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out->empty());
  EXPECT_EQ(budget.used(), 0u)
      << "the reorder stage must hand every governed charge back";
  // Ungoverned default: the same query builds exactly as before.
  auto plain = query::PlanQuery(
      "SELECT AVG(x) OVER (RANGE 4 ON ts WITHIN 3) AS a FROM s",
      std::make_unique<VectorScan>(TsSchema(), TsStream(48)));
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
}

}  // namespace
}  // namespace govern
}  // namespace ausdb
