#include "src/stats/descriptive.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/stats/percentile.h"

namespace ausdb {
namespace stats {
namespace {

TEST(DescriptiveTest, MeanAndVarianceSimple) {
  const std::vector<double> data = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(data), 5.0);
  EXPECT_DOUBLE_EQ(PopulationVariance(data), 4.0);
  EXPECT_NEAR(SampleVariance(data), 32.0 / 7.0, 1e-12);
}

TEST(DescriptiveTest, PaperExample3Statistics) {
  // Example 3 of the paper: ybar = 71.1, s = 8.85.
  const std::vector<double> delays = {71, 56, 82, 74, 69, 77, 65, 78, 59,
                                      80};
  const auto s = Summarize(delays);
  EXPECT_EQ(s.count, 10u);
  EXPECT_NEAR(s.mean, 71.1, 1e-12);
  EXPECT_NEAR(s.SampleStdDev(), 8.85, 5e-3);
}

TEST(DescriptiveTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleVariance({}), 0.0);
  const std::vector<double> one = {3.0};
  EXPECT_DOUBLE_EQ(Mean(one), 3.0);
  EXPECT_DOUBLE_EQ(SampleVariance(one), 0.0);
  EXPECT_DOUBLE_EQ(PopulationVariance(one), 0.0);
}

TEST(MomentAccumulatorTest, MatchesBatchOnRandomData) {
  Rng rng(77);
  std::vector<double> data;
  MomentAccumulator acc;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.NextGaussian() * 3.0 + 10.0;
    data.push_back(x);
    acc.Add(x);
  }
  const auto s = Summarize(data);
  EXPECT_NEAR(acc.mean(), s.mean, 1e-9);
  EXPECT_NEAR(acc.SampleVariance(), s.sample_variance, 1e-9);
  EXPECT_NEAR(acc.min(), s.min, 0.0);
  EXPECT_NEAR(acc.max(), s.max, 0.0);
}

TEST(MomentAccumulatorTest, MergeEqualsSequential) {
  Rng rng(9);
  MomentAccumulator all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 100.0;
    all.Add(x);
    (i < 500 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.SampleVariance(), all.SampleVariance(), 1e-9);
  EXPECT_NEAR(left.Skewness(), all.Skewness(), 1e-9);
  EXPECT_NEAR(left.ExcessKurtosis(), all.ExcessKurtosis(), 1e-9);
}

TEST(MomentAccumulatorTest, MergeWithEmptySides) {
  MomentAccumulator a, b;
  a.Add(1.0);
  a.Add(2.0);
  a.Merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(MomentAccumulatorTest, GaussianHigherMomentsNearZero) {
  Rng rng(21);
  MomentAccumulator acc;
  for (int i = 0; i < 100000; ++i) acc.Add(rng.NextGaussian());
  EXPECT_NEAR(acc.Skewness(), 0.0, 0.05);
  EXPECT_NEAR(acc.ExcessKurtosis(), 0.0, 0.1);
}

TEST(MomentAccumulatorTest, ExponentialSkewness) {
  // Exponential(1) has skewness 2 and excess kurtosis 6.
  Rng rng(33);
  MomentAccumulator acc;
  for (int i = 0; i < 300000; ++i) {
    acc.Add(-std::log(1.0 - rng.NextDouble()));
  }
  EXPECT_NEAR(acc.Skewness(), 2.0, 0.1);
  EXPECT_NEAR(acc.ExcessKurtosis(), 6.0, 0.5);
}

TEST(QuantileTest, LinearInterpolationMatchesR7) {
  const std::vector<double> data = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(data, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(data, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(data, 0.25), 1.75);
}

TEST(QuantileTest, NearestRank) {
  const std::vector<double> data = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(Quantile(data, 0.2, QuantileMethod::kNearestRank), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(data, 0.21, QuantileMethod::kNearestRank),
                   20.0);
  EXPECT_DOUBLE_EQ(Quantile(data, 1.0, QuantileMethod::kNearestRank), 50.0);
}

TEST(QuantileTest, UnsortedInputIsHandled) {
  const std::vector<double> data = {9.0, 1.0, 5.0, 3.0, 7.0};
  EXPECT_DOUBLE_EQ(Quantile(data, 0.5), 5.0);
}

TEST(QuantileTest, BatchQuantilesMatchSingles) {
  const std::vector<double> data = {4.0, 8.0, 15.0, 16.0, 23.0, 42.0};
  const std::vector<double> ps = {0.1, 0.5, 0.9};
  const auto qs = Quantiles(data, ps);
  ASSERT_EQ(qs.size(), 3u);
  for (size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(qs[i], Quantile(data, ps[i]));
  }
}

TEST(EmpiricalCdfTest, StepsCorrectly) {
  const std::vector<double> data = {1.0, 2.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(EmpiricalCdf(data, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(EmpiricalCdf(data, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(EmpiricalCdf(data, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(EmpiricalCdf(data, 10.0), 1.0);
}

}  // namespace
}  // namespace stats
}  // namespace ausdb
