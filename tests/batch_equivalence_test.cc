// Deterministic-equivalence harness for columnar batch execution: every
// pipeline here runs once tuple-at-a-time (the golden run) and once
// through NextBatch at the executor's deterministic batch size — under
// thread pools of size {1, 4} and behind AsyncPrefetchSource at queue
// depths {1, 2, 64} — and the serialized output bytes must be identical.
// Batching is an execution-strategy change, never a semantics change.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/engine/executor.h"
#include "src/engine/instrumented_operator.h"
#include "src/engine/limit.h"
#include "src/engine/scan.h"
#include "src/engine/window_aggregate.h"
#include "src/io/observation_loader.h"
#include "src/obs/metrics.h"
#include "src/query/planner.h"
#include "src/serde/json_writer.h"
#include "src/serde/table_printer.h"
#include "src/stream/async_prefetch_source.h"

namespace ausdb {
namespace {

constexpr size_t kDepths[] = {1, 2, 64};
constexpr size_t kThreads[] = {1, 4};

std::string Figure1Csv() {
  std::ostringstream csv;
  csv << "road_id,delay\n";
  Rng rng(819);
  for (int i = 0; i < 3; ++i) {
    csv << "19," << 40.0 + 40.0 * rng.NextDouble() << "\n";
  }
  for (int i = 0; i < 50; ++i) {
    csv << "20," << 40.0 + 40.0 * rng.NextDouble() << "\n";
  }
  return csv.str();
}

std::string SerializeRows(const engine::Schema& schema,
                          const std::vector<engine::Tuple>& rows) {
  std::ostringstream out;
  for (const auto& t : rows) {
    out << serde::ToJson(t, schema) << "\n";
    out << "seq=" << t.sequence() << "\n";
  }
  serde::PrintTable(out, schema, rows);
  return out.str();
}

enum class Drive { kScalar, kBatch };

// Runs `sql` over `scan`, pulling either tuple-at-a-time or through
// NextBatch, optionally with a pool of `threads` bound, and serializes
// every result surface into one byte string for exact comparison.
std::string RunQueryBytes(const std::string& sql, engine::OperatorPtr scan,
                          Drive drive, size_t threads = 0) {
  auto plan = query::PlanQuery(sql, std::move(scan));
  EXPECT_TRUE(plan.ok()) << sql << ": " << plan.status().ToString();
  if (!plan.ok()) return "<plan error>";
  Result<std::vector<engine::Tuple>> rows = [&] {
    if (threads == 0) {
      return drive == Drive::kBatch ? engine::BatchCollect(**plan)
                                    : engine::Collect(**plan);
    }
    ThreadPool pool(threads);
    return drive == Drive::kBatch
               ? engine::ParallelBatchCollect(**plan, pool)
               : engine::ParallelCollect(**plan, pool);
  }();
  EXPECT_TRUE(rows.ok()) << sql << ": " << rows.status().ToString();
  if (!rows.ok()) return "<exec error>";
  return SerializeRows((*plan)->schema(), *rows);
}

class BatchEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = io::ParseCsv(Figure1Csv());
    ASSERT_TRUE(table.ok());
    io::ObservationLoadOptions opts;
    opts.key_column = "road_id";
    opts.value_column = "delay";
    opts.learn_as = io::LearnAs::kEmpirical;
    auto loaded = io::LoadObservations(*table, opts);
    ASSERT_TRUE(loaded.ok());
    data_ = std::move(*loaded);
  }

  engine::OperatorPtr SyncScan() const {
    return std::make_unique<engine::VectorScan>(data_.schema,
                                                data_.tuples);
  }

  engine::OperatorPtr AsyncScan(size_t depth) const {
    stream::AsyncPrefetchOptions opts;
    opts.queue_depth = depth;
    return stream::MakeAsyncPrefetch(SyncScan(), opts);
  }

  // The harness: one scalar golden run, then the batched run compared
  // byte-exactly against it under thread counts {1, 4}, prefetch depths
  // {1, 2, 64}, and an instrumented plan.
  void ExpectBatchEquivalent(const std::string& sql) {
    const std::string golden =
        RunQueryBytes(sql, SyncScan(), Drive::kScalar);
    ASSERT_NE(golden.find("row(s)"), std::string::npos) << sql;

    ASSERT_EQ(RunQueryBytes(sql, SyncScan(), Drive::kBatch), golden)
        << sql << " batched";
    for (size_t threads : kThreads) {
      ASSERT_EQ(RunQueryBytes(sql, SyncScan(), Drive::kBatch, threads),
                golden)
          << sql << " batched at " << threads << " threads";
    }
    for (size_t depth : kDepths) {
      ASSERT_EQ(RunQueryBytes(sql, AsyncScan(depth), Drive::kBatch),
                golden)
          << sql << " batched at queue depth " << depth;
    }
    obs::MetricRegistry registry;
    ASSERT_EQ(RunQueryBytes(
                  sql,
                  engine::Instrument(SyncScan(), "source", &registry),
                  Drive::kBatch),
              golden)
        << sql << " batched with metrics";
  }

  io::LoadedObservations data_;
};

TEST_F(BatchEquivalenceTest, ThresholdQuery) {
  ExpectBatchEquivalent(
      "SELECT road_id FROM t WHERE delay > 50 PROB 0.5");
}

TEST_F(BatchEquivalenceTest, SignificancePredicateQuery) {
  ExpectBatchEquivalent(
      "SELECT road_id FROM t WHERE PTEST(delay > 50, 0.5, 0.05)");
}

TEST_F(BatchEquivalenceTest, AnalyticalAccuracyQuery) {
  ExpectBatchEquivalent(
      "SELECT * FROM t WITH ACCURACY ANALYTICAL CONFIDENCE 0.9");
}

TEST_F(BatchEquivalenceTest, BootstrapAccuracyQuery) {
  // The annotator draws from its generator per tuple: batched pulls must
  // replay the identical draw sequence.
  ExpectBatchEquivalent(
      "SELECT * FROM t WHERE delay > 50 "
      "WITH ACCURACY BOOTSTRAP CONFIDENCE 0.9");
}

TEST_F(BatchEquivalenceTest, ProbProjectionWithSort) {
  ExpectBatchEquivalent(
      "SELECT road_id, PROB(delay > 50) AS p FROM t ORDER BY p DESC");
}

TEST_F(BatchEquivalenceTest, LimitQuery) {
  ExpectBatchEquivalent("SELECT road_id FROM t LIMIT 7");
}

// Sliding-window aggregate over a deterministic double column: the
// batched path extracts window entries from the gathered column slice;
// the emitted aggregates must match the scalar path byte for byte.
TEST(BatchWindowEquivalenceTest, SlidingWindowOverDoubleColumn) {
  engine::Schema schema;
  ASSERT_TRUE(schema.AddField({"v", engine::FieldType::kDouble}).ok());
  std::vector<engine::Tuple> tuples;
  Rng rng(4242);
  for (int i = 0; i < 3000; ++i) {
    engine::Tuple t(
        {expr::Value(100.0 * rng.NextDouble() - 50.0)});
    t.set_sequence(static_cast<uint64_t>(i));
    tuples.push_back(std::move(t));
  }

  for (const engine::WindowKind kind :
       {engine::WindowKind::kSliding, engine::WindowKind::kTumbling}) {
    engine::WindowAggregateOptions wopts;
    wopts.window_size = 64;
    wopts.kind = kind;

    auto make_plan = [&] {
      auto scan =
          std::make_unique<engine::VectorScan>(schema, tuples);
      auto agg = engine::WindowAggregate::Make(std::move(scan), "v",
                                               "avg_v", wopts);
      EXPECT_TRUE(agg.ok());
      return std::move(*agg);
    };

    auto scalar_plan = make_plan();
    auto scalar = engine::Collect(*scalar_plan);
    ASSERT_TRUE(scalar.ok());
    const std::string golden =
        SerializeRows(scalar_plan->schema(), *scalar);

    auto batch_plan = make_plan();
    auto batched = engine::BatchCollect(*batch_plan);
    ASSERT_TRUE(batched.ok());
    ASSERT_EQ(SerializeRows(batch_plan->schema(), *batched), golden);
    ASSERT_EQ(batch_plan->input_consumed(),
              scalar_plan->input_consumed());
  }
}

TEST(BatchContractTest, ZeroBatchSizeIsInvalid) {
  engine::Schema schema;
  ASSERT_TRUE(schema.AddField({"v", engine::FieldType::kDouble}).ok());
  engine::VectorScan scan(schema, {});
  engine::TupleBatch batch;
  EXPECT_EQ(scan.NextBatch(0, batch).code(),
            StatusCode::kInvalidArgument);
  engine::Limit limit(
      std::make_unique<engine::VectorScan>(schema,
                                           std::vector<engine::Tuple>{}),
      3);
  EXPECT_EQ(limit.NextBatch(0, batch).code(),
            StatusCode::kInvalidArgument);
}

TEST(BatchContractTest, DeterministicBatchSizeIsPureAndClamped) {
  engine::Schema narrow;
  ASSERT_TRUE(narrow.AddField({"a", engine::FieldType::kDouble}).ok());
  engine::VectorScan narrow_scan(narrow, {});
  // 4096 / 1 clamps to the max.
  EXPECT_EQ(engine::DeterministicBatchSize(narrow_scan),
            engine::kMaxBatchRows);
  EXPECT_EQ(engine::DeterministicBatchSize(narrow_scan),
            engine::DeterministicBatchSize(narrow_scan));

  engine::Schema wide;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        wide.AddField({"f" + std::to_string(i),
                       engine::FieldType::kDouble}).ok());
  }
  engine::VectorScan wide_scan(wide, {});
  // 4096 / 100 = 40 clamps up to the min.
  EXPECT_EQ(engine::DeterministicBatchSize(wide_scan),
            engine::kMinBatchRows);
}

TEST(TupleBatchTest, GatherColumnsMaterializesDoubleFields) {
  engine::Schema schema;
  ASSERT_TRUE(schema.AddField({"x", engine::FieldType::kDouble}).ok());
  ASSERT_TRUE(schema.AddField({"s", engine::FieldType::kString}).ok());
  ASSERT_TRUE(schema.AddField({"y", engine::FieldType::kDouble}).ok());

  engine::TupleBatch batch;
  for (int i = 0; i < 5; ++i) {
    batch.rows().emplace_back(std::vector<expr::Value>{
        expr::Value(1.5 * i), expr::Value(std::string("row")),
        expr::Value(-2.0 * i)});
  }
  ASSERT_FALSE(batch.columns_gathered());
  EXPECT_TRUE(batch.Column(0).empty());

  ASSERT_TRUE(batch.GatherColumns(schema).ok());
  ASSERT_TRUE(batch.columns_gathered());
  const auto x = batch.Column(0);
  const auto y = batch.Column(2);
  ASSERT_EQ(x.size(), 5u);
  ASSERT_EQ(y.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(x[i], 1.5 * i);
    EXPECT_EQ(y[i], -2.0 * i);
  }
  // Non-double field has no slice.
  EXPECT_TRUE(batch.Column(1).empty());

  batch.InvalidateColumns();
  EXPECT_FALSE(batch.columns_gathered());
  EXPECT_TRUE(batch.Column(0).empty());
}

}  // namespace
}  // namespace ausdb
