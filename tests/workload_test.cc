#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/expr/analyzer.h"
#include "src/expr/evaluator.h"
#include "src/obs/clock.h"
#include "src/stats/descriptive.h"
#include "src/stats/random_variates.h"
#include "src/stream/acquisition.h"
#include "src/stream/throughput.h"
#include "src/workload/cartel.h"
#include "src/workload/random_query.h"
#include "src/workload/synthetic.h"

namespace ausdb {
namespace workload {
namespace {

TEST(SyntheticFamilyTest, NamesAndMoments) {
  EXPECT_EQ(FamilyToString(Family::kGamma), "gamma");
  EXPECT_DOUBLE_EQ(FamilyMean(Family::kGamma), 4.0);
  EXPECT_DOUBLE_EQ(FamilyVariance(Family::kGamma), 8.0);
  EXPECT_DOUBLE_EQ(FamilyMean(Family::kUniform), 0.5);
  EXPECT_NEAR(FamilyVariance(Family::kUniform), 1.0 / 12.0, 1e-12);
}

class FamilyParamTest : public ::testing::TestWithParam<Family> {};

TEST_P(FamilyParamTest, SampleMomentsMatchDeclared) {
  Rng rng(500 + static_cast<int>(GetParam()));
  const auto sample = SampleFamilyMany(rng, GetParam(), 100000);
  const auto s = stats::Summarize(sample);
  EXPECT_NEAR(s.mean, FamilyMean(GetParam()),
              0.05 * std::max(1.0, FamilyMean(GetParam())));
  EXPECT_NEAR(s.sample_variance, FamilyVariance(GetParam()),
              0.1 * std::max(1.0, FamilyVariance(GetParam())));
}

TEST_P(FamilyParamTest, QuantileInvertsCdf) {
  for (double p : {0.05, 0.3, 0.5, 0.7, 0.95}) {
    const double x = FamilyQuantile(GetParam(), p);
    EXPECT_NEAR(FamilyCdf(GetParam(), x), p, 1e-8)
        << FamilyToString(GetParam()) << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyParamTest,
                         ::testing::ValuesIn(kAllFamilies),
                         [](const auto& info) {
                           return std::string(FamilyToString(info.param));
                         });

TEST(RandomQueryTest, UsesAllColumnsAndParses) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    RandomQueryOptions opts;
    opts.num_columns = 3;
    opts.num_operators = 5;
    const RandomQuery q = GenerateRandomQuery(rng, opts);
    ASSERT_NE(q.expression, nullptr);
    const auto cols = expr::CollectColumns(*q.expression);
    std::set<std::string> seen(cols.begin(), cols.end());
    for (const auto& name : q.column_names) {
      EXPECT_TRUE(seen.count(name) > 0)
          << "column " << name << " unused in " << q.ToString();
    }
  }
}

TEST(RandomQueryTest, NormalOnlyLinearStaysLinear) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    RandomQueryOptions opts;
    opts.num_columns = 2;
    opts.num_operators = 4;
    opts.normal_only_linear = true;
    const RandomQuery q = GenerateRandomQuery(rng, opts);
    EXPECT_TRUE(expr::ExtractLinear(*q.expression).has_value())
        << q.expression->ToString();
    for (Family f : q.families) EXPECT_EQ(f, Family::kNormal);
  }
}

TEST(RandomQueryTest, GeneratedQueriesEvaluate) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    RandomQueryOptions opts;
    opts.num_columns = 2;
    opts.num_operators = 3;
    const RandomQuery q = GenerateRandomQuery(rng, opts);

    // Build a row binding each column to a learned empirical variable.
    std::vector<std::string> names = q.column_names;
    std::vector<expr::Value> values;
    for (Family f : q.families) {
      auto sample = SampleFamilyMany(rng, f, 20);
      auto learned = dist::LearnEmpirical(sample);
      ASSERT_TRUE(learned.ok());
      values.emplace_back(dist::RandomVar(*learned));
    }
    expr::EvalOptions eopts;
    eopts.mc_samples = 500;
    expr::Evaluator eval(eopts);
    auto v = eval.Evaluate(*q.expression,
                           expr::Row{&names, &values});
    ASSERT_TRUE(v.ok()) << q.expression->ToString() << ": "
                        << v.status().ToString();
    ASSERT_TRUE(v->is_random_var());
    EXPECT_EQ(v->random_var()->sample_size(), 20u);
  }
}

TEST(CartelTest, PopulationsAndGroundTruth) {
  CartelOptions opts;
  opts.num_segments = 20;
  opts.observations_per_segment = 700;
  CartelSimulator sim(opts);
  EXPECT_EQ(sim.num_segments(), 20u);
  for (size_t s = 0; s < sim.num_segments(); ++s) {
    EXPECT_EQ(sim.Population(s).size(), 700u);
    EXPECT_GT(sim.TrueMean(s), 0.0);
    EXPECT_GT(sim.TrueVariance(s), 0.0);
    // Delays are positive.
    EXPECT_GT(*std::min_element(sim.Population(s).begin(),
                                sim.Population(s).end()),
              0.0);
  }
}

TEST(CartelTest, PopulationsAreSkewed) {
  // Lognormal delay populations should be right-skewed — that is the
  // point of the substitution (DESIGN.md Section 3).
  CartelSimulator sim({.num_segments = 10,
                       .observations_per_segment = 2000,
                       .route_length = 5,
                       .seed = 42});
  double avg_skew = 0.0;
  for (size_t s = 0; s < sim.num_segments(); ++s) {
    stats::MomentAccumulator acc;
    for (double v : sim.Population(s)) acc.Add(v);
    avg_skew += acc.Skewness();
  }
  avg_skew /= static_cast<double>(sim.num_segments());
  EXPECT_GT(avg_skew, 0.3);
}

TEST(CartelTest, SampleWithoutReplacement) {
  CartelSimulator sim({.num_segments = 3,
                       .observations_per_segment = 650,
                       .route_length = 2,
                       .seed = 1});
  Rng rng(5);
  auto sample = sim.DrawSample(0, 650, rng);  // the whole population
  ASSERT_TRUE(sample.ok());
  auto sorted_sample = *sample;
  std::sort(sorted_sample.begin(), sorted_sample.end());
  auto sorted_pop = sim.Population(0);
  std::sort(sorted_pop.begin(), sorted_pop.end());
  EXPECT_EQ(sorted_sample, sorted_pop);  // exactly the population

  EXPECT_TRUE(sim.DrawSample(0, 651, rng).status().IsInvalidArgument());
  EXPECT_TRUE(sim.DrawSample(99, 5, rng).status().IsInvalidArgument());
}

TEST(CartelTest, SampleMeanApproachesTruth) {
  CartelSimulator sim({.num_segments = 5,
                       .observations_per_segment = 800,
                       .route_length = 3,
                       .seed = 2});
  Rng rng(6);
  auto sample = sim.DrawSample(2, 400, rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_NEAR(stats::Mean(*sample), sim.TrueMean(2),
              0.15 * sim.TrueMean(2));
}

TEST(CartelTest, RoutesAndObservations) {
  CartelSimulator sim({.num_segments = 50,
                       .observations_per_segment = 700,
                       .route_length = 20,
                       .seed = 3});
  Rng rng(7);
  const auto route = sim.MakeRoute(rng);
  ASSERT_EQ(route.size(), 20u);
  std::set<size_t> distinct(route.begin(), route.end());
  EXPECT_EQ(distinct.size(), 20u);

  auto obs = sim.RouteDelayObservations(route, 30, rng);
  ASSERT_TRUE(obs.ok());
  ASSERT_EQ(obs->size(), 30u);
  // Route totals should be near the route's true mean.
  EXPECT_NEAR(stats::Mean(*obs), sim.TrueRouteMean(route),
              0.2 * sim.TrueRouteMean(route));
}

TEST(CartelTest, CloseRoutePairsAreClose) {
  CartelSimulator sim({.num_segments = 100,
                       .observations_per_segment = 650,
                       .route_length = 20,
                       .seed = 4});
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const auto pair = sim.MakeCloseRoutePair(rng);
    EXPECT_EQ(pair.lesser.size(), 20u);
    EXPECT_EQ(pair.greater.size(), 20u);
    EXPECT_GT(pair.mean_gap, 0.0);
    EXPECT_NEAR(sim.TrueRouteMean(pair.greater) -
                    sim.TrueRouteMean(pair.lesser),
                pair.mean_gap, 1e-9);
    // Adjacent-by-mean segments out of 100: gap should be small relative
    // to the total route delay.
    EXPECT_LT(pair.mean_gap / sim.TrueRouteMean(pair.lesser), 0.2);
  }
}

TEST(ThroughputMeterTest, CountsAndRates) {
  stream::ThroughputMeter meter;
  meter.Start();
  meter.Count(500);
  meter.Count();
  meter.Stop();
  EXPECT_EQ(meter.count(), 501u);
  EXPECT_GT(meter.ElapsedSeconds(), 0.0);
  EXPECT_GT(meter.TuplesPerSecond(), 0.0);
}

TEST(ThroughputMeterTest, NeverStartedReportsZeroNotGarbage) {
  // Regression: Stop() without Start() used to measure a span against
  // the default-constructed epoch, yielding a huge bogus duration.
  stream::ThroughputMeter meter;
  meter.Count(100);
  meter.Stop();
  EXPECT_DOUBLE_EQ(meter.ElapsedSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(meter.TuplesPerSecond(), 0.0);
  EXPECT_EQ(meter.count(), 100u);
}

TEST(ThroughputMeterTest, FakeClockGivesExactRates) {
  obs::FakeClock clock;
  stream::ThroughputMeter meter(&clock);
  meter.Start();
  meter.Count(250);
  clock.AdvanceSeconds(0.5);
  meter.Stop();
  EXPECT_DOUBLE_EQ(meter.ElapsedSeconds(), 0.5);
  EXPECT_DOUBLE_EQ(meter.TuplesPerSecond(), 500.0);
  // A clock that never advances must yield rate 0, not a division blowup.
  meter.Start();
  meter.Count(10);
  meter.Stop();
  EXPECT_DOUBLE_EQ(meter.ElapsedSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(meter.TuplesPerSecond(), 0.0);
}

TEST(ThroughputMeterTest, RestartMeasuresANewSpan) {
  obs::FakeClock clock;
  stream::ThroughputMeter meter(&clock);
  meter.Start();
  meter.Count(100);
  clock.AdvanceSeconds(1.0);
  meter.Stop();
  EXPECT_DOUBLE_EQ(meter.TuplesPerSecond(), 100.0);

  meter.Start();  // new span: count and elapsed both restart
  meter.Count(30);
  clock.AdvanceSeconds(0.1);
  meter.Stop();
  EXPECT_EQ(meter.count(), 30u);
  EXPECT_DOUBLE_EQ(meter.ElapsedSeconds(), 0.1);
  EXPECT_DOUBLE_EQ(meter.TuplesPerSecond(), 300.0);
}

TEST(AcquisitionControllerTest, StopsWhenIntervalNarrow) {
  Rng rng(11);
  stream::AcquisitionOptions opts;
  opts.confidence = 0.9;
  opts.target_mean_interval_length = 0.5;
  opts.min_observations = 5;
  stream::AcquisitionController ctl(opts);
  size_t taken = 0;
  while (ctl.Observe(stats::SampleNormal(rng, 10.0, 1.0)) ==
         stream::AcquisitionDecision::kNeedMore) {
    ++taken;
    ASSERT_LT(taken, 1000u);
  }
  EXPECT_EQ(ctl.decision(),
            stream::AcquisitionDecision::kTargetReached);
  auto ci = ctl.CurrentMeanInterval();
  ASSERT_TRUE(ci.ok());
  EXPECT_LE(ci->Length(), 0.5);
  // With sigma=1 and 90% confidence, roughly (2*1.645/0.5)^2 = 43 obs.
  EXPECT_GT(ctl.observation_count(), 15u);
  EXPECT_LT(ctl.observation_count(), 200u);
}

TEST(AcquisitionControllerTest, BudgetExhaustion) {
  Rng rng(12);
  stream::AcquisitionOptions opts;
  opts.target_mean_interval_length = 1e-6;  // unreachable
  opts.max_observations = 50;
  stream::AcquisitionController ctl(opts);
  stream::AcquisitionDecision d = stream::AcquisitionDecision::kNeedMore;
  for (int i = 0; i < 50; ++i) {
    d = ctl.Observe(stats::SampleNormal(rng, 0.0, 1.0));
  }
  EXPECT_EQ(d, stream::AcquisitionDecision::kBudgetExhausted);
}

TEST(AcquisitionControllerTest, RespectsMinObservations) {
  stream::AcquisitionOptions opts;
  opts.min_observations = 10;
  opts.target_mean_interval_length = 1e9;  // trivially reachable
  stream::AcquisitionController ctl(opts);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(ctl.Observe(1.0), stream::AcquisitionDecision::kNeedMore);
  }
  EXPECT_EQ(ctl.Observe(2.0),
            stream::AcquisitionDecision::kTargetReached);
}

TEST(AcquisitionControllerTest, NoCapNeverReportsBudgetExhausted) {
  // max_observations == 0 is documented as "no cap": the controller
  // must keep answering kNeedMore forever, never kBudgetExhausted.
  Rng rng(13);
  stream::AcquisitionOptions opts;
  opts.target_mean_interval_length = 1e-9;  // unreachable
  opts.max_observations = 0;
  stream::AcquisitionController ctl(opts);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(ctl.Observe(stats::SampleNormal(rng, 0.0, 1.0)),
              stream::AcquisitionDecision::kNeedMore)
        << "at observation " << i + 1;
  }
  EXPECT_EQ(ctl.observation_count(), 5000u);
}

TEST(AcquisitionControllerTest, MaxBelowMinIsWellDefined) {
  // 0 < max_observations < min_observations: min wins. No decision
  // before min_observations, and exhaustion is reported exactly at the
  // min_observations-th value (budget = max(min, max)).
  Rng rng(14);
  stream::AcquisitionOptions opts;
  opts.min_observations = 20;
  opts.max_observations = 5;
  opts.target_mean_interval_length = 1e-9;  // unreachable
  stream::AcquisitionController ctl(opts);
  for (int i = 0; i < 19; ++i) {
    ASSERT_EQ(ctl.Observe(stats::SampleNormal(rng, 0.0, 1.0)),
              stream::AcquisitionDecision::kNeedMore);
  }
  EXPECT_EQ(ctl.Observe(stats::SampleNormal(rng, 0.0, 1.0)),
            stream::AcquisitionDecision::kBudgetExhausted);
  EXPECT_EQ(ctl.observation_count(), 20u);
}

}  // namespace
}  // namespace workload
}  // namespace ausdb
