// The observability layer's hard requirement: instrumentation must not
// change delivered output. Every pipeline here runs once with metrics
// off (the golden) and once per instrumented configuration — wrapper
// operators, prefetch queue metrics at depths {1, 2, 64}, thread pools
// of {1, 4} workers — and the serialized bytes must match exactly.
// Alongside bit-identity, the tests assert the metrics themselves are
// right (counts equal to delivered tuples), so "write-only" never decays
// into "writes nothing".

#include <bit>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/engine/executor.h"
#include "src/engine/instrumented_operator.h"
#include "src/engine/pipeline_profiler.h"
#include "src/engine/scan.h"
#include "src/engine/sharded_partitioned_window.h"
#include "src/io/observation_loader.h"
#include "src/obs/event_journal.h"
#include "src/obs/exposition.h"
#include "src/obs/metrics.h"
#include "src/query/parser.h"
#include "src/query/planner.h"
#include "src/serde/json_writer.h"
#include "src/stats/random_variates.h"
#include "src/stream/async_prefetch_source.h"
#include "src/stream/supervised_source.h"

namespace ausdb {
namespace {

constexpr size_t kDepths[] = {1, 2, 64};
constexpr size_t kThreadCounts[] = {1, 4};

std::string SensorCsv() {
  std::ostringstream csv;
  csv << "road_id,delay\n";
  Rng rng(417);
  for (int i = 0; i < 4; ++i) {
    csv << "19," << 40.0 + 40.0 * rng.NextDouble() << "\n";
  }
  for (int i = 0; i < 40; ++i) {
    csv << "20," << 40.0 + 40.0 * rng.NextDouble() << "\n";
  }
  return csv.str();
}

std::string RunQueryBytes(const std::string& sql,
                          engine::OperatorPtr scan) {
  auto plan = query::PlanQuery(sql, std::move(scan));
  EXPECT_TRUE(plan.ok()) << sql << ": " << plan.status().ToString();
  if (!plan.ok()) return "<plan error>";
  auto rows = engine::Collect(**plan);
  EXPECT_TRUE(rows.ok()) << sql << ": " << rows.status().ToString();
  if (!rows.ok()) return "<exec error>";
  std::ostringstream out;
  for (const auto& t : *rows) {
    out << serde::ToJson(t, (*plan)->schema()) << "\n";
    out << "seq=" << t.sequence() << "\n";
  }
  return out.str();
}

class InstrumentationEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = io::ParseCsv(SensorCsv());
    ASSERT_TRUE(table.ok());
    io::ObservationLoadOptions opts;
    opts.key_column = "road_id";
    opts.value_column = "delay";
    opts.learn_as = io::LearnAs::kEmpirical;
    auto loaded = io::LoadObservations(*table, opts);
    ASSERT_TRUE(loaded.ok());
    data_ = std::move(*loaded);
  }

  engine::OperatorPtr Scan() const {
    return std::make_unique<engine::VectorScan>(data_.schema,
                                                data_.tuples);
  }

  io::LoadedObservations data_;
};

TEST_F(InstrumentationEquivalenceTest, WrappedOperatorPreservesBytes) {
  const std::string sql =
      "SELECT road_id, PROB(delay > 50) AS p FROM t ORDER BY p DESC";
  const std::string golden = RunQueryBytes(sql, Scan());
  ASSERT_FALSE(golden.empty());

  obs::MetricRegistry registry;
  const std::string instrumented = RunQueryBytes(
      sql, engine::Instrument(Scan(), "scan", &registry));
  EXPECT_EQ(instrumented, golden);

  // The wrapper must have recorded exactly the delivered stream: every
  // input tuple, one terminal end-of-stream pull, no errors.
  const obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  uint64_t tuples = 0, calls = 0, errors = 0;
  for (const auto& c : snap.counters) {
    if (c.key.name == "ausdb_engine_tuples_total") tuples = c.value;
    if (c.key.name == "ausdb_engine_next_calls_total") calls = c.value;
    if (c.key.name == "ausdb_engine_next_errors_total") errors = c.value;
  }
  EXPECT_EQ(tuples, data_.tuples.size());
  EXPECT_EQ(calls, data_.tuples.size() + 1);
  EXPECT_EQ(errors, 0u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].key.name,
            "ausdb_engine_next_latency_seconds");
  // Latency is sampled (counters are exact): one timed pull per
  // kDefaultLatencySamplePeriod calls, first call always timed.
  const uint64_t period =
      engine::InstrumentedOperator::kDefaultLatencySamplePeriod;
  EXPECT_EQ(snap.histograms[0].count, (calls + period - 1) / period);
}

TEST_F(InstrumentationEquivalenceTest,
       LatencySamplePeriodOneTimesEveryCall) {
  const std::string sql = "SELECT road_id FROM t WHERE delay > 50 PROB 0.5";
  obs::MetricRegistry registry;
  const std::string bytes = RunQueryBytes(
      sql, engine::Instrument(Scan(), "scan", &registry,
                              obs::SteadyClock::Instance(),
                              /*latency_sample_period=*/1));
  ASSERT_FALSE(bytes.empty());
  const obs::MetricsSnapshot snap = registry.Snapshot();
  uint64_t calls = 0;
  for (const auto& c : snap.counters) {
    if (c.key.name == "ausdb_engine_next_calls_total") calls = c.value;
  }
  EXPECT_EQ(calls, data_.tuples.size() + 1);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, calls);
}

TEST_F(InstrumentationEquivalenceTest, NullRegistryReturnsChildUnchanged) {
  engine::OperatorPtr child = Scan();
  engine::Operator* raw = child.get();
  engine::OperatorPtr same =
      engine::Instrument(std::move(child), "scan", nullptr);
  EXPECT_EQ(same.get(), raw);
}

TEST_F(InstrumentationEquivalenceTest,
       PrefetchMetricsPreserveBytesAtEveryDepth) {
  const std::string sql =
      "SELECT * FROM t WHERE delay > 50 "
      "WITH ACCURACY BOOTSTRAP CONFIDENCE 0.9";
  const std::string golden = RunQueryBytes(sql, Scan());
  ASSERT_FALSE(golden.empty());

  for (size_t depth : kDepths) {
    // Metrics off.
    stream::AsyncPrefetchOptions off;
    off.queue_depth = depth;
    const std::string plain =
        RunQueryBytes(sql, stream::MakeAsyncPrefetch(Scan(), off));
    EXPECT_EQ(plain, golden) << "depth " << depth;

    // Metrics on: queue gauge + wait counters + wrapper, same bytes.
    obs::MetricRegistry registry;
    stream::AsyncPrefetchOptions on;
    on.queue_depth = depth;
    on.metrics = &registry;
    on.metrics_label = "sensor_feed";
    const std::string instrumented = RunQueryBytes(
        sql, engine::Instrument(
                 stream::MakeAsyncPrefetch(Scan(), on), "prefetch",
                 &registry));
    EXPECT_EQ(instrumented, golden) << "depth " << depth;

    const obs::MetricsSnapshot snap = registry.Snapshot();
    uint64_t produced = 0, delivered = 0;
    for (const auto& c : snap.counters) {
      if (c.key.name == "ausdb_stream_prefetch_produced_total") {
        produced = c.value;
      }
      if (c.key.name == "ausdb_stream_prefetch_delivered_total") {
        delivered = c.value;
      }
    }
    EXPECT_EQ(produced, data_.tuples.size()) << "depth " << depth;
    EXPECT_EQ(delivered, data_.tuples.size()) << "depth " << depth;
  }
}

TEST_F(InstrumentationEquivalenceTest,
       SupervisedScanMetricsPreserveBytesAndMirrorCounters) {
  const std::string sql =
      "SELECT road_id FROM t WHERE PTEST(delay > 50, 0.5, 0.05)";
  const std::string golden = RunQueryBytes(sql, Scan());
  ASSERT_FALSE(golden.empty());

  obs::MetricRegistry registry;
  stream::SupervisedScanOptions opts;
  opts.metrics = &registry;
  opts.metrics_label = "sensors";
  auto supervised =
      std::make_unique<stream::SupervisedScan>(Scan(), std::move(opts));
  const stream::SupervisedScan* raw = supervised.get();
  const std::string instrumented =
      RunQueryBytes(sql, std::move(supervised));
  EXPECT_EQ(instrumented, golden);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  uint64_t emitted = 0;
  for (const auto& c : snap.counters) {
    if (c.key.name == "ausdb_stream_supervision_emitted_total") {
      emitted = c.value;
    }
  }
  EXPECT_EQ(emitted, raw->counters().emitted);
  EXPECT_EQ(emitted, data_.tuples.size());
}

// ---------------------------------------------------------------------
// EXPLAIN ANALYZE determinism: the profiled pipeline's delivered output
// is byte-identical to the unprofiled run, and the profiler counters
// and event-journal JSON are byte-identical across thread counts
// {1, 4} x prefetch depths {1, 2, 64} x metrics on/off.

TEST_F(InstrumentationEquivalenceTest,
       ProfilerCountersAndJournalBitIdenticalAcrossConfigs) {
  const std::string sql =
      "SELECT * FROM t WHERE delay > 50 WITH ACCURACY 0.05 CONFIDENCE 0.9";
  auto parsed = query::Parse(sql);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const auto bytes_of = [](const std::vector<engine::Tuple>& rows,
                           const engine::Schema& schema) {
    std::ostringstream out;
    for (const auto& t : rows) {
      out << serde::ToJson(t, schema) << "\n";
      out << "seq=" << t.sequence() << "\n";
    }
    return out.str();
  };

  // Golden: unprofiled, unjournaled, metrics off, plain Collect.
  auto plain = query::BuildPlan(*parsed, Scan());
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  auto reference = engine::Collect(**plain);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::string golden = bytes_of(*reference, (*plain)->schema());
  ASSERT_FALSE(golden.empty());

  std::string golden_counters, golden_journal, golden_report;
  for (size_t threads : kThreadCounts) {
    for (size_t depth : kDepths) {
      for (bool metrics_on : {false, true}) {
        const std::string cfg = std::to_string(threads) + " threads, depth " +
                                std::to_string(depth) +
                                (metrics_on ? ", metrics on" : ", metrics off");
        obs::MetricRegistry registry;
        obs::EventJournal journal(64);
        engine::PipelineProfile profile;

        query::PlannerOptions popts;
        popts.profiler.profile = &profile;
        popts.journal = &journal;
        if (metrics_on) popts.annotator.metrics = &registry;

        stream::AsyncPrefetchOptions pre;
        pre.queue_depth = depth;
        if (metrics_on) pre.metrics = &registry;

        auto plan = query::BuildPlan(
            *parsed, stream::MakeAsyncPrefetch(Scan(), pre), popts);
        ASSERT_TRUE(plan.ok()) << cfg << ": " << plan.status().ToString();
        ThreadPool pool(threads);
        auto rows = engine::ParallelCollect(**plan, pool);
        ASSERT_TRUE(rows.ok()) << cfg << ": " << rows.status().ToString();

        // Delivered output: byte-identical to the unprofiled run.
        EXPECT_EQ(bytes_of(*rows, (*plan)->schema()), golden) << cfg;

        // Profiler counters, report and journal: byte-identical across
        // every configuration (pull-count determinism, no wall clock).
        if (golden_counters.empty()) {
          golden_counters = profile.CountersJson();
          golden_journal = journal.ToJson();
          golden_report = profile.ReportString();
          ASSERT_NE(golden_counters.find("\"name\":\"annotator\""),
                    std::string::npos)
              << golden_counters;
          ASSERT_GT(journal.recorded(), 0u)
              << "cost model must journal its plan-time choice";
        } else {
          EXPECT_EQ(profile.CountersJson(), golden_counters) << cfg;
          EXPECT_EQ(journal.ToJson(), golden_journal) << cfg;
          EXPECT_EQ(profile.ReportString(), golden_report) << cfg;
        }

        // No clock was injected: the non-deterministic annex records no
        // samples in any configuration.
        for (const auto& op : profile.operators()) {
          EXPECT_EQ(op.latency_samples, 0u) << cfg << " " << op.name;
        }

        // Metrics on: the accuracy ledger counted every annotated field
        // without perturbing any of the bytes above.
        if (metrics_on) {
          uint64_t annotated = 0;
          for (const auto& c : registry.Snapshot().counters) {
            if (c.key.name == "ausdb_accuracy_annotated_fields_total") {
              annotated = c.value;
            }
          }
          EXPECT_GT(annotated, 0u) << cfg;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Thread-count sweep: the sharded window pipeline under ParallelCollect,
// instrumented vs not, at {1, 4} workers — all runs bit-identical.

engine::Schema KeyedSchema() {
  engine::Schema s;
  EXPECT_TRUE(s.AddField({"k", engine::FieldType::kString}).ok());
  EXPECT_TRUE(s.AddField({"x", engine::FieldType::kUncertain}).ok());
  return s;
}

std::vector<engine::Tuple> KeyedInput(size_t n) {
  std::vector<engine::Tuple> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const std::string key = "key" + std::to_string((i * 7) % 23);
    const double mean =
        (i % 2 == 0 ? 1e6 : 1e-2) * (1.0 + static_cast<double>(i % 13));
    const double var = 1.0 + static_cast<double>(i % 5);
    tuples.push_back(engine::Tuple(
        {expr::Value(key),
         expr::Value(dist::RandomVar(
             std::make_shared<dist::GaussianDist>(mean, var), 10 + i % 50))}));
  }
  return tuples;
}

/// Serializes window output exactly: key text plus IEEE-754 bit patterns
/// of every double that could drift.
std::string WindowBytes(const std::vector<engine::Tuple>& rows) {
  std::ostringstream out;
  for (const auto& t : rows) {
    const dist::RandomVar rv = *t.value(1).random_var();
    out << *t.value(0).string_value() << " "
        << std::bit_cast<uint64_t>(rv.Mean()) << " "
        << std::bit_cast<uint64_t>(rv.Variance()) << " "
        << rv.sample_size() << " " << t.sequence() << "\n";
  }
  return out.str();
}

TEST(InstrumentationThreadSweepTest, ShardedWindowBitIdenticalAtAllCounts) {
  const std::vector<engine::Tuple> input = KeyedInput(1500);
  engine::ShardedWindowOptions sopts;
  sopts.window.window_size = 8;
  sopts.window.fn = engine::WindowAggFn::kAvg;
  sopts.num_shards = 4;
  sopts.batch_size = 64;

  auto make_plan = [&](obs::MetricRegistry* registry)
      -> engine::OperatorPtr {
    auto scan =
        std::make_unique<engine::VectorScan>(KeyedSchema(), input);
    auto agg = engine::ShardedPartitionedWindowAggregate::Make(
        engine::Instrument(std::move(scan), "scan", registry), "k", "x",
        "agg", sopts);
    EXPECT_TRUE(agg.ok()) << agg.status().ToString();
    return engine::Instrument(std::move(*agg), "window", registry);
  };

  // Golden: no pool, no metrics.
  auto plain = make_plan(nullptr);
  auto reference = engine::Collect(*plain);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::string golden = WindowBytes(*reference);
  ASSERT_FALSE(golden.empty());

  for (size_t threads : kThreadCounts) {
    ThreadPool pool(threads);

    auto uninstrumented = make_plan(nullptr);
    auto rows_off = engine::ParallelCollect(*uninstrumented, pool);
    ASSERT_TRUE(rows_off.ok()) << rows_off.status().ToString();
    EXPECT_EQ(WindowBytes(*rows_off), golden) << threads << " threads";

    obs::MetricRegistry registry;
    auto instrumented = make_plan(&registry);
    auto rows_on = engine::ParallelCollect(*instrumented, pool);
    ASSERT_TRUE(rows_on.ok()) << rows_on.status().ToString();
    EXPECT_EQ(WindowBytes(*rows_on), golden)
        << threads << " threads, metrics on";

    // Both wrapper layers saw the full stream.
    uint64_t scan_tuples = 0, window_tuples = 0;
    for (const auto& c : registry.Snapshot().counters) {
      if (c.key.name != "ausdb_engine_tuples_total") continue;
      for (const auto& l : c.key.labels) {
        if (l.value == "scan") scan_tuples = c.value;
        if (l.value == "window") window_tuples = c.value;
      }
    }
    EXPECT_EQ(scan_tuples, input.size());
    EXPECT_EQ(window_tuples, reference->size());
  }
}

}  // namespace
}  // namespace ausdb
