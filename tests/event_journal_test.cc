// The obs::EventJournal flight recorder: ring semantics, the
// byte-deterministic JSON exposition, and the journaling wired into
// every decision-making component — governor rung moves and breaker
// trips (with the per-rung epoch-occupancy counters of the accuracy
// ledger), cost-model re-choices, drift quarantine/relearn, late-tuple
// window revisions, and recovery checkpoint/restore.

#include <cmath>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/dist/gaussian.h"
#include "src/engine/executor.h"
#include "src/engine/recovery_manager.h"
#include "src/engine/scan.h"
#include "src/engine/time_window_aggregate.h"
#include "src/govern/cost_model.h"
#include "src/govern/governor.h"
#include "src/obs/event_journal.h"
#include "src/obs/metrics.h"
#include "src/stream/drift_detector.h"
#include "src/stream/replayable_source.h"

namespace ausdb {
namespace {

using obs::EventJournal;
using obs::EventRecord;
using obs::EventType;

// ---------------------------------------------------------------------
// Ring semantics

TEST(EventJournalTest, AppendAssignsMonotonicSequences) {
  EventJournal journal(8);
  journal.Append(EventType::kRungEscalation, 3, "governor", "rung 0 -> 1");
  journal.Append(EventType::kCostRechoice, 1, "cost_model", "analytical/merge1");
  const std::vector<EventRecord> events = journal.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].epoch, 3u);
  EXPECT_EQ(events[0].type, EventType::kRungEscalation);
  EXPECT_EQ(events[0].scope, "governor");
  EXPECT_EQ(events[0].detail, "rung 0 -> 1");
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(journal.recorded(), 2u);
  EXPECT_EQ(journal.dropped(), 0u);
}

TEST(EventJournalTest, WrapsOverwritingOldestAndCountsDrops) {
  EventJournal journal(3);
  for (uint64_t i = 0; i < 5; ++i) {
    journal.Append(EventType::kCheckpoint, i, "recovery",
                   std::to_string(i) + " outputs delivered");
  }
  EXPECT_EQ(journal.recorded(), 5u);
  EXPECT_EQ(journal.dropped(), 2u);
  const std::vector<EventRecord> events = journal.Events();
  ASSERT_EQ(events.size(), 3u);
  // Oldest retained first: seq 2, 3, 4 — 0 and 1 were overwritten.
  EXPECT_EQ(events[0].seq, 2u);
  EXPECT_EQ(events[1].seq, 3u);
  EXPECT_EQ(events[2].seq, 4u);
  EXPECT_EQ(events[0].epoch, 2u);
  EXPECT_EQ(events[2].detail, "4 outputs delivered");
}

TEST(EventJournalTest, ZeroCapacityClampsToOne) {
  EventJournal journal(0);
  EXPECT_EQ(journal.capacity(), 1u);
  journal.Append(EventType::kRestore, 0, "recovery", "a");
  journal.Append(EventType::kRestore, 1, "recovery", "b");
  const std::vector<EventRecord> events = journal.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detail, "b");
  EXPECT_EQ(journal.dropped(), 1u);
}

TEST(EventJournalTest, EventTypeNamesAreStable) {
  // These strings are the JSON wire format — renaming one is a
  // breaking change and must trip this test.
  EXPECT_STREQ(obs::EventTypeName(EventType::kRungEscalation),
               "rung_escalation");
  EXPECT_STREQ(obs::EventTypeName(EventType::kRungRelaxation),
               "rung_relaxation");
  EXPECT_STREQ(obs::EventTypeName(EventType::kBreakerTrip), "breaker_trip");
  EXPECT_STREQ(obs::EventTypeName(EventType::kBreakerReclose),
               "breaker_reclose");
  EXPECT_STREQ(obs::EventTypeName(EventType::kCostRechoice),
               "cost_rechoice");
  EXPECT_STREQ(obs::EventTypeName(EventType::kDriftQuarantine),
               "drift_quarantine");
  EXPECT_STREQ(obs::EventTypeName(EventType::kDriftRelearn),
               "drift_relearn");
  EXPECT_STREQ(obs::EventTypeName(EventType::kLateRevision),
               "late_revision");
  EXPECT_STREQ(obs::EventTypeName(EventType::kCheckpoint), "checkpoint");
  EXPECT_STREQ(obs::EventTypeName(EventType::kRestore), "restore");
}

TEST(EventJournalTest, ToJsonGolden) {
  EventJournal journal(2);
  journal.Append(EventType::kRungEscalation, 3, "governor", "rung 0 -> 1");
  journal.Append(EventType::kBreakerTrip, 9, "governor",
                 "after 3 refusal epochs at rung 1");
  journal.Append(EventType::kCostRechoice, 2, "cost_model",
                 "bootstrap(r=200)/merge1");
  EXPECT_EQ(
      journal.ToJson(),
      "{\"capacity\":2,\"recorded\":3,\"dropped\":1,\"events\":["
      "{\"seq\":1,\"epoch\":9,\"type\":\"breaker_trip\","
      "\"scope\":\"governor\",\"detail\":\"after 3 refusal epochs at "
      "rung 1\"},"
      "{\"seq\":2,\"epoch\":2,\"type\":\"cost_rechoice\","
      "\"scope\":\"cost_model\",\"detail\":\"bootstrap(r=200)/merge1\"}"
      "]}");
}

TEST(EventJournalTest, ToJsonEscapesDetailBytes) {
  EventJournal journal(4);
  journal.Append(EventType::kDriftQuarantine, 0, "drift.\"q\"",
                 "a\\b\nc");
  EXPECT_EQ(journal.ToJson(),
            "{\"capacity\":4,\"recorded\":1,\"dropped\":0,\"events\":["
            "{\"seq\":0,\"epoch\":0,\"type\":\"drift_quarantine\","
            "\"scope\":\"drift.\\\"q\\\"\",\"detail\":\"a\\\\b\\nc\"}"
            "]}");
}

TEST(EventJournalTest, EmptyJournalJson) {
  EventJournal journal(16);
  EXPECT_EQ(journal.ToJson(),
            "{\"capacity\":16,\"recorded\":0,\"dropped\":0,\"events\":[]}");
}

// ---------------------------------------------------------------------
// Governor journaling and the per-rung occupancy ledger

govern::SignalSnapshot QueueSnapshot(double fill, uint64_t epoch = 0) {
  govern::SignalSnapshot snap;
  snap.epoch = epoch;
  snap.queue_capacity = 1000;
  snap.queue_depth = static_cast<size_t>(fill * 1000);
  return snap;
}

govern::GovernorOptions FastOptions() {
  govern::GovernorOptions options;
  options.ladder.dwell_epochs = 2;
  options.breaker_trip_epochs = 3;
  options.breaker_cooldown_epochs = 4;
  return options;
}

TEST(GovernorJournalTest, JournalsEscalationTripRecloseRelaxation) {
  EventJournal journal(64);
  govern::GovernorOptions options = FastOptions();
  options.ladder.accuracy_floor = 1.0;  // rung 0 only: trips quickly
  options.journal = &journal;
  govern::OverloadGovernor governor(options);
  uint64_t epoch = 0;
  while (!governor.decision().breaker_open) {
    governor.Observe(QueueSnapshot(1.0, epoch++));
    ASSERT_LT(epoch, 100u);
  }
  // Cooldown elapses under calm snapshots, then the breaker recloses
  // and the rung relaxes back toward zero (already at 0 here).
  while (governor.decision().breaker_open) {
    governor.Observe(QueueSnapshot(0.0, epoch++));
    ASSERT_LT(epoch, 100u);
  }

  const std::vector<EventRecord> events = journal.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, EventType::kBreakerTrip);
  EXPECT_EQ(events[0].scope, "governor");
  EXPECT_EQ(events[0].detail, "after 3 refusal epochs at rung 0");
  EXPECT_EQ(events[1].type, EventType::kBreakerReclose);
  EXPECT_EQ(events[1].detail, "half-open re-admit at rung 0");
}

TEST(GovernorJournalTest, JournalsRungMovesWithEpochs) {
  EventJournal journal(64);
  govern::GovernorOptions options = FastOptions();
  options.journal = &journal;
  govern::OverloadGovernor governor(options);
  // Two hot epochs escalate 0 -> 1 (dwell = 2), two calm ones relax.
  governor.Observe(QueueSnapshot(0.95, 0));
  governor.Observe(QueueSnapshot(0.95, 1));
  ASSERT_EQ(governor.decision().rung, 1u);
  governor.Observe(QueueSnapshot(0.1, 2));
  governor.Observe(QueueSnapshot(0.1, 3));
  ASSERT_EQ(governor.decision().rung, 0u);

  const std::vector<EventRecord> events = journal.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, EventType::kRungEscalation);
  EXPECT_EQ(events[0].epoch, 1u);
  EXPECT_EQ(events[0].detail, "rung 0 -> 1");
  EXPECT_EQ(events[1].type, EventType::kRungRelaxation);
  EXPECT_EQ(events[1].epoch, 3u);
  EXPECT_EQ(events[1].detail, "rung 1 -> 0");
}

TEST(GovernorJournalTest, RungOccupancyLedgerSumsToEpochs) {
  obs::MetricRegistry registry;
  govern::GovernorOptions options = FastOptions();
  options.metrics = &registry;
  options.metrics_label = "ledger";
  govern::OverloadGovernor governor(options);

  // 4 hot epochs climb two rungs, then 6 calm ones descend back.
  uint64_t epoch = 0;
  for (; epoch < 4; ++epoch) governor.Observe(QueueSnapshot(0.95, epoch));
  ASSERT_EQ(governor.decision().rung, 2u);
  for (; epoch < 10; ++epoch) governor.Observe(QueueSnapshot(0.1, epoch));
  ASSERT_EQ(governor.decision().rung, 0u);

  // Every epoch is charged to exactly one rung — the one in force when
  // the epoch began.
  const govern::GovernorStats& stats = governor.stats();
  ASSERT_EQ(stats.rung_epochs.size(), options.ladder.rungs.size());
  uint64_t sum = 0;
  for (uint64_t occupancy : stats.rung_epochs) sum += occupancy;
  EXPECT_EQ(sum, stats.epochs);
  EXPECT_EQ(stats.epochs, 10u);
  // Occupancy trail: rungs 0..2 were visited, deeper rungs never.
  EXPECT_GT(stats.rung_epochs[0], 0u);
  EXPECT_GT(stats.rung_epochs[1], 0u);
  EXPECT_GT(stats.rung_epochs[2], 0u);
  for (size_t r = 3; r < stats.rung_epochs.size(); ++r) {
    EXPECT_EQ(stats.rung_epochs[r], 0u) << "rung " << r;
  }

  // The registry mirror matches the stats ledger rung for rung.
  for (size_t r = 0; r < stats.rung_epochs.size(); ++r) {
    obs::Labels labels = {{"plan", "ledger"},
                          {"rung", std::to_string(r)}};
    EXPECT_EQ(
        registry.GetCounter("ausdb_govern_rung_epochs_total", labels)
            ->Value(),
        stats.rung_epochs[r])
        << "rung " << r;
  }
}

TEST(GovernorJournalTest, NullJournalIsSilentlyDisabled) {
  govern::OverloadGovernor governor(FastOptions());
  for (uint64_t e = 0; e < 10; ++e) {
    governor.Observe(QueueSnapshot(0.95, e));
  }
  EXPECT_GT(governor.stats().escalations, 0u);  // decisions still made
}

// ---------------------------------------------------------------------
// Cost-model re-choice journaling

TEST(CostModelJournalTest, JournalsInitialChoiceAndRetargets) {
  EventJournal journal(16);
  govern::ChooserOptions options;
  options.journal = &journal;
  // A histogram workload makes merge factors a real trade: coarser
  // bins are cheaper but add resolution slack to the half-width.
  options.prior.histogram_bins = 100;
  govern::MethodChooser chooser(options);

  // Construction journals the initial (cheapest-candidate) choice —
  // with no target, the coarsest merge wins on cost.
  ASSERT_EQ(journal.Events().size(), 1u);
  EXPECT_EQ(journal.Events()[0].type, EventType::kCostRechoice);
  EXPECT_EQ(journal.Events()[0].scope, "cost_model");
  EXPECT_EQ(journal.Events()[0].detail, chooser.current().ToString());

  // A target tight enough to rule the coarsest merge out forces a
  // different spec: one more journal entry.
  govern::AccuracyTarget target;
  target.epsilon = 0.25;
  target.confidence = 0.9;
  ASSERT_TRUE(chooser.SetTarget(target).ok());
  const std::vector<EventRecord> events = journal.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].detail, chooser.current().ToString());
  EXPECT_NE(events[1].detail, events[0].detail);

  // Re-setting the same target re-chooses the same spec: changes-only,
  // so the journal must not grow.
  ASSERT_TRUE(chooser.SetTarget(target).ok());
  EXPECT_EQ(journal.Events().size(), 2u);
}

TEST(CostModelJournalTest, JournalEntriesMirrorDecisionLog) {
  EventJournal journal(32);
  govern::ChooserOptions options;
  options.journal = &journal;
  options.epoch_interval = 8;
  options.prior.histogram_bins = 100;
  govern::MethodChooser chooser(options);
  govern::AccuracyTarget target;
  target.epsilon = 0.25;
  target.confidence = 0.9;
  ASSERT_TRUE(chooser.SetTarget(target).ok());

  // Drive recalibration epochs through a much tighter workload (low
  // dispersion): every merge factor becomes feasible, so the chooser
  // re-chooses the cheap coarse merge it had to give up at plan time.
  for (int i = 0; i < 64; ++i) {
    govern::WindowObservation obs;
    obs.cardinality = 50;
    obs.dispersion = 0.1;
    obs.histogram_bins = 100;
    chooser.Observe(obs);
  }

  // Journal entries and the chooser's own decision log agree 1:1 in
  // epoch and rendered spec.
  const std::vector<EventRecord> events = journal.Events();
  const auto& decisions = chooser.decisions();
  ASSERT_EQ(events.size(), decisions.size());
  ASSERT_GE(decisions.size(), 3u) << "expected a workload-driven rechoice";
  for (size_t i = 0; i < decisions.size(); ++i) {
    EXPECT_EQ(events[i].epoch, decisions[i].epoch);
    EXPECT_EQ(events[i].detail, decisions[i].spec.ToString());
    EXPECT_EQ(events[i].type, EventType::kCostRechoice);
  }
}

// ---------------------------------------------------------------------
// Drift quarantine / relearn journaling

TEST(DriftJournalTest, JournalsQuarantineAndRelearn) {
  EventJournal journal(16);
  stream::DriftDetectorOptions opts;
  opts.reference_size = 128;
  opts.window_size = 64;
  opts.check_every = 16;
  opts.patience = 2;
  opts.metrics_label = "x";
  opts.journal = &journal;
  stream::DriftDetector detector(opts);

  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(detector.Observe(50.0 + (i % 32)).ok());
  }
  ASSERT_FALSE(detector.drifted());
  EXPECT_TRUE(journal.Events().empty()) << "no drift, no events";

  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(detector.Observe(200.0 + (i % 32)).ok());
  }
  ASSERT_TRUE(detector.drifted());
  ASSERT_TRUE(detector.Relearn().ok());

  const std::vector<EventRecord> events = journal.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, EventType::kDriftQuarantine);
  EXPECT_EQ(events[0].scope, "drift.x");
  EXPECT_EQ(events[0].detail.substr(0, 3), "ks=");
  EXPECT_NE(events[0].detail.find(" p="), std::string::npos);
  EXPECT_EQ(events[1].type, EventType::kDriftRelearn);
  EXPECT_EQ(events[1].detail,
            "reference relearned from 64 trailing observations");
  // Logical time advances between the two decisions.
  EXPECT_GE(events[1].epoch, events[0].epoch);
}

// ---------------------------------------------------------------------
// Late-revision journaling

engine::Schema TsSchema() {
  engine::Schema s;
  EXPECT_TRUE(s.AddField({"ts", engine::FieldType::kDouble}).ok());
  EXPECT_TRUE(s.AddField({"x", engine::FieldType::kUncertain}).ok());
  return s;
}

engine::Tuple TsTuple(double ts, double mean, uint64_t seq) {
  engine::Tuple t({expr::Value(ts),
                   expr::Value(dist::RandomVar(
                       std::make_shared<dist::GaussianDist>(mean, 1.0), 10))});
  t.set_sequence(seq);
  return t;
}

TEST(LateRevisionJournalTest, JournalsRevisionsNotInOrderArrivals) {
  EventJournal journal(16);
  engine::TimeWindowOptions rev;
  rev.duration = 2.0;
  rev.require_ordered = false;
  rev.emit_revisions = true;
  rev.allowed_lateness = 100.0;
  rev.journal = &journal;
  // ts=1 arrives after windows covering it have been emitted: revision.
  std::vector<engine::Tuple> tuples = {TsTuple(0, 0, 0), TsTuple(10, 100, 1),
                                       TsTuple(1, 10, 2)};
  auto agg = engine::TimeWindowAggregate::Make(
      std::make_unique<engine::VectorScan>(TsSchema(), std::move(tuples)),
      "ts", "x", "a", rev);
  ASSERT_TRUE(agg.ok());
  auto out = engine::Collect(**agg);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  const std::vector<EventRecord> events = journal.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, EventType::kLateRevision);
  EXPECT_EQ(events[0].scope, "time_window");
  EXPECT_EQ(events[0].detail.substr(0, 17), "late tuple at t=1");
  EXPECT_NE(events[0].detail.find("revised"), std::string::npos);
}

// ---------------------------------------------------------------------
// Recovery checkpoint / restore journaling

namespace fs = std::filesystem;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("ausdb_journal_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(RecoveryJournalTest, JournalsCheckpointAndRestore) {
  ScratchDir dir("ckpt");
  EventJournal journal(16);

  stream::KeyedGaussianSourceOptions sopts;
  sopts.count = 16;
  auto source = stream::ReplayableKeyedGaussianSource::Make(sopts);
  ASSERT_TRUE(source.ok());

  engine::RecoveryManagerOptions ropts;
  ropts.journal = &journal;
  engine::RecoveryManager manager(dir.path(), ropts);
  ASSERT_TRUE(manager.RegisterSource("source", source->get()).ok());

  auto gen = manager.Checkpoint(/*outputs_delivered=*/2);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();

  {
    const std::vector<EventRecord> events = journal.Events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].type, EventType::kCheckpoint);
    EXPECT_EQ(events[0].scope, "recovery");
    EXPECT_EQ(events[0].epoch, *gen);
    EXPECT_EQ(events[0].detail, "2 outputs delivered");
  }

  // A second manager over the same directory restores the generation
  // and journals it.
  auto source2 = stream::ReplayableKeyedGaussianSource::Make(sopts);
  ASSERT_TRUE(source2.ok());
  engine::RecoveryManager manager2(dir.path(), ropts);
  ASSERT_TRUE(manager2.RegisterSource("source", source2->get()).ok());
  auto recovered = manager2.Restore();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_TRUE(recovered->has_value());

  const std::vector<EventRecord> events = journal.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].type, EventType::kRestore);
  EXPECT_EQ(events[1].scope, "recovery");
  EXPECT_EQ(events[1].epoch, (*recovered)->generation);
  EXPECT_EQ(events[1].detail, "resumed after 2 delivered outputs");
}

}  // namespace
}  // namespace ausdb
