// Deterministic-equivalence harness for async prefetching: every
// end-to-end pipeline exercised by integration_test.cc is run once
// synchronously and once through AsyncPrefetchSource at queue depths
// {1, 2, 64}, and the serialized output bytes must be identical — the
// bit-identity contract that lets prefetching be enabled on any
// pipeline without re-validating its accuracy semantics.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/executor.h"
#include "src/engine/instrumented_operator.h"
#include "src/engine/scan.h"
#include "src/io/observation_loader.h"
#include "src/obs/metrics.h"
#include "src/query/planner.h"
#include "src/serde/json_writer.h"
#include "src/serde/table_printer.h"
#include "src/stats/random_variates.h"
#include "src/stream/async_prefetch_source.h"
#include "src/workload/cartel.h"

namespace ausdb {
namespace {

constexpr size_t kDepths[] = {1, 2, 64};

// Same Figure 1 data as integration_test.cc: few observations for road
// 19, many for road 20.
std::string Figure1Csv() {
  std::ostringstream csv;
  csv << "road_id,delay\n";
  Rng rng(819);
  for (int i = 0; i < 3; ++i) {
    csv << "19," << 40.0 + 40.0 * rng.NextDouble() << "\n";
  }
  for (int i = 0; i < 50; ++i) {
    csv << "20," << 40.0 + 40.0 * rng.NextDouble() << "\n";
  }
  return csv.str();
}

// Runs `sql` over `scan` and serializes every result surface we ship —
// per-tuple JSON (values, accuracy annotations, probabilities) plus the
// rendered table — into one byte string for exact comparison.
std::string RunQueryBytes(const std::string& sql,
                          engine::OperatorPtr scan) {
  auto plan = query::PlanQuery(sql, std::move(scan));
  EXPECT_TRUE(plan.ok()) << sql << ": " << plan.status().ToString();
  if (!plan.ok()) return "<plan error>";
  auto rows = engine::Collect(**plan);
  EXPECT_TRUE(rows.ok()) << sql << ": " << rows.status().ToString();
  if (!rows.ok()) return "<exec error>";
  std::ostringstream out;
  for (const auto& t : *rows) {
    out << serde::ToJson(t, (*plan)->schema()) << "\n";
    out << "seq=" << t.sequence() << "\n";
  }
  serde::PrintTable(out, (*plan)->schema(), *rows);
  return out.str();
}

class AsyncEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = io::ParseCsv(Figure1Csv());
    ASSERT_TRUE(table.ok());
    io::ObservationLoadOptions opts;
    opts.key_column = "road_id";
    opts.value_column = "delay";
    opts.learn_as = io::LearnAs::kEmpirical;
    auto loaded = io::LoadObservations(*table, opts);
    ASSERT_TRUE(loaded.ok());
    data_ = std::move(*loaded);
  }

  engine::OperatorPtr SyncScan() const {
    return std::make_unique<engine::VectorScan>(data_.schema,
                                                data_.tuples);
  }

  engine::OperatorPtr AsyncScan(size_t depth,
                                obs::MetricRegistry* registry = nullptr)
      const {
    stream::AsyncPrefetchOptions opts;
    opts.queue_depth = depth;
    opts.metrics = registry;
    return stream::MakeAsyncPrefetch(SyncScan(), opts);
  }

  // The equivalence harness: one synchronous golden run, then per queue
  // depth one plain prefetched run and one fully instrumented run (queue
  // metrics plus an InstrumentedOperator wrapper), bytes compared
  // exactly — prefetching AND observability are both invisible in the
  // output.
  void ExpectEquivalent(const std::string& sql) {
    const std::string golden = RunQueryBytes(sql, SyncScan());
    ASSERT_NE(golden.find("row(s)"), std::string::npos) << sql;
    for (size_t depth : kDepths) {
      const std::string bytes = RunQueryBytes(sql, AsyncScan(depth));
      ASSERT_EQ(bytes, golden) << sql << " at queue depth " << depth;

      obs::MetricRegistry registry;
      const std::string instrumented = RunQueryBytes(
          sql, engine::Instrument(AsyncScan(depth, &registry), "source",
                                  &registry));
      ASSERT_EQ(instrumented, golden)
          << sql << " at queue depth " << depth << " with metrics";
    }
  }

  io::LoadedObservations data_;
};

TEST_F(AsyncEquivalenceTest, ThresholdQuery) {
  ExpectEquivalent("SELECT road_id FROM t WHERE delay > 50 PROB 0.5");
}

TEST_F(AsyncEquivalenceTest, SignificancePredicateQuery) {
  ExpectEquivalent(
      "SELECT road_id FROM t WHERE PTEST(delay > 50, 0.5, 0.05)");
}

TEST_F(AsyncEquivalenceTest, BootstrapAccuracyQuery) {
  ExpectEquivalent(
      "SELECT * FROM t WHERE delay > 50 "
      "WITH ACCURACY BOOTSTRAP CONFIDENCE 0.9");
}

TEST_F(AsyncEquivalenceTest, ProbProjectionWithSort) {
  ExpectEquivalent(
      "SELECT road_id, PROB(delay > 50) AS p FROM t ORDER BY p DESC");
}

TEST(AsyncCartelEquivalenceTest, RouteComparisonPipeline) {
  // The cartel route-comparison pipeline of integration_test.cc:
  // simulator -> learned route delays -> AQL mTest. The simulation runs
  // ONCE; sync and async runs consume copies of the same tuples.
  workload::CartelOptions copts;
  copts.num_segments = 60;
  copts.observations_per_segment = 650;
  copts.route_length = 10;
  workload::CartelSimulator sim(copts);
  Rng rng(7);
  const auto pair = sim.MakeRoutePairWithRankGap(rng, 50);

  engine::Schema schema;
  ASSERT_TRUE(
      schema.AddField({"which", engine::FieldType::kString}).ok());
  ASSERT_TRUE(
      schema.AddField({"total", engine::FieldType::kUncertain}).ok());
  std::vector<engine::Tuple> tuples;
  for (const auto& [name, route] :
       {std::pair{"greater", &pair.greater}, {"lesser", &pair.lesser}}) {
    auto obs = sim.RouteDelayObservations(*route, 200, rng);
    ASSERT_TRUE(obs.ok());
    auto learned = dist::LearnGaussian(*obs);
    ASSERT_TRUE(learned.ok());
    tuples.emplace_back(std::vector<expr::Value>{
        expr::Value(std::string(name)),
        expr::Value(dist::RandomVar(*learned))});
  }

  const double threshold =
      sim.TrueRouteMean(pair.lesser) + pair.mean_gap / 2.0;
  std::ostringstream sql;
  sql << "SELECT which FROM r WHERE MTEST(total, '>', " << threshold
      << ", 0.05)";

  const std::string golden = RunQueryBytes(
      sql.str(), std::make_unique<engine::VectorScan>(schema, tuples));
  ASSERT_NE(golden.find("greater"), std::string::npos);
  for (size_t depth : kDepths) {
    stream::AsyncPrefetchOptions opts;
    opts.queue_depth = depth;
    const std::string bytes = RunQueryBytes(
        sql.str(),
        stream::MakeAsyncPrefetch(
            std::make_unique<engine::VectorScan>(schema, tuples), opts));
    ASSERT_EQ(bytes, golden) << "queue depth " << depth;
  }
}

}  // namespace
}  // namespace ausdb
