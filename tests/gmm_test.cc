#include "src/dist/gmm_learner.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/bootstrap/bootstrap_accuracy.h"
#include "src/dist/mixture.h"
#include "src/stats/random_variates.h"

namespace ausdb {
namespace dist {
namespace {

std::vector<double> TwoModeSample(Rng& rng, size_t n) {
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.4) {
      out.push_back(stats::SampleNormal(rng, -5.0, 1.0));
    } else {
      out.push_back(stats::SampleNormal(rng, 5.0, 1.5));
    }
  }
  return out;
}

TEST(GmmLearnerTest, RecoversTwoWellSeparatedModes) {
  Rng rng(1);
  const auto sample = TwoModeSample(rng, 2000);
  GmmFitInfo info;
  auto learned = LearnGaussianMixture(sample, {}, &info);
  ASSERT_TRUE(learned.ok()) << learned.status().ToString();
  EXPECT_TRUE(info.converged);
  EXPECT_EQ(learned->sample_size, 2000u);

  const auto& mix =
      static_cast<const MixtureDist&>(*learned->distribution);
  ASSERT_EQ(mix.components().size(), 2u);
  std::vector<std::pair<double, double>> comps;  // (mean, weight)
  for (size_t j = 0; j < 2; ++j) {
    comps.emplace_back(mix.components()[j]->Mean(), mix.weights()[j]);
  }
  std::sort(comps.begin(), comps.end());
  EXPECT_NEAR(comps[0].first, -5.0, 0.3);
  EXPECT_NEAR(comps[0].second, 0.4, 0.05);
  EXPECT_NEAR(comps[1].first, 5.0, 0.3);
  EXPECT_NEAR(comps[1].second, 0.6, 0.05);
}

TEST(GmmLearnerTest, SingleComponentMatchesGaussianMle) {
  Rng rng(2);
  const auto sample = stats::SampleMany(
      500, [&] { return stats::SampleNormal(rng, 3.0, 2.0); });
  GmmLearnOptions opts;
  opts.components = 1;
  auto learned = LearnGaussianMixture(sample, opts);
  ASSERT_TRUE(learned.ok());
  EXPECT_NEAR(learned->distribution->Mean(), 3.0, 0.3);
  EXPECT_NEAR(learned->distribution->Variance(), 4.0, 0.8);
}

TEST(GmmLearnerTest, LikelihoodNeverDecreasesToConvergence) {
  Rng rng(3);
  const auto sample = TwoModeSample(rng, 400);
  GmmLearnOptions opts;
  opts.max_iterations = 1;
  GmmFitInfo one_step;
  ASSERT_TRUE(LearnGaussianMixture(sample, opts, &one_step).ok());
  opts.max_iterations = 50;
  GmmFitInfo many_steps;
  ASSERT_TRUE(LearnGaussianMixture(sample, opts, &many_steps).ok());
  EXPECT_GE(many_steps.log_likelihood, one_step.log_likelihood - 1e-6);
}

TEST(GmmLearnerTest, DegenerateDataGetsVarianceFloor) {
  const std::vector<double> constant(20, 7.0);
  auto learned = LearnGaussianMixture(constant, {});
  ASSERT_TRUE(learned.ok()) << learned.status().ToString();
  EXPECT_NEAR(learned->distribution->Mean(), 7.0, 1e-6);
  EXPECT_GE(learned->distribution->Variance(), 0.0);
  EXPECT_TRUE(std::isfinite(learned->distribution->Variance()));
}

TEST(GmmLearnerTest, InvalidInputs) {
  const std::vector<double> tiny = {1.0, 2.0, 3.0};
  GmmLearnOptions opts;
  opts.components = 2;
  EXPECT_TRUE(LearnGaussianMixture(tiny, opts)
                  .status()
                  .IsInsufficientData());
  opts.components = 0;
  EXPECT_TRUE(LearnGaussianMixture(tiny, opts)
                  .status()
                  .IsInvalidArgument());
}

TEST(GmmLearnerTest, DeterministicForSameSeed) {
  Rng rng(4);
  const auto sample = TwoModeSample(rng, 300);
  auto a = LearnGaussianMixture(sample, {});
  auto b = LearnGaussianMixture(sample, {});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->distribution->Mean(), b->distribution->Mean());
  EXPECT_DOUBLE_EQ(a->distribution->Variance(),
                   b->distribution->Variance());
}

TEST(GmmLearnerTest, FeedsBootstrapAccuracyPipeline) {
  // The "second category" path: a model-based distribution is sampled
  // and fed to BOOTSTRAP-ACCURACY-INFO.
  Rng rng(5);
  const auto sample = TwoModeSample(rng, 600);
  auto learned = LearnGaussianMixture(sample, {});
  ASSERT_TRUE(learned.ok());
  Rng boot_rng(6);
  auto info = bootstrap::BootstrapAccuracyFromDistribution(
      *learned->distribution, 30, 20, 0.9, boot_rng);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->mean_ci->Contains(learned->distribution->Mean()));
}

}  // namespace
}  // namespace dist
}  // namespace ausdb
