#include <vector>

#include <gtest/gtest.h>

#include "src/dist/gaussian.h"
#include "src/dist/learner.h"
#include "src/engine/executor.h"
#include "src/engine/scan.h"
#include "src/engine/time_window_aggregate.h"
#include "src/engine/union_all.h"

namespace ausdb {
namespace engine {
namespace {

using dist::RandomVar;

Schema TsSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"ts", FieldType::kDouble}).ok());
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  return s;
}

Tuple TsTuple(double ts, double mean, size_t n = 10) {
  return Tuple({expr::Value(ts),
                expr::Value(RandomVar(
                    std::make_shared<dist::GaussianDist>(mean, 1.0), n))});
}

TEST(UnionAllTest, ConcatenatesInOrder) {
  std::vector<OperatorPtr> children;
  children.push_back(std::make_unique<VectorScan>(
      TsSchema(), std::vector<Tuple>{TsTuple(1, 10), TsTuple(2, 20)}));
  children.push_back(std::make_unique<VectorScan>(
      TsSchema(), std::vector<Tuple>{TsTuple(3, 30)}));
  auto u = UnionAll::Make(std::move(children));
  ASSERT_TRUE(u.ok());
  auto out = Collect(**u);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_DOUBLE_EQ(*(*out)[2].value(0).double_value(), 3.0);
  ASSERT_TRUE((*u)->Reset().ok());
  EXPECT_EQ(Collect(**u)->size(), 3u);
}

TEST(UnionAllTest, RejectsMismatchedSchemas) {
  Schema other;
  ASSERT_TRUE(other.AddField({"y", FieldType::kDouble}).ok());
  std::vector<OperatorPtr> children;
  children.push_back(
      std::make_unique<VectorScan>(TsSchema(), std::vector<Tuple>{}));
  children.push_back(
      std::make_unique<VectorScan>(other, std::vector<Tuple>{}));
  EXPECT_TRUE(UnionAll::Make(std::move(children)).status().IsTypeError());
  EXPECT_TRUE(UnionAll::Make({}).status().IsInvalidArgument());
}

TEST(TimeWindowTest, EvictsByDuration) {
  // Duration 10: at ts=25 only ts in (15, 25] remains.
  std::vector<Tuple> tuples = {TsTuple(0, 10), TsTuple(9, 20),
                               TsTuple(15, 30), TsTuple(25, 40)};
  auto scan = std::make_unique<VectorScan>(TsSchema(), tuples);
  TimeWindowOptions opts;
  opts.duration = 10.0;
  auto agg =
      TimeWindowAggregate::Make(std::move(scan), "ts", "x", "avg", opts);
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 4u);
  // ts=0: {10} -> 10; ts=9: {10,20} -> 15; ts=15: {20(ts9),30} -> 25
  // (ts=0 evicted at cutoff 5); ts=25: {40} (cutoff 15 evicts ts<=15).
  EXPECT_DOUBLE_EQ((*out)[0].value(0).random_var()->Mean(), 10.0);
  EXPECT_DOUBLE_EQ((*out)[1].value(0).random_var()->Mean(), 15.0);
  EXPECT_DOUBLE_EQ((*out)[2].value(0).random_var()->Mean(), 25.0);
  EXPECT_DOUBLE_EQ((*out)[3].value(0).random_var()->Mean(), 40.0);
}

TEST(TimeWindowTest, DfSampleSizeTracksWindowMin) {
  std::vector<Tuple> tuples = {TsTuple(0, 1, 100), TsTuple(1, 1, 3),
                               TsTuple(20, 1, 50)};
  auto scan = std::make_unique<VectorScan>(TsSchema(), tuples);
  TimeWindowOptions opts;
  opts.duration = 5.0;
  auto agg =
      TimeWindowAggregate::Make(std::move(scan), "ts", "x", "avg", opts);
  ASSERT_TRUE(agg.ok());
  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[1].value(0).random_var()->sample_size(), 3u);
  // At ts=20 both earlier entries are evicted.
  EXPECT_EQ((*out)[2].value(0).random_var()->sample_size(), 50u);
}

TEST(TimeWindowTest, OrderedEnforcementAndOptOut) {
  std::vector<Tuple> tuples = {TsTuple(5, 1), TsTuple(3, 2)};
  auto scan = std::make_unique<VectorScan>(TsSchema(), tuples);
  auto agg = TimeWindowAggregate::Make(std::move(scan), "ts", "x", "avg",
                                       {});
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE(Collect(**agg).status().IsInvalidArgument());

  auto scan2 = std::make_unique<VectorScan>(TsSchema(), tuples);
  TimeWindowOptions lax;
  lax.require_ordered = false;
  lax.duration = 10.0;
  auto agg2 = TimeWindowAggregate::Make(std::move(scan2), "ts", "x",
                                        "avg", lax);
  ASSERT_TRUE(agg2.ok());
  auto out = Collect(**agg2);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_DOUBLE_EQ((*out)[1].value(0).random_var()->Mean(), 1.5);
}

TEST(TimeWindowTest, BadOptionsAndColumns) {
  auto scan = std::make_unique<VectorScan>(TsSchema(),
                                           std::vector<Tuple>{});
  TimeWindowOptions zero;
  zero.duration = 0.0;
  EXPECT_TRUE(TimeWindowAggregate::Make(std::move(scan), "ts", "x", "o",
                                        zero)
                  .status()
                  .IsInvalidArgument());
  auto scan2 = std::make_unique<VectorScan>(TsSchema(),
                                            std::vector<Tuple>{});
  EXPECT_TRUE(TimeWindowAggregate::Make(std::move(scan2), "x", "x", "o",
                                        {})
                  .status()
                  .IsTypeError());  // uncertain timestamp
}

TEST(TimeWindowTest, UnionFeedsTimeWindow) {
  // Two gateways' feeds merged, then aggregated over a 10s range.
  std::vector<OperatorPtr> feeds;
  feeds.push_back(std::make_unique<VectorScan>(
      TsSchema(), std::vector<Tuple>{TsTuple(1, 10), TsTuple(2, 20)}));
  feeds.push_back(std::make_unique<VectorScan>(
      TsSchema(), std::vector<Tuple>{TsTuple(3, 30)}));
  auto u = UnionAll::Make(std::move(feeds));
  ASSERT_TRUE(u.ok());
  TimeWindowOptions opts;
  opts.duration = 10.0;
  auto agg = TimeWindowAggregate::Make(std::move(*u), "ts", "x", "avg",
                                       opts);
  ASSERT_TRUE(agg.ok());
  auto out = Collect(**agg);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_DOUBLE_EQ((*out)[2].value(0).random_var()->Mean(), 20.0);
}

}  // namespace
}  // namespace engine
}  // namespace ausdb
// Appended: RANGE-window AQL coverage.
#include "src/query/parser.h"
#include "src/query/planner.h"

namespace ausdb {
namespace engine {
namespace {

TEST(RangeWindowQueryTest, EndToEndSql) {
  std::vector<Tuple> tuples = {TsTuple(0, 10), TsTuple(5, 20),
                               TsTuple(11, 30)};
  auto scan = std::make_unique<VectorScan>(TsSchema(), tuples);
  auto plan = query::PlanQuery(
      "SELECT AVG(x) OVER (RANGE 10 ON ts) AS windowed FROM s "
      "WITH ACCURACY ANALYTICAL",
      std::move(scan));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->schema().names()[0], "windowed");
  auto out = Collect(**plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 3u);
  // At ts=11, cutoff is 1: only ts=5 and ts=11 remain.
  EXPECT_DOUBLE_EQ((*out)[2].value(0).random_var()->Mean(), 25.0);
  ASSERT_TRUE((*out)[2].accuracy()[0].has_value());
}

TEST(RangeWindowQueryTest, RendersAndReparses) {
  auto q = query::Parse(
      "SELECT SUM(x) OVER (RANGE 2.5 ON ts) FROM s LIMIT 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->window_agg->is_time_based());
  EXPECT_DOUBLE_EQ(q->window_agg->range_duration, 2.5);
  EXPECT_EQ(q->window_agg->range_column, "ts");
  auto q2 = query::Parse(q->ToString());
  ASSERT_TRUE(q2.ok()) << "rendered: " << q->ToString();
  EXPECT_EQ(q->ToString(), q2->ToString());
}

TEST(RangeWindowQueryTest, BadRangeRejected) {
  EXPECT_TRUE(query::Parse("SELECT AVG(x) OVER (RANGE 0 ON ts) FROM s")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(query::Parse("SELECT AVG(x) OVER (RANGE 5) FROM s")
                  .status()
                  .IsParseError());
}

}  // namespace
}  // namespace engine
}  // namespace ausdb
