#include <sstream>

#include <gtest/gtest.h>

#include "src/dist/discrete.h"
#include "src/dist/gaussian.h"
#include "src/dist/learner.h"
#include "src/serde/json_writer.h"
#include "src/serde/table_printer.h"

namespace ausdb {
namespace serde {
namespace {

using dist::RandomVar;

TEST(JsonQuoteTest, EscapesSpecials) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonQuote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(JsonQuote(std::string("a\x01") + "b"), "\"a\\u0001b\"");
}

TEST(JsonWriterTest, Distributions) {
  dist::PointDist p(5.0);
  EXPECT_EQ(ToJson(p), "{\"kind\":\"point\",\"value\":5}");
  dist::GaussianDist g(1.0, 2.0);
  EXPECT_EQ(ToJson(g),
            "{\"kind\":\"gaussian\",\"mean\":1,\"variance\":2}");
  auto h = dist::HistogramDist::Make({0.0, 1.0, 2.0}, {0.25, 0.75});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(ToJson(*h),
            "{\"kind\":\"histogram\",\"edges\":[0,1,2],"
            "\"probs\":[0.25,0.75]}");
  auto d = dist::DiscreteDist::Make({1.0, 2.0}, {0.5, 0.5});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(ToJson(*d),
            "{\"kind\":\"discrete\",\"values\":[1,2],"
            "\"probs\":[0.5,0.5]}");
}

TEST(JsonWriterTest, ConfidenceIntervalAndAccuracy) {
  accuracy::ConfidenceInterval ci{1.0, 2.0, 0.9};
  EXPECT_EQ(ToJson(ci), "{\"lo\":1,\"hi\":2,\"confidence\":0.9}");

  accuracy::AccuracyInfo info;
  info.sample_size = 20;
  info.mean_ci = ci;
  const std::string json = ToJson(info);
  EXPECT_NE(json.find("\"n\":20"), std::string::npos);
  EXPECT_NE(json.find("\"method\":\"analytical\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_ci\":"), std::string::npos);
  EXPECT_EQ(json.find("\"variance_ci\""), std::string::npos);
}

TEST(JsonWriterTest, NonFiniteRendersNull) {
  accuracy::ConfidenceInterval ci{
      0.0, std::numeric_limits<double>::infinity(), 0.9};
  EXPECT_EQ(ToJson(ci), "{\"lo\":0,\"hi\":null,\"confidence\":0.9}");
}

TEST(JsonWriterTest, Values) {
  EXPECT_EQ(ToJson(expr::Value()), "null");
  EXPECT_EQ(ToJson(expr::Value(true)), "true");
  EXPECT_EQ(ToJson(expr::Value(1.5)), "1.5");
  EXPECT_EQ(ToJson(expr::Value(std::string("x"))), "\"x\"");
  RandomVar rv(std::make_shared<dist::GaussianDist>(0.0, 1.0), 20);
  const std::string json = ToJson(expr::Value(rv));
  EXPECT_NE(json.find("\"distribution\":{\"kind\":\"gaussian\""),
            std::string::npos);
  EXPECT_NE(json.find("\"n\":20"), std::string::npos);
}

TEST(JsonWriterTest, TupleWithAnnotations) {
  engine::Schema schema;
  ASSERT_TRUE(schema.AddField({"id", engine::FieldType::kString}).ok());
  ASSERT_TRUE(
      schema.AddField({"x", engine::FieldType::kUncertain}).ok());
  engine::Tuple t(
      {expr::Value(std::string("a")),
       expr::Value(RandomVar(
           std::make_shared<dist::GaussianDist>(1.0, 1.0), 10))});
  t.set_membership_prob(0.7);
  t.set_membership_df_n(10);
  t.set_membership_ci({0.5, 0.9, 0.9});
  t.set_significance(hypothesis::TestOutcome::kTrue);
  accuracy::AccuracyInfo info;
  info.sample_size = 10;
  info.mean_ci = accuracy::ConfidenceInterval{0.0, 2.0, 0.9};
  t.set_accuracy(1, info);

  const std::string json = ToJson(t, schema);
  EXPECT_NE(json.find("\"id\":\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"x_accuracy\":"), std::string::npos);
  EXPECT_NE(json.find("\"_prob\":0.7"), std::string::npos);
  EXPECT_NE(json.find("\"_prob_ci\":"), std::string::npos);
  EXPECT_NE(json.find("\"_significance\":\"TRUE\""), std::string::npos);
}

TEST(TablePrinterTest, AlignsAndAnnotates) {
  engine::Schema schema;
  ASSERT_TRUE(schema.AddField({"road", engine::FieldType::kString}).ok());
  ASSERT_TRUE(
      schema.AddField({"delay", engine::FieldType::kUncertain}).ok());
  std::vector<engine::Tuple> tuples;
  engine::Tuple t(
      {expr::Value(std::string("r19")),
       expr::Value(RandomVar(
           std::make_shared<dist::GaussianDist>(50.0, 4.0), 3))});
  t.set_membership_prob(0.66);
  tuples.push_back(t);

  std::ostringstream os;
  PrintTable(os, schema, tuples);
  const std::string out = os.str();
  EXPECT_NE(out.find("| road"), std::string::npos);
  EXPECT_NE(out.find("| delay"), std::string::npos);
  EXPECT_NE(out.find("| prob"), std::string::npos);
  EXPECT_NE(out.find("r19"), std::string::npos);
  EXPECT_NE(out.find("1 row(s)"), std::string::npos);
}

TEST(TablePrinterTest, EmptyResult) {
  engine::Schema schema;
  ASSERT_TRUE(schema.AddField({"x", engine::FieldType::kDouble}).ok());
  std::ostringstream os;
  PrintTable(os, schema, {});
  EXPECT_NE(os.str().find("0 row(s)"), std::string::npos);
}

TEST(TablePrinterTest, TruncatesLongCells) {
  engine::Schema schema;
  ASSERT_TRUE(schema.AddField({"s", engine::FieldType::kString}).ok());
  std::vector<engine::Tuple> tuples;
  tuples.emplace_back(std::vector<expr::Value>{
      expr::Value(std::string(100, 'x'))});
  std::ostringstream os;
  TablePrintOptions opts;
  opts.max_cell_width = 10;
  PrintTable(os, schema, tuples, opts);
  // Value::ToString quotes strings, so the cell starts with a quote.
  EXPECT_NE(os.str().find("'xxxxxx..."), std::string::npos);
}

}  // namespace
}  // namespace serde
}  // namespace ausdb

// Appended: numeric round-trip edge cases for the JSON writer.
namespace ausdb {
namespace serde {
namespace {

TEST(JsonNumberTest, RoundTripsTrickyDoubles) {
  for (double v : {1.0 / 3.0, 0.1, 1e-300, 1e300, -0.0, 123456.789,
                   2.2250738585072014e-308}) {
    const std::string json = ToJson(expr::Value(v));
    EXPECT_EQ(std::strtod(json.c_str(), nullptr), v) << json;
  }
}

TEST(JsonNumberTest, ShortRepresentationPreferred) {
  EXPECT_EQ(ToJson(expr::Value(0.9)), "0.9");
  EXPECT_EQ(ToJson(expr::Value(0.25)), "0.25");
  EXPECT_EQ(ToJson(expr::Value(42.0)), "42");
}

}  // namespace
}  // namespace serde
}  // namespace ausdb
