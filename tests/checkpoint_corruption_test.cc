// Fuzz-style corruption sweep over operator checkpoints: truncate a
// valid blob at every byte offset and flip every byte, at both layers.
//
// At the checkpoint *file* layer the guarantee is strict: every
// corruption decodes to kCorruption — never a crash, never a silent
// success (the CRC32C envelope catches what field validation does not).
// At the raw token layer (below the envelope, so no checksum) the
// guarantee is weaker by design — a flipped hex digit yields a
// different but well-formed double — so the sweep there asserts decode
// never crashes and never misreads structure, which is what the
// ASan/UBSan CI jobs turn into hard failures.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/dist/gaussian.h"
#include "src/engine/executor.h"
#include "src/engine/partitioned_window.h"
#include "src/engine/scan.h"
#include "src/engine/sharded_partitioned_window.h"
#include "src/engine/window_aggregate.h"
#include "src/serde/checkpoint.h"
#include "src/serde/checkpoint_file.h"

namespace ausdb {
namespace engine {
namespace {

using dist::RandomVar;

Schema KeyedSchema() {
  Schema s;
  EXPECT_TRUE(s.AddField({"key", FieldType::kString}).ok());
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  return s;
}

Tuple KeyedTuple(const std::string& key, double mean) {
  return Tuple({expr::Value(key),
                expr::Value(RandomVar(
                    std::make_shared<dist::GaussianDist>(mean, 1.0), 8))});
}

std::vector<Tuple> KeyedTuples(size_t n) {
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < n; ++i) {
    tuples.push_back(
        KeyedTuple("k" + std::to_string(i % 3), 10.0 + double(i)));
  }
  return tuples;
}

// A checkpointed WindowAggregate mid-stream (wagg.v3 blob).
std::string WaggBlob() {
  Schema s;
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < 9; ++i) {
    tuples.push_back(Tuple({expr::Value(RandomVar(
        std::make_shared<dist::GaussianDist>(5.0 + double(i), 1.0), 8))}));
  }
  auto scan = std::make_unique<VectorScan>(std::move(s), std::move(tuples));
  WindowAggregateOptions opts;
  opts.window_size = 4;
  auto agg = WindowAggregate::Make(std::move(scan), "x", "avg", opts);
  EXPECT_TRUE(agg.ok());
  auto out = Collect(**agg);
  EXPECT_TRUE(out.ok());
  auto blob = (*agg)->SaveCheckpoint();
  EXPECT_TRUE(blob.ok());
  return *blob;
}

// A checkpointed PartitionedWindowAggregate (pwagg.v3 blob).
std::string PwaggBlob() {
  auto scan =
      std::make_unique<VectorScan>(KeyedSchema(), KeyedTuples(15));
  WindowAggregateOptions opts;
  opts.window_size = 3;
  auto agg = PartitionedWindowAggregate::Make(std::move(scan), "key", "x",
                                              "avg", opts);
  EXPECT_TRUE(agg.ok());
  auto out = Collect(**agg);
  EXPECT_TRUE(out.ok());
  auto blob = (*agg)->SaveCheckpoint();
  EXPECT_TRUE(blob.ok());
  return *blob;
}

// A checkpointed ShardedPartitionedWindowAggregate mid-batch, with
// pending emissions in its queue (spwagg.v1 blob).
std::string SpwaggBlob() {
  auto scan =
      std::make_unique<VectorScan>(KeyedSchema(), KeyedTuples(20));
  ShardedWindowOptions opts;
  opts.window.window_size = 3;
  opts.num_shards = 2;
  opts.batch_size = 8;
  auto agg = ShardedPartitionedWindowAggregate::Make(std::move(scan), "key",
                                                     "x", "avg", opts);
  EXPECT_TRUE(agg.ok());
  // Pull a couple of outputs so a filled batch leaves a pending queue.
  auto some = CollectLimit(**agg, 2);
  EXPECT_TRUE(some.ok());
  auto blob = (*agg)->SaveCheckpoint();
  EXPECT_TRUE(blob.ok());
  return *blob;
}

// Fresh identically configured operators to restore into.
Status RestoreWagg(std::string_view blob) {
  Schema s;
  EXPECT_TRUE(s.AddField({"x", FieldType::kUncertain}).ok());
  auto scan = std::make_unique<VectorScan>(std::move(s),
                                           std::vector<Tuple>{});
  WindowAggregateOptions opts;
  opts.window_size = 4;
  auto agg = WindowAggregate::Make(std::move(scan), "x", "avg", opts);
  EXPECT_TRUE(agg.ok());
  return (*agg)->RestoreCheckpoint(blob);
}

Status RestorePwagg(std::string_view blob) {
  auto scan = std::make_unique<VectorScan>(KeyedSchema(),
                                           std::vector<Tuple>{});
  WindowAggregateOptions opts;
  opts.window_size = 3;
  auto agg = PartitionedWindowAggregate::Make(std::move(scan), "key", "x",
                                              "avg", opts);
  EXPECT_TRUE(agg.ok());
  return (*agg)->RestoreCheckpoint(blob);
}

Status RestoreSpwagg(std::string_view blob) {
  auto scan = std::make_unique<VectorScan>(KeyedSchema(),
                                           std::vector<Tuple>{});
  ShardedWindowOptions opts;
  opts.window.window_size = 3;
  opts.num_shards = 2;
  opts.batch_size = 8;
  auto agg = ShardedPartitionedWindowAggregate::Make(std::move(scan), "key",
                                                     "x", "avg", opts);
  EXPECT_TRUE(agg.ok());
  return (*agg)->RestoreCheckpoint(blob);
}

using RestoreFn = Status (*)(std::string_view);

struct Subject {
  const char* name;
  std::string blob;
  RestoreFn restore;
};

std::vector<Subject> Subjects() {
  return {{"wagg", WaggBlob(), &RestoreWagg},
          {"pwagg", PwaggBlob(), &RestorePwagg},
          {"spwagg", SpwaggBlob(), &RestoreSpwagg}};
}

// ---------------------------------------------------------------------
// File layer: every corruption is DETECTED (kCorruption, always).

TEST(CheckpointCorruptionTest, FileLayerDetectsEveryTruncation) {
  for (const Subject& s : Subjects()) {
    ASSERT_TRUE(s.restore(s.blob).ok()) << s.name;  // sanity: blob valid
    const std::string file = serde::EncodeCheckpointFile(s.blob);
    for (size_t len = 0; len < file.size(); ++len) {
      auto r = serde::DecodeCheckpointFile(file.substr(0, len));
      ASSERT_FALSE(r.ok()) << s.name << " truncated to " << len;
      ASSERT_TRUE(r.status().IsCorruption())
          << s.name << " truncated to " << len << ": "
          << r.status().ToString();
    }
  }
}

TEST(CheckpointCorruptionTest, FileLayerDetectsEveryByteFlip) {
  for (const Subject& s : Subjects()) {
    const std::string file = serde::EncodeCheckpointFile(s.blob);
    for (size_t byte = 0; byte < file.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string flipped = file;
        flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
        auto r = serde::DecodeCheckpointFile(flipped);
        ASSERT_FALSE(r.ok())
            << s.name << " flip at byte " << byte << " bit " << bit
            << " decoded successfully";
        ASSERT_TRUE(r.status().IsCorruption())
            << s.name << ": " << r.status().ToString();
      }
    }
  }
}

// ---------------------------------------------------------------------
// Token layer (no checksum below the envelope): corruption must never
// crash or hang the decoder. Truncations always fail cleanly; byte
// flips may legitimately decode (a flipped hex digit is another valid
// double — that is exactly why the file envelope exists).

TEST(CheckpointCorruptionTest, TokenLayerSurvivesEveryTruncation) {
  for (const Subject& s : Subjects()) {
    for (size_t len = 0; len < s.blob.size(); ++len) {
      // Most truncations fail structurally; a cut inside the final
      // integer token can still parse (shorter valid digits), which the
      // envelope's CRC exists to catch. Here: must not crash or
      // over-read.
      (void)s.restore(std::string_view(s.blob).substr(0, len));
    }
    // Cutting the blob in half always severs required structure.
    const Status st =
        s.restore(std::string_view(s.blob).substr(0, s.blob.size() / 2));
    ASSERT_FALSE(st.ok()) << s.name << " restored from half a blob";
  }
}

TEST(CheckpointCorruptionTest, TokenLayerSurvivesEveryByteFlip) {
  for (const Subject& s : Subjects()) {
    for (size_t byte = 0; byte < s.blob.size(); ++byte) {
      std::string flipped = s.blob;
      flipped[byte] = static_cast<char>(flipped[byte] ^ 0x15);
      // Must not crash (ASan/UBSan enforce), must not allocate from a
      // damaged count (NextCount bounds them); the Status outcome is
      // whatever the damage produced.
      (void)s.restore(flipped);
    }
  }
}

// A damaged count field must be rejected before it drives an
// allocation: craft a pwagg.v3 blob declaring 2^40 partitions.
TEST(CheckpointCorruptionTest, HugeDeclaredCountsRejectedUpFront) {
  serde::CheckpointWriter w;
  w.Token("pwagg.v3");
  w.Uint(0);  // kind = sliding
  w.Uint(0);  // fn = avg
  w.Uint(3);  // window size
  w.Uint(0);  // input consumed
  w.Uint(uint64_t{1} << 40);  // partition count: absurd
  const Status st = RestorePwagg(std::move(w).Finish());
  ASSERT_TRUE(st.IsCorruption()) << st.ToString();

  serde::CheckpointWriter w2;
  w2.Token("spwagg.v1");
  w2.Uint(0);
  w2.Uint(0);
  w2.Uint(3);
  w2.Uint(0);                  // input consumed
  w2.Uint(uint64_t{1} << 40);  // partition count
  const Status st2 = RestoreSpwagg(std::move(w2).Finish());
  ASSERT_TRUE(st2.IsCorruption()) << st2.ToString();
}

}  // namespace
}  // namespace engine
}  // namespace ausdb
