#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/dist/kde_learner.h"
#include "src/dist/mixture.h"
#include "src/hypothesis/mean_tests.h"
#include "src/hypothesis/power.h"
#include "src/stats/descriptive.h"
#include "src/stats/random_variates.h"

namespace ausdb {
namespace dist {
namespace {

TEST(KdeLearnerTest, MomentsMatchSamplePlusBandwidth) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  KdeLearnOptions opts;
  opts.bandwidth = 0.5;
  auto learned = LearnKde(x, opts);
  ASSERT_TRUE(learned.ok());
  // KDE mean = sample mean; variance = population variance + h^2.
  EXPECT_NEAR(learned->distribution->Mean(), 3.0, 1e-12);
  EXPECT_NEAR(learned->distribution->Variance(), 2.0 + 0.25, 1e-12);
  EXPECT_EQ(learned->sample_size, 5u);
  EXPECT_EQ(learned->distribution->kind(), DistributionKind::kMixture);
}

TEST(KdeLearnerTest, SilvermanBandwidthShrinksWithN) {
  Rng rng(1);
  const auto small = stats::SampleMany(
      20, [&] { return stats::SampleNormal(rng, 0, 1); });
  const auto large = stats::SampleMany(
      2000, [&] { return stats::SampleNormal(rng, 0, 1); });
  auto h_small = SilvermanBandwidth(small);
  auto h_large = SilvermanBandwidth(large);
  ASSERT_TRUE(h_small.ok() && h_large.ok());
  EXPECT_GT(*h_small, *h_large);
  EXPECT_GT(*h_large, 0.0);
}

TEST(KdeLearnerTest, CdfApproximatesTruthForLargeSamples) {
  Rng rng(2);
  const auto sample = stats::SampleMany(
      3000, [&] { return stats::SampleNormal(rng, 2.0, 1.5); });
  auto learned = LearnKde(sample);
  ASSERT_TRUE(learned.ok());
  for (double x : {0.0, 1.0, 2.0, 3.0, 4.0}) {
    const double truth = 0.5 * std::erfc(-(x - 2.0) / (1.5 * M_SQRT2));
    EXPECT_NEAR(learned->distribution->Cdf(x), truth, 0.03) << "x=" << x;
  }
}

TEST(KdeLearnerTest, DegenerateAndInvalid) {
  EXPECT_TRUE(LearnKde(std::vector<double>{1.0})
                  .status()
                  .IsInsufficientData());
  // Constant sample: Silverman falls back to a nominal bandwidth.
  const std::vector<double> flat(10, 4.0);
  auto learned = LearnKde(flat);
  ASSERT_TRUE(learned.ok());
  EXPECT_NEAR(learned->distribution->Mean(), 4.0, 1e-9);
}

}  // namespace
}  // namespace dist

namespace hypothesis {
namespace {

TEST(AnalyticalPowerTest, AtNullEqualsAlpha) {
  auto p = AnalyticalMeanTestPower(5.0, 2.0, 25, 5.0, 0.05,
                                   TestOp::kGreater);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.05, 1e-10);
  auto p2 = AnalyticalMeanTestPower(5.0, 2.0, 25, 5.0, 0.05,
                                    TestOp::kNotEqual);
  ASSERT_TRUE(p2.ok());
  EXPECT_NEAR(*p2, 0.05, 1e-10);
}

TEST(AnalyticalPowerTest, MonotoneInEffectAndN) {
  auto weak = AnalyticalMeanTestPower(5.5, 2.0, 25, 5.0, 0.05,
                                      TestOp::kGreater);
  auto strong = AnalyticalMeanTestPower(6.5, 2.0, 25, 5.0, 0.05,
                                        TestOp::kGreater);
  auto more_n = AnalyticalMeanTestPower(5.5, 2.0, 100, 5.0, 0.05,
                                        TestOp::kGreater);
  ASSERT_TRUE(weak.ok() && strong.ok() && more_n.ok());
  EXPECT_GT(*strong, *weak);
  EXPECT_GT(*more_n, *weak);
}

TEST(AnalyticalPowerTest, LessOpMirrors) {
  auto above = AnalyticalMeanTestPower(6.0, 2.0, 25, 5.0, 0.05,
                                       TestOp::kGreater);
  auto below = AnalyticalMeanTestPower(4.0, 2.0, 25, 5.0, 0.05,
                                       TestOp::kLess);
  ASSERT_TRUE(above.ok() && below.ok());
  EXPECT_NEAR(*above, *below, 1e-12);
}

TEST(AnalyticalPowerTest, MatchesEmpiricalSingleTest) {
  // Empirical power of the single mTest vs the closed form (sigma
  // treated as known in the formula; n = 40 keeps the t/z gap small).
  Rng rng(3);
  constexpr double kMu = 5.6, kSigma = 2.0, kC = 5.0;
  constexpr size_t kN = 40;
  int accepts = 0;
  constexpr int kTrials = 4000;
  for (int t = 0; t < kTrials; ++t) {
    const auto obs = stats::SampleMany(
        kN, [&] { return stats::SampleNormal(rng, kMu, kSigma); });
    const auto s = stats::Summarize(obs);
    auto r = MeanTest({s.mean, s.SampleStdDev(), kN}, TestOp::kGreater,
                      kC, 0.05);
    ASSERT_TRUE(r.ok());
    if (*r) ++accepts;
  }
  const double empirical = static_cast<double>(accepts) / kTrials;
  auto analytical = AnalyticalMeanTestPower(kMu, kSigma, kN, kC, 0.05,
                                            TestOp::kGreater);
  ASSERT_TRUE(analytical.ok());
  EXPECT_NEAR(empirical, *analytical, 0.04);
}

TEST(RequiredSampleSizeTest, FindsThreshold) {
  auto n = RequiredSampleSize(5.5, 2.0, 5.0, 0.05, TestOp::kGreater,
                              0.9);
  ASSERT_TRUE(n.ok());
  // Standard formula: n = ((z_a + z_b) * sigma / delta)^2
  //                     = ((1.645+1.282)*2/0.5)^2 = 137.1 -> 138.
  EXPECT_NEAR(static_cast<double>(*n), 138.0, 2.0);
  // Power just below n is insufficient; at n it suffices.
  auto at = AnalyticalMeanTestPower(5.5, 2.0, *n, 5.0, 0.05,
                                    TestOp::kGreater);
  auto below = AnalyticalMeanTestPower(5.5, 2.0, *n - 1, 5.0, 0.05,
                                       TestOp::kGreater);
  EXPECT_GE(*at, 0.9);
  EXPECT_LT(*below, 0.9);
}

TEST(RequiredSampleSizeTest, UnreachableTargetFails) {
  // Zero effect: power never exceeds alpha.
  EXPECT_TRUE(RequiredSampleSize(5.0, 2.0, 5.0, 0.05, TestOp::kGreater,
                                 0.9, 1u << 12)
                  .status()
                  .IsOutOfRange());
}

TEST(AnalyticalPowerTest, InvalidInputs) {
  EXPECT_TRUE(AnalyticalMeanTestPower(5, 0.0, 10, 4, 0.05,
                                      TestOp::kGreater)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(AnalyticalMeanTestPower(5, 1.0, 0, 4, 0.05,
                                      TestOp::kGreater)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(AnalyticalMeanTestPower(5, 1.0, 10, 4, 1.0,
                                      TestOp::kGreater)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace hypothesis
}  // namespace ausdb
