#include <vector>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/dist/gaussian.h"
#include "src/engine/executor.h"
#include "src/engine/scan.h"
#include "src/query/parser.h"
#include "src/query/planner.h"
#include "src/query/token.h"
#include "src/stream/sources.h"

namespace ausdb {
namespace query {
namespace {

TEST(TokenizerTest, BasicTokens) {
  auto r = Tokenize("SELECT delay FROM s WHERE delay > 50.5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& t = *r;
  ASSERT_EQ(t.size(), 9u);  // 8 tokens + end
  EXPECT_TRUE(t[0].IsKeyword("SELECT"));
  EXPECT_EQ(t[1].type, TokenType::kIdentifier);
  EXPECT_EQ(t[1].text, "delay");
  EXPECT_TRUE(t[2].IsKeyword("FROM"));
  EXPECT_TRUE(t[4].IsKeyword("WHERE"));
  EXPECT_TRUE(t[6].IsSymbol(">"));
  EXPECT_EQ(t[7].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ(t[7].number, 50.5);
  EXPECT_EQ(t[8].type, TokenType::kEnd);
}

TEST(TokenizerTest, CaseInsensitiveKeywords) {
  auto r = Tokenize("select Delay from S");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*r)[1].text, "Delay");  // identifiers keep their case
}

TEST(TokenizerTest, MultiCharSymbolsAndStrings) {
  auto r = Tokenize("a <= b <> 'hi there' >= != 1e-3");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)[1].IsSymbol("<="));
  EXPECT_TRUE((*r)[3].IsSymbol("<>"));
  EXPECT_EQ((*r)[4].type, TokenType::kString);
  EXPECT_EQ((*r)[4].text, "hi there");
  EXPECT_TRUE((*r)[5].IsSymbol(">="));
  EXPECT_TRUE((*r)[6].IsSymbol("<>"));  // != normalizes
  EXPECT_DOUBLE_EQ((*r)[7].number, 1e-3);
}

TEST(TokenizerTest, Errors) {
  EXPECT_TRUE(Tokenize("SELECT 'unterminated").status().IsParseError());
  EXPECT_TRUE(Tokenize("a # b").status().IsParseError());
}

TEST(ParserTest, SimpleSelect) {
  auto q = Parse("SELECT road_id, delay FROM roads WHERE delay > 50");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select.size(), 2u);
  EXPECT_EQ(q->select[0].alias, "road_id");
  EXPECT_EQ(q->from, "roads");
  ASSERT_NE(q->where, nullptr);
  EXPECT_EQ(q->where->ToString(), "(delay > 50)");
}

TEST(ParserTest, SelectStar) {
  auto q = Parse("SELECT * FROM s");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->select.size(), 1u);
  EXPECT_TRUE(q->select[0].is_star);
}

TEST(ParserTest, PaperProbabilisticThreshold) {
  // The paper's "SELECT Road_ID FROM t WHERE Delay >_{2/3} 50".
  auto q = Parse(
      "SELECT Road_ID FROM t WHERE Delay > 50 PROB 0.667");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where->kind(), expr::ExprKind::kProbThreshold);
  EXPECT_EQ(q->where->ToString(), "(Delay > 50) PROB >= 0.667");
}

TEST(ParserTest, ProbFunctionComparisonRewrites) {
  auto q = Parse("SELECT a FROM s WHERE PROB(a > 5) >= 0.9");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where->kind(), expr::ExprKind::kProbThreshold);

  auto q2 = Parse("SELECT a FROM s WHERE PROB(a > 5) < 0.9");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->where->kind(), expr::ExprKind::kUnary);  // NOT(...)
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto e = ParseExpression("a + b * c - d / 2");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "((a + (b * c)) - (d / 2))");
}

TEST(ParserTest, ParenthesizedComparison) {
  auto p = ParsePredicate("(a + b) / 2 > c");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ((*p)->ToString(), "(((a + b) / 2) > c)");
}

TEST(ParserTest, LogicalPrecedence) {
  auto p = ParsePredicate("a > 1 AND b < 2 OR NOT c >= 3");
  ASSERT_TRUE(p.ok());
  // AND binds tighter than OR.
  EXPECT_EQ((*p)->ToString(),
            "(((a > 1) AND (b < 2)) OR NOT((c >= 3)))");
}

TEST(ParserTest, ParenthesizedPredicate) {
  auto p = ParsePredicate("a > 1 AND (b < 2 OR c > 3)");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->ToString(), "((a > 1) AND ((b < 2) OR (c > 3)))");
}

TEST(ParserTest, MTestSyntax) {
  auto q = Parse(
      "SELECT temp FROM s WHERE MTEST(temp, '>', 97, 0.05)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where->kind(), expr::ExprKind::kMTest);
  EXPECT_EQ(q->where->ToString(), "MTEST(temp, '>', 97, 0.05)");

  auto coupled = Parse(
      "SELECT temp FROM s WHERE MTEST(temp, '<>', 97, 0.05, 0.1)");
  ASSERT_TRUE(coupled.ok());
  const auto& m = static_cast<const expr::MTestExpr&>(*coupled->where);
  EXPECT_EQ(m.op(), hypothesis::TestOp::kNotEqual);
  ASSERT_TRUE(m.alpha2().has_value());
  EXPECT_DOUBLE_EQ(*m.alpha2(), 0.1);
}

TEST(ParserTest, MdTestAndPTestSyntax) {
  auto q = Parse(
      "SELECT a FROM s WHERE MDTEST(a, b, '>', 0, 0.05, 0.05)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where->kind(), expr::ExprKind::kMdTest);

  auto p = Parse(
      "SELECT a FROM s WHERE PTEST(temperature > 100, 0.5, 0.05)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->where->kind(), expr::ExprKind::kPTest);
  EXPECT_EQ(p->where->ToString(),
            "PTEST((temperature > 100), 0.5, 0.05)");
}

TEST(ParserTest, WindowAggregate) {
  auto q = Parse("SELECT AVG(x) OVER (ROWS 1000) FROM s");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->window_agg.has_value());
  EXPECT_EQ(q->window_agg->column, "x");
  EXPECT_EQ(q->window_agg->rows, 1000u);
  EXPECT_EQ(q->window_agg->fn, engine::WindowAggFn::kAvg);
  EXPECT_EQ(q->window_agg->alias, "avg_x");

  auto named =
      Parse("SELECT SUM(x) OVER (ROWS 5) AS total FROM s");
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->window_agg->alias, "total");
  EXPECT_EQ(named->window_agg->fn, engine::WindowAggFn::kSum);
}

TEST(ParserTest, AccuracyClause) {
  auto q = Parse(
      "SELECT x FROM s WITH ACCURACY BOOTSTRAP CONFIDENCE 0.95");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->accuracy.has_value());
  EXPECT_EQ(q->accuracy->method, accuracy::AccuracyMethod::kBootstrap);
  EXPECT_DOUBLE_EQ(q->accuracy->confidence, 0.95);

  auto q2 = Parse("SELECT x FROM s WITH ACCURACY ANALYTICAL");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->accuracy->method, accuracy::AccuracyMethod::kAnalytical);
  EXPECT_DOUBLE_EQ(q2->accuracy->confidence, 0.9);
  EXPECT_FALSE(q2->accuracy->epsilon.has_value())
      << "a pinned method never involves the cost model";
}

TEST(ParserTest, AccuracyTargetClause) {
  // The numeric form states a target half-width; the method is left to
  // the planner's cost model.
  auto q = Parse("SELECT x FROM s WITH ACCURACY 0.25 CONFIDENCE 0.95");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->accuracy.has_value());
  ASSERT_TRUE(q->accuracy->epsilon.has_value());
  EXPECT_DOUBLE_EQ(*q->accuracy->epsilon, 0.25);
  EXPECT_DOUBLE_EQ(q->accuracy->confidence, 0.95);

  auto q2 = Parse("SELECT x FROM s WITH ACCURACY 1.5");
  ASSERT_TRUE(q2.ok());
  EXPECT_DOUBLE_EQ(*q2->accuracy->epsilon, 1.5);
  EXPECT_DOUBLE_EQ(q2->accuracy->confidence, 0.9) << "default confidence";
}

TEST(ParserTest, AccuracyTargetComposesWithEventTimeClauses) {
  auto q = Parse(
      "SELECT AVG(x) OVER (RANGE 10 ON ts WITHIN 2 LATENESS 5) FROM s "
      "WITH ACCURACY 0.3 CONFIDENCE 0.99");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->window_agg.has_value());
  EXPECT_DOUBLE_EQ(q->window_agg->within_bound, 2.0);
  EXPECT_DOUBLE_EQ(q->window_agg->lateness, 5.0);
  ASSERT_TRUE(q->accuracy.has_value());
  EXPECT_DOUBLE_EQ(*q->accuracy->epsilon, 0.3);
  EXPECT_DOUBLE_EQ(q->accuracy->confidence, 0.99);
}

TEST(ParserTest, AccuracyTargetRejectsMalformedInput) {
  // Missing operand after WITH ACCURACY.
  EXPECT_TRUE(Parse("SELECT x FROM s WITH ACCURACY")
                  .status()
                  .IsParseError());
  // An unknown method keyword is not silently treated as a target.
  EXPECT_TRUE(Parse("SELECT x FROM s WITH ACCURACY APPROXIMATE")
                  .status()
                  .IsParseError());
  // A target half-width must be strictly positive.
  EXPECT_TRUE(Parse("SELECT x FROM s WITH ACCURACY 0")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(Parse("SELECT x FROM s WITH ACCURACY -0.5")
                  .status()
                  .IsParseError());
  // CONFIDENCE needs a number, strictly inside (0, 1).
  EXPECT_TRUE(Parse("SELECT x FROM s WITH ACCURACY 0.5 CONFIDENCE")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(Parse("SELECT x FROM s WITH ACCURACY 0.5 CONFIDENCE 1")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(Parse("SELECT x FROM s WITH ACCURACY 0.5 CONFIDENCE 0")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(Parse("SELECT x FROM s WITH ACCURACY 0.5 CONFIDENCE 1.5")
                  .status()
                  .IsParseError());
  // Out-of-range confidence is rejected for pinned methods too.
  EXPECT_TRUE(
      Parse("SELECT x FROM s WITH ACCURACY ANALYTICAL CONFIDENCE 2")
          .status()
          .IsParseError());
  // The rejection is loud about what went wrong, not a generic error.
  // (A leading '-' is lexed as an operator token, so the zero form is
  // the one that reaches the positivity check.)
  const Status s = Parse("SELECT x FROM s WITH ACCURACY 0").status();
  EXPECT_NE(s.ToString().find("positive"), std::string::npos)
      << s.ToString();
  const Status c =
      Parse("SELECT x FROM s WITH ACCURACY 0.5 CONFIDENCE 1.5").status();
  EXPECT_NE(c.ToString().find("CONFIDENCE"), std::string::npos)
      << c.ToString();
}

TEST(ParserTest, AccuracyTargetRoundTripsThroughToString) {
  const std::string sql =
      "SELECT x FROM s WITH ACCURACY 0.25 CONFIDENCE 0.95";
  auto q = Parse(sql);
  ASSERT_TRUE(q.ok());
  auto q2 = Parse(q->ToString());
  ASSERT_TRUE(q2.ok()) << "rendered: " << q->ToString();
  EXPECT_EQ(q->ToString(), q2->ToString());
  ASSERT_TRUE(q2->accuracy->epsilon.has_value());
  EXPECT_DOUBLE_EQ(*q2->accuracy->epsilon, 0.25);
}

TEST(ParserTest, AccuracyProjections) {
  auto q = Parse(
      "SELECT MEAN_CI(delay, 0.9), VAR_CI(delay, 0.9), "
      "BIN_CI(delay, 2, 0.95) FROM s");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select.size(), 3u);
  EXPECT_EQ(q->select[0].expression->kind(), expr::ExprKind::kAccuracyOf);
}

TEST(ParserTest, Errors) {
  EXPECT_TRUE(Parse("delay FROM s").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT FROM s").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT a FROM").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT a FROM s WHERE").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT a FROM s trailing").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT MTEST(a, 'bogus', 1, 0.05) FROM s")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(
      Parse("SELECT AVG(x) OVER (ROWS 0) FROM s").status().IsParseError());
}

TEST(ParserTest, QueryToStringRoundTrip) {
  const std::string sql =
      "SELECT road_id FROM roads WHERE MTEST(delay, '>', 50, 0.05) "
      "WITH ACCURACY BOOTSTRAP CONFIDENCE 0.9";
  auto q = Parse(sql);
  ASSERT_TRUE(q.ok());
  // Re-parse the rendering; it should produce the same rendering again.
  auto q2 = Parse(q->ToString());
  ASSERT_TRUE(q2.ok()) << "rendered: " << q->ToString();
  EXPECT_EQ(q->ToString(), q2->ToString());
}

// --- End-to-end: parse, plan, execute ---

engine::OperatorPtr RoadSource() {
  engine::Schema schema;
  AUSDB_CHECK_OK(schema.AddField({"road_id", engine::FieldType::kString}));
  AUSDB_CHECK_OK(schema.AddField({"delay", engine::FieldType::kUncertain}));
  std::vector<engine::Tuple> tuples;
  auto add = [&](const std::string& id, double mean, double var, size_t n) {
    tuples.emplace_back(std::vector<expr::Value>{
        expr::Value(id),
        expr::Value(dist::RandomVar(
            std::make_shared<dist::GaussianDist>(mean, var), n))});
  };
  add("r_fast", 30.0, 16.0, 50);
  add("r_slow", 70.0, 16.0, 40);
  add("r_mid", 52.0, 100.0, 8);
  return std::make_unique<engine::VectorScan>(std::move(schema),
                                              std::move(tuples));
}

TEST(EndToEndQueryTest, ProbabilisticThresholdQuery) {
  auto plan = PlanQuery(
      "SELECT road_id FROM roads WHERE delay > 50 PROB 0.66", RoadSource());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto out = engine::Collect(**plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(*(*out)[0].value(0).string_value(), "r_slow");
}

TEST(EndToEndQueryTest, SignificanceQueryScreensOutNoisyRoad) {
  // r_mid has mean 52 > 50 but only n=8 with high variance: mTest must
  // not accept it, while plain threshold would.
  auto plan = PlanQuery(
      "SELECT road_id FROM roads WHERE MTEST(delay, '>', 50, 0.05)",
      RoadSource());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto out = engine::Collect(**plan);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(*(*out)[0].value(0).string_value(), "r_slow");
}

TEST(EndToEndQueryTest, SelectStarWithAccuracy) {
  auto plan = PlanQuery(
      "SELECT * FROM roads WHERE delay > 50 WITH ACCURACY ANALYTICAL "
      "CONFIDENCE 0.9",
      RoadSource());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto out = engine::Collect(**plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 3u);  // all roads have positive probability
  for (const auto& t : *out) {
    ASSERT_TRUE(t.membership_ci().has_value());
    ASSERT_TRUE(t.accuracy()[1].has_value());
    EXPECT_TRUE(t.accuracy()[1]->mean_ci.has_value());
  }
}

TEST(EndToEndQueryTest, WindowedAvgOverStream) {
  auto source = stream::MakeLearnedGaussianSource("x", 200, 20, 10.0, 2.0,
                                                  99);
  auto plan = PlanQuery(
      "SELECT AVG(x) OVER (ROWS 100) FROM s WITH ACCURACY ANALYTICAL",
      std::move(source));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto out = engine::Collect(**plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 101u);  // 200 - 100 + 1
  const auto& last = out->back();
  const dist::RandomVar rv = *last.value(0).random_var();
  EXPECT_NEAR(rv.Mean(), 10.0, 0.5);
  EXPECT_EQ(rv.sample_size(), 20u);
  ASSERT_TRUE(last.accuracy()[0].has_value());
}

TEST(EndToEndQueryTest, ProjectionExpressions) {
  auto plan = PlanQuery(
      "SELECT road_id AS id, delay / 60 AS delay_minutes, "
      "PROB(delay > 50) AS p FROM roads",
      RoadSource());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto out = engine::Collect(**plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ((*plan)->schema().names()[1], "delay_minutes");
  const dist::RandomVar rv = *(*out)[0].value(1).random_var();
  EXPECT_NEAR(rv.Mean(), 0.5, 1e-9);
}

TEST(EndToEndQueryTest, WindowAggregatePlusItemsRejected) {
  auto plan = PlanQuery(
      "SELECT road_id, AVG(delay) OVER (ROWS 2) FROM roads", RoadSource());
  EXPECT_TRUE(plan.status().IsNotImplemented());
}

}  // namespace
}  // namespace query
}  // namespace ausdb
