#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "src/common/math_util.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace ausdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status st = Status::InvalidArgument("bad n");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad n");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad n");
}

TEST(StatusTest, EveryCodeHasDistinctName) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "Parse error");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInsufficientData),
            "Insufficient data");
  EXPECT_EQ(StatusCodeToString(StatusCode::kTypeError), "Type error");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
  EXPECT_EQ(StatusCodeToString(StatusCode::kBackpressure), "Backpressure");
}

TEST(StatusTest, ShutdownAndBackpressureCodes) {
  const Status cancelled = Status::Cancelled("consumer gone");
  EXPECT_TRUE(cancelled.IsCancelled());
  EXPECT_EQ(cancelled.ToString(), "Cancelled: consumer gone");
  const Status full = Status::Backpressure("ring full");
  EXPECT_TRUE(full.IsBackpressure());
  EXPECT_EQ(full.ToString(), "Backpressure: ring full");
}

TEST(StatusTest, OverloadCodes) {
  // The governor's two refusal shapes: a blown per-plan budget (fatal —
  // a budget does not free itself) and admission control (transient —
  // pressure relaxes).
  const Status budget = Status::ResourceExhausted("reorder: budget");
  EXPECT_TRUE(budget.IsResourceExhausted());
  EXPECT_EQ(budget.ToString(), "Resource exhausted: reorder: budget");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "Resource exhausted");

  const Status refused = Status::Overloaded("past the accuracy floor");
  EXPECT_TRUE(refused.IsOverloaded());
  EXPECT_EQ(refused.ToString(), "Overloaded: past the accuracy floor");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOverloaded), "Overloaded");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    AUSDB_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::OutOfRange("too big");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto producer = [](bool succeed) -> Result<std::string> {
    if (succeed) return std::string("value");
    return Status::Internal("boom");
  };
  auto consumer = [&](bool succeed) -> Result<size_t> {
    AUSDB_ASSIGN_OR_RETURN(std::string s, producer(succeed));
    return s.size();
  };
  EXPECT_EQ(*consumer(true), 5u);
  EXPECT_TRUE(consumer(false).status().IsInternal());
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(3);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 3);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextBelowIsUnbiasedEnough) {
  Rng rng(11);
  constexpr uint64_t kBound = 7;
  size_t counts[kBound] = {0};
  constexpr size_t kDraws = 70000;
  for (size_t i = 0; i < kDraws; ++i) ++counts[rng.NextBelow(kBound)];
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / double{kBound},
                5.0 * std::sqrt(kDraws / double{kBound}));
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(42);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.01);
  EXPECT_NEAR(sum2 / kDraws, 1.0, 0.02);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.Split();
  EXPECT_NE(parent.NextUint64(), child.NextUint64());
}

TEST(MathUtilTest, AlmostEqual) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0));
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.001));
  EXPECT_TRUE(AlmostEqual(0.0, 1e-13));
}

TEST(MathUtilTest, KahanSumHandlesMixedMagnitudes) {
  KahanSum sum;
  sum.Add(1e16);
  for (int i = 0; i < 10000; ++i) sum.Add(1.0);
  sum.Add(-1e16);
  EXPECT_DOUBLE_EQ(sum.Get(), 10000.0);
}

TEST(MathUtilTest, StableSum) {
  std::vector<double> vals(1000, 0.1);
  EXPECT_NEAR(StableSum(vals), 100.0, 1e-12);
}

TEST(MathUtilTest, ClampAndLerp) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(Lerp(10.0, 20.0, 0.25), 12.5);
}

}  // namespace
}  // namespace ausdb
