// Traffic-aware routing (the paper's Example 1 / CarTel scenario).
//
// A simulated vehicular network reports road-segment delays. Two candidate
// routes are compared by total expected delay using the coupled mdTest:
// with few probe vehicles the system answers UNSURE rather than guessing;
// as more reports arrive the decision becomes significant.

#include <cstdio>
#include <vector>

#include "src/dist/learner.h"
#include "src/hypothesis/coupled_tests.h"
#include "src/workload/cartel.h"

using namespace ausdb;

namespace {

// Learn each route's total-delay distribution from n de facto
// observations and run the coupled mdTest "E(route_a) > E(route_b)?".
hypothesis::TestOutcome CompareRoutes(
    const workload::CartelSimulator& sim,
    const std::vector<size_t>& route_a, const std::vector<size_t>& route_b,
    size_t n, Rng& rng) {
  auto obs_a = sim.RouteDelayObservations(route_a, n, rng);
  auto obs_b = sim.RouteDelayObservations(route_b, n, rng);
  auto learned_a = dist::LearnGaussian(*obs_a);
  auto learned_b = dist::LearnGaussian(*obs_b);
  dist::RandomVar a(*learned_a);
  dist::RandomVar b(*learned_b);
  auto outcome = hypothesis::CoupledMdTest(
      a, b, hypothesis::TestOp::kGreater, 0.0, 0.05, 0.05);
  return outcome.ok() ? *outcome : hypothesis::TestOutcome::kUnsure;
}

}  // namespace

int main() {
  workload::CartelOptions opts;
  opts.num_segments = 150;
  opts.observations_per_segment = 800;
  opts.route_length = 20;
  workload::CartelSimulator sim(opts);
  Rng rng(60025);

  // Two routes through greater Boston with intentionally close true mean
  // delays (the hard case for decision making).
  const auto pair = sim.MakeRoutePairWithRankGap(rng, 60);
  std::printf("route A true mean delay: %.1f s\n",
              sim.TrueRouteMean(pair.greater));
  std::printf("route B true mean delay: %.1f s (gap %.2f s)\n",
              sim.TrueRouteMean(pair.lesser), pair.mean_gap);

  std::printf("\n%-28s %-10s\n", "probe reports per segment",
              "decision: is A slower than B?");
  for (size_t n : {5, 10, 20, 40, 80, 160, 320, 640}) {
    const auto outcome =
        CompareRoutes(sim, pair.greater, pair.lesser, n, rng);
    std::printf("%-28zu %s\n", n,
                std::string(hypothesis::TestOutcomeToString(outcome))
                    .c_str());
  }

  std::printf(
      "\nWith few reports the system refuses to route blindly (UNSURE);\n"
      "once the distributions are accurate enough, it commits -- with\n"
      "both false positive and false negative rates under 5%%\n"
      "(COUPLED-TESTS, Theorem 3).\n");
  return 0;
}
