// aql_shell: run AQL queries over raw observation CSVs from the command
// line — the "database front door" for AUSDB.
//
// Usage:
//   example_aql_shell <csv-file> <key-column> <value-column> [query]
//
// The CSV holds raw observation records (as in the paper's Figure 1,
// e.g. road_id,delay rows); one distribution-valued tuple is learned per
// key. With a query argument the shell runs it and exits; without, it
// reads queries from stdin (one per line; empty line or EOF quits).
//
// Try (from the repository root, after generating a demo file):
//   build/examples/example_aql_shell /tmp/delays.csv road_id delay
//     "SELECT road_id FROM t WHERE PTEST(delay > 50, 0.66, 0.05)"
//
// Queries may carry an EXPLAIN or EXPLAIN ANALYZE prefix: EXPLAIN
// prints the chosen plan (with the cost model's method choice and
// predictions for accuracy-target queries) without running it;
// EXPLAIN ANALYZE runs the query and appends the per-operator
// profile after the result table.

#include <cstdio>
#include <iostream>
#include <string>

#include "src/engine/executor.h"
#include "src/engine/scan.h"
#include "src/io/observation_loader.h"
#include "src/query/explain.h"
#include "src/query/parser.h"
#include "src/query/planner.h"
#include "src/serde/json_writer.h"
#include "src/serde/table_printer.h"

using namespace ausdb;

namespace {

int RunQuery(const io::LoadedObservations& data,
             const std::string& sql) {
  auto stmt = query::ParseStatement(sql);
  if (!stmt.ok()) {
    std::fprintf(stderr, "error: %s\n", stmt.status().ToString().c_str());
    return 1;
  }
  auto source =
      std::make_unique<engine::VectorScan>(data.schema, data.tuples);

  if (stmt->kind == query::StatementKind::kExplain) {
    auto rendering = query::ExplainPlan(stmt->query);
    if (!rendering.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   rendering.status().ToString().c_str());
      return 1;
    }
    std::cout << *rendering;
    return 0;
  }

  if (stmt->kind == query::StatementKind::kExplainAnalyze) {
    auto analyzed = query::ExplainAnalyze(stmt->query, std::move(source));
    if (!analyzed.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   analyzed.status().ToString().c_str());
      return 1;
    }
    // Rebuild the (cheap, unexecuted) plan only to recover the output
    // schema for the table printer; the rows themselves came from the
    // profiled run above.
    auto plan = query::BuildPlan(
        stmt->query, std::make_unique<engine::VectorScan>(data.schema,
                                                          data.tuples));
    if (!plan.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    serde::PrintTable(std::cout, (*plan)->schema(), analyzed->rows);
    std::cout << analyzed->report;
    return 0;
  }

  auto plan = query::BuildPlan(stmt->query, std::move(source));
  if (!plan.ok()) {
    std::fprintf(stderr, "error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  auto result = engine::Collect(**plan);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  serde::PrintTable(std::cout, (*plan)->schema(), *result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <csv-file> <key-column> <value-column> "
                 "[query]\n",
                 argv[0]);
    return 2;
  }

  io::ObservationLoadOptions opts;
  opts.key_column = argv[2];
  opts.value_column = argv[3];
  opts.learn_as = io::LearnAs::kEmpirical;
  auto data = io::LoadObservationsFromFile(argv[1], opts);
  if (!data.ok()) {
    std::fprintf(stderr, "load error: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu keys from %s", data->tuples.size(), argv[1]);
  if (!data->skipped_keys.empty()) {
    std::printf(" (%zu skipped for too few observations)",
                data->skipped_keys.size());
  }
  std::printf("\n");

  if (argc >= 5) {
    return RunQuery(*data, argv[4]);
  }

  std::printf("enter AQL queries (empty line to quit):\n");
  std::string line;
  while (std::printf("ausdb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) break;
    RunQuery(*data, line);
  }
  return 0;
}
