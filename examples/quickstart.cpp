// Quickstart: the accuracy-aware uncertain stream database in one file.
//
// Mirrors the paper's running example (Section I): raw road-delay
// observations are learned into per-road distributions, a probabilistic
// threshold query is asked, and the accuracy information reveals that the
// two "equal" answers are not equally trustworthy.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/accuracy/accuracy_info.h"
#include "src/dist/learner.h"
#include "src/engine/executor.h"
#include "src/engine/scan.h"
#include "src/query/planner.h"

using namespace ausdb;

int main() {
  // --- Raw samples, as in the paper's Figure 1 -------------------------
  // Road 19 reported only 3 observations in the current window; road 20
  // reported 50.
  const std::vector<double> road19_delays = {56, 38, 97};
  std::vector<double> road20_delays;
  Rng rng(2010);
  for (int i = 0; i < 50; ++i) {
    road20_delays.push_back(40.0 + 40.0 * rng.NextDouble());
  }

  // --- Learn histogram distributions with provenance -------------------
  dist::HistogramLearnOptions hist_opts;
  hist_opts.policy = dist::BinningPolicy::kExplicitEdges;
  hist_opts.edges = {30, 50, 70, 90, 110};
  auto road19 = dist::LearnHistogram(road19_delays, hist_opts);
  auto road20 = dist::LearnHistogram(road20_delays, hist_opts);
  if (!road19.ok() || !road20.ok()) {
    std::fprintf(stderr, "learning failed\n");
    return 1;
  }

  // --- Accuracy information (Lemma 1 / Lemma 2) ------------------------
  for (const auto& [name, learned] :
       {std::pair{"road 19", &*road19}, {"road 20", &*road20}}) {
    auto info = accuracy::AnalyticalAccuracy(*learned->distribution,
                                             learned->sample_size, 0.9);
    std::printf("%s (n=%zu): %s\n", name, learned->sample_size,
                info->ToString().c_str());
    std::printf("  Pr[delay > 50] = %.3f, mean CI %s\n",
                learned->distribution->ProbGreater(50.0),
                info->mean_ci->ToString().c_str());
  }

  // --- Build a tiny stream and run AQL queries -------------------------
  engine::Schema schema;
  (void)schema.AddField({"road_id", engine::FieldType::kString});
  (void)schema.AddField({"delay", engine::FieldType::kUncertain});
  std::vector<engine::Tuple> tuples;
  tuples.emplace_back(std::vector<expr::Value>{
      expr::Value(std::string("19")),
      expr::Value(dist::RandomVar(*road19))});
  tuples.emplace_back(std::vector<expr::Value>{
      expr::Value(std::string("20")),
      expr::Value(dist::RandomVar(*road20))});

  const char* queries[] = {
      // The paper's probability-threshold query: both roads satisfy it...
      "SELECT road_id FROM t WHERE delay > 50 PROB 0.66",
      // ...but the significance predicate (pTest) only trusts road 20.
      "SELECT road_id FROM t WHERE PTEST(delay > 50, 0.66, 0.05)",
      // Accuracy-annotated projection.
      "SELECT road_id, MEAN_CI(delay, 0.9) FROM t "
      "WITH ACCURACY ANALYTICAL CONFIDENCE 0.9",
  };

  for (const char* sql : queries) {
    std::printf("\n> %s\n", sql);
    auto plan = query::PlanQuery(
        sql, std::make_unique<engine::VectorScan>(schema, tuples));
    if (!plan.ok()) {
      std::fprintf(stderr, "plan error: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    auto result = engine::Collect(**plan);
    if (!result.ok()) {
      std::fprintf(stderr, "exec error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    for (const auto& t : *result) {
      std::printf("  %s\n", t.ToString().c_str());
    }
    if (result->empty()) std::printf("  (no rows)\n");
  }
  return 0;
}
