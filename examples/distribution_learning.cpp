// Tour of the distribution learners and their accuracy information:
// histogram, Gaussian MLE, empirical, kernel density, Gaussian mixture
// (EM), and recency-weighted learning — all from the same raw sample,
// all carrying the provenance the accuracy engine needs.

#include <cstdio>
#include <vector>

#include "src/accuracy/accuracy_info.h"
#include "src/dist/gmm_learner.h"
#include "src/dist/kde_learner.h"
#include "src/dist/learner.h"
#include "src/dist/weighted_learner.h"
#include "src/stats/random_variates.h"
#include "src/stats/weighted.h"

using namespace ausdb;

namespace {

void Report(const char* name, const dist::LearnedDistribution& learned) {
  auto info = accuracy::AnalyticalAccuracy(*learned.distribution,
                                           learned.sample_size, 0.9);
  std::printf("%-10s %-34s", name,
              learned.distribution->ToString().c_str());
  if (info.ok()) {
    std::printf(" mean=%.2f %s", learned.distribution->Mean(),
                info->mean_ci->ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // A bimodal sensor: a machine that idles near 40 and runs hot near 80.
  Rng rng(2026);
  std::vector<double> sample;
  for (int i = 0; i < 60; ++i) {
    sample.push_back(rng.NextDouble() < 0.5
                         ? stats::SampleNormal(rng, 40.0, 3.0)
                         : stats::SampleNormal(rng, 80.0, 5.0));
  }

  std::printf("learning from %zu observations of a bimodal sensor\n\n",
              sample.size());

  auto hist = dist::LearnHistogram(sample, {});
  Report("histogram", *hist);

  auto gauss = dist::LearnGaussian(sample);
  Report("gaussian", *gauss);

  auto emp = dist::LearnEmpirical(sample);
  Report("empirical", *emp);

  auto kde = dist::LearnKde(sample);
  Report("kde", *kde);

  dist::GmmFitInfo fit;
  auto gmm = dist::LearnGaussianMixture(sample, {}, &fit);
  Report("gmm(EM)", *gmm);
  std::printf("           EM: %zu iterations, converged=%s\n",
              fit.iterations, fit.converged ? "yes" : "no");

  // The Gaussian unimodal fit hides the bimodality; the mixture finds
  // both modes:
  const auto& mix =
      static_cast<const dist::MixtureDist&>(*gmm->distribution);
  for (size_t j = 0; j < mix.components().size(); ++j) {
    std::printf("           component %zu: %s (weight %.2f)\n", j,
                mix.components()[j]->ToString().c_str(),
                mix.weights()[j]);
  }

  // Recency weighting (paper Section VII future work): same data viewed
  // as a drifting stream — newest first with exponential decay.
  auto weights = stats::ExponentialDecayWeights(sample.size(), 0.9);
  auto weighted = dist::LearnWeightedGaussian(sample, *weights);
  if (weighted.ok()) {
    std::printf(
        "\nweighted   gaussian with decay 0.9: n_raw=%zu but "
        "n_eff=%.1f\n",
        weighted->raw_count, weighted->effective_sample_size);
    std::printf(
        "           (accuracy machinery uses the smaller n_eff, so the\n"
        "            intervals honestly widen)\n");
  }
  return 0;
}
