// Fleet monitoring: per-vehicle sliding windows via GROUP BY, and a
// time-based RANGE window over the merged feed — the streaming-SQL
// surface of AUSDB on a multi-entity workload.

#include <cstdio>
#include <iostream>
#include <vector>

#include "src/dist/learner.h"
#include "src/engine/executor.h"
#include "src/engine/scan.h"
#include "src/query/planner.h"
#include "src/serde/table_printer.h"
#include "src/stats/random_variates.h"

using namespace ausdb;

namespace {

// A fleet of trucks reporting engine temperature; each report is a
// distribution learned from a burst of 12 raw sensor readings. Truck T2
// runs hot and drifts hotter.
std::vector<engine::Tuple> FleetReports(engine::Schema* schema) {
  (void)schema->AddField({"truck", engine::FieldType::kString});
  (void)schema->AddField({"ts", engine::FieldType::kDouble});
  (void)schema->AddField({"temp", engine::FieldType::kUncertain});

  Rng rng(77);
  std::vector<engine::Tuple> tuples;
  double ts = 0.0;
  for (int round = 0; round < 30; ++round) {
    for (const char* truck : {"T1", "T2", "T3"}) {
      ts += 1.0;
      double mu = 80.0;
      if (std::string(truck) == "T2") {
        mu = 88.0 + 0.2 * round;  // hot and drifting
      }
      std::vector<double> burst;
      for (int i = 0; i < 12; ++i) {
        burst.push_back(stats::SampleNormal(rng, mu, 3.0));
      }
      auto learned = dist::LearnGaussian(burst);
      tuples.emplace_back(std::vector<expr::Value>{
          expr::Value(std::string(truck)), expr::Value(ts),
          expr::Value(dist::RandomVar(*learned))});
    }
  }
  return tuples;
}

int Run(const char* title, const char* sql, const engine::Schema& schema,
        const std::vector<engine::Tuple>& tuples, size_t show_last) {
  std::printf("\n-- %s\n> %s\n", title, sql);
  auto plan = query::PlanQuery(
      sql, std::make_unique<engine::VectorScan>(schema, tuples));
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  auto out = engine::Collect(**plan);
  if (!out.ok()) {
    std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
    return 1;
  }
  const size_t start = out->size() > show_last ? out->size() - show_last
                                               : 0;
  std::vector<engine::Tuple> tail(out->begin() + start, out->end());
  serde::PrintTable(std::cout, (*plan)->schema(), tail);
  return 0;
}

}  // namespace

int main() {
  engine::Schema schema;
  const auto tuples = FleetReports(&schema);
  std::printf("fleet stream: %zu reports from 3 trucks\n", tuples.size());

  // Per-truck sliding average (GROUP BY): the last emission per truck.
  if (Run("per-truck 5-report average",
          "SELECT AVG(temp) OVER (ROWS 5) FROM fleet GROUP BY truck "
          "WITH ACCURACY ANALYTICAL CONFIDENCE 0.9",
          schema, tuples, 3)) {
    return 1;
  }

  // Fleet-wide time window over the merged feed.
  if (Run("fleet-wide 10s window",
          "SELECT AVG(temp) OVER (RANGE 10 ON ts) AS fleet_avg "
          "FROM fleet",
          schema, tuples, 2)) {
    return 1;
  }

  // Which trucks' mean temperature significantly exceeds 85?
  if (Run("significance screening",
          "SELECT truck, MEAN_CI(temp, 0.9) FROM fleet "
          "WHERE MTEST(temp, '>', 85, 0.05, 0.05) LIMIT 5",
          schema, tuples, 5)) {
    return 1;
  }
  std::printf(
      "\nonly the genuinely hot truck passes the significance screen;\n"
      "cool trucks with noisy bursts do not false-alarm.\n");
  return 0;
}
