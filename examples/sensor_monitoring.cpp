// Sensor-network monitoring: a sliding-window AVG over an uncertain
// temperature stream, with accuracy information computed both analytically
// and by bootstrap, and a significance predicate as the alert condition.
//
// This is the paper's Section V-C/V-D streaming setting: each stream item
// is a Gaussian learned from 20 raw sensor readings; the query is a
// count-based sliding-window AVG followed by predicates.

#include <cstdio>
#include <memory>

#include "src/engine/accuracy_annotator.h"
#include "src/engine/executor.h"
#include "src/engine/filter.h"
#include "src/engine/window_aggregate.h"
#include "src/query/planner.h"
#include "src/stream/sources.h"

using namespace ausdb;

int main() {
  constexpr size_t kTuples = 2000;
  constexpr size_t kWindow = 500;

  // --- AQL: windowed AVG with bootstrap accuracy ------------------------
  auto source = stream::MakeLearnedGaussianSource(
      "temp", kTuples, /*points_per_item=*/20, /*mu=*/71.0, /*sigma=*/6.0,
      /*seed=*/7);
  auto plan = query::PlanQuery(
      "SELECT AVG(temp) OVER (ROWS 500) FROM sensors "
      "WITH ACCURACY BOOTSTRAP CONFIDENCE 0.9",
      std::move(source));
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  auto out = engine::Collect(**plan);
  if (!out.ok()) {
    std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
    return 1;
  }
  std::printf("windowed AVG produced %zu result tuples; last 3:\n",
              out->size());
  for (size_t i = out->size() >= 3 ? out->size() - 3 : 0; i < out->size();
       ++i) {
    const auto& t = (*out)[i];
    const auto rv = *t.value(0).random_var();
    std::printf("  avg_temp = %.2f (var %.4f, n=%zu)", rv.Mean(),
                rv.Variance(), rv.sample_size());
    if (t.accuracy()[0].has_value()) {
      std::printf("  mean CI %s",
                  t.accuracy()[0]->mean_ci->ToString().c_str());
    }
    std::printf("\n");
  }

  // --- Alerting with a significance predicate ---------------------------
  // Raise an alert only when "the window average exceeds 70 degrees" is
  // statistically significant, with both error rates below 5%.
  auto alert_source = stream::MakeLearnedGaussianSource(
      "temp", kTuples, 20, 71.0, 6.0, /*seed=*/8);
  auto agg = engine::WindowAggregate::Make(std::move(alert_source), "temp",
                                           "avg_temp",
                                           {.window_size = kWindow});
  engine::FilterOptions fopts;
  fopts.keep_unsure = true;
  engine::Filter alerts(
      std::move(*agg),
      expr::MTest(expr::Col("avg_temp"), hypothesis::TestOp::kGreater,
                  70.0, 0.05, 0.05),
      fopts);
  size_t fired = 0, unsure = 0, total = 0;
  for (;;) {
    auto t = alerts.Next();
    if (!t.ok()) {
      std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
      return 1;
    }
    if (!t->has_value()) break;
    ++total;
    if ((*t)->significance() == hypothesis::TestOutcome::kTrue) {
      ++fired;
    } else {
      ++unsure;
    }
  }
  std::printf(
      "\nalerts: %zu fired, %zu unsure (kept flagged), out of %zu "
      "window results\n",
      fired, unsure, total);
  std::printf(
      "the predicate fires only when the accuracy of the learned\n"
      "distributions supports the decision at the 5%% level.\n");
  return 0;
}
