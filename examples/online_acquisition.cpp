// Online acquisition: stop sampling as soon as the accuracy intervals are
// narrow enough to decide (the paper's Section I "online computation"
// use case — raw samples are slow or expensive to get).
//
// A scientific instrument produces one measurement per request. We want
// the mean measured value within +/-0.25 at 90% confidence, and we want
// to know whether the mean exceeds a control threshold — with as few
// requests as possible.

#include <cstdio>

#include "src/dist/learner.h"
#include "src/hypothesis/coupled_tests.h"
#include "src/stats/random_variates.h"
#include "src/stream/acquisition.h"

using namespace ausdb;

int main() {
  Rng rng(31415);
  const double true_mean = 5.3;
  const double true_sigma = 1.4;
  const double control_threshold = 5.0;

  stream::AcquisitionOptions opts;
  opts.confidence = 0.9;
  opts.target_mean_interval_length = 0.5;  // +/- 0.25
  opts.min_observations = 5;
  opts.max_observations = 2000;
  stream::AcquisitionController controller(opts);

  // Acquire until the controller says the interval is narrow enough.
  while (controller.Observe(
             stats::SampleNormal(rng, true_mean, true_sigma)) ==
         stream::AcquisitionDecision::kNeedMore) {
    const size_t n = controller.observation_count();
    if (n % 20 == 0) {
      auto ci = controller.CurrentMeanInterval();
      if (ci.ok()) {
        std::printf("n=%4zu  mean CI %s (length %.3f)\n", n,
                    ci->ToString().c_str(), ci->Length());
      }
    }
  }

  const size_t n = controller.observation_count();
  auto ci = controller.CurrentMeanInterval();
  std::printf("\nstopped after %zu observations: mean CI %s\n", n,
              ci->ToString().c_str());

  // Decide against the control threshold with both error rates bounded.
  auto learned = dist::LearnGaussian(controller.observations());
  dist::RandomVar x(*learned);
  auto outcome = hypothesis::CoupledMTest(
      x, hypothesis::TestOp::kGreater, control_threshold, 0.05, 0.05);
  std::printf("is the mean above %.1f?  %s\n", control_threshold,
              std::string(hypothesis::TestOutcomeToString(*outcome))
                  .c_str());
  std::printf(
      "\n(every additional observation would have been wasted cost; the\n"
      "accuracy information told us exactly when to stop.)\n");
  return 0;
}
