#ifndef AUSDB_QUERY_PLAN_H_
#define AUSDB_QUERY_PLAN_H_

#include <optional>
#include <string>
#include <vector>

#include "src/accuracy/accuracy_info.h"
#include "src/engine/sort.h"
#include "src/engine/window_aggregate.h"
#include "src/expr/expr.h"

namespace ausdb {
namespace query {

/// One SELECT-list item.
struct SelectItem {
  expr::ExprPtr expression;  ///< null when is_star
  std::string alias;         ///< output column name (auto-derived if empty)
  bool is_star = false;      ///< SELECT *
};

/// A window aggregate in the SELECT list:
///   AVG(col) OVER (ROWS n [TUMBLE])        -- count-based
///   AVG(col) OVER (RANGE d ON ts_col [WITHIN b] [LATENESS l])
///                                          -- time-based, event-time
/// (and likewise for SUM). WITHIN b buffers out-of-order tuples up to b
/// time units behind the watermark and releases them in event-time
/// order; LATENESS l additionally accepts tuples up to l behind the
/// watermark by re-emitting the affected windows as revisions.
struct WindowSpec {
  engine::WindowAggFn fn = engine::WindowAggFn::kAvg;
  std::string column;
  /// Count-based form; 0 when the range form is used.
  size_t rows = 0;
  engine::WindowKind kind = engine::WindowKind::kSliding;
  /// Time-based form: duration > 0 with the ordering column.
  double range_duration = 0.0;
  std::string range_column;
  /// WITHIN bound (reorder-buffer lateness bound); 0 = no reordering.
  double within_bound = 0.0;
  /// LATENESS horizon (revision mode); 0 = late tuples are an error or
  /// evicted per the operator's ordering mode.
  double lateness = 0.0;
  std::string alias;

  bool is_time_based() const { return range_duration > 0.0; }
};

/// WITH ACCURACY (ANALYTICAL | BOOTSTRAP | eps) [CONFIDENCE c].
///
/// The named forms pin the estimation method; the numeric form states a
/// *target* — a maximum mean-interval half-width `eps` at confidence
/// `c` — and leaves the method to the planner's steady-state cost model
/// (src/govern/cost_model.h), which picks the cheapest configuration
/// predicted to meet it.
struct AccuracyClause {
  accuracy::AccuracyMethod method = accuracy::AccuracyMethod::kAnalytical;
  double confidence = 0.9;
  /// The accuracy-target form; nullopt for the named-method forms.
  /// Always > 0 when set (the parser rejects the rest).
  std::optional<double> epsilon;
};

/// ORDER BY column [ASC|DESC].
struct OrderBySpec {
  std::string column;
  engine::SortOrder order = engine::SortOrder::kAscending;
};

/// \brief Parsed logical form of an AQL query:
///   SELECT items FROM stream [WHERE pred] [GROUP BY key]
///   [ORDER BY col [ASC|DESC]] [LIMIT n]
///   [WITH ACCURACY method [CONFIDENCE c]]
/// where one item may be a sliding/tumbling window aggregate; GROUP BY
/// partitions the window per key value.
struct ParsedQuery {
  std::vector<SelectItem> select;
  std::optional<WindowSpec> window_agg;
  std::string from;
  expr::ExprPtr where;   ///< null when absent
  std::string group_by;  ///< empty when absent
  std::optional<OrderBySpec> order_by;
  std::optional<size_t> limit;
  std::optional<AccuracyClause> accuracy;

  std::string ToString() const;
};

/// What a top-level AQL statement asks for.
enum class StatementKind {
  kQuery,           ///< run the query, deliver tuples
  kExplain,         ///< render the chosen plan, run nothing
  kExplainAnalyze,  ///< run profiled, deliver tuples + the profile
};

/// \brief One parsed top-level statement: an optional EXPLAIN
/// [ANALYZE] prefix around a query. The prefix never changes how the
/// inner query parses — a malformed query under EXPLAIN fails with the
/// same loud kParseError it would fail with alone.
struct ParsedStatement {
  StatementKind kind = StatementKind::kQuery;
  ParsedQuery query;

  /// Canonical rendering: the EXPLAIN [ANALYZE] prefix plus
  /// ParsedQuery::ToString(). Re-parsing the rendering yields an equal
  /// statement (the round-trip the parser tests assert).
  std::string ToString() const;
};

}  // namespace query
}  // namespace ausdb

#endif  // AUSDB_QUERY_PLAN_H_
