#include "src/query/explain.h"

#include <utility>

#include "src/engine/executor.h"
#include "src/obs/exposition.h"

namespace ausdb {
namespace query {

namespace {

const char* FnName(engine::WindowAggFn fn) {
  return fn == engine::WindowAggFn::kAvg ? "avg" : "sum";
}

/// One plan stage, rendered. Stages are gathered bottom-up (the order
/// BuildPlan constructs them and the profiler numbers its slots), then
/// printed root-first with two-space nesting.
std::string RenderTree(const std::vector<std::string>& bottom_up) {
  std::string out;
  std::string indent;
  for (size_t i = bottom_up.size(); i-- > 0;) {
    out += indent + bottom_up[i] + "\n";
    indent += "  ";
  }
  return out;
}

}  // namespace

Result<std::string> ExplainPlan(const ParsedQuery& query,
                                const PlannerOptions& options) {
  // Mirror BuildPlan's rejections so EXPLAIN never renders a plan the
  // planner would refuse to build.
  const bool star =
      query.select.size() == 1 && query.select.front().is_star;
  const bool has_items = !query.select.empty() && !star;
  if (query.window_agg.has_value() && has_items) {
    return Status::NotImplemented(
        "a window aggregate cannot be combined with other SELECT items");
  }
  if (!query.window_agg.has_value() && !query.group_by.empty()) {
    return Status::NotImplemented(
        "GROUP BY currently requires a window aggregate in the SELECT "
        "list");
  }
  if (options.govern.enabled && options.govern.signals == nullptr) {
    return Status::InvalidArgument(
        "governed plan needs a signal-source factory");
  }

  std::vector<std::string> stages;
  stages.push_back("source: " + query.from);

  if (options.govern.enabled) {
    const govern::GovernorOptions& gov = options.govern.governor;
    stages.push_back(
        "governor_gate: rungs=" +
        std::to_string(gov.ladder.rungs.size()) +
        " floor=" + obs::FormatMetricValue(gov.ladder.accuracy_floor) +
        " epoch_interval=" + std::to_string(gov.epoch_interval) +
        " breaker_trip=" + std::to_string(gov.breaker_trip_epochs) +
        " cooldown=" + std::to_string(gov.breaker_cooldown_epochs));
  }

  if (query.where != nullptr) {
    stages.push_back("filter: " + query.where->ToString());
  }

  if (query.window_agg.has_value()) {
    const WindowSpec& spec = *query.window_agg;
    if (spec.is_time_based()) {
      if (!query.group_by.empty()) {
        return Status::NotImplemented(
            "GROUP BY with RANGE windows is not supported yet");
      }
      if (spec.within_bound > 0.0) {
        stages.push_back(
            "reorder: within=" +
            obs::FormatMetricValue(spec.within_bound) + " on " +
            spec.range_column);
      }
      std::string line = "window: " + std::string(FnName(spec.fn)) + "(" +
                         spec.column + ") range=" +
                         obs::FormatMetricValue(spec.range_duration) +
                         " on " + spec.range_column;
      if (spec.lateness > 0.0) {
        line += " lateness=" + obs::FormatMetricValue(spec.lateness);
      }
      line += " as " + spec.alias;
      stages.push_back(std::move(line));
    } else {
      std::string line = "window: " + std::string(FnName(spec.fn)) + "(" +
                         spec.column +
                         ") rows=" + std::to_string(spec.rows);
      if (spec.kind == engine::WindowKind::kTumbling) line += " tumble";
      if (!query.group_by.empty()) line += " group_by=" + query.group_by;
      line += " as " + spec.alias;
      stages.push_back(std::move(line));
    }
  } else if (has_items) {
    std::string line = "project: ";
    bool first = true;
    for (const auto& item : query.select) {
      if (item.is_star) {
        return Status::NotImplemented(
            "SELECT * cannot be combined with other items");
      }
      if (!first) line += ", ";
      first = false;
      line += item.alias;
    }
    stages.push_back(std::move(line));
  }

  if (query.order_by.has_value()) {
    stages.push_back(
        "sort: " + query.order_by->column +
        (query.order_by->order == engine::SortOrder::kDescending
             ? " desc"
             : " asc"));
  }

  if (query.limit.has_value()) {
    stages.push_back("limit: " + std::to_string(*query.limit));
  }

  if (query.accuracy.has_value()) {
    std::string line = "annotator: confidence=" +
                       obs::FormatMetricValue(query.accuracy->confidence);
    if (query.accuracy->epsilon.has_value()) {
      // The accuracy-target form: show the spec the cost model would
      // put in force at plan time, plus its predictions, through the
      // chooser's pure decision function — EXPLAIN mutates nothing.
      const govern::ChooserOptions& copts =
          options.cost_model.instance != nullptr
              ? options.cost_model.instance->options()
              : options.cost_model.chooser;
      govern::AccuracyTarget target;
      target.epsilon = *query.accuracy->epsilon;
      target.confidence = query.accuracy->confidence;
      const govern::MethodSpec spec =
          govern::MethodChooser::Choose(target, copts.prior, copts);
      line += " target_eps=" + obs::FormatMetricValue(target.epsilon) +
              " chosen=" + spec.ToString() + " predicted_cost=" +
              obs::FormatMetricValue(
                  govern::PredictCost(spec, copts.prior, copts.table)) +
              " predicted_halfwidth=" +
              obs::FormatMetricValue(govern::PredictHalfWidth(
                  spec, copts.prior, target.confidence));
    } else {
      line += std::string(" method=") +
              (query.accuracy->method ==
                       accuracy::AccuracyMethod::kAnalytical
                   ? "analytical"
                   : "bootstrap");
    }
    stages.push_back(std::move(line));
  }

  return RenderTree(stages);
}

Result<ExplainAnalyzeResult> ExplainAnalyze(const ParsedQuery& query,
                                            engine::OperatorPtr source,
                                            const PlannerOptions& options) {
  engine::PipelineProfile profile;
  PlannerOptions popts = options;
  popts.profiler.profile = &profile;
  AUSDB_ASSIGN_OR_RETURN(engine::OperatorPtr plan,
                         BuildPlan(query, std::move(source), popts));

  ExplainAnalyzeResult out;
  AUSDB_ASSIGN_OR_RETURN(out.rows, engine::Collect(*plan));
  AUSDB_ASSIGN_OR_RETURN(std::string plan_text,
                         ExplainPlan(query, options));
  out.report = plan_text + "-- profile --\n" + profile.ReportString();
  out.counters_json = profile.CountersJson();
  if (options.profiler.clock != nullptr) {
    out.latency_annex = profile.LatencyAnnexString();
  }
  return out;
}

}  // namespace query
}  // namespace ausdb
