#ifndef AUSDB_QUERY_PARSER_H_
#define AUSDB_QUERY_PARSER_H_

#include <string_view>

#include "src/common/result.h"
#include "src/query/plan.h"

namespace ausdb {
namespace query {

/// \brief Parses one AQL query.
///
/// Grammar sketch (keywords case-insensitive):
///
///   query      : SELECT items FROM ident [WHERE pred] [with_accuracy]
///   items      : item (',' item)*  |  '*'
///   item       : expr [AS ident]
///              | (AVG|SUM) '(' ident ')' OVER '(' ROWS number ')'
///                [AS ident]
///   pred       : or_pred
///   or_pred    : and_pred (OR and_pred)*
///   and_pred   : not_pred (AND not_pred)*
///   not_pred   : NOT not_pred | pred_atom
///   pred_atom  : '(' pred ')'
///              | MTEST '(' expr ',' string ',' number ',' number
///                       [',' number] ')'
///              | MDTEST '(' expr ',' expr ',' string ',' number ','
///                        number [',' number] ')'
///              | PTEST '(' pred ',' number ',' number [',' number] ')'
///              | TRUE | FALSE
///              | comparison
///   comparison : expr cmp expr [PROB number]      -- X > 50 PROB 0.66
///              | PROB '(' pred ')' cmp number     -- PROB(X>50) >= 0.66
///   expr       : additive with + - * / unary - and functions
///                SQRT(x) ABS(x) SQUARE(x) SQRT_ABS(x)
///                E(x) (alias of x's mean is not materialized; use MTEST)
///                MEAN_CI(x, c) VAR_CI(x, c) BIN_CI(x, i, c)
///                PROB '(' pred ')'
///   cmp        : < <= > >= = <>
///   with_accuracy : WITH ACCURACY (ANALYTICAL|BOOTSTRAP|number)
///                   [CONFIDENCE number]
///                   -- the numeric form states a target half-width
///                   -- (must be > 0); CONFIDENCE must lie in (0, 1).
///                   -- The planner's cost model then picks the
///                   -- cheapest method predicted to meet the target.
///
/// The significance-test operator strings are '<', '>' and '<>'.
Result<ParsedQuery> Parse(std::string_view input);

/// Parses one top-level statement: [EXPLAIN [ANALYZE]] query. The
/// EXPLAIN prefix changes only the statement kind; a malformed inner
/// query fails with the same kParseError it would fail with alone.
Result<ParsedStatement> ParseStatement(std::string_view input);

/// Parses a standalone predicate (for programmatic WHERE construction).
Result<expr::ExprPtr> ParsePredicate(std::string_view input);

/// Parses a standalone scalar expression.
Result<expr::ExprPtr> ParseExpression(std::string_view input);

}  // namespace query
}  // namespace ausdb

#endif  // AUSDB_QUERY_PARSER_H_
