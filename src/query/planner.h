#ifndef AUSDB_QUERY_PLANNER_H_
#define AUSDB_QUERY_PLANNER_H_

#include <functional>
#include <memory>
#include <string_view>

#include "src/common/memory_budget.h"
#include "src/common/result.h"
#include "src/engine/accuracy_annotator.h"
#include "src/engine/filter.h"
#include "src/engine/operator.h"
#include "src/engine/pipeline_profiler.h"
#include "src/engine/reorder_buffer.h"
#include "src/govern/cost_model.h"
#include "src/govern/governor.h"
#include "src/govern/signals.h"
#include "src/obs/event_journal.h"
#include "src/query/plan.h"

namespace ausdb {
namespace query {

/// \brief Per-plan overload-governor wiring. When enabled, the planner
/// inserts a GovernorGate directly above the source (admission control
/// happens before any work is invested in a tuple) and shares one
/// degradation ladder between the gate, the WITHIN reorder stage, and
/// the accuracy annotator — the same rung stamp a tuple picks up at the
/// gate is what shortens its hold horizon and widens its intervals
/// downstream.
struct GovernorConfig {
  bool enabled = false;

  /// Ladder, epoch interval, breaker thresholds, metrics.
  govern::GovernorOptions governor;

  /// Factory for the gate's signal source — LiveSignalSource over the
  /// plan's queues/budget in production, a scripted injector in
  /// harnesses. Required when enabled (each plan needs its own
  /// instance).
  std::function<std::unique_ptr<govern::SignalSource>()> signals;

  /// Per-plan memory budget the WITHIN reorder stage charges held
  /// tuples against. Null disables charging. Must outlive the plan.
  MemoryBudget* memory_budget = nullptr;
};

/// \brief Steady-state cost-model wiring. When a query states an
/// accuracy *target* (`WITH ACCURACY <eps> [CONFIDENCE <c>]`), the
/// planner builds a govern::MethodChooser, makes the plan-time choice
/// from `chooser.prior`, configures the AccuracyAnnotator with the
/// chosen method, and hands the chooser to the annotator for
/// pull-count-epoch recalibration. Queries that pin a method
/// (ANALYTICAL / BOOTSTRAP) never involve the chooser.
struct CostModelConfig {
  /// Cost table, candidate lattice, prior workload estimate, epoch
  /// interval, metrics. When the plan is governed, the planner aligns
  /// `chooser.accuracy_floor` with the ladder's floor so both
  /// actuators honor one bound.
  govern::ChooserOptions chooser;

  /// When non-null, the planner uses (and re-targets) this instance
  /// instead of building one — harnesses inspect its decision log
  /// through the shared pointer after the run.
  std::shared_ptr<govern::MethodChooser> instance;
};

/// \brief EXPLAIN ANALYZE wiring: when `profile` is non-null the
/// planner wraps every stage it builds (bottom-up: source first) in a
/// ProfiledOperator accumulating into `profile`, so per-stage tuple
/// counts and selectivities come out of the run. A null `clock` keeps
/// the profiled run free of wall-clock reads entirely (the
/// deterministic default); a real clock adds the sampled latency annex.
struct ProfilerConfig {
  engine::PipelineProfile* profile = nullptr;
  const obs::Clock* clock = nullptr;
  uint32_t latency_sample_period =
      engine::ProfiledOperator::kDefaultLatencySamplePeriod;
};

/// Plan-construction knobs.
struct PlannerOptions {
  engine::FilterOptions filter;
  engine::AccuracyAnnotatorOptions annotator;
  expr::EvalOptions eval;
  /// Base configuration of the ReorderBuffer a WITHIN clause inserts
  /// (capacity, overflow policy, metrics); the clause's bound overrides
  /// lateness_bound.
  engine::ReorderBufferOptions reorder;
  /// Overload governor wiring; disabled by default (plans are built
  /// exactly as before — no gate, no ladder, no budget charging).
  GovernorConfig govern;
  /// Steady-state accuracy-target cost model; only consulted when the
  /// query states a numeric accuracy target.
  CostModelConfig cost_model;
  /// When non-null, every journaling component the planner builds
  /// (governor, cost-model chooser, revision-mode window) appends its
  /// decisions here. Write-only per the obs contract.
  obs::EventJournal* journal = nullptr;
  /// Per-operator profiling (EXPLAIN ANALYZE); off by default.
  ProfilerConfig profiler;
};

/// \brief Turns a parsed query plus its input stream into an executable
/// operator tree:
///
///   source -> [Filter (WHERE)] -> [WindowAggregate] -> [Project]
///          -> [AccuracyAnnotator (WITH ACCURACY)]
///
/// SELECT * skips the projection. A window aggregate consumes the source
/// column stream and outputs a single uncertain column, so combining it
/// with other SELECT items is rejected.
Result<engine::OperatorPtr> BuildPlan(const ParsedQuery& query,
                                      engine::OperatorPtr source,
                                      const PlannerOptions& options = {});

/// Parses `sql` and builds the plan over `source` in one step.
Result<engine::OperatorPtr> PlanQuery(std::string_view sql,
                                      engine::OperatorPtr source,
                                      const PlannerOptions& options = {});

}  // namespace query
}  // namespace ausdb

#endif  // AUSDB_QUERY_PLANNER_H_
