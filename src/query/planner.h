#ifndef AUSDB_QUERY_PLANNER_H_
#define AUSDB_QUERY_PLANNER_H_

#include <string_view>

#include "src/common/result.h"
#include "src/engine/accuracy_annotator.h"
#include "src/engine/filter.h"
#include "src/engine/operator.h"
#include "src/engine/reorder_buffer.h"
#include "src/query/plan.h"

namespace ausdb {
namespace query {

/// Plan-construction knobs.
struct PlannerOptions {
  engine::FilterOptions filter;
  engine::AccuracyAnnotatorOptions annotator;
  expr::EvalOptions eval;
  /// Base configuration of the ReorderBuffer a WITHIN clause inserts
  /// (capacity, overflow policy, metrics); the clause's bound overrides
  /// lateness_bound.
  engine::ReorderBufferOptions reorder;
};

/// \brief Turns a parsed query plus its input stream into an executable
/// operator tree:
///
///   source -> [Filter (WHERE)] -> [WindowAggregate] -> [Project]
///          -> [AccuracyAnnotator (WITH ACCURACY)]
///
/// SELECT * skips the projection. A window aggregate consumes the source
/// column stream and outputs a single uncertain column, so combining it
/// with other SELECT items is rejected.
Result<engine::OperatorPtr> BuildPlan(const ParsedQuery& query,
                                      engine::OperatorPtr source,
                                      const PlannerOptions& options = {});

/// Parses `sql` and builds the plan over `source` in one step.
Result<engine::OperatorPtr> PlanQuery(std::string_view sql,
                                      engine::OperatorPtr source,
                                      const PlannerOptions& options = {});

}  // namespace query
}  // namespace ausdb

#endif  // AUSDB_QUERY_PLANNER_H_
