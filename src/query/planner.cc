#include "src/query/planner.h"

#include "src/engine/limit.h"
#include "src/engine/partitioned_window.h"
#include "src/engine/project.h"
#include "src/engine/reorder_buffer.h"
#include "src/engine/sort.h"
#include "src/engine/time_window_aggregate.h"
#include "src/engine/window_aggregate.h"
#include "src/govern/governor_gate.h"
#include "src/query/parser.h"

namespace ausdb {
namespace query {

Result<engine::OperatorPtr> BuildPlan(const ParsedQuery& query,
                                      engine::OperatorPtr source,
                                      const PlannerOptions& options) {
  if (source == nullptr) {
    return Status::InvalidArgument("plan needs a source operator");
  }
  engine::OperatorPtr plan = std::move(source);

  // EXPLAIN ANALYZE: every stage built below is wrapped bottom-up, so
  // the profile's slot order mirrors the pipeline and per-stage
  // selectivity falls out of adjacent slots.
  const auto profiled = [&options](engine::OperatorPtr op,
                                   const char* name) {
    return engine::Profile(std::move(op), name, options.profiler.profile,
                           options.profiler.clock,
                           options.profiler.latency_sample_period);
  };
  plan = profiled(std::move(plan), "source");

  // One ladder instance shared by every governed stage of this plan,
  // so the rung a tuple is stamped with at the gate means the same
  // thing at the reorder horizon and in the accuracy annotation.
  std::shared_ptr<const govern::LadderPolicy> ladder;
  if (options.govern.enabled) {
    if (options.govern.signals == nullptr) {
      return Status::InvalidArgument(
          "governed plan needs a signal-source factory");
    }
    ladder = std::make_shared<const govern::LadderPolicy>(
        options.govern.governor.ladder);
    govern::GovernorOptions gov = options.govern.governor;
    if (gov.journal == nullptr) gov.journal = options.journal;
    AUSDB_ASSIGN_OR_RETURN(
        std::unique_ptr<govern::GovernorGate> gate,
        govern::GovernorGate::Make(std::move(plan),
                                   options.govern.signals(), gov));
    plan = profiled(std::move(gate), "governor_gate");
  }

  if (query.where != nullptr) {
    engine::FilterOptions fo = options.filter;
    fo.eval = options.eval;
    plan = std::make_unique<engine::Filter>(std::move(plan), query.where,
                                            fo);
    plan = profiled(std::move(plan), "filter");
  }

  const bool star =
      query.select.size() == 1 && query.select.front().is_star;
  const bool has_items = !query.select.empty() && !star;

  if (query.window_agg.has_value()) {
    if (has_items) {
      return Status::NotImplemented(
          "a window aggregate cannot be combined with other SELECT items");
    }
    const WindowSpec& spec = *query.window_agg;
    if (spec.is_time_based()) {
      if (!query.group_by.empty()) {
        return Status::NotImplemented(
            "GROUP BY with RANGE windows is not supported yet");
      }
      // WITHIN: reorder in-bound disorder back into event-time order
      // before the window sees it.
      if (spec.within_bound > 0.0) {
        engine::ReorderBufferOptions ro = options.reorder;
        ro.lateness_bound = spec.within_bound;
        if (ladder != nullptr) {
          ro.ladder = ladder;
          ro.memory_budget = options.govern.memory_budget;
        }
        AUSDB_ASSIGN_OR_RETURN(
            std::unique_ptr<engine::ReorderBuffer> reorder,
            engine::ReorderBuffer::Make(std::move(plan), spec.range_column,
                                        ro));
        plan = profiled(std::move(reorder), "reorder");
      }
      engine::TimeWindowOptions two;
      two.duration = spec.range_duration;
      two.fn = spec.fn;
      two.journal = options.journal;
      if (spec.lateness > 0.0) {
        // LATENESS: accept post-watermark stragglers by re-emitting the
        // affected windows as revisions.
        two.require_ordered = false;
        two.emit_revisions = true;
        two.allowed_lateness = spec.lateness;
      } else if (spec.within_bound > 0.0) {
        // A reorder stage passes beyond-bound stragglers through
        // (counted late) rather than dropping them; value-based
        // eviction absorbs them instead of failing the query.
        two.require_ordered = false;
      }
      AUSDB_ASSIGN_OR_RETURN(
          std::unique_ptr<engine::TimeWindowAggregate> agg,
          engine::TimeWindowAggregate::Make(std::move(plan),
                                            spec.range_column, spec.column,
                                            spec.alias, two));
      plan = profiled(std::move(agg), "window");
    } else {
      engine::WindowAggregateOptions wo;
      wo.window_size = spec.rows;
      wo.fn = spec.fn;
      wo.kind = spec.kind;
      if (!query.group_by.empty()) {
        AUSDB_ASSIGN_OR_RETURN(
            std::unique_ptr<engine::PartitionedWindowAggregate> agg,
            engine::PartitionedWindowAggregate::Make(
                std::move(plan), query.group_by, spec.column, spec.alias,
                wo));
        plan = profiled(std::move(agg), "window");
      } else {
        AUSDB_ASSIGN_OR_RETURN(
            std::unique_ptr<engine::WindowAggregate> agg,
            engine::WindowAggregate::Make(std::move(plan), spec.column,
                                          spec.alias, wo));
        plan = profiled(std::move(agg), "window");
      }
    }
  } else if (!query.group_by.empty()) {
    return Status::NotImplemented(
        "GROUP BY currently requires a window aggregate in the SELECT "
        "list");
  } else if (has_items) {
    std::vector<engine::ProjectionItem> items;
    items.reserve(query.select.size());
    for (const auto& item : query.select) {
      if (item.is_star) {
        return Status::NotImplemented(
            "SELECT * cannot be combined with other items");
      }
      items.push_back({item.alias, item.expression});
    }
    AUSDB_ASSIGN_OR_RETURN(
        std::unique_ptr<engine::Project> project,
        engine::Project::Make(std::move(plan), std::move(items),
                              options.eval));
    plan = profiled(std::move(project), "project");
  }

  if (query.order_by.has_value()) {
    AUSDB_ASSIGN_OR_RETURN(
        std::unique_ptr<engine::Sort> sort,
        engine::Sort::Make(std::move(plan), query.order_by->column,
                           query.order_by->order));
    plan = profiled(std::move(sort), "sort");
  }

  if (query.limit.has_value()) {
    plan = std::make_unique<engine::Limit>(std::move(plan), *query.limit);
    plan = profiled(std::move(plan), "limit");
  }

  if (query.accuracy.has_value()) {
    engine::AccuracyAnnotatorOptions ao = options.annotator;
    ao.confidence = query.accuracy->confidence;
    if (query.accuracy->epsilon.has_value()) {
      // Accuracy-target form: the cost model chooses the method at plan
      // time from the prior workload estimate, then keeps re-choosing
      // on pull-count epochs inside the annotator. The governor still
      // overrides downward per rung stamp, and when the plan is
      // governed the chooser inherits the ladder's accuracy floor so
      // one bound limits both actuators.
      govern::AccuracyTarget target;
      target.epsilon = *query.accuracy->epsilon;
      target.confidence = query.accuracy->confidence;
      std::shared_ptr<govern::MethodChooser> chooser =
          options.cost_model.instance;
      if (chooser == nullptr) {
        govern::ChooserOptions copts = options.cost_model.chooser;
        if (ladder != nullptr) copts.accuracy_floor = ladder->accuracy_floor;
        if (copts.journal == nullptr) copts.journal = options.journal;
        chooser = std::make_shared<govern::MethodChooser>(std::move(copts));
      }
      AUSDB_RETURN_NOT_OK(chooser->SetTarget(target));
      const govern::MethodSpec& spec = chooser->current();
      ao.method = spec.method;
      if (spec.is_bootstrap()) {
        ao.bootstrap_resamples = spec.bootstrap_resamples;
      }
      ao.chooser = std::move(chooser);
    } else {
      ao.method = query.accuracy->method;
    }
    if (ladder != nullptr) ao.ladder = ladder;
    plan = std::make_unique<engine::AccuracyAnnotator>(std::move(plan), ao);
    plan = profiled(std::move(plan), "annotator");
  }
  return plan;
}

Result<engine::OperatorPtr> PlanQuery(std::string_view sql,
                                      engine::OperatorPtr source,
                                      const PlannerOptions& options) {
  AUSDB_ASSIGN_OR_RETURN(ParsedQuery query, Parse(sql));
  return BuildPlan(query, std::move(source), options);
}

}  // namespace query
}  // namespace ausdb
