#include "src/query/parser.h"

#include <sstream>

#include "src/query/token.h"

namespace ausdb {
namespace query {

namespace {

using expr::ExprPtr;
using hypothesis::TestOp;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedStatement> ParseStatement();
  Result<ParsedQuery> ParseQuery();
  Result<ExprPtr> ParsePredicateOnly();
  Result<ExprPtr> ParseExpressionOnly();

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  Token Consume() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool AcceptKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(std::string_view sym) {
    if (Peek().IsSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (AcceptKeyword(kw)) return Status::OK();
    return Error("expected " + std::string(kw));
  }
  Status ExpectSymbol(std::string_view sym) {
    if (AcceptSymbol(sym)) return Status::OK();
    return Error("expected '" + std::string(sym) + "'");
  }
  Status Error(const std::string& message) const {
    return Status::ParseError(message + ", got " + Peek().ToString() +
                              " at offset " +
                              std::to_string(Peek().offset));
  }

  Result<double> ExpectNumber() {
    if (Peek().type != TokenType::kNumber) {
      return Error("expected a number");
    }
    return Consume().number;
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected an identifier");
    }
    return Consume().text;
  }

  Result<TestOp> ExpectTestOpString() {
    if (Peek().type != TokenType::kString) {
      return Error("expected a test operator string ('<', '>' or '<>')");
    }
    const Token token = Consume();
    const std::string& op = token.text;
    if (op == "<") return TestOp::kLess;
    if (op == ">") return TestOp::kGreater;
    if (op == "<>") return TestOp::kNotEqual;
    return Status::ParseError("bad test operator '" + op +
                              "'; use '<', '>' or '<>'");
  }

  // expr grammar
  Result<ExprPtr> ParseExpr() { return ParseAdditive(); }
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  // predicate grammar
  Result<ExprPtr> ParsePred() { return ParseOrPred(); }
  Result<ExprPtr> ParseOrPred();
  Result<ExprPtr> ParseAndPred();
  Result<ExprPtr> ParseNotPred();
  Result<ExprPtr> ParsePredAtom();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseSignificanceTest();

  Result<std::optional<expr::CmpOp>> AcceptCmpOp();

  Result<SelectItem> ParseSelectItem(ParsedQuery* q, size_t index);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<std::optional<expr::CmpOp>> Parser::AcceptCmpOp() {
  const Token& t = Peek();
  if (t.type != TokenType::kSymbol) {
    return std::optional<expr::CmpOp>(std::nullopt);
  }
  expr::CmpOp op;
  if (t.text == "<") {
    op = expr::CmpOp::kLt;
  } else if (t.text == "<=") {
    op = expr::CmpOp::kLe;
  } else if (t.text == ">") {
    op = expr::CmpOp::kGt;
  } else if (t.text == ">=") {
    op = expr::CmpOp::kGe;
  } else if (t.text == "=") {
    op = expr::CmpOp::kEq;
  } else if (t.text == "<>") {
    op = expr::CmpOp::kNe;
  } else {
    return std::optional<expr::CmpOp>(std::nullopt);
  }
  ++pos_;
  return std::optional<expr::CmpOp>(op);
}

Result<ExprPtr> Parser::ParseAdditive() {
  AUSDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  for (;;) {
    if (AcceptSymbol("+")) {
      AUSDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = expr::Add(std::move(lhs), std::move(rhs));
    } else if (AcceptSymbol("-")) {
      AUSDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = expr::Sub(std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  AUSDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  for (;;) {
    if (AcceptSymbol("*")) {
      AUSDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = expr::Mul(std::move(lhs), std::move(rhs));
    } else if (AcceptSymbol("/")) {
      AUSDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = expr::Div(std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (AcceptSymbol("-")) {
    AUSDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
    return expr::Neg(std::move(inner));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kNumber: {
      return expr::Lit(Consume().number);
    }
    case TokenType::kString: {
      return expr::Lit(Consume().text);
    }
    case TokenType::kIdentifier: {
      return expr::Col(Consume().text);
    }
    case TokenType::kSymbol: {
      if (t.text == "(") {
        Consume();
        AUSDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        AUSDB_RETURN_NOT_OK(ExpectSymbol(")"));
        return inner;
      }
      return Error("unexpected symbol in expression");
    }
    case TokenType::kKeyword: {
      const std::string kw = t.text;
      if (kw == "SQRT" || kw == "ABS" || kw == "SQUARE" ||
          kw == "SQRT_ABS") {
        Consume();
        AUSDB_RETURN_NOT_OK(ExpectSymbol("("));
        AUSDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        ExprPtr out;
        if (kw == "SQRT" || kw == "SQRT_ABS") {
          // SQRT is evaluated as SQRT(ABS(.)), the paper's operator.
          out = expr::SqrtAbs(std::move(inner));
        } else if (kw == "ABS") {
          out = expr::Abs(std::move(inner));
        } else {
          out = expr::Square(std::move(inner));
        }
        AUSDB_RETURN_NOT_OK(ExpectSymbol(")"));
        return out;
      }
      if (kw == "PROB") {
        Consume();
        AUSDB_RETURN_NOT_OK(ExpectSymbol("("));
        AUSDB_ASSIGN_OR_RETURN(ExprPtr pred, ParsePred());
        AUSDB_RETURN_NOT_OK(ExpectSymbol(")"));
        return expr::ProbOf(std::move(pred));
      }
      if (kw == "MEAN_CI" || kw == "VAR_CI") {
        Consume();
        AUSDB_RETURN_NOT_OK(ExpectSymbol("("));
        AUSDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        AUSDB_RETURN_NOT_OK(ExpectSymbol(","));
        AUSDB_ASSIGN_OR_RETURN(double conf, ExpectNumber());
        AUSDB_RETURN_NOT_OK(ExpectSymbol(")"));
        return kw == "MEAN_CI" ? expr::MeanCi(std::move(inner), conf)
                               : expr::VarCi(std::move(inner), conf);
      }
      if (kw == "BIN_CI") {
        Consume();
        AUSDB_RETURN_NOT_OK(ExpectSymbol("("));
        AUSDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        AUSDB_RETURN_NOT_OK(ExpectSymbol(","));
        AUSDB_ASSIGN_OR_RETURN(double index, ExpectNumber());
        AUSDB_RETURN_NOT_OK(ExpectSymbol(","));
        AUSDB_ASSIGN_OR_RETURN(double conf, ExpectNumber());
        AUSDB_RETURN_NOT_OK(ExpectSymbol(")"));
        if (index < 0 || index != static_cast<size_t>(index)) {
          return Status::ParseError("BIN_CI index must be a non-negative "
                                    "integer");
        }
        return expr::BinCi(std::move(inner),
                           static_cast<size_t>(index), conf);
      }
      if (kw == "MTEST" || kw == "MDTEST" || kw == "PTEST") {
        return ParseSignificanceTest();
      }
      if (kw == "TRUE" || kw == "FALSE") {
        Consume();
        return expr::LitBool(kw == "TRUE");
      }
      return Error("unexpected keyword in expression");
    }
    case TokenType::kEnd:
      return Error("unexpected end of query in expression");
  }
  return Error("unexpected token");
}

Result<ExprPtr> Parser::ParseSignificanceTest() {
  const std::string kw = Consume().text;  // MTEST / MDTEST / PTEST
  AUSDB_RETURN_NOT_OK(ExpectSymbol("("));
  if (kw == "MTEST") {
    AUSDB_ASSIGN_OR_RETURN(ExprPtr x, ParseExpr());
    AUSDB_RETURN_NOT_OK(ExpectSymbol(","));
    AUSDB_ASSIGN_OR_RETURN(TestOp op, ExpectTestOpString());
    AUSDB_RETURN_NOT_OK(ExpectSymbol(","));
    AUSDB_ASSIGN_OR_RETURN(double c, ExpectNumber());
    AUSDB_RETURN_NOT_OK(ExpectSymbol(","));
    AUSDB_ASSIGN_OR_RETURN(double alpha, ExpectNumber());
    std::optional<double> alpha2;
    if (AcceptSymbol(",")) {
      AUSDB_ASSIGN_OR_RETURN(double a2, ExpectNumber());
      alpha2 = a2;
    }
    AUSDB_RETURN_NOT_OK(ExpectSymbol(")"));
    return expr::MTest(std::move(x), op, c, alpha, alpha2);
  }
  if (kw == "MDTEST") {
    AUSDB_ASSIGN_OR_RETURN(ExprPtr x, ParseExpr());
    AUSDB_RETURN_NOT_OK(ExpectSymbol(","));
    AUSDB_ASSIGN_OR_RETURN(ExprPtr y, ParseExpr());
    AUSDB_RETURN_NOT_OK(ExpectSymbol(","));
    AUSDB_ASSIGN_OR_RETURN(TestOp op, ExpectTestOpString());
    AUSDB_RETURN_NOT_OK(ExpectSymbol(","));
    AUSDB_ASSIGN_OR_RETURN(double c, ExpectNumber());
    AUSDB_RETURN_NOT_OK(ExpectSymbol(","));
    AUSDB_ASSIGN_OR_RETURN(double alpha, ExpectNumber());
    std::optional<double> alpha2;
    if (AcceptSymbol(",")) {
      AUSDB_ASSIGN_OR_RETURN(double a2, ExpectNumber());
      alpha2 = a2;
    }
    AUSDB_RETURN_NOT_OK(ExpectSymbol(")"));
    return expr::MdTest(std::move(x), std::move(y), op, c, alpha, alpha2);
  }
  // PTEST(pred, tau, alpha [, alpha2])
  AUSDB_ASSIGN_OR_RETURN(ExprPtr pred, ParsePred());
  AUSDB_RETURN_NOT_OK(ExpectSymbol(","));
  AUSDB_ASSIGN_OR_RETURN(double tau, ExpectNumber());
  AUSDB_RETURN_NOT_OK(ExpectSymbol(","));
  AUSDB_ASSIGN_OR_RETURN(double alpha, ExpectNumber());
  std::optional<double> alpha2;
  if (AcceptSymbol(",")) {
    AUSDB_ASSIGN_OR_RETURN(double a2, ExpectNumber());
    alpha2 = a2;
  }
  AUSDB_RETURN_NOT_OK(ExpectSymbol(")"));
  return expr::PTest(std::move(pred), tau, alpha, alpha2);
}

Result<ExprPtr> Parser::ParseOrPred() {
  AUSDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAndPred());
  while (AcceptKeyword("OR")) {
    AUSDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAndPred());
    lhs = expr::Or(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAndPred() {
  AUSDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNotPred());
  while (AcceptKeyword("AND")) {
    AUSDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNotPred());
    lhs = expr::And(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNotPred() {
  if (AcceptKeyword("NOT")) {
    AUSDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseNotPred());
    return expr::Not(std::move(inner));
  }
  return ParsePredAtom();
}

Result<ExprPtr> Parser::ParsePredAtom() {
  const Token& t = Peek();
  if (t.IsKeyword("MTEST") || t.IsKeyword("MDTEST") || t.IsKeyword("PTEST")) {
    return ParseSignificanceTest();
  }
  if (t.IsKeyword("TRUE") || t.IsKeyword("FALSE")) {
    Consume();
    return expr::LitBool(t.text == "TRUE");
  }
  if (t.IsSymbol("(")) {
    // Could be '(' pred ')' or a parenthesized expression beginning a
    // comparison; try the predicate first with backtracking.
    const size_t saved = pos_;
    Consume();
    auto inner = ParsePred();
    if (inner.ok() && AcceptSymbol(")")) {
      // Did the parenthesized thing turn out to be a full predicate, or
      // is a comparison operator waiting (e.g. "(a + b) > c")?
      const Token& after = Peek();
      const bool comparison_follows =
          after.type == TokenType::kSymbol &&
          (after.text == "<" || after.text == "<=" || after.text == ">" ||
           after.text == ">=" || after.text == "=" || after.text == "<>");
      if (!comparison_follows) {
        // "(pred) PROB [>=] tau" — the rendered threshold form.
        if (AcceptKeyword("PROB")) {
          (void)AcceptSymbol(">=");
          AUSDB_ASSIGN_OR_RETURN(double tau, ExpectNumber());
          return expr::ProbThreshold(*inner, tau);
        }
        return *inner;
      }
    }
    pos_ = saved;
    return ParseComparison();
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  AUSDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseExpr());
  AUSDB_ASSIGN_OR_RETURN(std::optional<expr::CmpOp> op, AcceptCmpOp());
  if (!op.has_value()) {
    return Error("expected a comparison operator");
  }
  AUSDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseExpr());

  // PROB(pred) >= tau rewrites to a probability-threshold predicate.
  if (lhs->kind() == expr::ExprKind::kProbOf &&
      rhs->kind() == expr::ExprKind::kLiteral) {
    const auto& lit = static_cast<const expr::LiteralExpr&>(*rhs);
    if (lit.value().is_double()) {
      const double tau = *lit.value().double_value();
      const auto& prob_of = static_cast<const expr::ProbOfExpr&>(*lhs);
      switch (*op) {
        case expr::CmpOp::kGe:
        case expr::CmpOp::kGt:
          return expr::ProbThreshold(prob_of.pred(), tau);
        case expr::CmpOp::kLt:
        case expr::CmpOp::kLe:
          return expr::Not(expr::ProbThreshold(prob_of.pred(), tau));
        default:
          return Status::ParseError(
              "PROB(...) supports <, <=, > and >= comparisons");
      }
    }
  }

  ExprPtr cmp = expr::Cmp(*op, std::move(lhs), std::move(rhs));

  // The paper's probabilistic threshold form: "X > 50 PROB 0.66" (an
  // optional ">=" before the threshold is accepted, matching the
  // ToString rendering).
  if (AcceptKeyword("PROB")) {
    (void)AcceptSymbol(">=");
    AUSDB_ASSIGN_OR_RETURN(double tau, ExpectNumber());
    return expr::ProbThreshold(std::move(cmp), tau);
  }
  return cmp;
}

Result<SelectItem> Parser::ParseSelectItem(ParsedQuery* q, size_t index) {
  // Window aggregate item?
  if ((Peek().IsKeyword("AVG") || Peek().IsKeyword("SUM")) &&
      Peek(1).IsSymbol("(")) {
    if (q->window_agg.has_value()) {
      return Status::ParseError(
          "only one window aggregate per query is supported");
    }
    WindowSpec spec;
    spec.fn = Peek().IsKeyword("AVG") ? engine::WindowAggFn::kAvg
                                      : engine::WindowAggFn::kSum;
    Consume();
    Consume();  // '('
    AUSDB_ASSIGN_OR_RETURN(spec.column, ExpectIdentifier());
    AUSDB_RETURN_NOT_OK(ExpectSymbol(")"));
    AUSDB_RETURN_NOT_OK(ExpectKeyword("OVER"));
    AUSDB_RETURN_NOT_OK(ExpectSymbol("("));
    if (AcceptKeyword("RANGE")) {
      AUSDB_ASSIGN_OR_RETURN(spec.range_duration, ExpectNumber());
      if (!(spec.range_duration > 0.0)) {
        return Status::ParseError("window RANGE duration must be > 0");
      }
      AUSDB_RETURN_NOT_OK(ExpectKeyword("ON"));
      AUSDB_ASSIGN_OR_RETURN(spec.range_column, ExpectIdentifier());
      if (AcceptKeyword("WITHIN")) {
        AUSDB_ASSIGN_OR_RETURN(spec.within_bound, ExpectNumber());
        if (!(spec.within_bound > 0.0)) {
          return Status::ParseError("window WITHIN bound must be > 0");
        }
      }
      if (AcceptKeyword("LATENESS")) {
        AUSDB_ASSIGN_OR_RETURN(spec.lateness, ExpectNumber());
        if (!(spec.lateness > 0.0)) {
          return Status::ParseError("window LATENESS must be > 0");
        }
      }
      AUSDB_RETURN_NOT_OK(ExpectSymbol(")"));
    } else {
      AUSDB_RETURN_NOT_OK(ExpectKeyword("ROWS"));
      AUSDB_ASSIGN_OR_RETURN(double rows, ExpectNumber());
      if (AcceptKeyword("TUMBLE")) {
        spec.kind = engine::WindowKind::kTumbling;
      }
      AUSDB_RETURN_NOT_OK(ExpectSymbol(")"));
      if (rows < 1 || rows != static_cast<size_t>(rows)) {
        return Status::ParseError(
            "window ROWS must be a positive integer");
      }
      spec.rows = static_cast<size_t>(rows);
    }
    spec.alias = (spec.fn == engine::WindowAggFn::kAvg ? "avg_" : "sum_") +
                 spec.column;
    if (AcceptKeyword("AS")) {
      AUSDB_ASSIGN_OR_RETURN(spec.alias, ExpectIdentifier());
    }
    q->window_agg = std::move(spec);
    SelectItem item;
    item.is_star = false;
    item.expression = nullptr;  // marker: handled by the window operator
    return item;
  }

  SelectItem item;
  AUSDB_ASSIGN_OR_RETURN(item.expression, ParseExpr());
  if (AcceptKeyword("AS")) {
    AUSDB_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
  } else if (item.expression->kind() == expr::ExprKind::kColumnRef) {
    item.alias =
        static_cast<const expr::ColumnRefExpr&>(*item.expression).name();
  } else {
    item.alias = "col" + std::to_string(index);
  }
  return item;
}

Result<ParsedStatement> Parser::ParseStatement() {
  ParsedStatement stmt;
  if (AcceptKeyword("EXPLAIN")) {
    stmt.kind = AcceptKeyword("ANALYZE") ? StatementKind::kExplainAnalyze
                                         : StatementKind::kExplain;
  }
  // The inner query parses under exactly the same grammar — EXPLAIN
  // wraps a valid query or fails with the query's own parse error,
  // never a silent acceptance of a malformed statement.
  AUSDB_ASSIGN_OR_RETURN(stmt.query, ParseQuery());
  return stmt;
}

Result<ParsedQuery> Parser::ParseQuery() {
  ParsedQuery q;
  AUSDB_RETURN_NOT_OK(ExpectKeyword("SELECT"));

  if (AcceptSymbol("*")) {
    SelectItem star;
    star.is_star = true;
    q.select.push_back(std::move(star));
  } else {
    size_t index = 0;
    do {
      AUSDB_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem(&q, index));
      if (item.expression != nullptr || item.is_star) {
        q.select.push_back(std::move(item));
      }
      ++index;
    } while (AcceptSymbol(","));
  }

  AUSDB_RETURN_NOT_OK(ExpectKeyword("FROM"));
  AUSDB_ASSIGN_OR_RETURN(q.from, ExpectIdentifier());

  if (AcceptKeyword("WHERE")) {
    AUSDB_ASSIGN_OR_RETURN(q.where, ParsePred());
  }

  if (AcceptKeyword("GROUP")) {
    AUSDB_RETURN_NOT_OK(ExpectKeyword("BY"));
    AUSDB_ASSIGN_OR_RETURN(q.group_by, ExpectIdentifier());
  }

  if (AcceptKeyword("ORDER")) {
    AUSDB_RETURN_NOT_OK(ExpectKeyword("BY"));
    OrderBySpec spec;
    AUSDB_ASSIGN_OR_RETURN(spec.column, ExpectIdentifier());
    if (AcceptKeyword("DESC")) {
      spec.order = engine::SortOrder::kDescending;
    } else {
      (void)AcceptKeyword("ASC");
    }
    q.order_by = std::move(spec);
  }

  if (AcceptKeyword("LIMIT")) {
    AUSDB_ASSIGN_OR_RETURN(double n, ExpectNumber());
    if (n < 0 || n != static_cast<size_t>(n)) {
      return Status::ParseError("LIMIT must be a non-negative integer");
    }
    q.limit = static_cast<size_t>(n);
  }

  if (AcceptKeyword("WITH")) {
    AUSDB_RETURN_NOT_OK(ExpectKeyword("ACCURACY"));
    AccuracyClause clause;
    if (AcceptKeyword("BOOTSTRAP")) {
      clause.method = accuracy::AccuracyMethod::kBootstrap;
    } else if (AcceptKeyword("ANALYTICAL")) {
      clause.method = accuracy::AccuracyMethod::kAnalytical;
    } else if (Peek().type == TokenType::kNumber) {
      // The accuracy-target form: WITH ACCURACY <eps> asks the cost
      // model for the cheapest method meeting half-width <= eps.
      const double eps = Consume().number;
      if (!(eps > 0.0)) {
        return Status::ParseError(
            "ACCURACY target must be a positive half-width, got " +
            std::to_string(eps));
      }
      clause.epsilon = eps;
    } else {
      return Error(
          "expected ANALYTICAL, BOOTSTRAP or a numeric accuracy target "
          "after WITH ACCURACY");
    }
    if (AcceptKeyword("CONFIDENCE")) {
      AUSDB_ASSIGN_OR_RETURN(clause.confidence, ExpectNumber());
      if (!(clause.confidence > 0.0) || !(clause.confidence < 1.0)) {
        return Status::ParseError(
            "CONFIDENCE must be strictly between 0 and 1, got " +
            std::to_string(clause.confidence));
      }
    }
    q.accuracy = clause;
  }

  if (Peek().type != TokenType::kEnd) {
    return Error("unexpected trailing input");
  }
  return q;
}

Result<ExprPtr> Parser::ParsePredicateOnly() {
  AUSDB_ASSIGN_OR_RETURN(ExprPtr p, ParsePred());
  if (Peek().type != TokenType::kEnd) {
    return Error("unexpected trailing input after predicate");
  }
  return p;
}

Result<ExprPtr> Parser::ParseExpressionOnly() {
  AUSDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
  if (Peek().type != TokenType::kEnd) {
    return Error("unexpected trailing input after expression");
  }
  return e;
}

}  // namespace

Result<ParsedQuery> Parse(std::string_view input) {
  AUSDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<ParsedStatement> ParseStatement(std::string_view input) {
  AUSDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<expr::ExprPtr> ParsePredicate(std::string_view input) {
  AUSDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParsePredicateOnly();
}

Result<expr::ExprPtr> ParseExpression(std::string_view input) {
  AUSDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseExpressionOnly();
}

}  // namespace query
}  // namespace ausdb
