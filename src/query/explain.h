#ifndef AUSDB_QUERY_EXPLAIN_H_
#define AUSDB_QUERY_EXPLAIN_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/engine/tuple.h"
#include "src/query/planner.h"

namespace ausdb {
namespace query {

/// \brief Renders the plan the planner would build for `query` under
/// `options`, one stage per line, root first — the `EXPLAIN <query>`
/// surface.
///
/// Each line names the stage (the same names the pipeline profiler
/// uses, so EXPLAIN and EXPLAIN ANALYZE join trivially) and its
/// configuration; for an accuracy-target query the chosen MethodSpec
/// plus its predicted cost and half-width from the CostTable are shown,
/// computed through the chooser's *pure* decision function on the prior
/// workload estimate — EXPLAIN never mutates a shared chooser and never
/// runs the plan.
///
/// The rendering is byte-deterministic (numbers via
/// obs::FormatMetricValue) and pinned by a golden-file test; plan
/// shape or cost-model drift cannot ship silently.
Result<std::string> ExplainPlan(const ParsedQuery& query,
                                const PlannerOptions& options = {});

/// What ExplainAnalyze() returns.
struct ExplainAnalyzeResult {
  /// Byte-deterministic report: the ExplainPlan rendering followed by
  /// per-operator profile counters (tuple counts, pull counts,
  /// selectivities). Identical across thread counts, prefetch depths,
  /// and metrics on/off — the acceptance harness compares it literally.
  std::string report;

  /// The deterministic profile counters alone, as JSON
  /// (PipelineProfile::CountersJson()).
  std::string counters_json;

  /// The delivered output, byte-identical to an unprofiled run of the
  /// same query (profiling is a write-only wrapper).
  std::vector<engine::Tuple> rows;

  /// Sampled wall-clock annex (empty unless options.profiler.clock was
  /// set) — the only non-deterministic part, never mixed into `report`.
  std::string latency_annex;
};

/// \brief Runs `query` over `source` with every stage profiled — the
/// `EXPLAIN ANALYZE <query>` surface. `options.profiler.profile` is
/// supplied internally; `options.profiler.clock` (off by default)
/// enables the latency annex.
Result<ExplainAnalyzeResult> ExplainAnalyze(const ParsedQuery& query,
                                            engine::OperatorPtr source,
                                            const PlannerOptions& options =
                                                {});

}  // namespace query
}  // namespace ausdb

#endif  // AUSDB_QUERY_EXPLAIN_H_
