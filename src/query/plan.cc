#include "src/query/plan.h"

#include <sstream>

namespace ausdb {
namespace query {

std::string ParsedQuery::ToString() const {
  std::ostringstream os;
  os << "SELECT ";
  bool first = true;
  for (const auto& item : select) {
    if (!first) os << ", ";
    first = false;
    if (item.is_star) {
      os << "*";
    } else {
      os << item.expression->ToString();
      if (!item.alias.empty()) os << " AS " << item.alias;
    }
  }
  if (window_agg.has_value()) {
    if (!first) os << ", ";
    os << (window_agg->fn == engine::WindowAggFn::kAvg ? "AVG(" : "SUM(")
       << window_agg->column << ") OVER (";
    if (window_agg->is_time_based()) {
      os << "RANGE " << window_agg->range_duration << " ON "
         << window_agg->range_column;
      if (window_agg->within_bound > 0.0) {
        os << " WITHIN " << window_agg->within_bound;
      }
      if (window_agg->lateness > 0.0) {
        os << " LATENESS " << window_agg->lateness;
      }
    } else {
      os << "ROWS " << window_agg->rows
         << (window_agg->kind == engine::WindowKind::kTumbling
                 ? " TUMBLE"
                 : "");
    }
    os << ") AS " << window_agg->alias;
  }
  os << " FROM " << from;
  if (where != nullptr) {
    os << " WHERE " << where->ToString();
  }
  if (!group_by.empty()) {
    os << " GROUP BY " << group_by;
  }
  if (order_by.has_value()) {
    os << " ORDER BY " << order_by->column
       << (order_by->order == engine::SortOrder::kDescending ? " DESC"
                                                             : "");
  }
  if (limit.has_value()) {
    os << " LIMIT " << *limit;
  }
  if (accuracy.has_value()) {
    os << " WITH ACCURACY ";
    if (accuracy->epsilon.has_value()) {
      os << *accuracy->epsilon;
    } else {
      os << (accuracy->method == accuracy::AccuracyMethod::kAnalytical
                 ? "ANALYTICAL"
                 : "BOOTSTRAP");
    }
    os << " CONFIDENCE " << accuracy->confidence;
  }
  return os.str();
}

std::string ParsedStatement::ToString() const {
  switch (kind) {
    case StatementKind::kQuery:
      return query.ToString();
    case StatementKind::kExplain:
      return "EXPLAIN " + query.ToString();
    case StatementKind::kExplainAnalyze:
      return "EXPLAIN ANALYZE " + query.ToString();
  }
  return query.ToString();
}

}  // namespace query
}  // namespace ausdb
