#ifndef AUSDB_QUERY_TOKEN_H_
#define AUSDB_QUERY_TOKEN_H_

#include <string>
#include <vector>

#include "src/common/result.h"

namespace ausdb {
namespace query {

/// Lexical token categories of AQL.
enum class TokenType {
  kIdentifier,  ///< bare word that is not a keyword
  kKeyword,     ///< SELECT, FROM, WHERE, ... (uppercased in `text`)
  kNumber,      ///< numeric literal (value in `number`)
  kString,      ///< '...' literal (unquoted content in `text`)
  kSymbol,      ///< punctuation / operator (text holds it, e.g. "<=")
  kEnd,         ///< end of input
};

/// One lexical token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  double number = 0.0;
  size_t offset = 0;

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(std::string_view sym) const {
    return type == TokenType::kSymbol && text == sym;
  }

  std::string ToString() const;
};

/// \brief Splits an AQL query string into tokens.
///
/// Keywords are recognized case-insensitively and reported uppercased;
/// identifiers keep their original spelling. Fails with ParseError on
/// unterminated strings or unexpected characters.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace query
}  // namespace ausdb

#endif  // AUSDB_QUERY_TOKEN_H_
