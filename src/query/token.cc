#include "src/query/token.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <unordered_set>

namespace ausdb {
namespace query {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",    "WHERE",  "AS",        "AND",     "OR",
      "NOT",    "PROB",    "MTEST",  "MDTEST",    "PTEST",   "AVG",
      "SUM",    "OVER",    "ROWS",   "WITH",      "ACCURACY",
      "ANALYTICAL",        "BOOTSTRAP",           "CONFIDENCE",
      "SQRT",   "ABS",     "SQUARE", "SQRT_ABS",  "MEAN_CI", "VAR_CI",
      "BIN_CI", "TRUE",    "FALSE",  "GROUP",     "BY",      "TUMBLE",
      "ORDER",  "ASC",     "DESC",   "LIMIT",     "RANGE",   "ON",
      "WITHIN", "LATENESS", "EXPLAIN", "ANALYZE"};
  return *kKeywords;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

}  // namespace

std::string Token::ToString() const {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier '" + text + "'";
    case TokenType::kKeyword:
      return "keyword " + text;
    case TokenType::kNumber:
      return "number " + std::to_string(number);
    case TokenType::kString:
      return "string '" + text + "'";
    case TokenType::kSymbol:
      return "'" + text + "'";
    case TokenType::kEnd:
      return "end of query";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    Token t;
    t.offset = i;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      const std::string word(input.substr(i, j - i));
      const std::string upper = ToUpper(word);
      if (Keywords().count(upper) > 0) {
        t.type = TokenType::kKeyword;
        t.text = upper;
      } else {
        t.type = TokenType::kIdentifier;
        t.text = word;
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      bool saw_dot = false;
      bool saw_exp = false;
      while (j < n) {
        const char d = input[j];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++j;
        } else if (d == '.' && !saw_dot && !saw_exp) {
          saw_dot = true;
          ++j;
        } else if ((d == 'e' || d == 'E') && !saw_exp && j > i) {
          saw_exp = true;
          ++j;
          if (j < n && (input[j] == '+' || input[j] == '-')) ++j;
        } else {
          break;
        }
      }
      const std::string num(input.substr(i, j - i));
      t.type = TokenType::kNumber;
      try {
        t.number = std::stod(num);
      } catch (...) {
        return Status::ParseError("bad numeric literal '" + num +
                                  "' at offset " + std::to_string(i));
      }
      t.text = num;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }

    if (c == '\'') {
      size_t j = i + 1;
      std::string content;
      while (j < n && input[j] != '\'') {
        content.push_back(input[j]);
        ++j;
      }
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      t.type = TokenType::kString;
      t.text = std::move(content);
      tokens.push_back(std::move(t));
      i = j + 1;
      continue;
    }

    // Multi-character symbols first.
    const std::string_view rest = input.substr(i);
    t.type = TokenType::kSymbol;
    if (rest.starts_with("<=") || rest.starts_with(">=") ||
        rest.starts_with("<>") || rest.starts_with("!=")) {
      t.text = std::string(rest.substr(0, 2));
      if (t.text == "!=") t.text = "<>";
      i += 2;
    } else if (std::string("+-*/(),<>=").find(c) != std::string::npos) {
      t.text = std::string(1, c);
      ++i;
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(i));
    }
    tokens.push_back(std::move(t));
  }

  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace query
}  // namespace ausdb
