#ifndef AUSDB_STREAM_ASYNC_PREFETCH_SOURCE_H_
#define AUSDB_STREAM_ASYNC_PREFETCH_SOURCE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>

#include "src/common/bounded_queue.h"
#include "src/engine/replayable.h"
#include "src/obs/metrics.h"
#include "src/stream/watermark.h"

namespace ausdb {
namespace stream {

/// Options of AsyncPrefetchSource / AsyncPrefetchReplayableSource.
struct AsyncPrefetchOptions {
  /// Capacity of the prefetch ring: how many pull outcomes the producer
  /// thread may run ahead of the consumer before backpressure blocks
  /// it. Depth 1 degenerates to strict hand-off (still overlapping one
  /// pull with downstream work); larger depths absorb burstier source
  /// latency. Affects timing only, never output: the delivered stream
  /// is the same at every depth.
  size_t queue_depth = 64;

  /// When non-null, ring observability is mirrored into
  /// `ausdb_stream_prefetch_*` metrics labeled `{queue=metrics_label}`:
  /// a depth gauge plus produced/delivered/wait/start counters. Strictly
  /// write-only — timing metrics record what happened, never steer the
  /// pump — so the delivered stream stays bit-identical with metrics on
  /// or off. The registry must outlive the source.
  obs::MetricRegistry* metrics = nullptr;
  std::string metrics_label = "prefetch";

  /// When non-empty, the wrapper tracks a bounded-out-of-orderness
  /// watermark over this (deterministic double) timestamp column,
  /// observed on the CONSUMER side at delivery — a pure function of the
  /// delivered tuple sequence, so CurrentWatermark() after the N-th
  /// Next() is identical at every queue depth and never reflects how
  /// far the producer has read ahead.
  std::string watermark_column;
  double watermark_bound = 0.0;
};

/// Observability counters of a prefetching source. Timing-dependent
/// (unlike the stream itself): the wait counters say which side was the
/// bottleneck.
struct PrefetchStats {
  /// Tuples the producer thread pulled out of the wrapped source.
  size_t produced = 0;
  /// Tuples handed to the consumer; `produced - delivered` is the
  /// prefetch backlog (tuples resident in the ring).
  size_t delivered = 0;
  /// Producer blocked on a full ring (consumer-bound pipeline).
  size_t push_waits = 0;
  /// Consumer blocked on an empty ring (source-bound pipeline).
  size_t pop_waits = 0;
  /// Producer thread launches (one per Reset/SeekTo rearm).
  size_t starts = 0;
};

namespace internal {

/// Consumer-side watermark state shared by both prefetch wrappers: the
/// configured column is resolved against the child schema once, then
/// every *delivered* tuple advances the policy. A resolution failure is
/// deferred to the first Next() (construction is non-failable).
struct ConsumerWatermark {
  void Configure(const AsyncPrefetchOptions& options,
                 const engine::Schema& schema) {
    policy = WatermarkPolicy(WatermarkPolicyOptions{options.watermark_bound});
    if (options.watermark_column.empty()) return;
    Result<size_t> idx = schema.IndexOf(options.watermark_column);
    if (idx.ok()) {
      index = *idx;
    } else {
      status = idx.status();
    }
  }

  void Observe(const engine::Tuple& t) {
    if (!index.has_value() || *index >= t.num_values()) return;
    Result<double> ts = t.value(*index).AsDouble();
    if (ts.ok()) policy.Observe(*ts);
  }

  WatermarkPolicy policy;
  std::optional<size_t> index;
  Status status;
};

/// \brief The engine of both prefetching wrappers: a producer thread
/// that pulls the wrapped operator in a tight loop and a bounded FIFO
/// of *pull outcomes* (tuple, end-of-stream, or error Status) the
/// consumer pops through the ordinary Next() interface.
///
/// Determinism: the wrapped source is pulled by exactly one thread, in
/// a serial loop, and outcomes are queued and consumed strictly FIFO —
/// so the outcome sequence the consumer observes is the same sequence
/// it would have observed pulling synchronously, a pure function of the
/// source and never of timing. Errors are queued in position (not
/// short-circuited) so retry layers above see failures at exactly the
/// same pull index as in the synchronous path, and the producer keeps
/// pulling after an error exactly like a retrying synchronous consumer
/// would.
///
/// Threading contract: Next/Stop/stats belong to the consumer thread
/// (the pull loop is single-threaded by engine convention); the
/// producer thread touches only the wrapped source and the queue.
/// Stop() joins the producer, which re-establishes exclusive consumer
/// ownership of the source — that is what makes Reset/SeekTo safe.
class PrefetchPump {
 public:
  using Outcome = Result<std::optional<engine::Tuple>>;

  PrefetchPump(engine::Operator* source, const AsyncPrefetchOptions& options);
  ~PrefetchPump();

  PrefetchPump(const PrefetchPump&) = delete;
  PrefetchPump& operator=(const PrefetchPump&) = delete;

  /// Pops the next outcome, lazily launching the producer thread on the
  /// first call (and after a Stop() rearm).
  Outcome Next();

  /// Cancels the ring, joins the producer and discards buffered
  /// outcomes; the wrapped source is afterwards exclusively owned by
  /// the caller again (re-seek it, then keep pulling — Next() relaunches
  /// the producer). Idempotent; called by the destructor.
  void Stop();

  bool running() const { return started_; }

  PrefetchStats stats() const;

 private:
  void EnsureStarted();
  void PumpLoop(BoundedQueue<Outcome>* queue);

  engine::Operator* source_;
  const size_t queue_depth_;
  std::unique_ptr<BoundedQueue<Outcome>> queue_;
  std::thread producer_;
  bool started_ = false;
  bool exhausted_ = false;
  /// Written by the producer thread, read by stats().
  std::atomic<size_t> produced_{0};
  size_t delivered_ = 0;
  size_t starts_ = 0;
  /// Wait counts accumulated over retired queue generations.
  size_t retired_push_waits_ = 0;
  size_t retired_pop_waits_ = 0;

  /// Registry-owned metrics; all null when options.metrics was null.
  /// The queue metrics are bound to each ring generation in
  /// EnsureStarted(); counters are cumulative across generations.
  obs::Gauge* m_depth_ = nullptr;
  obs::Counter* m_push_waits_ = nullptr;
  obs::Counter* m_pop_waits_ = nullptr;
  obs::Counter* m_try_rejections_ = nullptr;
  obs::Counter* m_produced_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_starts_ = nullptr;
};

}  // namespace internal

/// \brief Asynchronous prefetching wrapper for any operator subtree
/// (typically a source): the wrapped operator is pulled on a background
/// thread into a bounded ring buffer, overlapping source latency
/// (socket reads, file I/O, simulation) with downstream window
/// processing, while the pull interface — and the delivered stream —
/// stay exactly those of the wrapped operator.
///
/// Composition: SupervisedScan retry/quarantine sits in FRONT of this
/// wrapper unchanged (transient errors surface through Next() at their
/// exact synchronous position, so retry accounting is identical), and
/// the wrapper sits in front of the raw source. For crash recovery use
/// AsyncPrefetchReplayableSource, which keeps the ReplayableSource
/// contract intact.
///
/// Lifecycle: Close() (or destruction) cancels the ring and joins the
/// producer, even mid-stream with the producer blocked on a full ring.
/// Reset() stops the producer, resets the wrapped operator and rearms.
class AsyncPrefetchSource final : public engine::Operator,
                                  public WatermarkProvider {
 public:
  explicit AsyncPrefetchSource(engine::OperatorPtr child,
                               AsyncPrefetchOptions options = {});
  ~AsyncPrefetchSource() override;

  const engine::Schema& schema() const override { return child_->schema(); }
  Result<std::optional<engine::Tuple>> Next() override;
  Status Reset() override;
  Status Close() override;

  /// Binding (and unbinding) must happen outside an active pull
  /// sequence; a running producer is stopped first, discarding
  /// prefetched tuples.
  void BindThreadPool(ThreadPool* pool) override;

  PrefetchStats stats() const { return pump_.stats(); }

  /// Consumer-side event-time watermark over options.watermark_column;
  /// -inf until a timestamped tuple was delivered (or when no column is
  /// configured).
  double CurrentWatermark() const override {
    return watermark_.policy.watermark();
  }

 private:
  engine::OperatorPtr child_;
  internal::PrefetchPump pump_;
  internal::ConsumerWatermark watermark_;
  bool closed_ = false;
};

/// \brief AsyncPrefetchSource for replayable sources: prefetches like
/// the generic wrapper but remains a ReplayableSource, so
/// RecoveryManager can register the *wrapper* and checkpoint/replay
/// compose with prefetching untouched.
///
/// position() is the CONSUMER-visible position (tuples delivered), not
/// how far the producer has read ahead — a checkpoint taken mid-
/// prefetch records exactly the tuples downstream operators have
/// consumed, so restore replays the ring's undelivered residue instead
/// of losing it. SeekTo() stops the producer, discards the ring,
/// re-seeks the wrapped source and rearms.
class AsyncPrefetchReplayableSource final : public engine::ReplayableSource,
                                            public WatermarkProvider {
 public:
  explicit AsyncPrefetchReplayableSource(
      std::unique_ptr<engine::ReplayableSource> child,
      AsyncPrefetchOptions options = {});
  ~AsyncPrefetchReplayableSource() override;

  const engine::Schema& schema() const override { return child_->schema(); }
  Result<std::optional<engine::Tuple>> Next() override;
  Status Reset() override;
  Status Close() override;
  void BindThreadPool(ThreadPool* pool) override;

  uint64_t position() const override { return delivered_; }
  Status SeekTo(uint64_t position) override;

  PrefetchStats stats() const { return pump_.stats(); }

  /// Consumer-side event-time watermark (see AsyncPrefetchSource). A
  /// SeekTo resets it; replayed tuples re-advance it deterministically.
  double CurrentWatermark() const override {
    return watermark_.policy.watermark();
  }

 private:
  std::unique_ptr<engine::ReplayableSource> child_;
  internal::PrefetchPump pump_;
  internal::ConsumerWatermark watermark_;
  uint64_t delivered_ = 0;
  bool closed_ = false;
};

/// Convenience: wraps `child` in an AsyncPrefetchSource.
engine::OperatorPtr MakeAsyncPrefetch(engine::OperatorPtr child,
                                      AsyncPrefetchOptions options = {});

}  // namespace stream
}  // namespace ausdb

#endif  // AUSDB_STREAM_ASYNC_PREFETCH_SOURCE_H_
