#ifndef AUSDB_STREAM_THROUGHPUT_H_
#define AUSDB_STREAM_THROUGHPUT_H_

#include <chrono>
#include <cstddef>

namespace ausdb {
namespace stream {

/// \brief Wall-clock throughput meter for stream experiments
/// (tuples/second, paper Figures 5(c) and 5(f)).
class ThroughputMeter {
 public:
  void Start() {
    start_ = Clock::now();
    count_ = 0;
    running_ = true;
  }

  void Count(size_t tuples = 1) { count_ += tuples; }

  /// Stops the meter; Elapsed/TuplesPerSecond refer to the stopped span.
  void Stop() {
    end_ = Clock::now();
    running_ = false;
  }

  double ElapsedSeconds() const {
    const auto end = running_ ? Clock::now() : end_;
    return std::chrono::duration<double>(end - start_).count();
  }

  size_t count() const { return count_; }

  double TuplesPerSecond() const {
    const double s = ElapsedSeconds();
    return s > 0.0 ? static_cast<double>(count_) / s : 0.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_{};
  Clock::time_point end_{};
  size_t count_ = 0;
  bool running_ = false;
};

}  // namespace stream
}  // namespace ausdb

#endif  // AUSDB_STREAM_THROUGHPUT_H_
