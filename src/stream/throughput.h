#ifndef AUSDB_STREAM_THROUGHPUT_H_
#define AUSDB_STREAM_THROUGHPUT_H_

#include <cstddef>
#include <cstdint>

#include "src/obs/clock.h"
#include "src/obs/metrics.h"

namespace ausdb {
namespace stream {

/// \brief Wall-clock throughput meter for stream experiments
/// (tuples/second, paper Figures 5(c) and 5(f)).
///
/// A thin facade over the obs layer: the count is an obs::Counter and
/// all timing flows through an injectable obs::Clock, so benches share
/// the engine's one time source and tests can pin elapsed time exactly
/// with a FakeClock. A meter that was never Start()ed reports zero
/// elapsed time and zero rate — previously Stop() without Start() read
/// a span against the default-constructed epoch, producing a huge
/// garbage duration.
class ThroughputMeter {
 public:
  explicit ThroughputMeter(const obs::Clock* clock =
                               obs::SteadyClock::Instance())
      : clock_(clock) {}

  void Start() {
    start_nanos_ = clock_->NowNanos();
    // The obs::Counter is monotonic by contract; a new measurement span
    // subtracts the start snapshot instead of resetting it.
    start_count_ = count_.Value();
    started_ = true;
    running_ = true;
  }

  void Count(size_t tuples = 1) { count_.Increment(tuples); }

  /// Stops the meter; Elapsed/TuplesPerSecond refer to the stopped span.
  /// A Stop() without a prior Start() is ignored (there is no span).
  void Stop() {
    if (!started_) return;
    end_nanos_ = clock_->NowNanos();
    running_ = false;
  }

  double ElapsedSeconds() const {
    if (!started_) return 0.0;
    const uint64_t end = running_ ? clock_->NowNanos() : end_nanos_;
    return obs::NanosToSeconds(end - start_nanos_);
  }

  size_t count() const {
    return static_cast<size_t>(count_.Value() - start_count_);
  }

  double TuplesPerSecond() const {
    const double s = ElapsedSeconds();
    return s > 0.0 ? static_cast<double>(count()) / s : 0.0;
  }

 private:
  const obs::Clock* clock_;
  uint64_t start_nanos_ = 0;
  uint64_t end_nanos_ = 0;
  uint64_t start_count_ = 0;
  obs::Counter count_;
  bool started_ = false;
  bool running_ = false;
};

}  // namespace stream
}  // namespace ausdb

#endif  // AUSDB_STREAM_THROUGHPUT_H_
