#include "src/stream/supervised_source.h"

#include <cmath>
#include <utility>

#include "src/common/logging.h"
#include "src/dist/gaussian.h"

namespace ausdb {
namespace stream {

namespace {

/// Validity of one uncertain field; OK for deterministic values.
Status ValidateValue(const expr::Value& v, const std::string& field_name) {
  if (!v.is_random_var()) return Status::OK();
  AUSDB_ASSIGN_OR_RETURN(dist::RandomVar rv, v.random_var());
  const double mean = rv.Mean();
  const double variance = rv.Variance();
  if (!std::isfinite(mean) || !std::isfinite(variance) || variance < 0.0) {
    return Status::InvalidArgument(
        "field '" + field_name + "': non-finite distribution parameters (" +
        rv.ToString() + ")");
  }
  if (rv.sample_size() == 0) {
    return Status::InsufficientData("field '" + field_name +
                                    "': zero-sample distribution");
  }
  return Status::OK();
}

}  // namespace

Status ValidateTupleDistributions(const engine::Tuple& tuple,
                                  const engine::Schema& schema) {
  for (size_t i = 0; i < tuple.num_values(); ++i) {
    const std::string& name =
        i < schema.names().size() ? schema.names()[i] : std::to_string(i);
    AUSDB_RETURN_NOT_OK(ValidateValue(tuple.value(i), name));
  }
  return Status::OK();
}

DegradationPolicy MakeWideGaussianDegradation(double mean, double variance,
                                              size_t sample_size) {
  return [mean, variance, sample_size](
             const engine::Tuple& bad,
             const Status&) -> std::optional<engine::Tuple> {
    engine::Tuple repaired = bad;
    for (size_t i = 0; i < repaired.num_values(); ++i) {
      if (ValidateValue(repaired.value(i), "").ok()) continue;
      repaired.values()[i] = expr::Value(dist::RandomVar(
          std::make_shared<dist::GaussianDist>(mean, variance),
          sample_size));
    }
    return repaired;
  };
}

SupervisedScan::SupervisedScan(engine::OperatorPtr child,
                               SupervisedScanOptions options)
    : child_(std::move(child)),
      options_(std::move(options)),
      jitter_rng_(options_.jitter_seed),
      watermark_(WatermarkPolicyOptions{options_.watermark_bound}) {
  if (!options_.watermark_column.empty()) {
    Result<size_t> idx =
        child_->schema().IndexOf(options_.watermark_column);
    if (idx.ok()) {
      watermark_index_ = *idx;
    } else {
      watermark_status_ = idx.status();
    }
  }
  if (options_.metrics != nullptr) {
    obs::MetricRegistry* reg = options_.metrics;
    const std::vector<obs::Label> labels = {
        {"source", options_.metrics_label}};
    m_emitted_ =
        reg->GetCounter("ausdb_stream_supervision_emitted_total", labels,
                        "Valid tuples passed through the supervisor.");
    m_degraded_ =
        reg->GetCounter("ausdb_stream_supervision_degraded_total", labels,
                        "Invalid tuples repaired by the degradation policy.");
    m_quarantined_ = reg->GetCounter(
        "ausdb_stream_supervision_quarantined_total", labels,
        "Invalid tuples diverted to the dead-letter buffer.");
    m_retries_ =
        reg->GetCounter("ausdb_stream_supervision_retries_total", labels,
                        "Retried child Next() attempts.");
    m_restarts_ =
        reg->GetCounter("ausdb_stream_supervision_restarts_total", labels,
                        "Restart-callback invocations.");
    m_gave_up_ =
        reg->GetCounter("ausdb_stream_supervision_gave_up_total", labels,
                        "Retry budgets exhausted (error propagated).");
    m_backoff_ = reg->GetHistogram(
        "ausdb_stream_supervision_backoff_seconds", labels,
        obs::DefaultLatencySecondsBoundaries(),
        "Scheduled retry backoff delays, in seconds (sum = total backoff).");
    if (watermark_index_.has_value()) {
      m_watermark_ = reg->GetGauge(
          "ausdb_stream_watermark_event_time_milli", labels,
          "Source event-time watermark, in milli-units of the timestamp "
          "column (max observed timestamp minus the bound).");
    }
  }
}

void SupervisedScan::ObserveWatermark(const engine::Tuple& t) {
  if (!watermark_index_.has_value() ||
      *watermark_index_ >= t.num_values()) {
    return;
  }
  Result<double> ts = t.value(*watermark_index_).AsDouble();
  if (!ts.ok()) return;  // validator/quarantine handles the bad field
  if (watermark_.Observe(*ts) && m_watermark_ != nullptr) {
    m_watermark_->Set(
        static_cast<int64_t>(watermark_.watermark() * 1000.0));
  }
}

Result<std::optional<engine::Tuple>> SupervisedScan::PullWithRetry() {
  size_t attempts = 0;
  double elapsed = 0.0;  // scheduled backoff this retry sequence
  bool restarted = false;
  for (;;) {
    Result<std::optional<engine::Tuple>> r = child_->Next();
    if (r.ok()) return r;
    ++attempts;
    if (!options_.retry.ShouldRetry(r.status(), attempts, elapsed)) {
      if (ClassifyStatus(r.status()) == FailureClass::kTransient) {
        ++counters_.gave_up;
        if (m_gave_up_) m_gave_up_->Increment();
        AUSDB_LOG(WARN) << "supervised scan gave up after " << attempts
                        << " attempts: " << r.status().ToString();
        // When the time budget (not the attempt cap) is what stopped the
        // retrying, report that: the caller should know the dependency
        // was still down after the whole wall-clock budget, and what the
        // last underlying error was.
        if (attempts < options_.retry.max_attempts &&
            options_.retry.DeadlineExhausted(elapsed)) {
          return Status::DeadlineExceeded(
              "retry deadline of " +
              std::to_string(options_.retry.max_elapsed_seconds) +
              "s exhausted after " + std::to_string(attempts) +
              " attempts; last error: " + r.status().ToString());
        }
      }
      return r.status();
    }
    if (!restarted && options_.restart &&
        attempts >= options_.restart_after_attempts) {
      AUSDB_RETURN_NOT_OK(options_.restart());
      restarted = true;
      ++counters_.restarts;
      if (m_restarts_) m_restarts_->Increment();
    }
    const double delay =
        options_.retry.BackoffFor(attempts - 1, jitter_rng_);
    elapsed += delay;
    counters_.backoff_seconds += delay;
    if (m_backoff_) m_backoff_->Record(delay);
    if (options_.sleep) options_.sleep(delay);
    ++counters_.retries;
    if (m_retries_) m_retries_->Increment();
  }
}

void SupervisedScan::Quarantine(engine::Tuple tuple, Status status) {
  ++counters_.quarantined;
  if (m_quarantined_) m_quarantined_->Increment();
  AUSDB_LOG(WARN) << "quarantined tuple seq=" << tuple.sequence() << ": "
                  << status.ToString();
  if (options_.quarantine_capacity == 0) return;
  if (quarantine_.size() >= options_.quarantine_capacity) {
    quarantine_.pop_front();
  }
  quarantine_.push_back({std::move(tuple), std::move(status)});
}

Result<std::optional<engine::Tuple>> SupervisedScan::Next() {
  AUSDB_RETURN_NOT_OK(watermark_status_);
  for (;;) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<engine::Tuple> t, PullWithRetry());
    if (!t.has_value()) return std::optional<engine::Tuple>(std::nullopt);
    ObserveWatermark(*t);

    const Status valid =
        options_.validator
            ? options_.validator(*t, child_->schema())
            : ValidateTupleDistributions(*t, child_->schema());
    if (valid.ok()) {
      ++counters_.emitted;
      if (m_emitted_) m_emitted_->Increment();
      return t;
    }
    if (options_.degradation) {
      std::optional<engine::Tuple> repaired =
          options_.degradation(*t, valid);
      if (repaired.has_value()) {
        ++counters_.degraded;
        if (m_degraded_) m_degraded_->Increment();
        AUSDB_LOG(WARN) << "degraded tuple seq=" << t->sequence() << ": "
                        << valid.ToString();
        repaired->set_sequence(t->sequence());
        return std::optional<engine::Tuple>(std::move(*repaired));
      }
    }
    Quarantine(std::move(*t), valid);
  }
}

Status SupervisedScan::Reset() {
  counters_ = SupervisionCounters{};
  quarantine_.clear();
  jitter_rng_.Seed(options_.jitter_seed);
  watermark_.Reset();
  return child_->Reset();
}

}  // namespace stream
}  // namespace ausdb
