#include "src/stream/drift_detector.h"

#include <utility>

#include "src/hypothesis/drift_test.h"
#include "src/obs/exposition.h"

namespace ausdb {
namespace stream {

DriftDetector::DriftDetector(DriftDetectorOptions options)
    : options_(std::move(options)) {
  if (options_.reference_size == 0) options_.reference_size = 1;
  if (options_.window_size == 0) options_.window_size = 1;
  if (options_.check_every == 0) options_.check_every = 1;
  if (options_.patience == 0) options_.patience = 1;
  if (options_.metrics != nullptr) {
    const obs::Labels labels = {{"detector", options_.metrics_label}};
    m_drifted_ = options_.metrics->GetGauge(
        "ausdb_stream_drift_latched", labels,
        "1 while the learned model is considered stale");
    m_statistic_micro_ = options_.metrics->GetGauge(
        "ausdb_stream_drift_ks_statistic_micro", labels,
        "Last KS statistic against the reference, in micro-units");
    m_p_value_micro_ = options_.metrics->GetGauge(
        "ausdb_stream_drift_p_value_micro", labels,
        "Last KS p-value against the reference, in micro-units");
    m_checks_ = options_.metrics->GetCounter(
        "ausdb_stream_drift_checks_total", labels,
        "KS drift checks run");
    m_drift_events_ = options_.metrics->GetCounter(
        "ausdb_stream_drift_events_total", labels,
        "Times the detector latched drift");
  }
}

void DriftDetector::UpdateMetrics() {
  if (m_drifted_ != nullptr) m_drifted_->Set(drifted_ ? 1 : 0);
  if (m_statistic_micro_ != nullptr && last_statistic_.has_value()) {
    m_statistic_micro_->Set(
        static_cast<int64_t>(*last_statistic_ * 1e6));
  }
  if (m_p_value_micro_ != nullptr && last_p_value_.has_value()) {
    m_p_value_micro_->Set(static_cast<int64_t>(*last_p_value_ * 1e6));
  }
}

Status DriftDetector::LearnReference(const std::vector<double>& sample) {
  AUSDB_ASSIGN_OR_RETURN(dist::LearnedDistribution learned,
                         dist::LearnHistogram(sample, options_.learn));
  reference_ = std::static_pointer_cast<const dist::HistogramDist>(
      learned.distribution);
  return Status::OK();
}

Status DriftDetector::Observe(double value) {
  ++observations_;
  if (reference_ == nullptr) {
    head_.push_back(value);
    if (head_.size() >= options_.reference_size) {
      AUSDB_RETURN_NOT_OK(LearnReference(head_));
      head_.clear();
      head_.shrink_to_fit();
    }
    return Status::OK();
  }

  window_.push_back(value);
  if (window_.size() > options_.window_size) window_.pop_front();
  if (window_.size() < options_.window_size) return Status::OK();
  if (++since_check_ < options_.check_every) return Status::OK();
  since_check_ = 0;

  std::vector<double> sample(window_.begin(), window_.end());
  AUSDB_ASSIGN_OR_RETURN(
      hypothesis::DriftTestResult result,
      hypothesis::KsDriftTest(sample, *reference_,
                              options_.significance));
  ++checks_run_;
  if (m_checks_ != nullptr) m_checks_->Increment();
  last_statistic_ = result.statistic;
  last_p_value_ = result.p_value;
  if (result.outcome == hypothesis::TestOutcome::kTrue) {
    ++consecutive_rejections_;
    if (!drifted_ && consecutive_rejections_ >= options_.patience) {
      drifted_ = true;
      ++drift_events_;
      if (m_drift_events_ != nullptr) m_drift_events_->Increment();
      if (options_.journal != nullptr) {
        // FormatMetricValue keeps the detail byte-stable across runs.
        options_.journal->Append(
            obs::EventType::kDriftQuarantine, observations_,
            "drift." + options_.metrics_label,
            "ks=" + obs::FormatMetricValue(result.statistic) +
                " p=" + obs::FormatMetricValue(result.p_value));
      }
    }
  } else {
    consecutive_rejections_ = 0;
  }
  UpdateMetrics();
  return Status::OK();
}

Status DriftDetector::Relearn() {
  if (window_.empty()) {
    return Status::InsufficientData(
        "cannot relearn a drift reference from an empty window");
  }
  std::vector<double> sample(window_.begin(), window_.end());
  AUSDB_RETURN_NOT_OK(LearnReference(sample));
  drifted_ = false;
  consecutive_rejections_ = 0;
  if (options_.journal != nullptr) {
    options_.journal->Append(
        obs::EventType::kDriftRelearn, observations_,
        "drift." + options_.metrics_label,
        "reference relearned from " + std::to_string(sample.size()) +
            " trailing observations");
  }
  UpdateMetrics();
  return Status::OK();
}

void DriftDetector::Reset() {
  head_.clear();
  window_.clear();
  reference_ = nullptr;
  observations_ = 0;
  since_check_ = 0;
  consecutive_rejections_ = 0;
  drifted_ = false;
  last_statistic_.reset();
  last_p_value_.reset();
  UpdateMetrics();
}

TupleValidator MakeDriftQuarantineValidator(
    std::shared_ptr<DriftDetector> detector, std::string column) {
  return [detector = std::move(detector), column = std::move(column)](
             const engine::Tuple& tuple,
             const engine::Schema& schema) -> Status {
    AUSDB_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(column));
    const expr::Value& v = tuple.value(idx);
    double observed = 0.0;
    if (v.is_random_var()) {
      AUSDB_ASSIGN_OR_RETURN(dist::RandomVar rv, v.random_var());
      observed = rv.Mean();
    } else {
      AUSDB_ASSIGN_OR_RETURN(observed, v.AsDouble());
    }
    AUSDB_RETURN_NOT_OK(detector->Observe(observed));
    if (detector->drifted()) {
      return Status::InsufficientData(
          "distribution drift detected on column '" + column +
          "': learned model is stale (KS p=" +
          std::to_string(detector->last_p_value().value_or(0.0)) + ")");
    }
    return Status::OK();
  };
}

}  // namespace stream
}  // namespace ausdb
