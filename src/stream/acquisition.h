#ifndef AUSDB_STREAM_ACQUISITION_H_
#define AUSDB_STREAM_ACQUISITION_H_

#include <cstddef>
#include <vector>

#include "src/accuracy/confidence_interval.h"
#include "src/common/result.h"

namespace ausdb {
namespace stream {

/// Options of the online acquisition controller.
struct AcquisitionOptions {
  /// Confidence level of the monitored interval.
  double confidence = 0.9;

  /// Stop when the mean interval is at most this long.
  double target_mean_interval_length = 1.0;

  /// Never decide before this many observations (the intervals are
  /// meaningless for tiny n).
  size_t min_observations = 5;

  /// Give up after this many observations even if the target was not
  /// reached. 0 = no cap: the controller never reports
  /// kBudgetExhausted, however long the stream runs. When
  /// 0 < max_observations < min_observations, min_observations wins:
  /// the controller always ingests at least min_observations values
  /// and reports exhaustion at the min_observations-th (the budget is
  /// effectively max(min_observations, max_observations)).
  size_t max_observations = 0;
};

/// Current state of an acquisition session.
enum class AcquisitionDecision {
  kNeedMore,        ///< interval still too wide; keep acquiring
  kTargetReached,   ///< interval narrow enough; stop acquiring
  kBudgetExhausted, ///< max_observations hit without reaching the target
};

/// \brief Online acquisition controller: the paper's "online computation"
/// use case (Section I) — stop acquiring raw samples, which is slow or
/// expensive, as soon as the accuracy intervals are narrow enough to
/// decide with enough confidence.
///
/// Feed observations one at a time with Observe(); it maintains the
/// Lemma 2 mean interval incrementally and reports whether more data is
/// needed.
class AcquisitionController {
 public:
  explicit AcquisitionController(AcquisitionOptions options = {});

  /// Ingests one observation and returns the updated decision.
  AcquisitionDecision Observe(double value);

  AcquisitionDecision decision() const { return decision_; }
  size_t observation_count() const { return values_.size(); }

  /// The current Lemma 2 mean interval; InsufficientData before
  /// min_observations.
  Result<accuracy::ConfidenceInterval> CurrentMeanInterval() const;

  const std::vector<double>& observations() const { return values_; }

 private:
  AcquisitionOptions options_;
  std::vector<double> values_;
  AcquisitionDecision decision_ = AcquisitionDecision::kNeedMore;
};

}  // namespace stream
}  // namespace ausdb

#endif  // AUSDB_STREAM_ACQUISITION_H_
