#include "src/stream/sources.h"

#include <vector>

#include "src/common/logging.h"
#include "src/dist/learner.h"
#include "src/stats/random_variates.h"

namespace ausdb {
namespace stream {

engine::OperatorPtr MakeLearnedGaussianSource(std::string column_name,
                                              size_t count,
                                              size_t points_per_item,
                                              double mu, double sigma,
                                              uint64_t seed) {
  engine::Schema schema;
  AUSDB_CHECK_OK(
      schema.AddField({std::move(column_name), engine::FieldType::kUncertain}));

  auto rng = std::make_shared<Rng>(seed);
  auto produced = std::make_shared<size_t>(0);
  auto buffer = std::make_shared<std::vector<double>>();

  engine::TupleGenerator gen =
      [rng, produced, buffer, count,
       points_per_item, mu, sigma]() -> Result<std::optional<engine::Tuple>> {
    if (count != 0 && *produced >= count) {
      return std::optional<engine::Tuple>(std::nullopt);
    }
    ++*produced;
    buffer->clear();
    for (size_t i = 0; i < points_per_item; ++i) {
      buffer->push_back(stats::SampleNormal(*rng, mu, sigma));
    }
    AUSDB_ASSIGN_OR_RETURN(dist::LearnedDistribution learned,
                           dist::LearnGaussian(*buffer));
    engine::Tuple t({expr::Value(dist::RandomVar(learned))});
    return std::optional<engine::Tuple>(std::move(t));
  };
  return std::make_unique<engine::StreamScan>(std::move(schema),
                                              std::move(gen));
}

engine::OperatorPtr MakeCallbackSource(engine::Schema schema,
                                       engine::TupleGenerator generator) {
  return std::make_unique<engine::StreamScan>(std::move(schema),
                                              std::move(generator));
}

}  // namespace stream
}  // namespace ausdb
