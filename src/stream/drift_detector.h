#ifndef AUSDB_STREAM_DRIFT_DETECTOR_H_
#define AUSDB_STREAM_DRIFT_DETECTOR_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/dist/histogram.h"
#include "src/dist/learner.h"
#include "src/obs/event_journal.h"
#include "src/obs/metrics.h"
#include "src/stream/supervised_source.h"

namespace ausdb {
namespace stream {

/// Options of a DriftDetector.
struct DriftDetectorOptions {
  /// Observations used to learn the reference histogram; the detector
  /// reports kUnsure (and never drift) until the reference exists.
  size_t reference_size = 256;

  /// Trailing window tested against the reference.
  size_t window_size = 128;

  /// Run the KS check every this many observations (after the window
  /// has filled); checking on every tuple would multiply-count the same
  /// evidence.
  size_t check_every = 32;

  /// H0-rejection significance of one KS check.
  double significance = 0.01;

  /// Consecutive rejecting checks required before the detector declares
  /// drift — one unlucky window at significance 0.01 is expected every
  /// 100 checks; `patience` of them back to back is not.
  size_t patience = 2;

  /// How the reference histogram is learned.
  dist::HistogramLearnOptions learn;

  /// When non-null, detector state is mirrored into
  /// `ausdb_stream_drift_*` metrics labeled `{detector=metrics_label}`.
  /// Write-only (obs contract): detection decisions never read metrics.
  obs::MetricRegistry* metrics = nullptr;
  std::string metrics_label = "drift";

  /// When non-null, the drift latch (kDriftQuarantine) and Relearn()
  /// (kDriftRelearn) are journaled with the observation count as
  /// logical time. Write-only per the obs contract.
  obs::EventJournal* journal = nullptr;
};

/// \brief Windowed distribution-drift detector over one numeric stream
/// column: learns a reference histogram from the stream's head, then
/// repeatedly KS-tests the trailing window against it (via
/// hypothesis::KsDriftTest) and latches `drifted()` after `patience`
/// consecutive rejections.
///
/// Deterministic: decisions are a pure function of the observed value
/// sequence. The detector is passive — it never blocks a tuple itself;
/// MakeDriftQuarantineValidator() turns its latched state into a
/// SupervisedScan validator so the existing degradation/quarantine path
/// diverts tuples while the learned model is stale.
class DriftDetector {
 public:
  explicit DriftDetector(DriftDetectorOptions options = {});

  /// Feeds one observation; runs a KS check when one is due. Returns a
  /// non-OK status only on internal failure (degenerate reference
  /// sample), which callers may treat as "cannot monitor".
  Status Observe(double value);

  /// True while the model is considered stale (latched after `patience`
  /// consecutive rejections; cleared by Relearn() or Reset()).
  bool drifted() const { return drifted_; }

  /// Most recent KS statistic / p-value; nullopt before the first
  /// check.
  std::optional<double> last_statistic() const { return last_statistic_; }
  std::optional<double> last_p_value() const { return last_p_value_; }

  /// The learned reference, once `reference_size` observations arrived.
  const std::shared_ptr<const dist::HistogramDist>& reference() const {
    return reference_;
  }

  size_t observations() const { return observations_; }
  size_t checks_run() const { return checks_run_; }
  size_t drift_events() const { return drift_events_; }

  /// Discards the stale reference and relearns it from the current
  /// trailing window — the "quarantine the stale model, adopt the new
  /// regime" recovery action. Clears the drift latch.
  Status Relearn();

  /// Forgets everything (stream Reset).
  void Reset();

 private:
  Status LearnReference(const std::vector<double>& sample);
  void UpdateMetrics();

  DriftDetectorOptions options_;
  std::vector<double> head_;
  std::deque<double> window_;
  std::shared_ptr<const dist::HistogramDist> reference_;
  size_t observations_ = 0;
  size_t since_check_ = 0;
  size_t consecutive_rejections_ = 0;
  size_t checks_run_ = 0;
  size_t drift_events_ = 0;
  bool drifted_ = false;
  std::optional<double> last_statistic_;
  std::optional<double> last_p_value_;

  /// Registry-owned metrics; null when options_.metrics is null.
  obs::Gauge* m_drifted_ = nullptr;
  obs::Gauge* m_statistic_micro_ = nullptr;
  obs::Gauge* m_p_value_micro_ = nullptr;
  obs::Counter* m_checks_ = nullptr;
  obs::Counter* m_drift_events_ = nullptr;
};

/// \brief Bridges drift detection into the SupervisedScan degradation
/// path: the returned validator feeds `column` of every tuple to the
/// detector and rejects tuples (kInsufficientData — accuracy cannot be
/// derived from a stale model) while `detector->drifted()` holds, so
/// the scan degrades or quarantines them instead of the stale model
/// silently poisoning downstream confidence intervals.
///
/// Uncertain fields contribute their mean; deterministic doubles
/// contribute themselves. Non-numeric columns fail validation outright.
TupleValidator MakeDriftQuarantineValidator(
    std::shared_ptr<DriftDetector> detector, std::string column);

}  // namespace stream
}  // namespace ausdb

#endif  // AUSDB_STREAM_DRIFT_DETECTOR_H_
