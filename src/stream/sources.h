#ifndef AUSDB_STREAM_SOURCES_H_
#define AUSDB_STREAM_SOURCES_H_

#include <functional>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/engine/scan.h"

namespace ausdb {
namespace stream {

/// \brief Builds the Section V-C synthetic stream: each tuple carries one
/// uncertain field whose Gaussian distribution was learned from
/// `points_per_item` raw data points drawn from N(mu, sigma^2).
///
/// `count` tuples are produced (0 = unbounded). This is the input of the
/// throughput experiments (Figures 5(c) and 5(f)).
engine::OperatorPtr MakeLearnedGaussianSource(std::string column_name,
                                              size_t count,
                                              size_t points_per_item,
                                              double mu, double sigma,
                                              uint64_t seed);

/// \brief Generic generator-backed stream with a single uncertain column:
/// `make_tuple` is invoked per tuple until it returns nullopt.
engine::OperatorPtr MakeCallbackSource(engine::Schema schema,
                                       engine::TupleGenerator generator);

}  // namespace stream
}  // namespace ausdb

#endif  // AUSDB_STREAM_SOURCES_H_
