#include "src/stream/async_prefetch_source.h"

#include <utility>

namespace ausdb {
namespace stream {
namespace internal {

PrefetchPump::PrefetchPump(engine::Operator* source,
                           const AsyncPrefetchOptions& options)
    : source_(source),
      queue_depth_(options.queue_depth == 0 ? 1 : options.queue_depth) {
  if (options.metrics != nullptr) {
    obs::MetricRegistry* reg = options.metrics;
    const std::vector<obs::Label> labels = {
        {"queue", options.metrics_label}};
    m_depth_ = reg->GetGauge("ausdb_stream_prefetch_queue_depth", labels,
                             "Outcomes resident in the prefetch ring.");
    m_push_waits_ = reg->GetCounter(
        "ausdb_stream_prefetch_push_waits_total", labels,
        "Producer blocked on a full ring (backpressure).");
    m_pop_waits_ =
        reg->GetCounter("ausdb_stream_prefetch_pop_waits_total", labels,
                        "Consumer blocked on an empty ring.");
    m_try_rejections_ = reg->GetCounter(
        "ausdb_stream_prefetch_try_rejections_total", labels,
        "Non-blocking TryPush refused on a full ring (shed signal).");
    m_produced_ =
        reg->GetCounter("ausdb_stream_prefetch_produced_total", labels,
                        "Tuples pulled from the wrapped source.");
    m_delivered_ =
        reg->GetCounter("ausdb_stream_prefetch_delivered_total", labels,
                        "Tuples handed to the consumer.");
    m_starts_ =
        reg->GetCounter("ausdb_stream_prefetch_starts_total", labels,
                        "Producer thread launches.");
  }
}

PrefetchPump::~PrefetchPump() { Stop(); }

void PrefetchPump::EnsureStarted() {
  if (started_) return;
  queue_ = std::make_unique<BoundedQueue<Outcome>>(queue_depth_);
  queue_->BindMetrics(m_depth_, m_push_waits_, m_pop_waits_,
                      m_try_rejections_);
  ++starts_;
  if (m_starts_) m_starts_->Increment();
  // The raw queue pointer is stable for the thread's whole lifetime:
  // queue_ is only replaced after the producer has been joined.
  producer_ = std::thread(&PrefetchPump::PumpLoop, this, queue_.get());
  started_ = true;
}

void PrefetchPump::PumpLoop(BoundedQueue<Outcome>* queue) {
  for (;;) {
    Outcome outcome = source_->Next();
    const bool is_end = outcome.ok() && !outcome->has_value();
    if (outcome.ok() && outcome->has_value()) {
      produced_.fetch_add(1, std::memory_order_relaxed);
      if (m_produced_) m_produced_->Increment();
    }
    if (!queue->Push(std::move(outcome)).ok()) return;  // cancelled
    if (is_end) {
      queue->Close();
      return;
    }
    // After an error the loop keeps pulling, exactly like a retrying
    // synchronous consumer: deterministic sources produce outcomes by
    // call count, so queued outcome k is what synchronous pull k would
    // have returned. A fatal error the consumer gives up on just leaves
    // a bounded residue in the ring (Push blocks, Stop() unblocks it).
  }
}

PrefetchPump::Outcome PrefetchPump::Next() {
  if (exhausted_) return std::optional<engine::Tuple>(std::nullopt);
  EnsureStarted();
  Outcome outcome = Status::Cancelled("unfilled prefetch slot");
  AUSDB_RETURN_NOT_OK(queue_->Pop(&outcome));
  if (outcome.ok()) {
    if (outcome->has_value()) {
      ++delivered_;
      if (m_delivered_) m_delivered_->Increment();
    } else {
      // The producer pushed end-of-stream and exited; joining here (a
      // finished thread, no wait) keeps the end-of-stream state fully
      // consumer-owned.
      exhausted_ = true;
      if (producer_.joinable()) producer_.join();
    }
  }
  return outcome;
}

void PrefetchPump::Stop() {
  if (queue_) queue_->Cancel();
  if (producer_.joinable()) producer_.join();
  if (queue_) {
    retired_push_waits_ += queue_->push_waits();
    retired_pop_waits_ += queue_->pop_waits();
    queue_.reset();
    // The ring is gone; any buffered residue was discarded with it.
    if (m_depth_) m_depth_->Set(0);
  }
  started_ = false;
  exhausted_ = false;
}

PrefetchStats PrefetchPump::stats() const {
  PrefetchStats s;
  s.produced = produced_.load(std::memory_order_relaxed);
  s.delivered = delivered_;
  s.push_waits = retired_push_waits_;
  s.pop_waits = retired_pop_waits_;
  if (queue_) {
    s.push_waits += queue_->push_waits();
    s.pop_waits += queue_->pop_waits();
  }
  s.starts = starts_;
  return s;
}

}  // namespace internal

// ---------------------------------------------------------------------
// AsyncPrefetchSource

AsyncPrefetchSource::AsyncPrefetchSource(engine::OperatorPtr child,
                                         AsyncPrefetchOptions options)
    : child_(std::move(child)), pump_(child_.get(), options) {
  watermark_.Configure(options, child_->schema());
}

AsyncPrefetchSource::~AsyncPrefetchSource() { (void)Close(); }

Result<std::optional<engine::Tuple>> AsyncPrefetchSource::Next() {
  if (closed_) {
    return Status::Cancelled("AsyncPrefetchSource: Next after Close");
  }
  AUSDB_RETURN_NOT_OK(watermark_.status);
  AUSDB_ASSIGN_OR_RETURN(std::optional<engine::Tuple> t, pump_.Next());
  if (t.has_value()) watermark_.Observe(*t);
  return std::optional<engine::Tuple>(std::move(t));
}

Status AsyncPrefetchSource::Reset() {
  if (closed_) {
    return Status::Cancelled("AsyncPrefetchSource: Reset after Close");
  }
  pump_.Stop();
  watermark_.policy.Reset();
  return child_->Reset();
}

Status AsyncPrefetchSource::Close() {
  if (closed_) return Status::OK();
  pump_.Stop();
  closed_ = true;
  return child_->Close();
}

void AsyncPrefetchSource::BindThreadPool(ThreadPool* pool) {
  pump_.Stop();
  child_->BindThreadPool(pool);
}

// ---------------------------------------------------------------------
// AsyncPrefetchReplayableSource

AsyncPrefetchReplayableSource::AsyncPrefetchReplayableSource(
    std::unique_ptr<engine::ReplayableSource> child,
    AsyncPrefetchOptions options)
    : child_(std::move(child)), pump_(child_.get(), options) {
  watermark_.Configure(options, child_->schema());
}

AsyncPrefetchReplayableSource::~AsyncPrefetchReplayableSource() {
  (void)Close();
}

Result<std::optional<engine::Tuple>>
AsyncPrefetchReplayableSource::Next() {
  if (closed_) {
    return Status::Cancelled(
        "AsyncPrefetchReplayableSource: Next after Close");
  }
  AUSDB_RETURN_NOT_OK(watermark_.status);
  AUSDB_ASSIGN_OR_RETURN(std::optional<engine::Tuple> t, pump_.Next());
  if (t.has_value()) {
    ++delivered_;
    watermark_.Observe(*t);
  }
  return std::optional<engine::Tuple>(std::move(t));
}

Status AsyncPrefetchReplayableSource::Reset() {
  if (closed_) {
    return Status::Cancelled(
        "AsyncPrefetchReplayableSource: Reset after Close");
  }
  pump_.Stop();
  AUSDB_RETURN_NOT_OK(child_->Reset());
  delivered_ = 0;
  watermark_.policy.Reset();
  return Status::OK();
}

Status AsyncPrefetchReplayableSource::Close() {
  if (closed_) return Status::OK();
  pump_.Stop();
  closed_ = true;
  return child_->Close();
}

void AsyncPrefetchReplayableSource::BindThreadPool(ThreadPool* pool) {
  pump_.Stop();
  child_->BindThreadPool(pool);
}

Status AsyncPrefetchReplayableSource::SeekTo(uint64_t position) {
  if (closed_) {
    return Status::Cancelled(
        "AsyncPrefetchReplayableSource: SeekTo after Close");
  }
  // Stop discards the ring's undelivered residue; the re-seek of the
  // wrapped source re-produces it, so nothing is lost or duplicated.
  pump_.Stop();
  AUSDB_RETURN_NOT_OK(child_->SeekTo(position));
  delivered_ = position;
  // The replay will re-advance the watermark deterministically.
  watermark_.policy.Reset();
  return Status::OK();
}

engine::OperatorPtr MakeAsyncPrefetch(engine::OperatorPtr child,
                                      AsyncPrefetchOptions options) {
  return std::make_unique<AsyncPrefetchSource>(std::move(child), options);
}

}  // namespace stream
}  // namespace ausdb
