#ifndef AUSDB_STREAM_REPLAYABLE_SOURCE_H_
#define AUSDB_STREAM_REPLAYABLE_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/replayable.h"

namespace ausdb {
namespace stream {

/// Options of ReplayableKeyedGaussianSource.
struct KeyedGaussianSourceOptions {
  /// Partition keys cycled round-robin; must be non-empty.
  std::vector<std::string> keys = {"k0", "k1", "k2", "k3"};

  /// Tuples produced in total. Must be > 0 (recovery needs a bounded
  /// golden run to compare against).
  size_t count = 1000;

  /// Raw data points drawn per tuple to learn its Gaussian from.
  size_t points_per_item = 4;

  /// Mean of key i is `mu + i * mu_step`; sigma is shared.
  double mu = 100.0;
  double mu_step = 10.0;
  double sigma = 5.0;

  uint64_t seed = 42;
};

/// \brief Replayable synthetic stream (key:string, value:uncertain):
/// the Section V-C learned-Gaussian stream, keyed for partitioned
/// windows and seekable for crash recovery.
///
/// All randomness comes from one seeded Rng consumed on a fixed
/// schedule (points_per_item normal draws per tuple), so SeekTo(p) can
/// reproduce the exact stream by re-seeding and re-drawing the first p
/// tuples' variates. The draws are replayed through the same sampling
/// path rather than skipped arithmetically: the polar-method Gaussian
/// sampler caches a second variate inside the Rng, so only an identical
/// call sequence reaches an identical state.
class ReplayableKeyedGaussianSource final : public engine::ReplayableSource {
 public:
  static Result<std::unique_ptr<ReplayableKeyedGaussianSource>> Make(
      KeyedGaussianSourceOptions options = {});

  const engine::Schema& schema() const override { return schema_; }
  Result<std::optional<engine::Tuple>> Next() override;
  Status Reset() override;

  uint64_t position() const override { return produced_; }
  Status SeekTo(uint64_t position) override;

 private:
  explicit ReplayableKeyedGaussianSource(KeyedGaussianSourceOptions options);

  engine::Schema schema_;
  KeyedGaussianSourceOptions options_;
  Rng rng_;
  uint64_t produced_ = 0;
  std::vector<double> buffer_;
};

/// Options of ReplayableEventTimeSource.
struct EventTimeSourceOptions {
  /// Tuples produced in total; must be > 0.
  size_t count = 1000;

  /// Event time of tuple i (in original order) is
  /// `start_time + i * time_step`; time_step must be finite and > 0.
  double start_time = 0.0;
  double time_step = 1.0;

  /// Bounded disorder baked into the delivery order: the event-ordered
  /// stream is cut into blocks of `max_displacement + 1` tuples and each
  /// block is shuffled with the seeded Rng, so no tuple is displaced by
  /// more than max_displacement positions. 0 = delivered in event order.
  size_t max_displacement = 0;

  /// Raw data points drawn per tuple to learn its Gaussian from (>= 2).
  size_t points_per_item = 4;
  double mu = 100.0;
  double sigma = 5.0;

  uint64_t seed = 42;
};

/// \brief Replayable timestamped stream (ts:double, value:uncertain)
/// with deterministic bounded disorder, for event-time tests and the
/// reorder-buffer crash sweep.
///
/// The whole stream — values AND delivery order — is materialized at
/// Make() from the seed, so position() is the delivery index and SeekTo
/// is O(1). Each tuple's sequence() is its ORIGINAL event-order index
/// (timestamps are monotone in sequence, not in delivery order), which
/// is what the ReorderBuffer keys dedupe and release ordering on.
class ReplayableEventTimeSource final : public engine::ReplayableSource {
 public:
  static Result<std::unique_ptr<ReplayableEventTimeSource>> Make(
      EventTimeSourceOptions options = {});

  const engine::Schema& schema() const override { return schema_; }
  Result<std::optional<engine::Tuple>> Next() override;
  Status Reset() override;

  uint64_t position() const override { return pos_; }
  Status SeekTo(uint64_t position) override;

 private:
  ReplayableEventTimeSource(engine::Schema schema,
                            std::vector<engine::Tuple> tuples);

  engine::Schema schema_;
  std::vector<engine::Tuple> tuples_;
  uint64_t pos_ = 0;
};

/// \brief Replayable scan over a CSV file: each schema field (kString or
/// kDouble) names a CSV column. The table is parsed strictly up front,
/// so position() is simply the row index and SeekTo is O(1).
class CsvReplayableSource final : public engine::ReplayableSource {
 public:
  /// `schema` fields must name columns of the file's header and be
  /// kString or kDouble.
  static Result<std::unique_ptr<CsvReplayableSource>> Make(
      const std::string& path, engine::Schema schema);

  const engine::Schema& schema() const override { return schema_; }
  Result<std::optional<engine::Tuple>> Next() override;
  Status Reset() override;

  uint64_t position() const override { return pos_; }
  Status SeekTo(uint64_t position) override;

  /// Rows in the file (the stream's length).
  uint64_t row_count() const { return rows_.size(); }

 private:
  CsvReplayableSource(engine::Schema schema,
                      std::vector<engine::Tuple> rows);

  engine::Schema schema_;
  std::vector<engine::Tuple> rows_;
  uint64_t pos_ = 0;
};

}  // namespace stream
}  // namespace ausdb

#endif  // AUSDB_STREAM_REPLAYABLE_SOURCE_H_
