#ifndef AUSDB_STREAM_REPLAYABLE_SOURCE_H_
#define AUSDB_STREAM_REPLAYABLE_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/replayable.h"

namespace ausdb {
namespace stream {

/// Options of ReplayableKeyedGaussianSource.
struct KeyedGaussianSourceOptions {
  /// Partition keys cycled round-robin; must be non-empty.
  std::vector<std::string> keys = {"k0", "k1", "k2", "k3"};

  /// Tuples produced in total. Must be > 0 (recovery needs a bounded
  /// golden run to compare against).
  size_t count = 1000;

  /// Raw data points drawn per tuple to learn its Gaussian from.
  size_t points_per_item = 4;

  /// Mean of key i is `mu + i * mu_step`; sigma is shared.
  double mu = 100.0;
  double mu_step = 10.0;
  double sigma = 5.0;

  uint64_t seed = 42;
};

/// \brief Replayable synthetic stream (key:string, value:uncertain):
/// the Section V-C learned-Gaussian stream, keyed for partitioned
/// windows and seekable for crash recovery.
///
/// All randomness comes from one seeded Rng consumed on a fixed
/// schedule (points_per_item normal draws per tuple), so SeekTo(p) can
/// reproduce the exact stream by re-seeding and re-drawing the first p
/// tuples' variates. The draws are replayed through the same sampling
/// path rather than skipped arithmetically: the polar-method Gaussian
/// sampler caches a second variate inside the Rng, so only an identical
/// call sequence reaches an identical state.
class ReplayableKeyedGaussianSource final : public engine::ReplayableSource {
 public:
  static Result<std::unique_ptr<ReplayableKeyedGaussianSource>> Make(
      KeyedGaussianSourceOptions options = {});

  const engine::Schema& schema() const override { return schema_; }
  Result<std::optional<engine::Tuple>> Next() override;
  Status Reset() override;

  uint64_t position() const override { return produced_; }
  Status SeekTo(uint64_t position) override;

 private:
  explicit ReplayableKeyedGaussianSource(KeyedGaussianSourceOptions options);

  engine::Schema schema_;
  KeyedGaussianSourceOptions options_;
  Rng rng_;
  uint64_t produced_ = 0;
  std::vector<double> buffer_;
};

/// \brief Replayable scan over a CSV file: each schema field (kString or
/// kDouble) names a CSV column. The table is parsed strictly up front,
/// so position() is simply the row index and SeekTo is O(1).
class CsvReplayableSource final : public engine::ReplayableSource {
 public:
  /// `schema` fields must name columns of the file's header and be
  /// kString or kDouble.
  static Result<std::unique_ptr<CsvReplayableSource>> Make(
      const std::string& path, engine::Schema schema);

  const engine::Schema& schema() const override { return schema_; }
  Result<std::optional<engine::Tuple>> Next() override;
  Status Reset() override;

  uint64_t position() const override { return pos_; }
  Status SeekTo(uint64_t position) override;

  /// Rows in the file (the stream's length).
  uint64_t row_count() const { return rows_.size(); }

 private:
  CsvReplayableSource(engine::Schema schema,
                      std::vector<engine::Tuple> rows);

  engine::Schema schema_;
  std::vector<engine::Tuple> rows_;
  uint64_t pos_ = 0;
};

}  // namespace stream
}  // namespace ausdb

#endif  // AUSDB_STREAM_REPLAYABLE_SOURCE_H_
