#include "src/stream/replayable_source.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "src/common/logging.h"
#include "src/dist/learner.h"
#include "src/io/csv.h"
#include "src/stats/random_variates.h"

namespace ausdb {
namespace stream {

Result<std::unique_ptr<ReplayableKeyedGaussianSource>>
ReplayableKeyedGaussianSource::Make(KeyedGaussianSourceOptions options) {
  if (options.keys.empty()) {
    return Status::InvalidArgument("keyed source needs at least one key");
  }
  if (options.count == 0) {
    return Status::InvalidArgument("keyed source count must be >= 1");
  }
  if (options.points_per_item < 2) {
    return Status::InvalidArgument(
        "learning a Gaussian needs >= 2 points per tuple");
  }
  return std::unique_ptr<ReplayableKeyedGaussianSource>(
      new ReplayableKeyedGaussianSource(std::move(options)));
}

ReplayableKeyedGaussianSource::ReplayableKeyedGaussianSource(
    KeyedGaussianSourceOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  AUSDB_CHECK_OK(schema_.AddField({"key", engine::FieldType::kString}));
  AUSDB_CHECK_OK(
      schema_.AddField({"value", engine::FieldType::kUncertain}));
}

Result<std::optional<engine::Tuple>> ReplayableKeyedGaussianSource::Next() {
  if (produced_ >= options_.count) {
    return std::optional<engine::Tuple>(std::nullopt);
  }
  const size_t key_index = produced_ % options_.keys.size();
  const double mu =
      options_.mu + static_cast<double>(key_index) * options_.mu_step;
  buffer_.clear();
  for (size_t i = 0; i < options_.points_per_item; ++i) {
    buffer_.push_back(stats::SampleNormal(rng_, mu, options_.sigma));
  }
  AUSDB_ASSIGN_OR_RETURN(dist::LearnedDistribution learned,
                         dist::LearnGaussian(buffer_));
  engine::Tuple t({expr::Value(options_.keys[key_index]),
                   expr::Value(dist::RandomVar(learned))});
  t.set_sequence(produced_);
  ++produced_;
  return std::optional<engine::Tuple>(std::move(t));
}

Status ReplayableKeyedGaussianSource::Reset() { return SeekTo(0); }

Status ReplayableKeyedGaussianSource::SeekTo(uint64_t position) {
  if (position > options_.count) {
    return Status::InvalidArgument(
        "cannot seek to " + std::to_string(position) + ": stream has " +
        std::to_string(options_.count) + " tuples");
  }
  // Replay, don't skip: re-seed and burn the exact draws the first
  // `position` tuples consumed, through the same sampling call sequence
  // (SampleNormal uses the polar method, which caches a second variate
  // inside the Rng — state only an identical call sequence reproduces).
  rng_.Seed(options_.seed);
  for (uint64_t i = 0; i < position; ++i) {
    for (size_t j = 0; j < options_.points_per_item; ++j) {
      (void)stats::SampleNormal(rng_, 0.0, 1.0);
    }
  }
  produced_ = position;
  return Status::OK();
}

Result<std::unique_ptr<ReplayableEventTimeSource>>
ReplayableEventTimeSource::Make(EventTimeSourceOptions options) {
  if (options.count == 0) {
    return Status::InvalidArgument("event-time source count must be >= 1");
  }
  if (!std::isfinite(options.time_step) || options.time_step <= 0.0) {
    return Status::InvalidArgument(
        "event-time source time_step must be finite and > 0");
  }
  if (!std::isfinite(options.start_time)) {
    return Status::InvalidArgument(
        "event-time source start_time must be finite");
  }
  if (options.points_per_item < 2) {
    return Status::InvalidArgument(
        "learning a Gaussian needs >= 2 points per tuple");
  }
  engine::Schema schema;
  AUSDB_RETURN_NOT_OK(schema.AddField({"ts", engine::FieldType::kDouble}));
  AUSDB_RETURN_NOT_OK(
      schema.AddField({"value", engine::FieldType::kUncertain}));

  Rng rng(options.seed);
  std::vector<engine::Tuple> tuples;
  tuples.reserve(options.count);
  std::vector<double> points;
  for (size_t i = 0; i < options.count; ++i) {
    const double ts =
        options.start_time + static_cast<double>(i) * options.time_step;
    points.clear();
    for (size_t j = 0; j < options.points_per_item; ++j) {
      points.push_back(stats::SampleNormal(rng, options.mu, options.sigma));
    }
    AUSDB_ASSIGN_OR_RETURN(dist::LearnedDistribution learned,
                           dist::LearnGaussian(points));
    engine::Tuple t({expr::Value(ts), expr::Value(dist::RandomVar(learned))});
    t.set_sequence(i);
    tuples.push_back(std::move(t));
  }

  // Bake in bounded disorder: shuffle within disjoint blocks of
  // max_displacement + 1, so |delivery index - event index| never
  // exceeds max_displacement. Deterministic — the same seed always
  // yields the same delivery order.
  if (options.max_displacement > 0) {
    const size_t block = options.max_displacement + 1;
    for (size_t begin = 0; begin < tuples.size(); begin += block) {
      const size_t end = std::min(begin + block, tuples.size());
      for (size_t i = end - 1; i > begin; --i) {
        const size_t j = begin + rng.NextBelow(i - begin + 1);
        std::swap(tuples[i], tuples[j]);
      }
    }
  }
  return std::unique_ptr<ReplayableEventTimeSource>(
      new ReplayableEventTimeSource(std::move(schema), std::move(tuples)));
}

ReplayableEventTimeSource::ReplayableEventTimeSource(
    engine::Schema schema, std::vector<engine::Tuple> tuples)
    : schema_(std::move(schema)), tuples_(std::move(tuples)) {}

Result<std::optional<engine::Tuple>> ReplayableEventTimeSource::Next() {
  if (pos_ >= tuples_.size()) {
    return std::optional<engine::Tuple>(std::nullopt);
  }
  return std::optional<engine::Tuple>(tuples_[pos_++]);
}

Status ReplayableEventTimeSource::Reset() { return SeekTo(0); }

Status ReplayableEventTimeSource::SeekTo(uint64_t position) {
  if (position > tuples_.size()) {
    return Status::InvalidArgument(
        "cannot seek to " + std::to_string(position) + ": stream has " +
        std::to_string(tuples_.size()) + " tuples");
  }
  pos_ = position;
  return Status::OK();
}

Result<std::unique_ptr<CsvReplayableSource>> CsvReplayableSource::Make(
    const std::string& path, engine::Schema schema) {
  AUSDB_ASSIGN_OR_RETURN(io::CsvTable table, io::ReadCsvFile(path));
  std::vector<size_t> column_of_field;
  for (size_t f = 0; f < schema.num_fields(); ++f) {
    const engine::Field& field = schema.field(f);
    if (field.type != engine::FieldType::kString &&
        field.type != engine::FieldType::kDouble) {
      return Status::TypeError("CSV field '" + field.name +
                               "' must be string or double");
    }
    AUSDB_ASSIGN_OR_RETURN(size_t col, table.ColumnIndex(field.name));
    column_of_field.push_back(col);
  }
  std::vector<engine::Tuple> rows;
  rows.reserve(table.rows.size());
  for (size_t r = 0; r < table.rows.size(); ++r) {
    std::vector<expr::Value> values;
    values.reserve(schema.num_fields());
    for (size_t f = 0; f < schema.num_fields(); ++f) {
      const std::string& cell = table.rows[r][column_of_field[f]];
      if (schema.field(f).type == engine::FieldType::kString) {
        values.emplace_back(cell);
      } else {
        char* end = nullptr;
        const double d = std::strtod(cell.c_str(), &end);
        if (end == cell.c_str() || *end != '\0') {
          return Status::ParseError("row " + std::to_string(r + 1) +
                                    ", column '" + schema.field(f).name +
                                    "': '" + cell + "' is not a number");
        }
        values.emplace_back(d);
      }
    }
    engine::Tuple t(std::move(values));
    t.set_sequence(r);
    rows.push_back(std::move(t));
  }
  return std::unique_ptr<CsvReplayableSource>(
      new CsvReplayableSource(std::move(schema), std::move(rows)));
}

CsvReplayableSource::CsvReplayableSource(engine::Schema schema,
                                         std::vector<engine::Tuple> rows)
    : schema_(std::move(schema)), rows_(std::move(rows)) {}

Result<std::optional<engine::Tuple>> CsvReplayableSource::Next() {
  if (pos_ >= rows_.size()) {
    return std::optional<engine::Tuple>(std::nullopt);
  }
  return std::optional<engine::Tuple>(rows_[pos_++]);
}

Status CsvReplayableSource::Reset() { return SeekTo(0); }

Status CsvReplayableSource::SeekTo(uint64_t position) {
  if (position > rows_.size()) {
    return Status::InvalidArgument(
        "cannot seek to " + std::to_string(position) + ": file has " +
        std::to_string(rows_.size()) + " rows");
  }
  pos_ = position;
  return Status::OK();
}

}  // namespace stream
}  // namespace ausdb
