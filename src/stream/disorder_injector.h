#ifndef AUSDB_STREAM_DISORDER_INJECTOR_H_
#define AUSDB_STREAM_DISORDER_INJECTOR_H_

#include <deque>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/operator.h"

namespace ausdb {
namespace stream {

/// What a DisorderInjector does to the stream, in the style of
/// FaultSpec: every distortion is drawn from a seeded Rng, so a given
/// (spec, input) pair always produces the same disordered sequence —
/// the equivalence harness depends on replaying the exact same
/// disorder against different pipeline configurations.
struct DisorderSpec {
  /// Count-bounded shuffle: selected tuples enter a holding pool and
  /// leave in seeded-random order, displaced by at most this many input
  /// positions (the oldest pool entry is force-emitted once its age
  /// reaches the bound). With monotone input timestamps of step <= s,
  /// event-time displacement is bounded by max_displacement * s — the
  /// quantity a ReorderBuffer lateness bound must cover. 0 disables
  /// shuffling.
  size_t max_displacement = 0;

  /// Fraction of tuples entering the shuffle pool; the rest pass
  /// through immediately (they may still overtake pooled tuples).
  /// Drives the bench's disorder-fraction axis.
  double shuffle_probability = 1.0;

  /// Probability that an emitted tuple is re-emitted once more on the
  /// next pull, sequence number and all — the at-least-once upstream a
  /// dedupe stage must absorb.
  double duplicate_probability = 0.0;

  /// Every k-th input tuple (k = late_every_k, 0 disables) is held back
  /// and re-injected only after `late_delay` further inputs — far
  /// enough to land beyond any reorder horizon smaller than the
  /// resulting displacement, exercising the windows' allowed-lateness
  /// revision path.
  size_t late_every_k = 0;
  size_t late_delay = 0;

  uint64_t seed = 0x5eedULL;
};

/// Observability counters of a DisorderInjector.
struct DisorderStats {
  size_t pulled = 0;        ///< tuples pulled from the child
  size_t shuffled = 0;      ///< tuples routed through the pool
  size_t duplicated = 0;    ///< extra copies emitted
  size_t late_injected = 0; ///< held-back tuples re-injected late
};

/// \brief Deterministic disorder harness: wraps any operator and
/// re-delivers its stream shuffled-within-bound, with duplicates,
/// and/or with individual tuples held back beyond the reorder horizon.
///
/// Purely a test/bench instrument (the FaultInjector of event time):
/// it never alters tuple contents or sequence numbers, only delivery
/// order and multiplicity, so the multiset of delivered tuples is the
/// child's (plus exact duplicate copies).
class DisorderInjector final : public engine::Operator {
 public:
  DisorderInjector(engine::OperatorPtr child, DisorderSpec spec);

  const engine::Schema& schema() const override {
    return child_->schema();
  }
  Result<std::optional<engine::Tuple>> Next() override;
  Status Reset() override;
  Status Close() override { return child_->Close(); }
  void BindThreadPool(ThreadPool* pool) override {
    child_->BindThreadPool(pool);
  }

  const DisorderStats& stats() const { return stats_; }

 private:
  struct Held {
    uint64_t entry_index;
    engine::Tuple tuple;
  };

  /// Emits one tuple (through the duplicate lottery) into out_queue_.
  void Emit(engine::Tuple t);
  /// Releases pool entries that hit the displacement bound, oldest
  /// first.
  void ForceAgedOut();

  engine::OperatorPtr child_;
  DisorderSpec spec_;
  Rng rng_;
  std::deque<Held> pool_;
  /// Held-back (late) tuples with the input index at which they rejoin.
  std::deque<Held> late_;
  std::deque<engine::Tuple> out_queue_;
  uint64_t input_count_ = 0;
  bool exhausted_ = false;
  DisorderStats stats_;
};

}  // namespace stream
}  // namespace ausdb

#endif  // AUSDB_STREAM_DISORDER_INJECTOR_H_
