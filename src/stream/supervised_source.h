#ifndef AUSDB_STREAM_SUPERVISED_SOURCE_H_
#define AUSDB_STREAM_SUPERVISED_SOURCE_H_

#include <deque>
#include <functional>
#include <optional>

#include "src/common/fault_injector.h"
#include "src/common/retry.h"
#include "src/engine/operator.h"
#include "src/obs/metrics.h"
#include "src/stream/watermark.h"

namespace ausdb {
namespace stream {

/// A tuple diverted from the stream, with the Status explaining why.
struct QuarantinedTuple {
  engine::Tuple tuple;
  Status status;
};

/// \brief Substitute for an invalid tuple: given the offending tuple and
/// its validation failure, return a repaired tuple to emit instead
/// (counted as `degraded`), or nullopt to fall through to quarantine.
using DegradationPolicy = std::function<std::optional<engine::Tuple>(
    const engine::Tuple&, const Status&)>;

/// \brief Canned degradation: every invalid uncertain field is replaced
/// by a wide Gaussian prior N(mean, variance) carrying a small de facto
/// sample size, so downstream accuracy intervals widen honestly instead
/// of the tuple disappearing — trading accuracy for availability, which
/// the paper's intervals make visible to the query.
DegradationPolicy MakeWideGaussianDegradation(double mean, double variance,
                                              size_t sample_size);

/// \brief Per-tuple validity check; OK admits the tuple. The default
/// (ValidateTupleDistributions) rejects non-finite distribution
/// parameters and zero-sample uncertain fields.
using TupleValidator =
    std::function<Status(const engine::Tuple&, const engine::Schema&)>;

Status ValidateTupleDistributions(const engine::Tuple& tuple,
                                  const engine::Schema& schema);

/// How a SupervisedScan waits out a backoff delay. Tests pass a recorder;
/// production connectors pass a real sleep. Null = don't wait (the delay
/// is still computed and accounted in counters().backoff_seconds).
using SleepFn = std::function<void(double seconds)>;

/// Reconnect callback for restartable feeds (reopen the socket, reread
/// the file handle). A non-OK return aborts the retry sequence.
using RestartFn = std::function<Status()>;

/// Options of SupervisedScan.
struct SupervisedScanOptions {
  RetryPolicy retry;

  /// Invoked (at most once per retry sequence) after
  /// `restart_after_attempts` attempts failed, for feeds that need an
  /// explicit reconnect rather than a bare re-pull.
  RestartFn restart;
  size_t restart_after_attempts = 2;

  /// Bound of the dead-letter buffer; when full, the oldest entry is
  /// evicted (counters().quarantined still counts every diversion).
  size_t quarantine_capacity = 1024;

  /// Replaces ValidateTupleDistributions when set.
  TupleValidator validator;

  /// When set, invalid tuples are offered to this policy before
  /// quarantine.
  DegradationPolicy degradation;

  SleepFn sleep;

  /// Seed of the Rng that draws backoff jitter.
  uint64_t jitter_seed = 0x5eedULL;

  /// When non-null, supervision counters are mirrored into
  /// `ausdb_stream_supervision_*` metrics labeled
  /// `{source=metrics_label}`. Strictly write-only: the scan never reads
  /// a metric back, so output is identical with metrics on or off. The
  /// registry must outlive the scan.
  obs::MetricRegistry* metrics = nullptr;
  std::string metrics_label = "supervised_scan";

  /// When non-empty, the scan tracks a bounded-out-of-orderness
  /// watermark over this (deterministic double) timestamp column:
  /// CurrentWatermark() = max emitted timestamp - watermark_bound, a
  /// pure function of the observed data (never wall clock). Quarantined
  /// and degraded-then-repaired tuples still advance the watermark —
  /// their timestamps were observed — so supervision does not stall
  /// event time.
  std::string watermark_column;
  double watermark_bound = 0.0;
};

/// Observability counters of a SupervisedScan. The accounting invariant —
/// checked by the soak tests — is
///   emitted + degraded + quarantined == tuples produced by the child.
struct SupervisionCounters {
  size_t emitted = 0;      ///< valid tuples passed through
  size_t degraded = 0;     ///< invalid tuples substituted and emitted
  size_t quarantined = 0;  ///< invalid tuples diverted to the dead letter
  size_t retries = 0;      ///< individual retried Next() attempts
  size_t restarts = 0;     ///< restart callback invocations
  size_t gave_up = 0;      ///< retry budgets exhausted (error propagated)
  double backoff_seconds = 0.0;  ///< total scheduled backoff delay
};

/// \brief Fault-tolerance supervisor wrapping any operator (typically a
/// source): transient Next() failures are retried with exponential
/// backoff, fatal ones propagate unchanged; tuples failing a validity
/// check are quarantined or degraded instead of killing the pipeline.
///
/// This is the recovery layer the seed lacked: failure_injection_test
/// verifies that a mid-stream Status tears down an unsupervised pipeline,
/// and SupervisedScan is the operator that decides which of those
/// failures the pipeline survives.
class SupervisedScan final : public engine::Operator,
                             public WatermarkProvider {
 public:
  explicit SupervisedScan(engine::OperatorPtr child,
                          SupervisedScanOptions options = {});

  const engine::Schema& schema() const override { return child_->schema(); }
  Result<std::optional<engine::Tuple>> Next() override;
  Status Reset() override;
  Status Close() override { return child_->Close(); }

  const SupervisionCounters& counters() const { return counters_; }
  const std::deque<QuarantinedTuple>& quarantine() const {
    return quarantine_;
  }
  void ClearQuarantine() { quarantine_.clear(); }

  /// Event-time watermark over options.watermark_column; -inf until a
  /// finite timestamp has been observed (or when no column is
  /// configured).
  double CurrentWatermark() const override {
    return watermark_.watermark();
  }

 private:
  /// Pulls from the child, retrying transient failures per the policy.
  Result<std::optional<engine::Tuple>> PullWithRetry();
  void Quarantine(engine::Tuple tuple, Status status);

  /// Observes one pulled tuple's timestamp (before validation) and
  /// mirrors the advanced watermark into the gauge.
  void ObserveWatermark(const engine::Tuple& t);

  engine::OperatorPtr child_;
  SupervisedScanOptions options_;
  SupervisionCounters counters_;
  std::deque<QuarantinedTuple> quarantine_;
  Rng jitter_rng_;
  WatermarkPolicy watermark_;
  /// Index of options_.watermark_column, resolved at construction; the
  /// resolution error (if any) is returned by the first Next().
  std::optional<size_t> watermark_index_;
  Status watermark_status_;

  /// Registry-owned mirrors of SupervisionCounters; all null when
  /// options_.metrics is null.
  obs::Counter* m_emitted_ = nullptr;
  obs::Counter* m_degraded_ = nullptr;
  obs::Counter* m_quarantined_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_restarts_ = nullptr;
  obs::Counter* m_gave_up_ = nullptr;
  obs::Histogram* m_backoff_ = nullptr;
  obs::Gauge* m_watermark_ = nullptr;
};

}  // namespace stream
}  // namespace ausdb

#endif  // AUSDB_STREAM_SUPERVISED_SOURCE_H_
