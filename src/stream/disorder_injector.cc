#include "src/stream/disorder_injector.h"

#include <utility>

namespace ausdb {
namespace stream {

DisorderInjector::DisorderInjector(engine::OperatorPtr child,
                                   DisorderSpec spec)
    : child_(std::move(child)), spec_(spec), rng_(spec.seed) {}

void DisorderInjector::Emit(engine::Tuple t) {
  const bool duplicate =
      spec_.duplicate_probability > 0.0 &&
      rng_.NextDouble() < spec_.duplicate_probability;
  if (duplicate) {
    engine::Tuple copy = t;
    out_queue_.push_back(std::move(t));
    out_queue_.push_back(std::move(copy));
    ++stats_.duplicated;
  } else {
    out_queue_.push_back(std::move(t));
  }
}

void DisorderInjector::ForceAgedOut() {
  while (!pool_.empty() &&
         input_count_ - pool_.front().entry_index >=
             spec_.max_displacement) {
    Emit(std::move(pool_.front().tuple));
    pool_.pop_front();
  }
}

Result<std::optional<engine::Tuple>> DisorderInjector::Next() {
  for (;;) {
    if (!out_queue_.empty()) {
      engine::Tuple t = std::move(out_queue_.front());
      out_queue_.pop_front();
      return std::optional<engine::Tuple>(std::move(t));
    }
    if (exhausted_) {
      // Drain: pool in seeded-random order, then the held-back tuples
      // in hold order.
      if (!pool_.empty()) {
        const uint64_t idx = rng_.NextBelow(pool_.size());
        Emit(std::move(pool_[idx].tuple));
        pool_.erase(pool_.begin() + static_cast<ptrdiff_t>(idx));
        continue;
      }
      if (!late_.empty()) {
        Emit(std::move(late_.front().tuple));
        late_.pop_front();
        ++stats_.late_injected;
        continue;
      }
      return std::optional<engine::Tuple>(std::nullopt);
    }

    AUSDB_ASSIGN_OR_RETURN(std::optional<engine::Tuple> t,
                           child_->Next());
    if (!t.has_value()) {
      exhausted_ = true;
      continue;
    }
    ++input_count_;
    ++stats_.pulled;

    // Re-inject held-back tuples whose delay has elapsed, before the
    // current tuple so their displacement is exactly late_delay.
    while (!late_.empty() &&
           input_count_ >= late_.front().entry_index + spec_.late_delay) {
      Emit(std::move(late_.front().tuple));
      late_.pop_front();
      ++stats_.late_injected;
    }

    if (spec_.late_every_k > 0 &&
        input_count_ % spec_.late_every_k == 0) {
      late_.push_back(Held{input_count_, std::move(*t)});
      ForceAgedOut();
      continue;
    }

    const bool pooled =
        spec_.max_displacement > 0 &&
        (spec_.shuffle_probability >= 1.0 ||
         rng_.NextDouble() < spec_.shuffle_probability);
    if (pooled) {
      ++stats_.shuffled;
      pool_.push_back(Held{input_count_, std::move(*t)});
      if (pool_.size() > spec_.max_displacement) {
        const uint64_t idx = rng_.NextBelow(pool_.size());
        Emit(std::move(pool_[idx].tuple));
        pool_.erase(pool_.begin() + static_cast<ptrdiff_t>(idx));
      }
    } else {
      Emit(std::move(*t));
    }
    ForceAgedOut();
  }
}

Status DisorderInjector::Reset() {
  pool_.clear();
  late_.clear();
  out_queue_.clear();
  input_count_ = 0;
  exhausted_ = false;
  stats_ = DisorderStats{};
  rng_.Seed(spec_.seed);
  return child_->Reset();
}

}  // namespace stream
}  // namespace ausdb
