#ifndef AUSDB_STREAM_WATERMARK_H_
#define AUSDB_STREAM_WATERMARK_H_

#include <cmath>
#include <limits>

namespace ausdb {
namespace stream {

/// Options of a WatermarkPolicy.
struct WatermarkPolicyOptions {
  /// Bounded out-of-orderness: the watermark trails the maximum observed
  /// event time by this much. A tuple with timestamp <= watermark is
  /// *late* — the policy promises (to the operators consuming the
  /// watermark) that in-bound disorder never lags further than this.
  double bound = 0.0;
};

/// \brief Bounded-out-of-orderness watermark: the event-time low water
/// mark below which no further in-bound tuple may arrive.
///
/// Determinism contract: the watermark is a pure function of the event
/// timestamps observed so far — max(ts) - bound — and NEVER of wall
/// clock, arrival rate, or thread timing. Two runs observing the same
/// tuple sequence hold identical watermarks at every step, which is what
/// lets reorder/revision decisions stay bit-identical across async
/// prefetch depths and thread counts.
///
/// Before any observation the watermark is -infinity (nothing is late).
/// Non-finite timestamps are ignored by Observe() — rejecting them is
/// the caller's job (operators fail the tuple; sources count it) — so a
/// NaN can never poison the watermark itself.
class WatermarkPolicy {
 public:
  WatermarkPolicy() = default;
  explicit WatermarkPolicy(WatermarkPolicyOptions options)
      : options_(options) {}

  /// Feeds one observed event timestamp. Returns true when the
  /// watermark advanced.
  bool Observe(double ts) {
    if (!std::isfinite(ts) || ts <= max_timestamp_) return false;
    max_timestamp_ = ts;
    return true;
  }

  /// The current watermark: max observed timestamp minus the bound;
  /// -infinity before the first observation.
  double watermark() const {
    if (max_timestamp_ == -std::numeric_limits<double>::infinity()) {
      return -std::numeric_limits<double>::infinity();
    }
    return max_timestamp_ - options_.bound;
  }

  /// Highest event timestamp observed so far.
  double max_timestamp() const { return max_timestamp_; }

  /// True iff `ts` is late under the current watermark (would violate
  /// the in-order release contract).
  bool IsLate(double ts) const { return ts <= watermark() && has_observation(); }

  bool has_observation() const {
    return max_timestamp_ != -std::numeric_limits<double>::infinity();
  }

  const WatermarkPolicyOptions& options() const { return options_; }

  /// Forgets every observation (stream Reset).
  void Reset() {
    max_timestamp_ = -std::numeric_limits<double>::infinity();
  }

  /// Restores the policy from a checkpointed max timestamp — the whole
  /// state of a pure-function-of-max watermark. -infinity restores the
  /// pristine state.
  void RestoreFromMaxTimestamp(double max_ts) { max_timestamp_ = max_ts; }

 private:
  WatermarkPolicyOptions options_;
  double max_timestamp_ = -std::numeric_limits<double>::infinity();
};

/// \brief Anything that exposes an event-time watermark: sources with a
/// watermark column configured, and the ReorderBuffer (whose output
/// watermark is what downstream windows trust).
class WatermarkProvider {
 public:
  virtual ~WatermarkProvider() = default;

  /// The provider's current event-time watermark; -infinity when no
  /// timestamped tuple has been delivered yet.
  virtual double CurrentWatermark() const = 0;
};

}  // namespace stream
}  // namespace ausdb

#endif  // AUSDB_STREAM_WATERMARK_H_
