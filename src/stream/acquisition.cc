#include "src/stream/acquisition.h"

#include "src/accuracy/mean_variance_ci.h"

namespace ausdb {
namespace stream {

AcquisitionController::AcquisitionController(AcquisitionOptions options)
    : options_(options) {}

Result<accuracy::ConfidenceInterval>
AcquisitionController::CurrentMeanInterval() const {
  return accuracy::MeanIntervalFromSample(values_, options_.confidence);
}

AcquisitionDecision AcquisitionController::Observe(double value) {
  values_.push_back(value);
  if (values_.size() < options_.min_observations) {
    decision_ = AcquisitionDecision::kNeedMore;
    return decision_;
  }
  auto ci = CurrentMeanInterval();
  if (ci.ok() &&
      ci->Length() <= options_.target_mean_interval_length) {
    decision_ = AcquisitionDecision::kTargetReached;
    return decision_;
  }
  if (options_.max_observations > 0 &&
      values_.size() >= options_.max_observations) {
    decision_ = AcquisitionDecision::kBudgetExhausted;
    return decision_;
  }
  decision_ = AcquisitionDecision::kNeedMore;
  return decision_;
}

}  // namespace stream
}  // namespace ausdb
