#include "src/dist/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/math_util.h"
#include "src/dist/kernels.h"

namespace ausdb {
namespace dist {

Result<HistogramDist> HistogramDist::Make(std::vector<double> edges,
                                          std::vector<double> probs) {
  if (probs.empty()) {
    return Status::InvalidArgument("histogram needs at least one bin");
  }
  if (edges.size() != probs.size() + 1) {
    return Status::InvalidArgument(
        "histogram needs probs.size()+1 edges; got " +
        std::to_string(edges.size()) + " edges for " +
        std::to_string(probs.size()) + " bins");
  }
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    if (!(edges[i] < edges[i + 1])) {
      return Status::InvalidArgument(
          "histogram edges must be strictly ascending");
    }
  }
  double total = 0.0;
  for (double p : probs) {
    if (p < 0.0 || !std::isfinite(p)) {
      return Status::InvalidArgument(
          "histogram bin probabilities must be finite and >= 0");
    }
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-9) {
    return Status::InvalidArgument(
        "histogram bin probabilities must sum to 1; got " +
        std::to_string(total));
  }
  // Renormalize exactly to absorb rounding.
  for (double& p : probs) p /= total;
  return HistogramDist(std::move(edges), std::move(probs));
}

HistogramDist::HistogramDist(std::vector<double> edges,
                             std::vector<double> probs)
    : edges_(std::move(edges)), probs_(std::move(probs)) {
  cum_.resize(probs_.size());
  double acc = 0.0;
  for (size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i];
    cum_[i] = acc;
  }
  cum_.back() = 1.0;
}

double HistogramDist::Mean() const {
  double m = 0.0;
  for (size_t i = 0; i < probs_.size(); ++i) m += probs_[i] * BinMid(i);
  return m;
}

double HistogramDist::Variance() const {
  // Uniform-within-bin second moment: E[X^2 | bin i] = mid^2 + width^2/12.
  const double mean = Mean();
  double ex2 = 0.0;
  for (size_t i = 0; i < probs_.size(); ++i) {
    ex2 += probs_[i] * (Sq(BinMid(i)) + Sq(BinWidth(i)) / 12.0);
  }
  return std::max(0.0, ex2 - Sq(mean));
}

double HistogramDist::Cdf(double x) const {
  if (x < edges_.front()) return 0.0;
  if (x >= edges_.back()) return 1.0;
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  const size_t bin = static_cast<size_t>(it - edges_.begin()) - 1;
  const double below = bin == 0 ? 0.0 : cum_[bin - 1];
  const double frac = (x - edges_[bin]) / BinWidth(bin);
  return below + probs_[bin] * frac;
}

void HistogramDist::CdfMany(std::span<const double> xs,
                            std::span<double> out) const {
  HistogramCdfMany(edges_, probs_, cum_, xs, out);
}

size_t HistogramDist::SampleBin(double u) const {
  // upper_bound (first cum > u), not lower_bound (first cum >= u): a
  // draw landing exactly on a cumulative boundary — u == 0.0 with a
  // zero-probability head bin, or u == cum_[i] below a zero-probability
  // interior bin — must select the next bin that carries mass. A
  // zero-mass bin has cum_[i] == cum_[i-1], so upper_bound skips the
  // whole run of them; lower_bound stopped at the first, returning a
  // value from a bin the distribution assigns probability zero.
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
  return std::min(static_cast<size_t>(it - cum_.begin()),
                  probs_.size() - 1);
}

double HistogramDist::Sample(Rng& rng) const {
  const size_t bin = SampleBin(rng.NextDouble());
  return edges_[bin] + BinWidth(bin) * rng.NextDouble();
}

size_t HistogramDist::BinIndex(double x) const {
  if (x < edges_.front()) return 0;
  if (x >= edges_.back()) return probs_.size() - 1;
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  return static_cast<size_t>(it - edges_.begin()) - 1;
}

Result<HistogramDist> HistogramDist::WithProbs(
    std::vector<double> probs) const {
  return Make(edges_, std::move(probs));
}

std::string HistogramDist::ToString() const {
  std::ostringstream os;
  os << "Histogram(bins=" << probs_.size() << ", range=["
     << edges_.front() << ", " << edges_.back() << "))";
  return os.str();
}

std::shared_ptr<Distribution> HistogramDist::Clone() const {
  return std::shared_ptr<Distribution>(new HistogramDist(edges_, probs_));
}

}  // namespace dist
}  // namespace ausdb
