#ifndef AUSDB_DIST_CONVOLUTION_H_
#define AUSDB_DIST_CONVOLUTION_H_

#include "src/common/result.h"
#include "src/dist/histogram.h"

namespace ausdb {

class ThreadPool;

namespace dist {

/// Options of ConvolveHistograms.
struct ConvolveOptions {
  /// Output bin count; 0 = sum of the input bin counts (capped at 512).
  size_t output_bins = 0;

  /// Sub-divisions per input bin when discretizing the within-bin
  /// uniform mass. Higher = closer to the exact piecewise-quadratic
  /// convolution at quadratic cost in the subdivision count.
  size_t subdivisions = 4;

  /// Optional worker pool: the point-mass deposit loop is tiled into
  /// statically sized chunks with per-chunk accumulators merged in chunk
  /// order, so the result is bit-identical with or without a pool, at
  /// any thread count.
  ThreadPool* pool = nullptr;
};

/// \brief Distribution of X + Y for independent histogram-distributed X
/// and Y — the analytical alternative to Monte Carlo for histogram
/// arithmetic (the paper's dominant representation).
///
/// Each input bin's uniform mass is subdivided into `subdivisions` point
/// masses at subcell midpoints; the point masses are convolved and
/// deposited with linear (cloud-in-cell) assignment onto an output grid
/// whose first and last bin *midpoints* sit on lo_x + lo_y and
/// hi_x + hi_y. Every deposit therefore falls inside the midpoint hull
/// and splits between two bins with exact linear weights — no boundary
/// clamping — which keeps the result's mean exactly mean(X) + mean(Y);
/// variance error is O(width^2) in the subcell and output-bin widths.
/// The grid extends half an output bin beyond the exact support on each
/// side to make room for the edge midpoints.
///
/// Fails with InvalidArgument when either input has non-finite edges.
Result<HistogramDist> ConvolveHistograms(const HistogramDist& x,
                                         const HistogramDist& y,
                                         const ConvolveOptions& options = {});

}  // namespace dist
}  // namespace ausdb

#endif  // AUSDB_DIST_CONVOLUTION_H_
