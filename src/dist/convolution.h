#ifndef AUSDB_DIST_CONVOLUTION_H_
#define AUSDB_DIST_CONVOLUTION_H_

#include "src/common/result.h"
#include "src/dist/histogram.h"

namespace ausdb {
namespace dist {

/// Options of ConvolveHistograms.
struct ConvolveOptions {
  /// Output bin count; 0 = sum of the input bin counts (capped at 512).
  size_t output_bins = 0;

  /// Sub-divisions per input bin when discretizing the within-bin
  /// uniform mass. Higher = closer to the exact piecewise-quadratic
  /// convolution at quadratic cost in the subdivision count.
  size_t subdivisions = 4;
};

/// \brief Distribution of X + Y for independent histogram-distributed X
/// and Y — the analytical alternative to Monte Carlo for histogram
/// arithmetic (the paper's dominant representation).
///
/// Each input bin's uniform mass is subdivided into `subdivisions` point
/// masses at subcell midpoints; the point masses are convolved and
/// deposited onto the output grid over [lo_x + lo_y, hi_x + hi_y] with
/// linear (cloud-in-cell) assignment, which keeps the mean exact up to
/// boundary clamping; variance error is O(width^2) in the subcell and
/// output-bin widths.
Result<HistogramDist> ConvolveHistograms(const HistogramDist& x,
                                         const HistogramDist& y,
                                         const ConvolveOptions& options = {});

}  // namespace dist
}  // namespace ausdb

#endif  // AUSDB_DIST_CONVOLUTION_H_
