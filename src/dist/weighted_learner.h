#ifndef AUSDB_DIST_WEIGHTED_LEARNER_H_
#define AUSDB_DIST_WEIGHTED_LEARNER_H_

#include <span>

#include "src/common/result.h"
#include "src/dist/learner.h"
#include "src/dist/random_var.h"

namespace ausdb {
namespace dist {

/// \brief A distribution learned from a *weighted* sample (the paper's
/// Section VII future work): recent observations may weigh more, and the
/// accuracy provenance is the Kish effective sample size rather than the
/// raw count.
struct WeightedLearnedDistribution {
  DistributionPtr distribution;
  /// Raw observation count.
  size_t raw_count = 0;
  /// Kish effective sample size; the n that accuracy derivation uses.
  double effective_sample_size = 0.0;

  /// Wraps as a RandomVar; the (integral) d.f. sample size is
  /// floor(effective_sample_size), a conservative rounding.
  RandomVar ToRandomVar() const;
};

/// Learns a Gaussian from a weighted sample (weighted MLE: weighted mean
/// and frequency-corrected weighted variance). Requires effective sample
/// size > 1.
Result<WeightedLearnedDistribution> LearnWeightedGaussian(
    std::span<const double> observations, std::span<const double> weights);

/// Learns a histogram whose bin heights are weighted frequencies
/// sum(w in bin)/sum(w). Binning options as in LearnHistogram.
Result<WeightedLearnedDistribution> LearnWeightedHistogram(
    std::span<const double> observations, std::span<const double> weights,
    const HistogramLearnOptions& options = {});

}  // namespace dist
}  // namespace ausdb

#endif  // AUSDB_DIST_WEIGHTED_LEARNER_H_
