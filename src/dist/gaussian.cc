#include "src/dist/gaussian.h"

#include <cmath>
#include <sstream>

#include "src/common/logging.h"
#include "src/stats/quantiles.h"

namespace ausdb {
namespace dist {

GaussianDist::GaussianDist(double mean, double variance)
    : mean_(mean), variance_(variance) {
  AUSDB_CHECK(variance >= 0.0)
      << "Gaussian variance must be >= 0, got " << variance;
}

double GaussianDist::Cdf(double x) const {
  if (variance_ == 0.0) return x >= mean_ ? 1.0 : 0.0;
  return stats::NormalCdf((x - mean_) / std::sqrt(variance_));
}

double GaussianDist::Sample(Rng& rng) const {
  return mean_ + std::sqrt(variance_) * rng.NextGaussian();
}

double GaussianDist::Pdf(double x) const {
  if (variance_ == 0.0) return x == mean_ ? HUGE_VAL : 0.0;
  const double z = (x - mean_) / std::sqrt(variance_);
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI * variance_);
}

double GaussianDist::Quantile(double p) const {
  AUSDB_CHECK(p > 0.0 && p < 1.0)
      << "Gaussian quantile requires p in (0,1)";
  return mean_ + std::sqrt(variance_) * stats::NormalQuantile(p);
}

std::string GaussianDist::ToString() const {
  std::ostringstream os;
  os << "Gaussian(mu=" << mean_ << ", var=" << variance_ << ")";
  return os.str();
}

std::shared_ptr<Distribution> GaussianDist::Clone() const {
  return std::make_shared<GaussianDist>(mean_, variance_);
}

GaussianDist AddIndependent(const GaussianDist& a, const GaussianDist& b) {
  return GaussianDist(a.Mean() + b.Mean(), a.Variance() + b.Variance());
}

GaussianDist SubtractIndependent(const GaussianDist& a,
                                 const GaussianDist& b) {
  return GaussianDist(a.Mean() - b.Mean(), a.Variance() + b.Variance());
}

GaussianDist Affine(const GaussianDist& g, double scale, double shift) {
  return GaussianDist(scale * g.Mean() + shift,
                      scale * scale * g.Variance());
}

}  // namespace dist
}  // namespace ausdb
