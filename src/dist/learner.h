#ifndef AUSDB_DIST_LEARNER_H_
#define AUSDB_DIST_LEARNER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/result.h"
#include "src/dist/distribution.h"
#include "src/dist/gaussian.h"
#include "src/dist/histogram.h"

namespace ausdb {
namespace dist {

/// How histogram bin edges are chosen when learning from a raw sample.
enum class BinningPolicy {
  /// `bin_count` equal-width bins spanning [min, max] of the sample.
  kEqualWidth,
  /// Sturges' rule: ceil(log2 n) + 1 bins, equal width.
  kSturges,
  /// Freedman-Diaconis: width 2*IQR/n^(1/3), equal width.
  kFreedmanDiaconis,
  /// Caller-provided explicit edges.
  kExplicitEdges,
};

/// Options for LearnHistogram.
struct HistogramLearnOptions {
  BinningPolicy policy = BinningPolicy::kEqualWidth;
  /// Used by kEqualWidth.
  size_t bin_count = 10;
  /// Used by kExplicitEdges.
  std::vector<double> edges;
  /// Widen the [min, max] data range by this fraction on each side so the
  /// extreme observations fall strictly inside the outer bins.
  double range_padding = 1e-9;
};

/// \brief A distribution learned from a raw sample, together with the
/// provenance the accuracy engine needs: the sample size n (Lemmas 1-2)
/// and, optionally, the raw observations (bootstrap path).
struct LearnedDistribution {
  DistributionPtr distribution;
  size_t sample_size = 0;
  /// Raw observations retained for bootstrapping; may be empty if the
  /// caller chose not to keep them.
  std::shared_ptr<const std::vector<double>> raw_sample;
};

/// \brief Learns a histogram distribution from iid raw observations
/// (the paper's transformation of Figure 1 raw records into a single
/// record with a distribution field).
///
/// Fails with InsufficientData on an empty sample and InvalidArgument on
/// bad options.
Result<LearnedDistribution> LearnHistogram(
    std::span<const double> observations,
    const HistogramLearnOptions& options = {});

/// \brief Learns a Gaussian by maximum likelihood (sample mean, unbiased
/// sample variance). Requires at least 2 observations.
Result<LearnedDistribution> LearnGaussian(
    std::span<const double> observations);

/// \brief Wraps the raw sample itself as an EmpiricalDist.
Result<LearnedDistribution> LearnEmpirical(
    std::span<const double> observations);

/// \brief Computes histogram bin edges for a sample under `options`
/// without building the distribution; exposed for tests and for learning
/// many histograms over a shared grid.
Result<std::vector<double>> ComputeBinEdges(
    std::span<const double> observations,
    const HistogramLearnOptions& options);

/// \brief Bin counts of `observations` over explicit `edges`
/// (out-of-range observations are clamped into the first/last bin).
std::vector<size_t> CountBins(std::span<const double> observations,
                              std::span<const double> edges);

}  // namespace dist
}  // namespace ausdb

#endif  // AUSDB_DIST_LEARNER_H_
