#include "src/dist/kernels.h"

#include <algorithm>
#include <cstdint>

namespace ausdb {
namespace dist {

// The deposit kernel's pass 1 is written to auto-vectorize: 32-bit bin
// indices (packed double->int32 truncation exists in SSE2; the 64-bit
// conversion needs AVX-512), ternary min/max (compiles to minpd/maxpd),
// and no memory dependences inside the tile. The clones attribute emits
// an AVX2 copy next to the baseline and dispatches once at load time, so
// a generic build still gets 4-wide loops on machines that have them.
// FMA is deliberately NOT in the clone list: contracting a*b+c changes
// rounding, and these kernels' contract is byte-identity with the scalar
// seed loops.
#if defined(__x86_64__) && defined(__GNUC__) && defined(__linux__)
#define AUSDB_KERNEL_CLONES \
  __attribute__((target_clones("avx2", "default")))
#else
#define AUSDB_KERNEL_CLONES
#endif

namespace {

// Last index i with edges[i] <= x, assuming edges[0] <= x < edges.back().
// Same result as std::upper_bound(edges.begin(), edges.end(), x) - 1 but
// with a conditional-move body the compiler keeps branch-free, and no
// iterator abstraction in the hot loop.
inline size_t BranchlessBinSearch(const double* edges, size_t n_edges,
                                  double x) {
  size_t base = 0;
  size_t len = n_edges;
  while (len > 1) {
    const size_t half = len / 2;
    base += (edges[base + half] <= x) ? half : 0;
    len -= half;
  }
  return base;
}

}  // namespace

AUSDB_KERNEL_CLONES
void HistogramCdfMany(std::span<const double> edges,
                      std::span<const double> probs,
                      std::span<const double> cum,
                      std::span<const double> xs, std::span<double> out) {
  const double* e = edges.data();
  const size_t n_edges = edges.size();
  const double front = e[0];
  const double back = e[n_edges - 1];
  for (size_t i = 0; i < xs.size(); ++i) {
    const double x = xs[i];
    if (x < front) {
      out[i] = 0.0;
      continue;
    }
    if (x >= back) {
      out[i] = 1.0;
      continue;
    }
    const size_t bin = BranchlessBinSearch(e, n_edges, x);
    const double below = bin == 0 ? 0.0 : cum[bin - 1];
    const double frac = (x - e[bin]) / (e[bin + 1] - e[bin]);
    out[i] = below + probs[bin] * frac;
  }
}

AUSDB_KERNEL_CLONES
void CicDepositTiled(std::span<const double> a_values,
                     std::span<const double> a_masses,
                     std::span<const double> b_values,
                     std::span<const double> b_masses, double lo,
                     double inv_step, std::span<double> probs) {
  constexpr size_t kTile = 256;
  const size_t bins = probs.size();
  const double max_p = static_cast<double>(bins - 1);
  const int32_t max_i0 = static_cast<int32_t>(bins - 2);
  // Scratch tiles: pass 1 fills them with straight-line arithmetic the
  // compiler vectorizes; pass 2 replays the scatter in order.
  int32_t idx[kTile];
  double w0[kTile];
  double w1[kTile];
  double* grid = probs.data();
  const bool huge_grid = bins - 2 > 0x40000000u;  // int32 guard
  for (size_t ai = 0; ai < a_values.size(); ++ai) {
    const double av = a_values[ai];
    const double am = a_masses[ai];
    if (huge_grid) {
      // Unvectorized fallback for grids beyond int32 indexing — the
      // engine never builds one, but the kernel must not truncate.
      for (size_t bi = 0; bi < b_values.size(); ++bi) {
        const double v = av + b_values[bi];
        const double m = am * b_masses[bi];
        const double p = std::clamp((v - lo) * inv_step, 0.0, max_p);
        const size_t i0 = std::min(static_cast<size_t>(p), bins - 2);
        const double frac = p - static_cast<double>(i0);
        grid[i0] += m * (1.0 - frac);
        grid[i0 + 1] += m * frac;
      }
      continue;
    }
    for (size_t tb = 0; tb < b_values.size(); tb += kTile) {
      const size_t tile = std::min(kTile, b_values.size() - tb);
      const double* bv = b_values.data() + tb;
      const double* bm = b_masses.data() + tb;
      for (size_t k = 0; k < tile; ++k) {
        const double v = av + bv[k];
        const double m = am * bm[k];
        // Identical arithmetic to std::clamp + std::min<size_t> in the
        // scalar loop: p is finite and in [0, max_p], so the int32
        // truncation selects the same integer.
        double p = (v - lo) * inv_step;
        p = p < 0.0 ? 0.0 : p;
        p = p > max_p ? max_p : p;
        int32_t i0 = static_cast<int32_t>(p);
        i0 = i0 > max_i0 ? max_i0 : i0;
        const double frac = p - static_cast<double>(i0);
        idx[k] = i0;
        w0[k] = m * (1.0 - frac);
        w1[k] = m * frac;
      }
      for (size_t k = 0; k < tile; ++k) {
        grid[idx[k]] += w0[k];
        grid[idx[k] + 1] += w1[k];
      }
    }
  }
}

}  // namespace dist
}  // namespace ausdb
