#ifndef AUSDB_DIST_RANDOM_VAR_H_
#define AUSDB_DIST_RANDOM_VAR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/dist/distribution.h"
#include "src/dist/learner.h"

namespace ausdb {
namespace dist {

/// \brief An uncertain attribute value: a probability distribution plus
/// the provenance that accuracy derivation requires.
///
/// A RandomVar remembers the (de facto) sample size n it was learned from
/// — the key quantity in Lemmas 1-3 — and optionally the raw observations
/// themselves, which the bootstrap path (Section III) resamples. Query
/// processing combines RandomVars and propagates n with Lemma 3
/// (n_out = min over inputs).
class RandomVar {
 public:
  /// An unknown/default variable: point mass at 0 with sample size 0.
  RandomVar();

  /// Wraps a distribution with an explicit (de facto) sample size.
  RandomVar(DistributionPtr distribution, size_t sample_size);

  /// Wraps a learner output, keeping its raw sample.
  explicit RandomVar(const LearnedDistribution& learned);

  /// A deterministic value. Deterministic fields are "infinitely
  /// accurate": their sample size is treated as unbounded for Lemma 3.
  static RandomVar Certain(double value);

  const DistributionPtr& distribution() const { return dist_; }

  /// The (de facto) sample size n this variable's distribution carries.
  /// kCertainSampleSize for deterministic values.
  size_t sample_size() const { return sample_size_; }

  /// Sentinel sample size for deterministic values so that min-propagation
  /// ignores them.
  static constexpr size_t kCertainSampleSize =
      static_cast<size_t>(-1);

  /// True if this variable is deterministic (a PointDist).
  bool is_certain() const;

  /// The deterministic value; Status::TypeError if not certain.
  Result<double> certain_value() const;

  /// Raw observations, if retained; nullptr otherwise.
  const std::shared_ptr<const std::vector<double>>& raw_sample() const {
    return raw_;
  }

  /// Attaches (or replaces) the retained raw sample.
  void set_raw_sample(std::shared_ptr<const std::vector<double>> raw) {
    raw_ = std::move(raw);
  }

  double Mean() const { return dist_->Mean(); }
  double Variance() const { return dist_->Variance(); }
  double StdDev() const { return dist_->StdDev(); }
  double Cdf(double x) const { return dist_->Cdf(x); }
  double ProbGreater(double c) const { return dist_->ProbGreater(c); }
  double ProbLess(double c) const { return dist_->ProbLess(c); }
  double Sample(Rng& rng) const { return dist_->Sample(rng); }

  std::string ToString() const;

  /// Lemma 3: the de facto sample size of a function of several inputs is
  /// the minimum of their sample sizes (deterministic inputs excluded).
  static size_t CombineSampleSizes(size_t a, size_t b);

 private:
  DistributionPtr dist_;
  size_t sample_size_;
  std::shared_ptr<const std::vector<double>> raw_;
};

}  // namespace dist
}  // namespace ausdb

#endif  // AUSDB_DIST_RANDOM_VAR_H_
