#include "src/dist/learner.h"

#include <algorithm>
#include <cmath>

#include "src/dist/empirical.h"
#include "src/stats/descriptive.h"
#include "src/stats/percentile.h"

namespace ausdb {
namespace dist {

namespace {

std::vector<double> EqualWidthEdges(double lo, double hi, size_t bins) {
  std::vector<double> edges(bins + 1);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (size_t i = 0; i <= bins; ++i) {
    edges[i] = lo + width * static_cast<double>(i);
  }
  edges.back() = hi;  // avoid accumulation error on the last edge
  return edges;
}

}  // namespace

Result<std::vector<double>> ComputeBinEdges(
    std::span<const double> observations,
    const HistogramLearnOptions& options) {
  if (observations.empty()) {
    return Status::InsufficientData("cannot bin an empty sample");
  }
  if (options.policy == BinningPolicy::kExplicitEdges) {
    if (options.edges.size() < 2) {
      return Status::InvalidArgument(
          "explicit edges policy needs at least 2 edges");
    }
    return options.edges;
  }

  const auto [min_it, max_it] =
      std::minmax_element(observations.begin(), observations.end());
  double lo = *min_it;
  double hi = *max_it;
  if (lo == hi) {
    // Degenerate sample: a single unit-width bin centered on the value.
    lo -= 0.5;
    hi += 0.5;
  }
  const double pad = (hi - lo) * options.range_padding;
  lo -= pad;
  hi += pad;

  const double n = static_cast<double>(observations.size());
  size_t bins = 0;
  switch (options.policy) {
    case BinningPolicy::kEqualWidth:
      if (options.bin_count == 0) {
        return Status::InvalidArgument("bin_count must be >= 1");
      }
      bins = options.bin_count;
      break;
    case BinningPolicy::kSturges:
      bins = static_cast<size_t>(std::ceil(std::log2(n))) + 1;
      break;
    case BinningPolicy::kFreedmanDiaconis: {
      const double q1 = stats::Quantile(observations, 0.25);
      const double q3 = stats::Quantile(observations, 0.75);
      const double iqr = q3 - q1;
      if (iqr <= 0.0) {
        bins = static_cast<size_t>(std::ceil(std::log2(n))) + 1;
      } else {
        const double width = 2.0 * iqr / std::cbrt(n);
        bins = std::max<size_t>(
            1, static_cast<size_t>(std::ceil((hi - lo) / width)));
      }
      break;
    }
    case BinningPolicy::kExplicitEdges:
      break;  // handled above
  }
  return EqualWidthEdges(lo, hi, bins);
}

std::vector<size_t> CountBins(std::span<const double> observations,
                              std::span<const double> edges) {
  std::vector<size_t> counts(edges.size() - 1, 0);
  for (double x : observations) {
    size_t bin;
    if (x < edges.front()) {
      bin = 0;
    } else if (x >= edges.back()) {
      bin = counts.size() - 1;
    } else {
      const auto it = std::upper_bound(edges.begin(), edges.end(), x);
      bin = static_cast<size_t>(it - edges.begin()) - 1;
    }
    ++counts[bin];
  }
  return counts;
}

Result<LearnedDistribution> LearnHistogram(
    std::span<const double> observations,
    const HistogramLearnOptions& options) {
  if (observations.empty()) {
    return Status::InsufficientData(
        "cannot learn a histogram from an empty sample");
  }
  AUSDB_ASSIGN_OR_RETURN(std::vector<double> edges,
                         ComputeBinEdges(observations, options));
  const std::vector<size_t> counts = CountBins(observations, edges);
  const double n = static_cast<double>(observations.size());
  std::vector<double> probs;
  probs.reserve(counts.size());
  for (size_t c : counts) probs.push_back(static_cast<double>(c) / n);
  AUSDB_ASSIGN_OR_RETURN(HistogramDist hist,
                         HistogramDist::Make(std::move(edges),
                                             std::move(probs)));
  LearnedDistribution out;
  out.distribution = std::make_shared<HistogramDist>(std::move(hist));
  out.sample_size = observations.size();
  out.raw_sample = std::make_shared<const std::vector<double>>(
      observations.begin(), observations.end());
  return out;
}

Result<LearnedDistribution> LearnGaussian(
    std::span<const double> observations) {
  if (observations.size() < 2) {
    return Status::InsufficientData(
        "learning a Gaussian requires at least 2 observations");
  }
  const auto summary = stats::Summarize(observations);
  LearnedDistribution out;
  out.distribution =
      std::make_shared<GaussianDist>(summary.mean, summary.sample_variance);
  out.sample_size = observations.size();
  out.raw_sample = std::make_shared<const std::vector<double>>(
      observations.begin(), observations.end());
  return out;
}

Result<LearnedDistribution> LearnEmpirical(
    std::span<const double> observations) {
  AUSDB_ASSIGN_OR_RETURN(
      EmpiricalDist emp,
      EmpiricalDist::Make(
          std::vector<double>(observations.begin(), observations.end())));
  LearnedDistribution out;
  out.distribution = std::make_shared<EmpiricalDist>(std::move(emp));
  out.sample_size = observations.size();
  out.raw_sample = std::make_shared<const std::vector<double>>(
      observations.begin(), observations.end());
  return out;
}

}  // namespace dist
}  // namespace ausdb
