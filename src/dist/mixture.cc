#include "src/dist/mixture.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/math_util.h"

namespace ausdb {
namespace dist {

Result<MixtureDist> MixtureDist::Make(
    std::vector<DistributionPtr> components, std::vector<double> weights) {
  if (components.empty()) {
    return Status::InvalidArgument("mixture needs at least one component");
  }
  if (components.size() != weights.size()) {
    return Status::InvalidArgument(
        "mixture needs matching components/weights sizes");
  }
  double total = 0.0;
  for (size_t i = 0; i < components.size(); ++i) {
    if (components[i] == nullptr) {
      return Status::InvalidArgument("mixture component is null");
    }
    if (weights[i] < 0.0 || !std::isfinite(weights[i])) {
      return Status::InvalidArgument(
          "mixture weights must be finite and >= 0");
    }
    total += weights[i];
  }
  if (std::abs(total - 1.0) > 1e-9) {
    return Status::InvalidArgument("mixture weights must sum to 1; got " +
                                   std::to_string(total));
  }
  for (double& w : weights) w /= total;
  return MixtureDist(std::move(components), std::move(weights));
}

Result<MixtureDist> MixtureDist::MakeUniform(
    std::vector<DistributionPtr> components) {
  if (components.empty()) {
    return Status::InvalidArgument("mixture needs at least one component");
  }
  std::vector<double> weights(
      components.size(), 1.0 / static_cast<double>(components.size()));
  return Make(std::move(components), std::move(weights));
}

MixtureDist::MixtureDist(std::vector<DistributionPtr> components,
                         std::vector<double> weights)
    : components_(std::move(components)), weights_(std::move(weights)) {
  cum_.resize(weights_.size());
  double acc = 0.0;
  for (size_t i = 0; i < weights_.size(); ++i) {
    acc += weights_[i];
    cum_[i] = acc;
  }
  cum_.back() = 1.0;
}

double MixtureDist::Mean() const {
  double m = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    m += weights_[i] * components_[i]->Mean();
  }
  return m;
}

double MixtureDist::Variance() const {
  // Law of total variance: E[Var] + Var[E].
  const double mean = Mean();
  double v = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    v += weights_[i] *
         (components_[i]->Variance() + Sq(components_[i]->Mean() - mean));
  }
  return v;
}

double MixtureDist::Cdf(double x) const {
  double c = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    c += weights_[i] * components_[i]->Cdf(x);
  }
  return c;
}

double MixtureDist::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
  const size_t idx = std::min(static_cast<size_t>(it - cum_.begin()),
                              components_.size() - 1);
  return components_[idx]->Sample(rng);
}

std::string MixtureDist::ToString() const {
  std::ostringstream os;
  os << "Mixture(" << components_.size() << " components)";
  return os.str();
}

std::shared_ptr<Distribution> MixtureDist::Clone() const {
  return std::shared_ptr<Distribution>(
      new MixtureDist(components_, weights_));
}

}  // namespace dist
}  // namespace ausdb
