#include "src/dist/kde_learner.h"

#include <algorithm>
#include <cmath>

#include "src/dist/gaussian.h"
#include "src/dist/mixture.h"
#include "src/stats/descriptive.h"
#include "src/stats/percentile.h"

namespace ausdb {
namespace dist {

Result<double> SilvermanBandwidth(std::span<const double> observations) {
  if (observations.size() < 2) {
    return Status::InsufficientData(
        "Silverman bandwidth requires at least 2 observations");
  }
  const auto summary = stats::Summarize(observations);
  const double s = summary.SampleStdDev();
  const double iqr = stats::Quantile(observations, 0.75) -
                     stats::Quantile(observations, 0.25);
  double spread = s;
  if (iqr > 0.0) spread = std::min(spread, iqr / 1.34);
  if (spread <= 0.0) {
    // Degenerate sample: fall back to a nominal unit-scale bandwidth.
    spread = 1.0;
  }
  return 0.9 * spread *
         std::pow(static_cast<double>(observations.size()), -0.2);
}

Result<LearnedDistribution> LearnKde(std::span<const double> observations,
                                     const KdeLearnOptions& options) {
  if (observations.size() < 2) {
    return Status::InsufficientData(
        "KDE learning requires at least 2 observations");
  }
  double h = options.bandwidth;
  if (h <= 0.0) {
    AUSDB_ASSIGN_OR_RETURN(h, SilvermanBandwidth(observations));
  }
  const double h2 = h * h;
  std::vector<DistributionPtr> kernels;
  kernels.reserve(observations.size());
  for (double x : observations) {
    kernels.push_back(std::make_shared<GaussianDist>(x, h2));
  }
  AUSDB_ASSIGN_OR_RETURN(MixtureDist mix,
                         MixtureDist::MakeUniform(std::move(kernels)));
  LearnedDistribution out;
  out.distribution = std::make_shared<MixtureDist>(std::move(mix));
  out.sample_size = observations.size();
  out.raw_sample = std::make_shared<const std::vector<double>>(
      observations.begin(), observations.end());
  return out;
}

}  // namespace dist
}  // namespace ausdb
