#include "src/dist/weighted_learner.h"

#include <algorithm>
#include <cmath>

#include "src/dist/gaussian.h"
#include "src/dist/histogram.h"
#include "src/stats/weighted.h"

namespace ausdb {
namespace dist {

RandomVar WeightedLearnedDistribution::ToRandomVar() const {
  const size_t n = static_cast<size_t>(
      std::max(2.0, std::floor(effective_sample_size)));
  return RandomVar(distribution, n);
}

Result<WeightedLearnedDistribution> LearnWeightedGaussian(
    std::span<const double> observations,
    std::span<const double> weights) {
  AUSDB_ASSIGN_OR_RETURN(
      stats::WeightedSummary s,
      stats::SummarizeWeighted(observations, weights));
  if (s.effective_sample_size <= 1.0) {
    return Status::InsufficientData(
        "learning a weighted Gaussian requires effective sample size > 1");
  }
  WeightedLearnedDistribution out;
  out.distribution =
      std::make_shared<GaussianDist>(s.mean, s.sample_variance);
  out.raw_count = observations.size();
  out.effective_sample_size = s.effective_sample_size;
  return out;
}

Result<WeightedLearnedDistribution> LearnWeightedHistogram(
    std::span<const double> observations, std::span<const double> weights,
    const HistogramLearnOptions& options) {
  if (observations.size() != weights.size()) {
    return Status::InvalidArgument(
        "observations and weights must have the same size");
  }
  AUSDB_ASSIGN_OR_RETURN(double n_eff,
                         stats::EffectiveSampleSize(weights));
  AUSDB_ASSIGN_OR_RETURN(std::vector<double> edges,
                         ComputeBinEdges(observations, options));

  std::vector<double> bin_weight(edges.size() - 1, 0.0);
  double total = 0.0;
  for (size_t i = 0; i < observations.size(); ++i) {
    const double x = observations[i];
    size_t bin;
    if (x < edges.front()) {
      bin = 0;
    } else if (x >= edges.back()) {
      bin = bin_weight.size() - 1;
    } else {
      const auto it = std::upper_bound(edges.begin(), edges.end(), x);
      bin = static_cast<size_t>(it - edges.begin()) - 1;
    }
    bin_weight[bin] += weights[i];
    total += weights[i];
  }
  for (double& w : bin_weight) w /= total;

  AUSDB_ASSIGN_OR_RETURN(
      HistogramDist hist,
      HistogramDist::Make(std::move(edges), std::move(bin_weight)));
  WeightedLearnedDistribution out;
  out.distribution = std::make_shared<HistogramDist>(std::move(hist));
  out.raw_count = observations.size();
  out.effective_sample_size = n_eff;
  return out;
}

}  // namespace dist
}  // namespace ausdb
