#ifndef AUSDB_DIST_DISCRETE_H_
#define AUSDB_DIST_DISCRETE_H_

#include <vector>

#include "src/common/result.h"
#include "src/dist/distribution.h"

namespace ausdb {
namespace dist {

/// \brief Finite-support discrete distribution {(v_i, p_i)}.
///
/// Values are kept sorted ascending; duplicate input values are merged by
/// summing their probabilities.
class DiscreteDist final : public Distribution {
 public:
  /// Validates and builds. Fails with InvalidArgument unless sizes match,
  /// probabilities are >= 0 and sum to 1 (within 1e-9; renormalized).
  static Result<DiscreteDist> Make(std::vector<double> values,
                                   std::vector<double> probs);

  DistributionKind kind() const override {
    return DistributionKind::kDiscrete;
  }
  double Mean() const override;
  double Variance() const override;
  double Cdf(double x) const override;
  double ProbLess(double c) const override;
  double Sample(Rng& rng) const override;
  std::string ToString() const override;
  std::shared_ptr<Distribution> Clone() const override;

  const std::vector<double>& values() const { return values_; }
  const std::vector<double>& probs() const { return probs_; }

  /// Point mass P(X = v); 0 if v is not in the support.
  double ProbEquals(double v) const;

 private:
  DiscreteDist(std::vector<double> values, std::vector<double> probs);

  std::vector<double> values_;  // ascending
  std::vector<double> probs_;
  std::vector<double> cum_;
};

/// \brief Bernoulli as a DiscreteDist over {0, 1}; handy for result-tuple
/// membership randomness.
Result<DiscreteDist> MakeBernoulli(double p);

}  // namespace dist
}  // namespace ausdb

#endif  // AUSDB_DIST_DISCRETE_H_
