#ifndef AUSDB_DIST_GMM_LEARNER_H_
#define AUSDB_DIST_GMM_LEARNER_H_

#include <span>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/dist/learner.h"
#include "src/dist/mixture.h"

namespace ausdb {
namespace dist {

/// Options of the EM Gaussian-mixture learner.
struct GmmLearnOptions {
  /// Number of mixture components.
  size_t components = 2;

  /// EM iteration cap.
  size_t max_iterations = 200;

  /// Convergence threshold on the mean log-likelihood improvement.
  double tolerance = 1e-7;

  /// Variance floor, as a fraction of the sample variance, protecting
  /// against component collapse onto a single point.
  double variance_floor_fraction = 1e-3;

  /// Seed of the k-means++-style initialization.
  uint64_t seed = 0x6E11ull;
};

/// Diagnostics of an EM fit.
struct GmmFitInfo {
  size_t iterations = 0;
  double log_likelihood = 0.0;
  bool converged = false;
};

/// \brief Learns a Gaussian mixture model by expectation-maximization —
/// the representation used by model-based uncertain stream processing
/// (the paper's "second category", e.g. PODS-style GMM streams).
///
/// Initialization picks spread-out seeds (k-means++ style); component
/// variances are floored to avoid singularities. Requires at least
/// 2 * components observations. The learned MixtureDist of GaussianDist
/// components flows through the engine like any other distribution, with
/// sample-size provenance for the accuracy machinery.
Result<LearnedDistribution> LearnGaussianMixture(
    std::span<const double> observations,
    const GmmLearnOptions& options = {}, GmmFitInfo* fit_info = nullptr);

}  // namespace dist
}  // namespace ausdb

#endif  // AUSDB_DIST_GMM_LEARNER_H_
