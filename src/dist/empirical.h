#ifndef AUSDB_DIST_EMPIRICAL_H_
#define AUSDB_DIST_EMPIRICAL_H_

#include <vector>

#include "src/common/result.h"
#include "src/dist/distribution.h"

namespace ausdb {
namespace dist {

/// \brief Empirical distribution of a raw sample: each observation carries
/// mass 1/n.
///
/// Sampling from an EmpiricalDist is exactly "drawing with replacement
/// from the sample", i.e. one bootstrap draw — the bootstrap engine
/// (Section III) is built on this. Moments are the sample moments.
class EmpiricalDist final : public Distribution {
 public:
  /// Validates and builds; observations need not be sorted (a sorted copy
  /// is kept internally). Fails with InvalidArgument on an empty sample.
  static Result<EmpiricalDist> Make(std::vector<double> observations);

  DistributionKind kind() const override {
    return DistributionKind::kEmpirical;
  }
  double Mean() const override;
  double Variance() const override;
  double Cdf(double x) const override;
  double ProbLess(double c) const override;
  double Sample(Rng& rng) const override;
  std::string ToString() const override;
  std::shared_ptr<Distribution> Clone() const override;

  size_t size() const { return sorted_.size(); }

  /// Ascending observations.
  const std::vector<double>& sorted_observations() const { return sorted_; }

  /// p-quantile (linear interpolation of order statistics).
  double Quantile(double p) const;

 private:
  explicit EmpiricalDist(std::vector<double> sorted);

  std::vector<double> sorted_;
  double mean_;
  double population_variance_;
};

}  // namespace dist
}  // namespace ausdb

#endif  // AUSDB_DIST_EMPIRICAL_H_
