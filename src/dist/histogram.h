#ifndef AUSDB_DIST_HISTOGRAM_H_
#define AUSDB_DIST_HISTOGRAM_H_

#include <span>
#include <vector>

#include "src/common/result.h"
#include "src/dist/distribution.h"

namespace ausdb {
namespace dist {

/// \brief Piecewise-uniform histogram distribution
/// {(b_i, p_i) | 1 <= i <= b} (paper Section II-B).
///
/// Bins are contiguous half-open intervals [edges[i], edges[i+1]) defined
/// by `b+1` strictly ascending edges; `p_i` is the probability mass of bin
/// i, with mass spread uniformly inside the bin. This is the paper's
/// primary representation for learned distributions, and the one whose
/// accuracy information is per-bin confidence intervals (Lemma 1).
class HistogramDist final : public Distribution {
 public:
  /// Validates and builds a histogram. Fails with InvalidArgument unless
  /// edges are strictly ascending, probs.size()+1 == edges.size(), every
  /// probability is >= 0, and the probabilities sum to 1 (within 1e-9
  /// tolerance; they are renormalized exactly).
  static Result<HistogramDist> Make(std::vector<double> edges,
                                    std::vector<double> probs);

  DistributionKind kind() const override {
    return DistributionKind::kHistogram;
  }
  double Mean() const override;
  double Variance() const override;
  double Cdf(double x) const override;
  /// Evaluates the CDF at each `xs[i]` into `out[i]` (out.size() must be
  /// >= xs.size()). Byte-identical to per-element Cdf() calls; runs the
  /// branchless flat-array kernel, skipping per-call virtual dispatch.
  void CdfMany(std::span<const double> xs, std::span<double> out) const;
  double Sample(Rng& rng) const override;
  std::string ToString() const override;
  std::shared_ptr<Distribution> Clone() const override;

  size_t bin_count() const { return probs_.size(); }
  const std::vector<double>& edges() const { return edges_; }
  const std::vector<double>& probs() const { return probs_; }

  /// Probability mass of bin i.
  double BinProb(size_t i) const { return probs_[i]; }

  /// Midpoint of bin i.
  double BinMid(size_t i) const {
    return 0.5 * (edges_[i] + edges_[i + 1]);
  }

  /// Width of bin i.
  double BinWidth(size_t i) const { return edges_[i + 1] - edges_[i]; }

  /// Index of the bin containing x, clamping out-of-range values into the
  /// first/last bin. Returns npos (== bin_count()) only for an empty
  /// histogram, which Make() forbids.
  size_t BinIndex(double x) const;

  /// Index of the bin the inverse-CDF transform selects for a uniform
  /// draw u in [0, 1): the first bin whose cumulative mass strictly
  /// exceeds u. Zero-probability bins are never selected — a draw
  /// landing exactly on a cumulative boundary (u == 0.0 under a
  /// zero-probability head bin, u == cum[i] under a zero-probability
  /// interior run) skips the whole zero run to the next bin carrying
  /// mass. Sample() is SampleBin(u) plus a uniform position inside the
  /// bin.
  size_t SampleBin(double u) const;

  /// A copy with the same edges but different probabilities (validated the
  /// same way as Make).
  Result<HistogramDist> WithProbs(std::vector<double> probs) const;

 private:
  HistogramDist(std::vector<double> edges, std::vector<double> probs);

  std::vector<double> edges_;
  std::vector<double> probs_;
  std::vector<double> cum_;  // cum_[i] = sum of probs_[0..i]
};

}  // namespace dist
}  // namespace ausdb

#endif  // AUSDB_DIST_HISTOGRAM_H_
