#include "src/dist/conditioning.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/common/math_util.h"
#include "src/dist/discrete.h"
#include "src/dist/empirical.h"
#include "src/dist/gaussian.h"
#include "src/dist/histogram.h"
#include "src/dist/mixture.h"
#include "src/stats/quantiles.h"

namespace ausdb {
namespace dist {

namespace {

constexpr double kMinEventProbability = 1e-12;
constexpr double kInf = std::numeric_limits<double>::infinity();

double StdNormalPdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

/// Gaussian truncated to (lo, hi]: closed-form moments and CDF.
class TruncatedGaussianDist final : public Distribution {
 public:
  TruncatedGaussianDist(double mu, double sigma, double lo, double hi)
      : mu_(mu), sigma_(sigma), lo_(lo), hi_(hi) {
    alpha_ = (lo_ - mu_) / sigma_;
    beta_ = (hi_ - mu_) / sigma_;
    cdf_alpha_ = std::isinf(alpha_) ? 0.0 : stats::NormalCdf(alpha_);
    cdf_beta_ = std::isinf(beta_) ? 1.0 : stats::NormalCdf(beta_);
    z_ = cdf_beta_ - cdf_alpha_;
    const double pdf_alpha = std::isinf(alpha_) ? 0.0 : StdNormalPdf(alpha_);
    const double pdf_beta = std::isinf(beta_) ? 0.0 : StdNormalPdf(beta_);
    const double ratio = (pdf_alpha - pdf_beta) / z_;
    mean_ = mu_ + sigma_ * ratio;
    const double a_term = std::isinf(alpha_) ? 0.0 : alpha_ * pdf_alpha;
    const double b_term = std::isinf(beta_) ? 0.0 : beta_ * pdf_beta;
    variance_ = sigma_ * sigma_ *
                std::max(0.0, 1.0 + (a_term - b_term) / z_ - Sq(ratio));
  }

  DistributionKind kind() const override {
    return DistributionKind::kParametric;
  }
  double Mean() const override { return mean_; }
  double Variance() const override { return variance_; }
  double Cdf(double x) const override {
    if (x <= lo_) return 0.0;
    if (x >= hi_) return 1.0;
    return (stats::NormalCdf((x - mu_) / sigma_) - cdf_alpha_) / z_;
  }
  double Sample(Rng& rng) const override {
    const double u = cdf_alpha_ + rng.NextDouble() * z_;
    return mu_ + sigma_ * stats::NormalQuantile(
                              Clamp(u, 1e-15, 1.0 - 1e-15));
  }
  std::string ToString() const override {
    return "TruncatedGaussian(mu=" + std::to_string(mu_) +
           ", sigma=" + std::to_string(sigma_) + ", (" +
           std::to_string(lo_) + ", " + std::to_string(hi_) + "])";
  }
  std::shared_ptr<Distribution> Clone() const override {
    return std::make_shared<TruncatedGaussianDist>(mu_, sigma_, lo_, hi_);
  }

 private:
  double mu_, sigma_, lo_, hi_;
  double alpha_, beta_, cdf_alpha_, cdf_beta_, z_;
  double mean_, variance_;
};

Result<DistributionPtr> ConditionHistogram(const HistogramDist& h,
                                           double lo, double hi) {
  std::vector<double> edges;
  std::vector<double> masses;
  for (size_t i = 0; i < h.bin_count(); ++i) {
    const double b_lo = h.edges()[i];
    const double b_hi = h.edges()[i + 1];
    const double clip_lo = std::max(b_lo, lo);
    const double clip_hi = std::min(b_hi, hi);
    if (clip_hi <= clip_lo) continue;
    const double fraction = (clip_hi - clip_lo) / (b_hi - b_lo);
    const double mass = h.BinProb(i) * fraction;
    if (mass <= 0.0) continue;
    if (edges.empty() || edges.back() < clip_lo) {
      edges.push_back(clip_lo);
    }
    edges.push_back(clip_hi);
    masses.push_back(mass);
  }
  if (masses.empty()) {
    return Status::InvalidArgument(
        "conditioning event has zero probability under the histogram");
  }
  double total = 0.0;
  for (double m : masses) total += m;
  if (total < kMinEventProbability) {
    return Status::InvalidArgument(
        "conditioning event probability is numerically negligible");
  }
  for (double& m : masses) m /= total;
  // Guard against collapsed multi-segment edge lists (disjoint clipped
  // regions produce contiguous [edges] only when bins are contiguous,
  // which HistogramDist guarantees).
  AUSDB_ASSIGN_OR_RETURN(HistogramDist clipped,
                         HistogramDist::Make(std::move(edges),
                                             std::move(masses)));
  return DistributionPtr(
      std::make_shared<HistogramDist>(std::move(clipped)));
}

}  // namespace

Result<DistributionPtr> ConditionBetween(const Distribution& d, double lo,
                                         double hi) {
  if (!(lo < hi)) {
    return Status::InvalidArgument(
        "conditioning range must satisfy lo < hi");
  }
  const double event_prob = d.Cdf(hi) - d.Cdf(lo);
  if (event_prob < kMinEventProbability) {
    return Status::InvalidArgument(
        "conditioning event has (near-)zero probability: Pr(" +
        std::to_string(lo) + " < X <= " + std::to_string(hi) + ") = " +
        std::to_string(event_prob));
  }

  switch (d.kind()) {
    case DistributionKind::kPoint:
      // The event has positive probability, so the point lies inside.
      return DistributionPtr(d.Clone());
    case DistributionKind::kGaussian: {
      const auto& g = static_cast<const GaussianDist&>(d);
      if (g.Variance() == 0.0) return DistributionPtr(d.Clone());
      return DistributionPtr(std::make_shared<TruncatedGaussianDist>(
          g.Mean(), std::sqrt(g.Variance()), lo, hi));
    }
    case DistributionKind::kHistogram:
      return ConditionHistogram(static_cast<const HistogramDist&>(d), lo,
                                hi);
    case DistributionKind::kDiscrete: {
      const auto& disc = static_cast<const DiscreteDist&>(d);
      std::vector<double> values, probs;
      for (size_t i = 0; i < disc.values().size(); ++i) {
        const double v = disc.values()[i];
        if (v > lo && v <= hi) {
          values.push_back(v);
          probs.push_back(disc.probs()[i]);
        }
      }
      double total = 0.0;
      for (double p : probs) total += p;
      for (double& p : probs) p /= total;
      AUSDB_ASSIGN_OR_RETURN(DiscreteDist out,
                             DiscreteDist::Make(std::move(values),
                                                std::move(probs)));
      return DistributionPtr(
          std::make_shared<DiscreteDist>(std::move(out)));
    }
    case DistributionKind::kEmpirical: {
      const auto& emp = static_cast<const EmpiricalDist&>(d);
      std::vector<double> kept;
      for (double v : emp.sorted_observations()) {
        if (v > lo && v <= hi) kept.push_back(v);
      }
      AUSDB_ASSIGN_OR_RETURN(EmpiricalDist out,
                             EmpiricalDist::Make(std::move(kept)));
      return DistributionPtr(
          std::make_shared<EmpiricalDist>(std::move(out)));
    }
    case DistributionKind::kMixture: {
      const auto& mix = static_cast<const MixtureDist&>(d);
      std::vector<DistributionPtr> components;
      std::vector<double> weights;
      for (size_t i = 0; i < mix.components().size(); ++i) {
        const auto& comp = *mix.components()[i];
        const double comp_event = comp.Cdf(hi) - comp.Cdf(lo);
        const double w = mix.weights()[i] * comp_event / event_prob;
        if (w < kMinEventProbability) continue;
        AUSDB_ASSIGN_OR_RETURN(DistributionPtr conditioned,
                               ConditionBetween(comp, lo, hi));
        components.push_back(std::move(conditioned));
        weights.push_back(w);
      }
      // Renormalize (dropped negligible components).
      double total = 0.0;
      for (double w : weights) total += w;
      for (double& w : weights) w /= total;
      AUSDB_ASSIGN_OR_RETURN(MixtureDist out,
                             MixtureDist::Make(std::move(components),
                                               std::move(weights)));
      return DistributionPtr(
          std::make_shared<MixtureDist>(std::move(out)));
    }
    case DistributionKind::kParametric: {
      // Generic parametric: condition via a fine histogram of the CDF.
      constexpr size_t kBins = 256;
      const double a = std::isinf(lo) ? d.Mean() - 20.0 * d.StdDev() : lo;
      const double b = std::isinf(hi) ? d.Mean() + 20.0 * d.StdDev() : hi;
      std::vector<double> edges(kBins + 1);
      std::vector<double> probs(kBins);
      for (size_t i = 0; i <= kBins; ++i) {
        edges[i] = a + (b - a) * static_cast<double>(i) / kBins;
      }
      double total = 0.0;
      for (size_t i = 0; i < kBins; ++i) {
        probs[i] = std::max(0.0, d.Cdf(edges[i + 1]) - d.Cdf(edges[i]));
        total += probs[i];
      }
      if (total < kMinEventProbability) {
        return Status::InvalidArgument(
            "conditioning event probability is numerically negligible");
      }
      for (double& p : probs) p /= total;
      AUSDB_ASSIGN_OR_RETURN(HistogramDist out,
                             HistogramDist::Make(std::move(edges),
                                                 std::move(probs)));
      return DistributionPtr(
          std::make_shared<HistogramDist>(std::move(out)));
    }
  }
  return Status::Internal("unhandled distribution kind");
}

Result<DistributionPtr> ConditionGreater(const Distribution& d, double c) {
  return ConditionBetween(d, c, kInf);
}

Result<DistributionPtr> ConditionAtMost(const Distribution& d, double c) {
  return ConditionBetween(d, -kInf, c);
}

}  // namespace dist
}  // namespace ausdb
