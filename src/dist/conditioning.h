#ifndef AUSDB_DIST_CONDITIONING_H_
#define AUSDB_DIST_CONDITIONING_H_

#include "src/common/result.h"
#include "src/dist/distribution.h"

namespace ausdb {
namespace dist {

/// \brief Conditional (truncated) distributions: the distribution of X
/// given lo < X <= hi, renormalized.
///
/// This is the Orion-style semantics the paper's data model builds on
/// (citation [18]): after a range predicate keeps a tuple with
/// probability p, the surviving possible worlds have the attribute's
/// distribution *conditioned* on the predicate. Gaussians truncate in
/// closed form; histograms clip and renormalize bins; empirical and
/// discrete distributions filter their support. Mixtures condition each
/// component and reweight.
///
/// Fails with InvalidArgument when the conditioning event has zero (or
/// numerically negligible) probability.
Result<DistributionPtr> ConditionBetween(const Distribution& d, double lo,
                                         double hi);

/// Condition on X > c.
Result<DistributionPtr> ConditionGreater(const Distribution& d, double c);

/// Condition on X <= c.
Result<DistributionPtr> ConditionAtMost(const Distribution& d, double c);

}  // namespace dist
}  // namespace ausdb

#endif  // AUSDB_DIST_CONDITIONING_H_
