#ifndef AUSDB_DIST_DISTRIBUTION_H_
#define AUSDB_DIST_DISTRIBUTION_H_

#include <memory>
#include <string>

#include "src/common/rng.h"

namespace ausdb {
namespace dist {

/// Concrete distribution families known to the engine.
enum class DistributionKind {
  kPoint,      ///< Deterministic value (probability 1).
  kGaussian,   ///< Normal(mu, sigma^2).
  kHistogram,  ///< Piecewise-uniform over explicit bins.
  kDiscrete,   ///< Finite support with explicit probabilities.
  kMixture,    ///< Weighted mixture of component distributions.
  kEmpirical,  ///< The raw sample itself (resampling distribution).
  kParametric, ///< Closed-form parametric family (exact CDF/moments).
};

std::string_view DistributionKindToString(DistributionKind kind);

/// \brief A univariate probability distribution: the value of an uncertain
/// attribute in AUSDB.
///
/// Implementations are immutable after construction and shared by
/// const pointer; query operators never mutate a distribution in place but
/// build new ones. Every distribution can report its moments, CDF and can
/// be sampled, which is all the accuracy engine (analytical path) and the
/// bootstrap engine (Monte Carlo path) need.
class Distribution {
 public:
  virtual ~Distribution() = default;

  virtual DistributionKind kind() const = 0;

  /// Expectation E[X].
  virtual double Mean() const = 0;

  /// Variance Var[X].
  virtual double Variance() const = 0;

  /// P(X <= x).
  virtual double Cdf(double x) const = 0;

  /// One random draw.
  virtual double Sample(Rng& rng) const = 0;

  /// Short human-readable description, e.g. "Gaussian(mu=1, var=2)".
  virtual std::string ToString() const = 0;

  /// Deep copy.
  virtual std::shared_ptr<Distribution> Clone() const = 0;

  /// sqrt(Variance()).
  double StdDev() const;

  /// P(X > c) = 1 - Cdf(c).
  double ProbGreater(double c) const { return 1.0 - Cdf(c); }

  /// P(X < c); equals Cdf(c) for the continuous families. For discrete
  /// families this subtracts the point mass at c.
  virtual double ProbLess(double c) const { return Cdf(c); }

  /// P(lo < X <= hi).
  double ProbBetween(double lo, double hi) const;
};

/// Shared immutable distribution handle used throughout the engine.
using DistributionPtr = std::shared_ptr<const Distribution>;

/// \brief Deterministic value: X = value with probability 1.
///
/// Lets deterministic fields flow through the same code paths as uncertain
/// ones (the paper's "single value with probability 1" special case).
class PointDist final : public Distribution {
 public:
  explicit PointDist(double value) : value_(value) {}

  DistributionKind kind() const override { return DistributionKind::kPoint; }
  double Mean() const override { return value_; }
  double Variance() const override { return 0.0; }
  double Cdf(double x) const override { return x >= value_ ? 1.0 : 0.0; }
  double ProbLess(double c) const override { return c > value_ ? 1.0 : 0.0; }
  double Sample(Rng&) const override { return value_; }
  std::string ToString() const override;
  std::shared_ptr<Distribution> Clone() const override {
    return std::make_shared<PointDist>(value_);
  }

  double value() const { return value_; }

 private:
  double value_;
};

/// Convenience factory for a PointDist handle.
DistributionPtr MakePoint(double value);

}  // namespace dist
}  // namespace ausdb

#endif  // AUSDB_DIST_DISTRIBUTION_H_
