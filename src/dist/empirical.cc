#include "src/dist/empirical.h"

#include <algorithm>
#include <sstream>

#include "src/stats/descriptive.h"
#include "src/stats/percentile.h"

namespace ausdb {
namespace dist {

Result<EmpiricalDist> EmpiricalDist::Make(
    std::vector<double> observations) {
  if (observations.empty()) {
    return Status::InvalidArgument(
        "empirical distribution needs at least one observation");
  }
  std::sort(observations.begin(), observations.end());
  return EmpiricalDist(std::move(observations));
}

EmpiricalDist::EmpiricalDist(std::vector<double> sorted)
    : sorted_(std::move(sorted)) {
  const auto summary = stats::Summarize(sorted_);
  mean_ = summary.mean;
  population_variance_ = summary.population_variance;
}

double EmpiricalDist::Mean() const { return mean_; }

double EmpiricalDist::Variance() const { return population_variance_; }

double EmpiricalDist::Cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDist::ProbLess(double c) const {
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), c);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDist::Sample(Rng& rng) const {
  return sorted_[rng.NextBelow(sorted_.size())];
}

double EmpiricalDist::Quantile(double p) const {
  return stats::QuantileOfSorted(sorted_, p);
}

std::string EmpiricalDist::ToString() const {
  std::ostringstream os;
  os << "Empirical(n=" << sorted_.size() << ")";
  return os.str();
}

std::shared_ptr<Distribution> EmpiricalDist::Clone() const {
  return std::shared_ptr<Distribution>(new EmpiricalDist(sorted_));
}

}  // namespace dist
}  // namespace ausdb
