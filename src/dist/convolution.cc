#include "src/dist/convolution.h"

#include <algorithm>
#include <vector>

namespace ausdb {
namespace dist {

namespace {

struct PointMass {
  double value;
  double mass;
};

// Uniform bin mass split into `s` equal point masses at subcell
// midpoints.
std::vector<PointMass> Discretize(const HistogramDist& h, size_t s) {
  std::vector<PointMass> points;
  points.reserve(h.bin_count() * s);
  for (size_t i = 0; i < h.bin_count(); ++i) {
    const double lo = h.edges()[i];
    const double width = h.BinWidth(i);
    const double mass = h.BinProb(i) / static_cast<double>(s);
    for (size_t k = 0; k < s; ++k) {
      const double mid =
          lo + width * (static_cast<double>(k) + 0.5) /
                   static_cast<double>(s);
      points.push_back({mid, mass});
    }
  }
  return points;
}

}  // namespace

Result<HistogramDist> ConvolveHistograms(const HistogramDist& x,
                                         const HistogramDist& y,
                                         const ConvolveOptions& options) {
  if (options.subdivisions == 0) {
    return Status::InvalidArgument("subdivisions must be >= 1");
  }
  size_t bins = options.output_bins;
  if (bins == 0) {
    bins = std::min<size_t>(512, x.bin_count() + y.bin_count());
  }

  const double lo = x.edges().front() + y.edges().front();
  const double hi = x.edges().back() + y.edges().back();
  if (!(hi > lo)) {
    return Status::InvalidArgument("degenerate convolution support");
  }

  std::vector<double> edges(bins + 1);
  for (size_t i = 0; i <= bins; ++i) {
    edges[i] = lo + (hi - lo) * static_cast<double>(i) /
                        static_cast<double>(bins);
  }
  std::vector<double> probs(bins, 0.0);
  const double inv_width = static_cast<double>(bins) / (hi - lo);

  // Cloud-in-cell assignment: each point mass is split linearly between
  // the two output bins whose midpoints bracket it, which keeps the
  // result's mean exact (up to boundary clamping) and halves the CDF
  // discretization bias of nearest-bin assignment.
  const auto deposit = [&](double v, double mass) {
    const double p = (v - lo) * inv_width - 0.5;
    if (p <= 0.0) {
      probs[0] += mass;
      return;
    }
    if (p >= static_cast<double>(bins - 1)) {
      probs[bins - 1] += mass;
      return;
    }
    const size_t i0 = static_cast<size_t>(p);
    const double frac = p - static_cast<double>(i0);
    probs[i0] += mass * (1.0 - frac);
    probs[i0 + 1] += mass * frac;
  };

  const auto px = Discretize(x, options.subdivisions);
  const auto py = Discretize(y, options.subdivisions);
  for (const PointMass& a : px) {
    for (const PointMass& b : py) {
      deposit(a.value + b.value, a.mass * b.mass);
    }
  }
  return HistogramDist::Make(std::move(edges), std::move(probs));
}

}  // namespace dist
}  // namespace ausdb
