#include "src/dist/convolution.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/dist/kernels.h"

namespace ausdb {
namespace dist {

namespace {

// Discretized histogram in struct-of-arrays layout: parallel value/mass
// columns feed the deposit kernel as contiguous spans.
struct PointCloud {
  std::vector<double> values;
  std::vector<double> masses;
};

// Uniform bin mass split into `s` equal point masses at subcell
// midpoints.
PointCloud Discretize(const HistogramDist& h, size_t s) {
  PointCloud points;
  points.values.reserve(h.bin_count() * s);
  points.masses.reserve(h.bin_count() * s);
  for (size_t i = 0; i < h.bin_count(); ++i) {
    const double lo = h.edges()[i];
    const double width = h.BinWidth(i);
    const double mass = h.BinProb(i) / static_cast<double>(s);
    for (size_t k = 0; k < s; ++k) {
      const double mid =
          lo + width * (static_cast<double>(k) + 0.5) /
                   static_cast<double>(s);
      points.values.push_back(mid);
      points.masses.push_back(mass);
    }
  }
  return points;
}

bool AllEdgesFinite(const HistogramDist& h) {
  for (double e : h.edges()) {
    if (!std::isfinite(e)) return false;
  }
  return true;
}

}  // namespace

Result<HistogramDist> ConvolveHistograms(const HistogramDist& x,
                                         const HistogramDist& y,
                                         const ConvolveOptions& options) {
  if (options.subdivisions == 0) {
    return Status::InvalidArgument("subdivisions must be >= 1");
  }
  if (!AllEdgesFinite(x) || !AllEdgesFinite(y)) {
    return Status::InvalidArgument(
        "convolution inputs must have finite support edges");
  }
  size_t bins = options.output_bins;
  if (bins == 0) {
    bins = std::min<size_t>(512, x.bin_count() + y.bin_count());
  }

  const double lo = x.edges().front() + y.edges().front();
  const double hi = x.edges().back() + y.edges().back();
  if (!(hi > lo)) {
    return Status::InvalidArgument("degenerate convolution support");
  }
  if (bins == 1) {
    // A single bin can only hold all the mass; its (midpoint) mean is
    // the best one bin can represent.
    return HistogramDist::Make({lo, hi}, {1.0});
  }

  // The grid places the first and last bin *midpoints* on lo and hi, so
  // every point mass v in [lo, hi] lies within the midpoint hull and the
  // cloud-in-cell split below is exact — the old grid clamped boundary
  // mass into the edge bins, which biased the mean near the support
  // edges. The support stretches half a bin beyond [lo, hi] on each side
  // to make room for the edge midpoints.
  const double step = (hi - lo) / static_cast<double>(bins - 1);
  std::vector<double> edges(bins + 1);
  for (size_t i = 0; i <= bins; ++i) {
    edges[i] = lo + (static_cast<double>(i) - 0.5) * step;
  }
  const double inv_step = 1.0 / step;

  const auto px = Discretize(x, options.subdivisions);
  const auto py = Discretize(y, options.subdivisions);

  // Cloud-in-cell assignment: each point mass splits linearly between
  // the two output bins whose midpoints bracket it, which keeps the
  // result's mean exact and halves the CDF discretization bias of
  // nearest-bin assignment. The outer-point loop is tiled into chunks
  // whose boundaries depend only on the input size; each chunk deposits
  // into a private accumulator via the two-pass CicDepositTiled kernel
  // (index/weight computation vectorizes, the scatter replays in scalar
  // order) and the partials are merged in chunk order, so the result is
  // bit-identical at any thread count (including the no-pool serial
  // path).
  const size_t num_chunks = DeterministicChunkCount(px.values.size());
  std::vector<std::vector<double>> partials(num_chunks);
  RunChunked(options.pool, px.values.size(), num_chunks,
             [&](size_t chunk, size_t begin, size_t end) {
               std::vector<double>& probs = partials[chunk];
               probs.assign(bins, 0.0);
               CicDepositTiled(
                   std::span<const double>(px.values)
                       .subspan(begin, end - begin),
                   std::span<const double>(px.masses)
                       .subspan(begin, end - begin),
                   py.values, py.masses, lo, inv_step, probs);
             });

  std::vector<double> probs(bins, 0.0);
  for (size_t c = 0; c < num_chunks; ++c) {
    if (partials[c].empty()) continue;  // chunk count exceeded px size
    for (size_t i = 0; i < bins; ++i) probs[i] += partials[c][i];
  }
  return HistogramDist::Make(std::move(edges), std::move(probs));
}

}  // namespace dist
}  // namespace ausdb
