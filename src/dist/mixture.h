#ifndef AUSDB_DIST_MIXTURE_H_
#define AUSDB_DIST_MIXTURE_H_

#include <vector>

#include "src/common/result.h"
#include "src/dist/distribution.h"

namespace ausdb {
namespace dist {

/// \brief Weighted mixture of component distributions.
///
/// Used for multi-modal learned distributions (e.g. a Gaussian mixture as
/// in PODS-style uncertain streams, which the paper cites as a query
/// processing substrate) and by the bootstrap correctness argument
/// (Theorem 2: the concurrent bootstrap distribution is a mixture of
/// simple bootstrap distributions).
class MixtureDist final : public Distribution {
 public:
  /// Validates and builds. Weights must be >= 0 and sum to 1 (within 1e-9;
  /// renormalized); components must be non-null and match weights in size.
  static Result<MixtureDist> Make(std::vector<DistributionPtr> components,
                                  std::vector<double> weights);

  /// Equal-weight convenience factory.
  static Result<MixtureDist> MakeUniform(
      std::vector<DistributionPtr> components);

  DistributionKind kind() const override {
    return DistributionKind::kMixture;
  }
  double Mean() const override;
  double Variance() const override;
  double Cdf(double x) const override;
  double Sample(Rng& rng) const override;
  std::string ToString() const override;
  std::shared_ptr<Distribution> Clone() const override;

  const std::vector<DistributionPtr>& components() const {
    return components_;
  }
  const std::vector<double>& weights() const { return weights_; }

 private:
  MixtureDist(std::vector<DistributionPtr> components,
              std::vector<double> weights);

  std::vector<DistributionPtr> components_;
  std::vector<double> weights_;
  std::vector<double> cum_;
};

}  // namespace dist
}  // namespace ausdb

#endif  // AUSDB_DIST_MIXTURE_H_
