#include "src/dist/distribution.h"

#include <cmath>
#include <sstream>

namespace ausdb {
namespace dist {

std::string_view DistributionKindToString(DistributionKind kind) {
  switch (kind) {
    case DistributionKind::kPoint:
      return "point";
    case DistributionKind::kGaussian:
      return "gaussian";
    case DistributionKind::kHistogram:
      return "histogram";
    case DistributionKind::kDiscrete:
      return "discrete";
    case DistributionKind::kMixture:
      return "mixture";
    case DistributionKind::kEmpirical:
      return "empirical";
    case DistributionKind::kParametric:
      return "parametric";
  }
  return "unknown";
}

double Distribution::StdDev() const { return std::sqrt(Variance()); }

double Distribution::ProbBetween(double lo, double hi) const {
  if (hi < lo) return 0.0;
  return Cdf(hi) - Cdf(lo);
}

std::string PointDist::ToString() const {
  std::ostringstream os;
  os << "Point(" << value_ << ")";
  return os.str();
}

DistributionPtr MakePoint(double value) {
  return std::make_shared<PointDist>(value);
}

}  // namespace dist
}  // namespace ausdb
