#include "src/dist/discrete.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "src/common/math_util.h"

namespace ausdb {
namespace dist {

Result<DiscreteDist> DiscreteDist::Make(std::vector<double> values,
                                        std::vector<double> probs) {
  if (values.empty()) {
    return Status::InvalidArgument(
        "discrete distribution needs at least one value");
  }
  if (values.size() != probs.size()) {
    return Status::InvalidArgument(
        "discrete distribution needs matching values/probs sizes");
  }
  double total = 0.0;
  for (double p : probs) {
    if (p < 0.0 || !std::isfinite(p)) {
      return Status::InvalidArgument(
          "discrete probabilities must be finite and >= 0");
    }
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-9) {
    return Status::InvalidArgument(
        "discrete probabilities must sum to 1; got " +
        std::to_string(total));
  }

  // Sort by value and merge duplicates.
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> sorted_values;
  std::vector<double> sorted_probs;
  sorted_values.reserve(values.size());
  sorted_probs.reserve(values.size());
  for (size_t idx : order) {
    if (!sorted_values.empty() && sorted_values.back() == values[idx]) {
      sorted_probs.back() += probs[idx] / total;
    } else {
      sorted_values.push_back(values[idx]);
      sorted_probs.push_back(probs[idx] / total);
    }
  }
  return DiscreteDist(std::move(sorted_values), std::move(sorted_probs));
}

DiscreteDist::DiscreteDist(std::vector<double> values,
                           std::vector<double> probs)
    : values_(std::move(values)), probs_(std::move(probs)) {
  cum_.resize(probs_.size());
  double acc = 0.0;
  for (size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i];
    cum_[i] = acc;
  }
  cum_.back() = 1.0;
}

double DiscreteDist::Mean() const {
  double m = 0.0;
  for (size_t i = 0; i < values_.size(); ++i) m += probs_[i] * values_[i];
  return m;
}

double DiscreteDist::Variance() const {
  const double mean = Mean();
  double ex2 = 0.0;
  for (size_t i = 0; i < values_.size(); ++i) {
    ex2 += probs_[i] * Sq(values_[i]);
  }
  return std::max(0.0, ex2 - Sq(mean));
}

double DiscreteDist::Cdf(double x) const {
  // Largest index with values_[i] <= x.
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  if (it == values_.begin()) return 0.0;
  return cum_[static_cast<size_t>(it - values_.begin()) - 1];
}

double DiscreteDist::ProbLess(double c) const {
  const auto it = std::lower_bound(values_.begin(), values_.end(), c);
  if (it == values_.begin()) return 0.0;
  return cum_[static_cast<size_t>(it - values_.begin()) - 1];
}

double DiscreteDist::ProbEquals(double v) const {
  const auto it = std::lower_bound(values_.begin(), values_.end(), v);
  if (it == values_.end() || *it != v) return 0.0;
  return probs_[static_cast<size_t>(it - values_.begin())];
}

double DiscreteDist::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
  const size_t idx = std::min(static_cast<size_t>(it - cum_.begin()),
                              values_.size() - 1);
  return values_[idx];
}

std::string DiscreteDist::ToString() const {
  std::ostringstream os;
  os << "Discrete(support=" << values_.size() << ")";
  return os.str();
}

std::shared_ptr<Distribution> DiscreteDist::Clone() const {
  return std::shared_ptr<Distribution>(new DiscreteDist(values_, probs_));
}

Result<DiscreteDist> MakeBernoulli(double p) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("Bernoulli p must be in [0,1]");
  }
  return DiscreteDist::Make({0.0, 1.0}, {1.0 - p, p});
}

}  // namespace dist
}  // namespace ausdb
