#ifndef AUSDB_DIST_GAUSSIAN_H_
#define AUSDB_DIST_GAUSSIAN_H_

#include "src/dist/distribution.h"

namespace ausdb {
namespace dist {

/// \brief Normal distribution N(mu, sigma^2).
///
/// The workhorse family for closed-form query processing: sums, differences
/// and affine transforms of independent Gaussians stay Gaussian, which the
/// sliding-window AVG operator exploits (paper Section V-C).
class GaussianDist final : public Distribution {
 public:
  /// Requires variance >= 0.
  GaussianDist(double mean, double variance);

  DistributionKind kind() const override {
    return DistributionKind::kGaussian;
  }
  double Mean() const override { return mean_; }
  double Variance() const override { return variance_; }
  double Cdf(double x) const override;
  double Sample(Rng& rng) const override;
  std::string ToString() const override;
  std::shared_ptr<Distribution> Clone() const override;

  /// Probability density at x.
  double Pdf(double x) const;

  /// Inverse CDF.
  double Quantile(double p) const;

 private:
  double mean_;
  double variance_;
};

/// N(a.mean + b.mean, a.var + b.var): sum of independent Gaussians.
GaussianDist AddIndependent(const GaussianDist& a, const GaussianDist& b);

/// N(a.mean - b.mean, a.var + b.var): difference of independent Gaussians.
GaussianDist SubtractIndependent(const GaussianDist& a,
                                 const GaussianDist& b);

/// N(scale*g.mean + shift, scale^2 * g.var): affine transform.
GaussianDist Affine(const GaussianDist& g, double scale, double shift);

}  // namespace dist
}  // namespace ausdb

#endif  // AUSDB_DIST_GAUSSIAN_H_
