#ifndef AUSDB_DIST_KERNELS_H_
#define AUSDB_DIST_KERNELS_H_

#include <cstddef>
#include <span>

namespace ausdb {
namespace dist {

/// \brief Flat-array inner loops of the histogram hot paths.
///
/// Each kernel is the vectorization-friendly form of an existing scalar
/// loop and is REQUIRED to produce byte-identical doubles: same
/// floating-point expressions, same evaluation order, same rounding. The
/// speedup comes from removing virtual dispatch, hoisting loop-invariant
/// loads, and arranging the work as contiguous passes the compiler can
/// auto-vectorize — never from algebraic rewrites. bench_micro_ops gates
/// each kernel against an inlined replica of its scalar seed loop.

/// Evaluates the histogram CDF at each `xs[i]` into `out[i]`.
///
/// `edges` are the b+1 ascending bin edges, `probs` the b bin masses,
/// `cum` the inclusive prefix sums with cum.back() == 1.0 — exactly the
/// members of HistogramDist. Result is byte-identical to calling
/// HistogramDist::Cdf per element: the bin search is a branchless binary
/// search with the same upper_bound semantics, and the interpolation is
/// the identical expression `below + probs[bin] * ((x - e_lo) / width)`.
/// `out.size()` must be >= `xs.size()`.
void HistogramCdfMany(std::span<const double> edges,
                      std::span<const double> probs,
                      std::span<const double> cum,
                      std::span<const double> xs, std::span<double> out);

/// Cloud-in-cell deposit of the pairwise sum cloud {a_i + b_j} weighted
/// by {a_mass_i * b_mass_j} onto the regular grid starting at `lo` with
/// spacing `1/inv_step`, accumulating into `probs` (bins = probs.size(),
/// must be >= 2).
///
/// Two-pass tiling: pass 1 computes indices and split weights for a tile
/// of b-points into flat scratch arrays (auto-vectorizable — no memory
/// dependences), pass 2 scatters them in the original (a-major, b-minor)
/// order, so every floating-point add hits each accumulator in exactly
/// the order of the scalar seed loop and the deposited grid is
/// byte-identical.
void CicDepositTiled(std::span<const double> a_values,
                     std::span<const double> a_masses,
                     std::span<const double> b_values,
                     std::span<const double> b_masses, double lo,
                     double inv_step, std::span<double> probs);

}  // namespace dist
}  // namespace ausdb

#endif  // AUSDB_DIST_KERNELS_H_
