#include "src/dist/gmm_learner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/dist/gaussian.h"
#include "src/stats/descriptive.h"

namespace ausdb {
namespace dist {

namespace {

constexpr double kLogTwoPi = 1.8378770664093453;

double LogGaussianPdf(double x, double mean, double variance) {
  const double d = x - mean;
  return -0.5 * (kLogTwoPi + std::log(variance) + d * d / variance);
}

// log(sum exp(v)) with the usual max shift.
double LogSumExp(std::span<const double> v) {
  const double mx = *std::max_element(v.begin(), v.end());
  if (!std::isfinite(mx)) return mx;
  double sum = 0.0;
  for (double x : v) sum += std::exp(x - mx);
  return mx + std::log(sum);
}

// k-means++-style seeding: first seed uniform, then each next seed drawn
// with probability proportional to squared distance from the nearest
// chosen seed.
std::vector<double> SpreadSeeds(std::span<const double> data, size_t k,
                                Rng& rng) {
  std::vector<double> seeds;
  seeds.push_back(data[rng.NextBelow(data.size())]);
  std::vector<double> d2(data.size());
  while (seeds.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < data.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (double s : seeds) {
        best = std::min(best, (data[i] - s) * (data[i] - s));
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with existing seeds; duplicate one.
      seeds.push_back(seeds.back());
      continue;
    }
    double u = rng.NextDouble() * total;
    size_t pick = data.size() - 1;
    for (size_t i = 0; i < data.size(); ++i) {
      u -= d2[i];
      if (u <= 0.0) {
        pick = i;
        break;
      }
    }
    seeds.push_back(data[pick]);
  }
  return seeds;
}

}  // namespace

Result<LearnedDistribution> LearnGaussianMixture(
    std::span<const double> observations, const GmmLearnOptions& options,
    GmmFitInfo* fit_info) {
  const size_t n = observations.size();
  const size_t k = options.components;
  if (k == 0) {
    return Status::InvalidArgument("GMM needs at least one component");
  }
  if (n < 2 * k) {
    return Status::InsufficientData(
        "GMM with " + std::to_string(k) + " components needs at least " +
        std::to_string(2 * k) + " observations; got " + std::to_string(n));
  }

  const auto summary = stats::Summarize(observations);
  const double var_floor = std::max(
      options.variance_floor_fraction * summary.sample_variance, 1e-12);

  Rng rng(options.seed);
  std::vector<double> means = SpreadSeeds(observations, k, rng);
  std::vector<double> variances(k,
                                std::max(summary.sample_variance,
                                         var_floor));
  std::vector<double> weights(k, 1.0 / static_cast<double>(k));

  std::vector<double> log_terms(k);
  // Responsibilities, stored flat [i * k + j].
  std::vector<double> resp(n * k);

  double prev_ll = -std::numeric_limits<double>::infinity();
  GmmFitInfo info;

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // E step.
    double ll = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < k; ++j) {
        log_terms[j] = std::log(weights[j]) +
                       LogGaussianPdf(observations[i], means[j],
                                      variances[j]);
      }
      const double lse = LogSumExp(log_terms);
      ll += lse;
      for (size_t j = 0; j < k; ++j) {
        resp[i * k + j] = std::exp(log_terms[j] - lse);
      }
    }

    // M step.
    for (size_t j = 0; j < k; ++j) {
      double nj = 0.0, sum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        nj += resp[i * k + j];
        sum += resp[i * k + j] * observations[i];
      }
      if (nj < 1e-10) {
        // Dead component: re-seed it at a random observation.
        means[j] = observations[rng.NextBelow(n)];
        variances[j] = std::max(summary.sample_variance, var_floor);
        weights[j] = 1.0 / static_cast<double>(n);
        continue;
      }
      means[j] = sum / nj;
      double ss = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double d = observations[i] - means[j];
        ss += resp[i * k + j] * d * d;
      }
      variances[j] = std::max(ss / nj, var_floor);
      weights[j] = nj / static_cast<double>(n);
    }
    // Renormalize the weights (re-seeded components perturb the sum).
    double wsum = 0.0;
    for (double w : weights) wsum += w;
    for (double& w : weights) w /= wsum;

    info.iterations = iter + 1;
    info.log_likelihood = ll;
    if (std::abs(ll - prev_ll) <
        options.tolerance * static_cast<double>(n) *
            std::max(1.0, std::abs(ll) / static_cast<double>(n))) {
      info.converged = true;
      break;
    }
    prev_ll = ll;
  }

  std::vector<DistributionPtr> components;
  components.reserve(k);
  for (size_t j = 0; j < k; ++j) {
    components.push_back(
        std::make_shared<GaussianDist>(means[j], variances[j]));
  }
  AUSDB_ASSIGN_OR_RETURN(
      MixtureDist mixture,
      MixtureDist::Make(std::move(components), std::move(weights)));

  if (fit_info != nullptr) *fit_info = info;
  LearnedDistribution out;
  out.distribution = std::make_shared<MixtureDist>(std::move(mixture));
  out.sample_size = n;
  out.raw_sample = std::make_shared<const std::vector<double>>(
      observations.begin(), observations.end());
  return out;
}

}  // namespace dist
}  // namespace ausdb
