#ifndef AUSDB_DIST_KDE_LEARNER_H_
#define AUSDB_DIST_KDE_LEARNER_H_

#include <span>

#include "src/common/result.h"
#include "src/dist/learner.h"

namespace ausdb {
namespace dist {

/// Options of the kernel density learner.
struct KdeLearnOptions {
  /// Bandwidth; <= 0 selects Silverman's rule of thumb
  /// h = 0.9 * min(s, IQR/1.34) * n^(-1/5).
  double bandwidth = 0.0;
};

/// \brief Learns a Gaussian kernel density estimate — one of the
/// "complex" learning techniques the paper lists alongside histograms
/// (Section I cites kernel methods via Bishop).
///
/// The KDE is represented exactly as a MixtureDist of n equal-weight
/// Gaussians centered on the observations with variance h^2, so it flows
/// through the engine (CDF, moments, sampling) like any other
/// distribution. Requires at least 2 observations.
Result<LearnedDistribution> LearnKde(std::span<const double> observations,
                                     const KdeLearnOptions& options = {});

/// Silverman's rule-of-thumb bandwidth for a sample.
Result<double> SilvermanBandwidth(std::span<const double> observations);

}  // namespace dist
}  // namespace ausdb

#endif  // AUSDB_DIST_KDE_LEARNER_H_
