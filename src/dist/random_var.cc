#include "src/dist/random_var.h"

#include <algorithm>
#include <sstream>

#include "src/common/logging.h"

namespace ausdb {
namespace dist {

RandomVar::RandomVar()
    : dist_(MakePoint(0.0)), sample_size_(0) {}

RandomVar::RandomVar(DistributionPtr distribution, size_t sample_size)
    : dist_(std::move(distribution)), sample_size_(sample_size) {
  AUSDB_CHECK(dist_ != nullptr) << "RandomVar distribution must not be null";
}

RandomVar::RandomVar(const LearnedDistribution& learned)
    : dist_(learned.distribution),
      sample_size_(learned.sample_size),
      raw_(learned.raw_sample) {
  AUSDB_CHECK(dist_ != nullptr) << "RandomVar distribution must not be null";
}

RandomVar RandomVar::Certain(double value) {
  return RandomVar(MakePoint(value), kCertainSampleSize);
}

bool RandomVar::is_certain() const {
  return dist_->kind() == DistributionKind::kPoint;
}

Result<double> RandomVar::certain_value() const {
  if (!is_certain()) {
    return Status::TypeError("random variable is not deterministic: " +
                             dist_->ToString());
  }
  return static_cast<const PointDist&>(*dist_).value();
}

std::string RandomVar::ToString() const {
  std::ostringstream os;
  os << dist_->ToString();
  if (sample_size_ == kCertainSampleSize) {
    os << " [certain]";
  } else {
    os << " [n=" << sample_size_ << "]";
  }
  return os.str();
}

size_t RandomVar::CombineSampleSizes(size_t a, size_t b) {
  return std::min(a, b);
}

}  // namespace dist
}  // namespace ausdb
