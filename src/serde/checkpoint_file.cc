#include "src/serde/checkpoint_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/common/crc32c.h"
#include "src/common/logging.h"

namespace ausdb {
namespace serde {

namespace {

constexpr char kMagic[8] = {'A', 'U', 'S', 'D', 'B', 'C', 'K', 'P'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderSize = 8 + 4 + 8;            // magic+version+length
constexpr size_t kEnvelopeSize = kHeaderSize + 4;    // + crc

void AppendLe32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void AppendLe64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t ReadLe32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t ReadLe64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Internal(what + " '" + path + "': " +
                          std::strerror(errno));
}

/// write(2) until everything is on its way to the kernel.
Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncPath(const std::string& path, int flags) {
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) return ErrnoStatus("open for fsync", path);
  if (::fsync(fd) != 0) {
    const Status st = ErrnoStatus("fsync", path);
    ::close(fd);
    return st;
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace

std::string EncodeCheckpointFile(std::string_view payload) {
  std::string out;
  out.reserve(kEnvelopeSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  AppendLe32(out, kFormatVersion);
  AppendLe64(out, payload.size());
  uint32_t crc = Crc32c(out.data(), kHeaderSize);
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  AppendLe32(out, crc);
  out.append(payload);
  return out;
}

Result<std::string> DecodeCheckpointFile(std::string_view file_bytes) {
  if (file_bytes.size() < kEnvelopeSize) {
    return Status::Corruption(
        "checkpoint file truncated: " + std::to_string(file_bytes.size()) +
        " bytes, envelope needs " + std::to_string(kEnvelopeSize));
  }
  if (std::memcmp(file_bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("checkpoint file has bad magic");
  }
  const uint32_t version = ReadLe32(file_bytes.data() + 8);
  if (version != kFormatVersion) {
    return Status::Corruption("unknown checkpoint file version " +
                              std::to_string(version));
  }
  const uint64_t declared = ReadLe64(file_bytes.data() + 12);
  const uint64_t present = file_bytes.size() - kEnvelopeSize;
  if (declared != present) {
    // Covers both truncation (declared > present) and trailing garbage;
    // checked before any payload-sized work so a corrupt length field
    // cannot drive a huge allocation.
    return Status::Corruption(
        "checkpoint payload length mismatch: header declares " +
        std::to_string(declared) + " bytes, file carries " +
        std::to_string(present));
  }
  const uint32_t stored_crc = ReadLe32(file_bytes.data() + kHeaderSize);
  uint32_t crc = Crc32c(file_bytes.data(), kHeaderSize);
  crc = Crc32cExtend(crc, file_bytes.data() + kEnvelopeSize, declared);
  if (crc != stored_crc) {
    return Status::Corruption("checkpoint CRC32C mismatch");
  }
  return std::string(file_bytes.substr(kEnvelopeSize));
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       CrashPointInjector* crash) {
  if (crash) AUSDB_RETURN_NOT_OK(crash->CrashIf("before-write"));

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);

  if (crash && crash->AtCrashPoint("mid-write")) {
    // A real crash mid-write leaves a torn temp file. Emulate the worst
    // case: half the bytes, then death before rename.
    const Status st = WriteAll(fd, bytes.data(), bytes.size() / 2, tmp);
    ::close(fd);
    if (!st.ok()) return st;
    return CrashPointInjector::CrashStatus("mid-write");
  }

  Status st = WriteAll(fd, bytes.data(), bytes.size(), tmp);
  if (st.ok() && ::fsync(fd) != 0) st = ErrnoStatus("fsync", tmp);
  ::close(fd);
  if (!st.ok()) return st;

  if (crash) AUSDB_RETURN_NOT_OK(crash->CrashIf("pre-rename"));

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return ErrnoStatus("rename to", path);
  }
  // The rename is durable only once the directory entry is; fsync the
  // parent directory.
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  AUSDB_RETURN_NOT_OK(FsyncPath(dir.empty() ? "." : dir,
                                O_RDONLY | O_DIRECTORY));

  if (crash) AUSDB_RETURN_NOT_OK(crash->CrashIf("post-rename"));
  return Status::OK();
}

CheckpointStorage::CheckpointStorage(std::string directory,
                                     std::string prefix,
                                     CheckpointStorageOptions options)
    : directory_(std::move(directory)),
      prefix_(std::move(prefix)),
      options_(options) {
  if (options_.metrics != nullptr) {
    obs::MetricRegistry* reg = options_.metrics;
    const std::vector<obs::Label> labels = {{"store", prefix_}};
    m_bytes_ =
        reg->GetCounter("ausdb_checkpoint_written_bytes_total", labels,
                        "Envelope bytes durably written (payload + header).");
    m_generations_ =
        reg->GetCounter("ausdb_checkpoint_generations_total", labels,
                        "Checkpoint generations successfully written.");
    m_write_seconds_ = reg->GetHistogram(
        "ausdb_checkpoint_write_seconds", labels,
        obs::DefaultLatencySecondsBoundaries(),
        "Durable checkpoint write latency (encode + write + fsync + "
        "rename), in seconds.");
    m_fallbacks_ = reg->GetCounter(
        "ausdb_checkpoint_fallbacks_total", labels,
        "Generations skipped as corrupt/unreadable during recovery.");
  }
}

std::string CheckpointStorage::GenerationPath(uint64_t generation) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%010llu",
                static_cast<unsigned long long>(generation));
  return directory_ + "/" + prefix_ + "." + buf + ".ckpt";
}

std::string CheckpointStorage::TempPath() const {
  return directory_ + "/" + prefix_ + ".ckpt";
}

std::vector<uint64_t> CheckpointStorage::ListGenerations() const {
  std::vector<uint64_t> generations;
  std::error_code ec;
  std::filesystem::directory_iterator it(directory_, ec);
  if (ec) return generations;
  const std::string head = prefix_ + ".";
  const std::string tail = ".ckpt";
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= head.size() + tail.size()) continue;
    if (name.compare(0, head.size(), head) != 0) continue;
    if (name.compare(name.size() - tail.size(), tail.size(), tail) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(head.size(), name.size() - head.size() - tail.size());
    uint64_t g = 0;
    bool numeric = !digits.empty();
    for (char c : digits) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      g = g * 10 + static_cast<uint64_t>(c - '0');
    }
    if (numeric) generations.push_back(g);
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

Result<uint64_t> CheckpointStorage::Write(std::string_view payload) {
  const std::vector<uint64_t> existing = ListGenerations();
  const uint64_t generation = existing.empty() ? 1 : existing.back() + 1;

  const uint64_t start_nanos =
      m_write_seconds_ ? options_.clock->NowNanos() : 0;
  const std::string encoded = EncodeCheckpointFile(payload);
  AUSDB_RETURN_NOT_OK(AtomicWriteFile(GenerationPath(generation), encoded,
                                      options_.crash_points));
  if (m_write_seconds_) {
    m_write_seconds_->Record(
        obs::NanosToSeconds(options_.clock->NowNanos() - start_nanos));
  }
  if (m_bytes_) m_bytes_->Increment(encoded.size());
  if (m_generations_) m_generations_->Increment();

  // Rotate: the new generation is durable, so generations beyond the
  // retention window can go. A crash between rename and this point only
  // leaves extra old generations behind — never fewer.
  const size_t keep = std::max<size_t>(1, options_.keep_generations);
  if (existing.size() + 1 > keep) {
    const size_t drop = existing.size() + 1 - keep;
    for (size_t i = 0; i < drop; ++i) {
      std::error_code ec;
      std::filesystem::remove(GenerationPath(existing[i]), ec);
    }
  }
  return generation;
}

Result<std::string> CheckpointStorage::ReadGeneration(
    uint64_t generation) const {
  const std::string path = GenerationPath(generation);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("checkpoint generation file '" + path + "'");
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("read of '" + path + "' failed");
  }
  return DecodeCheckpointFile(bytes);
}

Result<LoadedCheckpoint> CheckpointStorage::ReadNewestIntact() const {
  const std::vector<uint64_t> generations = ListGenerations();
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    Result<std::string> payload = ReadGeneration(*it);
    if (payload.ok()) {
      return LoadedCheckpoint{*it, std::move(payload).ValueOrDie()};
    }
    // Corrupt or vanished: fall back to the previous generation.
    if (m_fallbacks_) m_fallbacks_->Increment();
    AUSDB_LOG(WARN) << "checkpoint generation " << *it << " of '" << prefix_
                    << "' unusable, falling back: "
                    << payload.status().ToString();
  }
  return Status::NotFound("no intact checkpoint generation under '" +
                          directory_ + "' with prefix '" + prefix_ + "'");
}

}  // namespace serde
}  // namespace ausdb
