#ifndef AUSDB_SERDE_JSON_WRITER_H_
#define AUSDB_SERDE_JSON_WRITER_H_

#include <string>

#include "src/accuracy/accuracy_info.h"
#include "src/dist/distribution.h"
#include "src/engine/schema.h"
#include "src/engine/tuple.h"
#include "src/expr/value.h"

namespace ausdb {
namespace serde {

/// \brief JSON rendering of engine objects — the result-export surface.
///
/// AUSDB results are richer than scalars (distributions, intervals,
/// membership probabilities, significance outcomes); downstream tools
/// consume them as JSON. The writer is lossless for histogram/Gaussian/
/// discrete/point distributions; empirical and mixture distributions are
/// summarized (kind + moments + size), since their full payload is
/// usually Monte Carlo bulk.

/// A distribution as JSON, e.g.
/// {"kind":"gaussian","mean":1.0,"variance":2.0}.
std::string ToJson(const dist::Distribution& d);

/// A confidence interval: {"lo":..,"hi":..,"confidence":..}.
std::string ToJson(const accuracy::ConfidenceInterval& ci);

/// Accuracy information with whichever intervals are present.
std::string ToJson(const accuracy::AccuracyInfo& info);

/// A value (null/bool/number/string/random variable).
std::string ToJson(const expr::Value& value);

/// A tuple as an object keyed by field name, with "_prob", "_prob_ci",
/// "_significance" and per-field "_accuracy" members when present.
std::string ToJson(const engine::Tuple& tuple,
                   const engine::Schema& schema);

/// Escapes a string for embedding in JSON (adds the quotes).
std::string JsonQuote(const std::string& s);

}  // namespace serde
}  // namespace ausdb

#endif  // AUSDB_SERDE_JSON_WRITER_H_
