#include "src/serde/tuple_codec.h"

#include <limits>
#include <memory>

#include "src/dist/gaussian.h"

namespace ausdb {
namespace serde {

namespace {

Status WriteValue(CheckpointWriter& w, const expr::Value& v) {
  switch (v.type()) {
    case expr::ValueType::kNull:
      w.Token("n");
      return Status::OK();
    case expr::ValueType::kBool: {
      AUSDB_ASSIGN_OR_RETURN(bool b, v.bool_value());
      w.Token("b");
      w.Uint(b ? 1 : 0);
      return Status::OK();
    }
    case expr::ValueType::kDouble: {
      AUSDB_ASSIGN_OR_RETURN(double d, v.double_value());
      w.Token("d");
      w.Double(d);
      return Status::OK();
    }
    case expr::ValueType::kString: {
      AUSDB_ASSIGN_OR_RETURN(std::string s, v.string_value());
      w.Token("s");
      w.Bytes(s);
      return Status::OK();
    }
    case expr::ValueType::kRandomVar: {
      AUSDB_ASSIGN_OR_RETURN(dist::RandomVar rv, v.random_var());
      const dist::DistributionKind kind = rv.distribution()->kind();
      if (kind == dist::DistributionKind::kPoint) {
        w.Token("rp");
        w.Double(rv.Mean());
        w.Uint(rv.sample_size());
      } else if (kind == dist::DistributionKind::kGaussian) {
        w.Token("rg");
        w.Double(rv.Mean());
        w.Double(rv.Variance());
        w.Uint(rv.sample_size());
      } else {
        return Status::NotImplemented(
            "tuple checkpoint supports point/Gaussian random vars; got " +
            rv.distribution()->ToString());
      }
      // Retained raw sample (bootstrapping keeps the observations on the
      // tuple): 0 = none, m+1 = m retained points — the +1 keeps "empty
      // vector retained" distinct from "no vector".
      const auto& raw = rv.raw_sample();
      w.Uint(raw == nullptr ? 0 : raw->size() + 1);
      if (raw != nullptr) {
        for (double x : *raw) w.Double(x);
      }
      return Status::OK();
    }
  }
  return Status::NotImplemented("unknown value type");
}

Result<expr::Value> ReadValue(CheckpointReader& r) {
  AUSDB_ASSIGN_OR_RETURN(std::string tag, r.NextToken());
  if (tag == "n") return expr::Value::Null();
  if (tag == "b") {
    AUSDB_ASSIGN_OR_RETURN(uint64_t b, r.NextUint());
    return expr::Value(b != 0);
  }
  if (tag == "d") {
    AUSDB_ASSIGN_OR_RETURN(double d, r.NextDouble());
    return expr::Value(d);
  }
  if (tag == "s") {
    AUSDB_ASSIGN_OR_RETURN(std::string s, r.NextBytes());
    return expr::Value(std::move(s));
  }
  if (tag == "rp" || tag == "rg") {
    dist::RandomVar rv(dist::MakePoint(0.0), 0);
    if (tag == "rp") {
      AUSDB_ASSIGN_OR_RETURN(double value, r.NextDouble());
      AUSDB_ASSIGN_OR_RETURN(uint64_t n, r.NextUint());
      rv = dist::RandomVar(dist::MakePoint(value), static_cast<size_t>(n));
    } else {
      AUSDB_ASSIGN_OR_RETURN(double mean, r.NextDouble());
      AUSDB_ASSIGN_OR_RETURN(double variance, r.NextDouble());
      AUSDB_ASSIGN_OR_RETURN(uint64_t n, r.NextUint());
      rv = dist::RandomVar(
          std::make_shared<dist::GaussianDist>(mean, variance),
          static_cast<size_t>(n));
    }
    AUSDB_ASSIGN_OR_RETURN(uint64_t raw_tag, r.NextUint());
    if (raw_tag > 0) {
      std::vector<double> raw(static_cast<size_t>(raw_tag) - 1);
      for (double& x : raw) {
        AUSDB_ASSIGN_OR_RETURN(x, r.NextDouble());
      }
      rv.set_raw_sample(
          std::make_shared<const std::vector<double>>(std::move(raw)));
    }
    return expr::Value(std::move(rv));
  }
  return Status::Corruption("unknown tuple-checkpoint value tag '" + tag +
                            "'");
}

}  // namespace

Status WriteTupleCheckpoint(CheckpointWriter& w,
                            const engine::Tuple& tuple) {
  if (tuple.membership_ci().has_value() ||
      tuple.significance().has_value()) {
    return Status::NotImplemented(
        "tuple checkpoint cannot carry accuracy/significance annotations");
  }
  for (const auto& acc : tuple.accuracy()) {
    if (acc.has_value()) {
      return Status::NotImplemented(
          "tuple checkpoint cannot carry accuracy annotations");
    }
  }
  // Rung-0 tuples keep the original "tup" record byte-for-byte, so
  // ungoverned plans' checkpoints are unchanged; a non-zero precision
  // rung (stamped by govern::GovernorGate) upgrades the record to "tu2"
  // — dropping the stamp would silently restore a degraded tuple at
  // full precision, breaking the bit-exact restore contract.
  if (tuple.precision_rung() != 0) {
    w.Token("tu2");
    w.Uint(tuple.precision_rung());
  } else {
    w.Token("tup");
  }
  w.Uint(tuple.sequence());
  w.Double(tuple.membership_prob());
  w.Uint(tuple.membership_df_n());
  w.Uint(tuple.num_values());
  for (const expr::Value& v : tuple.values()) {
    AUSDB_RETURN_NOT_OK(WriteValue(w, v));
  }
  return Status::OK();
}

Result<engine::Tuple> ReadTupleCheckpoint(CheckpointReader& r) {
  AUSDB_ASSIGN_OR_RETURN(std::string tag, r.NextToken());
  uint64_t precision_rung = 0;
  if (tag == "tu2") {
    AUSDB_ASSIGN_OR_RETURN(precision_rung, r.NextUint());
    if (precision_rung > std::numeric_limits<uint32_t>::max()) {
      return Status::Corruption("tuple checkpoint precision rung " +
                                std::to_string(precision_rung) +
                                " out of range");
    }
  } else if (tag != "tup") {
    return Status::Corruption("unknown tuple-checkpoint tag '" + tag +
                              "'");
  }
  AUSDB_ASSIGN_OR_RETURN(uint64_t sequence, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(double membership_prob, r.NextDouble());
  AUSDB_ASSIGN_OR_RETURN(uint64_t membership_df_n, r.NextUint());
  // Each value is at least a one-letter tag plus separator.
  AUSDB_ASSIGN_OR_RETURN(uint64_t count, r.NextCount(2));
  std::vector<expr::Value> values;
  values.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    AUSDB_ASSIGN_OR_RETURN(expr::Value v, ReadValue(r));
    values.push_back(std::move(v));
  }
  engine::Tuple t(std::move(values));
  t.set_sequence(sequence);
  t.set_membership_prob(membership_prob);
  t.set_membership_df_n(static_cast<size_t>(membership_df_n));
  t.set_precision_rung(static_cast<uint32_t>(precision_rung));
  return t;
}

}  // namespace serde
}  // namespace ausdb
