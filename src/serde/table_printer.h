#ifndef AUSDB_SERDE_TABLE_PRINTER_H_
#define AUSDB_SERDE_TABLE_PRINTER_H_

#include <iosfwd>
#include <vector>

#include "src/engine/schema.h"
#include "src/engine/tuple.h"

namespace ausdb {
namespace serde {

/// Presentation knobs for PrintTable.
struct TablePrintOptions {
  /// Include the membership-probability column when any tuple has one.
  bool show_membership = true;
  /// Include per-field accuracy columns when annotated.
  bool show_accuracy = true;
  /// Maximum rendered width per cell (longer cells are truncated with
  /// an ellipsis).
  size_t max_cell_width = 40;
};

/// \brief Renders a query result as an aligned text table (the CLI /
/// example output path).
void PrintTable(std::ostream& os, const engine::Schema& schema,
                const std::vector<engine::Tuple>& tuples,
                const TablePrintOptions& options = {});

}  // namespace serde
}  // namespace ausdb

#endif  // AUSDB_SERDE_TABLE_PRINTER_H_
