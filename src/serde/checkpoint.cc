#include "src/serde/checkpoint.h"

#include <cstdio>
#include <cstring>

namespace ausdb {
namespace serde {

namespace {

bool IsSpace(char c) { return c == ' ' || c == '\n' || c == '\t'; }

}  // namespace

void CheckpointWriter::Token(std::string_view token) {
  if (!out_.empty()) out_.push_back(' ');
  out_.append(token);
}

void CheckpointWriter::Uint(uint64_t v) { Token(std::to_string(v)); }

void CheckpointWriter::Double(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  Token(buf);
}

void CheckpointWriter::Bytes(std::string_view bytes) {
  if (!out_.empty()) out_.push_back(' ');
  out_.append(std::to_string(bytes.size()));
  out_.push_back(':');
  out_.append(bytes);
}

void CheckpointReader::SkipWhitespace() {
  while (pos_ < blob_.size() && IsSpace(blob_[pos_])) ++pos_;
}

bool CheckpointReader::AtEnd() {
  SkipWhitespace();
  return pos_ >= blob_.size();
}

Result<std::string> CheckpointReader::NextToken() {
  SkipWhitespace();
  if (pos_ >= blob_.size()) {
    return Status::Corruption("checkpoint truncated: expected token");
  }
  const size_t start = pos_;
  while (pos_ < blob_.size() && !IsSpace(blob_[pos_])) ++pos_;
  return std::string(blob_.substr(start, pos_ - start));
}

Result<uint64_t> CheckpointReader::NextUint() {
  AUSDB_ASSIGN_OR_RETURN(std::string tok, NextToken());
  uint64_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') {
      return Status::Corruption("checkpoint: '" + tok +
                                "' is not an unsigned integer");
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  if (tok.empty()) {
    return Status::Corruption("checkpoint: empty integer token");
  }
  return v;
}

Result<double> CheckpointReader::NextDouble() {
  AUSDB_ASSIGN_OR_RETURN(std::string tok, NextToken());
  if (tok.size() != 16) {
    return Status::Corruption("checkpoint: '" + tok +
                              "' is not a 16-digit hex double");
  }
  uint64_t bits = 0;
  for (char c : tok) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return Status::Corruption("checkpoint: '" + tok +
                                "' is not a 16-digit hex double");
    }
    bits = (bits << 4) | static_cast<uint64_t>(digit);
  }
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<uint64_t> CheckpointReader::NextCount(size_t min_bytes_per_element) {
  AUSDB_ASSIGN_OR_RETURN(uint64_t count, NextUint());
  if (min_bytes_per_element == 0) min_bytes_per_element = 1;
  // Each remaining element occupies at least min_bytes_per_element bytes
  // of blob, so a count beyond remaining()/min implies a damaged count
  // field; reject it before the caller sizes anything from it.
  if (count > remaining() / min_bytes_per_element) {
    return Status::Corruption(
        "checkpoint: count " + std::to_string(count) +
        " cannot fit in " + std::to_string(remaining()) +
        " remaining bytes");
  }
  return count;
}

Result<std::string> CheckpointReader::NextBytes() {
  SkipWhitespace();
  size_t len = 0;
  bool any_digit = false;
  while (pos_ < blob_.size() && blob_[pos_] >= '0' && blob_[pos_] <= '9') {
    len = len * 10 + static_cast<size_t>(blob_[pos_] - '0');
    ++pos_;
    any_digit = true;
  }
  if (!any_digit || pos_ >= blob_.size() || blob_[pos_] != ':') {
    return Status::Corruption(
        "checkpoint: expected length-prefixed byte string");
  }
  ++pos_;  // ':'
  if (blob_.size() - pos_ < len) {
    return Status::Corruption("checkpoint truncated: byte string of " +
                              std::to_string(len) + " bytes");
  }
  std::string bytes(blob_.substr(pos_, len));
  pos_ += len;
  return bytes;
}

Status CheckpointReader::ExpectToken(std::string_view expected) {
  AUSDB_ASSIGN_OR_RETURN(std::string tok, NextToken());
  if (tok != expected) {
    return Status::Corruption("checkpoint: expected '" +
                              std::string(expected) + "', got '" + tok +
                              "'");
  }
  return Status::OK();
}

}  // namespace serde
}  // namespace ausdb
