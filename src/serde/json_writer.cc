#include "src/serde/json_writer.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "src/dist/discrete.h"
#include "src/dist/gaussian.h"
#include "src/dist/histogram.h"

namespace ausdb {
namespace serde {

namespace {

// JSON has no Infinity/NaN; render them as null. Uses the shortest
// representation that round-trips (15 digits when lossless, 17
// otherwise), so 0.9 prints as "0.9" rather than "0.9000...02".
std::string Num(double v) {
  if (!std::isfinite(v)) return "null";
  for (int precision : {15, 16, 17}) {
    std::ostringstream os;
    os.precision(precision);
    os << v;
    // strtod never throws (subnormal round-trips can raise ERANGE in
    // stod on some libraries).
    const std::string s = os.str();
    if (std::strtod(s.c_str(), nullptr) == v) return s;
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void AppendArray(std::ostringstream& os, const std::vector<double>& v) {
  os << "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) os << ",";
    os << Num(v[i]);
  }
  os << "]";
}

}  // namespace

std::string JsonQuote(const std::string& s) {
  std::ostringstream os;
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
  return os.str();
}

std::string ToJson(const dist::Distribution& d) {
  std::ostringstream os;
  os << "{\"kind\":"
     << JsonQuote(std::string(DistributionKindToString(d.kind())));
  switch (d.kind()) {
    case dist::DistributionKind::kPoint:
      os << ",\"value\":" << Num(d.Mean());
      break;
    case dist::DistributionKind::kGaussian:
      os << ",\"mean\":" << Num(d.Mean())
         << ",\"variance\":" << Num(d.Variance());
      break;
    case dist::DistributionKind::kHistogram: {
      const auto& h = static_cast<const dist::HistogramDist&>(d);
      os << ",\"edges\":";
      AppendArray(os, h.edges());
      os << ",\"probs\":";
      AppendArray(os, h.probs());
      break;
    }
    case dist::DistributionKind::kDiscrete: {
      const auto& disc = static_cast<const dist::DiscreteDist&>(d);
      os << ",\"values\":";
      AppendArray(os, disc.values());
      os << ",\"probs\":";
      AppendArray(os, disc.probs());
      break;
    }
    default:
      // Summarized kinds: moments only.
      os << ",\"mean\":" << Num(d.Mean())
         << ",\"variance\":" << Num(d.Variance());
      break;
  }
  os << "}";
  return os.str();
}

std::string ToJson(const accuracy::ConfidenceInterval& ci) {
  std::ostringstream os;
  os << "{\"lo\":" << Num(ci.lo) << ",\"hi\":" << Num(ci.hi)
     << ",\"confidence\":" << Num(ci.confidence) << "}";
  return os.str();
}

std::string ToJson(const accuracy::AccuracyInfo& info) {
  std::ostringstream os;
  os << "{\"n\":" << info.sample_size << ",\"method\":"
     << (info.method == accuracy::AccuracyMethod::kAnalytical
             ? "\"analytical\""
             : "\"bootstrap\"");
  if (info.mean_ci) os << ",\"mean_ci\":" << ToJson(*info.mean_ci);
  if (info.variance_ci) {
    os << ",\"variance_ci\":" << ToJson(*info.variance_ci);
  }
  if (!info.bin_cis.empty()) {
    os << ",\"bin_cis\":[";
    for (size_t i = 0; i < info.bin_cis.size(); ++i) {
      if (i > 0) os << ",";
      os << ToJson(info.bin_cis[i]);
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

std::string ToJson(const expr::Value& value) {
  switch (value.type()) {
    case expr::ValueType::kNull:
      return "null";
    case expr::ValueType::kBool:
      return *value.bool_value() ? "true" : "false";
    case expr::ValueType::kDouble:
      return Num(*value.double_value());
    case expr::ValueType::kString:
      return JsonQuote(*value.string_value());
    case expr::ValueType::kRandomVar: {
      const auto rv = *value.random_var();
      std::ostringstream os;
      os << "{\"distribution\":" << ToJson(*rv.distribution());
      if (rv.sample_size() != dist::RandomVar::kCertainSampleSize) {
        os << ",\"n\":" << rv.sample_size();
      }
      os << "}";
      return os.str();
    }
  }
  return "null";
}

std::string ToJson(const engine::Tuple& tuple,
                   const engine::Schema& schema) {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < tuple.num_values() && i < schema.num_fields();
       ++i) {
    if (i > 0) os << ",";
    os << JsonQuote(schema.field(i).name) << ":"
       << ToJson(tuple.value(i));
    if (i < tuple.accuracy().size() && tuple.accuracy()[i].has_value()) {
      os << "," << JsonQuote(schema.field(i).name + "_accuracy") << ":"
         << ToJson(*tuple.accuracy()[i]);
    }
  }
  if (tuple.membership_prob() != 1.0 ||
      tuple.membership_df_n() != dist::RandomVar::kCertainSampleSize) {
    os << ",\"_prob\":" << Num(tuple.membership_prob());
  }
  if (tuple.membership_ci().has_value()) {
    os << ",\"_prob_ci\":" << ToJson(*tuple.membership_ci());
  }
  if (tuple.significance().has_value()) {
    os << ",\"_significance\":"
       << JsonQuote(std::string(
              hypothesis::TestOutcomeToString(*tuple.significance())));
  }
  os << "}";
  return os.str();
}

}  // namespace serde
}  // namespace ausdb
