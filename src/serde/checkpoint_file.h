#ifndef AUSDB_SERDE_CHECKPOINT_FILE_H_
#define AUSDB_SERDE_CHECKPOINT_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/result.h"
#include "src/obs/clock.h"
#include "src/obs/metrics.h"

namespace ausdb {
namespace serde {

/// \brief Durable checkpoint *file* format and generation store.
///
/// A checkpoint that never reaches disk durably, or that decodes garbage
/// after a torn write, is worse than no checkpoint: recovery would
/// silently resume from corrupt state. The file layer therefore wraps
/// every checkpoint payload in a checksummed envelope and only ever
/// publishes complete files:
///
/// ```
/// offset  size  field
/// ------  ----  ------------------------------------------------------
///      0     8  magic "AUSDBCKP"
///      8     4  format version (little-endian u32, currently 1)
///     12     8  payload length (little-endian u64)
///     20     4  CRC32C over bytes [0, 20) + payload (little-endian u32)
///     24     n  payload
/// ```
///
/// The CRC covers the header fields as well as the payload, so a bit
/// flip anywhere in the file — including in the length field itself — is
/// detected. Decode rejects, with StatusCode::kCorruption: short files,
/// bad magic, unknown versions, a declared length exceeding the bytes
/// present, trailing garbage, and any checksum mismatch.

/// Serializes `payload` into the envelope above.
std::string EncodeCheckpointFile(std::string_view payload);

/// Validates the envelope and returns the payload, or kCorruption.
Result<std::string> DecodeCheckpointFile(std::string_view file_bytes);

/// \brief Writes `bytes` to `path` durably and atomically: temp file in
/// the same directory, write, fsync, rename over `path`, fsync the
/// directory. Readers never observe a partial file at `path`.
///
/// `crash` marks the write's crash sites for recovery tests (see
/// CrashPointInjector): before any I/O, mid-write (a torn temp file is
/// left behind), after fsync but before the rename, and after the
/// rename. Production callers pass nullptr.
Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       CrashPointInjector* crash = nullptr);

/// One checkpoint read back from the store.
struct LoadedCheckpoint {
  uint64_t generation = 0;
  std::string payload;
};

/// Options of CheckpointStorage.
struct CheckpointStorageOptions {
  /// Generations retained on disk. Older generations are the fallback
  /// when the newest is corrupt, so keep at least 2; rotation deletes
  /// beyond this count after each successful write.
  size_t keep_generations = 3;

  /// Crash sites for recovery tests; nullptr in production.
  CrashPointInjector* crash_points = nullptr;

  /// When non-null, the store records `ausdb_checkpoint_*` metrics
  /// labeled `{store=prefix}`: bytes written, write-duration histogram
  /// (timed on `clock`), generations written, and corrupt generations
  /// skipped by the fallback walk. Write-only; the registry and clock
  /// must outlive the store.
  obs::MetricRegistry* metrics = nullptr;
  const obs::Clock* clock = obs::SteadyClock::Instance();
};

/// \brief Rotated store of checkpoint generations in one directory.
///
/// Generation g lives at `<directory>/<prefix>.<g, zero-padded>.ckpt`;
/// writes go through AtomicWriteFile, so a crash at any instant leaves
/// either the complete new generation or the previous state (plus,
/// at worst, a torn `.tmp` file that readers ignore and the next write
/// overwrites). ReadNewestIntact walks generations newest-first and
/// returns the first one whose envelope decodes cleanly — the
/// generation-by-generation fallback that makes a corrupt or torn
/// newest checkpoint a degradation, not a recovery failure.
class CheckpointStorage {
 public:
  /// `directory` must exist. `prefix` distinguishes multiple stores
  /// sharing a directory.
  CheckpointStorage(std::string directory, std::string prefix,
                    CheckpointStorageOptions options = {});

  /// Durably writes `payload` as the next generation and rotates old
  /// generations out. Returns the new generation number.
  Result<uint64_t> Write(std::string_view payload);

  /// Generation numbers currently on disk, ascending. Unreadable
  /// directories yield an empty list (a fresh store).
  std::vector<uint64_t> ListGenerations() const;

  /// Reads and validates one generation; kNotFound if the file is
  /// missing, kCorruption if it fails validation.
  Result<std::string> ReadGeneration(uint64_t generation) const;

  /// Newest generation that decodes intact, falling back generation by
  /// generation; kNotFound when no intact checkpoint exists.
  Result<LoadedCheckpoint> ReadNewestIntact() const;

  /// Path of generation `g` (for tests that corrupt files in place).
  std::string GenerationPath(uint64_t generation) const;

  const std::string& directory() const { return directory_; }

 private:
  std::string TempPath() const;

  std::string directory_;
  std::string prefix_;
  CheckpointStorageOptions options_;

  /// Registry-owned; all null when options_.metrics is null.
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_generations_ = nullptr;
  obs::Histogram* m_write_seconds_ = nullptr;
  obs::Counter* m_fallbacks_ = nullptr;
};

}  // namespace serde
}  // namespace ausdb

#endif  // AUSDB_SERDE_CHECKPOINT_FILE_H_
