#ifndef AUSDB_SERDE_TUPLE_CODEC_H_
#define AUSDB_SERDE_TUPLE_CODEC_H_

#include "src/engine/tuple.h"
#include "src/serde/checkpoint.h"

namespace ausdb {
namespace serde {

/// \brief Bit-exact tuple (de)serialization on top of the checkpoint
/// token stream, for operators that must checkpoint *buffered input
/// tuples* (the ReorderBuffer's in-flight set) rather than derived
/// accumulators.
///
/// Covered: null/bool/double/string values, point-mass and Gaussian
/// RandomVars (with d.f. sample size), plus the tuple's sequence number
/// and membership probability/d.f. Saving a tuple outside this subset —
/// non-Gaussian distributions, retained raw samples, accuracy
/// annotations — fails with NotImplemented rather than dropping fields
/// silently: a checkpoint that forgets state cannot honor the bit-exact
/// restore contract. Buffering operators sit upstream of annotation, so
/// the subset covers every tuple they legitimately hold.

/// Appends `tuple` to `w`. See above for the supported subset.
Status WriteTupleCheckpoint(CheckpointWriter& w, const engine::Tuple& tuple);

/// Reads one WriteTupleCheckpoint() tuple; kCorruption on malformed
/// input.
Result<engine::Tuple> ReadTupleCheckpoint(CheckpointReader& r);

}  // namespace serde
}  // namespace ausdb

#endif  // AUSDB_SERDE_TUPLE_CODEC_H_
