#ifndef AUSDB_SERDE_CHECKPOINT_H_
#define AUSDB_SERDE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"

namespace ausdb {
namespace serde {

/// \brief Token-stream (de)serialization for operator checkpoints.
///
/// Checkpoints must restore window accumulators *bit-for-bit* — the
/// acceptance test compares a resumed aggregate against an uninterrupted
/// run exactly — so doubles are encoded as the hex of their IEEE-754 bit
/// pattern, never through decimal formatting. The format is
/// whitespace-separated tokens plus length-prefixed byte strings (for
/// partition keys, which may contain anything).

/// \brief Accumulates tokens into a checkpoint blob.
class CheckpointWriter {
 public:
  /// A bare token (tag or enum); must not contain whitespace or ':'.
  void Token(std::string_view token);
  /// An unsigned integer token.
  void Uint(uint64_t v);
  /// A double, encoded losslessly via its bit pattern.
  void Double(double v);
  /// Arbitrary bytes, length-prefixed (`<len>:<raw>`).
  void Bytes(std::string_view bytes);

  /// The finished blob.
  std::string Finish() && { return std::move(out_); }

 private:
  std::string out_;
};

/// \brief Sequential reader over a CheckpointWriter blob. Every accessor
/// fails with StatusCode::kCorruption on malformed or truncated input —
/// checkpoint blobs are machine-written, so any syntax error means the
/// bytes were damaged, not that a human mistyped a query.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::string_view blob) : blob_(blob) {}

  Result<std::string> NextToken();
  Result<uint64_t> NextUint();
  Result<double> NextDouble();
  Result<std::string> NextBytes();

  /// Reads an element count that the caller is about to allocate/loop
  /// over. Fails with kCorruption when the count is impossible: more than
  /// remaining()/min_bytes_per_element elements cannot still be encoded
  /// in the bytes left, so a corrupt count is rejected *before* any
  /// allocation is sized from it. `min_bytes_per_element` is the
  /// smallest possible encoding of one element (>= 1).
  Result<uint64_t> NextCount(size_t min_bytes_per_element);

  /// Fails with kCorruption unless the next token equals `expected` —
  /// the format/version tag check.
  Status ExpectToken(std::string_view expected);

  /// True when all tokens have been consumed.
  bool AtEnd();

  /// Bytes not yet consumed.
  size_t remaining() const {
    return pos_ < blob_.size() ? blob_.size() - pos_ : 0;
  }

 private:
  void SkipWhitespace();

  std::string_view blob_;
  size_t pos_ = 0;
};

}  // namespace serde
}  // namespace ausdb

#endif  // AUSDB_SERDE_CHECKPOINT_H_
