#ifndef AUSDB_SERDE_CHECKPOINT_H_
#define AUSDB_SERDE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"

namespace ausdb {
namespace serde {

/// \brief Token-stream (de)serialization for operator checkpoints.
///
/// Checkpoints must restore window accumulators *bit-for-bit* — the
/// acceptance test compares a resumed aggregate against an uninterrupted
/// run exactly — so doubles are encoded as the hex of their IEEE-754 bit
/// pattern, never through decimal formatting. The format is
/// whitespace-separated tokens plus length-prefixed byte strings (for
/// partition keys, which may contain anything).

/// \brief Accumulates tokens into a checkpoint blob.
class CheckpointWriter {
 public:
  /// A bare token (tag or enum); must not contain whitespace or ':'.
  void Token(std::string_view token);
  /// An unsigned integer token.
  void Uint(uint64_t v);
  /// A double, encoded losslessly via its bit pattern.
  void Double(double v);
  /// Arbitrary bytes, length-prefixed (`<len>:<raw>`).
  void Bytes(std::string_view bytes);

  /// The finished blob.
  std::string Finish() && { return std::move(out_); }

 private:
  std::string out_;
};

/// \brief Sequential reader over a CheckpointWriter blob. Every accessor
/// fails with ParseError on malformed or truncated input.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::string_view blob) : blob_(blob) {}

  Result<std::string> NextToken();
  Result<uint64_t> NextUint();
  Result<double> NextDouble();
  Result<std::string> NextBytes();

  /// Fails with ParseError unless the next token equals `expected` —
  /// the format/version tag check.
  Status ExpectToken(std::string_view expected);

  /// True when all tokens have been consumed.
  bool AtEnd();

 private:
  void SkipWhitespace();

  std::string_view blob_;
  size_t pos_ = 0;
};

}  // namespace serde
}  // namespace ausdb

#endif  // AUSDB_SERDE_CHECKPOINT_H_
