#include "src/serde/table_printer.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <string>

namespace ausdb {
namespace serde {

namespace {

std::string Truncate(std::string s, size_t max_width) {
  if (s.size() <= max_width) return s;
  if (max_width <= 3) return s.substr(0, max_width);
  return s.substr(0, max_width - 3) + "...";
}

}  // namespace

void PrintTable(std::ostream& os, const engine::Schema& schema,
                const std::vector<engine::Tuple>& tuples,
                const TablePrintOptions& options) {
  const bool any_membership =
      options.show_membership &&
      std::any_of(tuples.begin(), tuples.end(), [](const auto& t) {
        return t.membership_prob() != 1.0 ||
               t.membership_ci().has_value();
      });
  const bool any_significance =
      std::any_of(tuples.begin(), tuples.end(), [](const auto& t) {
        return t.significance().has_value();
      });

  std::vector<std::string> headers;
  for (const auto& f : schema.fields()) headers.push_back(f.name);
  if (any_membership) headers.push_back("prob");
  if (any_significance) headers.push_back("significance");

  std::vector<std::vector<std::string>> rows;
  for (const auto& t : tuples) {
    std::vector<std::string> row;
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      std::string cell =
          i < t.num_values() ? t.value(i).ToString() : "";
      if (options.show_accuracy && i < t.accuracy().size() &&
          t.accuracy()[i].has_value() &&
          t.accuracy()[i]->mean_ci.has_value()) {
        cell += " mu" + t.accuracy()[i]->mean_ci->ToString();
      }
      row.push_back(Truncate(std::move(cell), options.max_cell_width));
    }
    if (any_membership) {
      std::ostringstream cell;
      cell.precision(4);
      cell << t.membership_prob();
      if (t.membership_ci().has_value()) {
        cell << " " << t.membership_ci()->ToString();
      }
      row.push_back(Truncate(cell.str(), options.max_cell_width));
    }
    if (any_significance) {
      row.push_back(
          t.significance().has_value()
              ? std::string(
                    hypothesis::TestOutcomeToString(*t.significance()))
              : "");
    }
    rows.push_back(std::move(row));
  }

  std::vector<size_t> widths(headers.size());
  for (size_t c = 0; c < headers.size(); ++c) {
    widths[c] = headers[c].size();
    for (const auto& row : rows) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << "| " << cells[c]
         << std::string(widths[c] - cells[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  const auto print_rule = [&] {
    for (size_t c = 0; c < widths.size(); ++c) {
      os << "+" << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };

  print_rule();
  print_row(headers);
  print_rule();
  for (const auto& row : rows) print_row(row);
  print_rule();
  os << rows.size() << " row(s)\n";
}

}  // namespace serde
}  // namespace ausdb
