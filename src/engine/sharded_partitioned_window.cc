#include "src/engine/sharded_partitioned_window.h"

#include <algorithm>
#include <map>
#include <optional>

#include "src/common/thread_pool.h"
#include "src/dist/gaussian.h"
#include "src/serde/checkpoint.h"

namespace ausdb {
namespace engine {

namespace {

// Platform-independent key hash (FNV-1a, 64-bit): shard assignment must
// be identical across runs and machines for checkpoints to restore into
// the same shard layout.
uint64_t Fnv1a64(const std::string& key) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Result<std::unique_ptr<ShardedPartitionedWindowAggregate>>
ShardedPartitionedWindowAggregate::Make(OperatorPtr child,
                                        std::string key_column,
                                        std::string agg_column,
                                        std::string output_name,
                                        ShardedWindowOptions options) {
  if (options.window.window_size == 0) {
    return Status::InvalidArgument("window size must be >= 1");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (options.window.emit_revisions &&
      options.window.kind == WindowKind::kTumbling) {
    return Status::InvalidArgument(
        "revision mode requires a sliding window: a tumbling window "
        "resets its state at each emission, so there is no current "
        "window left to revise");
  }
  AUSDB_ASSIGN_OR_RETURN(size_t key_idx,
                         child->schema().IndexOf(key_column));
  const FieldType key_type = child->schema().field(key_idx).type;
  if (key_type != FieldType::kString && key_type != FieldType::kDouble) {
    return Status::TypeError("group-by key '" + key_column +
                             "' must be a deterministic string or double");
  }
  AUSDB_ASSIGN_OR_RETURN(size_t agg_idx,
                         child->schema().IndexOf(agg_column));
  const FieldType agg_type = child->schema().field(agg_idx).type;
  if (agg_type != FieldType::kUncertain &&
      agg_type != FieldType::kDouble) {
    return Status::TypeError("window aggregate column '" + agg_column +
                             "' must be numeric");
  }
  Schema out_schema;
  AUSDB_RETURN_NOT_OK(out_schema.AddField({std::move(key_column), key_type}));
  AUSDB_RETURN_NOT_OK(
      out_schema.AddField({std::move(output_name), FieldType::kUncertain}));
  if (options.window.emit_revisions) {
    AUSDB_RETURN_NOT_OK(
        out_schema.AddField({"revision", FieldType::kBool}));
  }
  return std::unique_ptr<ShardedPartitionedWindowAggregate>(
      new ShardedPartitionedWindowAggregate(std::move(child), key_idx,
                                            agg_idx, std::move(out_schema),
                                            options));
}

ShardedPartitionedWindowAggregate::ShardedPartitionedWindowAggregate(
    OperatorPtr child, size_t key_index, size_t agg_index,
    Schema out_schema, ShardedWindowOptions options)
    : child_(std::move(child)),
      key_index_(key_index),
      agg_index_(agg_index),
      schema_(std::move(out_schema)),
      options_(options),
      shards_(options.num_shards) {}

Status ShardedPartitionedWindowAggregate::FillBatch() {
  // Phase 1 (serial): pull the batch and extract keys/entries. Extraction
  // is cheap relative to window maintenance and keeps error handling and
  // input accounting on one thread.
  std::vector<Tuple> tuples;
  std::vector<std::string> keys;
  std::vector<WindowEntry> entries;
  tuples.reserve(options_.batch_size);
  while (tuples.size() < options_.batch_size) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
    if (!t.has_value()) {
      exhausted_ = true;
      break;
    }
    ++input_consumed_;
    AUSDB_ASSIGN_OR_RETURN(std::string key,
                           PartitionKeyFromValue(t->value(key_index_)));
    AUSDB_ASSIGN_OR_RETURN(
        WindowEntry e,
        WindowEntryFromValue(t->value(agg_index_), options_.window));
    e.sequence = t->sequence();
    tuples.push_back(std::move(*t));
    keys.push_back(std::move(key));
    entries.push_back(e);
  }
  if (tuples.empty()) return Status::OK();

  const size_t num_shards = shards_.size();
  std::vector<std::vector<size_t>> shard_items(num_shards);
  for (size_t i = 0; i < tuples.size(); ++i) {
    shard_items[Fnv1a64(keys[i]) % num_shards].push_back(i);
  }

  // Phase 2 (parallel): each shard replays its items in input order
  // against its private states. Emission slots are per input index, so
  // workers never write shared locations. One chunk per shard — the
  // chunk decomposition depends only on the shard count, never on the
  // thread count, which keeps the result bit-identical at any
  // parallelism (the per-key arithmetic is KeyWindowState's, the same
  // code the serial PartitionedWindowAggregate runs).
  std::vector<std::optional<KeyWindowState::Emission>> emissions(
      tuples.size());
  // Per-item shed flags, summed serially in phase 3 so the counter is
  // deterministic and workers never touch shared state.
  std::vector<uint8_t> shed(tuples.size(), 0);
  const bool revising = options_.window.emit_revisions;
  RunChunked(pool_, num_shards, num_shards,
             [&](size_t, size_t begin, size_t end) {
               for (size_t s = begin; s < end; ++s) {
                 for (size_t i : shard_items[s]) {
                   KeyWindowState& state = shards_[s][keys[i]];
                   if (revising) {
                     bool item_shed = false;
                     emissions[i] = state.ObserveRevising(
                         entries[i], options_.window, &item_shed);
                     shed[i] = item_shed ? 1 : 0;
                   } else {
                     std::optional<KeyWindowState::Aggregate> agg =
                         state.Observe(entries[i], options_.window);
                     if (agg.has_value()) {
                       emissions[i] =
                           KeyWindowState::Emission{*agg, false};
                     }
                   }
                 }
               }
             });

  // Phase 3 (serial): merge emissions back in input-sequence order.
  for (size_t i = 0; i < tuples.size(); ++i) {
    shed_late_ += shed[i];
    if (!emissions[i].has_value()) continue;
    const KeyWindowState::Aggregate& agg = emissions[i]->aggregate;
    dist::RandomVar rv(
        std::make_shared<dist::GaussianDist>(agg.mean,
                                             std::max(0.0, agg.variance)),
        agg.df);
    std::vector<expr::Value> values;
    values.push_back(tuples[i].value(key_index_));
    values.push_back(expr::Value(std::move(rv)));
    if (revising) values.push_back(expr::Value(emissions[i]->revision));
    Tuple out(std::move(values));
    out.set_sequence(tuples[i].sequence());
    out.set_membership_prob(tuples[i].membership_prob());
    out.set_membership_df_n(tuples[i].membership_df_n());
    out_queue_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<std::optional<Tuple>> ShardedPartitionedWindowAggregate::Next() {
  while (out_queue_.empty()) {
    if (exhausted_) return std::optional<Tuple>(std::nullopt);
    AUSDB_RETURN_NOT_OK(FillBatch());
  }
  Tuple t = std::move(out_queue_.front());
  out_queue_.pop_front();
  return std::optional<Tuple>(std::move(t));
}

Status ShardedPartitionedWindowAggregate::Reset() {
  for (auto& shard : shards_) shard.clear();
  out_queue_.clear();
  input_consumed_ = 0;
  shed_late_ = 0;
  exhausted_ = false;
  return child_->Reset();
}

size_t ShardedPartitionedWindowAggregate::partition_count() const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard.size();
  return n;
}

Result<std::string> ShardedPartitionedWindowAggregate::SaveCheckpoint()
    const {
  serde::CheckpointWriter w;
  w.Token("spwagg.v2");
  w.Uint(static_cast<uint64_t>(options_.window.kind));
  w.Uint(static_cast<uint64_t>(options_.window.fn));
  w.Uint(options_.window.window_size);
  w.Uint(input_consumed_);
  // v2: revision-mode config echo and shed counter, then per-key
  // bookkeeping, per-entry sequences and per-pending revision flags.
  w.Uint(options_.window.emit_revisions ? 1 : 0);
  w.Uint(shed_late_);
  // Keys sorted globally (shard assignment is recomputed on restore), so
  // equal states produce equal blobs regardless of shard count.
  std::map<std::string, const KeyWindowState*> sorted;
  for (const auto& shard : shards_) {
    for (const auto& kv : shard) sorted.emplace(kv.first, &kv.second);
  }
  w.Uint(sorted.size());
  for (const auto& [key, state] : sorted) {
    w.Bytes(key);
    w.Double(state->sum_mean.raw_sum());
    w.Double(state->sum_mean.compensation());
    w.Double(state->sum_variance.raw_sum());
    w.Double(state->sum_variance.compensation());
    w.Uint(state->any_observed ? 1 : 0);
    w.Uint(state->max_sequence);
    w.Uint(state->any_evicted ? 1 : 0);
    w.Uint(state->evicted_horizon);
    w.Uint(state->window.size());
    for (const WindowEntry& e : state->window) {
      w.Double(e.mean);
      w.Double(e.variance);
      w.Uint(e.sample_size);
      w.Uint(e.sequence);
    }
  }
  // Pending emissions: computed from already-consumed input but not yet
  // pulled; without them a mid-batch restore would drop outputs.
  w.Uint(out_queue_.size());
  for (const Tuple& t : out_queue_) {
    const expr::Value& key = t.value(0);
    if (key.is_string()) {
      w.Uint(0);
      w.Bytes(*key.string_value());
    } else {
      w.Uint(1);
      AUSDB_ASSIGN_OR_RETURN(double kd, key.AsDouble());
      w.Double(kd);
    }
    AUSDB_ASSIGN_OR_RETURN(dist::RandomVar rv, t.value(1).random_var());
    w.Double(rv.Mean());
    w.Double(rv.Variance());
    w.Uint(rv.sample_size());
    uint64_t revision = 0;
    if (options_.window.emit_revisions) {
      AUSDB_ASSIGN_OR_RETURN(bool rev, t.value(2).bool_value());
      revision = rev ? 1 : 0;
    }
    w.Uint(revision);
    w.Uint(t.sequence());
    w.Double(t.membership_prob());
    w.Uint(t.membership_df_n());
  }
  return std::move(w).Finish();
}

Status ShardedPartitionedWindowAggregate::RestoreCheckpoint(
    std::string_view blob) {
  serde::CheckpointReader r(blob);
  AUSDB_ASSIGN_OR_RETURN(std::string version, r.NextToken());
  // v2 added revision-mode bookkeeping, per-entry sequences and
  // per-pending revision flags; v1 blobs restore with those zeroed.
  const bool v2 = version == "spwagg.v2";
  if (!v2 && version != "spwagg.v1") {
    return Status::Corruption("unknown ShardedPartitionedWindowAggregate "
                              "checkpoint version '" + version + "'");
  }
  if (!v2 && options_.window.emit_revisions) {
    return Status::InvalidArgument(
        "checkpoint predates revision mode and cannot restore into a "
        "revision-mode ShardedPartitionedWindowAggregate");
  }
  AUSDB_ASSIGN_OR_RETURN(uint64_t kind, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(uint64_t fn, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(uint64_t window_size, r.NextUint());
  if (kind != static_cast<uint64_t>(options_.window.kind) ||
      fn != static_cast<uint64_t>(options_.window.fn) ||
      window_size != options_.window.window_size) {
    return Status::InvalidArgument(
        "checkpoint was taken from a differently configured "
        "ShardedPartitionedWindowAggregate");
  }
  AUSDB_ASSIGN_OR_RETURN(uint64_t input_consumed, r.NextUint());
  uint64_t ckpt_revisions = 0;
  uint64_t shed_late = 0;
  if (v2) {
    AUSDB_ASSIGN_OR_RETURN(ckpt_revisions, r.NextUint());
    AUSDB_ASSIGN_OR_RETURN(shed_late, r.NextUint());
  }
  if ((ckpt_revisions != 0) != options_.window.emit_revisions) {
    return Status::InvalidArgument(
        "checkpoint was taken from a differently configured "
        "ShardedPartitionedWindowAggregate (revision mode mismatch)");
  }
  // A partition is at least a key ("0:"), 4 hex doubles and a window
  // count: >= 73 bytes. NextCount rejects counts the remaining blob
  // cannot hold before anything is sized from them.
  AUSDB_ASSIGN_OR_RETURN(uint64_t npartitions, r.NextCount(73));
  std::vector<std::unordered_map<std::string, KeyWindowState>> shards(
      shards_.size());
  for (uint64_t p = 0; p < npartitions; ++p) {
    AUSDB_ASSIGN_OR_RETURN(std::string key, r.NextBytes());
    KeyWindowState state;
    AUSDB_ASSIGN_OR_RETURN(double sum_mean, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(double comp_mean, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(double sum_variance, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(double comp_variance, r.NextDouble());
    state.sum_mean.Restore(sum_mean, comp_mean);
    state.sum_variance.Restore(sum_variance, comp_variance);
    if (v2) {
      AUSDB_ASSIGN_OR_RETURN(uint64_t any_observed, r.NextUint());
      state.any_observed = any_observed != 0;
      AUSDB_ASSIGN_OR_RETURN(state.max_sequence, r.NextUint());
      AUSDB_ASSIGN_OR_RETURN(uint64_t any_evicted, r.NextUint());
      state.any_evicted = any_evicted != 0;
      AUSDB_ASSIGN_OR_RETURN(state.evicted_horizon, r.NextUint());
    }
    // >= 36 bytes per entry: 2 hex doubles + a uint, with separators.
    AUSDB_ASSIGN_OR_RETURN(uint64_t count, r.NextCount(36));
    for (uint64_t i = 0; i < count; ++i) {
      WindowEntry e;
      AUSDB_ASSIGN_OR_RETURN(e.mean, r.NextDouble());
      AUSDB_ASSIGN_OR_RETURN(e.variance, r.NextDouble());
      AUSDB_ASSIGN_OR_RETURN(e.sample_size, r.NextUint());
      if (v2) {
        AUSDB_ASSIGN_OR_RETURN(e.sequence, r.NextUint());
      }
      state.window.push_back(e);
    }
    shards[Fnv1a64(key) % shards.size()].emplace(std::move(key),
                                                 std::move(state));
  }
  // A pending emission is at least a tag, a key, 3 hex doubles and 3
  // uints: >= 62 bytes.
  AUSDB_ASSIGN_OR_RETURN(uint64_t npending, r.NextCount(62));
  std::deque<Tuple> pending;
  for (uint64_t i = 0; i < npending; ++i) {
    AUSDB_ASSIGN_OR_RETURN(uint64_t key_tag, r.NextUint());
    expr::Value key_value;
    if (key_tag == 0) {
      AUSDB_ASSIGN_OR_RETURN(std::string key, r.NextBytes());
      key_value = expr::Value(std::move(key));
    } else if (key_tag == 1) {
      AUSDB_ASSIGN_OR_RETURN(double kd, r.NextDouble());
      key_value = expr::Value(kd);
    } else {
      return Status::Corruption("bad pending-emission key tag");
    }
    AUSDB_ASSIGN_OR_RETURN(double mean, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(double variance, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(uint64_t df, r.NextUint());
    uint64_t revision = 0;
    if (v2) {
      AUSDB_ASSIGN_OR_RETURN(revision, r.NextUint());
    }
    AUSDB_ASSIGN_OR_RETURN(uint64_t sequence, r.NextUint());
    AUSDB_ASSIGN_OR_RETURN(double membership_prob, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(uint64_t membership_df_n, r.NextUint());
    dist::RandomVar rv(std::make_shared<dist::GaussianDist>(mean, variance),
                       df);
    std::vector<expr::Value> values;
    values.push_back(std::move(key_value));
    values.push_back(expr::Value(std::move(rv)));
    if (options_.window.emit_revisions) {
      values.push_back(expr::Value(revision != 0));
    }
    Tuple out(std::move(values));
    out.set_sequence(sequence);
    out.set_membership_prob(membership_prob);
    out.set_membership_df_n(membership_df_n);
    pending.push_back(std::move(out));
  }
  shards_ = std::move(shards);
  out_queue_ = std::move(pending);
  input_consumed_ = input_consumed;
  shed_late_ = shed_late;
  exhausted_ = false;
  return Status::OK();
}

}  // namespace engine
}  // namespace ausdb
