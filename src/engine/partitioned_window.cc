#include "src/engine/partitioned_window.h"

#include <algorithm>
#include <vector>

#include "src/dist/gaussian.h"
#include "src/serde/checkpoint.h"

namespace ausdb {
namespace engine {

Result<std::unique_ptr<PartitionedWindowAggregate>>
PartitionedWindowAggregate::Make(OperatorPtr child, std::string key_column,
                                 std::string agg_column,
                                 std::string output_name,
                                 WindowAggregateOptions options) {
  if (options.window_size == 0) {
    return Status::InvalidArgument("window size must be >= 1");
  }
  if (options.emit_revisions && options.kind == WindowKind::kTumbling) {
    return Status::InvalidArgument(
        "revision mode requires a sliding window: a tumbling window "
        "resets its state at each emission, so there is no current "
        "window left to revise");
  }
  AUSDB_ASSIGN_OR_RETURN(size_t key_idx,
                         child->schema().IndexOf(key_column));
  const FieldType key_type = child->schema().field(key_idx).type;
  if (key_type != FieldType::kString && key_type != FieldType::kDouble) {
    return Status::TypeError("group-by key '" + key_column +
                             "' must be a deterministic string or double");
  }
  AUSDB_ASSIGN_OR_RETURN(size_t agg_idx,
                         child->schema().IndexOf(agg_column));
  const FieldType agg_type = child->schema().field(agg_idx).type;
  if (agg_type != FieldType::kUncertain &&
      agg_type != FieldType::kDouble) {
    return Status::TypeError("window aggregate column '" + agg_column +
                             "' must be numeric");
  }
  Schema out_schema;
  AUSDB_RETURN_NOT_OK(out_schema.AddField({std::move(key_column), key_type}));
  AUSDB_RETURN_NOT_OK(
      out_schema.AddField({std::move(output_name), FieldType::kUncertain}));
  if (options.emit_revisions) {
    AUSDB_RETURN_NOT_OK(
        out_schema.AddField({"revision", FieldType::kBool}));
  }
  return std::unique_ptr<PartitionedWindowAggregate>(
      new PartitionedWindowAggregate(std::move(child), key_idx, agg_idx,
                                     std::move(out_schema), options));
}

PartitionedWindowAggregate::PartitionedWindowAggregate(
    OperatorPtr child, size_t key_index, size_t agg_index,
    Schema out_schema, WindowAggregateOptions options)
    : child_(std::move(child)),
      key_index_(key_index),
      agg_index_(agg_index),
      schema_(std::move(out_schema)),
      options_(options) {}

Result<std::optional<Tuple>> PartitionedWindowAggregate::Next() {
  for (;;) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
    if (!t.has_value()) return std::optional<Tuple>(std::nullopt);
    ++input_consumed_;

    const expr::Value& key_value = t->value(key_index_);
    AUSDB_ASSIGN_OR_RETURN(std::string key,
                           PartitionKeyFromValue(key_value));
    AUSDB_ASSIGN_OR_RETURN(
        WindowEntry e, WindowEntryFromValue(t->value(agg_index_), options_));
    e.sequence = t->sequence();

    KeyWindowState& state = partitions_[key];
    if (options_.emit_revisions) {
      bool shed = false;
      std::optional<KeyWindowState::Emission> emission =
          state.ObserveRevising(e, options_, &shed);
      if (shed) ++shed_late_;
      if (!emission.has_value()) continue;
      dist::RandomVar rv(
          std::make_shared<dist::GaussianDist>(
              emission->aggregate.mean,
              std::max(0.0, emission->aggregate.variance)),
          emission->aggregate.df);
      Tuple out({key_value, expr::Value(std::move(rv)),
                 expr::Value(emission->revision)});
      out.set_sequence(t->sequence());
      out.set_membership_prob(t->membership_prob());
      out.set_membership_df_n(t->membership_df_n());
      return std::optional<Tuple>(std::move(out));
    }

    std::optional<KeyWindowState::Aggregate> agg =
        state.Observe(e, options_);
    if (!agg.has_value()) continue;

    dist::RandomVar rv(
        std::make_shared<dist::GaussianDist>(agg->mean,
                                             std::max(0.0, agg->variance)),
        agg->df);
    Tuple out({key_value, expr::Value(std::move(rv))});
    out.set_sequence(t->sequence());
    out.set_membership_prob(t->membership_prob());
    out.set_membership_df_n(t->membership_df_n());
    return std::optional<Tuple>(std::move(out));
  }
}

Status PartitionedWindowAggregate::Reset() {
  partitions_.clear();
  input_consumed_ = 0;
  shed_late_ = 0;
  return child_->Reset();
}

Result<std::string> PartitionedWindowAggregate::SaveCheckpoint() const {
  serde::CheckpointWriter w;
  w.Token("pwagg.v4");
  w.Uint(static_cast<uint64_t>(options_.kind));
  w.Uint(static_cast<uint64_t>(options_.fn));
  w.Uint(options_.window_size);
  w.Uint(input_consumed_);
  // v4: revision-mode config echo and shed counter, then per-key
  // bookkeeping and per-entry sequences below.
  w.Uint(options_.emit_revisions ? 1 : 0);
  w.Uint(shed_late_);
  w.Uint(partitions_.size());
  std::vector<const std::string*> keys;
  keys.reserve(partitions_.size());
  for (const auto& kv : partitions_) keys.push_back(&kv.first);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) {
              return *a < *b;
            });
  for (const std::string* key : keys) {
    const KeyWindowState& state = partitions_.at(*key);
    w.Bytes(*key);
    w.Double(state.sum_mean.raw_sum());
    w.Double(state.sum_mean.compensation());
    w.Double(state.sum_variance.raw_sum());
    w.Double(state.sum_variance.compensation());
    w.Uint(state.any_observed ? 1 : 0);
    w.Uint(state.max_sequence);
    w.Uint(state.any_evicted ? 1 : 0);
    w.Uint(state.evicted_horizon);
    w.Uint(state.window.size());
    for (const WindowEntry& e : state.window) {
      w.Double(e.mean);
      w.Double(e.variance);
      w.Uint(e.sample_size);
      w.Uint(e.sequence);
    }
  }
  return std::move(w).Finish();
}

Status PartitionedWindowAggregate::RestoreCheckpoint(std::string_view blob) {
  serde::CheckpointReader r(blob);
  AUSDB_ASSIGN_OR_RETURN(std::string version, r.NextToken());
  // v1 blobs predate compensated summation and carry plain sums; they
  // restore with zero compensation. v2 added the compensation terms;
  // v3 added the input position (restored as zero from older blobs);
  // v4 added per-entry sequences and the revision-mode bookkeeping.
  const bool v1 = version == "pwagg.v1";
  const bool v3 = version == "pwagg.v3";
  const bool v4 = version == "pwagg.v4";
  if (!v1 && !v3 && !v4 && version != "pwagg.v2") {
    return Status::Corruption("unknown PartitionedWindowAggregate "
                              "checkpoint version '" + version + "'");
  }
  if (!v4 && options_.emit_revisions) {
    return Status::InvalidArgument(
        "checkpoint predates revision mode and cannot restore into a "
        "revision-mode PartitionedWindowAggregate");
  }
  AUSDB_ASSIGN_OR_RETURN(uint64_t kind, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(uint64_t fn, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(uint64_t window_size, r.NextUint());
  if (kind != static_cast<uint64_t>(options_.kind) ||
      fn != static_cast<uint64_t>(options_.fn) ||
      window_size != options_.window_size) {
    return Status::InvalidArgument(
        "checkpoint was taken from a differently configured "
        "PartitionedWindowAggregate");
  }
  uint64_t input_consumed = 0;
  if (v3 || v4) {
    AUSDB_ASSIGN_OR_RETURN(input_consumed, r.NextUint());
  }
  uint64_t ckpt_revisions = 0;
  uint64_t shed_late = 0;
  if (v4) {
    AUSDB_ASSIGN_OR_RETURN(ckpt_revisions, r.NextUint());
    AUSDB_ASSIGN_OR_RETURN(shed_late, r.NextUint());
  }
  if ((ckpt_revisions != 0) != options_.emit_revisions) {
    return Status::InvalidArgument(
        "checkpoint was taken from a differently configured "
        "PartitionedWindowAggregate (revision mode mismatch)");
  }
  // A v1 partition is at least a key ("0:"), 2 hex doubles and a window
  // count: >= 39 bytes. Bounding the reserve() below by what the blob
  // can actually hold keeps a flipped count bit from driving a huge
  // allocation.
  AUSDB_ASSIGN_OR_RETURN(uint64_t npartitions, r.NextCount(39));
  std::unordered_map<std::string, KeyWindowState> restored;
  restored.reserve(npartitions);
  for (uint64_t p = 0; p < npartitions; ++p) {
    AUSDB_ASSIGN_OR_RETURN(std::string key, r.NextBytes());
    KeyWindowState state;
    AUSDB_ASSIGN_OR_RETURN(double sum_mean, r.NextDouble());
    double comp_mean = 0.0;
    if (!v1) {
      AUSDB_ASSIGN_OR_RETURN(comp_mean, r.NextDouble());
    }
    AUSDB_ASSIGN_OR_RETURN(double sum_variance, r.NextDouble());
    double comp_variance = 0.0;
    if (!v1) {
      AUSDB_ASSIGN_OR_RETURN(comp_variance, r.NextDouble());
    }
    state.sum_mean.Restore(sum_mean, comp_mean);
    state.sum_variance.Restore(sum_variance, comp_variance);
    if (v4) {
      AUSDB_ASSIGN_OR_RETURN(uint64_t any_observed, r.NextUint());
      state.any_observed = any_observed != 0;
      AUSDB_ASSIGN_OR_RETURN(state.max_sequence, r.NextUint());
      AUSDB_ASSIGN_OR_RETURN(uint64_t any_evicted, r.NextUint());
      state.any_evicted = any_evicted != 0;
      AUSDB_ASSIGN_OR_RETURN(state.evicted_horizon, r.NextUint());
    }
    // >= 36 bytes per entry: 2 hex doubles + a uint, with separators.
    AUSDB_ASSIGN_OR_RETURN(uint64_t count, r.NextCount(36));
    for (uint64_t i = 0; i < count; ++i) {
      WindowEntry e;
      AUSDB_ASSIGN_OR_RETURN(e.mean, r.NextDouble());
      AUSDB_ASSIGN_OR_RETURN(e.variance, r.NextDouble());
      AUSDB_ASSIGN_OR_RETURN(e.sample_size, r.NextUint());
      if (v4) {
        AUSDB_ASSIGN_OR_RETURN(e.sequence, r.NextUint());
      }
      state.window.push_back(e);
    }
    restored.emplace(std::move(key), std::move(state));
  }
  partitions_ = std::move(restored);
  input_consumed_ = input_consumed;
  shed_late_ = shed_late;
  return Status::OK();
}

}  // namespace engine
}  // namespace ausdb
