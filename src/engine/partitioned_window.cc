#include "src/engine/partitioned_window.h"

#include <algorithm>
#include <vector>

#include "src/dist/gaussian.h"
#include "src/serde/checkpoint.h"

namespace ausdb {
namespace engine {

Result<std::unique_ptr<PartitionedWindowAggregate>>
PartitionedWindowAggregate::Make(OperatorPtr child, std::string key_column,
                                 std::string agg_column,
                                 std::string output_name,
                                 WindowAggregateOptions options) {
  if (options.window_size == 0) {
    return Status::InvalidArgument("window size must be >= 1");
  }
  AUSDB_ASSIGN_OR_RETURN(size_t key_idx,
                         child->schema().IndexOf(key_column));
  const FieldType key_type = child->schema().field(key_idx).type;
  if (key_type != FieldType::kString && key_type != FieldType::kDouble) {
    return Status::TypeError("group-by key '" + key_column +
                             "' must be a deterministic string or double");
  }
  AUSDB_ASSIGN_OR_RETURN(size_t agg_idx,
                         child->schema().IndexOf(agg_column));
  const FieldType agg_type = child->schema().field(agg_idx).type;
  if (agg_type != FieldType::kUncertain &&
      agg_type != FieldType::kDouble) {
    return Status::TypeError("window aggregate column '" + agg_column +
                             "' must be numeric");
  }
  Schema out_schema;
  AUSDB_RETURN_NOT_OK(out_schema.AddField({std::move(key_column), key_type}));
  AUSDB_RETURN_NOT_OK(
      out_schema.AddField({std::move(output_name), FieldType::kUncertain}));
  return std::unique_ptr<PartitionedWindowAggregate>(
      new PartitionedWindowAggregate(std::move(child), key_idx, agg_idx,
                                     std::move(out_schema), options));
}

PartitionedWindowAggregate::PartitionedWindowAggregate(
    OperatorPtr child, size_t key_index, size_t agg_index,
    Schema out_schema, WindowAggregateOptions options)
    : child_(std::move(child)),
      key_index_(key_index),
      agg_index_(agg_index),
      schema_(std::move(out_schema)),
      options_(options) {}

Result<std::optional<Tuple>> PartitionedWindowAggregate::Next() {
  for (;;) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
    if (!t.has_value()) return std::optional<Tuple>(std::nullopt);

    const expr::Value& key_value = t->value(key_index_);
    std::string key;
    if (key_value.is_string()) {
      key = *key_value.string_value();
    } else {
      AUSDB_ASSIGN_OR_RETURN(double kd, key_value.AsDouble());
      key = std::to_string(kd);
    }

    const expr::Value& v = t->value(agg_index_);
    Entry e;
    if (v.is_random_var()) {
      AUSDB_ASSIGN_OR_RETURN(dist::RandomVar rv, v.random_var());
      if (!rv.is_certain() &&
          rv.distribution()->kind() != dist::DistributionKind::kGaussian &&
          !options_.allow_clt_approximation) {
        return Status::NotImplemented(
            "closed-form window aggregation requires Gaussian or "
            "deterministic inputs; got " + rv.distribution()->ToString());
      }
      e.mean = rv.Mean();
      e.variance = rv.Variance();
      e.sample_size = rv.sample_size();
    } else {
      AUSDB_ASSIGN_OR_RETURN(double d, v.AsDouble());
      e.mean = d;
      e.variance = 0.0;
      e.sample_size = dist::RandomVar::kCertainSampleSize;
    }

    PartitionState& state = partitions_[key];
    state.window.push_back(e);
    state.sum_mean += e.mean;
    state.sum_variance += e.variance;

    if (options_.kind == WindowKind::kTumbling) {
      if (state.window.size() < options_.window_size) continue;
    } else {
      if (state.window.size() > options_.window_size) {
        const Entry& old = state.window.front();
        state.sum_mean -= old.mean;
        state.sum_variance -= old.variance;
        state.window.pop_front();
      }
      if (state.window.size() < options_.window_size &&
          !options_.emit_partial) {
        continue;
      }
    }

    const double w = static_cast<double>(state.window.size());
    double mean = state.sum_mean;
    double variance = state.sum_variance;
    if (options_.fn == WindowAggFn::kAvg) {
      mean /= w;
      variance /= w * w;
    }
    // Per-key windows are small-to-moderate; a linear scan for the
    // minimum sample size keeps the per-partition state simple.
    size_t df = dist::RandomVar::kCertainSampleSize;
    for (const Entry& entry : state.window) {
      df = std::min(df, entry.sample_size);
    }

    dist::RandomVar agg(
        std::make_shared<dist::GaussianDist>(mean,
                                             std::max(0.0, variance)),
        df);
    Tuple out({key_value, expr::Value(std::move(agg))});
    out.set_sequence(t->sequence());
    out.set_membership_prob(t->membership_prob());
    out.set_membership_df_n(t->membership_df_n());
    if (options_.kind == WindowKind::kTumbling) {
      state.window.clear();
      state.sum_mean = state.sum_variance = 0.0;
    }
    return std::optional<Tuple>(std::move(out));
  }
}

Status PartitionedWindowAggregate::Reset() {
  partitions_.clear();
  return child_->Reset();
}

Result<std::string> PartitionedWindowAggregate::SaveCheckpoint() const {
  serde::CheckpointWriter w;
  w.Token("pwagg.v1");
  w.Uint(static_cast<uint64_t>(options_.kind));
  w.Uint(static_cast<uint64_t>(options_.fn));
  w.Uint(options_.window_size);
  w.Uint(partitions_.size());
  std::vector<const std::string*> keys;
  keys.reserve(partitions_.size());
  for (const auto& kv : partitions_) keys.push_back(&kv.first);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) {
              return *a < *b;
            });
  for (const std::string* key : keys) {
    const PartitionState& state = partitions_.at(*key);
    w.Bytes(*key);
    w.Double(state.sum_mean);
    w.Double(state.sum_variance);
    w.Uint(state.window.size());
    for (const Entry& e : state.window) {
      w.Double(e.mean);
      w.Double(e.variance);
      w.Uint(e.sample_size);
    }
  }
  return std::move(w).Finish();
}

Status PartitionedWindowAggregate::RestoreCheckpoint(std::string_view blob) {
  serde::CheckpointReader r(blob);
  AUSDB_RETURN_NOT_OK(r.ExpectToken("pwagg.v1"));
  AUSDB_ASSIGN_OR_RETURN(uint64_t kind, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(uint64_t fn, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(uint64_t window_size, r.NextUint());
  if (kind != static_cast<uint64_t>(options_.kind) ||
      fn != static_cast<uint64_t>(options_.fn) ||
      window_size != options_.window_size) {
    return Status::InvalidArgument(
        "checkpoint was taken from a differently configured "
        "PartitionedWindowAggregate");
  }
  AUSDB_ASSIGN_OR_RETURN(uint64_t npartitions, r.NextUint());
  std::unordered_map<std::string, PartitionState> restored;
  restored.reserve(npartitions);
  for (uint64_t p = 0; p < npartitions; ++p) {
    AUSDB_ASSIGN_OR_RETURN(std::string key, r.NextBytes());
    PartitionState state;
    AUSDB_ASSIGN_OR_RETURN(state.sum_mean, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(state.sum_variance, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(uint64_t count, r.NextUint());
    for (uint64_t i = 0; i < count; ++i) {
      Entry e;
      AUSDB_ASSIGN_OR_RETURN(e.mean, r.NextDouble());
      AUSDB_ASSIGN_OR_RETURN(e.variance, r.NextDouble());
      AUSDB_ASSIGN_OR_RETURN(e.sample_size, r.NextUint());
      state.window.push_back(e);
    }
    restored.emplace(std::move(key), std::move(state));
  }
  partitions_ = std::move(restored);
  return Status::OK();
}

}  // namespace engine
}  // namespace ausdb
