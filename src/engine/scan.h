#ifndef AUSDB_ENGINE_SCAN_H_
#define AUSDB_ENGINE_SCAN_H_

#include <functional>
#include <vector>

#include "src/engine/operator.h"

namespace ausdb {
namespace engine {

/// \brief Scan over an in-memory vector of tuples (the batch/test path).
class VectorScan final : public Operator {
 public:
  VectorScan(Schema schema, std::vector<Tuple> tuples);

  const Schema& schema() const override { return schema_; }
  Result<std::optional<Tuple>> Next() override;
  /// Native batch pull: copies the next run of tuples in one pass (no
  /// per-tuple virtual dispatch).
  Status NextBatch(size_t max_n, TupleBatch& out) override;
  Status Reset() override;

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

/// A pull source producing tuples until it returns nullopt.
using TupleGenerator = std::function<Result<std::optional<Tuple>>()>;

/// \brief Scan over a generator callback (the streaming path): adapts any
/// unbounded or bounded source — simulator, socket, file reader — into an
/// operator. Assigns arrival sequence numbers.
class StreamScan final : public Operator {
 public:
  StreamScan(Schema schema, TupleGenerator generator);

  const Schema& schema() const override { return schema_; }
  Result<std::optional<Tuple>> Next() override;
  /// Native batch pull: one generator call per tuple still, but a single
  /// operator dispatch per batch.
  Status NextBatch(size_t max_n, TupleBatch& out) override;

 private:
  Schema schema_;
  TupleGenerator generator_;
  uint64_t next_sequence_ = 0;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_SCAN_H_
