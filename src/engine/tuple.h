#ifndef AUSDB_ENGINE_TUPLE_H_
#define AUSDB_ENGINE_TUPLE_H_

#include <optional>
#include <vector>

#include "src/accuracy/accuracy_info.h"
#include "src/accuracy/confidence_interval.h"
#include "src/dist/random_var.h"
#include "src/engine/schema.h"
#include "src/expr/evaluator.h"
#include "src/expr/value.h"
#include "src/hypothesis/test_types.h"

namespace ausdb {
namespace engine {

/// \brief One stream tuple: field values plus the uncertainty model of
/// the paper's Section II-A.
///
/// A tuple carries (a) attribute uncertainty in its values (a field may
/// be a RandomVar) and (b) tuple uncertainty in `membership_prob`, the
/// probability that the tuple exists in the stream/result. Result tuples
/// additionally carry accuracy annotations: a confidence interval for the
/// membership probability and per-field AccuracyInfo, both filled in by
/// the AccuracyAnnotator operator.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<expr::Value> values)
      : values_(std::move(values)) {}

  const std::vector<expr::Value>& values() const { return values_; }
  std::vector<expr::Value>& values() { return values_; }
  const expr::Value& value(size_t i) const { return values_[i]; }
  size_t num_values() const { return values_.size(); }

  /// Probability that this tuple exists (tuple uncertainty); 1 for base
  /// tuples ingested deterministically.
  double membership_prob() const { return membership_prob_; }
  void set_membership_prob(double p) { membership_prob_ = p; }

  /// De facto sample size behind membership_prob (Lemma 3 over the
  /// predicates that produced it); kCertainSampleSize when the
  /// probability is exact.
  size_t membership_df_n() const { return membership_df_n_; }
  void set_membership_df_n(size_t n) { membership_df_n_ = n; }

  /// Theorem 1 interval for the membership probability, if annotated.
  const std::optional<accuracy::ConfidenceInterval>& membership_ci() const {
    return membership_ci_;
  }
  void set_membership_ci(accuracy::ConfidenceInterval ci) {
    membership_ci_ = ci;
  }

  /// Per-field accuracy annotations (parallel to values; absent entries
  /// mean not annotated / deterministic field).
  const std::vector<std::optional<accuracy::AccuracyInfo>>& accuracy()
      const {
    return accuracy_;
  }
  void set_accuracy(size_t i, accuracy::AccuracyInfo info);

  /// Outcome of the last significance-predicate filter this tuple passed
  /// through (TRUE tuples are kept; UNSURE tuples may be kept flagged,
  /// per FilterOptions).
  const std::optional<hypothesis::TestOutcome>& significance() const {
    return significance_;
  }
  void set_significance(hypothesis::TestOutcome o) { significance_ = o; }

  /// Arrival sequence number assigned by the source.
  uint64_t sequence() const { return sequence_; }
  void set_sequence(uint64_t s) { sequence_ = s; }

  /// \brief Degradation-ladder rung this tuple was admitted under
  /// (govern::GovernorGate stamps it at the source; 0 = full precision).
  ///
  /// The stamp travels *with* the tuple rather than living in shared
  /// state so every downstream precision decision — annotator sample
  /// counts, reorder horizons — is a pure function of the tuple itself,
  /// independent of pipeline buffering, prefetch depth or thread count.
  /// That is what keeps governed output bit-identical across runs.
  uint32_t precision_rung() const { return precision_rung_; }
  void set_precision_rung(uint32_t rung) { precision_rung_ = rung; }

  /// Approximate heap + inline footprint in bytes, for cooperative
  /// MemoryBudget accounting by buffering operators. An estimate by
  /// design (container slack and allocator overhead are not modeled);
  /// deterministic for a given tuple value.
  size_t ApproxBytes() const;

  /// View of this tuple as an evaluator row over `schema`.
  expr::Row AsRow(const Schema& schema) const {
    return expr::Row{&schema.names(), &values_};
  }

  std::string ToString() const;

 private:
  std::vector<expr::Value> values_;
  double membership_prob_ = 1.0;
  size_t membership_df_n_ = dist::RandomVar::kCertainSampleSize;
  std::optional<accuracy::ConfidenceInterval> membership_ci_;
  std::vector<std::optional<accuracy::AccuracyInfo>> accuracy_;
  std::optional<hypothesis::TestOutcome> significance_;
  uint64_t sequence_ = 0;
  uint32_t precision_rung_ = 0;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_TUPLE_H_
