#ifndef AUSDB_ENGINE_UNION_ALL_H_
#define AUSDB_ENGINE_UNION_ALL_H_

#include <vector>

#include "src/engine/operator.h"

namespace ausdb {
namespace engine {

/// \brief UNION ALL: concatenates several input streams with identical
/// schemas (e.g. merging the feeds of multiple sensor gateways).
class UnionAll final : public Operator {
 public:
  /// All children must share the first child's schema exactly.
  static Result<std::unique_ptr<UnionAll>> Make(
      std::vector<OperatorPtr> children);

  const Schema& schema() const override {
    return children_.front()->schema();
  }
  Result<std::optional<Tuple>> Next() override;
  Status Reset() override;
  void BindThreadPool(ThreadPool* pool) override {
    for (auto& child : children_) child->BindThreadPool(pool);
  }

  Status Close() override {
    Status first = Status::OK();
    for (auto& child : children_) {
      const Status st = child->Close();
      if (first.ok() && !st.ok()) first = st;
    }
    return first;
  }

 private:
  explicit UnionAll(std::vector<OperatorPtr> children)
      : children_(std::move(children)) {}

  std::vector<OperatorPtr> children_;
  size_t current_ = 0;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_UNION_ALL_H_
