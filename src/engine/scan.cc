#include "src/engine/scan.h"

#include <algorithm>

namespace ausdb {
namespace engine {

VectorScan::VectorScan(Schema schema, std::vector<Tuple> tuples)
    : schema_(std::move(schema)), tuples_(std::move(tuples)) {
  for (size_t i = 0; i < tuples_.size(); ++i) {
    tuples_[i].set_sequence(i);
  }
}

Result<std::optional<Tuple>> VectorScan::Next() {
  if (pos_ >= tuples_.size()) return std::optional<Tuple>(std::nullopt);
  return std::optional<Tuple>(tuples_[pos_++]);
}

Status VectorScan::NextBatch(size_t max_n, TupleBatch& out) {
  out.Clear();
  if (max_n == 0) {
    return Status::InvalidArgument("batch size must be >= 1");
  }
  const size_t n = std::min(max_n, tuples_.size() - pos_);
  out.rows().reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.rows().push_back(tuples_[pos_ + i]);
  }
  pos_ += n;
  return Status::OK();
}

Status VectorScan::Reset() {
  pos_ = 0;
  return Status::OK();
}

StreamScan::StreamScan(Schema schema, TupleGenerator generator)
    : schema_(std::move(schema)), generator_(std::move(generator)) {}

Result<std::optional<Tuple>> StreamScan::Next() {
  AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, generator_());
  if (t.has_value()) {
    t->set_sequence(next_sequence_++);
  }
  return t;
}

Status StreamScan::NextBatch(size_t max_n, TupleBatch& out) {
  out.Clear();
  if (max_n == 0) {
    return Status::InvalidArgument("batch size must be >= 1");
  }
  for (size_t i = 0; i < max_n; ++i) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, generator_());
    if (!t.has_value()) break;
    t->set_sequence(next_sequence_++);
    out.rows().push_back(std::move(*t));
  }
  return Status::OK();
}

}  // namespace engine
}  // namespace ausdb
