#include "src/engine/scan.h"

namespace ausdb {
namespace engine {

VectorScan::VectorScan(Schema schema, std::vector<Tuple> tuples)
    : schema_(std::move(schema)), tuples_(std::move(tuples)) {
  for (size_t i = 0; i < tuples_.size(); ++i) {
    tuples_[i].set_sequence(i);
  }
}

Result<std::optional<Tuple>> VectorScan::Next() {
  if (pos_ >= tuples_.size()) return std::optional<Tuple>(std::nullopt);
  return std::optional<Tuple>(tuples_[pos_++]);
}

Status VectorScan::Reset() {
  pos_ = 0;
  return Status::OK();
}

StreamScan::StreamScan(Schema schema, TupleGenerator generator)
    : schema_(std::move(schema)), generator_(std::move(generator)) {}

Result<std::optional<Tuple>> StreamScan::Next() {
  AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, generator_());
  if (t.has_value()) {
    t->set_sequence(next_sequence_++);
  }
  return t;
}

}  // namespace engine
}  // namespace ausdb
