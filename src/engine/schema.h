#ifndef AUSDB_ENGINE_SCHEMA_H_
#define AUSDB_ENGINE_SCHEMA_H_

#include <string>
#include <vector>

#include "src/common/result.h"

namespace ausdb {
namespace engine {

/// Static type of a tuple field.
enum class FieldType {
  kDouble,     ///< Deterministic numeric value.
  kString,     ///< Deterministic string (identifiers, labels).
  kBool,       ///< Deterministic boolean.
  kUncertain,  ///< A random variable (distribution + accuracy provenance).
};

std::string_view FieldTypeToString(FieldType type);

/// A named, typed column.
struct Field {
  std::string name;
  FieldType type = FieldType::kDouble;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Ordered collection of fields describing a stream's tuples.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Appends a field; fails with AlreadyExists on a duplicate name.
  Status AddField(Field field);

  size_t num_fields() const { return fields_.size(); }
  const std::vector<Field>& fields() const { return fields_; }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Index of the field named `name`; NotFound if absent.
  Result<size_t> IndexOf(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// The field names in order (shared with expr::Row).
  const std::vector<std::string>& names() const { return names_; }

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::vector<std::string> names_;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_SCHEMA_H_
