#ifndef AUSDB_ENGINE_WINDOW_STATE_H_
#define AUSDB_ENGINE_WINDOW_STATE_H_

#include <deque>
#include <optional>
#include <string>

#include "src/common/math_util.h"
#include "src/common/result.h"
#include "src/engine/tuple.h"
#include "src/engine/window_aggregate.h"

namespace ausdb {
namespace engine {

/// One window element: the moments and d.f. sample size extracted from an
/// input value (paper Lemma 3 propagates the minimum sample size), plus
/// the source-assigned arrival sequence — the event-order key revision
/// mode sorts and dedupes by.
struct WindowEntry {
  double mean = 0.0;
  double variance = 0.0;
  size_t sample_size = 0;
  uint64_t sequence = 0;
};

/// \brief Extracts a WindowEntry from an aggregate-column value.
///
/// Deterministic doubles become zero-variance entries with the certain
/// sample size; uncertain values must be Gaussian or deterministic unless
/// `options.allow_clt_approximation` accepts arbitrary distributions via
/// their first two moments.
Result<WindowEntry> WindowEntryFromValue(const expr::Value& v,
                                         const WindowAggregateOptions& options);

/// \brief Renders a deterministic group-by key value (string or double)
/// as the partition-map key, identically for every partitioned-window
/// implementation.
Result<std::string> PartitionKeyFromValue(const expr::Value& v);

/// \brief The count-based window state of one partition key.
///
/// Shared by PartitionedWindowAggregate and its sharded parallel variant
/// so both execute the *identical* floating-point update sequence — the
/// determinism contract (parallel output bit-identical to serial) depends
/// on this being the single implementation.
///
/// Running sums use Neumaier-compensated accumulation: the evict-subtract
/// update otherwise drifts on long streams with mixed magnitudes (a
/// window holding 1e12-scale and 1e-3-scale means loses the small
/// entries entirely after ~1M evictions with plain doubles).
struct KeyWindowState {
  std::deque<WindowEntry> window;
  KahanSum sum_mean;
  KahanSum sum_variance;

  /// The emitted aggregate: closed-form Gaussian moments plus the window
  /// minimum d.f. sample size.
  struct Aggregate {
    double mean;
    double variance;
    size_t df;
  };

  /// Feeds one entry through the window (push, evict when sliding past
  /// `options.window_size`, reset when a tumbling window fires) and
  /// returns the aggregate when this arrival produces an emission.
  std::optional<Aggregate> Observe(const WindowEntry& e,
                                   const WindowAggregateOptions& options);

  /// One revision-mode emission: the (possibly corrected) current-window
  /// aggregate, flagged when it replaces an earlier emission.
  struct Emission {
    Aggregate aggregate;
    bool revision = false;
  };

  /// \brief Revision-mode (sliding-only) variant of Observe: the window
  /// is kept sorted by sequence, an in-order entry emits normally
  /// (revision=false), and a late entry — sequence below the max seen —
  /// is inserted in place and re-emits the corrected current window
  /// (revision=true). A late entry older than every retained position
  /// (at/below the eviction horizon, or displaced right back out of a
  /// full window) is shed: `shed_late` is set and nothing is emitted —
  /// the bounded-memory contract only ever revises the *current*
  /// window, never windows already slid past.
  ///
  /// Determinism: every emission recomputes sums by one scan over the
  /// sequence-sorted window (never the incremental accumulators), so an
  /// emission depends only on the entry *set* — a late arrival folds to
  /// the same bits as in-order delivery of the same entries.
  std::optional<Emission> ObserveRevising(
      const WindowEntry& e, const WindowAggregateOptions& options,
      bool* shed_late);

  /// Revision-mode bookkeeping (unused by plain Observe).
  uint64_t max_sequence = 0;
  bool any_observed = false;
  uint64_t evicted_horizon = 0;
  bool any_evicted = false;

 private:
  /// Plain-double scan over the current window in deque order.
  Aggregate ScratchAggregate(const WindowAggregateOptions& options) const;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_WINDOW_STATE_H_
