#ifndef AUSDB_ENGINE_LIMIT_H_
#define AUSDB_ENGINE_LIMIT_H_

#include <algorithm>

#include "src/engine/operator.h"

namespace ausdb {
namespace engine {

/// \brief Limit: passes at most `limit` tuples through, then reports end
/// of stream (useful to cap unbounded sources in ad hoc queries).
///
/// Once the cap is reached the child is Close()d immediately (Close is
/// idempotent by the Operator contract): a resource-backed source under
/// a LIMIT — an AsyncPrefetchSource producer thread filling its ring, a
/// socket reader — must stop consuming upstream when no further tuple
/// can ever be delivered, not at plan teardown. Reset() rearms: it
/// reopens by resetting the child, and surfaces the child's error loudly
/// when the child cannot restart after a Close.
class Limit final : public Operator {
 public:
  Limit(OperatorPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}

  const Schema& schema() const override { return child_->schema(); }

  Result<std::optional<Tuple>> Next() override {
    if (produced_ >= limit_) {
      AUSDB_RETURN_NOT_OK(CloseChildOnce());
      return std::optional<Tuple>(std::nullopt);
    }
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
    if (t.has_value()) ++produced_;
    if (produced_ >= limit_) AUSDB_RETURN_NOT_OK(CloseChildOnce());
    return t;
  }

  Status NextBatch(size_t max_n, TupleBatch& out) override {
    out.Clear();
    if (max_n == 0) {
      return Status::InvalidArgument("batch size must be >= 1");
    }
    if (produced_ >= limit_) return CloseChildOnce();
    AUSDB_RETURN_NOT_OK(
        child_->NextBatch(std::min(max_n, limit_ - produced_), out));
    produced_ += out.size();
    if (produced_ >= limit_) AUSDB_RETURN_NOT_OK(CloseChildOnce());
    return Status::OK();
  }

  Status Reset() override {
    produced_ = 0;
    child_closed_ = false;
    return child_->Reset();
  }

  void BindThreadPool(ThreadPool* pool) override {
    child_->BindThreadPool(pool);
  }

  Status Close() override {
    child_closed_ = true;
    return child_->Close();
  }

 private:
  Status CloseChildOnce() {
    if (child_closed_) return Status::OK();
    child_closed_ = true;
    return child_->Close();
  }

  OperatorPtr child_;
  size_t limit_;
  size_t produced_ = 0;
  bool child_closed_ = false;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_LIMIT_H_
