#ifndef AUSDB_ENGINE_LIMIT_H_
#define AUSDB_ENGINE_LIMIT_H_

#include "src/engine/operator.h"

namespace ausdb {
namespace engine {

/// \brief Limit: passes at most `limit` tuples through, then reports end
/// of stream (useful to cap unbounded sources in ad hoc queries).
class Limit final : public Operator {
 public:
  Limit(OperatorPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}

  const Schema& schema() const override { return child_->schema(); }

  Result<std::optional<Tuple>> Next() override {
    if (produced_ >= limit_) return std::optional<Tuple>(std::nullopt);
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
    if (t.has_value()) ++produced_;
    return t;
  }

  Status Reset() override {
    produced_ = 0;
    return child_->Reset();
  }

  void BindThreadPool(ThreadPool* pool) override {
    child_->BindThreadPool(pool);
  }

  Status Close() override { return child_->Close(); }

 private:
  OperatorPtr child_;
  size_t limit_;
  size_t produced_ = 0;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_LIMIT_H_
