#ifndef AUSDB_ENGINE_FILTER_H_
#define AUSDB_ENGINE_FILTER_H_

#include <memory>

#include "src/engine/operator.h"
#include "src/expr/evaluator.h"
#include "src/expr/expr.h"

namespace ausdb {
namespace engine {

/// Policy knobs for the Filter operator.
struct FilterOptions {
  /// Tuples whose predicate probability is <= this are dropped outright
  /// (their possible-world contribution is negligible). 0 keeps every
  /// tuple with positive probability, as in the paper's semantics.
  double min_probability = 0.0;

  /// For significance predicates with coupled tests: keep UNSURE tuples
  /// (flagged via Tuple::significance) instead of dropping them.
  bool keep_unsure = false;

  /// Orion-style conditioning: when the predicate is a simple range
  /// comparison `column cmp constant` over an uncertain column, replace
  /// that column's distribution in surviving tuples with its conditional
  /// (truncated, renormalized) version — the distribution of the
  /// attribute in the possible worlds where the tuple survived. The d.f.
  /// sample size is unchanged (same underlying observations).
  bool condition_distributions = false;

  /// Evaluator tuning (Monte Carlo sample count etc.).
  expr::EvalOptions eval;
};

/// \brief Possible-world filter (the WHERE clause).
///
/// For an ordinary predicate, each surviving tuple's membership
/// probability is multiplied by the predicate probability and its d.f.
/// sample size is combined by Lemma 3 — this is how result tuples acquire
/// tuple uncertainty with accuracy provenance. For probability-threshold
/// and significance predicates the decision is boolean; significance
/// outcomes are recorded on the tuple.
class Filter final : public Operator {
 public:
  Filter(OperatorPtr child, expr::ExprPtr predicate,
         FilterOptions options = {});

  const Schema& schema() const override { return child_->schema(); }
  Result<std::optional<Tuple>> Next() override;
  /// Native batch pull: one child batch per iteration, the predicate
  /// evaluated over the rows in arrival order — same evaluator state
  /// sequence, hence byte-identical output to the scalar path.
  Status NextBatch(size_t max_n, TupleBatch& out) override;
  Status Reset() override;
  void BindThreadPool(ThreadPool* pool) override {
    child_->BindThreadPool(pool);
  }

  Status Close() override { return child_->Close(); }

  /// Number of UNSURE outcomes seen so far (kept or dropped).
  size_t unsure_count() const { return unsure_count_; }

 private:
  /// The per-tuple decision shared by Next and NextBatch: evaluates the
  /// predicate against `t`, folds membership probability / significance
  /// into it, and returns whether the tuple survives.
  Result<bool> ApplyOne(Tuple& t);

  OperatorPtr child_;
  TupleBatch input_;  // scratch child batch, reused across pulls
  expr::ExprPtr predicate_;
  FilterOptions options_;
  expr::Evaluator evaluator_;
  size_t unsure_count_ = 0;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_FILTER_H_
