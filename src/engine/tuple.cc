#include "src/engine/tuple.h"

#include <sstream>

namespace ausdb {
namespace engine {

void Tuple::set_accuracy(size_t i, accuracy::AccuracyInfo info) {
  if (accuracy_.size() < values_.size()) {
    accuracy_.resize(values_.size());
  }
  accuracy_[i] = std::move(info);
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) os << ", ";
    os << values_[i].ToString();
  }
  os << "]";
  if (membership_prob_ != 1.0) {
    os << " p=" << membership_prob_;
  }
  if (membership_ci_) {
    os << " p_ci=" << membership_ci_->ToString();
  }
  if (significance_) {
    os << " sig=" << hypothesis::TestOutcomeToString(*significance_);
  }
  return os.str();
}

}  // namespace engine
}  // namespace ausdb
