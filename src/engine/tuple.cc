#include "src/engine/tuple.h"

#include <sstream>

namespace ausdb {
namespace engine {

void Tuple::set_accuracy(size_t i, accuracy::AccuracyInfo info) {
  if (accuracy_.size() < values_.size()) {
    accuracy_.resize(values_.size());
  }
  accuracy_[i] = std::move(info);
}

size_t Tuple::ApproxBytes() const {
  size_t bytes = sizeof(Tuple);
  for (const expr::Value& v : values_) {
    bytes += sizeof(expr::Value);
    switch (v.type()) {
      case expr::ValueType::kString: {
        auto s = v.string_value();
        if (s.ok()) bytes += s->size();
        break;
      }
      case expr::ValueType::kRandomVar: {
        auto rv = v.random_var();
        if (!rv.ok()) break;
        // The distribution object itself plus any retained raw sample —
        // the raw sample is what dominates bootstrap-carrying tuples.
        bytes += 64;
        if (rv->raw_sample() != nullptr) {
          bytes += rv->raw_sample()->size() * sizeof(double);
        }
        break;
      }
      default:
        break;
    }
  }
  for (const auto& acc : accuracy_) {
    if (acc.has_value()) {
      bytes += sizeof(accuracy::AccuracyInfo) +
               acc->bin_cis.size() * sizeof(accuracy::ConfidenceInterval);
    }
  }
  return bytes;
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) os << ", ";
    os << values_[i].ToString();
  }
  os << "]";
  if (membership_prob_ != 1.0) {
    os << " p=" << membership_prob_;
  }
  if (membership_ci_) {
    os << " p_ci=" << membership_ci_->ToString();
  }
  if (significance_) {
    os << " sig=" << hypothesis::TestOutcomeToString(*significance_);
  }
  return os.str();
}

}  // namespace engine
}  // namespace ausdb
