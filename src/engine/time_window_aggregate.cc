#include "src/engine/time_window_aggregate.h"

#include <algorithm>
#include <limits>

#include "src/dist/gaussian.h"

namespace ausdb {
namespace engine {

Result<std::unique_ptr<TimeWindowAggregate>> TimeWindowAggregate::Make(
    OperatorPtr child, std::string timestamp_column,
    std::string value_column, std::string output_name,
    TimeWindowOptions options) {
  if (!(options.duration > 0.0)) {
    return Status::InvalidArgument("window duration must be > 0");
  }
  AUSDB_ASSIGN_OR_RETURN(size_t ts_idx,
                         child->schema().IndexOf(timestamp_column));
  if (child->schema().field(ts_idx).type != FieldType::kDouble) {
    return Status::TypeError("timestamp column '" + timestamp_column +
                             "' must be a deterministic double");
  }
  AUSDB_ASSIGN_OR_RETURN(size_t value_idx,
                         child->schema().IndexOf(value_column));
  const FieldType value_type = child->schema().field(value_idx).type;
  if (value_type != FieldType::kUncertain &&
      value_type != FieldType::kDouble) {
    return Status::TypeError("window aggregate column '" + value_column +
                             "' must be numeric");
  }
  Schema out_schema;
  AUSDB_RETURN_NOT_OK(
      out_schema.AddField({std::move(output_name), FieldType::kUncertain}));
  return std::unique_ptr<TimeWindowAggregate>(
      new TimeWindowAggregate(std::move(child), ts_idx, value_idx,
                              std::move(out_schema), options));
}

TimeWindowAggregate::TimeWindowAggregate(OperatorPtr child,
                                         size_t ts_index,
                                         size_t value_index,
                                         Schema out_schema,
                                         TimeWindowOptions options)
    : child_(std::move(child)),
      ts_index_(ts_index),
      value_index_(value_index),
      schema_(std::move(out_schema)),
      options_(options) {}

Result<std::optional<Tuple>> TimeWindowAggregate::Next() {
  AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
  if (!t.has_value()) return std::optional<Tuple>(std::nullopt);

  AUSDB_ASSIGN_OR_RETURN(double ts, t->value(ts_index_).AsDouble());
  if (options_.require_ordered && ts < last_timestamp_) {
    return Status::InvalidArgument(
        "out-of-order timestamp " + std::to_string(ts) + " after " +
        std::to_string(last_timestamp_) +
        " (set require_ordered=false to accept)");
  }
  last_timestamp_ = std::max(last_timestamp_, ts);

  const expr::Value& v = t->value(value_index_);
  Entry e;
  e.timestamp = ts;
  if (v.is_random_var()) {
    AUSDB_ASSIGN_OR_RETURN(dist::RandomVar rv, v.random_var());
    if (!rv.is_certain() &&
        rv.distribution()->kind() != dist::DistributionKind::kGaussian &&
        !options_.allow_clt_approximation) {
      return Status::NotImplemented(
          "closed-form window aggregation requires Gaussian or "
          "deterministic inputs; got " + rv.distribution()->ToString());
    }
    e.mean = rv.Mean();
    e.variance = rv.Variance();
    e.sample_size = rv.sample_size();
  } else {
    AUSDB_ASSIGN_OR_RETURN(double d, v.AsDouble());
    e.mean = d;
    e.variance = 0.0;
    e.sample_size = dist::RandomVar::kCertainSampleSize;
  }

  // Insert keeping the deque ordered by timestamp (out-of-order inputs
  // land near the back).
  auto pos = window_.end();
  while (pos != window_.begin() && (pos - 1)->timestamp > e.timestamp) {
    --pos;
  }
  window_.insert(pos, e);

  // Evict everything older than the current watermark minus duration.
  const double cutoff = last_timestamp_ - options_.duration;
  while (!window_.empty() && window_.front().timestamp <= cutoff) {
    window_.pop_front();
  }

  double sum_mean = 0.0, sum_variance = 0.0;
  size_t df = dist::RandomVar::kCertainSampleSize;
  for (const Entry& entry : window_) {
    sum_mean += entry.mean;
    sum_variance += entry.variance;
    df = std::min(df, entry.sample_size);
  }
  const double w = static_cast<double>(window_.size());
  double mean = sum_mean;
  double variance = sum_variance;
  if (options_.fn == WindowAggFn::kAvg) {
    mean /= w;
    variance /= w * w;
  }

  dist::RandomVar agg(
      std::make_shared<dist::GaussianDist>(mean, std::max(0.0, variance)),
      df);
  Tuple out({expr::Value(std::move(agg))});
  out.set_sequence(t->sequence());
  out.set_membership_prob(t->membership_prob());
  out.set_membership_df_n(t->membership_df_n());
  return std::optional<Tuple>(std::move(out));
}

Status TimeWindowAggregate::Reset() {
  window_.clear();
  last_timestamp_ = -std::numeric_limits<double>::infinity();
  return child_->Reset();
}

}  // namespace engine
}  // namespace ausdb
