#include "src/engine/time_window_aggregate.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/dist/gaussian.h"
#include "src/obs/exposition.h"
#include "src/serde/checkpoint.h"

namespace ausdb {
namespace engine {

Result<std::unique_ptr<TimeWindowAggregate>> TimeWindowAggregate::Make(
    OperatorPtr child, std::string timestamp_column,
    std::string value_column, std::string output_name,
    TimeWindowOptions options) {
  if (!(options.duration > 0.0) || !std::isfinite(options.duration)) {
    return Status::InvalidArgument("window duration must be > 0");
  }
  if (!std::isfinite(options.allowed_lateness) ||
      options.allowed_lateness < 0.0) {
    return Status::InvalidArgument(
        "allowed lateness must be finite and >= 0");
  }
  if (options.allowed_lateness > 0.0 && !options.emit_revisions) {
    return Status::InvalidArgument(
        "allowed_lateness requires emit_revisions: without revision "
        "outputs a late tuple could only corrupt already-emitted "
        "windows silently");
  }
  if (options.emit_revisions && options.require_ordered) {
    return Status::InvalidArgument(
        "revision mode consumes out-of-order input; set "
        "require_ordered=false");
  }
  AUSDB_ASSIGN_OR_RETURN(size_t ts_idx,
                         child->schema().IndexOf(timestamp_column));
  if (child->schema().field(ts_idx).type != FieldType::kDouble) {
    return Status::TypeError("timestamp column '" + timestamp_column +
                             "' must be a deterministic double");
  }
  AUSDB_ASSIGN_OR_RETURN(size_t value_idx,
                         child->schema().IndexOf(value_column));
  const FieldType value_type = child->schema().field(value_idx).type;
  if (value_type != FieldType::kUncertain &&
      value_type != FieldType::kDouble) {
    return Status::TypeError("window aggregate column '" + value_column +
                             "' must be numeric");
  }
  Schema out_schema;
  AUSDB_RETURN_NOT_OK(
      out_schema.AddField({std::move(output_name), FieldType::kUncertain}));
  if (options.emit_revisions) {
    AUSDB_RETURN_NOT_OK(
        out_schema.AddField({"window_end", FieldType::kDouble}));
    AUSDB_RETURN_NOT_OK(
        out_schema.AddField({"revision", FieldType::kBool}));
  }
  return std::unique_ptr<TimeWindowAggregate>(
      new TimeWindowAggregate(std::move(child), ts_idx, value_idx,
                              std::move(out_schema), options));
}

TimeWindowAggregate::TimeWindowAggregate(OperatorPtr child,
                                         size_t ts_index,
                                         size_t value_index,
                                         Schema out_schema,
                                         TimeWindowOptions options)
    : child_(std::move(child)),
      ts_index_(ts_index),
      value_index_(value_index),
      schema_(std::move(out_schema)),
      options_(options) {}

Result<TimeWindowAggregate::Entry> TimeWindowAggregate::ExtractEntry(
    const Tuple& t, double ts) const {
  const expr::Value& v = t.value(value_index_);
  Entry e;
  e.timestamp = ts;
  e.sequence = t.sequence();
  if (v.is_random_var()) {
    AUSDB_ASSIGN_OR_RETURN(dist::RandomVar rv, v.random_var());
    if (!rv.is_certain() &&
        rv.distribution()->kind() != dist::DistributionKind::kGaussian &&
        !options_.allow_clt_approximation) {
      return Status::NotImplemented(
          "closed-form window aggregation requires Gaussian or "
          "deterministic inputs; got " + rv.distribution()->ToString());
    }
    e.mean = rv.Mean();
    e.variance = rv.Variance();
    e.sample_size = rv.sample_size();
  } else {
    AUSDB_ASSIGN_OR_RETURN(double d, v.AsDouble());
    e.mean = d;
    e.variance = 0.0;
    e.sample_size = dist::RandomVar::kCertainSampleSize;
  }
  return e;
}

Result<std::optional<Tuple>> TimeWindowAggregate::Next() {
  if (options_.emit_revisions) return NextRevising();
  return NextLegacy();
}

Result<std::optional<Tuple>> TimeWindowAggregate::NextLegacy() {
  AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
  if (!t.has_value()) return std::optional<Tuple>(std::nullopt);
  ++input_consumed_;

  AUSDB_ASSIGN_OR_RETURN(double ts, t->value(ts_index_).AsDouble());
  if (!std::isfinite(ts)) {
    return Status::InvalidArgument(
        "non-finite window timestamp " + std::to_string(ts) +
        " (event time must be a finite double)");
  }
  if (options_.require_ordered && ts < last_timestamp_) {
    return Status::InvalidArgument(
        "out-of-order timestamp " + std::to_string(ts) + " after " +
        std::to_string(last_timestamp_) +
        " (set require_ordered=false to accept)");
  }
  last_timestamp_ = std::max(last_timestamp_, ts);

  AUSDB_ASSIGN_OR_RETURN(Entry e, ExtractEntry(*t, ts));

  // Insert keeping the deque ordered by timestamp (out-of-order inputs
  // land near the back).
  auto pos = window_.end();
  while (pos != window_.begin() && (pos - 1)->timestamp > e.timestamp) {
    --pos;
  }
  window_.insert(pos, e);

  // Evict everything older than the current watermark minus duration.
  const double cutoff = last_timestamp_ - options_.duration;
  while (!window_.empty() && window_.front().timestamp <= cutoff) {
    window_.pop_front();
  }

  double sum_mean = 0.0, sum_variance = 0.0;
  size_t df = dist::RandomVar::kCertainSampleSize;
  for (const Entry& entry : window_) {
    sum_mean += entry.mean;
    sum_variance += entry.variance;
    df = std::min(df, entry.sample_size);
  }
  const double w = static_cast<double>(window_.size());
  double mean = sum_mean;
  double variance = sum_variance;
  if (options_.fn == WindowAggFn::kAvg) {
    mean /= w;
    variance /= w * w;
  }

  dist::RandomVar agg(
      std::make_shared<dist::GaussianDist>(mean, std::max(0.0, variance)),
      df);
  Tuple out({expr::Value(std::move(agg))});
  out.set_sequence(t->sequence());
  out.set_membership_prob(t->membership_prob());
  out.set_membership_df_n(t->membership_df_n());
  return std::optional<Tuple>(std::move(out));
}

void TimeWindowAggregate::InsertSorted(const Entry& e) {
  auto pos = window_.end();
  while (pos != window_.begin()) {
    const Entry& prev = *(pos - 1);
    if (prev.timestamp < e.timestamp ||
        (prev.timestamp == e.timestamp && prev.sequence <= e.sequence)) {
      break;
    }
    --pos;
  }
  window_.insert(pos, e);
}

TimeWindowAggregate::Output TimeWindowAggregate::ComputeWindow(
    double window_end, bool revision, const Tuple& trigger) const {
  const double lo = window_end - options_.duration;
  double sum_mean = 0.0, sum_variance = 0.0;
  size_t df = dist::RandomVar::kCertainSampleSize;
  size_t count = 0;
  for (const Entry& entry : window_) {
    if (entry.timestamp <= lo) continue;
    if (entry.timestamp > window_end) break;
    sum_mean += entry.mean;
    sum_variance += entry.variance;
    df = std::min(df, entry.sample_size);
    ++count;
  }
  const double w = static_cast<double>(count);
  double mean = sum_mean;
  double variance = sum_variance;
  if (options_.fn == WindowAggFn::kAvg && count > 0) {
    mean /= w;
    variance /= w * w;
  }
  Output o;
  o.window_end = window_end;
  o.mean = mean;
  o.variance = variance;
  o.df = df;
  o.revision = revision;
  o.sequence = trigger.sequence();
  o.membership_prob = trigger.membership_prob();
  o.membership_df_n = trigger.membership_df_n();
  return o;
}

Tuple TimeWindowAggregate::MaterializeOutput(const Output& o) const {
  dist::RandomVar agg(
      std::make_shared<dist::GaussianDist>(o.mean,
                                           std::max(0.0, o.variance)),
      o.df);
  Tuple out({expr::Value(std::move(agg)), expr::Value(o.window_end),
             expr::Value(o.revision)});
  out.set_sequence(o.sequence);
  out.set_membership_prob(o.membership_prob);
  out.set_membership_df_n(o.membership_df_n);
  return out;
}

Result<std::optional<Tuple>> TimeWindowAggregate::NextRevising() {
  for (;;) {
    if (!pending_.empty()) {
      Tuple out = MaterializeOutput(pending_.front());
      pending_.pop_front();
      return std::optional<Tuple>(std::move(out));
    }
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
    if (!t.has_value()) return std::optional<Tuple>(std::nullopt);
    ++input_consumed_;

    AUSDB_ASSIGN_OR_RETURN(double ts, t->value(ts_index_).AsDouble());
    if (!std::isfinite(ts)) {
      return Status::InvalidArgument(
          "non-finite window timestamp " + std::to_string(ts) +
          " (event time must be a finite double)");
    }

    if (ts >= last_timestamp_ || window_.empty()) {
      // In-order arrival: advance the horizon, retire what can no
      // longer be revised, emit this window.
      AUSDB_ASSIGN_OR_RETURN(Entry e, ExtractEntry(*t, ts));
      last_timestamp_ = std::max(last_timestamp_, ts);
      InsertSorted(e);
      const double horizon = last_timestamp_ - options_.allowed_lateness;
      const double retention = horizon - options_.duration;
      while (!window_.empty() &&
             window_.front().timestamp <= retention) {
        window_.pop_front();
      }
      while (!emitted_ends_.empty() && emitted_ends_.front() <= horizon &&
             emitted_ends_.front() < ts) {
        emitted_ends_.pop_front();
      }
      pending_.push_back(ComputeWindow(ts, /*revision=*/false, *t));
      if (emitted_ends_.empty() || emitted_ends_.back() != ts) {
        emitted_ends_.push_back(ts);
      }
      continue;
    }

    // Late arrival.
    const double horizon = last_timestamp_ - options_.allowed_lateness;
    if (ts <= horizon) {
      ++shed_late_;
      continue;
    }
    AUSDB_ASSIGN_OR_RETURN(Entry e, ExtractEntry(*t, ts));
    InsertSorted(e);
    // Re-emit every already-emitted window this straggler falls into —
    // ends in [ts, ts + duration) — plus the straggler's own window end
    // if it was never emitted, all ascending so downstream folds see
    // revisions in event-time order.
    bool own_end_known = false;
    for (double end : emitted_ends_) {
      if (end < ts) continue;
      if (end >= ts + options_.duration) break;
      if (end == ts) own_end_known = true;
    }
    if (!own_end_known) {
      auto pos = emitted_ends_.begin();
      while (pos != emitted_ends_.end() && *pos < ts) ++pos;
      emitted_ends_.insert(pos, ts);
    }
    size_t revised = 0;
    for (double end : emitted_ends_) {
      if (end < ts) continue;
      if (end >= ts + options_.duration) break;
      pending_.push_back(ComputeWindow(end, /*revision=*/true, *t));
      ++revised;
    }
    if (options_.journal != nullptr && revised > 0) {
      // FormatMetricValue keeps the event-time detail byte-stable.
      options_.journal->Append(
          obs::EventType::kLateRevision, input_consumed_, "time_window",
          "late tuple at t=" + obs::FormatMetricValue(ts) + " revised " +
              std::to_string(revised) + " window(s)");
    }
  }
}

Status TimeWindowAggregate::Reset() {
  window_.clear();
  emitted_ends_.clear();
  pending_.clear();
  last_timestamp_ = -std::numeric_limits<double>::infinity();
  input_consumed_ = 0;
  shed_late_ = 0;
  return child_->Reset();
}

Result<std::string> TimeWindowAggregate::SaveCheckpoint() const {
  serde::CheckpointWriter w;
  w.Token("twagg.v1");
  w.Uint(static_cast<uint64_t>(options_.fn));
  w.Double(options_.duration);
  w.Uint(options_.require_ordered ? 1 : 0);
  w.Uint(options_.emit_revisions ? 1 : 0);
  w.Double(options_.allowed_lateness);
  w.Double(last_timestamp_);
  w.Uint(input_consumed_);
  w.Uint(shed_late_);
  w.Uint(window_.size());
  for (const Entry& e : window_) {
    w.Double(e.timestamp);
    w.Double(e.mean);
    w.Double(e.variance);
    w.Uint(e.sample_size);
    w.Uint(e.sequence);
  }
  w.Uint(emitted_ends_.size());
  for (double end : emitted_ends_) w.Double(end);
  w.Uint(pending_.size());
  for (const Output& o : pending_) {
    w.Double(o.window_end);
    w.Double(o.mean);
    w.Double(o.variance);
    w.Uint(o.df);
    w.Uint(o.revision ? 1 : 0);
    w.Uint(o.sequence);
    w.Double(o.membership_prob);
    w.Uint(o.membership_df_n);
  }
  return std::move(w).Finish();
}

Status TimeWindowAggregate::RestoreCheckpoint(std::string_view blob) {
  serde::CheckpointReader r(blob);
  AUSDB_RETURN_NOT_OK(r.ExpectToken("twagg.v1"));
  AUSDB_ASSIGN_OR_RETURN(uint64_t fn, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(double duration, r.NextDouble());
  AUSDB_ASSIGN_OR_RETURN(uint64_t require_ordered, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(uint64_t emit_revisions, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(double allowed_lateness, r.NextDouble());
  if (fn != static_cast<uint64_t>(options_.fn) ||
      duration != options_.duration ||
      (require_ordered != 0) != options_.require_ordered ||
      (emit_revisions != 0) != options_.emit_revisions ||
      allowed_lateness != options_.allowed_lateness) {
    return Status::InvalidArgument(
        "checkpoint was taken from a differently configured "
        "TimeWindowAggregate");
  }
  AUSDB_ASSIGN_OR_RETURN(double last_timestamp, r.NextDouble());
  AUSDB_ASSIGN_OR_RETURN(uint64_t input_consumed, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(uint64_t shed_late, r.NextUint());
  // Each entry is 3 hex doubles + 2 uints: >= 40 bytes with separators.
  AUSDB_ASSIGN_OR_RETURN(uint64_t count, r.NextCount(40));
  std::deque<Entry> window;
  for (uint64_t i = 0; i < count; ++i) {
    Entry e;
    AUSDB_ASSIGN_OR_RETURN(e.timestamp, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(e.mean, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(e.variance, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(e.sample_size, r.NextUint());
    AUSDB_ASSIGN_OR_RETURN(e.sequence, r.NextUint());
    window.push_back(e);
  }
  AUSDB_ASSIGN_OR_RETURN(uint64_t ends_count, r.NextCount(17));
  std::deque<double> ends;
  for (uint64_t i = 0; i < ends_count; ++i) {
    AUSDB_ASSIGN_OR_RETURN(double end, r.NextDouble());
    ends.push_back(end);
  }
  // Each pending output: 4 hex doubles + 4 uints: >= 60 bytes.
  AUSDB_ASSIGN_OR_RETURN(uint64_t pending_count, r.NextCount(60));
  std::deque<Output> pending;
  for (uint64_t i = 0; i < pending_count; ++i) {
    Output o;
    AUSDB_ASSIGN_OR_RETURN(o.window_end, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(o.mean, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(o.variance, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(o.df, r.NextUint());
    AUSDB_ASSIGN_OR_RETURN(uint64_t revision, r.NextUint());
    o.revision = revision != 0;
    AUSDB_ASSIGN_OR_RETURN(o.sequence, r.NextUint());
    AUSDB_ASSIGN_OR_RETURN(o.membership_prob, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(o.membership_df_n, r.NextUint());
    pending.push_back(o);
  }
  window_ = std::move(window);
  emitted_ends_ = std::move(ends);
  pending_ = std::move(pending);
  last_timestamp_ = last_timestamp;
  input_consumed_ = input_consumed;
  shed_late_ = shed_late;
  return Status::OK();
}

}  // namespace engine
}  // namespace ausdb
