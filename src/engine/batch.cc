#include "src/engine/batch.h"

namespace ausdb {
namespace engine {

Status TupleBatch::GatherColumns(const Schema& schema) {
  if (gathered_) return Status::OK();
  // Reuse slice storage across batches: rebuild the field list only when
  // the schema shape changed (operators pull one schema for life).
  size_t slot = 0;
  for (size_t f = 0; f < schema.num_fields(); ++f) {
    if (schema.field(f).type != FieldType::kDouble) continue;
    if (slot >= slices_.size()) slices_.push_back({f, {}});
    slices_[slot].field_index = f;
    std::vector<double>& out = slices_[slot].values;
    out.clear();
    out.reserve(rows_.size());
    for (const Tuple& t : rows_) {
      if (f >= t.num_values()) {
        return Status::TypeError(
            "tuple narrower than schema while gathering column " +
            schema.field(f).name);
      }
      AUSDB_ASSIGN_OR_RETURN(double v, t.value(f).AsDouble());
      out.push_back(v);
    }
    ++slot;
  }
  slices_.resize(slot);
  gathered_ = true;
  return Status::OK();
}

std::span<const double> TupleBatch::Column(size_t field_index) const {
  if (!gathered_) return {};
  for (const Slice& s : slices_) {
    if (s.field_index == field_index) {
      return std::span<const double>(s.values);
    }
  }
  return {};
}

}  // namespace engine
}  // namespace ausdb
