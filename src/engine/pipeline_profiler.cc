#include "src/engine/pipeline_profiler.h"

#include <utility>

#include "src/obs/exposition.h"

namespace ausdb {
namespace engine {

size_t PipelineProfile::AddOperator(std::string name) {
  slots_.push_back(OperatorProfile{std::move(name)});
  return slots_.size() - 1;
}

std::string PipelineProfile::CountersJson() const {
  std::string out = "{\"operators\":[";
  bool first = true;
  for (const OperatorProfile& s : slots_) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":" + obs::JsonEscape(s.name) +
           ",\"next_calls\":" + std::to_string(s.next_calls) +
           ",\"batch_calls\":" + std::to_string(s.batch_calls) +
           ",\"tuples\":" + std::to_string(s.tuples) +
           ",\"errors\":" + std::to_string(s.errors) + "}";
  }
  out += "]}";
  return out;
}

std::string PipelineProfile::ReportString() const {
  std::string out;
  // Root first: slot order is bottom-up, so walk it backwards and
  // compute each stage's selectivity against the slot feeding it.
  for (size_t i = slots_.size(); i-- > 0;) {
    const OperatorProfile& s = slots_[i];
    out += s.name + ": tuples=" + std::to_string(s.tuples) +
           " next_calls=" + std::to_string(s.next_calls) +
           " batch_calls=" + std::to_string(s.batch_calls) +
           " errors=" + std::to_string(s.errors);
    if (i > 0 && slots_[i - 1].tuples > 0) {
      out += " selectivity=" +
             obs::FormatMetricValue(
                 static_cast<double>(s.tuples) /
                 static_cast<double>(slots_[i - 1].tuples));
    }
    out.push_back('\n');
  }
  return out;
}

std::string PipelineProfile::LatencyAnnexString() const {
  std::string out =
      "-- latency annex (sampled wall clock, non-deterministic) --\n";
  for (size_t i = slots_.size(); i-- > 0;) {
    const OperatorProfile& s = slots_[i];
    out += s.name + ": samples=" + std::to_string(s.latency_samples);
    if (s.latency_samples > 0) {
      out += " mean=" +
             obs::FormatMetricValue(obs::NanosToSeconds(
                 s.sampled_nanos / s.latency_samples)) +
             "s";
    }
    out.push_back('\n');
  }
  return out;
}

ProfiledOperator::ProfiledOperator(OperatorPtr child,
                                   PipelineProfile* profile, size_t slot,
                                   const obs::Clock* clock,
                                   uint32_t latency_sample_period)
    : child_(std::move(child)),
      profile_(profile),
      slot_(slot),
      clock_(clock),
      latency_sample_period_(
          latency_sample_period == 0 ? 1 : latency_sample_period) {}

Result<std::optional<Tuple>> ProfiledOperator::Next() {
  OperatorProfile& s = profile_->slot(slot_);
  ++s.next_calls;
  const bool sample =
      clock_ != nullptr && (call_index_++ % latency_sample_period_) == 0;
  const uint64_t start = sample ? clock_->NowNanos() : 0;
  Result<std::optional<Tuple>> result = child_->Next();
  if (sample) {
    s.sampled_nanos += clock_->NowNanos() - start;
    ++s.latency_samples;
  }
  if (!result.ok()) {
    ++s.errors;
  } else if (result.ValueOrDie().has_value()) {
    ++s.tuples;
  }
  return result;
}

Status ProfiledOperator::NextBatch(size_t max_n, TupleBatch& out) {
  OperatorProfile& s = profile_->slot(slot_);
  ++s.batch_calls;
  const bool sample =
      clock_ != nullptr && (call_index_++ % latency_sample_period_) == 0;
  const uint64_t start = sample ? clock_->NowNanos() : 0;
  const Status status = child_->NextBatch(max_n, out);
  if (sample) {
    s.sampled_nanos += clock_->NowNanos() - start;
    ++s.latency_samples;
  }
  if (!status.ok()) {
    ++s.errors;
  } else {
    s.tuples += out.size();
  }
  return status;
}

OperatorPtr Profile(OperatorPtr child, const std::string& op_name,
                    PipelineProfile* profile, const obs::Clock* clock,
                    uint32_t latency_sample_period) {
  if (profile == nullptr) return child;
  const size_t slot = profile->AddOperator(op_name);
  return std::make_unique<ProfiledOperator>(std::move(child), profile, slot,
                                            clock, latency_sample_period);
}

}  // namespace engine
}  // namespace ausdb
