#include "src/engine/instrumented_operator.h"

#include <utility>

#include "src/common/logging.h"

namespace ausdb {
namespace engine {

InstrumentedOperator::InstrumentedOperator(OperatorPtr child,
                                           const std::string& op_name,
                                           obs::MetricRegistry* registry,
                                           const obs::Clock* clock,
                                           uint32_t latency_sample_period)
    : child_(std::move(child)),
      clock_(clock),
      latency_sample_period_(latency_sample_period) {
  AUSDB_CHECK(child_ != nullptr);
  AUSDB_CHECK(registry != nullptr);
  AUSDB_CHECK(clock_ != nullptr);
  AUSDB_CHECK(latency_sample_period_ >= 1);
  const std::vector<obs::Label> labels = {{"operator", op_name}};
  tuples_ = registry->GetCounter("ausdb_engine_tuples_total", labels,
                                 "Tuples emitted by the operator.");
  next_calls_ = registry->GetCounter("ausdb_engine_next_calls_total", labels,
                                     "Next() pulls issued to the operator.");
  next_errors_ =
      registry->GetCounter("ausdb_engine_next_errors_total", labels,
                           "Next() pulls that returned a failure Status.");
  next_latency_ = registry->GetHistogram(
      "ausdb_engine_next_latency_seconds", labels,
      obs::DefaultLatencySecondsBoundaries(),
      "Wall-clock latency of one Next() pull, in seconds.");
}

Result<std::optional<Tuple>> InstrumentedOperator::Next() {
  next_calls_->Increment();
  // Next() follows the single-puller volcano contract, so the sample
  // index is a plain member. The first call is always timed.
  const bool timed = call_index_++ % latency_sample_period_ == 0;
  const uint64_t start = timed ? clock_->NowNanos() : 0;
  Result<std::optional<Tuple>> result = child_->Next();
  if (timed) {
    next_latency_->Record(obs::NanosToSeconds(clock_->NowNanos() - start));
  }
  if (!result.ok()) {
    next_errors_->Increment();
  } else if (result.ValueOrDie().has_value()) {
    tuples_->Increment();
  }
  return result;
}

Status InstrumentedOperator::NextBatch(size_t max_n, TupleBatch& out) {
  next_calls_->Increment();
  const bool timed = call_index_++ % latency_sample_period_ == 0;
  const uint64_t start = timed ? clock_->NowNanos() : 0;
  Status status = child_->NextBatch(max_n, out);
  if (timed) {
    next_latency_->Record(obs::NanosToSeconds(clock_->NowNanos() - start));
  }
  if (!status.ok()) {
    next_errors_->Increment();
  } else {
    tuples_->Increment(static_cast<uint64_t>(out.size()));
  }
  return status;
}

OperatorPtr Instrument(OperatorPtr child, const std::string& op_name,
                       obs::MetricRegistry* registry,
                       const obs::Clock* clock,
                       uint32_t latency_sample_period) {
  if (registry == nullptr) return child;
  return std::make_unique<InstrumentedOperator>(
      std::move(child), op_name, registry, clock, latency_sample_period);
}

}  // namespace engine
}  // namespace ausdb
