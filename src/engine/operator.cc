#include "src/engine/operator.h"

namespace ausdb {
namespace engine {

Status Operator::NextBatch(size_t max_n, TupleBatch& out) {
  out.Clear();
  if (max_n == 0) {
    return Status::InvalidArgument("batch size must be >= 1");
  }
  // Default fallback: a batch is just max_n scalar pulls, so operators
  // without a native batched path keep their exact scalar semantics.
  for (size_t i = 0; i < max_n; ++i) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, Next());
    if (!t.has_value()) break;
    out.rows().push_back(std::move(*t));
  }
  return Status::OK();
}

}  // namespace engine
}  // namespace ausdb
