#ifndef AUSDB_ENGINE_REORDER_BUFFER_H_
#define AUSDB_ENGINE_REORDER_BUFFER_H_

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "src/common/memory_budget.h"
#include "src/engine/operator.h"
#include "src/govern/ladder.h"
#include "src/obs/metrics.h"
#include "src/stream/watermark.h"

namespace ausdb {
namespace engine {

/// What a full ReorderBuffer does with the oldest buffered tuple.
enum class ReorderOverflowPolicy {
  /// Stall the watermark contract instead of dropping data: the oldest
  /// buffered tuple is force-released early (before the watermark
  /// passes it), counted in stats().forced_releases. Released output
  /// stays monotone in event time, but a later in-bound straggler may
  /// now surface as a late tuple downstream — precision is shed, data
  /// never is.
  kBlock,
  /// Drop the oldest buffered tuple, counted in stats().shed. Bounded
  /// memory at the cost of data loss — the loud (counted) variant of
  /// what an unbounded queue would eventually do silently via OOM.
  kShedOldest,
};

/// Options of the ReorderBuffer operator.
struct ReorderBufferOptions {
  /// Event-time lateness bound, in timestamp units: tuples are held
  /// until the watermark (max observed timestamp minus this bound)
  /// passes them. 0 degenerates to pass-through with duplicate/late
  /// accounting only.
  double lateness_bound = 0.0;

  /// Maximum buffered tuples; 0 means unbounded. When exceeded,
  /// `overflow` decides.
  size_t capacity = 4096;

  ReorderOverflowPolicy overflow = ReorderOverflowPolicy::kBlock;

  /// Drop tuples whose sequence number was already admitted (at-least-
  /// once upstreams re-delivering). The seen-set is pruned one lateness
  /// bound below the watermark, so a duplicate older than
  /// watermark - 2*bound passes through as an ordinary late tuple.
  bool dedupe_by_sequence = false;

  /// When non-null, buffer observability is mirrored into
  /// `ausdb_engine_reorder_*` metrics labeled `{buffer=metrics_label}`.
  /// Write-only, per the obs contract: delivered output is
  /// bit-identical with metrics on or off.
  obs::MetricRegistry* metrics = nullptr;
  std::string metrics_label = "reorder";

  /// \brief Degradation ladder shared with the plan's GovernorGate.
  ///
  /// When set, a tuple stamped with precision rung k shrinks the hold
  /// horizon to lateness_bound * rungs[k].lateness_scale: the buffer
  /// releases earlier under pressure, so stragglers beyond the
  /// shortened horizon surface as *late* tuples for the downstream
  /// window's allowed-lateness revision path — precision is shed
  /// (coarser real-time answer, more revisions), data never is. The
  /// effective horizon is a pure function of the stamped tuple
  /// sequence, preserving the determinism contract. Null ignores rung
  /// stamps.
  std::shared_ptr<const govern::LadderPolicy> ladder;

  /// \brief Per-plan memory budget this buffer charges its held tuples
  /// against (Tuple::ApproxBytes). A refused reservation surfaces as a
  /// loud kResourceExhausted from Next() instead of unbounded growth.
  /// Null disables charging. Must outlive the operator.
  MemoryBudget* memory_budget = nullptr;
};

/// Observability counters of a ReorderBuffer.
struct ReorderStats {
  size_t admitted = 0;          ///< tuples accepted from the child
  size_t late = 0;              ///< arrived at/below the watermark, passed through
  size_t shed = 0;              ///< dropped on overflow (kShedOldest)
  size_t forced_releases = 0;   ///< released early on overflow (kBlock)
  size_t duplicates = 0;        ///< dropped by sequence dedupe
  /// Released before the true watermark because a governed rung
  /// shortened the hold horizon.
  size_t early_releases = 0;
};

/// \brief Bounded-lateness reorder stage: holds tuples up to the
/// lateness bound and releases them in event-time order as the
/// watermark advances, turning in-bound disorder back into an ordered
/// stream before it reaches the window operators.
///
/// Determinism contract: release decisions are a pure function of the
/// input tuple sequence (via WatermarkPolicy — never wall clock), so
/// output is bit-identical across async prefetch depths, thread counts
/// and checkpoint/restore. Ties release in (timestamp, sequence) order.
///
/// Tuples already at or below the watermark on arrival cannot be
/// reordered any more; they pass through immediately (counted late) for
/// the downstream window to revise within its allowed-lateness horizon.
/// At end of stream the buffer flushes in event-time order.
class ReorderBuffer final : public Operator,
                            public stream::WatermarkProvider {
 public:
  static Result<std::unique_ptr<ReorderBuffer>> Make(
      OperatorPtr child, std::string timestamp_column,
      ReorderBufferOptions options = {});

  const Schema& schema() const override { return child_->schema(); }
  Result<std::optional<Tuple>> Next() override;
  Status Reset() override;
  Status Close() override { return child_->Close(); }
  void BindThreadPool(ThreadPool* pool) override {
    child_->BindThreadPool(pool);
  }

  /// Checkpoints the watermark state and every buffered (and released-
  /// but-undelivered) tuple — checkpoint v4's new surface — so a crash
  /// mid-disorder restores bit-identically. Format token "rob.v1";
  /// governed buffers (a ladder is bound) write "rob.v2", which adds
  /// the governed horizon floor — restoring a governed buffer at full
  /// horizon would change release decisions. Restore accepts both.
  Result<std::string> SaveCheckpoint() const override;
  Status RestoreCheckpoint(std::string_view blob) override;

  ~ReorderBuffer() override;

  /// Output watermark downstream operators may trust: no future tuple
  /// this buffer *releases in order* has a timestamp at or below it.
  /// Governed early releases raise it past the policy watermark.
  double CurrentWatermark() const override { return EffectiveWatermark(); }

  const ReorderStats& stats() const { return stats_; }

  /// Tuples currently held (excludes released-but-undelivered ones) —
  /// the crash-point sweep asserts this is non-zero at a crash site.
  size_t buffered_count() const { return buffer_.size(); }

  /// Tuples released but not yet delivered through Next() — together
  /// with buffered_count() this closes the accounting invariant:
  /// admitted == delivered + late + shed + duplicates-excluded +
  /// buffered + pending at every point of the pull loop.
  size_t pending_release_count() const { return ready_.size(); }

 private:
  ReorderBuffer(OperatorPtr child, size_t ts_index,
                ReorderBufferOptions options);

  /// A held tuple with its precomputed release key and the bytes it
  /// charged against the memory budget (0 when uncharged).
  struct Held {
    std::pair<double, uint64_t> key;
    Tuple tuple;
    size_t bytes = 0;
  };

  /// The hold-horizon scale of a stamped precision rung (1.0 when
  /// ungoverned).
  double LatenessScaleFor(uint32_t rung) const;

  /// The watermark release decisions actually use: the policy
  /// watermark, raised by the governed horizon floor when a ladder is
  /// bound.
  double EffectiveWatermark() const;

  /// Returns budget bytes charged for `held` (buffer exit).
  void ReleaseCharge(Held& held);

  /// Inserts into buffer_ keeping (timestamp, sequence) order. Ordered
  /// arrivals append at the back in O(1) — the hot path pays no
  /// per-tuple node allocation, which is why this is a deque and not a
  /// map — and in-bound disorder shifts at most O(buffered) entries.
  void Insert(double ts, Tuple t, size_t bytes);
  /// Moves buffered tuples at/below the watermark into ready_.
  void ReleaseUpToWatermark();
  void EnforceCapacity();
  void PruneSeen();
  void UpdateGauges();

  OperatorPtr child_;
  size_t ts_index_;
  ReorderBufferOptions options_;
  stream::WatermarkPolicy watermark_;

  /// Held tuples, sorted by (timestamp, sequence) — release order,
  /// oldest at the front.
  std::deque<Held> buffer_;
  /// Released, awaiting delivery through Next().
  std::deque<Tuple> ready_;
  /// Admitted sequences (dedupe_by_sequence), with their timestamps for
  /// watermark-based pruning.
  std::map<uint64_t, double> seen_;
  bool exhausted_ = false;
  ReorderStats stats_;

  /// Governed horizon floor: max over admitted tuples of
  /// ts - lateness_bound * scale(rung). -inf until a governed tuple
  /// arrives; never above the policy's max-timestamp watermark path
  /// for rung-0 traffic, so ungoverned behavior is unchanged.
  bool has_horizon_floor_ = false;
  double horizon_floor_ = 0.0;

  /// Registry-owned metrics; all null when options_.metrics is null.
  obs::Gauge* m_depth_ = nullptr;
  obs::Gauge* m_watermark_milli_ = nullptr;
  obs::Counter* m_late_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_forced_ = nullptr;
  obs::Counter* m_duplicates_ = nullptr;
  obs::Counter* m_early_ = nullptr;
  obs::Histogram* m_lag_ = nullptr;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_REORDER_BUFFER_H_
