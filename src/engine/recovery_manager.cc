#include "src/engine/recovery_manager.h"

#include <algorithm>

#include "src/serde/checkpoint.h"

namespace ausdb {
namespace engine {

namespace {

constexpr std::string_view kManifestVersion = "manifest.v1";

}  // namespace

RecoveryManager::RecoveryManager(std::string directory,
                                 RecoveryManagerOptions options)
    : storage_(std::move(directory), "pipeline",
               serde::CheckpointStorageOptions{options.keep_generations,
                                               options.crash_points}) {}

Status RecoveryManager::RegisterSource(std::string name,
                                       ReplayableSource* source) {
  if (source == nullptr) {
    return Status::InvalidArgument("source must not be null");
  }
  for (const auto& [existing, unused] : sources_) {
    if (existing == name) {
      return Status::AlreadyExists("source '" + name +
                                   "' already registered");
    }
  }
  sources_.emplace_back(std::move(name), source);
  return Status::OK();
}

Status RecoveryManager::RegisterOperator(std::string name, Operator* op) {
  if (op == nullptr) {
    return Status::InvalidArgument("operator must not be null");
  }
  for (const auto& [existing, unused] : operators_) {
    if (existing == name) {
      return Status::AlreadyExists("operator '" + name +
                                   "' already registered");
    }
  }
  operators_.emplace_back(std::move(name), op);
  return Status::OK();
}

Result<std::string> RecoveryManager::EncodeManifest(
    uint64_t outputs_delivered) const {
  serde::CheckpointWriter w;
  w.Token(kManifestVersion);
  w.Uint(outputs_delivered);
  w.Uint(sources_.size());
  for (const auto& [name, source] : sources_) {
    w.Bytes(name);
    w.Uint(source->position());
  }
  w.Uint(operators_.size());
  for (const auto& [name, op] : operators_) {
    w.Bytes(name);
    AUSDB_ASSIGN_OR_RETURN(std::string blob, op->SaveCheckpoint());
    w.Bytes(blob);
  }
  return std::move(w).Finish();
}

Result<uint64_t> RecoveryManager::Checkpoint(uint64_t outputs_delivered) {
  AUSDB_ASSIGN_OR_RETURN(std::string manifest,
                         EncodeManifest(outputs_delivered));
  return storage_.Write(manifest);
}

Status RecoveryManager::ApplyManifest(std::string_view payload,
                                      uint64_t* outputs_delivered) {
  serde::CheckpointReader r(payload);
  AUSDB_RETURN_NOT_OK(r.ExpectToken(kManifestVersion));
  AUSDB_ASSIGN_OR_RETURN(*outputs_delivered, r.NextUint());

  // Decode fully before touching any live object, so a manifest whose
  // tail is unreadable does not half-apply.
  AUSDB_ASSIGN_OR_RETURN(uint64_t nsources, r.NextCount(4));
  std::vector<std::pair<std::string, uint64_t>> positions;
  for (uint64_t i = 0; i < nsources; ++i) {
    AUSDB_ASSIGN_OR_RETURN(std::string name, r.NextBytes());
    AUSDB_ASSIGN_OR_RETURN(uint64_t position, r.NextUint());
    positions.emplace_back(std::move(name), position);
  }
  AUSDB_ASSIGN_OR_RETURN(uint64_t nops, r.NextCount(4));
  std::vector<std::pair<std::string, std::string>> blobs;
  for (uint64_t i = 0; i < nops; ++i) {
    AUSDB_ASSIGN_OR_RETURN(std::string name, r.NextBytes());
    AUSDB_ASSIGN_OR_RETURN(std::string blob, r.NextBytes());
    blobs.emplace_back(std::move(name), std::move(blob));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("manifest has trailing tokens");
  }
  if (positions.size() != sources_.size() ||
      blobs.size() != operators_.size()) {
    return Status::InvalidArgument(
        "manifest was taken from a differently shaped pipeline (" +
        std::to_string(positions.size()) + " sources, " +
        std::to_string(blobs.size()) + " operators)");
  }

  for (size_t i = 0; i < sources_.size(); ++i) {
    if (positions[i].first != sources_[i].first) {
      return Status::InvalidArgument("manifest source '" +
                                     positions[i].first +
                                     "' does not match registered '" +
                                     sources_[i].first + "'");
    }
  }
  for (size_t i = 0; i < operators_.size(); ++i) {
    if (blobs[i].first != operators_[i].first) {
      return Status::InvalidArgument("manifest operator '" +
                                     blobs[i].first +
                                     "' does not match registered '" +
                                     operators_[i].first + "'");
    }
  }

  for (size_t i = 0; i < operators_.size(); ++i) {
    AUSDB_RETURN_NOT_OK(
        operators_[i].second->RestoreCheckpoint(blobs[i].second));
  }
  for (size_t i = 0; i < sources_.size(); ++i) {
    AUSDB_RETURN_NOT_OK(sources_[i].second->SeekTo(positions[i].second));
  }
  return Status::OK();
}

Result<std::optional<RecoveryManager::RecoveredState>>
RecoveryManager::Restore() {
  std::vector<uint64_t> generations = storage_.ListGenerations();
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    Result<std::string> payload = storage_.ReadGeneration(*it);
    if (!payload.ok()) continue;  // torn/corrupt: fall back a generation
    RecoveredState state;
    state.generation = *it;
    const Status applied =
        ApplyManifest(payload.ValueOrDie(), &state.outputs_delivered);
    if (applied.ok()) {
      return std::optional<RecoveredState>(state);
    }
    // A manifest that decodes but does not apply (e.g. an operator blob
    // from an incompatible configuration) falls back the same way; any
    // later successful attempt rewrites every piece of state it touched.
  }
  return std::optional<RecoveredState>(std::nullopt);
}

}  // namespace engine
}  // namespace ausdb
