#include "src/engine/recovery_manager.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/serde/checkpoint.h"

namespace ausdb {
namespace engine {

namespace {

constexpr std::string_view kManifestVersion = "manifest.v1";

serde::CheckpointStorageOptions StorageOptions(
    const RecoveryManagerOptions& options) {
  serde::CheckpointStorageOptions storage;
  storage.keep_generations = options.keep_generations;
  storage.crash_points = options.crash_points;
  storage.metrics = options.metrics;
  storage.clock = options.clock;
  return storage;
}

}  // namespace

RecoveryManager::RecoveryManager(std::string directory,
                                 RecoveryManagerOptions options)
    : storage_(std::move(directory), "pipeline", StorageOptions(options)),
      options_(options) {
  if (options_.metrics != nullptr) {
    obs::MetricRegistry* reg = options_.metrics;
    m_checkpoints_ =
        reg->GetCounter("ausdb_recovery_checkpoints_total", {},
                        "Pipeline manifests durably checkpointed.");
    m_restores_ = reg->GetCounter(
        "ausdb_recovery_restores_total", {},
        "Successful pipeline restores from a manifest generation.");
    m_restore_fallbacks_ = reg->GetCounter(
        "ausdb_recovery_restore_fallbacks_total", {},
        "Manifest generations skipped during restore (corrupt or "
        "inapplicable).");
    m_replayed_outputs_ = reg->GetCounter(
        "ausdb_recovery_replayed_outputs_total", {},
        "Re-emitted outputs the consumer discarded as already delivered.");
    m_checkpoint_seconds_ = reg->GetHistogram(
        "ausdb_recovery_checkpoint_seconds", {},
        obs::DefaultLatencySecondsBoundaries(),
        "End-to-end Checkpoint() latency (encode + durable write).");
    m_restore_seconds_ = reg->GetHistogram(
        "ausdb_recovery_restore_seconds", {},
        obs::DefaultLatencySecondsBoundaries(),
        "End-to-end Restore() latency across all attempted generations.");
    m_outputs_delivered_ = reg->GetGauge(
        "ausdb_recovery_outputs_delivered", {},
        "Consumer delivery count recorded by the latest checkpoint or "
        "restore.");
  }
}

void RecoveryManager::NoteReplayedOutput(uint64_t count) {
  if (m_replayed_outputs_) m_replayed_outputs_->Increment(count);
}

Status RecoveryManager::RegisterSource(std::string name,
                                       ReplayableSource* source) {
  if (source == nullptr) {
    return Status::InvalidArgument("source must not be null");
  }
  for (const auto& [existing, unused] : sources_) {
    if (existing == name) {
      return Status::AlreadyExists("source '" + name +
                                   "' already registered");
    }
  }
  sources_.emplace_back(std::move(name), source);
  return Status::OK();
}

Status RecoveryManager::RegisterOperator(std::string name, Operator* op) {
  if (op == nullptr) {
    return Status::InvalidArgument("operator must not be null");
  }
  for (const auto& [existing, unused] : operators_) {
    if (existing == name) {
      return Status::AlreadyExists("operator '" + name +
                                   "' already registered");
    }
  }
  operators_.emplace_back(std::move(name), op);
  return Status::OK();
}

Result<std::string> RecoveryManager::EncodeManifest(
    uint64_t outputs_delivered) const {
  serde::CheckpointWriter w;
  w.Token(kManifestVersion);
  w.Uint(outputs_delivered);
  w.Uint(sources_.size());
  for (const auto& [name, source] : sources_) {
    w.Bytes(name);
    w.Uint(source->position());
  }
  w.Uint(operators_.size());
  for (const auto& [name, op] : operators_) {
    w.Bytes(name);
    AUSDB_ASSIGN_OR_RETURN(std::string blob, op->SaveCheckpoint());
    w.Bytes(blob);
  }
  return std::move(w).Finish();
}

Result<uint64_t> RecoveryManager::Checkpoint(uint64_t outputs_delivered) {
  obs::ScopedSpan span(options_.trace, options_.clock, "recovery/checkpoint");
  const uint64_t start_nanos =
      m_checkpoint_seconds_ ? options_.clock->NowNanos() : 0;
  AUSDB_ASSIGN_OR_RETURN(std::string manifest,
                         EncodeManifest(outputs_delivered));
  AUSDB_ASSIGN_OR_RETURN(uint64_t generation, storage_.Write(manifest));
  if (m_checkpoint_seconds_) {
    m_checkpoint_seconds_->Record(
        obs::NanosToSeconds(options_.clock->NowNanos() - start_nanos));
  }
  if (m_checkpoints_) m_checkpoints_->Increment();
  if (m_outputs_delivered_) {
    m_outputs_delivered_->Set(static_cast<int64_t>(outputs_delivered));
  }
  if (options_.journal != nullptr) {
    options_.journal->Append(
        obs::EventType::kCheckpoint, generation, "recovery",
        std::to_string(outputs_delivered) + " outputs delivered");
  }
  return generation;
}

Status RecoveryManager::ApplyManifest(std::string_view payload,
                                      uint64_t* outputs_delivered) {
  serde::CheckpointReader r(payload);
  AUSDB_RETURN_NOT_OK(r.ExpectToken(kManifestVersion));
  AUSDB_ASSIGN_OR_RETURN(*outputs_delivered, r.NextUint());

  // Decode fully before touching any live object, so a manifest whose
  // tail is unreadable does not half-apply.
  AUSDB_ASSIGN_OR_RETURN(uint64_t nsources, r.NextCount(4));
  std::vector<std::pair<std::string, uint64_t>> positions;
  for (uint64_t i = 0; i < nsources; ++i) {
    AUSDB_ASSIGN_OR_RETURN(std::string name, r.NextBytes());
    AUSDB_ASSIGN_OR_RETURN(uint64_t position, r.NextUint());
    positions.emplace_back(std::move(name), position);
  }
  AUSDB_ASSIGN_OR_RETURN(uint64_t nops, r.NextCount(4));
  std::vector<std::pair<std::string, std::string>> blobs;
  for (uint64_t i = 0; i < nops; ++i) {
    AUSDB_ASSIGN_OR_RETURN(std::string name, r.NextBytes());
    AUSDB_ASSIGN_OR_RETURN(std::string blob, r.NextBytes());
    blobs.emplace_back(std::move(name), std::move(blob));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("manifest has trailing tokens");
  }
  if (positions.size() != sources_.size() ||
      blobs.size() != operators_.size()) {
    return Status::InvalidArgument(
        "manifest was taken from a differently shaped pipeline (" +
        std::to_string(positions.size()) + " sources, " +
        std::to_string(blobs.size()) + " operators)");
  }

  for (size_t i = 0; i < sources_.size(); ++i) {
    if (positions[i].first != sources_[i].first) {
      return Status::InvalidArgument("manifest source '" +
                                     positions[i].first +
                                     "' does not match registered '" +
                                     sources_[i].first + "'");
    }
  }
  for (size_t i = 0; i < operators_.size(); ++i) {
    if (blobs[i].first != operators_[i].first) {
      return Status::InvalidArgument("manifest operator '" +
                                     blobs[i].first +
                                     "' does not match registered '" +
                                     operators_[i].first + "'");
    }
  }

  for (size_t i = 0; i < operators_.size(); ++i) {
    AUSDB_RETURN_NOT_OK(
        operators_[i].second->RestoreCheckpoint(blobs[i].second));
  }
  for (size_t i = 0; i < sources_.size(); ++i) {
    AUSDB_RETURN_NOT_OK(sources_[i].second->SeekTo(positions[i].second));
  }
  return Status::OK();
}

Result<std::optional<RecoveryManager::RecoveredState>>
RecoveryManager::Restore() {
  obs::ScopedSpan span(options_.trace, options_.clock, "recovery/restore");
  const uint64_t start_nanos =
      m_restore_seconds_ ? options_.clock->NowNanos() : 0;
  std::vector<uint64_t> generations = storage_.ListGenerations();
  std::optional<RecoveredState> recovered;
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    Result<std::string> payload = storage_.ReadGeneration(*it);
    if (!payload.ok()) {
      // torn/corrupt: fall back a generation
      if (m_restore_fallbacks_) m_restore_fallbacks_->Increment();
      AUSDB_LOG(WARN) << "manifest generation " << *it
                      << " unreadable, falling back: "
                      << payload.status().ToString();
      continue;
    }
    RecoveredState state;
    state.generation = *it;
    const Status applied =
        ApplyManifest(payload.ValueOrDie(), &state.outputs_delivered);
    if (applied.ok()) {
      recovered = state;
      break;
    }
    // A manifest that decodes but does not apply (e.g. an operator blob
    // from an incompatible configuration) falls back the same way; any
    // later successful attempt rewrites every piece of state it touched.
    if (m_restore_fallbacks_) m_restore_fallbacks_->Increment();
    AUSDB_LOG(WARN) << "manifest generation " << *it
                    << " did not apply, falling back: "
                    << applied.ToString();
  }
  if (m_restore_seconds_) {
    m_restore_seconds_->Record(
        obs::NanosToSeconds(options_.clock->NowNanos() - start_nanos));
  }
  if (recovered.has_value()) {
    if (m_restores_) m_restores_->Increment();
    if (m_outputs_delivered_) {
      m_outputs_delivered_->Set(
          static_cast<int64_t>(recovered->outputs_delivered));
    }
    if (options_.journal != nullptr) {
      options_.journal->Append(
          obs::EventType::kRestore, recovered->generation, "recovery",
          "resumed after " +
              std::to_string(recovered->outputs_delivered) +
              " delivered outputs");
    }
  }
  return recovered;
}

}  // namespace engine
}  // namespace ausdb
