#ifndef AUSDB_ENGINE_WINDOW_AGGREGATE_H_
#define AUSDB_ENGINE_WINDOW_AGGREGATE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "src/common/math_util.h"
#include "src/engine/operator.h"

namespace ausdb {
namespace engine {

struct KeyWindowState;
struct WindowEntry;

/// Aggregate function of a sliding window.
enum class WindowAggFn {
  kAvg,
  kSum,
};

/// How the window advances.
enum class WindowKind {
  /// Slide by one tuple: one output per input once the window is full.
  kSliding,
  /// Tumble: one output per `window_size` inputs, then the window resets.
  kTumbling,
};

/// Options of the WindowAggregate operator.
struct WindowAggregateOptions {
  /// Count-based window size (the paper's Section V-C uses 1000).
  size_t window_size = 1000;

  WindowAggFn fn = WindowAggFn::kAvg;

  WindowKind kind = WindowKind::kSliding;

  /// Emit an output per input even before the window has filled (running
  /// aggregate over the partial window). When false, output starts with
  /// the window_size-th tuple. Sliding windows only.
  bool emit_partial = false;

  /// Accept non-Gaussian uncertain inputs by the central limit theorem:
  /// the aggregate's mean and variance propagate exactly, and the result
  /// is approximated as Gaussian — a good approximation for the window
  /// sizes streams use. When false (the default), non-Gaussian inputs
  /// are a NotImplemented error.
  bool allow_clt_approximation = false;

  /// Event-order revision mode (sliding windows only): the schema gains
  /// a trailing revision:bool column, the window is kept sorted by the
  /// source-assigned sequence number, and a tuple arriving with a
  /// sequence below the max seen is folded into the current window,
  /// re-emitting it with corrected mean/variance/sample_size and
  /// revision=true. Stragglers older than every retained position are
  /// shed (counted): only the current window is ever revised — the
  /// bounded-memory contract of count-based lateness.
  bool emit_revisions = false;
};

/// \brief Count-based sliding-window aggregate over one uncertain column
/// (the paper's streaming AVG query).
///
/// Inputs must be Gaussian or deterministic: the aggregate of independent
/// Gaussians is computed in closed form — AVG of w Gaussians is
/// N(sum mu_i / w, sum sigma_i^2 / w^2) — and the output's d.f. sample
/// size is the window minimum (Lemma 3). One output tuple is produced per
/// input tuple once the window is full, with schema (agg:uncertain).
class WindowAggregate final : public Operator {
 public:
  /// `column` must exist in the child schema and be kUncertain or
  /// kDouble. `output_name` names the single output field. With
  /// `options.emit_revisions` the schema is (<output_name>:uncertain,
  /// revision:bool).
  static Result<std::unique_ptr<WindowAggregate>> Make(
      OperatorPtr child, std::string column, std::string output_name,
      WindowAggregateOptions options = {});

  ~WindowAggregate() override;

  const Schema& schema() const override { return schema_; }
  Result<std::optional<Tuple>> Next() override;
  /// Native batch pull. For a deterministic (kDouble) aggregate column
  /// the window entries are extracted from the batch's gathered column
  /// slice — a flat array pass — instead of per-row Value dispatch; the
  /// entry values are identical by construction, so output stays
  /// byte-identical to the scalar path.
  Status NextBatch(size_t max_n, TupleBatch& out) override;
  Status Reset() override;
  void BindThreadPool(ThreadPool* pool) override {
    child_->BindThreadPool(pool);
  }

  Status Close() override { return child_->Close(); }

  /// Checkpointing serializes the open window (entries plus the exact
  /// running sums and their Neumaier compensation terms, preserving the
  /// accumulators' floating-point history) so a restarted pipeline
  /// resumes mid-window bit-for-bit. Writes the v4 format (which adds
  /// the revision-mode bookkeeping); restores v4, v3 (no revision
  /// block), v2 (no input position either) and legacy v1 blobs (no
  /// compensation terms either; restored as zero).
  Result<std::string> SaveCheckpoint() const override;
  Status RestoreCheckpoint(std::string_view blob) override;

  /// Child tuples pulled so far — the input position a re-seeked source
  /// must resume after when restoring this operator's checkpoint.
  uint64_t input_consumed() const { return input_consumed_; }

  /// Revision mode: late tuples older than every retained window
  /// position, dropped (loudly) instead of revised.
  uint64_t shed_late() const { return shed_late_; }

 private:
  WindowAggregate(OperatorPtr child, size_t column_index,
                  Schema out_schema, WindowAggregateOptions options);

  struct Entry {
    double mean;
    double variance;
    size_t sample_size;
    uint64_t sequence;
  };

  void Push(const Entry& e);
  void PopFront();

  /// Feeds one extracted window entry (sequence already set) carrying
  /// `t`'s provenance through the window; returns the emission this
  /// arrival produces, if any. Shared by Next and NextBatch — the single
  /// floating-point update sequence both paths execute.
  Result<std::optional<Tuple>> StepEntry(const WindowEntry& we,
                                         const Tuple& t);

  OperatorPtr child_;
  size_t column_index_;
  bool column_is_double_ = false;
  Schema schema_;
  WindowAggregateOptions options_;
  TupleBatch input_;  // scratch child batch, reused across pulls

  std::deque<Entry> window_;
  uint64_t input_consumed_ = 0;
  /// Neumaier-compensated running sums: the evict-subtract update drifts
  /// on long mixed-magnitude streams with plain double accumulators.
  KahanSum sum_mean_;
  KahanSum sum_variance_;
  /// Monotonic (non-decreasing sample_size) deque of window entries used
  /// to answer "min sample size in window" in O(1) amortized.
  std::deque<Entry> min_deque_;
  /// Revision-mode state (sequence-sorted window, scratch-scan sums) —
  /// the same KeyWindowState arithmetic the partitioned operators run;
  /// null unless options_.emit_revisions. Incomplete here to avoid a
  /// header cycle with window_state.h.
  std::unique_ptr<KeyWindowState> revising_;
  uint64_t shed_late_ = 0;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_WINDOW_AGGREGATE_H_
