#include "src/engine/window_aggregate.h"

#include <algorithm>

#include "src/dist/gaussian.h"
#include "src/serde/checkpoint.h"

namespace ausdb {
namespace engine {

Result<std::unique_ptr<WindowAggregate>> WindowAggregate::Make(
    OperatorPtr child, std::string column, std::string output_name,
    WindowAggregateOptions options) {
  if (options.window_size == 0) {
    return Status::InvalidArgument("window size must be >= 1");
  }
  AUSDB_ASSIGN_OR_RETURN(size_t idx, child->schema().IndexOf(column));
  const FieldType type = child->schema().field(idx).type;
  if (type != FieldType::kUncertain && type != FieldType::kDouble) {
    return Status::TypeError("window aggregate column '" + column +
                             "' must be numeric");
  }
  Schema out_schema;
  AUSDB_RETURN_NOT_OK(
      out_schema.AddField({std::move(output_name), FieldType::kUncertain}));
  return std::unique_ptr<WindowAggregate>(new WindowAggregate(
      std::move(child), idx, std::move(out_schema), options));
}

WindowAggregate::WindowAggregate(OperatorPtr child, size_t column_index,
                                 Schema out_schema,
                                 WindowAggregateOptions options)
    : child_(std::move(child)),
      column_index_(column_index),
      schema_(std::move(out_schema)),
      options_(options) {}

void WindowAggregate::Push(const Entry& e) {
  window_.push_back(e);
  sum_mean_ += e.mean;
  sum_variance_ += e.variance;
  while (!min_deque_.empty() &&
         min_deque_.back().sample_size >= e.sample_size) {
    min_deque_.pop_back();
  }
  min_deque_.push_back(e);
}

void WindowAggregate::PopFront() {
  const Entry& e = window_.front();
  sum_mean_ -= e.mean;
  sum_variance_ -= e.variance;
  if (!min_deque_.empty() &&
      min_deque_.front().sequence == e.sequence) {
    min_deque_.pop_front();
  }
  window_.pop_front();
}

Result<std::optional<Tuple>> WindowAggregate::Next() {
  for (;;) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
    if (!t.has_value()) return std::optional<Tuple>(std::nullopt);

    const expr::Value& v = t->value(column_index_);
    Entry e;
    e.sequence = t->sequence();
    if (v.is_random_var()) {
      AUSDB_ASSIGN_OR_RETURN(dist::RandomVar rv, v.random_var());
      if (!rv.is_certain() &&
          rv.distribution()->kind() != dist::DistributionKind::kGaussian &&
          !options_.allow_clt_approximation) {
        return Status::NotImplemented(
            "closed-form window aggregation requires Gaussian or "
            "deterministic inputs; got " + rv.distribution()->ToString() +
            " (set allow_clt_approximation for a CLT-based Gaussian "
            "approximation)");
      }
      e.mean = rv.Mean();
      e.variance = rv.Variance();
      e.sample_size = rv.sample_size();
    } else {
      AUSDB_ASSIGN_OR_RETURN(double d, v.AsDouble());
      e.mean = d;
      e.variance = 0.0;
      e.sample_size = dist::RandomVar::kCertainSampleSize;
    }

    Push(e);
    if (options_.kind == WindowKind::kTumbling) {
      // Tumbling: emit only when the window fills, then start over.
      if (window_.size() < options_.window_size) continue;
    } else {
      if (window_.size() > options_.window_size) PopFront();
      if (window_.size() < options_.window_size &&
          !options_.emit_partial) {
        continue;
      }
    }

    const double w = static_cast<double>(window_.size());
    double mean = sum_mean_;
    double variance = sum_variance_;
    if (options_.fn == WindowAggFn::kAvg) {
      mean /= w;
      variance /= w * w;
    }
    const size_t df = min_deque_.front().sample_size;

    dist::RandomVar agg(
        std::make_shared<dist::GaussianDist>(mean,
                                             std::max(0.0, variance)),
        df);
    Tuple out({expr::Value(std::move(agg))});
    out.set_sequence(t->sequence());
    out.set_membership_prob(t->membership_prob());
    out.set_membership_df_n(t->membership_df_n());
    if (options_.kind == WindowKind::kTumbling) {
      window_.clear();
      min_deque_.clear();
      sum_mean_ = sum_variance_ = 0.0;
    }
    return std::optional<Tuple>(std::move(out));
  }
}

Status WindowAggregate::Reset() {
  window_.clear();
  min_deque_.clear();
  sum_mean_ = sum_variance_ = 0.0;
  return child_->Reset();
}

Result<std::string> WindowAggregate::SaveCheckpoint() const {
  serde::CheckpointWriter w;
  w.Token("wagg.v1");
  w.Uint(static_cast<uint64_t>(options_.kind));
  w.Uint(static_cast<uint64_t>(options_.fn));
  w.Uint(options_.window_size);
  w.Double(sum_mean_);
  w.Double(sum_variance_);
  w.Uint(window_.size());
  for (const Entry& e : window_) {
    w.Double(e.mean);
    w.Double(e.variance);
    w.Uint(e.sample_size);
    w.Uint(e.sequence);
  }
  return std::move(w).Finish();
}

Status WindowAggregate::RestoreCheckpoint(std::string_view blob) {
  serde::CheckpointReader r(blob);
  AUSDB_RETURN_NOT_OK(r.ExpectToken("wagg.v1"));
  AUSDB_ASSIGN_OR_RETURN(uint64_t kind, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(uint64_t fn, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(uint64_t window_size, r.NextUint());
  if (kind != static_cast<uint64_t>(options_.kind) ||
      fn != static_cast<uint64_t>(options_.fn) ||
      window_size != options_.window_size) {
    return Status::InvalidArgument(
        "checkpoint was taken from a differently configured "
        "WindowAggregate");
  }
  AUSDB_ASSIGN_OR_RETURN(double sum_mean, r.NextDouble());
  AUSDB_ASSIGN_OR_RETURN(double sum_variance, r.NextDouble());
  AUSDB_ASSIGN_OR_RETURN(uint64_t count, r.NextUint());
  window_.clear();
  min_deque_.clear();
  sum_mean_ = sum_variance_ = 0.0;
  for (uint64_t i = 0; i < count; ++i) {
    Entry e;
    AUSDB_ASSIGN_OR_RETURN(e.mean, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(e.variance, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(e.sample_size, r.NextUint());
    AUSDB_ASSIGN_OR_RETURN(e.sequence, r.NextUint());
    Push(e);  // rebuilds min_deque_
  }
  // Push() resummed the entries; overwrite with the checkpointed sums so
  // the accumulators keep their exact floating-point history.
  sum_mean_ = sum_mean;
  sum_variance_ = sum_variance;
  return Status::OK();
}

}  // namespace engine
}  // namespace ausdb
